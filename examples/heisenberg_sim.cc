/**
 * @file
 * Simulating the Heisenberg XYZ model with AshN pulses — the experiment
 * the paper's discussion singles out as a natural application. A Trotter
 * step of the bond Hamiltonian Jx XX + Jy YY + Jz ZZ is exactly
 * exp(-i dt (Jx XX + Jy YY + Jz ZZ)): a *single* point of the Weyl
 * chamber, so the AshN instruction set executes each bond step as one
 * pulse, while a CNOT instruction set needs three CNOTs.
 *
 * The example Trotter-evolves a 6-qubit XYZ chain, compares against the
 * exact propagator, and accounts the two-qubit gate budget.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "ashn/scheme.hh"
#include "circuit/circuit.hh"
#include "device/device.hh"
#include "linalg/expm.hh"
#include "qop/gates.hh"
#include "sim/engine.hh"
#include "synth/two_qubit.hh"
#include "transpile/transpile.hh"
#include "weyl/weyl.hh"

using namespace crisc;
using circuit::Circuit;
using circuit::State;
using linalg::Matrix;

int
main()
{
    const std::size_t n = 6;
    const double jx = 1.0, jy = 0.75, jz = 0.5; // XYZ couplings
    const double t = 1.2;                        // total evolution time
    const int steps = 12;
    const double dt = t / steps;

    // Exact bond gate for one Trotter step (canonicalGate computes
    // exp(+i(x XX + y YY + z ZZ)), so negate for exp(-i H dt)).
    const Matrix bond =
        qop::canonicalGate(-jx * dt, -jy * dt, -jz * dt);
    const weyl::WeylPoint p = weyl::weylCoordinates(bond);
    const ashn::GateParams pulse = ashn::synthesize(p, 0.0, 1.1);
    std::printf("XYZ chain, n=%zu, J=(%.2f, %.2f, %.2f), t=%.2f, %d Trotter "
                "steps\n",
                n, jx, jy, jz, t, steps);
    std::printf("bond-step chamber point (%.4f, %.4f, %.4f) -> one %s pulse, "
                "tau=%.4f/g\n\n",
                p.x, p.y, p.z, ashn::subSchemeName(pulse.scheme).c_str(),
                pulse.tau);

    // Trotter circuit: even bonds then odd bonds, per step.
    Circuit trotter(n);
    for (int s = 0; s < steps; ++s) {
        for (std::size_t q = 0; q + 1 < n; q += 2)
            trotter.add(bond, {q, q + 1}, "bond");
        for (std::size_t q = 1; q + 1 < n; q += 2)
            trotter.add(bond, {q, q + 1}, "bond");
    }

    // Compile the Trotter circuit to an AshN pulse program through the
    // transpiler pipeline, targeting a linear-chain device (every bond
    // is nearest-neighbour, so routing inserts no SWAPs and the Weyl
    // cache synthesizes the shared bond point only once).
    const device::Device chain = device::Device::withCoupling(
        device::NativeKind::AshN, route::CouplingMap::line(n),
        {.twoQubitError = 0.01, .singleQubitError = 0.001, .h = 0.0,
         .r = 1.1});
    transpile::TranspileOptions opts;
    opts.device = &chain;
    const transpile::TranspileResult compiled =
        transpile::transpile(trotter, opts);
    std::printf("transpile report:\n%s\n",
                compiled.report.summary().c_str());
    std::printf("pulse program: %zu pulses, %.1f/g two-qubit time, %zu "
                "single-qubit gates\n\n",
                compiled.context.pulses.size(),
                compiled.context.totalPulseTime,
                compiled.context.singleQubitGates);

    // Initial state: single spin flipped in the middle, |000100>.
    auto prepare = [&] {
        State s(n);
        s.apply(qop::pauliX(), {n / 2});
        return s;
    };

    // Compile the Trotter circuit to a kernel plan once and execute it
    // on the prepared state; the engine lowers every bond gate to the
    // strided 4x4 quad kernel.
    const sim::Plan plan = sim::compile(trotter);
    std::printf("kernel plan: %zu source gates -> %zu kernel ops "
                "(%zu fused, %zu diagonal, %zu dense)\n",
                plan.stats().sourceGates, plan.stats().kernelOps,
                plan.stats().fusedGates, plan.stats().diagOps,
                plan.stats().denseOps);
    State approx = prepare();
    sim::execute(plan, approx.data());

    // Exact evolution via the full 2^n Hamiltonian.
    Matrix hfull(std::size_t{1} << n, std::size_t{1} << n);
    for (std::size_t q = 0; q + 1 < n; ++q) {
        const Matrix term = jx * qop::pauliXX() + jy * qop::pauliYY() +
                            jz * qop::pauliZZ();
        hfull += qop::embed(term, {q, q + 1}, n);
    }
    const Matrix uExact = linalg::propagator(hfull, t);
    State exact = prepare();
    // Apply the full unitary directly.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i)
        all[i] = i;
    exact.apply(uExact, all);

    std::printf("Trotter fidelity vs exact evolution: %.6f\n",
                approx.fidelityWith(exact));

    // The compiled pulse program is unitary-equivalent to the Trotter
    // circuit, so executing it reproduces the same state.
    State pulsed = prepare();
    sim::execute(sim::compile(compiled.circuit), pulsed.data());
    std::printf("pulse-program fidelity vs exact evolution: %.6f\n",
                pulsed.fidelityWith(exact));

    // Magnetization profile <Z_q> from both states.
    std::printf("\n%-8s %-12s %-12s\n", "qubit", "<Z> trotter", "<Z> exact");
    for (std::size_t q = 0; q < n; ++q) {
        auto zExp = [&](const State &s) {
            double z = 0.0;
            for (std::size_t idx = 0; idx < (std::size_t{1} << n); ++idx) {
                const int bit = (idx >> (n - 1 - q)) & 1;
                z += (bit ? -1.0 : 1.0) * s.probability(idx);
            }
            return z;
        };
        std::printf("%-8zu %-12.5f %-12.5f\n", q, zExp(approx), zExp(exact));
    }

    // Gate budget: AshN vs CNOT instruction set.
    const std::size_t bonds = trotter.twoQubitCount();
    const std::size_t cnotsPerBond =
        synth::decomposeCNOT(bond).twoQubitCount();
    std::printf("\ntwo-qubit budget: %zu AshN pulses (%.1f/g interaction "
                "time) vs %zu CNOTs (%.1f/g)\n",
                bonds, bonds * pulse.tau, bonds * cnotsPerBond,
                bonds * cnotsPerBond * M_PI / 2.0);
    return 0;
}

/**
 * @file
 * Quickstart: the AshN gate scheme in five minutes.
 *
 * 1. Pick any two-qubit gate (here: a Haar-random SU(4) element).
 * 2. Ask the library for the single AshN pulse that realizes it.
 * 3. Evolve the Hamiltonian and verify the gate, including the
 *    single-qubit corrections.
 *
 * Everything is normalized to the coupling g = 1: times are in units
 * of 1/g and drive strengths in units of g.
 */

#include <cstdio>

#include "ashn/scheme.hh"
#include "ashn/special.hh"
#include "linalg/random.hh"
#include "qop/metrics.hh"
#include "synth/two_qubit.hh"
#include "weyl/weyl.hh"

using namespace crisc;

int
main()
{
    std::printf("CRISC quickstart: one pulse per two-qubit gate\n");
    std::printf("==============================================\n\n");

    // A random target gate.
    linalg::Rng rng(2024);
    const linalg::Matrix target = linalg::haarSU(rng, 4);

    // Where does it live in the Weyl chamber?
    const weyl::WeylPoint p = weyl::weylCoordinates(target);
    std::printf("target interaction coefficients: (%.4f, %.4f, %+.4f)\n",
                p.x, p.y, p.z);

    // One AshN pulse realizes the class; the practical cutoff r = 1.1
    // keeps every drive strength below pi/1.1 + 1/2 ~ 3.36 g (Eq. 4.4).
    const synth::AshnCompiled compiled =
        synth::compileToAshn(target, /*h=*/0.0, /*r=*/1.1);
    const ashn::GateParams &g = compiled.params;
    std::printf("\nAshN pulse (%s):\n", ashn::subSchemeName(g.scheme).c_str());
    std::printf("  gate time     tau = %.4f / g\n", g.tau);
    std::printf("  amplitudes    A1 = %.4f g, A2 = %.4f g\n", g.a1(), g.a2());
    std::printf("  detuning      2*delta = %.4f g\n", 2.0 * g.delta);
    std::printf("  max drive     %.4f g (bound %.4f g)\n", g.maxDrive(),
                ashn::driveBound(1.1));

    // Verify: pulse + single-qubit corrections == target.
    const double err = linalg::maxAbsDiff(compiled.compose(), target);
    std::printf("\nreconstruction error |U_target - U_compiled| = %.2e\n",
                err);

    // Compare with a CNOT-based compilation of the same gate.
    const circuit::Circuit cnots = synth::decomposeCNOT(target);
    std::printf("\nfor reference, a CNOT compilation needs %zu CNOTs "
                "(total 2q time %.3f/g vs %.3f/g for AshN).\n",
                cnots.twoQubitCount(),
                cnots.twoQubitCount() * M_PI / 2.0, g.tau);
    return err < 1e-5 ? 0 : 1;
}

/**
 * @file
 * Calibrating the AshN instruction set (paper Sec. 5).
 *
 * Three stages:
 *  1. Pulse imperfection: a trapezoidal AWG envelope shifts the realized
 *     chamber point away from the target.
 *  2. Characterization: the Cartan double gamma(U) = U YY U^T YY turns
 *     interaction-coefficient readout into phase estimation, without
 *     learning the single-qubit corrections.
 *  3. Instruction-set calibration: a three-parameter transfer model is
 *     fitted once by black-box optimization and corrects the *entire*
 *     continuous gate family.
 */

#include <cstdio>

#include "ashn/scheme.hh"
#include "ashn/special.hh"
#include "calib/cartan.hh"
#include "calib/model.hh"
#include "calib/pulse.hh"
#include "device/device.hh"
#include "weyl/measure.hh"
#include "linalg/random.hh"
#include "weyl/weyl.hh"

using namespace crisc;
using linalg::Matrix;
using weyl::WeylPoint;

int
main()
{
    linalg::Rng rng(11);

    // --- 1. Pulse distortion moves the gate.
    std::printf("1) AWG envelope distortion\n");
    const ashn::GateParams cnot = ashn::cnotClassParams(0.0);
    for (double rise : {0.0, 0.05, 0.15, 0.30}) {
        const auto hfun = calib::pulsedHamiltonian(
            0.0, cnot.omega1, cnot.omega2, cnot.delta,
            rise == 0.0 ? calib::EnvelopeShape::Square
                        : calib::EnvelopeShape::Trapezoid,
            cnot.tau, rise * cnot.tau);
        const Matrix u = calib::evolveTimeDependent(hfun, cnot.tau, 600);
        const WeylPoint got = weyl::weylCoordinates(u);
        std::printf("   rise %.0f%% of tau: coordinate error %.4f\n",
                    100.0 * rise,
                    weyl::pointDistance(got, ashn::cnotPoint()));
    }

    // --- 2. Cartan-double phase estimation.
    std::printf("\n2) interaction-coefficient readout via the Cartan "
                "double\n");
    const WeylPoint target{0.55, 0.40, 0.20};
    const Matrix gate = ashn::realize(ashn::synthesize(target, 0.0, 0.0));
    for (const auto &[bits, shots] :
         {std::pair{4, 100}, {6, 1000}, {8, 10000}}) {
        const WeylPoint est =
            calib::estimateCoordinates(gate, bits, shots, rng, &target);
        std::printf("   %d bits x %5d shots: estimate (%.4f, %.4f, %.4f), "
                    "error %.2e\n",
                    bits, shots, est.x, est.y, est.z,
                    weyl::pointDistance(est, target));
    }

    // --- 3. Model-based instruction-set calibration.
    std::printf("\n3) one model fit calibrates the whole gate family\n");
    const calib::ControlModel truth{1.06, 0.93, 1.09};
    const std::vector<WeylPoint> probes = {{M_PI / 4.0, 0.10, 0.05},
                                           {0.70, 0.65, 0.50},
                                           {0.50, 0.45, -0.35},
                                           {0.60, 0.55, 0.30}};
    const calib::CalibrationResult r =
        calib::calibrateInstructionSet(truth, probes, 0.0, 1.1);
    std::printf("   hardware gains (hidden): %.3f %.3f %.3f\n",
                truth.gainOmega1, truth.gainOmega2, truth.gainDelta);
    std::printf("   fitted gains:            %.3f %.3f %.3f  (%d "
                "objective evaluations)\n",
                r.fitted.gainOmega1, r.fitted.gainOmega2,
                r.fitted.gainDelta, r.evaluations);
    std::printf("   mean coordinate error: %.2e before -> %.2e after\n",
                r.objectiveBefore, r.objectiveAfter);

    // Held-out gates: the fit generalizes across the continuum.
    double heldOut = 0.0;
    std::vector<WeylPoint> held;
    for (int i = 0; i < 5; ++i)
        held.push_back(weyl::sampleChamber(rng));
    heldOut = calib::modelObjective(r.fitted, truth, held, 0.0, 1.1);
    std::printf("   held-out gates (5 random): mean error %.2e\n", heldOut);

    // The fitted model travels with the device: anything compiling
    // against it can read the transfer gains back off the target.
    device::Device dev = device::Device::grid2dAshN(
        9, {.twoQubitError = 0.01, .singleQubitError = 0.001, .h = 0.0,
            .r = 1.1});
    dev.setControl(r.fitted);
    std::printf("\n   device \"%s\" calibrated: gains %.3f %.3f %.3f\n",
                dev.name().c_str(), dev.control()->gainOmega1,
                dev.control()->gainOmega2, dev.control()->gainDelta);
    return heldOut < 1e-3 ? 0 : 1;
}

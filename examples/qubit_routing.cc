/**
 * @file
 * Qubit routing with native SWAP gates (paper Sec. 6.4).
 *
 * SWAP insertion dominates NISQ compilation overhead on sparse devices.
 * With CZ or SQiSW instruction sets a SWAP costs three native gates;
 * the AshN scheme executes SWAP as a *single* pulse of duration
 * 3pi/(4g) — and parasitic ZZ coupling makes it even faster. This
 * example constructs a 3x3-grid device::Device, feeds a sequence of
 * random long-range CNOTs through the transpiler's Route pass, and
 * accounts the total two-qubit interaction time per instruction set by
 * querying each native gate set's cost model.
 */

#include <cstdio>
#include <vector>

#include "ashn/scheme.hh"
#include "ashn/special.hh"
#include "circuit/circuit.hh"
#include "device/device.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "transpile/transpile.hh"
#include "weyl/weyl.hh"

using namespace crisc;

int
main()
{
    const std::size_t n = 9;
    const device::Device grid = device::Device::grid2dAshN(n);
    linalg::Rng rng(7);

    // Workload: 40 two-qubit interactions between random logical pairs,
    // as a gate-list circuit (the payload gates are CNOT-class).
    circuit::Circuit logical(n);
    for (int i = 0; i < 40; ++i) {
        const std::size_t a = rng.index(n);
        std::size_t b = rng.index(n);
        while (b == a)
            b = rng.index(n);
        logical.add(qop::cnot(), {a, b}, "payload");
    }

    // Route through the transpiler pipeline; the SWAP count is
    // instruction-set independent.
    transpile::TranspileOptions opts;
    opts.device = &grid;
    opts.decomposeWide = false;   // workload is already 2q-only
    opts.fuseSingleQubit = false; // keep the payload gates visible
    opts.peephole = false;
    opts.lowerToPulses = false;   // account costs per set below
    const transpile::TranspileResult routed = transpile::transpile(
        logical, opts);

    std::size_t totalSwaps = 0;
    for (const circuit::Gate &g : routed.circuit.gates())
        totalSwaps += g.label == "swap";
    std::printf("workload: %zu interactions on a 3x3 grid -> %zu routing "
                "SWAPs\n\n",
                logical.size(), totalSwaps);
    std::printf("%s\n", routed.report.summary().c_str());

    // Interaction-time accounting per instruction set, straight from
    // the native gate sets' cost models (the iSWAP and fSim-style rows
    // are literature values for comparison; they are not shipped sets).
    const weyl::WeylPoint swapPoint = ashn::swapPoint();
    struct Entry
    {
        const char *name;
        double swapTime; // per SWAP, units of 1/g
        int swapGates;
    };
    std::vector<Entry> entries;
    const struct
    {
        const char *name;
        device::NativeKind kind;
        double h;
    } sets[] = {
        {"AshN (h=0)", device::NativeKind::AshN, 0.0},
        {"AshN (h=0.2g)", device::NativeKind::AshN, 0.2},
        {"3 x SQiSW", device::NativeKind::SQiSW, 0.0},
        {"3 x CZ", device::NativeKind::CZ, 0.0},
    };
    for (const auto &s : sets) {
        const device::GateCost c =
            device::makeNativeGateSet(s.kind, s.h)->cost(swapPoint);
        entries.push_back({s.name, c.totalTime, c.nativeGates});
    }
    entries.push_back({"3 x iSWAP", 3.0 * M_PI / 2.0, 3});
    entries.push_back(
        {"fSim-style (iSWAP+CZ)", (1.0 + std::numbers::sqrt2) * M_PI / 2.0,
         2});

    std::printf("%-22s %-16s %-16s %-14s\n", "instruction set",
                "time per SWAP", "native gates", "total SWAP time");
    for (const Entry &e : entries) {
        std::printf("%-22s %-16.4f %-16d %-14.1f\n", e.name, e.swapTime,
                    e.swapGates * static_cast<int>(totalSwaps),
                    e.swapTime * totalSwaps);
    }

    const double ashn = 3.0 * M_PI / 4.0;
    const double czT = M_PI / std::numbers::sqrt2;
    std::printf("\nspeed-ups over AshN-native SWAP: fSim-style %.3fx, "
                "3xCZ %.3fx\n",
                ((1.0 + std::numbers::sqrt2) * M_PI / 2.0) / ashn,
                3.0 * czT / ashn);
    std::printf("(note: the paper quotes 4(sqrt2+1)/3 = 3.219x for the "
                "fSim-style scheme; with tau_SWAP = 3pi/4g the ratio "
                "evaluates to 2(sqrt2+1)/3 = 1.609x — see EXPERIMENTS.md)\n");

    // And the ZZ bonus: the stronger the parasitic coupling, the faster
    // the native SWAP (tau = 3pi / (4(1+|h|/2))).
    std::printf("\nSWAP pulse time vs parasitic ZZ coupling:\n");
    for (double h : {0.0, 0.2, 0.4, 0.8}) {
        const ashn::GateParams p = ashn::synthesize(ashn::swapPoint(), h, 0.0);
        std::printf("  h = %.1fg : tau = %.4f/g\n", h, p.tau);
    }
    return 0;
}

#include "expm.hh"

#include <cmath>
#include <stdexcept>

#include "decomp.hh"

namespace crisc {
namespace linalg {

Matrix
propagator(const Matrix &hamiltonian, double t)
{
    const EigenSystem es = eighHermitian(hamiltonian);
    const std::size_t n = hamiltonian.rows();
    Matrix d(n, n);
    for (std::size_t i = 0; i < n; ++i)
        d(i, i) = std::polar(1.0, -es.values[i] * t);
    return es.vectors * d * es.vectors.dagger();
}

Matrix
expm(const Matrix &a)
{
    if (!a.isSquare())
        throw std::invalid_argument("expm: matrix not square");
    const std::size_t n = a.rows();
    // Scale so the Taylor series converges fast, then square back up.
    const double nrm = a.frobeniusNorm();
    int squarings = 0;
    if (nrm > 0.5)
        squarings = static_cast<int>(std::ceil(std::log2(nrm / 0.5)));
    const double factor = std::ldexp(1.0, -squarings);
    Matrix b = factor * a;

    Matrix term = Matrix::identity(n);
    Matrix sum = term;
    for (int k = 1; k <= 40; ++k) {
        term = term * b;
        term *= Complex{1.0 / k, 0.0};
        sum += term;
        if (term.maxAbs() < 1e-18)
            break;
    }
    for (int s = 0; s < squarings; ++s)
        sum = sum * sum;
    return sum;
}

Matrix
logUnitary(const Matrix &u)
{
    const ComplexEigenSystem es = eigNormal(u);
    const std::size_t n = u.rows();
    Matrix d(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        // u = exp(i H): eigenphase of u is the eigenvalue of H.
        d(i, i) = std::arg(es.values[i]);
    }
    return es.vectors * d * es.vectors.dagger();
}

} // namespace linalg
} // namespace crisc

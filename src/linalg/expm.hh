/**
 * @file
 * Matrix exponentials: exact Hermitian propagators (the workhorse for
 * Hamiltonian evolution) and a scaling-and-squaring exponential for
 * general matrices (used by tests and by the matrix logarithm).
 */

#ifndef CRISC_LINALG_EXPM_HH
#define CRISC_LINALG_EXPM_HH

#include "matrix.hh"

namespace crisc {
namespace linalg {

/**
 * Propagator exp(-i H t) for Hermitian H, computed exactly through the
 * eigendecomposition of H. This is the evolution primitive used by every
 * AshN gate construction.
 */
Matrix propagator(const Matrix &hamiltonian, double t);

/** exp(A) for a general square matrix via scaling and squaring. */
Matrix expm(const Matrix &a);

/**
 * Principal matrix logarithm of a *unitary* matrix: returns Hermitian H
 * with  u = exp(i H)  and eigenvalues of H in (-pi, pi].
 */
Matrix logUnitary(const Matrix &u);

} // namespace linalg
} // namespace crisc

#endif // CRISC_LINALG_EXPM_HH

/**
 * @file
 * Dense complex matrix type used throughout the CRISC library.
 *
 * The library deliberately carries its own small linear-algebra layer
 * instead of depending on an external package: every substrate of the
 * AshN reproduction (KAK decompositions, Hamiltonian propagators,
 * cosine-sine decompositions, ...) works on small-to-moderate dense
 * complex matrices, and owning the implementation keeps the numerical
 * conventions (phase choices, branch cuts) under our control.
 */

#ifndef CRISC_LINALG_MATRIX_HH
#define CRISC_LINALG_MATRIX_HH

#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace crisc {
namespace linalg {

/** Element type for all matrices in the library. */
using Complex = std::complex<double>;

/** Dense column vector of complex numbers. */
using CVector = std::vector<Complex>;

/** Imaginary unit, shared across the library. */
inline constexpr Complex kI{0.0, 1.0};

/**
 * Dense, row-major, heap-allocated complex matrix.
 *
 * Sizes in this library are tiny (2x2 .. 2^n x 2^n with n <= ~12), so the
 * implementation favours clarity and numerical robustness over blocking
 * or vectorization tricks.
 */
class Matrix
{
  public:
    /** Creates an empty 0x0 matrix. */
    Matrix() = default;

    /** Creates a rows x cols matrix filled with zeros. */
    Matrix(std::size_t rows, std::size_t cols);

    /**
     * Creates a matrix from nested initializer lists, e.g.
     * Matrix{{1, 0}, {0, -1}}. All rows must have equal length.
     */
    Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

    /** @return the n x n identity matrix. */
    static Matrix identity(std::size_t n);

    /** @return a rows x cols matrix of zeros. */
    static Matrix zero(std::size_t rows, std::size_t cols);

    /** @return a diagonal matrix with the given diagonal entries. */
    static Matrix diag(const CVector &entries);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }
    bool isSquare() const { return rows_ == cols_; }

    Complex &operator()(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    const Complex &operator()(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /** Raw row-major storage (for simulator inner loops). */
    Complex *data() { return data_.data(); }
    const Complex *data() const { return data_.data(); }

    Matrix &operator+=(const Matrix &other);
    Matrix &operator-=(const Matrix &other);
    Matrix &operator*=(Complex scalar);

    /** @return the conjugate transpose. */
    Matrix dagger() const;

    /** @return the (non-conjugated) transpose. */
    Matrix transpose() const;

    /** @return the elementwise complex conjugate. */
    Matrix conjugate() const;

    /** @return the trace; matrix must be square. */
    Complex trace() const;

    /** @return the determinant via LU decomposition with pivoting. */
    Complex det() const;

    /** @return the Frobenius norm. */
    double frobeniusNorm() const;

    /** @return the max absolute entry (infinity norm on entries). */
    double maxAbs() const;

    /** @return the rows0..rows1-1 x cols0..cols1-1 submatrix (half-open). */
    Matrix block(std::size_t row0, std::size_t row1,
                 std::size_t col0, std::size_t col1) const;

    /** Copies @p b into this matrix with top-left corner at (row0, col0). */
    void setBlock(std::size_t row0, std::size_t col0, const Matrix &b);

    /** @return column @p c as a vector. */
    CVector col(std::size_t c) const;

    /** Overwrites column @p c with @p v. */
    void setCol(std::size_t c, const CVector &v);

    /** Multiplies column c by a scalar in place. */
    void scaleCol(std::size_t c, Complex s);

    /** Swaps two columns in place. */
    void swapCols(std::size_t a, std::size_t b);

    /** @return a human-readable dump, for debugging and error messages. */
    std::string toString(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Complex> data_;
};

Matrix operator+(Matrix a, const Matrix &b);
Matrix operator-(Matrix a, const Matrix &b);
Matrix operator*(const Matrix &a, const Matrix &b);
Matrix operator*(Complex s, Matrix a);
Matrix operator*(Matrix a, Complex s);
Matrix operator*(double s, Matrix a);

/** Matrix-vector product. */
CVector operator*(const Matrix &a, const CVector &v);

/** Kronecker (tensor) product a (x) b. */
Matrix kron(const Matrix &a, const Matrix &b);

/** Entrywise distance max_ij |a_ij - b_ij|. */
double maxAbsDiff(const Matrix &a, const Matrix &b);

/** @return true when max_ij |a_ij - b_ij| <= tol. */
bool approxEqual(const Matrix &a, const Matrix &b, double tol = 1e-9);

/** @return true when u.dagger() * u is the identity to tolerance. */
bool isUnitary(const Matrix &u, double tol = 1e-9);

/** @return true when the matrix equals its conjugate transpose. */
bool isHermitian(const Matrix &a, double tol = 1e-9);

/** Inner product <a|b> = sum conj(a_i) b_i. */
Complex dot(const CVector &a, const CVector &b);

/** Euclidean norm of a complex vector. */
double norm(const CVector &v);

} // namespace linalg
} // namespace crisc

#endif // CRISC_LINALG_MATRIX_HH

/**
 * @file
 * Reproducible randomness: a seeded RNG plus Haar-distributed unitaries
 * (the workload generator behind every "Haar random gate" experiment in
 * the paper) and random Hermitian matrices for tests.
 */

#ifndef CRISC_LINALG_RANDOM_HH
#define CRISC_LINALG_RANDOM_HH

#include <cstdint>
#include <random>

#include "matrix.hh"

namespace crisc {
namespace linalg {

/**
 * Seeded random source for all stochastic components. A plain wrapper
 * around std::mt19937_64 so experiment harnesses can be replayed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

    /** Uniform double in [0, 1). */
    double uniform() { return unit_(engine_); }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /** Standard normal variate. */
    double gaussian() { return normal_(engine_); }

    /** Uniform integer in [0, n). */
    std::size_t index(std::size_t n)
    {
        std::uniform_int_distribution<std::size_t> d(0, n - 1);
        return d(engine_);
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
    std::uniform_real_distribution<double> unit_{0.0, 1.0};
    std::normal_distribution<double> normal_{0.0, 1.0};
};

/** Complex Ginibre matrix: i.i.d. standard complex Gaussian entries. */
Matrix ginibre(Rng &rng, std::size_t n);

/** Haar-distributed U(n) element (Ginibre + QR with phase fixing). */
Matrix haarUnitary(Rng &rng, std::size_t n);

/** Haar-distributed SU(n) element: haarUnitary with the determinant fixed. */
Matrix haarSU(Rng &rng, std::size_t n);

/** Random Hermitian matrix with Gaussian entries (for tests). */
Matrix randomHermitian(Rng &rng, std::size_t n);

} // namespace linalg
} // namespace crisc

#endif // CRISC_LINALG_RANDOM_HH

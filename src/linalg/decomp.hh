/**
 * @file
 * Matrix decompositions: Hermitian eigensolver (complex Jacobi), QR
 * (Householder), complex SVD (one-sided Jacobi), eigendecomposition of
 * normal/unitary matrices, and simultaneous diagonalization of commuting
 * real symmetric matrices (needed by the magic-basis KAK decomposition).
 */

#ifndef CRISC_LINALG_DECOMP_HH
#define CRISC_LINALG_DECOMP_HH

#include <vector>

#include "matrix.hh"

namespace crisc {
namespace linalg {

/** Result of a Hermitian eigendecomposition A = V diag(values) V^dagger. */
struct EigenSystem
{
    /** Real eigenvalues in ascending order. */
    std::vector<double> values;
    /** Unitary matrix whose columns are the eigenvectors. */
    Matrix vectors;
};

/**
 * Diagonalizes a Hermitian matrix with the cyclic complex Jacobi method.
 *
 * @param a Hermitian input matrix (validated to tolerance).
 * @return eigenvalues ascending and the unitary of eigenvectors.
 */
EigenSystem eighHermitian(const Matrix &a);

/** Result of an eigendecomposition A = V diag(values) V^dagger. */
struct ComplexEigenSystem
{
    /** Complex eigenvalues, in the column order of @c vectors. */
    CVector values;
    /** Unitary matrix of eigenvectors. */
    Matrix vectors;
};

/**
 * Eigendecomposition of a *normal* matrix (e.g. any unitary).
 *
 * Implemented by simultaneously diagonalizing the commuting Hermitian
 * parts (A + A^dagger)/2 and (A - A^dagger)/(2i) via a random generic
 * combination; retries with fresh combinations on degeneracy.
 */
ComplexEigenSystem eigNormal(const Matrix &a);

/** Result of a QR decomposition A = Q R with Q unitary. */
struct QRResult
{
    Matrix q;
    Matrix r;
};

/** Householder QR of a square or tall matrix. */
QRResult qr(const Matrix &a);

/** Result of a singular value decomposition A = U diag(s) V^dagger. */
struct SVDResult
{
    Matrix u;                     ///< m x m unitary.
    std::vector<double> singular; ///< min(m,n) values, descending.
    Matrix v;                     ///< n x n unitary.
};

/**
 * Complex SVD via the one-sided Jacobi method (high relative accuracy,
 * which the cosine-sine decomposition depends on).
 */
SVDResult svd(const Matrix &a);

/**
 * Simultaneously diagonalizes two commuting real symmetric matrices.
 *
 * Finds a real orthogonal Q such that Q^T a Q and Q^T b Q are both
 * diagonal. Used on Re/Im parts of the symmetric unitary gamma matrix in
 * the KAK decomposition. Inputs are given as complex matrices whose
 * imaginary parts must be negligible.
 *
 * @return Q with det(Q) = +1.
 */
Matrix simultaneousDiagonalize(const Matrix &a, const Matrix &b);

/** Inverse of a square matrix via Gauss-Jordan with partial pivoting. */
Matrix inverse(const Matrix &a);

} // namespace linalg
} // namespace crisc

#endif // CRISC_LINALG_DECOMP_HH

#include "random.hh"

#include <cmath>

#include "decomp.hh"

namespace crisc {
namespace linalg {

Matrix
ginibre(Rng &rng, std::size_t n)
{
    Matrix g(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            g(r, c) = Complex{rng.gaussian(), rng.gaussian()};
    return g;
}

Matrix
haarUnitary(Rng &rng, std::size_t n)
{
    const QRResult f = qr(ginibre(rng, n));
    Matrix u = f.q;
    // Fix the phase ambiguity of QR so the distribution is exactly Haar
    // (Mezzadri's recipe): multiply each column by the phase of the
    // corresponding diagonal entry of R.
    for (std::size_t c = 0; c < n; ++c) {
        const Complex d = f.r(c, c);
        const double ad = std::abs(d);
        u.scaleCol(c, ad > 0.0 ? d / ad : Complex{1.0, 0.0});
    }
    return u;
}

Matrix
haarSU(Rng &rng, std::size_t n)
{
    Matrix u = haarUnitary(rng, n);
    const Complex d = u.det();
    // Divide out an n-th root of the determinant's phase.
    const Complex root = std::polar(1.0, -std::arg(d) / static_cast<double>(n));
    u *= root;
    return u;
}

Matrix
randomHermitian(Rng &rng, std::size_t n)
{
    const Matrix g = ginibre(rng, n);
    return 0.5 * (g + g.dagger());
}

} // namespace linalg
} // namespace crisc

#include "matrix.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace crisc {
namespace linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex{0.0, 0.0})
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows)
{
    rows_ = rows.size();
    cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto &row : rows) {
        if (row.size() != cols_)
            throw std::invalid_argument("Matrix: ragged initializer list");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::zero(std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols);
}

Matrix
Matrix::diag(const CVector &entries)
{
    Matrix m(entries.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        m(i, i) = entries[i];
    return m;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &other)
{
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Matrix &
Matrix::operator*=(Complex scalar)
{
    for (auto &x : data_)
        x *= scalar;
    return *this;
}

Matrix
Matrix::dagger() const
{
    Matrix m(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            m(c, r) = std::conj((*this)(r, c));
    return m;
}

Matrix
Matrix::transpose() const
{
    Matrix m(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            m(c, r) = (*this)(r, c);
    return m;
}

Matrix
Matrix::conjugate() const
{
    Matrix m(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        m.data_[i] = std::conj(data_[i]);
    return m;
}

Complex
Matrix::trace() const
{
    assert(isSquare());
    Complex t = 0.0;
    for (std::size_t i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

Complex
Matrix::det() const
{
    assert(isSquare());
    Matrix a(*this);
    const std::size_t n = rows_;
    Complex d = 1.0;
    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting on the largest remaining entry in column k.
        std::size_t pivot = k;
        double best = std::abs(a(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            if (std::abs(a(r, k)) > best) {
                best = std::abs(a(r, k));
                pivot = r;
            }
        }
        if (best == 0.0)
            return 0.0;
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a(k, c), a(pivot, c));
            d = -d;
        }
        d *= a(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const Complex f = a(r, k) / a(k, k);
            for (std::size_t c = k; c < n; ++c)
                a(r, c) -= f * a(k, c);
        }
    }
    return d;
}

double
Matrix::frobeniusNorm() const
{
    double s = 0.0;
    for (const auto &x : data_)
        s += std::norm(x);
    return std::sqrt(s);
}

double
Matrix::maxAbs() const
{
    double m = 0.0;
    for (const auto &x : data_)
        m = std::max(m, std::abs(x));
    return m;
}

Matrix
Matrix::block(std::size_t row0, std::size_t row1,
              std::size_t col0, std::size_t col1) const
{
    assert(row0 <= row1 && row1 <= rows_);
    assert(col0 <= col1 && col1 <= cols_);
    Matrix m(row1 - row0, col1 - col0);
    for (std::size_t r = row0; r < row1; ++r)
        for (std::size_t c = col0; c < col1; ++c)
            m(r - row0, c - col0) = (*this)(r, c);
    return m;
}

void
Matrix::setBlock(std::size_t row0, std::size_t col0, const Matrix &b)
{
    assert(row0 + b.rows() <= rows_ && col0 + b.cols() <= cols_);
    for (std::size_t r = 0; r < b.rows(); ++r)
        for (std::size_t c = 0; c < b.cols(); ++c)
            (*this)(row0 + r, col0 + c) = b(r, c);
}

CVector
Matrix::col(std::size_t c) const
{
    assert(c < cols_);
    CVector v(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        v[r] = (*this)(r, c);
    return v;
}

void
Matrix::setCol(std::size_t c, const CVector &v)
{
    assert(c < cols_ && v.size() == rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        (*this)(r, c) = v[r];
}

void
Matrix::scaleCol(std::size_t c, Complex s)
{
    assert(c < cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        (*this)(r, c) *= s;
}

void
Matrix::swapCols(std::size_t a, std::size_t b)
{
    assert(a < cols_ && b < cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        std::swap((*this)(r, a), (*this)(r, b));
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream out;
    out.precision(precision);
    for (std::size_t r = 0; r < rows_; ++r) {
        out << "[ ";
        for (std::size_t c = 0; c < cols_; ++c) {
            const Complex x = (*this)(r, c);
            out << x.real() << (x.imag() >= 0 ? "+" : "-")
                << std::abs(x.imag()) << "i ";
        }
        out << "]\n";
    }
    return out.str();
}

Matrix
operator+(Matrix a, const Matrix &b)
{
    a += b;
    return a;
}

Matrix
operator-(Matrix a, const Matrix &b)
{
    a -= b;
    return a;
}

Matrix
operator*(const Matrix &a, const Matrix &b)
{
    assert(a.cols() == b.rows());
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const Complex aik = a(i, k);
            if (aik == Complex{0.0, 0.0})
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                c(i, j) += aik * b(k, j);
        }
    }
    return c;
}

Matrix
operator*(Complex s, Matrix a)
{
    a *= s;
    return a;
}

Matrix
operator*(Matrix a, Complex s)
{
    a *= s;
    return a;
}

Matrix
operator*(double s, Matrix a)
{
    a *= Complex{s, 0.0};
    return a;
}

CVector
operator*(const Matrix &a, const CVector &v)
{
    assert(a.cols() == v.size());
    CVector out(a.rows(), Complex{0.0, 0.0});
    for (std::size_t r = 0; r < a.rows(); ++r) {
        Complex s = 0.0;
        for (std::size_t c = 0; c < a.cols(); ++c)
            s += a(r, c) * v[c];
        out[r] = s;
    }
    return out;
}

Matrix
kron(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows() * b.rows(), a.cols() * b.cols());
    for (std::size_t ar = 0; ar < a.rows(); ++ar)
        for (std::size_t ac = 0; ac < a.cols(); ++ac) {
            const Complex f = a(ar, ac);
            if (f == Complex{0.0, 0.0})
                continue;
            for (std::size_t br = 0; br < b.rows(); ++br)
                for (std::size_t bc = 0; bc < b.cols(); ++bc)
                    c(ar * b.rows() + br, ac * b.cols() + bc) = f * b(br, bc);
        }
    return c;
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    double m = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            m = std::max(m, std::abs(a(r, c) - b(r, c)));
    return m;
}

bool
approxEqual(const Matrix &a, const Matrix &b, double tol)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return maxAbsDiff(a, b) <= tol;
}

bool
isUnitary(const Matrix &u, double tol)
{
    if (!u.isSquare())
        return false;
    return approxEqual(u.dagger() * u, Matrix::identity(u.rows()), tol);
}

bool
isHermitian(const Matrix &a, double tol)
{
    if (!a.isSquare())
        return false;
    return approxEqual(a, a.dagger(), tol);
}

Complex
dot(const CVector &a, const CVector &b)
{
    assert(a.size() == b.size());
    Complex s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += std::conj(a[i]) * b[i];
    return s;
}

double
norm(const CVector &v)
{
    double s = 0.0;
    for (const auto &x : v)
        s += std::norm(x);
    return std::sqrt(s);
}

} // namespace linalg
} // namespace crisc

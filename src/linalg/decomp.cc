#include "decomp.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace crisc {
namespace linalg {

namespace {

/** Jacobi tangent for tan(2*theta) = 1/tau, the stable small-angle root. */
double
jacobiTangent(double tau)
{
    if (tau == 0.0)
        return 1.0;
    const double sign = tau > 0.0 ? 1.0 : -1.0;
    return sign / (std::abs(tau) + std::sqrt(tau * tau + 1.0));
}

/** Largest absolute off-diagonal element of a square matrix. */
double
offDiagMax(const Matrix &a)
{
    double m = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            if (r != c)
                m = std::max(m, std::abs(a(r, c)));
    return m;
}

} // namespace

EigenSystem
eighHermitian(const Matrix &a)
{
    if (!a.isSquare())
        throw std::invalid_argument("eighHermitian: matrix not square");
    const std::size_t n = a.rows();
    // Symmetrize to wash out tiny Hermiticity violations from upstream
    // arithmetic; callers are expected to pass Hermitian input.
    Matrix m = 0.5 * (a + a.dagger());
    Matrix v = Matrix::identity(n);

    const double scale = std::max(m.maxAbs(), 1e-300);
    const int max_sweeps = 100;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (offDiagMax(m) <= 1e-14 * scale)
            break;
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const Complex apq = m(p, q);
                if (std::abs(apq) <= 1e-16 * scale)
                    continue;
                const double phi = std::arg(apq);
                const Complex eip = std::polar(1.0, phi);
                const double app = m(p, p).real();
                const double aqq = m(q, q).real();
                const double tau = (app - aqq) / (2.0 * std::abs(apq));
                const double t = jacobiTangent(tau);
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                // m <- m * J with J(p,p)=c, J(p,q)=-s e^{i phi},
                // J(q,p)=s e^{-i phi}, J(q,q)=c.
                for (std::size_t r = 0; r < n; ++r) {
                    const Complex mp = m(r, p), mq = m(r, q);
                    m(r, p) = c * mp + s * std::conj(eip) * mq;
                    m(r, q) = -s * eip * mp + c * mq;
                }
                // m <- J^dagger * m.
                for (std::size_t cc = 0; cc < n; ++cc) {
                    const Complex mp = m(p, cc), mq = m(q, cc);
                    m(p, cc) = c * mp + s * eip * mq;
                    m(q, cc) = -s * std::conj(eip) * mp + c * mq;
                }
                // v <- v * J.
                for (std::size_t r = 0; r < n; ++r) {
                    const Complex vp = v(r, p), vq = v(r, q);
                    v(r, p) = c * vp + s * std::conj(eip) * vq;
                    v(r, q) = -s * eip * vp + c * vq;
                }
            }
        }
    }

    EigenSystem out;
    out.values.resize(n);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::vector<double> raw(n);
    for (std::size_t i = 0; i < n; ++i)
        raw[i] = m(i, i).real();
    std::sort(order.begin(), order.end(),
              [&raw](std::size_t x, std::size_t y) { return raw[x] < raw[y]; });
    out.vectors = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        out.values[i] = raw[order[i]];
        out.vectors.setCol(i, v.col(order[i]));
    }
    return out;
}

ComplexEigenSystem
eigNormal(const Matrix &a)
{
    if (!a.isSquare())
        throw std::invalid_argument("eigNormal: matrix not square");
    const std::size_t n = a.rows();
    const Matrix h1 = 0.5 * (a + a.dagger());
    const Matrix h2 = Complex{0.0, -0.5} * (a - a.dagger());
    const double scale = std::max(a.maxAbs(), 1e-300);

    // Generic combinations; deterministic so results are reproducible.
    static const double kMixes[] = {
        0.73764351, 0.31415927, 1.25345678, -0.5831201, 2.2360679, 0.1116789,
    };
    double best_off = 1e300;
    ComplexEigenSystem best;
    for (const double t : kMixes) {
        const EigenSystem es = eighHermitian(h1 + t * h2);
        const Matrix d = es.vectors.dagger() * a * es.vectors;
        const double off = offDiagMax(d);
        if (off < best_off) {
            best_off = off;
            best.vectors = es.vectors;
            best.values.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                best.values[i] = d(i, i);
        }
        if (off <= 1e-11 * scale)
            break;
    }
    if (best_off > 1e-7 * scale)
        throw std::runtime_error("eigNormal: input does not appear normal");
    return best;
}

QRResult
qr(const Matrix &a)
{
    const std::size_t m = a.rows(), n = a.cols();
    if (m < n)
        throw std::invalid_argument("qr: requires rows >= cols");
    Matrix r = a;
    Matrix q = Matrix::identity(m);
    for (std::size_t k = 0; k < n; ++k) {
        // Householder vector for column k below the diagonal.
        double xnorm = 0.0;
        for (std::size_t i = k; i < m; ++i)
            xnorm += std::norm(r(i, k));
        xnorm = std::sqrt(xnorm);
        if (xnorm < 1e-300)
            continue;
        const Complex x0 = r(k, k);
        const Complex phase =
            std::abs(x0) > 0.0 ? x0 / std::abs(x0) : Complex{1.0, 0.0};
        const Complex alpha = -phase * xnorm;
        CVector v(m, Complex{0.0, 0.0});
        for (std::size_t i = k; i < m; ++i)
            v[i] = r(i, k);
        v[k] -= alpha;
        double vnorm = norm(v);
        if (vnorm < 1e-300)
            continue;
        for (auto &x : v)
            x /= vnorm;
        // r <- (I - 2 v v^dagger) r.
        for (std::size_t c = 0; c < n; ++c) {
            Complex w = 0.0;
            for (std::size_t i = k; i < m; ++i)
                w += std::conj(v[i]) * r(i, c);
            w *= 2.0;
            for (std::size_t i = k; i < m; ++i)
                r(i, c) -= w * v[i];
        }
        // q <- q (I - 2 v v^dagger).
        for (std::size_t i = 0; i < m; ++i) {
            Complex w = 0.0;
            for (std::size_t j = k; j < m; ++j)
                w += q(i, j) * v[j];
            w *= 2.0;
            for (std::size_t j = k; j < m; ++j)
                q(i, j) -= w * std::conj(v[j]);
        }
    }
    return {q, r};
}

SVDResult
svd(const Matrix &a)
{
    const std::size_t m = a.rows(), n = a.cols();
    if (m < n)
        throw std::invalid_argument("svd: requires rows >= cols");
    Matrix w = a;
    Matrix v = Matrix::identity(n);
    const double scale = std::max(a.maxAbs(), 1e-300);

    const int max_sweeps = 60;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        bool converged = true;
        for (std::size_t i = 0; i + 1 < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                Complex cij = 0.0;
                double nii = 0.0, njj = 0.0;
                for (std::size_t r = 0; r < m; ++r) {
                    cij += std::conj(w(r, i)) * w(r, j);
                    nii += std::norm(w(r, i));
                    njj += std::norm(w(r, j));
                }
                const double gamma = std::abs(cij);
                if (gamma <= 1e-15 * std::sqrt(nii * njj) + 1e-30 * scale)
                    continue;
                converged = false;
                // Phase-align column j so the inner product becomes real.
                const Complex eip = cij / gamma;
                w.scaleCol(j, std::conj(eip));
                v.scaleCol(j, std::conj(eip));
                const double tau = (nii - njj) / (2.0 * gamma);
                const double t = jacobiTangent(tau);
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (std::size_t r = 0; r < m; ++r) {
                    const Complex wi = w(r, i), wj = w(r, j);
                    w(r, i) = c * wi + s * wj;
                    w(r, j) = -s * wi + c * wj;
                }
                for (std::size_t r = 0; r < n; ++r) {
                    const Complex vi = v(r, i), vj = v(r, j);
                    v(r, i) = c * vi + s * vj;
                    v(r, j) = -s * vi + c * vj;
                }
            }
        }
        if (converged)
            break;
    }

    // Column norms are the singular values; sort them descending.
    std::vector<double> sig(n);
    for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t r = 0; r < m; ++r)
            s += std::norm(w(r, j));
        sig[j] = std::sqrt(s);
    }
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&sig](std::size_t x, std::size_t y) { return sig[x] > sig[y]; });

    SVDResult out;
    out.singular.resize(n);
    out.v = Matrix(n, n);
    Matrix u(m, m);
    std::size_t filled = 0;
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t src = order[j];
        out.singular[j] = sig[src];
        out.v.setCol(j, v.col(src));
        if (sig[src] > 1e-13 * std::max(sig[order[0]], 1e-300)) {
            CVector uc = w.col(src);
            for (auto &x : uc)
                x /= sig[src];
            u.setCol(filled++, uc);
        }
    }
    // Complete U to a full unitary with Gram-Schmidt over the standard
    // basis (handles rank deficiency and m > n).
    for (std::size_t e = 0; e < m && filled < m; ++e) {
        CVector cand(m, Complex{0.0, 0.0});
        cand[e] = 1.0;
        for (std::size_t j = 0; j < filled; ++j) {
            const CVector uj = u.col(j);
            const Complex ov = dot(uj, cand);
            for (std::size_t r = 0; r < m; ++r)
                cand[r] -= ov * uj[r];
        }
        const double nn = norm(cand);
        if (nn < 1e-8)
            continue;
        for (auto &x : cand)
            x /= nn;
        u.setCol(filled++, cand);
    }
    if (filled != m)
        throw std::runtime_error("svd: failed to complete U basis");
    out.u = u;
    return out;
}

Matrix
simultaneousDiagonalize(const Matrix &a, const Matrix &b)
{
    if (!a.isSquare() || a.rows() != b.rows())
        throw std::invalid_argument("simultaneousDiagonalize: bad shapes");
    const std::size_t n = a.rows();
    // Build exactly real symmetric copies so the Jacobi rotations stay real.
    auto realify = [n](const Matrix &x) {
        Matrix r(n, n);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                r(i, j) = 0.5 * (x(i, j).real() + x(j, i).real());
        return r;
    };
    const Matrix ar = realify(a);
    const Matrix br = realify(b);
    const double scale =
        std::max({ar.maxAbs(), br.maxAbs(), 1e-300});

    static const double kMixes[] = {
        0.61803399, 1.41421356, -0.3331799, 2.71828183, 0.10101010, 5.0,
    };
    double best_off = 1e300;
    Matrix best;
    for (const double t : kMixes) {
        const EigenSystem es = eighHermitian(ar + t * br);
        Matrix q(n, n);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                q(i, j) = es.vectors(i, j).real();
        const double off = std::max(offDiagMax(q.transpose() * ar * q),
                                    offDiagMax(q.transpose() * br * q));
        if (off < best_off) {
            best_off = off;
            best = q;
        }
        if (off <= 1e-11 * scale)
            break;
    }
    if (best_off > 1e-7 * scale) {
        throw std::runtime_error(
            "simultaneousDiagonalize: inputs do not commute");
    }
    if (best.det().real() < 0.0)
        best.scaleCol(n - 1, -1.0);
    return best;
}

Matrix
inverse(const Matrix &a)
{
    if (!a.isSquare())
        throw std::invalid_argument("inverse: matrix not square");
    const std::size_t n = a.rows();
    Matrix w = a;
    Matrix inv = Matrix::identity(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t pivot = k;
        double best = std::abs(w(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            if (std::abs(w(r, k)) > best) {
                best = std::abs(w(r, k));
                pivot = r;
            }
        }
        if (best < 1e-300)
            throw std::runtime_error("inverse: singular matrix");
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(w(k, c), w(pivot, c));
                std::swap(inv(k, c), inv(pivot, c));
            }
        }
        const Complex d = w(k, k);
        for (std::size_t c = 0; c < n; ++c) {
            w(k, c) /= d;
            inv(k, c) /= d;
        }
        for (std::size_t r = 0; r < n; ++r) {
            if (r == k)
                continue;
            const Complex f = w(r, k);
            if (f == Complex{0.0, 0.0})
                continue;
            for (std::size_t c = 0; c < n; ++c) {
                w(r, c) -= f * w(k, c);
                inv(r, c) -= f * inv(k, c);
            }
        }
    }
    return inv;
}

} // namespace linalg
} // namespace crisc

/**
 * @file
 * Cold-path trace export: Chrome trace-event JSON serialization and
 * per-span-name aggregation. Kept out of obs.cc so the recording hot
 * path stays small.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <vector>

#include "obs.hh"

namespace crisc {
namespace obs {

namespace {

/** Escapes JSON string specials (span names are ASCII by convention). */
std::string
escaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Nanoseconds as a microsecond JSON number with ns resolution. */
std::string
micros(std::uint64_t ns)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    return buf;
}

} // namespace

std::vector<SpanSummary>
summarize(const Trace &trace)
{
    // Group by name *content*: the same site name may be interned to
    // different pointers across sessions.
    std::map<std::string, std::vector<std::uint64_t>> durations;
    for (const SpanEvent &e : trace.events)
        durations[e.name].push_back(e.durNs);

    std::vector<SpanSummary> out;
    out.reserve(durations.size());
    for (auto &entry : durations) {
        std::vector<std::uint64_t> &durs = entry.second;
        std::sort(durs.begin(), durs.end());
        SpanSummary s;
        s.name = entry.first;
        s.count = durs.size();
        for (const std::uint64_t d : durs)
            s.totalNs += d;
        s.meanNs = static_cast<double>(s.totalNs) /
                   static_cast<double>(s.count);
        // Nearest-rank p95: the ceil(0.95 * count)-th smallest value.
        const std::size_t rank = (durs.size() * 95 + 99) / 100;
        s.p95Ns = durs[rank - 1];
        out.push_back(std::move(s));
    }
    return out;
}

std::string
chromeTraceJson(const Trace &trace)
{
    // Timestamps are rebased to the earliest event so Perfetto's
    // timeline starts near zero.
    std::uint64_t base = 0;
    std::uint64_t end = 0;
    bool first = true;
    for (const SpanEvent &e : trace.events) {
        if (first || e.t0Ns < base)
            base = e.t0Ns;
        if (first || e.t0Ns + e.durNs > end)
            end = e.t0Ns + e.durNs;
        first = false;
    }

    std::vector<std::uint32_t> tids;
    for (const SpanEvent &e : trace.events)
        if (std::find(tids.begin(), tids.end(), e.tid) == tids.end())
            tids.push_back(e.tid);
    std::sort(tids.begin(), tids.end());

    std::string out = "{\"traceEvents\": [\n";
    bool comma = false;
    const auto append = [&](const std::string &event) {
        if (comma)
            out += ",\n";
        out += "  " + event;
        comma = true;
    };

    append("{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
           "\"name\": \"process_name\", "
           "\"args\": {\"name\": \"crisc\"}}");
    for (const std::uint32_t tid : tids)
        append("{\"ph\": \"M\", \"pid\": 1, \"tid\": " +
               std::to_string(tid) +
               ", \"name\": \"thread_name\", \"args\": {\"name\": "
               "\"thread-" +
               std::to_string(tid) + "\"}}");

    for (const SpanEvent &e : trace.events)
        append("{\"ph\": \"X\", \"pid\": 1, \"tid\": " +
               std::to_string(e.tid) + ", \"name\": \"" +
               escaped(e.name) + "\", \"ts\": " + micros(e.t0Ns - base) +
               ", \"dur\": " + micros(e.durNs) + "}");

    // One trailing counter sample per counter, stamped at trace end so
    // Perfetto shows a track with the session's final value.
    for (const CounterSample &c : trace.counters)
        append("{\"ph\": \"C\", \"pid\": 1, \"name\": \"" +
               escaped(c.name) + "\", \"ts\": " + micros(end - base) +
               ", \"args\": {\"value\": " + std::to_string(c.value) +
               "}}");

    out += "\n],\n\"displayTimeUnit\": \"ns\",\n";
    out += "\"otherData\": {\"backend\": \"" +
           std::string(backendName()) +
           "\", \"dropped_events\": " + std::to_string(trace.dropped) +
           "}\n}\n";
    return out;
}

void
writeChromeTrace(const Trace &trace, const std::string &path)
{
    std::ofstream file(path);
    if (!file)
        throw std::runtime_error("writeChromeTrace: cannot open " + path);
    file << chromeTraceJson(trace);
    if (!file.flush())
        throw std::runtime_error("writeChromeTrace: write failed for " +
                                 path);
}

} // namespace obs
} // namespace crisc

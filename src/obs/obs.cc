#include "obs.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>

namespace crisc {
namespace obs {

namespace detail {
std::atomic<bool> gEnabled{false};
} // namespace detail

namespace {

/**
 * One thread's span buffer. Appends are owner-thread-only and
 * lock-free: the slot is written first, then the count is published
 * with a release store, so a collector's acquire load always sees a
 * consistent prefix. A stale epoch (from a previous session) makes the
 * owner reset its own buffer on the next append — no foreign thread
 * ever writes here, which is what keeps the fast path race-free.
 */
struct ThreadBuffer
{
    /** 64 Ki events (2 MiB) per recording thread; beyond that, drop. */
    static constexpr std::size_t kCapacity = std::size_t{1} << 16;

    explicit ThreadBuffer(std::uint32_t tid_) : tid(tid_) {}

    std::uint32_t tid;
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint32_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
    std::vector<SpanEvent> slots; ///< sized lazily on first append.
};

struct Registry
{
    std::mutex mutex; ///< guards `buffers` growth (not appends).
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
    /** Session epoch; bumped by TraceSession::start to invalidate old
     *  buffer contents without touching them cross-thread. */
    std::atomic<std::uint64_t> epoch{1};

    std::mutex counterMutex;
    /** Ordered so collected samples come out sorted by name; node-based
     *  so Counter references stay valid forever. */
    std::map<std::string, std::unique_ptr<Counter>> counters;

    std::mutex nameMutex;
    /** Node-based: element addresses (and c_str()) are stable. */
    std::unordered_set<std::string> names;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

ThreadBuffer &
threadBuffer()
{
    thread_local ThreadBuffer *buf = nullptr;
    if (buf == nullptr) {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.buffers.push_back(std::make_unique<ThreadBuffer>(
            static_cast<std::uint32_t>(r.buffers.size())));
        buf = r.buffers.back().get();
    }
    return *buf;
}

} // namespace

const char *
backendName()
{
    return compiledIn() ? "ring" : "off";
}

void
setEnabled(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

void
recordSpan(const char *name, std::uint64_t t0_ns, std::uint64_t t1_ns)
{
    ThreadBuffer &buf = threadBuffer();
    const std::uint64_t epoch =
        registry().epoch.load(std::memory_order_relaxed);
    if (buf.epoch.load(std::memory_order_relaxed) != epoch) {
        // New session since this thread last recorded: owner-side reset.
        buf.count.store(0, std::memory_order_relaxed);
        buf.dropped.store(0, std::memory_order_relaxed);
        buf.epoch.store(epoch, std::memory_order_release);
    }
    if (buf.slots.empty()) {
        try {
            buf.slots.resize(ThreadBuffer::kCapacity);
        } catch (...) {
            // Recording is best-effort (and runs in destructors): treat
            // an allocation failure as a dropped event, never throw.
            buf.dropped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }
    const std::uint32_t n = buf.count.load(std::memory_order_relaxed);
    if (n >= ThreadBuffer::kCapacity) {
        buf.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf.slots[n] =
        SpanEvent{name, buf.tid, t0_ns, t1_ns >= t0_ns ? t1_ns - t0_ns : 0};
    buf.count.store(n + 1, std::memory_order_release);
}

const char *
internName(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.nameMutex);
    return r.names.insert(name).first->c_str();
}

Counter &
counter(const char *name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.counterMutex);
    std::unique_ptr<Counter> &slot = r.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

void
TraceSession::start()
{
    Registry &r = registry();
    {
        std::lock_guard<std::mutex> lock(r.counterMutex);
        for (auto &entry : r.counters)
            entry.second->reset();
    }
    // Invalidate every thread's previous-session events; each owner
    // resets its buffer on its next append (see ThreadBuffer).
    r.epoch.fetch_add(1, std::memory_order_relaxed);
    setEnabled(true);
}

void
TraceSession::stop()
{
    setEnabled(false);
}

Trace
TraceSession::collect() const
{
    Registry &r = registry();
    Trace trace;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        const std::uint64_t epoch = r.epoch.load(std::memory_order_relaxed);
        for (const auto &buf : r.buffers) {
            if (buf->epoch.load(std::memory_order_acquire) != epoch)
                continue; // never recorded in this session.
            const std::uint32_t n =
                buf->count.load(std::memory_order_acquire);
            for (std::uint32_t i = 0; i < n; ++i)
                trace.events.push_back(buf->slots[i]);
            trace.dropped += buf->dropped.load(std::memory_order_relaxed);
        }
    }
    std::sort(trace.events.begin(), trace.events.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.t0Ns != b.t0Ns)
                      return a.t0Ns < b.t0Ns;
                  return a.durNs > b.durNs; // parents before children.
              });
    {
        std::lock_guard<std::mutex> lock(r.counterMutex);
        for (const auto &entry : r.counters)
            trace.counters.push_back(
                {entry.first, entry.second->value()});
    }
    return trace;
}

void
mergeInto(Trace &into, const Trace &from)
{
    into.events.insert(into.events.end(), from.events.begin(),
                       from.events.end());
    into.dropped += from.dropped;
    for (const CounterSample &c : from.counters) {
        auto it = std::find_if(
            into.counters.begin(), into.counters.end(),
            [&](const CounterSample &e) { return e.name == c.name; });
        if (it == into.counters.end())
            into.counters.push_back(c);
        else
            it->value += c.value;
    }
    std::sort(into.counters.begin(), into.counters.end(),
              [](const CounterSample &a, const CounterSample &b) {
                  return a.name < b.name;
              });
}

} // namespace obs
} // namespace crisc

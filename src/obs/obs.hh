/**
 * @file
 * Unified tracing & metrics ("obs"): scoped spans and named
 * counters/gauges recorded into lock-free per-thread buffers, collected
 * by a TraceSession into Chrome trace-event JSON (loadable in
 * chrome://tracing or https://ui.perfetto.dev) plus per-span-name
 * aggregates (count, total/mean/p95 ns) that the benchmark runner
 * merges into the schema-versioned BENCH_*.json reports.
 *
 * Hot-path contract:
 *   - `OBS_SPAN("name")`, `OBS_COUNT("name", n)` and
 *     `OBS_GAUGE("name", v)` cost one relaxed atomic load and a branch
 *     while tracing is off; configured with -DCRISC_OBS=OFF they
 *     compile to nothing.
 *   - Span names must have static storage duration: string literals,
 *     `Pass::name()`-style stable pointers, or `obs::internName()`
 *     results. The recorded event stores the pointer, not a copy.
 *   - A recording thread appends to its own fixed-capacity buffer with
 *     no locks; a full buffer counts drops (Trace::dropped) instead of
 *     blocking or reallocating.
 *
 * Collection contract: TraceSession::collect() must run while no
 * instrumented code executes concurrently — in practice, after the
 * pools/threads doing traced work have finished their batches (a
 * returned ThreadPool::parallelFor is enough; its join publishes every
 * worker's events). Counters are cumulative within a session and reset
 * by start(). Tracing never changes simulation results: instrumented
 * code paths perform the same floating-point operations in the same
 * order whether the flag is on or off.
 */

#ifndef CRISC_OBS_OBS_HH
#define CRISC_OBS_OBS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace crisc {
namespace obs {

// ------------------------------------------------------------ hot path

namespace detail {
extern std::atomic<bool> gEnabled; ///< the runtime tracing flag.
} // namespace detail

/** Whether the OBS_* macros were compiled in (-DCRISC_OBS, default ON). */
constexpr bool
compiledIn()
{
#ifdef CRISC_OBS_DISABLED
    return false;
#else
    return true;
#endif
}

/** Recording backend name for reports: "ring", or "off" when compiled
 *  out. */
const char *backendName();

/** Is tracing currently recording? One relaxed load. */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

/** Flips the runtime recording flag (TraceSession::start also resets
 *  buffers and counters; use that to begin a fresh session). */
void setEnabled(bool on);

/** Monotonic timestamp in nanoseconds (steady_clock). */
inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Appends one completed span to the calling thread's buffer.
 * @p name must have static storage duration.
 */
void recordSpan(const char *name, std::uint64_t t0_ns, std::uint64_t t1_ns);

/**
 * Interns a dynamic span name, returning a stable pointer that lives
 * until process exit. Intended for low-frequency call sites that build
 * names at runtime (e.g. "pass." + pass->name()); hot sites should use
 * literals.
 */
const char *internName(const std::string &name);

/** A named monotonic counter (add) or last-value gauge (set). */
class Counter
{
  public:
    void add(std::uint64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    void set(std::uint64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * The process-wide counter registered under @p name (created on first
 * use). The reference stays valid until process exit, so call sites
 * can cache it in a static local — which is what OBS_COUNT does.
 */
Counter &counter(const char *name);

/**
 * RAII span for the OBS_SPAN macro: samples the clock only when
 * tracing was enabled at construction, and records the completed span
 * at scope exit.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
        : name_(enabled() ? name : nullptr), t0_(name_ ? nowNs() : 0)
    {
    }
    ~ScopedSpan()
    {
        if (name_ != nullptr)
            recordSpan(name_, t0_, nowNs());
    }
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    std::uint64_t t0_;
};

/**
 * A span that always measures wall time and only *records* when
 * tracing is on (and compiled in). For call sites that need the
 * duration regardless — PassManager derives PassMetrics::wallSeconds
 * from it, so the report field and the trace event come from the same
 * two clock samples (bit-identical to the pre-obs hand-rolled timing).
 * A null @p name measures without ever recording.
 */
class TimedSpan
{
  public:
    explicit TimedSpan(const char *name)
        : name_(name), t0_(std::chrono::steady_clock::now())
    {
    }

    /** Ends the span; returns the elapsed wall time in seconds. */
    double finishSeconds()
    {
        const auto t1 = std::chrono::steady_clock::now();
        if (compiledIn() && name_ != nullptr && enabled())
            recordSpan(name_, toNs(t0_), toNs(t1));
        return std::chrono::duration<double>(t1 - t0_).count();
    }

  private:
    static std::uint64_t toNs(std::chrono::steady_clock::time_point tp)
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                tp.time_since_epoch())
                .count());
    }

    const char *name_;
    std::chrono::steady_clock::time_point t0_;
};

// ----------------------------------------------------------- the macros

#define CRISC_OBS_CAT2(a, b) a##b
#define CRISC_OBS_CAT(a, b) CRISC_OBS_CAT2(a, b)

#ifndef CRISC_OBS_DISABLED

/** Scoped span covering the rest of the enclosing block. */
#define OBS_SPAN(name)                                                      \
    ::crisc::obs::ScopedSpan CRISC_OBS_CAT(criscObsSpan, __LINE__)(name)

/** Adds @p delta to the named counter when tracing is on. */
#define OBS_COUNT(name, delta)                                              \
    do {                                                                    \
        if (::crisc::obs::enabled()) {                                      \
            static ::crisc::obs::Counter &criscObsCounter =                 \
                ::crisc::obs::counter(name);                                \
            criscObsCounter.add(static_cast<std::uint64_t>(delta));         \
        }                                                                   \
    } while (0)

/** Sets the named gauge to @p value when tracing is on. */
#define OBS_GAUGE(name, value)                                              \
    do {                                                                    \
        if (::crisc::obs::enabled()) {                                      \
            static ::crisc::obs::Counter &criscObsGauge =                   \
                ::crisc::obs::counter(name);                                \
            criscObsGauge.set(static_cast<std::uint64_t>(value));           \
        }                                                                   \
    } while (0)

#else // CRISC_OBS_DISABLED

#define OBS_SPAN(name) static_cast<void>(0)
#define OBS_COUNT(name, delta) static_cast<void>(0)
#define OBS_GAUGE(name, value) static_cast<void>(0)

#endif // CRISC_OBS_DISABLED

// ------------------------------------------------- collection & export

/** One completed span, as recorded (timestamps are steady_clock ns). */
struct SpanEvent
{
    const char *name = nullptr;
    std::uint32_t tid = 0;   ///< stable per-thread id (registration order).
    std::uint64_t t0Ns = 0;  ///< start, steady_clock nanoseconds.
    std::uint64_t durNs = 0; ///< duration in nanoseconds.
};

/** A counter/gauge value at collection time. */
struct CounterSample
{
    std::string name;
    std::uint64_t value = 0;
};

/** Everything one collection produced. */
struct Trace
{
    std::vector<SpanEvent> events;       ///< sorted by (tid, t0Ns).
    std::vector<CounterSample> counters; ///< sorted by name.
    std::uint64_t dropped = 0;           ///< events lost to full buffers.
};

/** Aggregate of all spans sharing a name. */
struct SpanSummary
{
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    double meanNs = 0.0;
    std::uint64_t p95Ns = 0; ///< nearest-rank 95th percentile duration.
};

/**
 * One tracing session over the process-wide buffers. start() resets
 * every per-thread buffer and counter (buffers reset lazily, on the
 * owning thread's next append) and enables recording; stop() disables
 * it; collect() merges the per-thread buffers. See the file comment
 * for the quiescence requirement on stop()/collect().
 */
class TraceSession
{
  public:
    void start();
    void stop();
    bool active() const { return enabled(); }
    Trace collect() const;
};

/** Per-span-name aggregates of @p trace, sorted by name. */
std::vector<SpanSummary> summarize(const Trace &trace);

/**
 * Serializes @p trace as Chrome trace-event JSON ("X" complete events
 * with pid/tid/ts/dur in microseconds, thread-name metadata, and one
 * trailing "C" counter event per counter), loadable in chrome://tracing
 * and Perfetto.
 */
std::string chromeTraceJson(const Trace &trace);

/**
 * Writes chromeTraceJson(trace) to @p path.
 * @throws std::runtime_error if the file cannot be written.
 */
void writeChromeTrace(const Trace &trace, const std::string &path);

/** Appends @p from's events into @p into, summing counters by name
 *  and accumulating drops (for multi-session traces). */
void mergeInto(Trace &into, const Trace &from);

} // namespace obs
} // namespace crisc

#endif // CRISC_OBS_OBS_HH

#include "passes.hh"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "qop/gates.hh"
#include "qop/metrics.hh"
#include "synth/qsd.hh"
#include "synth/three_qubit.hh"
#include "synth/two_qubit.hh"

namespace crisc {
namespace transpile {

using circuit::Circuit;
using circuit::Gate;
using linalg::Matrix;

Circuit
WideGateDecompose::run(const Circuit &in, PassContext &) const
{
    Circuit out(in.numQubits());
    for (const Gate &g : in.gates()) {
        if (g.qubits.size() <= 2) {
            out.add(g.op, g.qubits, g.label);
            continue;
        }
        const Circuit sub = synth::genericQsd(g.op);
        for (const Gate &sg : sub.gates()) {
            std::vector<std::size_t> mapped;
            for (std::size_t q : sg.qubits)
                mapped.push_back(g.qubits[q]);
            out.add(sg.op, std::move(mapped), sg.label);
        }
    }
    return out;
}

Circuit
SingleQubitFuse::run(const Circuit &in, PassContext &) const
{
    return synth::mergeTwoQubitGates(in);
}

namespace {

/** True when the gate acts on any qubit of @p qubits. */
bool
touchesAny(const Gate &g, const std::vector<std::size_t> &qubits)
{
    for (std::size_t a : g.qubits)
        for (std::size_t b : qubits)
            if (a == b)
                return true;
    return false;
}

/** Is @p m the identity up to global phase? */
bool
isIdentity(const Matrix &m, double tol)
{
    return qop::equalUpToGlobalPhase(m, Matrix::identity(m.rows()), tol);
}

/**
 * The product other * g for a pair on the same qubit set, with @p other
 * re-expressed in g's qubit order when the pair is reversed. Returns
 * false when the qubit sets differ.
 */
bool
pairProduct(const Gate &g, const Gate &other, Matrix &product)
{
    if (g.qubits == other.qubits) {
        product = other.op * g.op;
        return true;
    }
    if (g.qubits.size() == 2 && other.qubits.size() == 2 &&
        g.qubits[0] == other.qubits[1] && g.qubits[1] == other.qubits[0]) {
        const Matrix &sw = qop::swapGate();
        product = sw * other.op * sw * g.op;
        return true;
    }
    return false;
}

} // namespace

Circuit
PeepholeCancel::run(const Circuit &in, PassContext &) const
{
    std::vector<Gate> gates = in.gates();
    bool changed = true;
    while (changed) {
        changed = false;
        // One forward sweep, resuming just before each removal (new
        // cancellations appear next to it); the outer loop catches the
        // rare earlier gate a removal unblocked.
        for (std::size_t i = 0; i < gates.size();) {
            if (isIdentity(gates[i].op, tol_)) {
                gates.erase(gates.begin() + i);
                changed = true;
                i = i > 0 ? i - 1 : 0;
                continue;
            }
            bool cancelled = false;
            // Next gate touching i's qubits; gates in between commute.
            for (std::size_t j = i + 1; j < gates.size(); ++j) {
                if (!touchesAny(gates[j], gates[i].qubits))
                    continue;
                Matrix product;
                if (pairProduct(gates[i], gates[j], product) &&
                    isIdentity(product, tol_)) {
                    gates.erase(gates.begin() + j);
                    gates.erase(gates.begin() + i);
                    cancelled = true;
                }
                break; // blocked either way
            }
            if (cancelled) {
                changed = true;
                i = i > 0 ? i - 1 : 0;
            } else {
                ++i;
            }
        }
    }
    Circuit out(in.numQubits());
    for (Gate &g : gates)
        out.add(std::move(g.op), std::move(g.qubits), std::move(g.label));
    return out;
}

Circuit
Route::run(const Circuit &in, PassContext &ctx) const
{
    if (ctx.coupling == nullptr)
        throw std::invalid_argument("Route: PassContext.coupling is null");
    const route::CouplingMap &map = *ctx.coupling;
    if (map.numQubits() < in.numQubits())
        throw std::invalid_argument(
            "Route: device has fewer qubits than the circuit");

    route::Layout layout(map.numQubits());
    Circuit out(map.numQubits());
    for (const Gate &g : in.gates()) {
        if (g.qubits.size() > 2)
            throw std::invalid_argument("Route: gate wider than two qubits "
                                        "(run WideGateDecompose first)");
        if (g.qubits.size() != 2) {
            std::vector<std::size_t> mapped;
            for (std::size_t q : g.qubits)
                mapped.push_back(layout.physicalOf(q));
            out.add(g.op, std::move(mapped), g.label);
            continue;
        }
        const std::size_t a = g.qubits[0], b = g.qubits[1];
        for (const auto &sw : route::routePair(map, layout, a, b))
            out.add(qop::swapGate(), {sw.first, sw.second}, "swap");
        out.add(g.op, {layout.physicalOf(a), layout.physicalOf(b)},
                g.label);
    }
    ctx.layout = layout;
    return out;
}

std::size_t
WeylCache::KeyHash::operator()(const Key &k) const
{
    const std::hash<double> h;
    std::size_t seed = h(k.x);
    for (const double v : {k.y, k.z, k.h, k.r})
        seed ^= h(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    return seed;
}

WeylCache::Entry
WeylCache::lookup(const weyl::WeylPoint &p, double h, double r)
{
    // Normalize -0.0 so Key equality and hashing agree.
    auto norm = [](double v) { return v == 0.0 ? 0.0 : v; };
    const Key key{norm(p.x), norm(p.y), norm(p.z), norm(h), norm(r)};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            return it->second;
        }
    }
    // Synthesize outside the lock; a raced duplicate computes the same
    // deterministic entry and emplace keeps whichever landed first.
    Entry e;
    e.params = ashn::synthesize(p, h, r);
    e.pulse = ashn::realize(e.params);
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    return map_.emplace(key, std::move(e)).first->second;
}

std::size_t
WeylCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::size_t
WeylCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
WeylCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

Circuit
AshNLower::run(const Circuit &in, PassContext &ctx) const
{
    Circuit out(in.numQubits());
    for (const Gate &g : in.gates()) {
        if (g.qubits.size() > 2)
            throw std::invalid_argument(
                "AshNLower: gate wider than two qubits "
                "(run WideGateDecompose first)");
        if (g.qubits.size() != 2) {
            out.add(g.op, g.qubits, g.label);
            if (g.qubits.size() == 1)
                ++ctx.singleQubitGates;
            continue;
        }
        const weyl::WeylPoint p = weyl::weylCoordinates(g.op);
        const WeylCache::Entry e = cache_.lookup(p, ctx.h, ctx.r);
        const synth::AshnCompiled ac =
            synth::compileToAshn(g.op, e.params, e.pulse);
        const std::size_t a = g.qubits[0], b = g.qubits[1];
        out.add(ac.r1, {a}, "pre");
        out.add(ac.r2, {b}, "pre");
        out.add(std::polar(1.0, ac.phase) * e.pulse, {a, b}, "pulse");
        out.add(ac.l1, {a}, "post");
        out.add(ac.l2, {b}, "post");
        ctx.singleQubitGates += 4;
        ctx.pulses.push_back({a, b, e.params});
        ctx.totalPulseTime += e.params.tau;
    }
    return out;
}

} // namespace transpile
} // namespace crisc

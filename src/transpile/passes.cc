#include "passes.hh"

#include <stdexcept>
#include <utility>

#include "qop/gates.hh"
#include "qop/metrics.hh"
#include "synth/qsd.hh"
#include "synth/three_qubit.hh"

namespace crisc {
namespace transpile {

using circuit::Circuit;
using circuit::Gate;
using linalg::Matrix;

Circuit
WideGateDecompose::run(const Circuit &in, PassContext &) const
{
    Circuit out(in.numQubits());
    for (const Gate &g : in.gates()) {
        if (g.qubits.size() <= 2) {
            out.add(g.op, g.qubits, g.label);
            continue;
        }
        const Circuit sub = synth::genericQsd(g.op);
        for (const Gate &sg : sub.gates()) {
            std::vector<std::size_t> mapped;
            for (std::size_t q : sg.qubits)
                mapped.push_back(g.qubits[q]);
            out.add(sg.op, std::move(mapped), sg.label);
        }
    }
    return out;
}

Circuit
SingleQubitFuse::run(const Circuit &in, PassContext &) const
{
    return synth::mergeTwoQubitGates(in);
}

namespace {

/** True when the gate acts on any qubit of @p qubits. */
bool
touchesAny(const Gate &g, const std::vector<std::size_t> &qubits)
{
    for (std::size_t a : g.qubits)
        for (std::size_t b : qubits)
            if (a == b)
                return true;
    return false;
}

/** Is @p m the identity up to global phase? */
bool
isIdentity(const Matrix &m, double tol)
{
    return qop::equalUpToGlobalPhase(m, Matrix::identity(m.rows()), tol);
}

/**
 * The product other * g for a pair on the same qubit set, with @p other
 * re-expressed in g's qubit order when the pair is reversed. Returns
 * false when the qubit sets differ.
 */
bool
pairProduct(const Gate &g, const Gate &other, Matrix &product)
{
    if (g.qubits == other.qubits) {
        product = other.op * g.op;
        return true;
    }
    if (g.qubits.size() == 2 && other.qubits.size() == 2 &&
        g.qubits[0] == other.qubits[1] && g.qubits[1] == other.qubits[0]) {
        const Matrix &sw = qop::swapGate();
        product = sw * other.op * sw * g.op;
        return true;
    }
    return false;
}

} // namespace

Circuit
PeepholeCancel::run(const Circuit &in, PassContext &) const
{
    std::vector<Gate> gates = in.gates();
    bool changed = true;
    while (changed) {
        changed = false;
        // One forward sweep, resuming just before each removal (new
        // cancellations appear next to it); the outer loop catches the
        // rare earlier gate a removal unblocked.
        for (std::size_t i = 0; i < gates.size();) {
            if (isIdentity(gates[i].op, tol_)) {
                gates.erase(gates.begin() + i);
                changed = true;
                i = i > 0 ? i - 1 : 0;
                continue;
            }
            bool cancelled = false;
            // Next gate touching i's qubits; gates in between commute.
            for (std::size_t j = i + 1; j < gates.size(); ++j) {
                if (!touchesAny(gates[j], gates[i].qubits))
                    continue;
                Matrix product;
                if (pairProduct(gates[i], gates[j], product) &&
                    isIdentity(product, tol_)) {
                    gates.erase(gates.begin() + j);
                    gates.erase(gates.begin() + i);
                    cancelled = true;
                }
                break; // blocked either way
            }
            if (cancelled) {
                changed = true;
                i = i > 0 ? i - 1 : 0;
            } else {
                ++i;
            }
        }
    }
    Circuit out(in.numQubits());
    for (Gate &g : gates)
        out.add(std::move(g.op), std::move(g.qubits), std::move(g.label));
    return out;
}

Circuit
Route::run(const Circuit &in, PassContext &ctx) const
{
    if (ctx.coupling == nullptr)
        throw std::invalid_argument("Route: PassContext.coupling is null");
    const route::CouplingMap &map = *ctx.coupling;
    if (map.numQubits() < in.numQubits())
        throw std::invalid_argument(
            "Route: device has fewer qubits than the circuit");

    route::Layout layout(map.numQubits());
    Circuit out(map.numQubits());
    for (const Gate &g : in.gates()) {
        if (g.qubits.size() > 2)
            throw std::invalid_argument("Route: gate wider than two qubits "
                                        "(run WideGateDecompose first)");
        if (g.qubits.size() != 2) {
            std::vector<std::size_t> mapped;
            for (std::size_t q : g.qubits)
                mapped.push_back(layout.physicalOf(q));
            out.add(g.op, std::move(mapped), g.label);
            continue;
        }
        const std::size_t a = g.qubits[0], b = g.qubits[1];
        for (const auto &sw : route::routePair(map, layout, a, b))
            out.add(qop::swapGate(), {sw.first, sw.second}, "swap");
        out.add(g.op, {layout.physicalOf(a), layout.physicalOf(b)},
                g.label);
    }
    ctx.layout = layout;
    return out;
}

NativeLower::NativeLower(
    std::shared_ptr<const device::NativeGateSet> gate_set)
    : gateSet_(gate_set != nullptr
                   ? std::move(gate_set)
                   : device::makeNativeGateSet(device::NativeKind::AshN))
{
}

Circuit
NativeLower::run(const Circuit &in, PassContext &ctx) const
{
    Circuit out(in.numQubits());
    for (const Gate &g : in.gates()) {
        if (g.qubits.size() > 2)
            throw std::invalid_argument(
                "NativeLower: gate wider than two qubits "
                "(run WideGateDecompose first)");
        if (g.qubits.size() != 2) {
            out.add(g.op, g.qubits, g.label);
            if (g.qubits.size() == 1)
                ++ctx.singleQubitGates;
            continue;
        }
        const device::Lowered2q low = gateSet_->lower(g.op);
        const std::size_t a = g.qubits[0], b = g.qubits[1];
        for (const Gate &lg : low.ops.gates()) {
            std::vector<std::size_t> mapped;
            for (std::size_t q : lg.qubits)
                mapped.push_back(q == 0 ? a : b);
            if (lg.qubits.size() == 1)
                ++ctx.singleQubitGates;
            out.add(lg.op, std::move(mapped), lg.label);
        }
        if (low.pulse)
            ctx.pulses.push_back({a, b, *low.pulse});
        ctx.nativeGates += static_cast<std::size_t>(low.cost.nativeGates);
        ctx.totalPulseTime += low.cost.totalTime;
    }
    return out;
}

} // namespace transpile
} // namespace crisc

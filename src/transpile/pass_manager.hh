/**
 * @file
 * PassManager: an ordered pipeline of transpiler passes over the
 * gate-list circuit IR. Running the pipeline threads one PassContext
 * through every pass and records per-pass PassMetrics (gate/depth/2q
 * deltas, accumulated pulse time, wall time) into a TranspileReport.
 *
 * A PassManager is immutable once built and safe to run from many
 * threads concurrently (each run owns its context and circuit);
 * transpile.hh's transpileBatch fans circuits out over one shared
 * pipeline so stateful passes (the NativeLower gate set's Weyl cache)
 * are shared.
 */

#ifndef CRISC_TRANSPILE_PASS_MANAGER_HH
#define CRISC_TRANSPILE_PASS_MANAGER_HH

#include <memory>
#include <utility>
#include <vector>

#include "transpile/pass.hh"

namespace crisc {
namespace transpile {

/** Everything a pipeline run produces. */
struct TranspileResult
{
    circuit::Circuit circuit;  ///< the rewritten circuit.
    PassContext context;       ///< layout, pulse schedule, counters.
    TranspileReport report;    ///< per-pass metrics.

    TranspileResult() : circuit(0) {}
};

/** An ordered, immutable-after-build pipeline of passes. */
class PassManager
{
  public:
    PassManager() = default;
    PassManager(PassManager &&) = default;
    PassManager &operator=(PassManager &&) = default;

    /** Appends a pass; returns *this for chaining. */
    PassManager &add(std::unique_ptr<Pass> pass);

    /** Constructs and appends a pass of type P. */
    template <typename P, typename... Args>
    PassManager &emplace(Args &&...args)
    {
        return add(std::make_unique<P>(std::forward<Args>(args)...));
    }

    std::size_t size() const { return passes_.size(); }
    const Pass &pass(std::size_t i) const { return *passes_.at(i); }

    /**
     * Runs every pass in order on @p input, starting from @p ctx.
     * Thread-safe: concurrent runs only share the (internally
     * synchronized) pass instances.
     */
    TranspileResult run(const circuit::Circuit &input,
                        PassContext ctx = {}) const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

} // namespace transpile
} // namespace crisc

#endif // CRISC_TRANSPILE_PASS_MANAGER_HH

/**
 * @file
 * The concrete passes of the transpiler:
 *
 *   WideGateDecompose — expands k >= 3 qubit gates through the generic
 *       QSD so downstream passes only see 1q/2q gates.
 *   SingleQubitFuse   — merges runs of single-qubit gates into their
 *       two-qubit neighbours (synth::mergeTwoQubitGates).
 *   PeepholeCancel    — drops identity gates and cancels adjacent
 *       mutually-inverse pairs on the same qubits.
 *   Route             — maps the circuit onto a device CouplingMap,
 *       inserting SWAPs along shortest paths and recording the final
 *       logical-to-physical layout in the context.
 *   AshNLower         — replaces every two-qubit gate by one AshN pulse
 *       plus single-qubit corrections, appending to the context's pulse
 *       schedule. Weyl synthesis results are memoized in a shared,
 *       thread-safe cache keyed by canonical chamber coordinates.
 */

#ifndef CRISC_TRANSPILE_PASSES_HH
#define CRISC_TRANSPILE_PASSES_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "ashn/scheme.hh"
#include "linalg/matrix.hh"
#include "transpile/pass.hh"
#include "weyl/weyl.hh"

namespace crisc {
namespace transpile {

/** Expands gates on >= 3 qubits with synth::genericQsd. */
class WideGateDecompose final : public Pass
{
  public:
    const char *name() const override { return "wide-gate-decompose"; }
    circuit::Circuit run(const circuit::Circuit &in,
                         PassContext &ctx) const override;
};

/** Merges single-qubit runs into neighbouring two-qubit gates. */
class SingleQubitFuse final : public Pass
{
  public:
    const char *name() const override { return "single-qubit-fuse"; }
    circuit::Circuit run(const circuit::Circuit &in,
                         PassContext &ctx) const override;
};

/**
 * Removes gates that are the identity up to global phase and cancels
 * adjacent gate pairs (same qubit set, nothing touching those qubits in
 * between) whose product is the identity up to global phase. Runs to a
 * fixpoint.
 */
class PeepholeCancel final : public Pass
{
  public:
    explicit PeepholeCancel(double tol = 1e-9) : tol_(tol) {}
    const char *name() const override { return "peephole-cancel"; }
    circuit::Circuit run(const circuit::Circuit &in,
                         PassContext &ctx) const override;

  private:
    double tol_;
};

/**
 * SWAP-routes the circuit onto ctx.coupling (required non-null, at
 * least as many physical qubits as the circuit has logical ones).
 * Two-qubit gates are preceded by the SWAPs (label "swap") that walk
 * their endpoints adjacent; all gates are re-addressed to physical
 * qubits. Requires gate width <= 2 (run WideGateDecompose first).
 *
 * @post ctx.layout holds the final assignment; the routed unitary
 *       equals the logical one conjugated by that qubit permutation.
 */
class Route final : public Pass
{
  public:
    const char *name() const override { return "route"; }
    circuit::Circuit run(const circuit::Circuit &in,
                         PassContext &ctx) const override;
};

/**
 * Memoized Weyl-decomposition cache: canonical chamber coordinates
 * (plus h, r) map to the synthesized pulse parameters and the realized
 * 4x4 pulse unitary, so repeated gate classes (Trotter bonds, CNOTs,
 * SWAPs) pay for ashn::synthesize + realize once. Thread-safe; shared
 * across a batch via the pass instance.
 *
 * Keys use the exact coordinate bits — only bit-identical chamber
 * points share an entry, so memoization never perturbs results.
 */
class WeylCache
{
  public:
    struct Entry
    {
        ashn::GateParams params;
        linalg::Matrix pulse;  ///< ashn::realize(params).
    };

    /** Returns the cached entry, synthesizing on miss. */
    Entry lookup(const weyl::WeylPoint &p, double h, double r);

    std::size_t size() const;
    std::size_t hits() const;
    std::size_t misses() const;

  private:
    struct Key
    {
        double x, y, z, h, r;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const;
    };

    mutable std::mutex mutex_;
    std::unordered_map<Key, Entry, KeyHash> map_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

/**
 * Lowers every two-qubit gate to r1/r2 ("pre"), one AshN pulse
 * ("pulse"), l1/l2 ("post"), appending the pulse parameters to
 * ctx.pulses and its time to ctx.totalPulseTime; single-qubit gates
 * pass through and are counted in ctx.singleQubitGates.
 */
class AshNLower final : public Pass
{
  public:
    const char *name() const override { return "ashn-lower"; }
    circuit::Circuit run(const circuit::Circuit &in,
                         PassContext &ctx) const override;

    const WeylCache &cache() const { return cache_; }

  private:
    mutable WeylCache cache_;
};

} // namespace transpile
} // namespace crisc

#endif // CRISC_TRANSPILE_PASSES_HH

/**
 * @file
 * The concrete passes of the transpiler:
 *
 *   WideGateDecompose — expands k >= 3 qubit gates through the generic
 *       QSD so downstream passes only see 1q/2q gates.
 *   SingleQubitFuse   — merges runs of single-qubit gates into their
 *       two-qubit neighbours (synth::mergeTwoQubitGates).
 *   PeepholeCancel    — drops identity gates and cancels adjacent
 *       mutually-inverse pairs on the same qubits.
 *   Route             — maps the circuit onto a device CouplingMap,
 *       inserting SWAPs along shortest paths and recording the final
 *       logical-to-physical layout in the context.
 *   NativeLower       — replaces every two-qubit gate by its
 *       device::NativeGateSet decomposition (one AshN pulse, minimal
 *       CZs, interleaved SQiSWs, ...), appending pulse-based sets'
 *       schedules to the context. The AshN set memoizes Weyl synthesis
 *       in a shared, thread-safe device::WeylCache.
 */

#ifndef CRISC_TRANSPILE_PASSES_HH
#define CRISC_TRANSPILE_PASSES_HH

#include <memory>

#include "device/native_set.hh"
#include "linalg/matrix.hh"
#include "transpile/pass.hh"

namespace crisc {
namespace transpile {

/** Expands gates on >= 3 qubits with synth::genericQsd. */
class WideGateDecompose final : public Pass
{
  public:
    const char *name() const override { return "wide-gate-decompose"; }
    circuit::Circuit run(const circuit::Circuit &in,
                         PassContext &ctx) const override;
};

/** Merges single-qubit runs into neighbouring two-qubit gates. */
class SingleQubitFuse final : public Pass
{
  public:
    const char *name() const override { return "single-qubit-fuse"; }
    circuit::Circuit run(const circuit::Circuit &in,
                         PassContext &ctx) const override;
};

/**
 * Removes gates that are the identity up to global phase and cancels
 * adjacent gate pairs (same qubit set, nothing touching those qubits in
 * between) whose product is the identity up to global phase. Runs to a
 * fixpoint.
 */
class PeepholeCancel final : public Pass
{
  public:
    explicit PeepholeCancel(double tol = 1e-9) : tol_(tol) {}
    const char *name() const override { return "peephole-cancel"; }
    circuit::Circuit run(const circuit::Circuit &in,
                         PassContext &ctx) const override;

  private:
    double tol_;
};

/**
 * SWAP-routes the circuit onto ctx.coupling (required non-null, at
 * least as many physical qubits as the circuit has logical ones).
 * Two-qubit gates are preceded by the SWAPs (label "swap") that walk
 * their endpoints adjacent; all gates are re-addressed to physical
 * qubits. Requires gate width <= 2 (run WideGateDecompose first).
 *
 * @post ctx.layout holds the final assignment; the routed unitary
 *       equals the logical one conjugated by that qubit permutation.
 */
class Route final : public Pass
{
  public:
    const char *name() const override { return "route"; }
    circuit::Circuit run(const circuit::Circuit &in,
                         PassContext &ctx) const override;
};

/**
 * Target-driven terminal pass: lowers every two-qubit gate through a
 * device::NativeGateSet — on an AshN target to r1/r2 ("pre"), one
 * pulse ("pulse"), l1/l2 ("post"); on a CZ target to the minimal CZ
 * decomposition; on a SQiSW target to interleaved SQiSW applications.
 * Pulse parameters (pulse-based sets) are appended to ctx.pulses;
 * every lowered gate accumulates ctx.totalPulseTime (interaction
 * time), ctx.nativeGates, and ctx.singleQubitGates. Single-qubit
 * gates pass through.
 *
 * The gate set is fixed at construction (usually from a Device via
 * makePipeline); the default is an ideal AshN set (h = 0, r = 0). One
 * pass instance shared by a batch shares the set's memoization state.
 */
class NativeLower final : public Pass
{
  public:
    explicit NativeLower(std::shared_ptr<const device::NativeGateSet>
                             gate_set = nullptr);

    const char *name() const override { return "native-lower"; }
    circuit::Circuit run(const circuit::Circuit &in,
                         PassContext &ctx) const override;

    const device::NativeGateSet &gateSet() const { return *gateSet_; }

  private:
    std::shared_ptr<const device::NativeGateSet> gateSet_;
};

} // namespace transpile
} // namespace crisc

#endif // CRISC_TRANSPILE_PASSES_HH

#include "pass_manager.hh"

#include <chrono>
#include <cstdio>

namespace crisc {
namespace transpile {

std::string
TranspileReport::summary() const
{
    std::string out;
    char line[160];
    std::snprintf(line, sizeof line, "%-22s %10s %8s %8s %12s %10s\n",
                  "pass", "gates", "2q", "depth", "pulse time", "wall ms");
    out += line;
    for (const PassMetrics &m : passes) {
        std::snprintf(line, sizeof line,
                      "%-22s %4zu->%-4zu %3zu->%-3zu %3zu->%-3zu %12.4f "
                      "%10.3f\n",
                      m.pass.c_str(), m.gatesBefore, m.gatesAfter,
                      m.twoQubitBefore, m.twoQubitAfter, m.depthBefore,
                      m.depthAfter, m.pulseTimeAfter,
                      1e3 * m.wallSeconds);
        out += line;
    }
    std::snprintf(line, sizeof line, "total wall time: %.3f ms\n",
                  1e3 * totalWallSeconds);
    out += line;
    return out;
}

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
    return *this;
}

TranspileResult
PassManager::run(const circuit::Circuit &input, PassContext ctx) const
{
    using clock = std::chrono::steady_clock;

    TranspileResult res;
    circuit::Circuit current = input;
    for (const auto &pass : passes_) {
        PassMetrics m;
        m.pass = pass->name();
        m.gatesBefore = current.size();
        m.twoQubitBefore = current.twoQubitCount();
        m.depthBefore = current.depth();
        const auto t0 = clock::now();
        current = pass->run(current, ctx);
        const auto t1 = clock::now();
        m.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
        m.gatesAfter = current.size();
        m.twoQubitAfter = current.twoQubitCount();
        m.depthAfter = current.depth();
        m.pulseTimeAfter = ctx.totalPulseTime;
        res.report.totalWallSeconds += m.wallSeconds;
        res.report.passes.push_back(std::move(m));
    }
    res.circuit = std::move(current);
    res.context = std::move(ctx);
    return res;
}

} // namespace transpile
} // namespace crisc

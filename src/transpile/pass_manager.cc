#include "pass_manager.hh"

#include <algorithm>
#include <cstdio>
#include <string>

#include "obs/obs.hh"

namespace crisc {
namespace transpile {

std::string
TranspileReport::summary() const
{
    std::string out;
    char line[176];
    std::snprintf(line, sizeof line, "%-22s %10s %6s %8s %8s %12s %10s\n",
                  "pass", "gates", "peak", "2q", "depth", "pulse time",
                  "wall ms");
    out += line;
    for (const PassMetrics &m : passes) {
        std::snprintf(line, sizeof line,
                      "%-22s %4zu->%-4zu %6zu %3zu->%-3zu %3zu->%-3zu "
                      "%12.4f %10.3f\n",
                      m.pass.c_str(), m.gatesBefore, m.gatesAfter,
                      m.gatesPeak, m.twoQubitBefore, m.twoQubitAfter,
                      m.depthBefore, m.depthAfter, m.pulseTimeAfter,
                      1e3 * m.wallSeconds);
        out += line;
    }
    std::snprintf(line, sizeof line, "total wall time: %.3f ms\n",
                  1e3 * totalWallSeconds);
    out += line;
    return out;
}

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
    return *this;
}

TranspileResult
PassManager::run(const circuit::Circuit &input, PassContext ctx) const
{
    TranspileResult res;
    circuit::Circuit current = input;
    for (const auto &pass : passes_) {
        PassMetrics m;
        m.pass = pass->name();
        m.gatesBefore = current.size();
        m.twoQubitBefore = current.twoQubitCount();
        m.depthBefore = current.depth();
        ctx.peakGates = 0;
        // The span IS the pass timer: wallSeconds and the recorded
        // "pass.<name>" trace event share the same two clock samples.
        // Interning only happens while tracing, so the untraced path
        // pays nothing beyond the clock reads it always did.
        obs::TimedSpan span(obs::enabled()
                                ? obs::internName(std::string("pass.") +
                                                  pass->name())
                                : nullptr);
        current = pass->run(current, ctx);
        m.wallSeconds = span.finishSeconds();
        m.gatesAfter = current.size();
        m.gatesPeak =
            std::max({m.gatesBefore, m.gatesAfter, ctx.peakGates});
        m.twoQubitAfter = current.twoQubitCount();
        m.depthAfter = current.depth();
        m.pulseTimeAfter = ctx.totalPulseTime;
        res.report.totalWallSeconds += m.wallSeconds;
        res.report.passes.push_back(std::move(m));
    }
    res.circuit = std::move(current);
    res.context = std::move(ctx);
    return res;
}

} // namespace transpile
} // namespace crisc

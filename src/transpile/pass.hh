/**
 * @file
 * Core abstractions of the pass-based transpiler: a `Pass` rewrites a
 * gate-list `circuit::Circuit` while reading/writing shared
 * `PassContext` state (device coupling, routing layout, emitted pulse
 * schedule), and a `PassMetrics` record captures what each pass did to
 * the circuit. The `PassManager` (pass_manager.hh) strings passes into
 * a pipeline; canned pipelines live in transpile.hh.
 *
 * Passes are immutable after construction and their `run` is const, so
 * one pipeline instance can transpile many circuits concurrently (each
 * with its own PassContext) — the batch driver relies on this.
 */

#ifndef CRISC_TRANSPILE_PASS_HH
#define CRISC_TRANSPILE_PASS_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "ashn/scheme.hh"
#include "circuit/circuit.hh"
#include "route/route.hh"

namespace crisc {
namespace transpile {

/** One pulse of the emitted schedule (mirrors synth::ScheduledPulse). */
struct PulseOp
{
    std::size_t a = 0, b = 0;  ///< the two register qubits (a = gate msq).
    ashn::GateParams params;   ///< pulse controls (g = 1 units).
};

/**
 * Shared state threaded through a pipeline run. Inputs (device
 * coupling) are set by the caller — usually from a device::Device via
 * TranspileOptions; outputs (routing layout, pulse schedule) are
 * filled in by the passes that produce them. Gate-set parameters (ZZ
 * ratio h, drive cutoff r) live in the NativeGateSet held by the
 * NativeLower pass, not here.
 */
struct PassContext
{
    // --- inputs
    /** Device connectivity; required by Route, ignored elsewhere. */
    const route::CouplingMap *coupling = nullptr;

    // --- outputs
    /** Final logical-to-physical assignment, set by Route. */
    std::optional<route::Layout> layout;
    /** Pulse schedule, appended to by NativeLower for pulse-based sets
     * (one per 2q gate on an AshN target). */
    std::vector<PulseOp> pulses;
    /** Total two-qubit interaction time of the lowered program (1/g):
     * pulse times on AshN targets, native-gate times otherwise. */
    double totalPulseTime = 0.0;
    std::size_t nativeGates = 0;       ///< native 2q gates emitted.
    std::size_t singleQubitGates = 0;  ///< 1q gates in the lowered output.

    // --- per-pass scratch
    /**
     * Largest intermediate gate count the *current* pass saw. Reset to
     * 0 by the PassManager before each pass; a pass that builds a
     * transient circuit bigger than both its input and its output
     * should raise this, and PassMetrics::gatesPeak records
     * max(before, after, peakGates) either way.
     */
    std::size_t peakGates = 0;
};

/** A circuit-to-circuit rewrite step. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name, used in metrics reports. */
    virtual const char *name() const = 0;

    /**
     * Rewrites @p in, reading/writing @p ctx. Must preserve the circuit
     * unitary up to global phase (Route: up to the qubit permutation it
     * records in ctx.layout).
     */
    virtual circuit::Circuit run(const circuit::Circuit &in,
                                 PassContext &ctx) const = 0;
};

/** What one pass did to the circuit, plus its cost. */
struct PassMetrics
{
    std::string pass;
    std::size_t gatesBefore = 0, gatesAfter = 0;
    /**
     * Peak intermediate gate count: max(gatesBefore, gatesAfter, any
     * PassContext::peakGates the pass reported). Before/after deltas
     * alone hide a pass that expands and then shrinks the circuit;
     * this field makes the transpile report agree with what the trace
     * spans actually covered.
     */
    std::size_t gatesPeak = 0;
    std::size_t twoQubitBefore = 0, twoQubitAfter = 0;
    std::size_t depthBefore = 0, depthAfter = 0;
    /** ctx.totalPulseTime after the pass (0 until NativeLower runs). */
    double pulseTimeAfter = 0.0;
    /**
     * Wall time of the pass, measured by the same obs::TimedSpan that
     * emits the "pass.<name>" trace event — the report field and the
     * span duration come from the same two clock samples.
     */
    double wallSeconds = 0.0;
};

/** Per-pass metrics for one pipeline run. */
struct TranspileReport
{
    std::vector<PassMetrics> passes;
    double totalWallSeconds = 0.0;

    /** Formatted table, one line per pass. */
    std::string summary() const;
};

} // namespace transpile
} // namespace crisc

#endif // CRISC_TRANSPILE_PASS_HH

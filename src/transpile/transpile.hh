/**
 * @file
 * Canned transpiler pipelines and the batch driver: one entry point
 * from a logical circuit to a routed native program on a target
 * device. Every workload (synth::compileCircuit, the quantum-volume
 * harness, the examples) assembles its pipeline here, so they all
 * exercise the same pass implementations.
 *
 * transpileBatch fans independent circuits out over a sim::ThreadPool;
 * results land in per-circuit slots, so output order is deterministic
 * and independent of the thread count, and the lowering gate set (with
 * its Weyl cache, on AshN targets) is shared across the whole batch.
 */

#ifndef CRISC_TRANSPILE_TRANSPILE_HH
#define CRISC_TRANSPILE_TRANSPILE_HH

#include "device/device.hh"
#include "transpile/pass_manager.hh"
#include "transpile/passes.hh"

namespace crisc {
namespace transpile {

/** Which passes makePipeline assembles, and their targets. */
struct TranspileOptions
{
    /**
     * Target device: supplies the coupling map (routing) and the
     * native gate set (lowering). When null, the legacy knobs below
     * apply: route onto `coupling` (if any) and lower to an AshN set
     * built from (h, r).
     */
    const device::Device *device = nullptr;
    double h = 0.0;  ///< ZZ coupling ratio (AshN lowering, no device).
    double r = 0.0;  ///< AshN drive cutoff (no device).
    /** Route onto this map when non-null and device is null. */
    const route::CouplingMap *coupling = nullptr;
    bool decomposeWide = true;    ///< expand k >= 3 gates (QSD).
    bool fuseSingleQubit = true;  ///< merge 1q runs into 2q neighbours.
    bool peephole = true;         ///< cancel identities / inverse pairs.
    bool lowerToPulses = true;    ///< emit the native program.
};

/**
 * Builds the standard pipeline for @p opts, in order:
 * WideGateDecompose, SingleQubitFuse, PeepholeCancel, Route,
 * NativeLower (each gated by its option); NativeLower is driven by the
 * device's gate set when a device is given.
 */
PassManager makePipeline(const TranspileOptions &opts);

/** Builds the pipeline for @p opts and runs @p logical through it. */
TranspileResult transpile(const circuit::Circuit &logical,
                          const TranspileOptions &opts = {});

/**
 * Transpiles every circuit through ONE shared pipeline, fanning out
 * over a thread pool (@p threads workers, 0 = hardware concurrency).
 * Results are index-aligned with the inputs and identical to calling
 * transpile() sequentially, for any thread count; a first thrown
 * exception is rethrown on the calling thread.
 */
std::vector<TranspileResult>
transpileBatch(const std::vector<circuit::Circuit> &circuits,
               const TranspileOptions &opts = {}, int threads = 0);

} // namespace transpile
} // namespace crisc

#endif // CRISC_TRANSPILE_TRANSPILE_HH

#include "transpile.hh"

#include <exception>

#include "sim/batch.hh"

namespace crisc {
namespace transpile {

namespace {

const route::CouplingMap *
couplingFor(const TranspileOptions &opts)
{
    if (opts.device != nullptr)
        return &opts.device->coupling();
    return opts.coupling;
}

PassContext
contextFor(const TranspileOptions &opts)
{
    PassContext ctx;
    ctx.coupling = couplingFor(opts);
    return ctx;
}

} // namespace

PassManager
makePipeline(const TranspileOptions &opts)
{
    PassManager pm;
    if (opts.decomposeWide)
        pm.emplace<WideGateDecompose>();
    if (opts.fuseSingleQubit)
        pm.emplace<SingleQubitFuse>();
    if (opts.peephole)
        pm.emplace<PeepholeCancel>();
    if (couplingFor(opts) != nullptr)
        pm.emplace<Route>();
    if (opts.lowerToPulses)
        pm.emplace<NativeLower>(
            opts.device != nullptr
                ? opts.device->gateSetPtr()
                : device::makeNativeGateSet(device::NativeKind::AshN,
                                            opts.h, opts.r));
    return pm;
}

TranspileResult
transpile(const circuit::Circuit &logical, const TranspileOptions &opts)
{
    return makePipeline(opts).run(logical, contextFor(opts));
}

std::vector<TranspileResult>
transpileBatch(const std::vector<circuit::Circuit> &circuits,
               const TranspileOptions &opts, int threads)
{
    const PassManager pipeline = makePipeline(opts);
    std::vector<TranspileResult> results(circuits.size());
    std::vector<std::exception_ptr> errors(circuits.size());

    sim::ThreadPool pool(
        static_cast<std::size_t>(threads < 0 ? 1 : threads));
    pool.parallelFor(circuits.size(), [&](std::size_t i) {
        try {
            results[i] = pipeline.run(circuits[i], contextFor(opts));
        } catch (...) {
            errors[i] = std::current_exception();
        }
    });
    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
    return results;
}

} // namespace transpile
} // namespace crisc

/**
 * @file
 * The Haar-induced probability measure on the Weyl chamber (paper
 * App. A.7.1, after Watts-O'Connor-Vala) with Monte Carlo sampling and
 * expectation helpers used by the Figure 5 / T_avg(r) experiments.
 */

#ifndef CRISC_WEYL_MEASURE_HH
#define CRISC_WEYL_MEASURE_HH

#include <functional>

#include "linalg/random.hh"
#include "weyl.hh"

namespace crisc {
namespace weyl {

/**
 * Unnormalized chamber density
 *   w(x,y,z) = prod_{i<j} |sin(2(c_i + c_j)) sin(2(c_i - c_j))|,
 * the KAK Jacobian of the symmetric space SU(4)/SO(4) (restricted roots
 * lambda_i - lambda_j with multiplicity one). Validated two ways in the
 * tests: its moments match KAK coordinates of Haar-sampled SU(4), and it
 * reproduces the paper's Haar-average optimal time 1.3408/g. The formula
 * printed in the paper (sin of single angles, one factor repeated)
 * appears to be a typo: it fails both checks.
 */
double chamberDensity(const WeylPoint &p);

/** Normalization constant so chamberDensity / constant integrates to 1. */
double chamberDensityNorm();

/** Rejection-samples a chamber point from the Haar-induced measure. */
WeylPoint sampleChamber(linalg::Rng &rng);

/**
 * Monte Carlo expectation of @p f under the Haar-induced chamber
 * measure, using @p samples rejection samples.
 */
double chamberExpectation(const std::function<double(const WeylPoint &)> &f,
                          linalg::Rng &rng, int samples);

/**
 * Deterministic expectation of @p f via midpoint quadrature over the
 * chamber with @p grid points per axis (used to pin down averages, e.g.
 * the 1.341/g optimal-time average, without Monte Carlo noise).
 */
double chamberQuadrature(const std::function<double(const WeylPoint &)> &f,
                         int grid);

} // namespace weyl
} // namespace crisc

#endif // CRISC_WEYL_MEASURE_HH

#include "measure.hh"

#include <cmath>
#include <stdexcept>

namespace crisc {
namespace weyl {

double
chamberDensity(const WeylPoint &p)
{
    const double x = p.x, y = p.y, z = p.z;
    return std::abs(std::sin(2.0 * (x + y)) * std::sin(2.0 * (x - y)) *
                    std::sin(2.0 * (y + z)) * std::sin(2.0 * (y - z)) *
                    std::sin(2.0 * (x + z)) * std::sin(2.0 * (x - z)));
}

namespace {

/**
 * Integrates density * f over the chamber with a midpoint rule adapted
 * to the wedge shape (y in [0,x], z in [-y,y]).
 */
double
wedgeIntegral(const std::function<double(const WeylPoint &)> &f, int grid)
{
    const double x_hi = M_PI / 4.0;
    const double dx = x_hi / grid;
    double total = 0.0;
    for (int i = 0; i < grid; ++i) {
        const double x = (i + 0.5) * dx;
        const double dy = x / grid;
        for (int j = 0; j < grid; ++j) {
            const double y = (j + 0.5) * dy;
            const double dz = 2.0 * y / grid;
            for (int k = 0; k < grid; ++k) {
                const double z = -y + (k + 0.5) * dz;
                const WeylPoint p{x, y, z};
                total += chamberDensity(p) * f(p) * dx * dy * dz;
            }
        }
    }
    return total;
}

} // namespace

double
chamberDensityNorm()
{
    static const double norm =
        wedgeIntegral([](const WeylPoint &) { return 1.0; }, 120);
    return norm;
}

WeylPoint
sampleChamber(linalg::Rng &rng)
{
    // Max of the density over the chamber, padded; computed once.
    static const double wmax = [] {
        double m = 0.0;
        const int g = 60;
        for (int i = 0; i <= g; ++i)
            for (int j = 0; j <= i; ++j)
                for (int k = -j; k <= j; ++k) {
                    const WeylPoint p{i * M_PI / 4.0 / g, j * M_PI / 4.0 / g,
                                      k * M_PI / 4.0 / g};
                    m = std::max(m, chamberDensity(p));
                }
        return 1.05 * m;
    }();

    for (int tries = 0; tries < 100000; ++tries) {
        const double x = rng.uniform(0.0, M_PI / 4.0);
        const double y = rng.uniform(0.0, M_PI / 4.0);
        const double z = rng.uniform(-M_PI / 4.0, M_PI / 4.0);
        if (y > x || std::abs(z) > y)
            continue;
        const WeylPoint p{x, y, z};
        if (rng.uniform() * wmax <= chamberDensity(p))
            return p;
    }
    throw std::runtime_error("sampleChamber: rejection sampling stalled");
}

double
chamberExpectation(const std::function<double(const WeylPoint &)> &f,
                   linalg::Rng &rng, int samples)
{
    double total = 0.0;
    for (int i = 0; i < samples; ++i)
        total += f(sampleChamber(rng));
    return total / samples;
}

double
chamberQuadrature(const std::function<double(const WeylPoint &)> &f,
                  int grid)
{
    return wedgeIntegral(f, grid) /
           wedgeIntegral([](const WeylPoint &) { return 1.0; }, grid);
}

} // namespace weyl
} // namespace crisc

#include "weyl.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/decomp.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"

namespace crisc {
namespace weyl {

using linalg::kron;
using qop::canonicalGate;

namespace {

constexpr double kPi = M_PI;

/**
 * Decision tolerance shared by every canonicalization predicate. All
 * comparisons (folding, ordering, sign fixes, the x = pi/4 boundary
 * rule) must use the same epsilon: a coordinate that one rule considers
 * "at the boundary" while another folds it back across pi/4 makes the
 * move loop cycle forever on points within roundoff of the boundary.
 */
constexpr double kEps = 1e-9;

/**
 * KAK state with the invariant
 *   u = e^{i phase} (a1 x a2) canonicalGate(eta) (b1 x b2)
 * maintained by every chamber move.
 */
struct Tracked
{
    double phase;
    Matrix a1, a2, b1, b2;
    WeylPoint eta;

    double &coord(int axis)
    {
        return axis == 0 ? eta.x : axis == 1 ? eta.y : eta.z;
    }

    /**
     * Shifts coordinate @p axis by steps * pi/2. Each pi/2 step absorbs
     * a factor exp(+-i pi/2 PP) = +-i (P x P) into the right locals.
     */
    void
    shift(int axis, int steps)
    {
        if (steps == 0)
            return;
        const Matrix &p = axis == 0   ? qop::pauliX()
                          : axis == 1 ? qop::pauliY()
                                      : qop::pauliZ();
        coord(axis) += steps * (kPi / 2.0);
        phase -= steps * (kPi / 2.0);
        if (steps % 2 != 0) {
            b1 = p * b1;
            b2 = p * b2;
        }
    }

    /**
     * Negates the two coordinates other than @p fixedAxis by conjugating
     * the canonical gate with (P x I), P the Pauli of the fixed axis.
     */
    void
    flip(int fixedAxis)
    {
        const Matrix &p = fixedAxis == 0   ? qop::pauliX()
                          : fixedAxis == 1 ? qop::pauliY()
                                           : qop::pauliZ();
        for (int axis = 0; axis < 3; ++axis)
            if (axis != fixedAxis)
                coord(axis) = -coord(axis);
        a1 = a1 * p;
        b1 = p * b1;
    }

    /**
     * Exchanges two coordinates by conjugating with (V x V), V the
     * single-qubit Clifford that permutes the corresponding Pauli axes.
     */
    void
    swapAxes(int i, int j)
    {
        Matrix v;
        if ((i == 0 && j == 1) || (i == 1 && j == 0)) {
            v = qop::sGate(); // S: X->Y, Y->-X; swaps x and y.
        } else if ((i == 1 && j == 2) || (i == 2 && j == 1)) {
            v = qop::rx(kPi / 2.0); // Y->Z, Z->-Y; swaps y and z.
        } else {
            v = qop::hadamard(); // X<->Z; swaps x and z.
        }
        std::swap(coord(i), coord(j));
        const Matrix vd = v.dagger();
        a1 = a1 * vd;
        a2 = a2 * vd;
        b1 = v * b1;
        b2 = v * b2;
    }

    Matrix
    compose() const
    {
        return std::polar(1.0, phase) *
               (kron(a1, a2) * canonicalGate(eta.x, eta.y, eta.z) *
                kron(b1, b2));
    }
};

/** One canonicalization pass; returns true when eta is already in W. */
bool
canonicalStep(Tracked &t)
{
    // Fold every coordinate into (-pi/4, pi/4] (up to kEps of slack so
    // boundary values do not oscillate across the fold).
    for (int axis = 0; axis < 3; ++axis) {
        const double c = t.coord(axis);
        const int k = static_cast<int>(
            std::ceil((c - kPi / 4.0 - kEps) / (kPi / 2.0)));
        if (k != 0)
            t.shift(axis, -k);
    }
    // Order by decreasing magnitude. Strict comparison: each swap
    // strictly reduces the violation, so no margin is needed (a margin
    // can strand points whose canonicality violation is of the same
    // order as the margin itself).
    if (std::abs(t.eta.y) > std::abs(t.eta.x)) {
        t.swapAxes(0, 1);
        return false;
    }
    if (std::abs(t.eta.z) > std::abs(t.eta.y)) {
        t.swapAxes(1, 2);
        return false;
    }
    // Push any negativity into z (flips negate coordinate pairs).
    // Strict thresholds: each flip strictly reduces the number of
    // negative coordinates among {x, y}, so the rules cannot cycle, and
    // margins would strand points whose violation is margin-sized.
    if (t.eta.x < 0.0 && t.eta.y < 0.0) {
        t.flip(2);
        return false;
    }
    if (t.eta.x < 0.0) {
        t.flip(1);
        return false;
    }
    if (t.eta.y < 0.0) {
        t.flip(0);
        return false;
    }
    // Boundary rule: at x = pi/4 require z >= 0; (pi/4,y,z) is
    // equivalent to (pi/4,y,-z) through a flip plus a pi/2 shift.
    if (t.eta.x > kPi / 4.0 - kEps && t.eta.z < -kEps) {
        t.flip(1); // negates x and z
        return false;
    }
    return isCanonical(t.eta, 1e-9);
}

void
canonicalize(Tracked &t)
{
    std::ostringstream trace;
    for (int iter = 0; iter < 64; ++iter) {
        if (canonicalStep(t))
            return;
        if (iter >= 58) {
            trace << " (" << t.eta.x << "," << t.eta.y << "," << t.eta.z
                  << ")";
        }
    }
    throw std::runtime_error(
        "weyl: canonicalization did not converge; tail:" + trace.str());
}

} // namespace

double
pointDistance(const WeylPoint &a, const WeylPoint &b)
{
    return std::max({std::abs(a.x - b.x), std::abs(a.y - b.y),
                     std::abs(a.z - b.z)});
}

bool
isCanonical(const WeylPoint &p, double tol)
{
    if (p.x > kPi / 4.0 + tol || p.y > p.x + tol)
        return false;
    if (std::abs(p.z) > p.y + tol)
        return false;
    if (p.x > kPi / 4.0 - tol && p.z < -tol)
        return false;
    return true;
}

WeylPoint
canonicalizePoint(const WeylPoint &raw)
{
    Tracked t;
    t.phase = 0.0;
    t.a1 = t.a2 = t.b1 = t.b2 = Matrix::identity(2);
    t.eta = raw;
    canonicalize(t);
    return t.eta;
}

Matrix
KAKDecomposition::compose() const
{
    return std::polar(1.0, phase) *
           (kron(a1, a2) * canonicalGate(point.x, point.y, point.z) *
            kron(b1, b2));
}

const Matrix &
magicBasis()
{
    static const double s = 1.0 / std::sqrt(2.0);
    static const Complex is{0.0, 1.0 / std::sqrt(2.0)};
    static const Matrix m{{s, 0, 0, is},
                          {0, is, s, 0},
                          {0, is, -s, 0},
                          {s, 0, 0, -is}};
    return m;
}

KAKDecomposition
kak(const Matrix &u)
{
    if (u.rows() != 4 || u.cols() != 4 || !linalg::isUnitary(u, 1e-8))
        throw std::invalid_argument("kak: expected a 4x4 unitary");

    // Split off the global phase so we work inside SU(4).
    const double theta0 = std::arg(u.det()) / 4.0;
    const Matrix su = std::polar(1.0, -theta0) * u;

    const Matrix &m = magicBasis();
    const Matrix um = m.dagger() * su * m;
    const Matrix gamma = um * um.transpose();

    // gamma is symmetric unitary: its real and imaginary parts commute
    // and are diagonalized by a common real orthogonal Q.
    const std::size_t n = 4;
    Matrix re(n, n), im(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            re(i, j) = gamma(i, j).real();
            im(i, j) = gamma(i, j).imag();
        }
    const Matrix q = linalg::simultaneousDiagonalize(re, im);
    const Matrix d = q.transpose() * gamma * q;

    std::array<double, 4> lambda;
    for (std::size_t i = 0; i < 4; ++i)
        lambda[i] = std::arg(d(i, i)) / 2.0;

    auto makeV = [&](const std::array<double, 4> &lam) {
        Matrix dinv(4, 4);
        for (std::size_t i = 0; i < 4; ++i)
            dinv(i, i) = std::polar(1.0, -lam[i]);
        return dinv * q.transpose() * um;
    };
    Matrix v = makeV(lambda);
    if (v.det().real() < 0.0) {
        lambda[0] += kPi;
        v = makeV(lambda);
    }
    // V must be real orthogonal at this point.
    double imax = 0.0;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            imax = std::max(imax, std::abs(v(i, j).imag()));
    if (imax > 1e-7)
        throw std::runtime_error("kak: orthogonal factor not real");

    // Remove the residual trace phase so the lambdas sum to zero.
    const double s =
        (lambda[0] + lambda[1] + lambda[2] + lambda[3]) / 4.0;
    for (auto &l : lambda)
        l -= s;

    Tracked t;
    t.phase = theta0 + s;
    t.eta.x = (lambda[0] + lambda[1]) / 2.0;
    t.eta.y = (lambda[1] + lambda[3]) / 2.0;
    t.eta.z = (lambda[0] + lambda[3]) / 2.0;

    const Matrix amat = m * q * m.dagger();
    const Matrix bmat = m * v * m.dagger();
    auto [a1, a2] = qop::factorKron(amat);
    auto [b1, b2] = qop::factorKron(bmat);
    t.a1 = a1;
    t.a2 = a2;
    t.b1 = b1;
    t.b2 = b2;

    canonicalize(t);

    // Snap the accumulated phase against the input to absorb roundoff.
    const Matrix recomposed = t.compose();
    const Complex overlap = (recomposed.dagger() * u).trace();
    t.phase += std::arg(overlap);

    KAKDecomposition out;
    out.phase = t.phase;
    out.a1 = t.a1;
    out.a2 = t.a2;
    out.b1 = t.b1;
    out.b2 = t.b2;
    out.point = t.eta;

    if (linalg::maxAbsDiff(out.compose(), u) > 1e-7)
        throw std::runtime_error("kak: recomposition check failed");
    return out;
}

WeylPoint
weylCoordinates(const Matrix &u)
{
    return kak(u).point;
}

bool
locallyEquivalent(const Matrix &u, const Matrix &v, double tol)
{
    return pointDistance(weylCoordinates(u), weylCoordinates(v)) <= tol;
}

std::array<double, 3>
localInvariants(const Matrix &u)
{
    const Matrix su = qop::toSU(u);
    const Matrix &m = magicBasis();
    const Matrix ub = m.dagger() * su * m;
    const Matrix mm = ub.transpose() * ub;
    const Complex t = mm.trace();
    const Complex g12 = t * t / 16.0;
    const Complex g3 = (t * t - (mm * mm).trace()) / 4.0;
    return {g12.real(), g12.imag(), g3.real()};
}

LocalCorrection
localCorrections(const Matrix &target, const Matrix &realized)
{
    const KAKDecomposition kt = kak(target);
    const KAKDecomposition kr = kak(realized);
    if (pointDistance(kt.point, kr.point) > 1e-6) {
        throw std::invalid_argument(
            "localCorrections: gates are not locally equivalent");
    }
    LocalCorrection out;
    out.phase = kt.phase - kr.phase;
    out.l1 = kt.a1 * kr.a1.dagger();
    out.l2 = kt.a2 * kr.a2.dagger();
    out.r1 = kr.b1.dagger() * kt.b1;
    out.r2 = kr.b2.dagger() * kt.b2;
    return out;
}

} // namespace weyl
} // namespace crisc

/**
 * @file
 * The minimum interaction time needed to synthesize a Weyl chamber point
 * with the XY+ZZ Hamiltonian (paper Sec. 4.3, after Hammerer-Vidal-Cirac).
 * Times are in units of 1/g with the coupling normalized to g = 1.
 */

#ifndef CRISC_WEYL_OPTIMAL_TIME_HH
#define CRISC_WEYL_OPTIMAL_TIME_HH

#include "weyl.hh"

namespace crisc {
namespace weyl {

/**
 * Optimal interaction time tau_opt(h; x, y, z) for canonical (x, y, z)
 * and ZZ coupling ratio h in [-1, 1]:
 *
 *   tau_opt = min( max{2x, 2(x+y-z)/(2+h), 2(x+y+z)/(2-h)},
 *                  max{pi-2x, 2(pi/2-x+y+z)/(2+h), 2(pi/2-x+y-z)/(2-h)} ),
 *
 * in this library's KAK sign convention for z (the appendix of the paper
 * uses the opposite convention; see its footnote 5).
 */
double optimalTime(const WeylPoint &p, double h);

/** Optimal time for h = 0; reduces to max{2x, x + y + |z|}. */
double optimalTime(const WeylPoint &p);

/**
 * Haar-average optimal two-qubit interaction time for h = 0,
 * (7 pi / 16 - 19 / (180 pi)) ~ 1.3412, quoted in Sec. 6.1.
 */
double haarAverageOptimalTime();

} // namespace weyl
} // namespace crisc

#endif // CRISC_WEYL_OPTIMAL_TIME_HH

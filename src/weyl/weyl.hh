/**
 * @file
 * Weyl chamber coordinates and the KAK decomposition (Theorem 1 of the
 * paper): every U in SU(4) factors as
 *
 *   U = e^{i phase} (a1 (x) a2) exp(i (x XX + y YY + z ZZ)) (b1 (x) b2)
 *
 * with (x, y, z) unique inside the Weyl chamber
 * W = { pi/4 >= x >= y >= |z|, z >= 0 if x = pi/4 }.
 *
 * The implementation diagonalizes the symmetric unitary gamma matrix in
 * the magic (Bell) basis, then canonicalizes the interaction coefficients
 * by explicit, local-gate-tracked chamber moves.
 */

#ifndef CRISC_WEYL_WEYL_HH
#define CRISC_WEYL_WEYL_HH

#include <array>

#include "linalg/matrix.hh"

namespace crisc {
namespace weyl {

using linalg::Complex;
using linalg::Matrix;

/** A point (x, y, z) of interaction coefficients. */
struct WeylPoint
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    std::array<double, 3> asArray() const { return {x, y, z}; }
};

/** Distance max(|dx|, |dy|, |dz|) between chamber points. */
double pointDistance(const WeylPoint &a, const WeylPoint &b);

/** @return true when p lies in the canonical chamber W (to tolerance). */
bool isCanonical(const WeylPoint &p, double tol = 1e-9);

/**
 * Canonicalizes arbitrary interaction coefficients into W using the
 * chamber symmetries (coordinate-only variant; the KAK decomposition
 * tracks the same moves through local gates).
 */
WeylPoint canonicalizePoint(const WeylPoint &raw);

/** Full KAK decomposition of a two-qubit unitary. */
struct KAKDecomposition
{
    /** Global phase: U = e^{i phase} (a1 x a2) N(point) (b1 x b2). */
    double phase = 0.0;
    Matrix a1, a2;    ///< Left (after-interaction) local gates.
    WeylPoint point;  ///< Canonical interaction coefficients.
    Matrix b1, b2;    ///< Right (before-interaction) local gates.

    /** Recomposes the unitary described by this decomposition. */
    Matrix compose() const;
};

/**
 * Computes the KAK decomposition of @p u (any 4x4 unitary; a global
 * phase is split off automatically).
 *
 * Postcondition: compose() reproduces @p u to ~1e-9 and point is inside
 * the canonical Weyl chamber.
 */
KAKDecomposition kak(const Matrix &u);

/** Interaction coefficients of @p u (canonical chamber point). */
WeylPoint weylCoordinates(const Matrix &u);

/** @return true when u and v are equal up to single-qubit gates. */
bool locallyEquivalent(const Matrix &u, const Matrix &v, double tol = 1e-7);

/**
 * Makhlin-style local invariants (g1, g2, g3); equal for locally
 * equivalent gates. Used as an independent cross-check on the KAK code.
 */
std::array<double, 3> localInvariants(const Matrix &u);

/** The magic (Bell) basis change used by the KAK decomposition. */
const Matrix &magicBasis();

/**
 * Solves U = e^{i phase} (l1 x l2) V (r1 x r2) for the local gates, i.e.
 * finds the single-qubit corrections that turn the physically realized
 * gate V into the target U. Both gates must be locally equivalent.
 */
struct LocalCorrection
{
    double phase = 0.0;
    Matrix l1, l2, r1, r2;
};
LocalCorrection localCorrections(const Matrix &target, const Matrix &realized);

} // namespace weyl
} // namespace crisc

#endif // CRISC_WEYL_WEYL_HH

#include "optimal_time.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crisc {
namespace weyl {

double
optimalTime(const WeylPoint &p, double h)
{
    if (std::abs(h) > 1.0)
        throw std::invalid_argument("optimalTime: |h| must be <= g");
    // The z-sign convention here matches this library's KAK coordinates
    // (paper footnote 5: conventions differ across the literature); it
    // is fixed by the requirement that the sub-scheme coverage regions
    // tile the chamber, which the AshN tests verify empirically.
    const double x = p.x, y = p.y, z = p.z;
    const double t1 = std::max({2.0 * x,
                                2.0 * (x + y - z) / (2.0 + h),
                                2.0 * (x + y + z) / (2.0 - h)});
    const double t2 = std::max({M_PI - 2.0 * x,
                                2.0 * (M_PI / 2.0 - x + y + z) / (2.0 + h),
                                2.0 * (M_PI / 2.0 - x + y - z) / (2.0 - h)});
    return std::min(t1, t2);
}

double
optimalTime(const WeylPoint &p)
{
    return optimalTime(p, 0.0);
}

double
haarAverageOptimalTime()
{
    return 7.0 * M_PI / 16.0 - 19.0 / (180.0 * M_PI);
}

} // namespace weyl
} // namespace crisc

#include "noise.hh"

#include <stdexcept>

#include "qop/gates.hh"
#include "sim/kernels.hh"

namespace crisc {
namespace circuit {

const Matrix &
pauliByIndex(std::size_t idx)
{
    switch (idx) {
      case 0:
        return qop::pauliI();
      case 1:
        return qop::pauliX();
      case 2:
        return qop::pauliY();
      case 3:
        return qop::pauliZ();
      default:
        throw std::invalid_argument("pauliByIndex: index out of range");
    }
}

namespace {

/** Rejects error parameters outside [0, 1]; NaN fails the negated
 *  in-range test and is rejected too. */
void
validateErrorParameter(double p)
{
    if (!(p >= 0.0 && p <= 1.0))
        throw std::invalid_argument(
            "applyDepolarizing: error parameter must lie in [0, 1]");
}

} // namespace

void
applyDepolarizing(Complex *amps, std::size_t n_qubits,
                  const std::vector<std::size_t> &qubits, double p,
                  linalg::Rng &rng)
{
    validateErrorParameter(p);
    for (std::size_t i = 0; i < qubits.size(); ++i)
        for (std::size_t j = i + 1; j < qubits.size(); ++j)
            if (qubits[i] == qubits[j])
                throw std::invalid_argument(
                    "applyDepolarizing: duplicate qubit in Pauli string");
    if (p <= 0.0)
        return;
    if (rng.uniform() >= p)
        return;
    const std::size_t k = qubits.size();
    const std::size_t nPaulis = (std::size_t{1} << (2 * k)) - 1;
    // Uniform non-identity Pauli string, encoded base 4.
    const std::size_t pick = 1 + rng.index(nPaulis);
    std::size_t code = pick;
    for (std::size_t b = 0; b < k; ++b) {
        const std::size_t single = code % 4;
        code /= 4;
        if (single != 0)
            sim::applyPauli(amps, n_qubits, qubits[b], single);
    }
}

void
applyDepolarizing(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                  double p, linalg::Rng &rng)
{
    validateErrorParameter(p);
    if (p <= 0.0)
        return;
    if (rng.uniform() >= p)
        return;
    sim::applyPauli(amps, n_qubits, qubit, 1 + rng.index(3));
}

void
applyDepolarizing(Complex *amps, std::size_t n_qubits, std::size_t qubit_a,
                  std::size_t qubit_b, double p, linalg::Rng &rng)
{
    validateErrorParameter(p);
    if (qubit_a == qubit_b)
        throw std::invalid_argument(
            "applyDepolarizing: duplicate qubit in Pauli string");
    if (p <= 0.0)
        return;
    if (rng.uniform() >= p)
        return;
    const std::size_t pick = 1 + rng.index(15);
    // Base-4 Pauli string, least significant digit on qubit_a (the
    // same encoding the vector overload uses for {a, b}).
    const std::size_t onA = pick % 4;
    const std::size_t onB = pick / 4;
    if (onA != 0)
        sim::applyPauli(amps, n_qubits, qubit_a, onA);
    if (onB != 0)
        sim::applyPauli(amps, n_qubits, qubit_b, onB);
}

void
applyDepolarizing(sim::BatchState &batch, std::size_t lane,
                  std::size_t qubit, double p, linalg::Rng &rng)
{
    validateErrorParameter(p);
    if (lane >= batch.batch())
        throw std::invalid_argument("applyDepolarizing: lane out of range");
    if (p <= 0.0)
        return;
    if (rng.uniform() >= p)
        return;
    sim::applyPauliLane(batch.re(), batch.im(), batch.numQubits(),
                        batch.batch(), lane, qubit, 1 + rng.index(3));
}

void
applyDepolarizing(sim::BatchState &batch, std::size_t lane,
                  std::size_t qubit_a, std::size_t qubit_b, double p,
                  linalg::Rng &rng)
{
    validateErrorParameter(p);
    if (lane >= batch.batch())
        throw std::invalid_argument("applyDepolarizing: lane out of range");
    if (qubit_a == qubit_b)
        throw std::invalid_argument(
            "applyDepolarizing: duplicate qubit in Pauli string");
    if (p <= 0.0)
        return;
    if (rng.uniform() >= p)
        return;
    const std::size_t pick = 1 + rng.index(15);
    const std::size_t onA = pick % 4;
    const std::size_t onB = pick / 4;
    if (onA != 0)
        sim::applyPauliLane(batch.re(), batch.im(), batch.numQubits(),
                            batch.batch(), lane, qubit_a, onA);
    if (onB != 0)
        sim::applyPauliLane(batch.re(), batch.im(), batch.numQubits(),
                            batch.batch(), lane, qubit_b, onB);
}

void
applyDepolarizing(State &state, const std::vector<std::size_t> &qubits,
                  double p, linalg::Rng &rng)
{
    for (std::size_t q : qubits)
        if (q >= state.numQubits())
            throw std::invalid_argument(
                "applyDepolarizing: qubit out of range");
    applyDepolarizing(state.data(), state.numQubits(), qubits, p, rng);
}

} // namespace circuit
} // namespace crisc

#include "noise.hh"

#include <stdexcept>

#include "qop/gates.hh"

namespace crisc {
namespace circuit {

const Matrix &
pauliByIndex(std::size_t idx)
{
    switch (idx) {
      case 0:
        return qop::pauliI();
      case 1:
        return qop::pauliX();
      case 2:
        return qop::pauliY();
      case 3:
        return qop::pauliZ();
      default:
        throw std::invalid_argument("pauliByIndex: index out of range");
    }
}

void
applyDepolarizing(State &state, const std::vector<std::size_t> &qubits,
                  double p, linalg::Rng &rng)
{
    if (p <= 0.0)
        return;
    if (rng.uniform() >= p)
        return;
    const std::size_t k = qubits.size();
    const std::size_t nPaulis = (std::size_t{1} << (2 * k)) - 1;
    // Uniform non-identity Pauli string, encoded base 4.
    const std::size_t pick = 1 + rng.index(nPaulis);
    std::size_t code = pick;
    for (std::size_t b = 0; b < k; ++b) {
        const std::size_t single = code % 4;
        code /= 4;
        if (single != 0)
            state.apply(pauliByIndex(single), {qubits[b]});
    }
}

} // namespace circuit
} // namespace crisc

#include "circuit.hh"

#include <cmath>
#include <stdexcept>

#include "qop/gates.hh"

namespace crisc {
namespace circuit {

void
Circuit::add(Matrix op, std::vector<std::size_t> qubits, std::string label)
{
    const std::size_t dim = std::size_t{1} << qubits.size();
    if (op.rows() != dim || op.cols() != dim)
        throw std::invalid_argument("Circuit::add: operator size mismatch");
    for (std::size_t q : qubits)
        if (q >= nQubits_)
            throw std::invalid_argument("Circuit::add: qubit out of range");
    gates_.push_back({std::move(op), std::move(qubits), std::move(label)});
}

void
Circuit::append(const Circuit &other)
{
    if (other.numQubits() != nQubits_)
        throw std::invalid_argument("Circuit::append: register mismatch");
    for (const Gate &g : other.gates())
        gates_.push_back(g);
}

std::size_t
Circuit::twoQubitCount() const
{
    std::size_t n = 0;
    for (const Gate &g : gates_)
        if (g.qubits.size() >= 2)
            ++n;
    return n;
}

Matrix
Circuit::toUnitary() const
{
    const std::size_t dim = std::size_t{1} << nQubits_;
    Matrix u = Matrix::identity(dim);
    for (const Gate &g : gates_)
        u = qop::embed(g.op, g.qubits, nQubits_) * u;
    return u;
}

State::State(std::size_t num_qubits)
    : nQubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, Complex{0.0, 0.0})
{
    amps_[0] = 1.0;
}

void
State::apply(const Matrix &op, const std::vector<std::size_t> &qubits)
{
    const std::size_t k = qubits.size();
    const std::size_t gdim = std::size_t{1} << k;
    if (op.rows() != gdim || op.cols() != gdim)
        throw std::invalid_argument("State::apply: operator size mismatch");

    // Bit positions of the addressed qubits (qubit 0 is msb).
    std::vector<std::size_t> pos(k);
    for (std::size_t b = 0; b < k; ++b) {
        if (qubits[b] >= nQubits_)
            throw std::invalid_argument("State::apply: qubit out of range");
        pos[b] = nQubits_ - 1 - qubits[b];
    }

    // Iterate over all assignments of the untouched qubits and apply the
    // dense k-qubit block to each amplitude group.
    const std::size_t dim = amps_.size();
    std::size_t mask = 0;
    for (std::size_t p : pos)
        mask |= std::size_t{1} << p;

    std::vector<Complex> in(gdim), out(gdim);
    for (std::size_t base = 0; base < dim; ++base) {
        if (base & mask)
            continue; // visit each group once, at its all-zeros member
        std::vector<std::size_t> idx(gdim);
        for (std::size_t g = 0; g < gdim; ++g) {
            std::size_t address = base;
            for (std::size_t b = 0; b < k; ++b)
                if ((g >> (k - 1 - b)) & 1)
                    address |= std::size_t{1} << pos[b];
            idx[g] = address;
            in[g] = amps_[address];
        }
        for (std::size_t r = 0; r < gdim; ++r) {
            Complex s = 0.0;
            for (std::size_t c = 0; c < gdim; ++c)
                s += op(r, c) * in[c];
            out[r] = s;
        }
        for (std::size_t g = 0; g < gdim; ++g)
            amps_[idx[g]] = out[g];
    }
}

void
State::run(const Circuit &c)
{
    if (c.numQubits() != nQubits_)
        throw std::invalid_argument("State::run: register mismatch");
    for (const Gate &g : c.gates())
        apply(g.op, g.qubits);
}

double
State::probability(std::size_t index) const
{
    return std::norm(amps_.at(index));
}

std::vector<double>
State::probabilities() const
{
    std::vector<double> p(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        p[i] = std::norm(amps_[i]);
    return p;
}

double
State::fidelityWith(const State &other) const
{
    return std::norm(linalg::dot(other.amps_, amps_));
}

} // namespace circuit
} // namespace crisc

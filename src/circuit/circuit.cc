#include "circuit.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qop/gates.hh"
#include "sim/kernels.hh"

namespace crisc {
namespace circuit {

void
Circuit::add(Matrix op, std::vector<std::size_t> qubits, std::string label)
{
    const std::size_t dim = std::size_t{1} << qubits.size();
    if (op.rows() != dim || op.cols() != dim)
        throw std::invalid_argument("Circuit::add: operator size mismatch");
    for (std::size_t q : qubits)
        if (q >= nQubits_)
            throw std::invalid_argument("Circuit::add: qubit out of range");
    gates_.push_back({std::move(op), std::move(qubits), std::move(label)});
}

void
Circuit::append(const Circuit &other)
{
    if (other.numQubits() != nQubits_)
        throw std::invalid_argument("Circuit::append: register mismatch");
    for (const Gate &g : other.gates())
        gates_.push_back(g);
}

std::size_t
Circuit::twoQubitCount() const
{
    std::size_t n = 0;
    for (const Gate &g : gates_)
        if (g.qubits.size() >= 2)
            ++n;
    return n;
}

std::size_t
Circuit::depth() const
{
    std::vector<std::size_t> level(nQubits_, 0);
    std::size_t deepest = 0;
    for (const Gate &g : gates_) {
        std::size_t d = 0;
        for (std::size_t q : g.qubits)
            d = std::max(d, level[q]);
        ++d;
        for (std::size_t q : g.qubits)
            level[q] = d;
        deepest = std::max(deepest, d);
    }
    return deepest;
}

Matrix
Circuit::toUnitary() const
{
    const std::size_t dim = std::size_t{1} << nQubits_;
    Matrix u = Matrix::identity(dim);
    for (const Gate &g : gates_)
        u = qop::embed(g.op, g.qubits, nQubits_) * u;
    return u;
}

State::State(std::size_t num_qubits)
    : nQubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, Complex{0.0, 0.0})
{
    amps_[0] = 1.0;
}

void
State::apply(const Matrix &op, const std::vector<std::size_t> &qubits)
{
    const std::size_t gdim = std::size_t{1} << qubits.size();
    if (op.rows() != gdim || op.cols() != gdim)
        throw std::invalid_argument("State::apply: operator size mismatch");
    for (std::size_t q : qubits)
        if (q >= nQubits_)
            throw std::invalid_argument("State::apply: qubit out of range");
    sim::applyGate(amps_.data(), nQubits_, op, qubits);
}

void
State::run(const Circuit &c)
{
    if (c.numQubits() != nQubits_)
        throw std::invalid_argument("State::run: register mismatch");
    for (const Gate &g : c.gates())
        apply(g.op, g.qubits);
}

double
State::probability(std::size_t index) const
{
    return std::norm(amps_.at(index));
}

std::vector<double>
State::probabilities() const
{
    std::vector<double> p(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        p[i] = std::norm(amps_[i]);
    return p;
}

double
State::fidelityWith(const State &other) const
{
    return std::norm(linalg::dot(other.amps_, amps_));
}

} // namespace circuit
} // namespace crisc

/**
 * @file
 * Minimal gate-list circuit IR and a dense statevector simulator. This
 * is the substrate for the quantum-volume experiments (Fig. 7), the
 * synthesis verification, and the example applications.
 *
 * Qubit 0 is the most significant bit of a basis index, matching
 * qop::embed and the tensor order kron(q0, q1, ...).
 */

#ifndef CRISC_CIRCUIT_CIRCUIT_HH
#define CRISC_CIRCUIT_CIRCUIT_HH

#include <string>
#include <vector>

#include "linalg/matrix.hh"

namespace crisc {
namespace circuit {

using linalg::Complex;
using linalg::CVector;
using linalg::Matrix;

/** One gate application: a dense unitary on an ordered set of qubits. */
struct Gate
{
    Matrix op;                        ///< 2^k x 2^k unitary.
    std::vector<std::size_t> qubits;  ///< register qubits, msq first.
    std::string label;                ///< for printing/debugging.
};

/** A gate-list circuit on a fixed number of qubits. */
class Circuit
{
  public:
    explicit Circuit(std::size_t num_qubits) : nQubits_(num_qubits) {}

    std::size_t numQubits() const { return nQubits_; }
    const std::vector<Gate> &gates() const { return gates_; }
    std::size_t size() const { return gates_.size(); }

    /** Appends a gate; validates qubit indices and operator size. */
    void add(Matrix op, std::vector<std::size_t> qubits,
             std::string label = "");

    /** Appends all gates of another circuit on the same register. */
    void append(const Circuit &other);

    /** Number of gates acting on >= 2 qubits. */
    std::size_t twoQubitCount() const;

    /**
     * Circuit depth: length of the longest chain of gates sharing a
     * qubit (gates on disjoint qubits count as parallel). 0 when empty.
     */
    std::size_t depth() const;

    /** Builds the full 2^n x 2^n unitary (for small n; tests/synthesis). */
    Matrix toUnitary() const;

  private:
    std::size_t nQubits_;
    std::vector<Gate> gates_;
};

/**
 * Dense statevector of n qubits, starting in |0...0>.
 */
class State
{
  public:
    explicit State(std::size_t num_qubits);

    std::size_t numQubits() const { return nQubits_; }
    const CVector &amplitudes() const { return amps_; }

    /** Raw amplitude storage, for the sim kernels and noise channels. */
    Complex *data() { return amps_.data(); }
    const Complex *data() const { return amps_.data(); }

    /**
     * Applies a k-qubit gate in place (matrix is 2^k x 2^k). Gates on
     * one or two qubits dispatch to the specialized kernels in
     * sim/kernels.hh; larger gates take the generic dense path.
     */
    void apply(const Matrix &op, const std::vector<std::size_t> &qubits);

    /** Runs a whole circuit. */
    void run(const Circuit &c);

    /** Probability of the computational basis outcome @p index. */
    double probability(std::size_t index) const;

    /** All 2^n outcome probabilities. */
    std::vector<double> probabilities() const;

    /** Squared overlap |<other|this>|^2. */
    double fidelityWith(const State &other) const;

  private:
    std::size_t nQubits_;
    CVector amps_;
};

} // namespace circuit
} // namespace crisc

#endif // CRISC_CIRCUIT_CIRCUIT_HH

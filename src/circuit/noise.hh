/**
 * @file
 * Stochastic Pauli (depolarizing) noise for trajectory simulation,
 * matching the error model of the paper's quantum-volume study
 * (Sec. 6.3): every native gate suffers depolarizing noise whose rate
 * is proportional to its gate time.
 */

#ifndef CRISC_CIRCUIT_NOISE_HH
#define CRISC_CIRCUIT_NOISE_HH

#include "circuit.hh"
#include "linalg/random.hh"
#include "sim/batch_state.hh"

namespace crisc {
namespace circuit {

/**
 * One shot of k-qubit depolarizing noise on a statevector: with
 * probability p a uniformly random non-identity k-qubit Pauli is
 * applied — the standard stochastic unravelling of the depolarizing
 * channel with error parameter p.
 *
 * All overloads validate the channel: p outside [0, 1] (including NaN)
 * and duplicate qubits throw std::invalid_argument — either would
 * silently produce a map that is not a depolarizing channel.
 */
void applyDepolarizing(State &state, const std::vector<std::size_t> &qubits,
                       double p, linalg::Rng &rng);

/**
 * Raw-statevector form used by the trajectory batch runner: identical
 * sampling, with the Pauli applied through the specialized 1-qubit
 * kernel (sim::applyPauli) instead of a dense 2x2 multiply.
 */
void applyDepolarizing(Complex *amps, std::size_t n_qubits,
                       const std::vector<std::size_t> &qubits, double p,
                       linalg::Rng &rng);

/** 1-qubit fast path: no container allocation in the hot loop. */
void applyDepolarizing(Complex *amps, std::size_t n_qubits,
                       std::size_t qubit, double p, linalg::Rng &rng);

/** 2-qubit fast path: no container allocation in the hot loop. */
void applyDepolarizing(Complex *amps, std::size_t n_qubits,
                       std::size_t qubit_a, std::size_t qubit_b, double p,
                       linalg::Rng &rng);

/**
 * 1-qubit fast path on one lane of an SoA trajectory batch: the
 * divergence point of batched execution. Draws exactly the same random
 * sequence from @p rng as the serial 1-qubit fast path, and applies the
 * sampled Pauli to lane @p lane only (sim::applyPauliLane), so the lane
 * stays bit-identical to its serial trajectory.
 */
void applyDepolarizing(sim::BatchState &batch, std::size_t lane,
                       std::size_t qubit, double p, linalg::Rng &rng);

/** 2-qubit fast path on one lane of an SoA trajectory batch. */
void applyDepolarizing(sim::BatchState &batch, std::size_t lane,
                       std::size_t qubit_a, std::size_t qubit_b, double p,
                       linalg::Rng &rng);

/** The single-qubit Pauli with index 0..3 = I, X, Y, Z. */
const Matrix &pauliByIndex(std::size_t idx);

} // namespace circuit
} // namespace crisc

#endif // CRISC_CIRCUIT_NOISE_HH

/**
 * @file
 * Quantum-volume harness (paper Sec. 6.3, Figure 7): square random
 * model circuits on a 2D-grid device, compiled to one of three native
 * instruction sets, with per-native-gate depolarizing noise whose rate
 * is proportional to the gate time. The figure of merit is the heavy
 * output proportion (Cross et al.).
 */

#ifndef CRISC_QV_QV_HH
#define CRISC_QV_QV_HH

#include <cstddef>

#include "linalg/random.hh"
#include "weyl/weyl.hh"

namespace crisc {
namespace qv {

/** Native two-qubit instruction set used for compilation. */
enum class NativeSet
{
    CZ,     ///< flux-tuned CZ: 3 per SU(4), gate time pi/sqrt(2).
    SQiSW,  ///< flux-tuned sqrt(iSWAP): 2 or 3 per SU(4), time pi/4 each.
    AshN,   ///< AshN pulse: 1 per SU(4), time from the scheme.
};

/** Experiment configuration. */
struct QvConfig
{
    std::size_t width = 4;       ///< circuit size d (qubits and layers).
    NativeSet native = NativeSet::AshN;
    double ashnCutoff = 0.0;     ///< r for the AshN gate-time function.
    double czError = 0.01;       ///< two-qubit depolarizing rate of a CZ.
    double singleQubitError = 0.001;
    int circuits = 40;           ///< random model circuits to average.
    int trajectories = 20;       ///< noise trajectories per circuit.
    std::uint64_t seed = 1;
    /**
     * Worker threads for the trajectory batch (0 = hardware
     * concurrency). Results are bit-for-bit identical for any value:
     * every trajectory draws from its own seed-derived RNG stream and
     * the reduction order is fixed.
     */
    int threads = 0;
};

/** Aggregated result for one configuration. */
struct QvResult
{
    double heavyOutputProportion = 0.0;
    double avgNativeGatesPerCircuit = 0.0;
    double avgTwoQubitTimePerCircuit = 0.0; ///< units of 1/g.
    double avgSwapsPerCircuit = 0.0;
};

/** Runs the heavy-output experiment for one configuration. */
QvResult heavyOutputExperiment(const QvConfig &config);

/**
 * Native gate count and total two-qubit interaction time (units of 1/g)
 * to compile a gate with the given canonical Weyl point.
 */
struct CompiledCost
{
    int nativeGates;
    double totalTime;
};
CompiledCost compileCost(NativeSet native, const weyl::WeylPoint &p,
                         double ashn_cutoff);

/** Human-readable instruction-set name. */
const char *nativeSetName(NativeSet s);

} // namespace qv
} // namespace crisc

#endif // CRISC_QV_QV_HH

/**
 * @file
 * Quantum-volume harness (paper Sec. 6.3, Figure 7): square random
 * model circuits compiled to a target device::Device — its coupling
 * map drives SWAP routing, its native gate set prices every two-qubit
 * block, and its noise model sets the per-native-gate depolarizing
 * rate (proportional to gate time). The figure of merit is the heavy
 * output proportion (Cross et al.).
 *
 * The harness holds the paper's error model: each routed SU(4) block
 * is applied ideally, followed by the depolarizing budget of the
 * native gates the device's cost model charges for it. The actual
 * native decomposition (transpile::NativeLower) is unitary-equivalent
 * — tests/test_device.cc proves it per gate set — so the ideal-block
 * application changes nothing but the floating-point path.
 */

#ifndef CRISC_QV_QV_HH
#define CRISC_QV_QV_HH

#include <cstddef>

#include "device/device.hh"
#include "linalg/random.hh"
#include "weyl/weyl.hh"

namespace crisc {
namespace qv {

/** Native two-qubit instruction set used for compilation. */
using NativeSet = device::NativeKind;

/** Experiment configuration. Knobs cover the three parallel axes and
 *  blocking; the kernel SIMD backend is not configurable here — it is
 *  process-global, resolved from CRISC_SIMD_DISPATCH or the CPU probe
 *  (sim/dispatch.hh), and every backend is bit-identical anyway. */
struct QvConfig
{
    std::size_t width = 4;       ///< circuit size d (qubits and layers).
    NativeSet native = NativeSet::AshN;
    double ashnCutoff = 0.0;     ///< r for the AshN gate-time function.
    double czError = 0.01;       ///< two-qubit depolarizing rate of a CZ.
    double singleQubitError = 0.001;
    int circuits = 40;           ///< random model circuits to average.
    int trajectories = 20;       ///< noise trajectories per circuit.
    std::uint64_t seed = 1;
    /**
     * Worker threads for the trajectory batch (0 = hardware
     * concurrency). Results are bit-for-bit identical for any value:
     * every trajectory draws from its own seed-derived RNG stream and
     * the reduction order is fixed. Negative values are rejected with
     * std::invalid_argument.
     */
    int threads = 0;
    /**
     * State-parallel sweep workers per trajectory (the second parallel
     * axis, sim::ExecOptions): 1 = serial sweeps (default), n > 1 = n
     * sweep workers for each concurrent trajectory, 0 = pick the
     * trajectory/state split automatically from the circuit width via
     * sim::planBatch, treating `threads` as the total budget. Results
     * are bit-for-bit identical for any value; negative values are
     * rejected with std::invalid_argument.
     */
    int stateThreads = 1;
    /**
     * SoA trajectory batching (the third parallel axis,
     * sim::BatchState): number of trajectories packed into one SoA
     * batch per trajectory slot, so SIMD lanes run across trajectories.
     * 0 = pick automatically from the simulated width via
     * sim::planBatch (the SIMD lane count below 18 qubits, 1 above),
     * 1 = off (per-state path), n > 1 = force a batch width of n.
     * Results are bit-for-bit identical for any value; negative values
     * are rejected with std::invalid_argument.
     */
    int soaLanes = 0;
    /**
     * Cache-blocked plan execution for the per-circuit ideal
     * simulation (sim::ExecOptions::blockQubits): 0 = auto (the width
     * heuristic turns blocking on from sim::kAutoBlockFromWidth
     * qubits), n >= 1 = force block exponent n (clamped to the
     * simulated width). The noisy trajectory bodies interleave noise
     * between individual ops, so blocking only applies to whole-plan
     * execution. Results are bit-for-bit identical for any value;
     * negative values are rejected with std::invalid_argument.
     */
    int blockQubits = 0;
    /**
     * Sharded execution of the per-circuit ideal simulation
     * (sim::ExecOptions::shardBits, sim/shard.hh): 0 = auto (the
     * CRISC_SHARDS environment variable when set, otherwise
     * unsharded), s >= 1 = split the ideal register into 2^s shards
     * (clamped to the simulated width minus one). Like blockQubits,
     * only whole-plan execution consults this — the noisy trajectory
     * bodies interleave noise between individual ops. Results are
     * bit-for-bit identical for any value; negative values are
     * rejected with std::invalid_argument.
     */
    int shardBits = 0;
    /**
     * Run against this device instead of the canned grid preset built
     * from (width, native, ashnCutoff, czError, singleQubitError).
     * Must have at least `width` qubits.
     */
    const device::Device *device = nullptr;
};

/** Aggregated result for one configuration. */
struct QvResult
{
    double heavyOutputProportion = 0.0;
    double avgNativeGatesPerCircuit = 0.0;
    double avgTwoQubitTimePerCircuit = 0.0; ///< units of 1/g.
    double avgSwapsPerCircuit = 0.0;
    /**
     * Wall-clock time of the experiment in seconds (timing only — not
     * part of the deterministic result; the benchmark runner records
     * it in BENCH_fig7.json).
     */
    double wallSeconds = 0.0;
};

/**
 * Runs the heavy-output experiment for one configuration.
 * @throws std::invalid_argument on a zero width, non-positive circuit
 *         or trajectory counts, out-of-range error rates, or a device
 *         smaller than the circuit.
 */
QvResult heavyOutputExperiment(const QvConfig &config);

/** The grid-preset device heavyOutputExperiment builds for @p config. */
device::Device presetDevice(const QvConfig &config);

/**
 * Native gate count and total two-qubit interaction time (units of
 * 1/g) to compile a gate with the given canonical Weyl point — the
 * cost model of the corresponding built-in device::NativeGateSet.
 */
using CompiledCost = device::GateCost;
CompiledCost compileCost(NativeSet native, const weyl::WeylPoint &p,
                         double ashn_cutoff);

/** Human-readable instruction-set name. */
const char *nativeSetName(NativeSet s);

} // namespace qv
} // namespace crisc

#endif // CRISC_QV_QV_HH

#include "qv.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ashn/scheme.hh"
#include "ashn/special.hh"
#include "circuit/circuit.hh"
#include "circuit/noise.hh"
#include "qop/gates.hh"
#include "route/route.hh"
#include "sim/batch.hh"
#include "sim/engine.hh"
#include "transpile/passes.hh"

namespace crisc {
namespace qv {

using linalg::Complex;
using linalg::Matrix;
using weyl::WeylPoint;

namespace {

constexpr double kCzTime = M_PI / std::numbers::sqrt2;
constexpr double kSqiswTime = M_PI / 4.0;

/**
 * One physical two-qubit block, pre-lowered to a flat 4x4 kernel
 * operand, with its native-gate noise budget.
 */
struct PhysicalOp
{
    std::size_t a, b;              ///< physical qubits (a = gate msq).
    std::array<Complex, 16> m;     ///< ideal 4x4 unitary, row-major.
    int natives;                   ///< native gates used to realize it.
    double p2;                     ///< 2q depolarizing rate per native gate.
};

std::array<Complex, 16>
flatten4(const Matrix &u)
{
    std::array<Complex, 16> m;
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            m[r * 4 + c] = u(r, c);
    return m;
}

} // namespace

const char *
nativeSetName(NativeSet s)
{
    switch (s) {
      case NativeSet::CZ:
        return "CZ";
      case NativeSet::SQiSW:
        return "SQiSW";
      case NativeSet::AshN:
        return "AshN";
    }
    return "?";
}

CompiledCost
compileCost(NativeSet native, const WeylPoint &p, double ashn_cutoff)
{
    switch (native) {
      case NativeSet::CZ:
        return {3, 3.0 * kCzTime};
      case NativeSet::SQiSW: {
        // Huang et al. (ref. [30]): two applications cover the region
        // x >= y + |z|; three are needed otherwise.
        const int k = p.x >= p.y + std::abs(p.z) - 1e-9 ? 2 : 3;
        return {k, k * kSqiswTime};
      }
      case NativeSet::AshN:
        return {1, ashn::gateTime(p, 0.0, ashn_cutoff)};
    }
    throw std::invalid_argument("compileCost: unknown native set");
}

QvResult
heavyOutputExperiment(const QvConfig &config)
{
    const std::size_t d = config.width;
    const std::size_t dim = std::size_t{1} << d;
    const route::CouplingMap map = route::CouplingMap::gridFor(d);
    const transpile::Route routePass;
    const WeylPoint swapPoint = ashn::swapPoint();
    sim::ThreadPool pool(static_cast<std::size_t>(
        config.threads < 0 ? 1 : config.threads));

    double heavySum = 0.0;
    double gateSum = 0.0, timeSum = 0.0, swapSum = 0.0;

    for (int ci = 0; ci < config.circuits; ++ci) {
        // Circuit generation and noise sampling draw from separate
        // seed-derived streams (even / odd), so a circuit's gates
        // depend only on (seed, ci) — never on how many trajectories
        // or threads earlier circuits ran with.
        const std::uint64_t circuitStream = 2 * std::uint64_t(ci);
        linalg::Rng genRng(sim::streamSeed(config.seed, circuitStream));

        // --- Model circuit: d layers of random pairings + Haar SU(4).
        struct Block
        {
            std::size_t a, b;
            Matrix u;
        };
        std::vector<std::vector<Block>> layers(d);
        std::vector<std::size_t> order(d);
        for (std::size_t i = 0; i < d; ++i)
            order[i] = i;
        for (std::size_t layer = 0; layer < d; ++layer) {
            std::shuffle(order.begin(), order.end(), genRng.engine());
            for (std::size_t k = 0; k + 1 < d; k += 2) {
                layers[layer].push_back(
                    {order[k], order[k + 1], linalg::haarSU(genRng, 4)});
            }
        }

        // --- Ideal output distribution and heavy set, via the kernel
        // engine (fusion is a no-op here; the quad kernel is not).
        circuit::Circuit model(d);
        for (const auto &layer : layers)
            for (const Block &blk : layer)
                model.add(blk.u, {blk.a, blk.b});
        const linalg::CVector idealAmps = sim::run(sim::compile(model));
        std::vector<double> probs(dim);
        for (std::size_t i = 0; i < dim; ++i)
            probs[i] = std::norm(idealAmps[i]);
        std::vector<double> sorted = probs;
        std::nth_element(sorted.begin(), sorted.begin() + dim / 2,
                         sorted.end());
        // Median of 2^d values (even count): mean of the middle pair.
        const double upper = sorted[dim / 2];
        const double lower =
            *std::max_element(sorted.begin(), sorted.begin() + dim / 2);
        const double median = 0.5 * (upper + lower);
        std::vector<bool> heavy(dim);
        for (std::size_t i = 0; i < dim; ++i)
            heavy[i] = probs[i] > median;

        // --- Route onto the grid through the shared transpiler pass
        // (SWAP insertion + layout tracking), then attach the native
        // cost model to each physical block.
        transpile::PassContext routeCtx;
        routeCtx.coupling = &map;
        const circuit::Circuit routed = routePass.run(model, routeCtx);
        const route::Layout &layout = *routeCtx.layout;

        std::vector<PhysicalOp> ops;
        const CompiledCost swapCost =
            compileCost(config.native, swapPoint, config.ashnCutoff);
        for (const circuit::Gate &g : routed.gates()) {
            if (g.label == "swap") {
                ops.push_back({g.qubits[0], g.qubits[1],
                               flatten4(g.op), swapCost.nativeGates,
                               config.czError *
                                   (swapCost.totalTime /
                                    swapCost.nativeGates) /
                                   kCzTime});
                swapSum += 1.0;
                gateSum += swapCost.nativeGates;
                timeSum += swapCost.totalTime;
                continue;
            }
            const WeylPoint p = weyl::weylCoordinates(g.op);
            const CompiledCost cost =
                compileCost(config.native, p, config.ashnCutoff);
            ops.push_back({g.qubits[0], g.qubits[1], flatten4(g.op),
                           cost.nativeGates,
                           config.czError *
                               (cost.totalTime / cost.nativeGates) /
                               kCzTime});
            gateSum += cost.nativeGates;
            timeSum += cost.totalTime;
        }

        // Physical basis index -> logical basis index through the final
        // layout, shared read-only by every trajectory.
        std::vector<std::size_t> logicalIndex(dim);
        for (std::size_t phys = 0; phys < dim; ++phys) {
            std::size_t logical = 0;
            for (std::size_t l = 0; l < d; ++l) {
                const std::size_t pq = layout.physicalOf(l);
                const std::size_t bit = (phys >> (d - 1 - pq)) & 1;
                logical |= bit << (d - 1 - l);
            }
            logicalIndex[phys] = logical;
        }

        // --- Noisy trajectories, fanned out over the pool. Each
        // trajectory owns a statevector and an RNG stream derived from
        // (seed, circuit, trajectory).
        heavySum += sim::sumTrajectories(
            pool,
            static_cast<std::size_t>(std::max(config.trajectories, 0)),
            sim::streamSeed(config.seed, circuitStream + 1),
            [&](std::size_t, linalg::Rng &rng) {
                linalg::CVector amps(dim, Complex{0.0, 0.0});
                amps[0] = 1.0;
                for (const PhysicalOp &op : ops) {
                    sim::apply2q(amps.data(), d, op.a, op.b, op.m.data());
                    for (int g = 0; g < op.natives; ++g) {
                        circuit::applyDepolarizing(amps.data(), d, op.a,
                                                   op.b, op.p2, rng);
                        circuit::applyDepolarizing(
                            amps.data(), d, op.a,
                            config.singleQubitError, rng);
                        circuit::applyDepolarizing(
                            amps.data(), d, op.b,
                            config.singleQubitError, rng);
                    }
                }
                double hop = 0.0;
                for (std::size_t phys = 0; phys < dim; ++phys)
                    if (heavy[logicalIndex[phys]])
                        hop += std::norm(amps[phys]);
                return hop;
            });
    }

    QvResult out;
    out.heavyOutputProportion =
        heavySum / (config.circuits * config.trajectories);
    out.avgNativeGatesPerCircuit = gateSum / config.circuits;
    out.avgTwoQubitTimePerCircuit = timeSum / config.circuits;
    out.avgSwapsPerCircuit = swapSum / config.circuits;
    return out;
}

} // namespace qv
} // namespace crisc

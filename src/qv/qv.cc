#include "qv.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>

#include "ashn/special.hh"
#include "circuit/circuit.hh"
#include "circuit/noise.hh"
#include "obs/obs.hh"
#include "qop/gates.hh"
#include "route/route.hh"
#include "sim/batch.hh"
#include "sim/engine.hh"
#include "transpile/passes.hh"

namespace crisc {
namespace qv {

using linalg::Complex;
using linalg::Matrix;
using weyl::WeylPoint;

namespace {

/**
 * One physical two-qubit block, pre-lowered to a dense-quad KernelOp
 * (executable serial or state-parallel via sim::executeOp), with its
 * native-gate noise budget.
 */
struct PhysicalOp
{
    sim::KernelOp kernel;          ///< TwoQ op; q0 = gate msq.
    int natives;                   ///< native gates used to realize it.
    double p2;                     ///< 2q depolarizing rate per native gate.
};

sim::KernelOp
quadOp(std::size_t a, std::size_t b, const Matrix &u)
{
    sim::KernelOp op;
    op.kind = sim::KernelKind::TwoQ;
    op.q0 = a;
    op.q1 = b;
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            op.m[r * 4 + c] = u(r, c);
    return op;
}

void
validate(const QvConfig &config)
{
    auto fail = [](const std::string &msg) {
        throw std::invalid_argument("QvConfig: " + msg);
    };
    if (config.width == 0)
        fail("width must be at least 1");
    if (config.width > 30)
        fail("width must be at most 30 (statevector simulation limit), "
             "got " +
             std::to_string(config.width));
    if (config.circuits <= 0)
        fail("circuits must be positive, got " +
             std::to_string(config.circuits));
    if (config.trajectories <= 0)
        fail("trajectories must be positive, got " +
             std::to_string(config.trajectories));
    if (config.threads < 0)
        fail("threads must be non-negative (0 = hardware concurrency), "
             "got " +
             std::to_string(config.threads));
    if (config.stateThreads < 0)
        fail("stateThreads must be non-negative (0 = width heuristic), "
             "got " +
             std::to_string(config.stateThreads));
    if (config.soaLanes < 0)
        fail("soaLanes must be non-negative (0 = width heuristic), got " +
             std::to_string(config.soaLanes));
    if (config.blockQubits < 0)
        fail("blockQubits must be non-negative (0 = width heuristic), "
             "got " +
             std::to_string(config.blockQubits));
    if (config.shardBits < 0)
        fail("shardBits must be non-negative (0 = CRISC_SHARDS or "
             "unsharded), got " +
             std::to_string(config.shardBits));
    if (!(config.czError >= 0.0 && config.czError <= 1.0))
        fail("czError must lie in [0, 1], got " +
             std::to_string(config.czError));
    if (!(config.singleQubitError >= 0.0 && config.singleQubitError <= 1.0))
        fail("singleQubitError must lie in [0, 1], got " +
             std::to_string(config.singleQubitError));
    if (config.device != nullptr &&
        config.device->numQubits() < config.width)
        fail("device has fewer qubits than the circuit width");
}

} // namespace

const char *
nativeSetName(NativeSet s)
{
    return device::nativeKindName(s);
}

CompiledCost
compileCost(NativeSet native, const WeylPoint &p, double ashn_cutoff)
{
    return device::makeNativeGateSet(native, 0.0, ashn_cutoff)->cost(p);
}

device::Device
presetDevice(const QvConfig &config)
{
    return device::Device::grid2d(config.native, config.width,
                                  {.twoQubitError = config.czError,
                                   .singleQubitError =
                                       config.singleQubitError,
                                   .h = 0.0,
                                   .r = config.ashnCutoff});
}

QvResult
heavyOutputExperiment(const QvConfig &config)
{
    validate(config);
    const auto wallStart = std::chrono::steady_clock::now();

    // One device drives everything below: routing (coupling map),
    // compilation cost (native gate set), and the noise budget.
    std::optional<device::Device> preset;
    const device::Device *dev = config.device;
    if (dev == nullptr) {
        preset.emplace(presetDevice(config));
        dev = &*preset;
    }
    const route::CouplingMap &map = dev->coupling();
    const device::NativeGateSet &native = dev->gateSet();
    const device::NoiseModel &noise = dev->noise();

    const std::size_t d = config.width;
    const std::size_t dim = std::size_t{1} << d;
    const std::size_t n = map.numQubits();
    const transpile::Route routePass;
    const WeylPoint swapPoint = ashn::swapPoint();
    // Three parallel axes (batch.hh): concurrent trajectories,
    // state-parallel sweeps within each, and SoA trajectory batching
    // with SIMD lanes across trajectories. stateThreads == 0 asks the
    // width heuristic to split the `threads` budget across the first
    // two; soaLanes == 0 asks it for the SoA batch width. The width
    // that matters is the *simulated* register size (compacted routed
    // qubits, >= d), so the runner is built lazily once the first
    // circuit has been routed. The choice never affects results, so
    // one representative circuit suffices.
    std::optional<sim::TrajectoryRunner> runner;
    std::optional<sim::ThreadPool> idealPool;
    sim::ExecOptions idealExec;
    std::size_t soaLanes = 1;
    const auto ensureRunner = [&](std::size_t sim_width) {
        if (runner)
            return;
        const std::size_t total = sim::resolveThreads(
            static_cast<std::size_t>(config.threads));
        const sim::BatchPlan heur = sim::planBatch(
            total, sim_width,
            static_cast<std::size_t>(config.trajectories));
        sim::BatchPlan split = heur;
        if (config.stateThreads != 0)
            split = {total, static_cast<std::size_t>(config.stateThreads)};
        soaLanes = config.soaLanes == 0
                       ? heur.soaLanes
                       : static_cast<std::size_t>(config.soaLanes);
        runner.emplace(split.trajWorkers, split.stateThreads);
        // Cache-blocked execution applies to the ideal whole-plan
        // simulation only (trajectory bodies interleave noise between
        // ops); bit-identical to unblocked execution either way.
        idealExec.blockQubits =
            config.blockQubits == 0
                ? heur.blockQubits
                : static_cast<std::size_t>(config.blockQubits);
        // Sharded execution likewise applies to the ideal whole-plan
        // simulation only; resolveShardBits clamps to the simulated
        // width at execute time.
        idealExec.shardBits =
            config.shardBits == 0
                ? heur.shardBits
                : static_cast<std::size_t>(config.shardBits);
        // The per-circuit ideal simulation runs before the trajectory
        // fan-out, so it may use the whole budget for its sweeps
        // (bit-identical to serial execution either way).
        const std::size_t totalBudget =
            runner->trajWorkers() * runner->stateThreads();
        if (totalBudget > 1) {
            idealPool.emplace(totalBudget);
            idealExec.pool = &*idealPool;
            idealExec.threads = totalBudget;
        }
    };

    double heavySum = 0.0;
    double gateSum = 0.0, timeSum = 0.0, swapSum = 0.0;

    for (int ci = 0; ci < config.circuits; ++ci) {
        OBS_SPAN("qv.circuit");
        // Circuit generation and noise sampling draw from separate
        // seed-derived streams (even / odd), so a circuit's gates
        // depend only on (seed, ci) — never on how many trajectories
        // or threads earlier circuits ran with.
        const std::uint64_t circuitStream = 2 * std::uint64_t(ci);
        linalg::Rng genRng(sim::streamSeed(config.seed, circuitStream));

        // --- Model circuit: d layers of random pairings + Haar SU(4).
        struct Block
        {
            std::size_t a, b;
            Matrix u;
        };
        std::vector<std::vector<Block>> layers(d);
        std::vector<std::size_t> order(d);
        for (std::size_t i = 0; i < d; ++i)
            order[i] = i;
        for (std::size_t layer = 0; layer < d; ++layer) {
            std::shuffle(order.begin(), order.end(), genRng.engine());
            for (std::size_t k = 0; k + 1 < d; k += 2) {
                layers[layer].push_back(
                    {order[k], order[k + 1], linalg::haarSU(genRng, 4)});
            }
        }

        circuit::Circuit model(d);
        for (const auto &layer : layers)
            for (const Block &blk : layer)
                model.add(blk.u, {blk.a, blk.b});

        // --- Route onto the device through the shared transpiler pass
        // (SWAP insertion + layout tracking), then attach the device's
        // native cost model to each physical block.
        transpile::PassContext routeCtx;
        routeCtx.coupling = &map;
        const circuit::Circuit routed = [&] {
            // Same span name the PassManager would emit for this pass.
            OBS_SPAN("pass.Route");
            return routePass.run(model, routeCtx);
        }();
        const route::Layout &layout = *routeCtx.layout;

        std::vector<PhysicalOp> ops;
        const CompiledCost swapCost = native.cost(swapPoint);
        for (const circuit::Gate &g : routed.gates()) {
            if (g.label == "swap") {
                ops.push_back({quadOp(g.qubits[0], g.qubits[1], g.op),
                               swapCost.nativeGates,
                               noise.twoQubitRateFor(swapCost.totalTime /
                                                     swapCost.nativeGates)});
                swapSum += 1.0;
                gateSum += swapCost.nativeGates;
                timeSum += swapCost.totalTime;
                continue;
            }
            const WeylPoint p = weyl::weylCoordinates(g.op);
            const CompiledCost cost = native.cost(p);
            ops.push_back({quadOp(g.qubits[0], g.qubits[1], g.op),
                           cost.nativeGates,
                           noise.twoQubitRateFor(cost.totalTime /
                                                 cost.nativeGates)});
            gateSum += cost.nativeGates;
            timeSum += cost.totalTime;
        }

        // Routing may walk logical qubits through any physical qubit,
        // but trajectory cost should scale with the circuit, not the
        // device: compact the routed ops onto the physical qubits they
        // touch (plus every logical home). The mapping is the identity
        // when the device is exactly as wide as the circuit, so the
        // canned presets are untouched bit for bit.
        std::vector<std::size_t> compact(n, 0);
        std::size_t nc = 0;
        {
            std::vector<bool> used(n, false);
            for (const PhysicalOp &op : ops)
                used[op.kernel.q0] = used[op.kernel.q1] = true;
            for (std::size_t l = 0; l < d; ++l)
                used[layout.physicalOf(l)] = true;
            for (std::size_t pq = 0; pq < n; ++pq)
                if (used[pq])
                    compact[pq] = nc++;
        }
        if (nc > 30)
            throw std::invalid_argument(
                "qv: routed circuit touches " + std::to_string(nc) +
                " physical qubits; statevector simulation supports at "
                "most 30");
        for (PhysicalOp &op : ops) {
            op.kernel.q0 = compact[op.kernel.q0];
            op.kernel.q1 = compact[op.kernel.q1];
        }
        const std::size_t simDim = std::size_t{1} << nc;
        ensureRunner(nc);

        // --- Ideal output distribution and heavy set, via the kernel
        // engine (fusion is a no-op here; the quad kernel is not).
        const linalg::CVector idealAmps = [&] {
            OBS_SPAN("qv.ideal");
            return sim::run(sim::compile(model), idealExec);
        }();
        std::vector<double> probs(dim);
        for (std::size_t i = 0; i < dim; ++i)
            probs[i] = std::norm(idealAmps[i]);
        std::vector<double> sorted = probs;
        std::nth_element(sorted.begin(), sorted.begin() + dim / 2,
                         sorted.end());
        // Median of 2^d values (even count): mean of the middle pair.
        const double upper = sorted[dim / 2];
        const double lower =
            *std::max_element(sorted.begin(), sorted.begin() + dim / 2);
        const double median = 0.5 * (upper + lower);
        std::vector<bool> heavy(dim);
        for (std::size_t i = 0; i < dim; ++i)
            heavy[i] = probs[i] > median;

        // Compacted basis index -> logical basis index through the
        // final layout (spare qubits marginalize out), shared
        // read-only by every trajectory. Generalizes
        // route::Layout::logicalBasisIndex to d logical of nc
        // simulated qubits.
        std::vector<std::size_t> logicalIndex(simDim);
        for (std::size_t phys = 0; phys < simDim; ++phys) {
            std::size_t logical = 0;
            for (std::size_t l = 0; l < d; ++l) {
                const std::size_t pq = compact[layout.physicalOf(l)];
                const std::size_t bit = (phys >> (nc - 1 - pq)) & 1;
                logical |= bit << (d - 1 - l);
            }
            logicalIndex[phys] = logical;
        }

        // --- Noisy trajectories, fanned out over the parallel axes.
        // Each trajectory owns its statevector (or SoA lane) and an
        // RNG stream derived from (seed, circuit, trajectory); its
        // quad sweeps run on the leased sweep pool when
        // state-parallelism is on. The batched arm applies every gate
        // to all lanes in one SoA sweep and diverges only at the
        // per-lane noise draws, so each lane is bit-identical to the
        // serial trajectory with the same index.
        const std::uint64_t trajSeed =
            sim::streamSeed(config.seed, circuitStream + 1);
        if (soaLanes <= 1) {
            heavySum += runner->sum(
                static_cast<std::size_t>(config.trajectories), trajSeed,
                [&](std::size_t, linalg::Rng &rng,
                    const sim::ExecOptions &exec) {
                    OBS_SPAN("qv.trajectory");
                    OBS_COUNT("qv.trajectories", 1);
                    linalg::CVector amps(simDim, Complex{0.0, 0.0});
                    amps[0] = 1.0;
                    for (const PhysicalOp &op : ops) {
                        sim::executeOp(op.kernel, amps.data(), nc, exec);
                        const std::size_t qa = op.kernel.q0;
                        const std::size_t qb = op.kernel.q1;
                        for (int g = 0; g < op.natives; ++g) {
                            circuit::applyDepolarizing(amps.data(), nc,
                                                       qa, qb, op.p2,
                                                       rng);
                            circuit::applyDepolarizing(
                                amps.data(), nc, qa,
                                noise.singleQubitError, rng);
                            circuit::applyDepolarizing(
                                amps.data(), nc, qb,
                                noise.singleQubitError, rng);
                        }
                    }
                    double hop = 0.0;
                    for (std::size_t phys = 0; phys < simDim; ++phys)
                        if (heavy[logicalIndex[phys]])
                            hop += std::norm(amps[phys]);
                    return hop;
                });
        } else {
            heavySum += runner->sumBatched(
                static_cast<std::size_t>(config.trajectories), trajSeed,
                soaLanes,
                [&](std::size_t, std::size_t lanes, linalg::Rng *rngs,
                    const sim::ExecOptions &exec, double *out) {
                    OBS_SPAN("qv.trajectory_batch");
                    OBS_COUNT("qv.trajectories", lanes);
                    sim::BatchState batch(nc, lanes);
                    for (const PhysicalOp &op : ops) {
                        sim::executeOpBatched(op.kernel, batch, exec);
                        const std::size_t qa = op.kernel.q0;
                        const std::size_t qb = op.kernel.q1;
                        for (std::size_t l = 0; l < lanes; ++l) {
                            for (int g = 0; g < op.natives; ++g) {
                                circuit::applyDepolarizing(
                                    batch, l, qa, qb, op.p2, rngs[l]);
                                circuit::applyDepolarizing(
                                    batch, l, qa,
                                    noise.singleQubitError, rngs[l]);
                                circuit::applyDepolarizing(
                                    batch, l, qb,
                                    noise.singleQubitError, rngs[l]);
                            }
                        }
                    }
                    for (std::size_t l = 0; l < lanes; ++l) {
                        double hop = 0.0;
                        for (std::size_t phys = 0; phys < simDim;
                             ++phys)
                            if (heavy[logicalIndex[phys]])
                                hop += std::norm(batch.amp(phys, l));
                        out[l] = hop;
                    }
                });
        }
    }

    QvResult out;
    out.heavyOutputProportion =
        heavySum / (config.circuits * config.trajectories);
    out.avgNativeGatesPerCircuit = gateSum / config.circuits;
    out.avgTwoQubitTimePerCircuit = timeSum / config.circuits;
    out.avgSwapsPerCircuit = swapSum / config.circuits;
    out.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count();
    return out;
}

} // namespace qv
} // namespace crisc

#include "route.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <string>

namespace crisc {
namespace route {

CouplingMap
CouplingMap::grid(std::size_t rows, std::size_t cols)
{
    CouplingMap m;
    m.adjacency_.resize(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::size_t q = r * cols + c;
            if (c + 1 < cols) {
                m.adjacency_[q].push_back(q + 1);
                m.adjacency_[q + 1].push_back(q);
            }
            if (r + 1 < rows) {
                m.adjacency_[q].push_back(q + cols);
                m.adjacency_[q + cols].push_back(q);
            }
        }
    }
    return m;
}

CouplingMap
CouplingMap::gridFor(std::size_t n)
{
    if (n == 0)
        throw std::invalid_argument(
            "CouplingMap::gridFor: need at least one qubit");
    std::size_t rows = static_cast<std::size_t>(std::floor(std::sqrt(
        static_cast<double>(n))));
    rows = std::max<std::size_t>(rows, 1);
    const std::size_t cols = (n + rows - 1) / rows;
    CouplingMap full = grid(rows, cols);
    if (rows * cols == n)
        return full;
    // Truncate to the first n qubits (keeps the row-major prefix, which
    // is connected).
    CouplingMap m;
    m.adjacency_.resize(n);
    for (std::size_t q = 0; q < n; ++q)
        for (std::size_t nb : full.adjacency_[q])
            if (nb < n)
                m.adjacency_[q].push_back(nb);
    return m;
}

CouplingMap
CouplingMap::full(std::size_t n)
{
    CouplingMap m;
    m.adjacency_.resize(n);
    for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = 0; b < n; ++b)
            if (a != b)
                m.adjacency_[a].push_back(b);
    return m;
}

CouplingMap
CouplingMap::line(std::size_t n)
{
    if (n == 0)
        throw std::invalid_argument(
            "CouplingMap::line: need at least one qubit");
    return grid(1, n);
}

CouplingMap
CouplingMap::ring(std::size_t n)
{
    CouplingMap m = line(n);
    if (n >= 3) {
        m.adjacency_[n - 1].push_back(0);
        m.adjacency_[0].push_back(n - 1);
    }
    return m;
}

CouplingMap
CouplingMap::heavyHex(std::size_t distance)
{
    const std::size_t d = distance;
    if (d == 0 || d % 2 == 0)
        throw std::invalid_argument(
            "CouplingMap::heavyHex: distance must be odd and positive");
    const std::size_t nData = d * d;
    const std::size_t nFlag = d * (d - 1);
    const std::size_t nSyn = d * (d - 1) / 2;
    const std::size_t nBoundary = (d - 1) / 2;

    CouplingMap m;
    m.adjacency_.resize(nData + nFlag + nSyn + nBoundary);
    auto data = [&](std::size_t row, std::size_t col) {
        return row * d + col;
    };
    auto flag = [&](std::size_t row, std::size_t col) {
        return nData + row * (d - 1) + col;
    };
    auto link = [&](std::size_t a, std::size_t b) {
        m.adjacency_[a].push_back(b);
        m.adjacency_[b].push_back(a);
    };

    // Flags subdivide every horizontal data edge.
    for (std::size_t row = 0; row < d; ++row) {
        for (std::size_t col = 0; col + 1 < d; ++col) {
            link(data(row, col), flag(row, col));
            link(flag(row, col), data(row, col + 1));
        }
    }
    // Syndromes subdivide the vertical edges with gap + column even —
    // removing the odd-parity verticals is what turns the square grid
    // into hexagons.
    std::size_t next = nData + nFlag;
    for (std::size_t gap = 0; gap + 1 < d; ++gap) {
        for (std::size_t col = 0; col < d; ++col) {
            if ((gap + col) % 2 != 0)
                continue;
            link(data(gap, col), next);
            link(next, data(gap + 1, col));
            ++next;
        }
    }
    // Boundary syndromes hang off the odd columns of the top row.
    for (std::size_t col = 1; col < d; col += 2) {
        link(data(0, col), next);
        ++next;
    }
    return m;
}

void
CouplingMap::checkQubit(std::size_t q, const char *who) const
{
    if (q >= numQubits())
        throw std::out_of_range(std::string("CouplingMap::") + who +
                                ": qubit index out of range");
}

CouplingMap
CouplingMap::fromEdges(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>> &edges)
{
    CouplingMap m;
    m.adjacency_.resize(n);
    for (const auto &[a, b] : edges) {
        if (a >= n || b >= n)
            throw std::invalid_argument(
                "CouplingMap::fromEdges: edge endpoint out of range");
        if (a == b)
            throw std::invalid_argument(
                "CouplingMap::fromEdges: self-loop edge");
        if (!std::count(m.adjacency_[a].begin(), m.adjacency_[a].end(),
                        b)) {
            m.adjacency_[a].push_back(b);
            m.adjacency_[b].push_back(a);
        }
    }
    return m;
}

bool
CouplingMap::adjacent(std::size_t a, std::size_t b) const
{
    checkQubit(a, "adjacent");
    checkQubit(b, "adjacent");
    const auto &nb = adjacency_[a];
    return std::find(nb.begin(), nb.end(), b) != nb.end();
}

std::vector<std::size_t>
CouplingMap::shortestPath(std::size_t a, std::size_t b) const
{
    checkQubit(a, "shortestPath");
    checkQubit(b, "shortestPath");
    if (a == b)
        return {a};
    std::vector<std::size_t> prev(numQubits(), numQubits());
    std::queue<std::size_t> frontier;
    frontier.push(a);
    prev[a] = a;
    while (!frontier.empty()) {
        const std::size_t q = frontier.front();
        frontier.pop();
        for (std::size_t nb : adjacency_[q]) {
            if (prev[nb] != numQubits())
                continue;
            prev[nb] = q;
            if (nb == b) {
                std::vector<std::size_t> path{b};
                std::size_t cur = b;
                while (cur != a) {
                    cur = prev[cur];
                    path.push_back(cur);
                }
                std::reverse(path.begin(), path.end());
                return path;
            }
            frontier.push(nb);
        }
    }
    throw std::runtime_error("shortestPath: graph is disconnected");
}

Layout::Layout(std::size_t n) : toPhysical_(n), toLogical_(n)
{
    for (std::size_t i = 0; i < n; ++i) {
        toPhysical_[i] = i;
        toLogical_[i] = i;
    }
}

std::size_t
Layout::physicalOf(std::size_t logical) const
{
    return toPhysical_.at(logical);
}

std::size_t
Layout::logicalOf(std::size_t physical) const
{
    return toLogical_.at(physical);
}

void
Layout::swapPhysical(std::size_t a, std::size_t b)
{
    const std::size_t la = toLogical_.at(a);
    const std::size_t lb = toLogical_.at(b);
    std::swap(toLogical_[a], toLogical_[b]);
    toPhysical_[la] = b;
    toPhysical_[lb] = a;
}

std::size_t
Layout::logicalBasisIndex(std::size_t phys_index,
                          std::size_t num_qubits) const
{
    std::size_t logical = 0;
    for (std::size_t l = 0; l < num_qubits; ++l) {
        const std::size_t pq = physicalOf(l);
        if (pq >= num_qubits)
            throw std::out_of_range(
                "Layout::logicalBasisIndex: logical qubit " +
                std::to_string(l) + " sits on physical qubit " +
                std::to_string(pq) + ", outside the " +
                std::to_string(num_qubits) + "-qubit register");
        const std::size_t bit =
            (phys_index >> (num_qubits - 1 - pq)) & 1;
        logical |= bit << (num_qubits - 1 - l);
    }
    return logical;
}

std::vector<std::pair<std::size_t, std::size_t>>
routePair(const CouplingMap &map, Layout &layout, std::size_t logical_a,
          std::size_t logical_b)
{
    if (logical_a == logical_b)
        throw std::invalid_argument(
            "routePair: cannot route a qubit next to itself");
    std::vector<std::pair<std::size_t, std::size_t>> swaps;
    std::size_t pa = layout.physicalOf(logical_a);
    const std::size_t pb = layout.physicalOf(logical_b);
    if (map.adjacent(pa, pb))
        return swaps;
    const std::vector<std::size_t> path = map.shortestPath(pa, pb);
    // Walk a along the path until adjacent to b.
    for (std::size_t step = 1; step + 1 < path.size(); ++step) {
        layout.swapPhysical(pa, path[step]);
        swaps.emplace_back(pa, path[step]);
        pa = path[step];
    }
    return swaps;
}

} // namespace route
} // namespace crisc

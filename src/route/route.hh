/**
 * @file
 * Coupling maps and SWAP routing. The quantum-volume study (paper
 * Sec. 6.3) assumes a 2D grid device, so every two-qubit block of a
 * model circuit must be routed: one endpoint is walked next to the
 * other with SWAPs along a shortest grid path.
 */

#ifndef CRISC_ROUTE_ROUTE_HH
#define CRISC_ROUTE_ROUTE_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace crisc {
namespace route {

/** An undirected device connectivity graph. */
class CouplingMap
{
  public:
    /** Grid of rows x cols physical qubits, row-major indexing. */
    static CouplingMap grid(std::size_t rows, std::size_t cols);

    /**
     * Most-square grid holding at least n qubits, truncated to n.
     * @throws std::invalid_argument when n is 0.
     */
    static CouplingMap gridFor(std::size_t n);

    /** Fully connected device (routing becomes free). */
    static CouplingMap full(std::size_t n);

    /**
     * Linear chain 0 - 1 - ... - (n-1).
     * @throws std::invalid_argument when n is 0.
     */
    static CouplingMap line(std::size_t n);

    /**
     * Ring: a line closed by the edge (n-1, 0). A ring of 1 has no
     * edges; a ring of 2 is a single edge.
     * @throws std::invalid_argument when n is 0.
     */
    static CouplingMap ring(std::size_t n);

    /**
     * Heavy-hexagon lattice for code distance d (Chamberland et al.):
     * a d x d data-qubit grid with a flag qubit on every horizontal
     * edge, a syndrome qubit on every vertical edge (row gap g, column
     * c) with g + c even, and (d-1)/2 boundary syndrome qubits hanging
     * off the odd columns of the top row. Total qubits
     * (5 d^2 - 2 d - 1) / 2, maximum degree 3, connected.
     *
     * Indexing: data row-major first, then flags row-major, then
     * syndromes (gap-major), then the boundary syndromes.
     *
     * @throws std::invalid_argument unless d is an odd positive number.
     */
    static CouplingMap heavyHex(std::size_t distance);

    /**
     * Custom device from an explicit undirected edge list (duplicate
     * edges are ignored). The graph may be disconnected; routing across
     * components fails with an explicit error.
     * @throws std::invalid_argument on a self-loop or out-of-range edge.
     */
    static CouplingMap
    fromEdges(std::size_t n,
              const std::vector<std::pair<std::size_t, std::size_t>> &edges);

    std::size_t numQubits() const { return adjacency_.size(); }
    const std::vector<std::size_t> &neighbours(std::size_t q) const
    {
        return adjacency_.at(q);
    }

    /** @throws std::out_of_range on an invalid qubit index. */
    bool adjacent(std::size_t a, std::size_t b) const;

    /**
     * BFS shortest path from a to b, inclusive of both endpoints;
     * {a} when the endpoints are identical.
     * @throws std::out_of_range on an invalid qubit index.
     * @throws std::runtime_error when no path exists (disconnected map).
     */
    std::vector<std::size_t> shortestPath(std::size_t a, std::size_t b) const;

  private:
    void checkQubit(std::size_t q, const char *who) const;

    std::vector<std::vector<std::size_t>> adjacency_;
};

/**
 * Tracks the logical-to-physical qubit assignment during routing.
 */
class Layout
{
  public:
    explicit Layout(std::size_t n);

    std::size_t physicalOf(std::size_t logical) const;
    std::size_t logicalOf(std::size_t physical) const;

    /** Records a SWAP of two physical qubits. */
    void swapPhysical(std::size_t a, std::size_t b);

    /**
     * Basis-state view of the layout: the logical computational-basis
     * index corresponding to physical basis index @p phys_index on an
     * @p num_qubits register — logical qubit l's bit is read from
     * physical position physicalOf(l), MSB-first on both sides — the
     * bit convention routed-vs-logical comparisons permute through.
     * (The QV harness's marginal over a wider device generalizes this
     * with compacted bit positions; see qv.cc.)
     *
     * @throws std::out_of_range when any of the first @p num_qubits
     *         logical qubits sits outside the register.
     */
    std::size_t logicalBasisIndex(std::size_t phys_index,
                                  std::size_t num_qubits) const;

  private:
    std::vector<std::size_t> toPhysical_;
    std::vector<std::size_t> toLogical_;
};

/**
 * Routes a logical pair together: emits the physical SWAPs (as pairs)
 * that walk @p logical_a adjacent to @p logical_b along a shortest
 * path, updating @p layout. Returns the swaps in order; afterwards the
 * pair is adjacent.
 *
 * @throws std::invalid_argument when the endpoints are the same qubit.
 * @throws std::out_of_range when an endpoint is outside the layout/map.
 */
std::vector<std::pair<std::size_t, std::size_t>>
routePair(const CouplingMap &map, Layout &layout, std::size_t logical_a,
          std::size_t logical_b);

} // namespace route
} // namespace crisc

#endif // CRISC_ROUTE_ROUTE_HH

/**
 * @file
 * Whole-circuit compilation to the AshN instruction set: every
 * two-qubit gate of a logical circuit becomes one pulse plus
 * single-qubit corrections, adjacent single-qubit gates are merged, and
 * the result is a pulse schedule with per-gate times — the "optimal
 * two-qubit instruction count" code-density story of the paper's
 * introduction, as an API.
 *
 * This is a thin façade kept for API compatibility: the work is done
 * by the canned transpile:: pipeline (WideGateDecompose ->
 * SingleQubitFuse -> PeepholeCancel -> NativeLower on an AshN target);
 * use transpile.hh directly for custom pipelines, other native gate
 * sets, routing, per-pass metrics, or batched compilation.
 */

#ifndef CRISC_SYNTH_COMPILER_HH
#define CRISC_SYNTH_COMPILER_HH

#include <vector>

#include "ashn/scheme.hh"
#include "circuit/circuit.hh"

namespace crisc {
namespace synth {

/** One entry of a compiled pulse schedule. */
struct ScheduledPulse
{
    std::size_t a, b;            ///< the two register qubits.
    ashn::GateParams params;     ///< pulse controls (g = 1 units).
};

/** A circuit compiled to the AshN instruction set. */
struct CompiledProgram
{
    circuit::Circuit circuit;          ///< executable gate list.
    std::vector<ScheduledPulse> pulses; ///< one per two-qubit gate.
    double totalTwoQubitTime = 0.0;    ///< sum of pulse times (1/g).
    std::size_t singleQubitGates = 0;  ///< after merging.

    CompiledProgram() : circuit(0) {}
};

/**
 * Compiles a logical circuit (arbitrary one- and two-qubit gates; wider
 * gates are first synthesized with genericQsd) to the AshN set.
 *
 * @param logical input circuit.
 * @param h ZZ coupling ratio of every pair (uniform device).
 * @param r AshN drive cutoff.
 * @post result.circuit.toUnitary() equals logical.toUnitary() up to
 *       global phase; its two-qubit gates are exactly the pulses.
 */
CompiledProgram compileCircuit(const circuit::Circuit &logical, double h,
                               double r);

} // namespace synth
} // namespace crisc

#endif // CRISC_SYNTH_COMPILER_HH

#include "qsd.hh"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "csd.hh"
#include "three_qubit.hh"
#include "multiplexor.hh"
#include "two_qubit.hh"

namespace crisc {
namespace synth {

namespace {

/** Copies a circuit defined on local qubits 0..k-1 onto register qubits. */
void
remapAppend(const Circuit &local, const std::vector<std::size_t> &qubits,
            Circuit &out)
{
    for (const circuit::Gate &g : local.gates()) {
        std::vector<std::size_t> mapped;
        mapped.reserve(g.qubits.size());
        for (std::size_t q : g.qubits)
            mapped.push_back(qubits[q]);
        out.add(g.op, std::move(mapped), g.label);
    }
}

/**
 * Recursively emits gates realizing @p u on the ordered qubit list
 * @p qubits (most significant first) of an n-qubit circuit. The
 * base-case policy distinguishes the CNOT instruction set (base at two
 * qubits, Vatan-Williams style) from the generic instruction set (base
 * at three qubits via Theorem 12).
 */
void
qsdRec(const Matrix &u, const std::vector<std::size_t> &qubits, Circuit &out,
       bool generic)
{
    const std::size_t k = qubits.size();
    if (k == 1) {
        out.add(u, {qubits[0]}, "u");
        return;
    }
    if (k == 2) {
        if (generic)
            out.add(u, {qubits[0], qubits[1]}, "su4");
        else
            out.append(
                decomposeCNOT(u, qubits[0], qubits[1], out.numQubits()));
        return;
    }
    if (k == 3 && generic) {
        remapAppend(threeQubitGeneric(u), qubits, out);
        return;
    }

    const std::vector<std::size_t> lower(qubits.begin() + 1, qubits.end());
    const std::size_t half = std::size_t{1} << (k - 1);

    const CSDResult f = csd(u);

    // Demultiplex a block pair (a0, a1) into W, mux-Rz, V and emit.
    auto emitMux = [&](const Matrix &a0, const Matrix &a1) {
        const Demultiplexed d = demultiplex(a0, a1);
        qsdRec(d.w, lower, out, generic);
        std::vector<double> angles(half);
        for (std::size_t s = 0; s < half; ++s)
            angles[s] = -2.0 * d.phases[s];
        out.append(multiplexedRz(angles, lower, qubits[0],
                                 out.numQubits()));
        qsdRec(d.v, lower, out, generic);
    };

    // Temporal order: right multiplexor, multiplexed Ry, left multiplexor.
    emitMux(f.r0.dagger(), f.r1.dagger());
    std::vector<double> ry(half);
    for (std::size_t s = 0; s < half; ++s)
        ry[s] = 2.0 * f.theta[s];
    out.append(multiplexedRy(ry, lower, qubits[0], out.numQubits()));
    emitMux(f.l0, f.l1);
}

} // namespace

Circuit
qsd(const Matrix &u)
{
    std::size_t n = 0;
    while ((std::size_t{1} << n) < u.rows())
        ++n;
    if ((std::size_t{1} << n) != u.rows() || !u.isSquare())
        throw std::invalid_argument("qsd: dimension is not a power of two");
    Circuit c(n);
    std::vector<std::size_t> qubits(n);
    for (std::size_t i = 0; i < n; ++i)
        qubits[i] = i;
    qsdRec(u, qubits, c, /*generic=*/false);
    return c;
}

Circuit
genericQsd(const Matrix &u)
{
    std::size_t n = 0;
    while ((std::size_t{1} << n) < u.rows())
        ++n;
    if ((std::size_t{1} << n) != u.rows() || !u.isSquare()) {
        throw std::invalid_argument(
            "genericQsd: dimension is not a power of two");
    }
    Circuit c(n);
    std::vector<std::size_t> qubits(n);
    for (std::size_t i = 0; i < n; ++i)
        qubits[i] = i;
    qsdRec(u, qubits, c, /*generic=*/true);
    return c;
}

std::size_t
genericQsdCount(std::size_t n)
{
    if (n <= 2)
        return n == 2 ? 1 : 0;
    std::size_t c = 12;
    for (std::size_t m = 4; m <= n; ++m)
        c = 4 * c + 3 * (std::size_t{1} << (m - 1));
    return c;
}

std::size_t
qsdCnotCount(std::size_t n)
{
    if (n <= 1)
        return 0;
    std::size_t c = 3;
    for (std::size_t m = 3; m <= n; ++m)
        c = 4 * c + 3 * (std::size_t{1} << (m - 1));
    return c;
}

std::size_t
optimizedQsdCnotCount(std::size_t n)
{
    const double v = 23.0 / 48.0 * std::pow(4.0, n) -
                     1.5 * std::pow(2.0, n) + 4.0 / 3.0;
    return static_cast<std::size_t>(std::llround(v));
}

std::size_t
cnotLowerBound(std::size_t n)
{
    const double v = (std::pow(4.0, n) - 3.0 * n - 1.0) / 4.0;
    return static_cast<std::size_t>(std::ceil(v - 1e-9));
}

std::size_t
su4LowerBound(std::size_t n)
{
    const double v = (std::pow(4.0, n) - 3.0 * n - 1.0) / 9.0;
    return static_cast<std::size_t>(std::ceil(v - 1e-9));
}

std::size_t
theorem13Count(std::size_t n)
{
    if (n <= 2)
        return n == 2 ? 1 : 0;
    std::size_t c = 11;
    for (std::size_t m = 4; m <= n; ++m)
        c = 4 * c + 3 * (std::size_t{1} << (m - 1));
    return c;
}

} // namespace synth
} // namespace crisc

/**
 * @file
 * Three-qubit synthesis with generic two-qubit gates (paper Theorem 12
 * and Appendix B.3): CSD splits the unitary into two single-select
 * multiplexors (five two-qubit gates each via Lemma 14) around a
 * two-select multiplexed Ry; peephole merging of boundary gates brings
 * the generic two-qubit gate count down to the paper's regime.
 */

#ifndef CRISC_SYNTH_THREE_QUBIT_HH
#define CRISC_SYNTH_THREE_QUBIT_HH

#include "circuit/circuit.hh"
#include "linalg/matrix.hh"

namespace crisc {
namespace synth {

using circuit::Circuit;
using linalg::Matrix;

/**
 * Decomposes an arbitrary 8x8 unitary into generic two-qubit gates and
 * single-qubit gates, following the paper's analytic construction.
 *
 * @post result.toUnitary() equals u up to global phase;
 *       result.twoQubitCount() <= 12 (the paper reaches 11 with one
 *       further regrouping; see DESIGN.md).
 */
Circuit threeQubitGeneric(const Matrix &u);

/**
 * Greedy peephole pass: absorbs single-qubit gates into neighbouring
 * two-qubit gates and fuses adjacent two-qubit gates acting on the same
 * pair. Returns a circuit of (mostly) two-qubit gates with identical
 * unitary.
 */
Circuit mergeTwoQubitGates(const Circuit &c);

} // namespace synth
} // namespace crisc

#endif // CRISC_SYNTH_THREE_QUBIT_HH

#include "compiler.hh"

#include "transpile/transpile.hh"

namespace crisc {
namespace synth {

CompiledProgram
compileCircuit(const circuit::Circuit &logical, double h, double r)
{
    // Canned pipeline: WideGateDecompose -> SingleQubitFuse ->
    // PeepholeCancel -> NativeLower on an ideal AshN target.
    transpile::TranspileOptions opts;
    opts.h = h;
    opts.r = r;
    transpile::TranspileResult res = transpile::transpile(logical, opts);

    CompiledProgram out;
    out.circuit = std::move(res.circuit);
    out.pulses.reserve(res.context.pulses.size());
    for (const transpile::PulseOp &p : res.context.pulses)
        out.pulses.push_back({p.a, p.b, p.params});
    out.totalTwoQubitTime = res.context.totalPulseTime;
    out.singleQubitGates = res.context.singleQubitGates;
    return out;
}

} // namespace synth
} // namespace crisc

#include "compiler.hh"

#include <cmath>
#include <stdexcept>

#include "qop/gates.hh"
#include "qop/metrics.hh"
#include "qsd.hh"
#include "three_qubit.hh"
#include "two_qubit.hh"

namespace crisc {
namespace synth {

using circuit::Circuit;
using circuit::Gate;
using linalg::Matrix;

CompiledProgram
compileCircuit(const Circuit &logical, double h, double r)
{
    const std::size_t n = logical.numQubits();

    // Pass 1: expand >2-qubit gates through the generic QSD so the rest
    // of the pipeline only sees one- and two-qubit gates.
    Circuit flat(n);
    for (const Gate &g : logical.gates()) {
        if (g.qubits.size() <= 2) {
            flat.add(g.op, g.qubits, g.label);
            continue;
        }
        const Circuit sub = genericQsd(g.op);
        for (const Gate &sg : sub.gates()) {
            std::vector<std::size_t> mapped;
            for (std::size_t q : sg.qubits)
                mapped.push_back(g.qubits[q]);
            flat.add(sg.op, std::move(mapped), sg.label);
        }
    }

    // Pass 2: merge runs of single-qubit gates into their two-qubit
    // neighbours where possible (reuses the peephole machinery, which
    // preserves the unitary exactly).
    const Circuit merged = mergeTwoQubitGates(flat);

    // Pass 3: replace every two-qubit gate by its AshN pulse with local
    // corrections.
    CompiledProgram out;
    out.circuit = Circuit(n);
    for (const Gate &g : merged.gates()) {
        if (g.qubits.size() == 1) {
            out.circuit.add(g.op, g.qubits, g.label);
            ++out.singleQubitGates;
            continue;
        }
        const AshnCompiled ac = compileToAshn(g.op, h, r);
        const std::size_t a = g.qubits[0], b = g.qubits[1];
        out.circuit.add(ac.r1, {a}, "pre");
        out.circuit.add(ac.r2, {b}, "pre");
        out.circuit.add(std::polar(1.0, ac.phase) * ashn::realize(ac.params),
                        {a, b}, "pulse");
        out.circuit.add(ac.l1, {a}, "post");
        out.circuit.add(ac.l2, {b}, "post");
        out.singleQubitGates += 4;
        out.pulses.push_back({a, b, ac.params});
        out.totalTwoQubitTime += ac.params.tau;
    }
    return out;
}

} // namespace synth
} // namespace crisc

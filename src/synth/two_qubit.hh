/**
 * @file
 * Two-qubit gate synthesis: decompose an arbitrary 4x4 unitary into
 * CNOTs plus single-qubit gates (0/1/2/3 CNOTs depending on the Weyl
 * chamber point), or into a single AshN pulse plus single-qubit
 * corrections (Sec. 6.1 of the paper).
 */

#ifndef CRISC_SYNTH_TWO_QUBIT_HH
#define CRISC_SYNTH_TWO_QUBIT_HH

#include "ashn/scheme.hh"
#include "circuit/circuit.hh"
#include "weyl/weyl.hh"

namespace crisc {
namespace synth {

using circuit::Circuit;
using linalg::Matrix;

/**
 * Decomposes a two-qubit unitary into CNOTs and single-qubit gates on
 * register qubits (q0, q1) of an n-qubit circuit. Uses the minimal CNOT
 * count for the gate's chamber point: 0 for local gates, 1 for the
 * [CNOT] class, 2 when z = 0, and 3 in general.
 *
 * @post circuit.toUnitary() equals u up to global phase.
 */
Circuit decomposeCNOT(const Matrix &u, std::size_t q0 = 0,
                      std::size_t q1 = 1, std::size_t n = 2);

/** Number of CNOTs decomposeCNOT will emit for this unitary. */
std::size_t cnotCost(const Matrix &u);

/** Result of compiling a two-qubit gate to one AshN pulse. */
struct AshnCompiled
{
    ashn::GateParams params; ///< pulse parameters (g = 1 units).
    Matrix l1, l2, r1, r2;   ///< single-qubit corrections.
    double phase;            ///< global phase.

    /** Recomposes the target: e^{i phase} (l1 x l2) U_pulse (r1 x r2). */
    Matrix compose() const;
};

/**
 * Compiles an arbitrary two-qubit unitary into a single AshN pulse with
 * single-qubit corrections (the paper's headline capability).
 *
 * @param u target unitary.
 * @param h ZZ coupling ratio.
 * @param r drive cutoff (see ashn::synthesize).
 */
AshnCompiled compileToAshn(const Matrix &u, double h = 0.0, double r = 0.0);

/**
 * As above, but with pre-synthesized pulse parameters and their
 * realized unitary (e.g. from the transpiler's memoization cache);
 * only solves for the local corrections. @p realized must be
 * ashn::realize(params) and locally equivalent to @p u.
 */
AshnCompiled compileToAshn(const Matrix &u, const ashn::GateParams &params,
                           const Matrix &realized);

/**
 * The canonical-interaction circuit used by decomposeCNOT: three CNOTs
 * realizing a gate locally equivalent to canonicalGate(x, y, z).
 */
Circuit canonicalCircuit3CNOT(const weyl::WeylPoint &p);

} // namespace synth
} // namespace crisc

#endif // CRISC_SYNTH_TWO_QUBIT_HH

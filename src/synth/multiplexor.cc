#include "multiplexor.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "linalg/decomp.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"

namespace crisc {
namespace synth {

using linalg::Complex;
using linalg::kron;

namespace {

/** Gray code of i. */
std::size_t
gray(std::size_t i)
{
    return i ^ (i >> 1);
}

/** exp(-i (theta/2) Z x Z): the one-select multiplexed-Rz gate. */
Matrix
zzRotation(double theta)
{
    const Complex m = std::polar(1.0, -theta / 2.0);
    const Complex p = std::polar(1.0, theta / 2.0);
    return Matrix::diag({m, p, p, m});
}

/** Gray-code multiplexed rotation circuit shared by Rz and Ry. */
Circuit
multiplexedRotation(char axis, const std::vector<double> &angles,
                    const std::vector<std::size_t> &selects,
                    std::size_t target, std::size_t n)
{
    const std::size_t k = selects.size();
    const std::size_t patterns = std::size_t{1} << k;
    if (angles.size() != patterns)
        throw std::invalid_argument("multiplexedRotation: angle count");

    // alpha = (1/2^k) M^T theta with M_{s,i} = (-1)^{popcount(s & gray(i))}.
    std::vector<double> alpha(patterns, 0.0);
    for (std::size_t i = 0; i < patterns; ++i) {
        double a = 0.0;
        for (std::size_t s = 0; s < patterns; ++s) {
            const int sign =
                __builtin_parityll(s & gray(i)) ? -1 : 1;
            a += sign * angles[s];
        }
        alpha[i] = a / static_cast<double>(patterns);
    }

    Circuit c(n);
    for (std::size_t i = 0; i < patterns; ++i) {
        const Matrix rot =
            axis == 'z' ? qop::rz(alpha[i]) : qop::ry(alpha[i]);
        c.add(rot, {target}, axis == 'z' ? "Rz" : "Ry");
        if (k == 0)
            break;
        // CNOT controlled on the select bit that flips in the Gray walk.
        const std::size_t change =
            gray(i) ^ gray((i + 1) % patterns);
        std::size_t bit = 0;
        while (!((change >> bit) & 1))
            ++bit;
        // Bit b of the pattern corresponds to selects[k - 1 - b] (lsb is
        // the last listed select qubit).
        const std::size_t ctrl = selects[k - 1 - bit];
        c.add(qop::cnot(), {ctrl, target}, "CNOT");
    }
    return c;
}

} // namespace

Demultiplexed
demultiplex(const Matrix &u0, const Matrix &u1)
{
    if (u0.rows() != u1.rows() || !u0.isSquare())
        throw std::invalid_argument("demultiplex: shape mismatch");
    const std::size_t n = u0.rows();
    const Matrix m = u0 * u1.dagger();
    const linalg::ComplexEigenSystem es = linalg::eigNormal(m);
    Demultiplexed out;
    out.v = es.vectors;
    out.phases.resize(n);
    Matrix d(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        out.phases[i] = std::arg(es.values[i]) / 2.0;
        d(i, i) = std::polar(1.0, out.phases[i]);
    }
    out.w = d.dagger() * out.v.dagger() * u0;
    return out;
}

Circuit
multiplexedRz(const std::vector<double> &angles,
              const std::vector<std::size_t> &selects, std::size_t target,
              std::size_t n)
{
    return multiplexedRotation('z', angles, selects, target, n);
}

Circuit
multiplexedRy(const std::vector<double> &angles,
              const std::vector<std::size_t> &selects, std::size_t target,
              std::size_t n)
{
    return multiplexedRotation('y', angles, selects, target, n);
}

Matrix
multiplexedRotationMatrix(char axis, const std::vector<double> &angles,
                          const std::vector<std::size_t> &selects,
                          std::size_t target, std::size_t n)
{
    const std::size_t dim = std::size_t{1} << n;
    const std::size_t k = selects.size();
    Matrix out(dim, dim);
    const std::size_t tpos = n - 1 - target;
    for (std::size_t row = 0; row < dim; ++row) {
        std::size_t s = 0;
        for (std::size_t b = 0; b < k; ++b)
            s = (s << 1) | ((row >> (n - 1 - selects[b])) & 1);
        const Matrix rot =
            axis == 'z' ? qop::rz(angles[s]) : qop::ry(angles[s]);
        const std::size_t tb = (row >> tpos) & 1;
        const std::size_t row0 = row & ~(std::size_t{1} << tpos);
        out(row, row0) = rot(tb, 0);
        out(row, row0 | (std::size_t{1} << tpos)) = rot(tb, 1);
    }
    return out;
}

Matrix
multiplexorMatrix(const Matrix &u0, const Matrix &u1)
{
    const std::size_t n = u0.rows();
    Matrix out(2 * n, 2 * n);
    out.setBlock(0, 0, u0);
    out.setBlock(n, n, u1);
    return out;
}

Circuit
multiplexorLemma14(const Matrix &u0, const Matrix &u1, bool diag_on_first)
{
    if (u0.rows() != 4 || u1.rows() != 4)
        throw std::invalid_argument("multiplexorLemma14: expected 4x4");

    // Normalize W = u0 u1^dagger into SU(4). The overall construction
    // is only determined up to a fourth root of unity (the u1-side
    // phase), so every i^k rephasing is tried until the eigenvalue
    // pairing succeeds.
    const Matrix w0 = qop::toSU(u0 * u1.dagger());

    for (int k = 0; k < 4; ++k) {
    for (const double branch : {0.0, M_PI}) {
        const Matrix w = std::polar(1.0, k * M_PI / 2.0) * w0;
        // theta1 makes tr[(I x Rz(-t1)) W (I x Rz(-t1))] real; both
        // atan2 branches are tried since the eigenvalue pairing below
        // can fail for one of them.
        const Complex ga = diag_on_first ? w(0, 0) + w(1, 1)
                                         : w(0, 0) + w(2, 2);
        const Complex gb = diag_on_first ? w(2, 2) + w(3, 3)
                                         : w(1, 1) + w(3, 3);
        const double ra = std::abs(ga), ta = std::arg(ga);
        const double rb = std::abs(gb), tb = std::arg(gb);
        const double t1 =
            std::atan2(-(ra * std::sin(ta) + rb * std::sin(tb)),
                       ra * std::cos(ta) - rb * std::cos(tb)) +
            branch;

        const Matrix zrot = diag_on_first
                                ? kron(qop::rz(-t1), qop::pauliI())
                                : kron(qop::pauliI(), qop::rz(-t1));
        const Matrix uprime = zrot * w * zrot;

        // Eigenvalues now come in conjugate pairs {e^{+-i p1}, e^{+-i p2}}.
        linalg::ComplexEigenSystem es;
        try {
            es = linalg::eigNormal(uprime);
        } catch (const std::runtime_error &) {
            continue;
        }
        std::array<double, 4> ph;
        std::array<std::size_t, 4> order{0, 1, 2, 3};
        for (std::size_t i = 0; i < 4; ++i)
            ph[i] = std::arg(es.values[i]);
        std::sort(order.begin(), order.end(),
                  [&ph](std::size_t a, std::size_t b) {
                      return ph[a] < ph[b];
                  });
        // Ascending phases (-p1, -p2, p2, p1): conjugate pairs are
        // (outer, outer) and (inner, inner).
        const double p1 = ph[order[3]], p2 = ph[order[2]];
        if (std::abs(ph[order[0]] + p1) > 1e-6 ||
            std::abs(ph[order[1]] + p2) > 1e-6)
            continue;
        const double t2 = (p1 + p2) / 2.0, t3 = (p1 - p2) / 2.0;

        // Column order matching D = Rz(2 t2) x Rz(2 t3) =
        // diag(e^{-i(t2+t3)}, e^{-i(t2-t3)}, e^{i(t2-t3)}, e^{i(t2+t3)}).
        Matrix v1(4, 4);
        v1.setCol(0, es.vectors.col(order[0])); // e^{-i p1}
        v1.setCol(1, es.vectors.col(order[1])); // e^{-i p2}
        v1.setCol(2, es.vectors.col(order[2])); // e^{+i p2}
        v1.setCol(3, es.vectors.col(order[3])); // e^{+i p1}

        const Matrix d23 = kron(qop::rz(2.0 * t2), qop::rz(2.0 * t3));
        if (linalg::maxAbsDiff(v1 * d23 * v1.dagger(), uprime) > 1e-7)
            continue;

        // u0 = (I x Rz(t1)) V1 (Rz(t2) x Rz(t3)) V2 exactly (zeta0 = 1
        // by construction); recover V2 and the u1-side phase.
        const Matrix t1gate = diag_on_first
                                  ? kron(qop::rz(t1), qop::pauliI())
                                  : kron(qop::pauliI(), qop::rz(t1));
        const Matrix rots = kron(qop::rz(t2), qop::rz(t3));
        const Matrix v2 = rots.dagger() * v1.dagger() * t1gate.dagger() * u0;
        const Matrix b = t1gate.dagger() * v1 *
                         kron(qop::rz(-t2), qop::rz(-t3)) * v2;
        const Complex zeta1 = (b.dagger() * u1).trace() / 4.0;
        if (std::abs(std::abs(zeta1) - 1.0) > 1e-7 ||
            linalg::maxAbsDiff(zeta1 * b, u1) > 1e-6)
            continue;

        // Temporal order: V2(q1,q2); D2(q0,q1); D3(q0,q2); V1(q1,q2);
        // D1(q0,q2); phase on q0.
        Circuit c(3);
        c.add(v2, {1, 2}, "V2");
        c.add(zzRotation(t2), {0, 1}, "D2");
        c.add(zzRotation(t3), {0, 2}, "D3");
        c.add(v1, {1, 2}, "V1");
        if (diag_on_first)
            c.add(zzRotation(t1), {0, 1}, "D1");
        else
            c.add(zzRotation(t1), {0, 2}, "D1");
        c.add(Matrix{{1, 0}, {0, zeta1}}, {0}, "P");
        // The ZZ rotations apply Rz(+-t) on the target depending on the
        // select, matching the demultiplexed phases; global phase left
        // to the caller's tolerance.
        const Matrix target = multiplexorMatrix(u0, u1);
        if (qop::equalUpToGlobalPhase(c.toUnitary(), target, 1e-6))
            return c;
    }
    }
    throw std::runtime_error("multiplexorLemma14: construction failed");
}

} // namespace synth
} // namespace crisc

/**
 * @file
 * Quantum multiplexors: demultiplexing (the quantum Shannon
 * decomposition step), Gray-code circuits for multiplexed rotations,
 * and the paper's Lemma 14 — a three-qubit single-select multiplexor
 * from five two-qubit gates, three of them diagonal (Appendix B.3).
 */

#ifndef CRISC_SYNTH_MULTIPLEXOR_HH
#define CRISC_SYNTH_MULTIPLEXOR_HH

#include <vector>

#include "circuit/circuit.hh"
#include "linalg/matrix.hh"

namespace crisc {
namespace synth {

using circuit::Circuit;
using linalg::Matrix;

/**
 * Demultiplexes U = |0><0| (x) u0 + |1><1| (x) u1 into
 *   (I (x) v) (|0><0| (x) d + |1><1| (x) d^dagger) (I (x) w)
 * with d diagonal unitary: the eigendecomposition u0 u1^dagger =
 * v d^2 v^dagger gives v; then w = d^dagger v^dagger u1... i.e.
 * u0 = v d w and u1 = v d^dagger w.
 */
struct Demultiplexed
{
    Matrix v;                        ///< left shared unitary.
    std::vector<double> phases;      ///< d = diag(e^{i phases}).
    Matrix w;                        ///< right shared unitary.
};
Demultiplexed demultiplex(const Matrix &u0, const Matrix &u1);

/**
 * Gray-code circuit for a multiplexed Rz rotation: target qubit
 * @p target, select qubits @p selects, rotation angle angles[s] for
 * select pattern s. Emits 2^k CNOTs and 2^k Rz gates (Lemma 15).
 */
Circuit multiplexedRz(const std::vector<double> &angles,
                      const std::vector<std::size_t> &selects,
                      std::size_t target, std::size_t n);

/** Same construction for multiplexed Ry. */
Circuit multiplexedRy(const std::vector<double> &angles,
                      const std::vector<std::size_t> &selects,
                      std::size_t target, std::size_t n);

/**
 * The matrix of a multiplexed rotation (for verification): block-diag
 * over select patterns of R(angles[s]) on the target qubit.
 */
Matrix multiplexedRotationMatrix(char axis, const std::vector<double> &angles,
                                 const std::vector<std::size_t> &selects,
                                 std::size_t target, std::size_t n);

/**
 * Lemma 14: a three-qubit multiplexor with single select qubit q0,
 * U = |0><0| (x) u0 + |1><1| (x) u1 (u_i on qubits q1 q2), realized by
 * five two-qubit gates of which three are diagonal:
 *
 *   U = P(q0) . D1 . V1(q1,q2) . D2(q0,q1) . D3(q0,q2) . V2(q1,q2)
 *
 * (reading right to left), where the D's are ZZ rotations (diagonal
 * two-qubit gates) and V1, V2 are generic. D1 acts on (q0,q2) by
 * default, or on (q0,q1) when @p diag_on_first is set — the choice
 * matters for boundary merging in the three-qubit construction.
 *
 * @return a 3-qubit circuit whose unitary equals the multiplexor up to
 *         global phase, containing exactly 5 two-qubit gates.
 */
Circuit multiplexorLemma14(const Matrix &u0, const Matrix &u1,
                           bool diag_on_first = false);

/** Helper: the 8x8 matrix of the single-select multiplexor (q0 select). */
Matrix multiplexorMatrix(const Matrix &u0, const Matrix &u1);

} // namespace synth
} // namespace crisc

#endif // CRISC_SYNTH_MULTIPLEXOR_HH

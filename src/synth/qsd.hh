/**
 * @file
 * Quantum Shannon decomposition (Shende-Bullock-Markov): recursive
 * synthesis of an arbitrary n-qubit unitary into CNOTs plus single-qubit
 * gates via CSD and demultiplexing. Provides the CNOT-counted baseline
 * the paper compares against (Sec. 6.2 / Figure 6c).
 */

#ifndef CRISC_SYNTH_QSD_HH
#define CRISC_SYNTH_QSD_HH

#include "circuit/circuit.hh"
#include "linalg/matrix.hh"

namespace crisc {
namespace synth {

using circuit::Circuit;
using linalg::Matrix;

/**
 * Decomposes a 2^n x 2^n unitary into CNOT + single-qubit gates.
 *
 * @post result.toUnitary() equals u up to global phase; the CNOT count
 *       follows the recursion c_n = 4 c_{n-1} + 3 * 2^{n-1}, c_2 <= 3.
 */
Circuit qsd(const Matrix &u);

/** CNOT count of the plain QSD recursion: (9/16) 4^n - (3/2) 2^n. */
std::size_t qsdCnotCount(std::size_t n);

/**
 * Theorem 13 constructively: decomposes a 2^n x 2^n unitary into
 * *generic* two-qubit gates (the AshN instruction set) and single-qubit
 * gates, using the three-qubit generic construction as the recursion
 * base. Emits 4 c_{n-1} + 3*2^{n-1} gates with c_3 = 12 (one above the
 * paper's 11; see DESIGN.md).
 *
 * @post result.toUnitary() equals u up to global phase.
 */
Circuit genericQsd(const Matrix &u);

/** Generic-gate count of our constructive recursion (c_3 = 12). */
std::size_t genericQsdCount(std::size_t n);

/**
 * CNOT count of the optimized QSD reported by the literature and quoted
 * in the paper: (23/48) 4^n - (3/2) 2^n + 4/3.
 */
std::size_t optimizedQsdCnotCount(std::size_t n);

/** Theoretical CNOT lower bound ceil((4^n - 3n - 1) / 4). */
std::size_t cnotLowerBound(std::size_t n);

/** Generic-SU(4) lower bound ceil((4^n - 3n - 1) / 9). */
std::size_t su4LowerBound(std::size_t n);

/**
 * Generic two-qubit gate count of the paper's Theorem 13 construction:
 * (23/64) 4^n - (3/2) 2^n for n >= 3 (11 gates at n = 3).
 */
std::size_t theorem13Count(std::size_t n);

} // namespace synth
} // namespace crisc

#endif // CRISC_SYNTH_QSD_HH

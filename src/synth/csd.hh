/**
 * @file
 * Cosine-sine decomposition (CSD) of an even-dimensional unitary,
 * partitioned into equal 2x2 blocks:
 *
 *   U = [ L0  0  ] [ C  -S ] [ R0  0  ]
 *       [ 0   L1 ] [ S   C ] [ 0   R1 ]
 *
 * with L0, L1, R0, R1 unitary and C = diag(cos t_i), S = diag(sin t_i),
 * t_i in [0, pi/2]. This is the engine behind the quantum Shannon
 * decomposition and the paper's three-qubit synthesis (Appendix B).
 */

#ifndef CRISC_SYNTH_CSD_HH
#define CRISC_SYNTH_CSD_HH

#include <vector>

#include "linalg/matrix.hh"

namespace crisc {
namespace synth {

using linalg::Matrix;

/** The factors of a cosine-sine decomposition. */
struct CSDResult
{
    Matrix l0, l1;              ///< left block-diagonal unitaries.
    Matrix r0, r1;              ///< right block-diagonal unitaries.
    std::vector<double> theta;  ///< angles with C=diag(cos), S=diag(sin).

    /** Reassembles the full unitary (for verification). */
    Matrix compose() const;
};

/**
 * Computes the CSD of a 2m x 2m unitary.
 *
 * @throws std::invalid_argument for odd-dimensional or non-unitary input.
 * @post compose() reproduces the input to ~1e-8.
 */
CSDResult csd(const Matrix &u);

} // namespace synth
} // namespace crisc

#endif // CRISC_SYNTH_CSD_HH

#include "two_qubit.hh"

#include <cmath>
#include <stdexcept>

#include "qop/gates.hh"
#include "qop/metrics.hh"

namespace crisc {
namespace synth {

using linalg::kron;
using weyl::WeylPoint;

namespace {

constexpr double kPi = M_PI;
constexpr double kCoordTol = 1e-9;

/** CNOT with control q1 / target q0 as a matrix in (q0, q1) order. */
const Matrix &
cnotReversed()
{
    static const Matrix m = [] {
        const Matrix hh = kron(qop::hadamard(), qop::hadamard());
        return hh * qop::cnot() * hh;
    }();
    return m;
}

/**
 * Builds [C21, Rz(t1) x Ry(t2), C12, I x Ry(t3), C21] on (q0, q1); its
 * chamber point is canonicalize(pi/4 - t1/2, pi/4 - t3/2, pi/4 - t2/2).
 */
Circuit
threeCnotCore(double t1, double t2, double t3, std::size_t q0,
              std::size_t q1, std::size_t n)
{
    Circuit c(n);
    c.add(cnotReversed(), {q0, q1}, "CNOT21");
    c.add(qop::rz(t1), {q0}, "Rz");
    c.add(qop::ry(t2), {q1}, "Ry");
    c.add(qop::cnot(), {q0, q1}, "CNOT");
    c.add(qop::ry(t3), {q1}, "Ry");
    c.add(cnotReversed(), {q0, q1}, "CNOT21");
    return c;
}

/** Two-CNOT core: C12 (Rx(-2x) x Rz(-2y)) C12 = exp(i(x XX + y ZZ)). */
Circuit
twoCnotCore(double x, double y, std::size_t q0, std::size_t q1,
            std::size_t n)
{
    Circuit c(n);
    c.add(qop::cnot(), {q0, q1}, "CNOT");
    c.add(qop::rx(-2.0 * x), {q0}, "Rx");
    c.add(qop::rz(-2.0 * y), {q1}, "Rz");
    c.add(qop::cnot(), {q0, q1}, "CNOT");
    return c;
}

/** Appends the local correction layers around a core circuit. */
Circuit
wrapWithCorrections(const Matrix &target, const Circuit &core,
                    std::size_t q0, std::size_t q1, std::size_t n)
{
    // Build the 4x4 unitary of the core on the two addressed qubits.
    Circuit local(2);
    for (const circuit::Gate &g : core.gates()) {
        std::vector<std::size_t> q;
        for (std::size_t x : g.qubits)
            q.push_back(x == q0 ? 0 : 1);
        local.add(g.op, q, g.label);
    }
    const Matrix realized = local.toUnitary();
    const weyl::LocalCorrection lc =
        weyl::localCorrections(target, realized);

    Circuit out(n);
    out.add(lc.r1, {q0}, "r1");
    out.add(lc.r2, {q1}, "r2");
    out.append(core);
    out.add(std::polar(1.0, lc.phase) * lc.l1, {q0}, "l1");
    out.add(lc.l2, {q1}, "l2");
    return out;
}

} // namespace

std::size_t
cnotCost(const Matrix &u)
{
    const WeylPoint p = weyl::weylCoordinates(u);
    if (p.x < kCoordTol && p.y < kCoordTol)
        return 0;
    if (std::abs(p.x - kPi / 4.0) < kCoordTol && p.y < kCoordTol)
        return 1;
    if (std::abs(p.z) < kCoordTol)
        return 2;
    return 3;
}

Circuit
canonicalCircuit3CNOT(const WeylPoint &p)
{
    return threeCnotCore(kPi / 2.0 - 2.0 * p.x, kPi / 2.0 - 2.0 * p.z,
                         kPi / 2.0 - 2.0 * p.y, 0, 1, 2);
}

Circuit
decomposeCNOT(const Matrix &u, std::size_t q0, std::size_t q1,
              std::size_t n)
{
    const WeylPoint p = weyl::weylCoordinates(u);

    // Local gate: factor directly, no CNOT.
    if (p.x < kCoordTol && p.y < kCoordTol && std::abs(p.z) < kCoordTol) {
        const Matrix su = qop::toSU(u);
        auto [a, b] = qop::factorKron(su);
        const linalg::Complex ph = (kron(a, b).dagger() * u).trace() / 4.0;
        Circuit c(n);
        c.add(ph * a, {q0}, "u1");
        c.add(b, {q1}, "u2");
        return c;
    }

    Circuit core(n);
    if (std::abs(p.x - kPi / 4.0) < kCoordTol && p.y < kCoordTol) {
        core.add(qop::cnot(), {q0, q1}, "CNOT");
    } else if (std::abs(p.z) < kCoordTol) {
        core = twoCnotCore(p.x, p.y, q0, q1, n);
    } else {
        // Three CNOTs; the z sign of the core depends on canonicalization
        // branch, so try both.
        for (const double zsign : {1.0, -1.0}) {
            core = threeCnotCore(kPi / 2.0 - 2.0 * p.x,
                                 kPi / 2.0 - 2.0 * zsign * p.z,
                                 kPi / 2.0 - 2.0 * p.y, q0, q1, n);
            Circuit probe(n == 2 ? 2 : n);
            // Check chamber point via the two-qubit restriction.
            Circuit local(2);
            for (const circuit::Gate &g : core.gates()) {
                std::vector<std::size_t> q;
                for (std::size_t x : g.qubits)
                    q.push_back(x == q0 ? 0 : 1);
                local.add(g.op, q, g.label);
            }
            if (weyl::pointDistance(weyl::weylCoordinates(local.toUnitary()),
                                    p) < 1e-7)
                break;
        }
    }
    return wrapWithCorrections(u, core, q0, q1, n);
}

Matrix
AshnCompiled::compose() const
{
    return std::polar(1.0, phase) *
           (kron(l1, l2) * ashn::realize(params) * kron(r1, r2));
}

AshnCompiled
compileToAshn(const Matrix &u, const ashn::GateParams &params,
              const Matrix &realized)
{
    AshnCompiled out;
    out.params = params;
    const weyl::LocalCorrection lc = weyl::localCorrections(u, realized);
    out.l1 = lc.l1;
    out.l2 = lc.l2;
    out.r1 = lc.r1;
    out.r2 = lc.r2;
    out.phase = lc.phase;
    return out;
}

AshnCompiled
compileToAshn(const Matrix &u, double h, double r)
{
    const WeylPoint p = weyl::weylCoordinates(u);
    const ashn::GateParams params = ashn::synthesize(p, h, r);
    return compileToAshn(u, params, ashn::realize(params));
}

} // namespace synth
} // namespace crisc

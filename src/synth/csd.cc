#include "csd.hh"

#include <cmath>
#include <stdexcept>

#include "linalg/decomp.hh"

namespace crisc {
namespace synth {

using linalg::Complex;
using linalg::CVector;

Matrix
CSDResult::compose() const
{
    const std::size_t n = theta.size();
    Matrix u(2 * n, 2 * n);
    Matrix cs(2 * n, 2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        cs(i, i) = std::cos(theta[i]);
        cs(n + i, n + i) = std::cos(theta[i]);
        cs(i, n + i) = -std::sin(theta[i]);
        cs(n + i, i) = std::sin(theta[i]);
    }
    Matrix left(2 * n, 2 * n), right(2 * n, 2 * n);
    left.setBlock(0, 0, l0);
    left.setBlock(n, n, l1);
    right.setBlock(0, 0, r0);
    right.setBlock(n, n, r1);
    return left * cs * right.dagger();
}

CSDResult
csd(const Matrix &u)
{
    if (!u.isSquare() || u.rows() % 2 != 0)
        throw std::invalid_argument("csd: expected even-dimensional matrix");
    if (!linalg::isUnitary(u, 1e-8))
        throw std::invalid_argument("csd: input is not unitary");
    const std::size_t n = u.rows() / 2;

    const Matrix u00 = u.block(0, n, 0, n);
    const Matrix u01 = u.block(0, n, n, 2 * n);
    const Matrix u10 = u.block(n, 2 * n, 0, n);
    const Matrix u11 = u.block(n, 2 * n, n, 2 * n);

    // C comes from the SVD of the upper-left block (descending, so the
    // angles theta ascend). Unitarity makes W = U10 R0 automatically a
    // matrix of orthogonal columns with norms sin(theta_i).
    const linalg::SVDResult f = linalg::svd(u00);
    CSDResult out;
    out.l0 = f.u;
    out.r0 = f.v;
    out.theta.resize(n);
    std::vector<double> cvals(n), svals(n);
    for (std::size_t i = 0; i < n; ++i) {
        cvals[i] = std::min(f.singular[i], 1.0);
        svals[i] = std::sqrt(std::max(0.0, 1.0 - cvals[i] * cvals[i]));
        out.theta[i] = std::atan2(svals[i], cvals[i]);
    }

    const Matrix w = u10 * out.r0;
    Matrix l1(n, n);
    std::vector<bool> filled(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        CVector col = w.col(i);
        const double nn = linalg::norm(col);
        if (nn > 1e-7) {
            svals[i] = nn;
            out.theta[i] = std::atan2(svals[i], cvals[i]);
            for (auto &x : col)
                x /= nn;
            l1.setCol(i, col);
            filled[i] = true;
        }
    }
    // Complete the zero-sine columns of L1 by Gram-Schmidt.
    for (std::size_t i = 0; i < n; ++i) {
        if (filled[i])
            continue;
        for (std::size_t e = 0; e < n; ++e) {
            CVector cand(n, Complex{0.0, 0.0});
            cand[e] = 1.0;
            for (std::size_t j = 0; j < n; ++j) {
                if (!filled[j])
                    continue;
                const CVector lj = l1.col(j);
                const Complex ov = linalg::dot(lj, cand);
                for (std::size_t r2 = 0; r2 < n; ++r2)
                    cand[r2] -= ov * lj[r2];
            }
            const double nn = linalg::norm(cand);
            if (nn < 0.3)
                continue;
            for (auto &x : cand)
                x /= nn;
            l1.setCol(i, cand);
            filled[i] = true;
            break;
        }
        if (!filled[i])
            throw std::runtime_error("csd: failed to complete L1");
    }
    out.l1 = l1;

    // Rows of R1^dagger from whichever of the two defining relations is
    // better conditioned for that angle.
    const Matrix a = out.l0.dagger() * u01; // = -S R1^dagger
    const Matrix b = out.l1.dagger() * u11; // =  C R1^dagger
    Matrix r1d(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (svals[i] >= cvals[i])
                r1d(i, j) = -a(i, j) / svals[i];
            else
                r1d(i, j) = b(i, j) / cvals[i];
        }
    }
    out.r1 = r1d.dagger();

    if (linalg::maxAbsDiff(out.compose(), u) > 1e-7)
        throw std::runtime_error("csd: reconstruction check failed");
    return out;
}

} // namespace synth
} // namespace crisc

/**
 * @file
 * Numerical circuit instantiation in the style of the QFactor optimizer
 * used by the paper's Figure 6 experiments: fix a circuit template
 * (either generic SU(4) gates or CNOTs interleaved with free
 * single-qubit gates) and iteratively update each free gate to the
 * unitary maximizing |tr(U_target^dagger V_circuit)| given its
 * environment tensor (SVD polar update).
 */

#ifndef CRISC_SYNTH_INSTANTIATE_HH
#define CRISC_SYNTH_INSTANTIATE_HH

#include <vector>

#include "linalg/matrix.hh"
#include "linalg/random.hh"

namespace crisc {
namespace synth {

using linalg::Matrix;

/** One slot of an instantiation template. */
struct TemplateSlot
{
    std::vector<std::size_t> qubits; ///< acted qubits, msq first.
    bool trainable;                  ///< false = fixed gate (e.g. CNOT).
    Matrix fixed;                    ///< the gate when not trainable.
};

/** A parameterized circuit template on n qubits. */
struct Template
{
    std::size_t nQubits;
    std::vector<TemplateSlot> slots;
};

/**
 * Template of @p gates generic two-qubit gates cycling over the pairs
 * (0,1), (0,2), ..., (0,n-1) as in the paper's Sec. 6.2 experiment,
 * with trainable single-qubit gates on every wire at both ends.
 */
Template genericTemplate(std::size_t n, std::size_t gates);

/**
 * Template of @p gates CNOTs on the same pair pattern with trainable
 * single-qubit gates between consecutive CNOTs.
 */
Template cnotTemplate(std::size_t n, std::size_t gates);

/** Outcome of an instantiation run. */
struct InstantiationResult
{
    double distance;   ///< 1 - |tr(U^dagger V)| / 2^n at the optimum.
    int sweeps;        ///< sweeps performed.
    std::vector<Matrix> gates; ///< the optimized slot unitaries.
};

/**
 * Optimizes the template's trainable gates to approximate @p target.
 *
 * @param target 2^n x 2^n unitary.
 * @param tmpl circuit template.
 * @param rng source for the random initialization.
 * @param max_sweeps sweep budget.
 * @param tol stop when the distance falls below this threshold.
 * @param restarts number of random restarts (best kept).
 */
InstantiationResult instantiate(const Matrix &target, const Template &tmpl,
                                linalg::Rng &rng, int max_sweeps = 400,
                                double tol = 1e-11, int restarts = 2);

} // namespace synth
} // namespace crisc

#endif // CRISC_SYNTH_INSTANTIATE_HH

#include "instantiate.hh"

#include <cmath>
#include <stdexcept>

#include "linalg/decomp.hh"
#include "qop/gates.hh"

namespace crisc {
namespace synth {

using linalg::Complex;

namespace {

/**
 * The environment matrix M with tr(F * embed(G)) = tr(M * G):
 * M(b, a) = sum over untouched-qubit assignments of
 * F(index(b, rest), index(a, rest)).
 */
Matrix
environment(const Matrix &f, const std::vector<std::size_t> &qubits,
            std::size_t n)
{
    const std::size_t k = qubits.size();
    const std::size_t gdim = std::size_t{1} << k;
    const std::size_t dim = std::size_t{1} << n;
    std::vector<std::size_t> pos(k);
    std::size_t mask = 0;
    for (std::size_t b = 0; b < k; ++b) {
        pos[b] = n - 1 - qubits[b];
        mask |= std::size_t{1} << pos[b];
    }
    auto address = [&](std::size_t g, std::size_t rest) {
        std::size_t a = rest;
        for (std::size_t b = 0; b < k; ++b)
            if ((g >> (k - 1 - b)) & 1)
                a |= std::size_t{1} << pos[b];
        return a;
    };
    Matrix m(gdim, gdim);
    for (std::size_t rest = 0; rest < dim; ++rest) {
        if (rest & mask)
            continue;
        for (std::size_t a = 0; a < gdim; ++a)
            for (std::size_t b = 0; b < gdim; ++b)
                m(b, a) += f(address(b, rest), address(a, rest));
    }
    return m;
}

/** The unitary maximizing |tr(M G)|: G = Q P^dagger from M = P S Q^dagger. */
Matrix
polarUpdate(const Matrix &m)
{
    const linalg::SVDResult f = linalg::svd(m);
    return f.v * f.u.dagger();
}

} // namespace

Template
genericTemplate(std::size_t n, std::size_t gates)
{
    Template t;
    t.nQubits = n;
    for (std::size_t g = 0; g < gates; ++g) {
        const std::size_t partner = 1 + g % (n - 1);
        t.slots.push_back({{0, partner}, true, Matrix{}});
    }
    return t;
}

Template
cnotTemplate(std::size_t n, std::size_t gates)
{
    Template t;
    t.nQubits = n;
    // Leading free single-qubit layer.
    for (std::size_t q = 0; q < n; ++q)
        t.slots.push_back({{q}, true, Matrix{}});
    for (std::size_t g = 0; g < gates; ++g) {
        const std::size_t partner = 1 + g % (n - 1);
        t.slots.push_back({{0, partner}, false, qop::cnot()});
        // Free single-qubit gates after each CNOT on the touched wires.
        t.slots.push_back({{0}, true, Matrix{}});
        t.slots.push_back({{partner}, true, Matrix{}});
    }
    return t;
}

InstantiationResult
instantiate(const Matrix &target, const Template &tmpl, linalg::Rng &rng,
            int max_sweeps, double tol, int restarts)
{
    const std::size_t n = tmpl.nQubits;
    const std::size_t dim = std::size_t{1} << n;
    if (target.rows() != dim)
        throw std::invalid_argument("instantiate: target size mismatch");
    const std::size_t m = tmpl.slots.size();
    const Matrix ud = target.dagger();

    InstantiationResult best;
    best.distance = 1e300;
    best.sweeps = 0;

    for (int attempt = 0; attempt < restarts; ++attempt) {
        std::vector<Matrix> gates(m), emb(m);
        for (std::size_t k = 0; k < m; ++k) {
            const auto &slot = tmpl.slots[k];
            gates[k] = slot.trainable
                           ? linalg::haarUnitary(
                                 rng, std::size_t{1} << slot.qubits.size())
                           : slot.fixed;
            emb[k] = qop::embed(gates[k], slot.qubits, n);
        }

        double dist = 1.0;
        int sweep = 0;
        double prev = 2.0;
        for (; sweep < max_sweeps; ++sweep) {
            // Suffix products S_k = G_{m-1} ... G_{k+1}.
            std::vector<Matrix> suffix(m + 1);
            suffix[m - 1] = Matrix::identity(dim);
            for (std::size_t k = m - 1; k-- > 0;)
                suffix[k] = suffix[k + 1] * emb[k + 1];

            Matrix prefix = Matrix::identity(dim);
            for (std::size_t k = 0; k < m; ++k) {
                if (tmpl.slots[k].trainable) {
                    const Matrix f = prefix * ud * suffix[k];
                    const Matrix env =
                        environment(f, tmpl.slots[k].qubits, n);
                    gates[k] = polarUpdate(env);
                    emb[k] = qop::embed(gates[k], tmpl.slots[k].qubits, n);
                }
                prefix = emb[k] * prefix;
            }
            const Complex overlap = (ud * prefix).trace();
            dist = 1.0 - std::abs(overlap) / static_cast<double>(dim);
            if (dist < tol || prev - dist < 1e-14)
                break;
            prev = dist;
        }
        if (dist < best.distance) {
            best.distance = dist;
            best.sweeps = sweep;
            best.gates = gates;
        }
        if (best.distance < tol)
            break;
    }
    return best;
}

} // namespace synth
} // namespace crisc

#include "three_qubit.hh"

#include <cmath>
#include <stdexcept>

#include "csd.hh"
#include "multiplexor.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"

namespace crisc {
namespace synth {

using circuit::Gate;
using linalg::kron;

namespace {

/** Reverses a circuit and daggers each gate: the circuit of U^dagger. */
Circuit
reverseDagger(const Circuit &c)
{
    Circuit out(c.numQubits());
    for (auto it = c.gates().rbegin(); it != c.gates().rend(); ++it)
        out.add(it->op.dagger(), it->qubits, it->label);
    return out;
}

/** True when the gate acts on qubit q. */
bool
touches(const Gate &g, std::size_t q)
{
    for (std::size_t x : g.qubits)
        if (x == q)
            return true;
    return false;
}

/** Embeds a 1q op into a 2q gate's local frame at slot 0 or 1. */
Matrix
liftSingle(const Matrix &op, bool first)
{
    return first ? kron(op, qop::pauliI()) : kron(qop::pauliI(), op);
}

} // namespace

Circuit
mergeTwoQubitGates(const Circuit &c)
{
    std::vector<Gate> gates = c.gates();
    bool changed = true;
    while (changed) {
        changed = false;
        // Absorb single-qubit gates into the nearest two-qubit neighbour.
        for (std::size_t i = 0; i < gates.size() && !changed; ++i) {
            if (gates[i].qubits.size() != 1)
                continue;
            const std::size_t q = gates[i].qubits[0];
            // Later gate touching q (gates in between commute with i).
            for (std::size_t j = i + 1; j < gates.size(); ++j) {
                if (!touches(gates[j], q))
                    continue;
                if (gates[j].qubits.size() == 1) {
                    gates[j].op = gates[j].op * gates[i].op;
                } else {
                    gates[j].op =
                        gates[j].op *
                        liftSingle(gates[i].op, gates[j].qubits[0] == q);
                }
                gates.erase(gates.begin() + i);
                changed = true;
                break;
            }
            if (changed)
                break;
            // No later gate: fold into the closest earlier one.
            for (std::size_t j = i; j-- > 0;) {
                if (!touches(gates[j], q))
                    continue;
                if (gates[j].qubits.size() == 1) {
                    gates[j].op = gates[i].op * gates[j].op;
                } else {
                    gates[j].op =
                        liftSingle(gates[i].op, gates[j].qubits[0] == q) *
                        gates[j].op;
                }
                gates.erase(gates.begin() + i);
                changed = true;
                break;
            }
        }
        if (changed)
            continue;
        // Fuse adjacent two-qubit gates on the same pair.
        for (std::size_t i = 0; i < gates.size() && !changed; ++i) {
            if (gates[i].qubits.size() != 2)
                continue;
            const std::size_t a = gates[i].qubits[0], b = gates[i].qubits[1];
            for (std::size_t j = i + 1; j < gates.size(); ++j) {
                if (!touches(gates[j], a) && !touches(gates[j], b))
                    continue;
                if (gates[j].qubits.size() != 2)
                    break;
                const std::size_t ja = gates[j].qubits[0];
                const std::size_t jb = gates[j].qubits[1];
                if (ja == a && jb == b) {
                    gates[j].op = gates[j].op * gates[i].op;
                } else if (ja == b && jb == a) {
                    // Re-express j in i's qubit order before composing.
                    const Matrix &sw = qop::swapGate();
                    gates[j].op = sw * gates[j].op * sw * gates[i].op;
                    gates[j].qubits = {a, b};
                } else {
                    break; // shares one qubit only
                }
                gates[j].label = "fused";
                gates.erase(gates.begin() + i);
                changed = true;
                break;
            }
        }
    }
    Circuit out(c.numQubits());
    for (Gate &g : gates)
        out.add(std::move(g.op), std::move(g.qubits), std::move(g.label));
    return out;
}

Circuit
threeQubitGeneric(const Matrix &u)
{
    if (u.rows() != 8 || !linalg::isUnitary(u, 1e-8))
        throw std::invalid_argument("threeQubitGeneric: expected U(8)");

    const CSDResult f = csd(u);

    // Right multiplexor (applied first): D1 on (q0, q2) so it fuses with
    // the first CNOT(q2 -> q0) of the middle rotation.
    const Circuit rmux = multiplexorLemma14(f.r0.dagger(), f.r1.dagger(),
                                            /*diag_on_first=*/false);

    // Left multiplexor, built reversed so it *starts* with its diagonal
    // gate, placed on (q0, q1) to fuse with the middle's last gate.
    const Circuit lmux = reverseDagger(multiplexorLemma14(
        f.l0.dagger(), f.l1.dagger(), /*diag_on_first=*/true));

    // Middle: two-select multiplexed Ry on q0 written as
    // A(q0,q1) C(q0,q2) B(q0,q1) C(q0,q2)   (matrix order),
    // with A, B one-select multiplexed rotations taken as plain
    // two-qubit gates.
    std::vector<double> av(2), bv(2);
    for (std::size_t s1 = 0; s1 < 2; ++s1) {
        av[s1] = f.theta[2 * s1] + f.theta[2 * s1 + 1];
        bv[s1] = f.theta[2 * s1] - f.theta[2 * s1 + 1];
    }
    const Matrix aGate =
        multiplexedRotationMatrix('y', av, {1}, 0, 2);
    const Matrix bGate =
        multiplexedRotationMatrix('y', bv, {1}, 0, 2);
    const Matrix hh = kron(qop::hadamard(), qop::hadamard());
    const Matrix cnotUp = hh * qop::cnot() * hh; // control = 2nd listed

    Circuit full(3);
    full.append(rmux);
    full.add(cnotUp, {0, 2}, "CX20");
    full.add(bGate, {0, 1}, "muxB");
    full.add(cnotUp, {0, 2}, "CX20");
    full.add(aGate, {0, 1}, "muxA");
    full.append(lmux);

    Circuit merged = mergeTwoQubitGates(full);
    if (!qop::equalUpToGlobalPhase(merged.toUnitary(), u, 1e-5)) {
        throw std::runtime_error(
            "threeQubitGeneric: reconstruction check failed");
    }
    return merged;
}

} // namespace synth
} // namespace crisc

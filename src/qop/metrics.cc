#include "metrics.hh"

#include <cmath>
#include <stdexcept>

namespace crisc {
namespace qop {

using linalg::kron;

double
traceDistance(const Matrix &u, const Matrix &v)
{
    const double d = static_cast<double>(u.rows());
    return 1.0 - std::abs((u.dagger() * v).trace()) / d;
}

double
averageGateFidelity(const Matrix &u, const Matrix &v)
{
    const double d = static_cast<double>(u.rows());
    const double overlap = std::abs((u.dagger() * v).trace());
    return (overlap * overlap + d) / (d * d + d);
}

bool
equalUpToGlobalPhase(const Matrix &u, const Matrix &v, double tol)
{
    if (u.rows() != v.rows() || u.cols() != v.cols())
        return false;
    return linalg::maxAbsDiff(alignGlobalPhase(u, v), v) <= tol;
}

Matrix
alignGlobalPhase(const Matrix &u, const Matrix &ref)
{
    const Complex overlap = (ref.dagger() * u).trace();
    if (std::abs(overlap) < 1e-12)
        return u;
    return std::polar(1.0, -std::arg(overlap)) * u;
}

Matrix
toSU(const Matrix &u)
{
    const double n = static_cast<double>(u.rows());
    const Complex d = u.det();
    return std::polar(1.0, -std::arg(d) / n) * u;
}

std::pair<Matrix, Matrix>
factorKron(const Matrix &m, double tol)
{
    if (m.rows() != 4 || m.cols() != 4)
        throw std::invalid_argument("factorKron: expected a 4x4 matrix");
    // View m as 2x2 blocks M_{kl} = a_{kl} * b and recover b from the
    // strongest block, then a from overlaps with b.
    Matrix blocks[2][2];
    double best = -1.0;
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            blocks[i][j] = m.block(2 * i, 2 * i + 2, 2 * j, 2 * j + 2);
            const double nrm = blocks[i][j].frobeniusNorm();
            if (nrm > best) {
                best = nrm;
                bi = i;
                bj = j;
            }
        }
    }
    Matrix b = blocks[bi][bj];
    const double bn2 = b.frobeniusNorm() * b.frobeniusNorm();
    Matrix a(2, 2);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            a(i, j) = (b.dagger() * blocks[i][j]).trace() / bn2;

    // Normalize b to unit determinant and push the scalar into a; then
    // fix a's scale so the product reproduces m exactly.
    const Complex db = b.det();
    if (std::abs(db) < 1e-12)
        throw std::runtime_error("factorKron: singular tensor factor");
    const Complex sq = std::sqrt(db);
    b = (Complex{1.0, 0.0} / sq) * b;
    a = sq * a;
    const Complex corr = (kron(a, b).dagger() * m).trace() / 4.0;
    a = corr * a;

    if (linalg::maxAbsDiff(kron(a, b), m) > tol)
        throw std::runtime_error("factorKron: matrix is not a product");
    return {a, b};
}

} // namespace qop
} // namespace crisc

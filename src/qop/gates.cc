#include "gates.hh"

#include <cmath>
#include <stdexcept>

#include "linalg/expm.hh"

namespace crisc {
namespace qop {

using linalg::kI;
using linalg::kron;

namespace {

const double kInvSqrt2 = 1.0 / std::sqrt(2.0);

} // namespace

const Matrix &
pauliI()
{
    static const Matrix m{{1, 0}, {0, 1}};
    return m;
}

const Matrix &
pauliX()
{
    static const Matrix m{{0, 1}, {1, 0}};
    return m;
}

const Matrix &
pauliY()
{
    static const Matrix m{{0, -kI}, {kI, 0}};
    return m;
}

const Matrix &
pauliZ()
{
    static const Matrix m{{1, 0}, {0, -1}};
    return m;
}

const Matrix &
pauliXX()
{
    static const Matrix m = kron(pauliX(), pauliX());
    return m;
}

const Matrix &
pauliYY()
{
    static const Matrix m = kron(pauliY(), pauliY());
    return m;
}

const Matrix &
pauliZZ()
{
    static const Matrix m = kron(pauliZ(), pauliZ());
    return m;
}

const Matrix &
hadamard()
{
    static const Matrix m{{kInvSqrt2, kInvSqrt2}, {kInvSqrt2, -kInvSqrt2}};
    return m;
}

const Matrix &
sGate()
{
    static const Matrix m{{1, 0}, {0, kI}};
    return m;
}

Matrix
rx(double theta)
{
    const double c = std::cos(theta / 2.0), s = std::sin(theta / 2.0);
    return Matrix{{c, -kI * s}, {-kI * s, c}};
}

Matrix
ry(double theta)
{
    const double c = std::cos(theta / 2.0), s = std::sin(theta / 2.0);
    return Matrix{{c, -s}, {s, c}};
}

Matrix
rz(double theta)
{
    return Matrix{{std::polar(1.0, -theta / 2.0), 0},
                  {0, std::polar(1.0, theta / 2.0)}};
}

const Matrix &
cnot()
{
    static const Matrix m{
        {1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}};
    return m;
}

const Matrix &
cz()
{
    static const Matrix m{
        {1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, -1}};
    return m;
}

const Matrix &
swapGate()
{
    static const Matrix m{
        {1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}};
    return m;
}

const Matrix &
iswap()
{
    static const Matrix m{
        {1, 0, 0, 0}, {0, 0, kI, 0}, {0, kI, 0, 0}, {0, 0, 0, 1}};
    return m;
}

const Matrix &
sqisw()
{
    static const Matrix m{{1, 0, 0, 0},
                          {0, kInvSqrt2, kI * kInvSqrt2, 0},
                          {0, kI * kInvSqrt2, kInvSqrt2, 0},
                          {0, 0, 0, 1}};
    return m;
}

const Matrix &
bGate()
{
    // Representative of the B-gate local equivalence class
    // (pi/4, pi/8, 0); any member of the class works for our purposes.
    static const Matrix m = canonicalGate(M_PI / 4.0, M_PI / 8.0, 0.0);
    return m;
}

const Matrix &
msGate()
{
    static const Matrix m{{kInvSqrt2, 0, 0, -kI * kInvSqrt2},
                          {0, kInvSqrt2, -kI * kInvSqrt2, 0},
                          {0, -kI * kInvSqrt2, kInvSqrt2, 0},
                          {-kI * kInvSqrt2, 0, 0, kInvSqrt2}};
    return m;
}

Matrix
canonicalGate(double x, double y, double z)
{
    Matrix h = x * pauliXX() + y * pauliYY() + z * pauliZZ();
    // exp(i H) = propagator(H, -1) since propagator computes exp(-i H t).
    return linalg::propagator(h, -1.0);
}

Matrix
embed(const Matrix &gate, const std::vector<std::size_t> &qubits,
      std::size_t n)
{
    const std::size_t k = qubits.size();
    const std::size_t gdim = std::size_t{1} << k;
    if (gate.rows() != gdim || gate.cols() != gdim)
        throw std::invalid_argument("embed: gate size mismatch");
    const std::size_t dim = std::size_t{1} << n;
    Matrix out(dim, dim);
    for (std::size_t row = 0; row < dim; ++row) {
        // Gate-local row index from the bits of the addressed qubits.
        std::size_t grow = 0;
        for (std::size_t b = 0; b < k; ++b) {
            const std::size_t bit = (row >> (n - 1 - qubits[b])) & 1;
            grow = (grow << 1) | bit;
        }
        for (std::size_t gcol = 0; gcol < gdim; ++gcol) {
            const Complex amp = gate(grow, gcol);
            if (amp == Complex{0.0, 0.0})
                continue;
            std::size_t colIdx = row;
            for (std::size_t b = 0; b < k; ++b) {
                const std::size_t bit = (gcol >> (k - 1 - b)) & 1;
                const std::size_t pos = n - 1 - qubits[b];
                colIdx = (colIdx & ~(std::size_t{1} << pos)) | (bit << pos);
            }
            out(row, colIdx) = amp;
        }
    }
    return out;
}

} // namespace qop
} // namespace crisc

/**
 * @file
 * Gate comparison metrics and phase utilities: the trace distance used in
 * the paper's synthesis experiments, global-phase alignment, average gate
 * fidelity, and factorization of product operators A (x) B.
 */

#ifndef CRISC_QOP_METRICS_HH
#define CRISC_QOP_METRICS_HH

#include <utility>

#include "linalg/matrix.hh"

namespace crisc {
namespace qop {

using linalg::Complex;
using linalg::Matrix;

/**
 * The paper's decomposition error (Sec. 6.2):
 * dist(U, V) = 1 - |tr(U^dagger V)| / 2^n.
 */
double traceDistance(const Matrix &u, const Matrix &v);

/**
 * Average gate fidelity between two unitaries of dimension d:
 * F_avg = (|tr(U^dagger V)|^2 + d) / (d^2 + d).
 */
double averageGateFidelity(const Matrix &u, const Matrix &v);

/** @return true when u = e^{i phi} v for some phase, to tolerance. */
bool equalUpToGlobalPhase(const Matrix &u, const Matrix &v,
                          double tol = 1e-9);

/** Rescales @p u by a phase so that tr(ref^dagger u) is real positive. */
Matrix alignGlobalPhase(const Matrix &u, const Matrix &ref);

/** Divides out the determinant phase, mapping U(n) onto SU(n). */
Matrix toSU(const Matrix &u);

/**
 * Factors a two-qubit product operator m = a (x) b into its one-qubit
 * tensor factors (up to the inherent scalar ambiguity, resolved so both
 * factors have unit determinant when m is unitary).
 *
 * @throws std::runtime_error when m is not a product to tolerance.
 */
std::pair<Matrix, Matrix> factorKron(const Matrix &m, double tol = 1e-6);

} // namespace qop
} // namespace crisc

#endif // CRISC_QOP_METRICS_HH

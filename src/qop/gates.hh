/**
 * @file
 * Standard quantum operators: Pauli matrices, single-qubit rotations,
 * common one- and two-qubit gates, and embeddings of small gates into
 * n-qubit registers. Qubit 0 is the most significant bit of the basis
 * index (|q0 q1 ... q_{n-1}>), matching the tensor-product order
 * kron(op_on_q0, op_on_q1, ...).
 */

#ifndef CRISC_QOP_GATES_HH
#define CRISC_QOP_GATES_HH

#include <vector>

#include "linalg/matrix.hh"

namespace crisc {
namespace qop {

using linalg::Complex;
using linalg::Matrix;

/** 2x2 identity. */
const Matrix &pauliI();
/** Pauli X. */
const Matrix &pauliX();
/** Pauli Y. */
const Matrix &pauliY();
/** Pauli Z. */
const Matrix &pauliZ();

/** Two-qubit Pauli products XX, YY, ZZ and friends used by the paper. */
const Matrix &pauliXX();
const Matrix &pauliYY();
const Matrix &pauliZZ();

/** Hadamard gate. */
const Matrix &hadamard();
/** Phase gate S = diag(1, i). */
const Matrix &sGate();

/** Rotation exp(-i theta X / 2). */
Matrix rx(double theta);
/** Rotation exp(-i theta Y / 2). */
Matrix ry(double theta);
/** Rotation exp(-i theta Z / 2) = diag(e^{-i theta/2}, e^{i theta/2}). */
Matrix rz(double theta);

/** CNOT with qubit 0 as control (basis order |q0 q1>). */
const Matrix &cnot();
/** Controlled-Z. */
const Matrix &cz();
/** SWAP. */
const Matrix &swapGate();
/** iSWAP. */
const Matrix &iswap();
/** SQiSW = sqrt(iSWAP). */
const Matrix &sqisw();
/** The B gate of Zhang et al., interaction coefficients (pi/4, pi/8, 0). */
const Matrix &bGate();
/** Molmer-Sorensen XX(pi/2) rotation exp(-i pi/4 XX). */
const Matrix &msGate();

/**
 * Canonical two-qubit interaction exp(i (x XX + y YY + z ZZ)); its KAK
 * interaction coefficients are exactly (x, y, z) (up to canonicalization).
 */
Matrix canonicalGate(double x, double y, double z);

/**
 * Embeds a k-qubit gate acting on the given qubits of an n-qubit
 * register into a full 2^n x 2^n matrix. Used by tests and synthesis;
 * simulators apply gates in place instead.
 *
 * @param gate 2^k x 2^k unitary.
 * @param qubits the register qubits the gate's tensor factors act on,
 *        most-significant gate qubit first.
 * @param n total number of register qubits.
 */
Matrix embed(const Matrix &gate, const std::vector<std::size_t> &qubits,
             std::size_t n);

} // namespace qop
} // namespace crisc

#endif // CRISC_QOP_GATES_HH

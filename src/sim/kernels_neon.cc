/**
 * @file
 * NEON backend stamp: kernels_impl.hh instantiated over the 2-lane
 * float64x2_t simd backend. Compiled only on aarch64 targets, where
 * NEON is architectural (no extra -m flags; still -ffp-contract=off,
 * see CMakeLists.txt).
 */

#define CRISC_SIMD_STAMP_NEON 1
#define CRISC_KERNEL_TABLE_FN neonKernelTable
#define CRISC_KERNEL_BACKEND_ID Backend::Neon

#include "sim/kernels_impl.hh"

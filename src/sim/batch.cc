#include "batch.hh"

namespace crisc {
namespace sim {

std::uint64_t
streamSeed(std::uint64_t base, std::uint64_t stream)
{
    // splitmix64 finalizer over the combined word; the golden-ratio
    // multiplier separates (base, stream) pairs that differ in either
    // component.
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    nThreads_ = num_threads;
    workers_.reserve(nThreads_ - 1);
    for (std::size_t i = 0; i + 1 < nThreads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        jobCount_ = count;
        next_.store(0, std::memory_order_relaxed);
        remaining_ = count;
        ++generation_;
    }
    wake_.notify_all();

    // The caller works the same queue as the pool threads.
    for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            break;
        fn(i);
        std::lock_guard<std::mutex> lock(mutex_);
        if (--remaining_ == 0) {
            done_.notify_all();
            break;
        }
    }

    // Wait for all items AND for every worker to leave the job's inner
    // loop; a worker still inside it holds a pointer to fn, which dies
    // when this function returns.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock,
               [this] { return remaining_ == 0 && activeWorkers_ == 0; });
    job_ = nullptr;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *job = nullptr;
        std::size_t count = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return stopping_ || generation_ != seen;
            });
            if (stopping_)
                return;
            seen = generation_;
            job = job_;
            count = jobCount_;
            if (job)
                ++activeWorkers_;
        }
        if (!job)
            continue;
        for (;;) {
            const std::size_t i =
                next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                break;
            (*job)(i);
            std::lock_guard<std::mutex> lock(mutex_);
            if (--remaining_ == 0)
                done_.notify_all();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--activeWorkers_ == 0 && remaining_ == 0)
                done_.notify_all();
        }
    }
}

std::vector<double>
runTrajectories(ThreadPool &pool, std::size_t count, std::uint64_t base_seed,
                const std::function<double(std::size_t, linalg::Rng &)> &body)
{
    // parallelFor(0) is itself a no-op; returning here just keeps the
    // empty-batch contract visible at the API layer (no allocation, no
    // lambda construction, body never invoked).
    if (count == 0)
        return {};
    std::vector<double> results(count, 0.0);
    pool.parallelFor(count, [&](std::size_t t) {
        linalg::Rng rng(streamSeed(base_seed, t));
        results[t] = body(t, rng);
    });
    return results;
}

double
sumTrajectories(ThreadPool &pool, std::size_t count, std::uint64_t base_seed,
                const std::function<double(std::size_t, linalg::Rng &)> &body)
{
    const std::vector<double> results =
        runTrajectories(pool, count, base_seed, body);
    double sum = 0.0;
    for (double r : results)
        sum += r;
    return sum;
}

} // namespace sim
} // namespace crisc

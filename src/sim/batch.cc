#include "batch.hh"

#include <stdexcept>

#include "obs/obs.hh"
#include "sim/cache.hh"
#include "sim/kernels.hh"

namespace crisc {
namespace sim {

std::uint64_t
streamSeed(std::uint64_t base, std::uint64_t stream)
{
    // splitmix64 finalizer over the combined word; the golden-ratio
    // multiplier separates (base, stream) pairs that differ in either
    // component.
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    nThreads_ = num_threads;
    workers_.reserve(nThreads_ - 1);
    for (std::size_t i = 0; i + 1 < nThreads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::runIndex(const std::function<void(std::size_t)> &fn,
                     std::size_t index)
{
    // After a task throws, remaining indices are skipped (not run) so
    // the batch drains quickly; the first exception wins.
    if (errored_.load(std::memory_order_relaxed))
        return;
    try {
        OBS_SPAN("pool.task");
        fn(index);
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_)
            error_ = std::current_exception();
        errored_.store(true, std::memory_order_relaxed);
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    OBS_SPAN("pool.parallelFor");
    OBS_COUNT("pool.tasks", count);
    OBS_GAUGE("pool.queue_depth", count);
    if (workers_.empty() || count == 1) {
        // Inline path: the first exception propagates directly and the
        // remaining indices are skipped, matching the pooled contract.
        for (std::size_t i = 0; i < count; ++i) {
            OBS_SPAN("pool.task");
            fn(i);
        }
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        jobCount_ = count;
        next_.store(0, std::memory_order_relaxed);
        remaining_ = count;
        errored_.store(false, std::memory_order_relaxed);
        error_ = nullptr;
        ++generation_;
    }
    wake_.notify_all();

    // The caller works the same queue as the pool threads.
    for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            break;
        runIndex(fn, i);
        std::lock_guard<std::mutex> lock(mutex_);
        if (--remaining_ == 0) {
            done_.notify_all();
            break;
        }
    }

    // Wait for all items AND for every worker to leave the job's inner
    // loop; a worker still inside it holds a pointer to fn, which dies
    // when this function returns.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock,
               [this] { return remaining_ == 0 && activeWorkers_ == 0; });
    job_ = nullptr;
    if (error_) {
        std::exception_ptr first = error_;
        error_ = nullptr;
        errored_.store(false, std::memory_order_relaxed);
        lock.unlock();
        std::rethrow_exception(first);
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *job = nullptr;
        std::size_t count = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return stopping_ || generation_ != seen;
            });
            if (stopping_)
                return;
            seen = generation_;
            job = job_;
            count = jobCount_;
            if (job)
                ++activeWorkers_;
        }
        if (!job)
            continue;
        for (;;) {
            const std::size_t i =
                next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                break;
            runIndex(*job, i);
            std::lock_guard<std::mutex> lock(mutex_);
            if (--remaining_ == 0)
                done_.notify_all();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--activeWorkers_ == 0 && remaining_ == 0)
                done_.notify_all();
        }
    }
}

std::vector<double>
runTrajectories(ThreadPool &pool, std::size_t count, std::uint64_t base_seed,
                const std::function<double(std::size_t, linalg::Rng &)> &body)
{
    // parallelFor(0) is itself a no-op; returning here just keeps the
    // empty-batch contract visible at the API layer (no allocation, no
    // lambda construction, body never invoked).
    if (count == 0)
        return {};
    std::vector<double> results(count, 0.0);
    pool.parallelFor(count, [&](std::size_t t) {
        OBS_SPAN("traj.trajectory");
        OBS_COUNT("traj.count", 1);
        linalg::Rng rng(streamSeed(base_seed, t));
        results[t] = body(t, rng);
    });
    return results;
}

double
sumTrajectories(ThreadPool &pool, std::size_t count, std::uint64_t base_seed,
                const std::function<double(std::size_t, linalg::Rng &)> &body)
{
    const std::vector<double> results =
        runTrajectories(pool, count, base_seed, body);
    double sum = 0.0;
    for (double r : results)
        sum += r;
    return sum;
}

std::size_t
resolveThreads(std::size_t requested)
{
    if (requested != 0)
        return requested;
    const std::size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

BatchPlan
planBatch(std::size_t total_threads, std::size_t width, std::size_t count)
{
    // Width bands (see batch.hh): below 18 qubits a sweep is too short
    // to amortize fork/join, so the trajectory axis takes everything
    // and SIMD lanes run across trajectories (per-state vectors starve
    // at the short strides these widths produce); from 26 qubits a
    // statevector is ~GiB-scale and only one fits comfortably, so the
    // sweep axis takes everything; in between, the number of concurrent
    // statevectors is capped by a per-width memory budget and spare
    // threads move to the sweep axis.
    constexpr std::size_t kTrajOnlyBelowWidth = 18;
    constexpr std::size_t kStateOnlyFromWidth = 26;

    if (width == 0)
        throw std::invalid_argument("planBatch: width must be at least 1");
    if (total_threads == 0)
        throw std::invalid_argument(
            "planBatch: total_threads must be at least 1 (use "
            "resolveThreads for a hardware default)");

    const std::size_t total = total_threads;
    const std::size_t soa =
        width < kTrajOnlyBelowWidth ? simdLanes() : 1;
    // Statevectors past the LLC execute cache-blocked (engine.hh); the
    // same auto policy ExecOptions::blockQubits == 0 resolves to.
    const std::size_t block = resolveBlockQubits(0, width);
    if (count == 0)
        return {1, 1, 1, block};
    if (total == 1)
        return {1, 1, soa, block};
    if (width < kTrajOnlyBelowWidth)
        return {total, 1, soa, block};
    if (width >= kStateOnlyFromWidth)
        return {1, total, 1, block};
    const std::size_t memCap = std::size_t{1}
                               << (kStateOnlyFromWidth - width);
    std::size_t limit = total;
    if (limit > count)
        limit = count;
    if (limit > memCap)
        limit = memCap;
    if (limit == 0)
        limit = 1;
    // Among admissible trajectory counts, prefer the one wasting the
    // fewest threads to the truncating division (traj = 1 always uses
    // the whole budget), and the most trajectory slots on a tie — that
    // axis scales perfectly.
    std::size_t traj = 1;
    std::size_t used = total;
    for (std::size_t t = 2; t <= limit; ++t) {
        const std::size_t u = t * (total / t);
        if (u >= used) {
            used = u;
            traj = t;
        }
    }
    return {traj, total / traj, 1, block};
}

TrajectoryRunner::TrajectoryRunner(std::size_t traj_workers,
                                   std::size_t state_threads)
    : trajPool_(traj_workers),
      stateThreads_(state_threads == 0 ? 1 : state_threads)
{
    if (stateThreads_ > 1) {
        // One sweep pool per trajectory slot, leased to the running
        // trajectory; at most trajWorkers() lease at once, so
        // acquireStatePool never starves.
        statePools_.reserve(trajPool_.size());
        for (std::size_t i = 0; i < trajPool_.size(); ++i) {
            // Counted so tests can pin that the pure trajectory-
            // parallel arm (stateThreads <= 1) spawns no sweep pools.
            OBS_COUNT("traj.state_pool_spawns", 1);
            statePools_.push_back(
                std::make_unique<ThreadPool>(stateThreads_));
            freePools_.push_back(statePools_.back().get());
        }
    }
}

ThreadPool *
TrajectoryRunner::acquireStatePool()
{
    std::unique_lock<std::mutex> lock(poolMutex_);
    poolAvailable_.wait(lock, [this] { return !freePools_.empty(); });
    ThreadPool *pool = freePools_.back();
    freePools_.pop_back();
    return pool;
}

void
TrajectoryRunner::releaseStatePool(ThreadPool *pool)
{
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        freePools_.push_back(pool);
    }
    poolAvailable_.notify_one();
}

std::vector<double>
TrajectoryRunner::run(std::size_t count, std::uint64_t base_seed,
                      const Body &body)
{
    if (count == 0)
        return {};
    std::vector<double> results(count, 0.0);
    trajPool_.parallelFor(count, [&](std::size_t t) {
        OBS_SPAN("traj.trajectory");
        OBS_COUNT("traj.count", 1);
        linalg::Rng rng(streamSeed(base_seed, t));
        ExecOptions exec;
        ThreadPool *state = nullptr;
        if (stateThreads_ > 1) {
            state = acquireStatePool();
            exec.pool = state;
            exec.threads = state->size();
        }
        try {
            results[t] = body(t, rng, exec);
        } catch (...) {
            if (state != nullptr)
                releaseStatePool(state);
            throw;
        }
        if (state != nullptr)
            releaseStatePool(state);
    });
    return results;
}

double
TrajectoryRunner::sum(std::size_t count, std::uint64_t base_seed,
                      const Body &body)
{
    const std::vector<double> results = run(count, base_seed, body);
    double total = 0.0;
    for (double r : results)
        total += r;
    return total;
}

std::vector<double>
TrajectoryRunner::runBatched(std::size_t count, std::uint64_t base_seed,
                             std::size_t lanes, const BatchBody &body)
{
    if (lanes == 0)
        throw std::invalid_argument(
            "runBatched: lanes must be at least 1");
    if (count == 0)
        return {};
    const std::size_t tiles = (count + lanes - 1) / lanes;
    std::vector<double> results(count, 0.0);
    trajPool_.parallelFor(tiles, [&](std::size_t tile) {
        OBS_SPAN("traj.tile");
        const std::size_t first = tile * lanes;
        const std::size_t rest = count - first;
        const std::size_t width = rest < lanes ? rest : lanes;
        OBS_COUNT("traj.count", width);
        // Same stream seeds as run(): lane l is trajectory first + l.
        std::vector<linalg::Rng> rngs;
        rngs.reserve(width);
        for (std::size_t l = 0; l < width; ++l)
            rngs.emplace_back(streamSeed(base_seed, first + l));
        ExecOptions exec;
        ThreadPool *state = nullptr;
        if (stateThreads_ > 1) {
            state = acquireStatePool();
            exec.pool = state;
            exec.threads = state->size();
        }
        try {
            body(first, width, rngs.data(), exec,
                 results.data() + first);
        } catch (...) {
            if (state != nullptr)
                releaseStatePool(state);
            throw;
        }
        if (state != nullptr)
            releaseStatePool(state);
    });
    return results;
}

double
TrajectoryRunner::sumBatched(std::size_t count, std::uint64_t base_seed,
                             std::size_t lanes, const BatchBody &body)
{
    const std::vector<double> results =
        runBatched(count, base_seed, lanes, body);
    double total = 0.0;
    for (double r : results)
        total += r;
    return total;
}

} // namespace sim
} // namespace crisc

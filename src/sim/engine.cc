#include "engine.hh"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "obs/obs.hh"
#include "sim/cache.hh"
#include "sim/dispatch.hh"
#include "sim/shard.hh"

namespace crisc {
namespace sim {

namespace {

/** log2 of an op's amplitude-group size (1 for pairs, 2 for quads,
 *  k for the dense fallback). */
std::size_t
opGroupBits(const KernelOp &op)
{
    switch (op.kind) {
      case KernelKind::OneQ:
      case KernelKind::OneQDiag:
        return 1;
      case KernelKind::TwoQ:
      case KernelKind::TwoQDiag:
        return 2;
      case KernelKind::Dense:
        return op.qubits.size();
    }
    throw std::logic_error("opGroupBits: unknown kernel kind");
}

/**
 * Smallest block exponent at which @p op is blockable: one past its
 * highest target index bit. Qubit q addresses index bit n-1-q, so
 * this is n minus the smallest target qubit index.
 */
std::size_t
opMinBlockBits(const KernelOp &op, std::size_t n_qubits)
{
    switch (op.kind) {
      case KernelKind::OneQ:
      case KernelKind::OneQDiag:
        return n_qubits - op.q0;
      case KernelKind::TwoQ:
      case KernelKind::TwoQDiag:
        return n_qubits - (op.q0 < op.q1 ? op.q0 : op.q1);
      case KernelKind::Dense:
        return op.qubits.empty()
                   ? 0
                   : n_qubits - *std::min_element(op.qubits.begin(),
                                                  op.qubits.end());
    }
    throw std::logic_error("opMinBlockBits: unknown kernel kind");
}

} // namespace

Plan::Plan(std::size_t num_qubits, std::vector<KernelOp> ops,
           PlanStats stats)
    : nQubits_(num_qubits), ops_(std::move(ops)), stats_(stats)
{
    minBlockBits_.reserve(ops_.size());
    for (const KernelOp &op : ops_)
        minBlockBits_.push_back(opMinBlockBits(op, nQubits_));
    // Informational segment stats at the auto block exponent;
    // execution re-partitions for whatever exponent it resolves.
    const std::size_t bAuto = autoBlockQubits(nQubits_);
    bool inRun = false;
    for (const std::size_t bits : minBlockBits_) {
        const bool blockable = bAuto != 0 && bits <= bAuto;
        if (blockable) {
            ++stats_.blockableOps;
            if (!inRun)
                ++stats_.blockedSegments;
        }
        inRun = blockable;
    }
}

std::vector<BlockSegment>
blockSegments(const Plan &plan, std::size_t block_qubits)
{
    if (block_qubits == 0 || block_qubits > plan.numQubits())
        throw std::invalid_argument(
            "blockSegments: block_qubits must lie in [1, plan width]");
    const std::vector<std::size_t> &bits = plan.minBlockBits();
    std::vector<BlockSegment> segments;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        const bool blockable = bits[i] <= block_qubits;
        if (segments.empty() || segments.back().blockable != blockable)
            segments.push_back({i, 1, blockable});
        else
            ++segments.back().count;
    }
    return segments;
}

namespace {

using Mat2 = std::array<Complex, 4>;
using Mat4 = std::array<Complex, 16>;

bool
isDiag2(const Mat2 &m)
{
    return m[1] == Complex{0.0, 0.0} && m[2] == Complex{0.0, 0.0};
}

bool
isDiag4(const Mat4 &m)
{
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            if (r != c && m[r * 4 + c] != Complex{0.0, 0.0})
                return false;
    return true;
}

/** Kronecker product a (x) b with a on the most significant qubit. */
Mat4
kron2(const Mat2 &a, const Mat2 &b)
{
    Mat4 k;
    for (std::size_t i0 = 0; i0 < 2; ++i0)
        for (std::size_t i1 = 0; i1 < 2; ++i1)
            for (std::size_t j0 = 0; j0 < 2; ++j0)
                for (std::size_t j1 = 0; j1 < 2; ++j1)
                    k[(i0 * 2 + i1) * 4 + (j0 * 2 + j1)] =
                        a[i0 * 2 + j0] * b[i1 * 2 + j1];
    return k;
}

/** Row-major 4x4 product a * b. */
Mat4
matmul4(const Mat4 &a, const Mat4 &b)
{
    Mat4 c{};
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t t = 0; t < 4; ++t)
            for (std::size_t j = 0; j < 4; ++j)
                c[r * 4 + j] += a[r * 4 + t] * b[t * 4 + j];
    return c;
}

/** Pending fused 1q gate on one qubit during compilation. */
struct Pending
{
    Mat2 m;
    std::size_t absorbed = 0; ///< source gates merged beyond the first.
};

class Compiler
{
  public:
    Compiler(std::size_t n, const CompileOptions &opts)
        : opts_(opts), pending_(n)
    {
    }

    void addGate(const circuit::Gate &g)
    {
        ++stats_.sourceGates;
        if (g.qubits.size() == 1) {
            addOneQ(g);
            return;
        }
        if (g.qubits.size() == 2) {
            // addTwoQ consumes the operand qubits' pending 1q products
            // itself when 2q fusion is on; flushing here would force
            // them into separate pair sweeps.
            if (!opts_.fuseTwoQubit)
                for (std::size_t q : g.qubits)
                    flush(q);
            addTwoQ(g);
            return;
        }
        for (std::size_t q : g.qubits)
            flush(q);
        addDense(g);
    }

    Plan finish(std::size_t n)
    {
        for (std::size_t q = 0; q < pending_.size(); ++q)
            flush(q);
        stats_.kernelOps = ops_.size();
        return Plan(n, std::move(ops_), stats_);
    }

  private:
    void addOneQ(const circuit::Gate &g)
    {
        const std::size_t q = g.qubits[0];
        const Mat2 gm{g.op(0, 0), g.op(0, 1), g.op(1, 0), g.op(1, 1)};
        std::optional<Pending> &slot = pending_[q];
        if (!slot) {
            slot = Pending{gm, 0};
        } else {
            // Gate acts after the pending product: new = g * pending.
            const Mat2 &p = slot->m;
            slot->m = {gm[0] * p[0] + gm[1] * p[2],
                       gm[0] * p[1] + gm[1] * p[3],
                       gm[2] * p[0] + gm[3] * p[2],
                       gm[2] * p[1] + gm[3] * p[3]};
            ++slot->absorbed;
        }
        if (!opts_.fuseSingleQubit)
            flush(q);
    }

    void addTwoQ(const circuit::Gate &g)
    {
        Mat4 m;
        for (std::size_t r = 0; r < 4; ++r)
            for (std::size_t c = 0; c < 4; ++c)
                m[r * 4 + c] = g.op(r, c);

        if (opts_.fuseTwoQubit) {
            // Fold pending 1q products on the operand qubits into the
            // quad: the pendings act first, so m <- m * (u_hi (x) u_lo).
            std::optional<Pending> &hi = pending_[g.qubits[0]];
            std::optional<Pending> &lo = pending_[g.qubits[1]];
            if (hi || lo) {
                const Mat2 id{Complex{1.0, 0.0}, Complex{0.0, 0.0},
                              Complex{0.0, 0.0}, Complex{1.0, 0.0}};
                m = matmul4(m, kron2(hi ? hi->m : id, lo ? lo->m : id));
                for (std::optional<Pending> *slot : {&hi, &lo}) {
                    if (!*slot)
                        continue;
                    stats_.fusedGates += 1 + (*slot)->absorbed;
                    ++stats_.fusedInto2q;
                    slot->reset();
                }
            }
        }

        KernelOp op;
        op.q0 = g.qubits[0];
        op.q1 = g.qubits[1];
        if (isDiag4(m)) {
            op.kind = KernelKind::TwoQDiag;
            op.m = {m[0], m[5], m[10], m[15]};
            ++stats_.diagOps;
        } else {
            op.kind = KernelKind::TwoQ;
            op.m = m;
        }
        ops_.push_back(std::move(op));
    }

    void addDense(const circuit::Gate &g)
    {
        KernelOp op;
        op.kind = KernelKind::Dense;
        op.dense = g.op;
        op.qubits = g.qubits;
        ++stats_.denseOps;
        ops_.push_back(std::move(op));
    }

    void flush(std::size_t q)
    {
        std::optional<Pending> &slot = pending_[q];
        if (!slot)
            return;
        KernelOp op;
        op.q0 = q;
        if (isDiag2(slot->m)) {
            op.kind = KernelKind::OneQDiag;
            op.m[0] = slot->m[0];
            op.m[1] = slot->m[3];
            ++stats_.diagOps;
        } else {
            op.kind = KernelKind::OneQ;
            for (std::size_t i = 0; i < 4; ++i)
                op.m[i] = slot->m[i];
        }
        stats_.fusedGates += slot->absorbed;
        ops_.push_back(std::move(op));
        slot.reset();
    }

    const CompileOptions &opts_;
    std::vector<std::optional<Pending>> pending_;
    std::vector<KernelOp> ops_;
    PlanStats stats_;
};

} // namespace

Plan
compile(const circuit::Circuit &c, const CompileOptions &opts)
{
    OBS_SPAN("sim.compile");
    Compiler compiler(c.numQubits(), opts);
    for (const circuit::Gate &g : c.gates())
        compiler.addGate(g);
    Plan plan = compiler.finish(c.numQubits());
    OBS_COUNT("sim.fused_1q", plan.stats().fusedGates);
    OBS_COUNT("sim.fused_2q", plan.stats().fusedInto2q);
    return plan;
}

void
executeOp(const KernelOp &op, Complex *amps, std::size_t n_qubits)
{
    // One dispatch-table fetch per sweep, never per amplitude.
    const KernelTable &k = activeKernels();
    switch (op.kind) {
      case KernelKind::OneQ:
        k.apply1q(amps, n_qubits, op.q0, op.m.data());
        return;
      case KernelKind::OneQDiag:
        k.apply1qDiag(amps, n_qubits, op.q0, op.m[0], op.m[1]);
        return;
      case KernelKind::TwoQ:
        k.apply2q(amps, n_qubits, op.q0, op.q1, op.m.data());
        return;
      case KernelKind::TwoQDiag:
        k.apply2qDiag(amps, n_qubits, op.q0, op.q1, op.m.data());
        return;
      case KernelKind::Dense:
        k.applyDense(amps, n_qubits, op.dense, op.qubits);
        return;
    }
    throw std::logic_error("executeOp: unknown kernel kind");
}

std::size_t
opGroupCount(const KernelOp &op, std::size_t n_qubits)
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    switch (op.kind) {
      case KernelKind::OneQ:
      case KernelKind::OneQDiag:
        return dim >> 1;
      case KernelKind::TwoQ:
      case KernelKind::TwoQDiag:
        return dim >> 2;
      case KernelKind::Dense:
        return dim >> op.qubits.size();
    }
    throw std::logic_error("opGroupCount: unknown kernel kind");
}

void
executeOpRange(const KernelOp &op, Complex *amps, std::size_t n_qubits,
               std::size_t group_begin, std::size_t group_end)
{
    const KernelTable &k = activeKernels();
    switch (op.kind) {
      case KernelKind::OneQ:
        k.apply1qRange(amps, n_qubits, op.q0, op.m.data(), group_begin,
                       group_end);
        return;
      case KernelKind::OneQDiag:
        k.apply1qDiagRange(amps, n_qubits, op.q0, op.m[0], op.m[1],
                           group_begin, group_end);
        return;
      case KernelKind::TwoQ:
        k.apply2qRange(amps, n_qubits, op.q0, op.q1, op.m.data(),
                       group_begin, group_end);
        return;
      case KernelKind::TwoQDiag:
        k.apply2qDiagRange(amps, n_qubits, op.q0, op.q1, op.m.data(),
                           group_begin, group_end);
        return;
      case KernelKind::Dense:
        k.applyDenseRange(amps, n_qubits, op.dense, op.qubits, group_begin,
                          group_end);
        return;
    }
    throw std::logic_error("executeOpRange: unknown kernel kind");
}

namespace {

/**
 * Chunk-boundary granule, in groups. 64 groups keep every chunk
 * boundary cache-line-aligned in amplitude space (a pair/quad group's
 * contiguous sub-runs start at multiples of the granule times the run
 * stride, and 64 x 16 B covers a 64 B line at every stride) and a
 * whole SIMD vector wide.
 */
constexpr std::size_t kChunkGranule = 64;

/** Below this many groups a sweep stays serial: fork/join overhead
 *  (~µs) would rival the sweep itself. */
constexpr std::size_t kMinParallelGroups = 1024;

/** Tasks per worker the auto chunk size aims for (load balance vs.
 *  scheduling overhead). */
constexpr std::size_t kTasksPerThread = 4;

std::size_t
chunkFor(std::size_t groups, std::size_t workers, std::size_t requested)
{
    std::size_t chunk = requested;
    if (chunk == 0)
        chunk = groups / (workers * kTasksPerThread);
    if (chunk < kChunkGranule)
        chunk = kChunkGranule;
    return (chunk + kChunkGranule - 1) / kChunkGranule * kChunkGranule;
}

} // namespace

void
executeOp(const KernelOp &op, Complex *amps, std::size_t n_qubits,
          const ExecOptions &opts)
{
    OBS_SPAN("sim.sweep");
    ThreadPool *pool = opts.pool;
    const std::size_t groups = opGroupCount(op, n_qubits);
    if (pool == nullptr || pool->size() <= 1 ||
        groups < kMinParallelGroups) {
        executeOp(op, amps, n_qubits);
        return;
    }
    const std::size_t chunk = chunkFor(groups, pool->size(), opts.chunk);
    const std::size_t tasks = (groups + chunk - 1) / chunk;
    OBS_COUNT("sim.chunks", tasks);
    pool->parallelFor(tasks, [&](std::size_t t) {
        const std::size_t g0 = t * chunk;
        const std::size_t g1 = g0 + chunk < groups ? g0 + chunk : groups;
        executeOpRange(op, amps, n_qubits, g0, g1);
    });
}

void
executeOpBatched(const KernelOp &op, BatchState &batch)
{
    double *re = batch.re();
    double *im = batch.im();
    const std::size_t n = batch.numQubits();
    const std::size_t b = batch.batch();
    const std::size_t dim = std::size_t{1} << n;
    const KernelTable &k = activeKernels();
    switch (op.kind) {
      case KernelKind::OneQ:
        k.apply1qBatchRange(re, im, n, b, op.q0, op.m.data(), 0, dim >> 1);
        return;
      case KernelKind::OneQDiag:
        k.apply1qDiagBatchRange(re, im, n, b, op.q0, op.m[0], op.m[1], 0,
                                dim >> 1);
        return;
      case KernelKind::TwoQ:
        k.apply2qBatchRange(re, im, n, b, op.q0, op.q1, op.m.data(), 0,
                            dim >> 2);
        return;
      case KernelKind::TwoQDiag:
        k.apply2qDiagBatchRange(re, im, n, b, op.q0, op.q1, op.m.data(), 0,
                                dim >> 2);
        return;
      case KernelKind::Dense:
        k.applyDenseBatchRange(re, im, n, b, op.dense, op.qubits, 0,
                               dim >> op.qubits.size());
        return;
    }
    throw std::logic_error("executeOpBatched: unknown kernel kind");
}

void
executeOpBatchedRange(const KernelOp &op, BatchState &batch,
                      std::size_t group_begin, std::size_t group_end)
{
    double *re = batch.re();
    double *im = batch.im();
    const std::size_t n = batch.numQubits();
    const std::size_t b = batch.batch();
    const KernelTable &k = activeKernels();
    switch (op.kind) {
      case KernelKind::OneQ:
        k.apply1qBatchRange(re, im, n, b, op.q0, op.m.data(), group_begin,
                            group_end);
        return;
      case KernelKind::OneQDiag:
        k.apply1qDiagBatchRange(re, im, n, b, op.q0, op.m[0], op.m[1],
                                group_begin, group_end);
        return;
      case KernelKind::TwoQ:
        k.apply2qBatchRange(re, im, n, b, op.q0, op.q1, op.m.data(),
                            group_begin, group_end);
        return;
      case KernelKind::TwoQDiag:
        k.apply2qDiagBatchRange(re, im, n, b, op.q0, op.q1, op.m.data(),
                                group_begin, group_end);
        return;
      case KernelKind::Dense:
        k.applyDenseBatchRange(re, im, n, b, op.dense, op.qubits,
                               group_begin, group_end);
        return;
    }
    throw std::logic_error("executeOpBatchedRange: unknown kernel kind");
}

void
executeOpBatched(const KernelOp &op, BatchState &batch,
                 const ExecOptions &opts)
{
    OBS_SPAN("sim.sweep_batched");
    ThreadPool *pool = opts.pool;
    const std::size_t groups = opGroupCount(op, batch.numQubits());
    // Each group carries batch() lanes of work, so the serial cutoff
    // scales down with the batch width (but never below one granule).
    const std::size_t scaled = kMinParallelGroups / batch.batch();
    const std::size_t minGroups =
        scaled > kChunkGranule ? scaled : kChunkGranule;
    if (pool == nullptr || pool->size() <= 1 || groups < minGroups) {
        executeOpBatched(op, batch);
        return;
    }
    const std::size_t chunk = chunkFor(groups, pool->size(), opts.chunk);
    const std::size_t tasks = (groups + chunk - 1) / chunk;
    OBS_COUNT("sim.chunks", tasks);
    pool->parallelFor(tasks, [&](std::size_t t) {
        const std::size_t g0 = t * chunk;
        const std::size_t g1 = g0 + chunk < groups ? g0 + chunk : groups;
        executeOpBatchedRange(op, batch, g0, g1);
    });
}

void
executeBlockedRange(const Plan &plan, std::size_t op_begin,
                    std::size_t op_end, Complex *amps,
                    std::size_t block_qubits, std::size_t block_begin,
                    std::size_t block_end)
{
    const std::size_t n = plan.numQubits();
    if (block_qubits == 0 || block_qubits > n)
        throw std::invalid_argument(
            "executeBlockedRange: block_qubits must lie in [1, plan width]");
    if (op_begin > op_end || op_end > plan.ops().size())
        throw std::invalid_argument(
            "executeBlockedRange: op interval out of range");
    const std::size_t blocks = plan.dim() >> block_qubits;
    if (block_begin > block_end || block_end > blocks)
        throw std::invalid_argument(
            "executeBlockedRange: block interval out of range");
    for (std::size_t i = op_begin; i < op_end; ++i)
        if (plan.minBlockBits()[i] > block_qubits)
            throw std::invalid_argument(
                "executeBlockedRange: op not blockable at this exponent");
    const std::size_t blockDim = std::size_t{1} << block_qubits;
    for (std::size_t b = block_begin; b < block_end; ++b) {
        OBS_SPAN("sim.block");
        // A blockable op's groups tile the index space in block order:
        // block b owns groups [b * perBlock, (b + 1) * perBlock), so
        // the per-op Range kernels replay the serial sweep exactly.
        for (std::size_t i = op_begin; i < op_end; ++i) {
            const KernelOp &op = plan.ops()[i];
            const std::size_t perBlock = blockDim >> opGroupBits(op);
            executeOpRange(op, amps, n, b * perBlock, (b + 1) * perBlock);
        }
    }
}

namespace {

/** executeBlockedRange's loop nest on a SoA batch (inputs validated by
 *  the executeBlockedBatched caller). */
void
blockedBatchedRange(const Plan &plan, std::size_t op_begin,
                    std::size_t op_end, BatchState &batch,
                    std::size_t block_qubits, std::size_t block_begin,
                    std::size_t block_end)
{
    const std::size_t blockDim = std::size_t{1} << block_qubits;
    for (std::size_t b = block_begin; b < block_end; ++b) {
        OBS_SPAN("sim.block");
        for (std::size_t i = op_begin; i < op_end; ++i) {
            const KernelOp &op = plan.ops()[i];
            const std::size_t perBlock = blockDim >> opGroupBits(op);
            executeOpBatchedRange(op, batch, b * perBlock,
                                  (b + 1) * perBlock);
        }
    }
}

/** One blockable segment, block-outer, blocks spread over the pool.
 *  Blockable ops never couple amplitudes across block boundaries, so
 *  the tasks write disjoint amplitude ranges. */
void
runBlockedSegment(const Plan &plan, const BlockSegment &seg, Complex *amps,
                  std::size_t block_qubits, const ExecOptions &opts)
{
    OBS_SPAN("sim.segment");
    const std::size_t blocks = plan.dim() >> block_qubits;
    ThreadPool *pool = opts.pool;
    if (pool == nullptr || pool->size() <= 1 || blocks < 2 ||
        (plan.dim() >> 1) < kMinParallelGroups) {
        executeBlockedRange(plan, seg.first, seg.first + seg.count, amps,
                            block_qubits, 0, blocks);
        return;
    }
    std::size_t per = blocks / (pool->size() * kTasksPerThread);
    if (per == 0)
        per = 1;
    const std::size_t tasks = (blocks + per - 1) / per;
    OBS_COUNT("sim.block_tasks", tasks);
    pool->parallelFor(tasks, [&](std::size_t t) {
        const std::size_t b0 = t * per;
        const std::size_t b1 = b0 + per < blocks ? b0 + per : blocks;
        executeBlockedRange(plan, seg.first, seg.first + seg.count, amps,
                            block_qubits, b0, b1);
    });
}

/** runBlockedSegment on a SoA batch; the serial cutoff scales down
 *  with the lane count exactly as executeOpBatched's does. */
void
runBlockedSegmentBatched(const Plan &plan, const BlockSegment &seg,
                         BatchState &batch, std::size_t block_qubits,
                         const ExecOptions &opts)
{
    OBS_SPAN("sim.segment");
    const std::size_t blocks = plan.dim() >> block_qubits;
    const std::size_t scaled = kMinParallelGroups / batch.batch();
    const std::size_t minGroups =
        scaled > kChunkGranule ? scaled : kChunkGranule;
    ThreadPool *pool = opts.pool;
    if (pool == nullptr || pool->size() <= 1 || blocks < 2 ||
        (plan.dim() >> 1) < minGroups) {
        blockedBatchedRange(plan, seg.first, seg.first + seg.count, batch,
                            block_qubits, 0, blocks);
        return;
    }
    std::size_t per = blocks / (pool->size() * kTasksPerThread);
    if (per == 0)
        per = 1;
    const std::size_t tasks = (blocks + per - 1) / per;
    OBS_COUNT("sim.block_tasks", tasks);
    pool->parallelFor(tasks, [&](std::size_t t) {
        const std::size_t b0 = t * per;
        const std::size_t b1 = b0 + per < blocks ? b0 + per : blocks;
        blockedBatchedRange(plan, seg.first, seg.first + seg.count, batch,
                            block_qubits, b0, b1);
    });
}

} // namespace

void
executeBlocked(const Plan &plan, Complex *amps, std::size_t block_qubits,
               const ExecOptions &opts)
{
    const std::size_t n = plan.numQubits();
    if (block_qubits == 0 || block_qubits > n)
        throw std::invalid_argument(
            "executeBlocked: block_qubits must lie in [1, plan width]");
    OBS_SPAN("sim.plan");
    const std::vector<BlockSegment> segments =
        blockSegments(plan, block_qubits);
    std::optional<ThreadPool> transient;
    ExecOptions resolved = opts;
    if (resolved.pool == nullptr && opts.threads != 1) {
        transient.emplace(opts.threads);
        resolved.pool = &*transient;
    }
    for (const BlockSegment &seg : segments) {
        if (seg.blockable) {
            runBlockedSegment(plan, seg, amps, block_qubits, resolved);
            continue;
        }
        // Ops coupling amplitudes across blocks run as ordinary
        // whole-register sweeps — barriers between blockable segments.
        for (std::size_t i = seg.first; i < seg.first + seg.count; ++i)
            executeOp(plan.ops()[i], amps, n, resolved);
    }
}

void
executeBlockedBatched(const Plan &plan, BatchState &batch,
                      std::size_t block_qubits, const ExecOptions &opts)
{
    if (batch.numQubits() != plan.numQubits())
        throw std::invalid_argument(
            "executeBlockedBatched: batch width does not match plan width");
    if (block_qubits == 0 || block_qubits > plan.numQubits())
        throw std::invalid_argument(
            "executeBlockedBatched: block_qubits must lie in [1, plan "
            "width]");
    OBS_SPAN("sim.plan_batched");
    const std::vector<BlockSegment> segments =
        blockSegments(plan, block_qubits);
    std::optional<ThreadPool> transient;
    ExecOptions resolved = opts;
    if (resolved.pool == nullptr && opts.threads != 1) {
        transient.emplace(opts.threads);
        resolved.pool = &*transient;
    }
    for (const BlockSegment &seg : segments) {
        if (seg.blockable) {
            runBlockedSegmentBatched(plan, seg, batch, block_qubits,
                                     resolved);
            continue;
        }
        for (std::size_t i = seg.first; i < seg.first + seg.count; ++i)
            executeOpBatched(plan.ops()[i], batch, resolved);
    }
}

void
executeBatched(const Plan &plan, BatchState &batch, const ExecOptions &opts)
{
    // Sharding first: block exponents then apply within each shard's
    // slice. The sharded path compiles its own schedule and never
    // re-enters here with shardBits set.
    const std::size_t shards =
        resolveShardBits(opts.shardBits, plan.numQubits());
    if (shards != 0) {
        executeShardedBatched(compileSharded(plan, shards), batch, opts);
        return;
    }
    const std::size_t block =
        resolveBlockQubits(opts.blockQubits, plan.numQubits());
    if (block != 0) {
        executeBlockedBatched(plan, batch, block, opts);
        return;
    }
    if (batch.numQubits() != plan.numQubits())
        throw std::invalid_argument(
            "executeBatched: batch width does not match plan width");
    OBS_SPAN("sim.plan_batched");
    if (opts.pool == nullptr && opts.threads == 1) {
        for (const KernelOp &op : plan.ops())
            executeOpBatched(op, batch);
        return;
    }
    std::optional<ThreadPool> transient;
    ExecOptions resolved = opts;
    if (resolved.pool == nullptr) {
        transient.emplace(opts.threads);
        resolved.pool = &*transient;
    }
    for (const KernelOp &op : plan.ops())
        executeOpBatched(op, batch, resolved);
}

void
execute(const Plan &plan, Complex *amps)
{
    OBS_SPAN("sim.plan");
    for (const KernelOp &op : plan.ops())
        executeOp(op, amps, plan.numQubits());
}

void
execute(const Plan &plan, Complex *amps, const ExecOptions &opts)
{
    // Sharding first, as in executeBatched.
    const std::size_t shards =
        resolveShardBits(opts.shardBits, plan.numQubits());
    if (shards != 0) {
        executeSharded(compileSharded(plan, shards), amps, opts);
        return;
    }
    const std::size_t block =
        resolveBlockQubits(opts.blockQubits, plan.numQubits());
    if (block != 0) {
        executeBlocked(plan, amps, block, opts);
        return;
    }
    if (opts.pool == nullptr && opts.threads == 1) {
        execute(plan, amps);
        return;
    }
    OBS_SPAN("sim.plan");
    // One transient pool serves every sweep of this execution when the
    // caller did not provide one (opts.threads == 0 = hardware).
    std::optional<ThreadPool> transient;
    ExecOptions resolved = opts;
    if (resolved.pool == nullptr) {
        transient.emplace(opts.threads);
        resolved.pool = &*transient;
    }
    for (const KernelOp &op : plan.ops())
        executeOp(op, amps, plan.numQubits(), resolved);
}

void
Plan::execute(Complex *amps, const ExecOptions &opts) const
{
    sim::execute(*this, amps, opts);
}

linalg::CVector
run(const Plan &plan)
{
    linalg::CVector amps(plan.dim(), Complex{0.0, 0.0});
    amps[0] = 1.0;
    execute(plan, amps.data());
    return amps;
}

linalg::CVector
run(const Plan &plan, const ExecOptions &opts)
{
    linalg::CVector amps(plan.dim(), Complex{0.0, 0.0});
    amps[0] = 1.0;
    execute(plan, amps.data(), opts);
    return amps;
}

} // namespace sim
} // namespace crisc

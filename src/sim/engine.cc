#include "engine.hh"

#include <optional>
#include <stdexcept>

#include "obs/obs.hh"

namespace crisc {
namespace sim {

namespace {

using Mat2 = std::array<Complex, 4>;
using Mat4 = std::array<Complex, 16>;

bool
isDiag2(const Mat2 &m)
{
    return m[1] == Complex{0.0, 0.0} && m[2] == Complex{0.0, 0.0};
}

bool
isDiag4(const Mat4 &m)
{
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            if (r != c && m[r * 4 + c] != Complex{0.0, 0.0})
                return false;
    return true;
}

/** Kronecker product a (x) b with a on the most significant qubit. */
Mat4
kron2(const Mat2 &a, const Mat2 &b)
{
    Mat4 k;
    for (std::size_t i0 = 0; i0 < 2; ++i0)
        for (std::size_t i1 = 0; i1 < 2; ++i1)
            for (std::size_t j0 = 0; j0 < 2; ++j0)
                for (std::size_t j1 = 0; j1 < 2; ++j1)
                    k[(i0 * 2 + i1) * 4 + (j0 * 2 + j1)] =
                        a[i0 * 2 + j0] * b[i1 * 2 + j1];
    return k;
}

/** Row-major 4x4 product a * b. */
Mat4
matmul4(const Mat4 &a, const Mat4 &b)
{
    Mat4 c{};
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t t = 0; t < 4; ++t)
            for (std::size_t j = 0; j < 4; ++j)
                c[r * 4 + j] += a[r * 4 + t] * b[t * 4 + j];
    return c;
}

/** Pending fused 1q gate on one qubit during compilation. */
struct Pending
{
    Mat2 m;
    std::size_t absorbed = 0; ///< source gates merged beyond the first.
};

class Compiler
{
  public:
    Compiler(std::size_t n, const CompileOptions &opts)
        : opts_(opts), pending_(n)
    {
    }

    void addGate(const circuit::Gate &g)
    {
        ++stats_.sourceGates;
        if (g.qubits.size() == 1) {
            addOneQ(g);
            return;
        }
        if (g.qubits.size() == 2) {
            // addTwoQ consumes the operand qubits' pending 1q products
            // itself when 2q fusion is on; flushing here would force
            // them into separate pair sweeps.
            if (!opts_.fuseTwoQubit)
                for (std::size_t q : g.qubits)
                    flush(q);
            addTwoQ(g);
            return;
        }
        for (std::size_t q : g.qubits)
            flush(q);
        addDense(g);
    }

    Plan finish(std::size_t n)
    {
        for (std::size_t q = 0; q < pending_.size(); ++q)
            flush(q);
        stats_.kernelOps = ops_.size();
        return Plan(n, std::move(ops_), stats_);
    }

  private:
    void addOneQ(const circuit::Gate &g)
    {
        const std::size_t q = g.qubits[0];
        const Mat2 gm{g.op(0, 0), g.op(0, 1), g.op(1, 0), g.op(1, 1)};
        std::optional<Pending> &slot = pending_[q];
        if (!slot) {
            slot = Pending{gm, 0};
        } else {
            // Gate acts after the pending product: new = g * pending.
            const Mat2 &p = slot->m;
            slot->m = {gm[0] * p[0] + gm[1] * p[2],
                       gm[0] * p[1] + gm[1] * p[3],
                       gm[2] * p[0] + gm[3] * p[2],
                       gm[2] * p[1] + gm[3] * p[3]};
            ++slot->absorbed;
        }
        if (!opts_.fuseSingleQubit)
            flush(q);
    }

    void addTwoQ(const circuit::Gate &g)
    {
        Mat4 m;
        for (std::size_t r = 0; r < 4; ++r)
            for (std::size_t c = 0; c < 4; ++c)
                m[r * 4 + c] = g.op(r, c);

        if (opts_.fuseTwoQubit) {
            // Fold pending 1q products on the operand qubits into the
            // quad: the pendings act first, so m <- m * (u_hi (x) u_lo).
            std::optional<Pending> &hi = pending_[g.qubits[0]];
            std::optional<Pending> &lo = pending_[g.qubits[1]];
            if (hi || lo) {
                const Mat2 id{Complex{1.0, 0.0}, Complex{0.0, 0.0},
                              Complex{0.0, 0.0}, Complex{1.0, 0.0}};
                m = matmul4(m, kron2(hi ? hi->m : id, lo ? lo->m : id));
                for (std::optional<Pending> *slot : {&hi, &lo}) {
                    if (!*slot)
                        continue;
                    stats_.fusedGates += 1 + (*slot)->absorbed;
                    ++stats_.fusedInto2q;
                    slot->reset();
                }
            }
        }

        KernelOp op;
        op.q0 = g.qubits[0];
        op.q1 = g.qubits[1];
        if (isDiag4(m)) {
            op.kind = KernelKind::TwoQDiag;
            op.m = {m[0], m[5], m[10], m[15]};
            ++stats_.diagOps;
        } else {
            op.kind = KernelKind::TwoQ;
            op.m = m;
        }
        ops_.push_back(std::move(op));
    }

    void addDense(const circuit::Gate &g)
    {
        KernelOp op;
        op.kind = KernelKind::Dense;
        op.dense = g.op;
        op.qubits = g.qubits;
        ++stats_.denseOps;
        ops_.push_back(std::move(op));
    }

    void flush(std::size_t q)
    {
        std::optional<Pending> &slot = pending_[q];
        if (!slot)
            return;
        KernelOp op;
        op.q0 = q;
        if (isDiag2(slot->m)) {
            op.kind = KernelKind::OneQDiag;
            op.m[0] = slot->m[0];
            op.m[1] = slot->m[3];
            ++stats_.diagOps;
        } else {
            op.kind = KernelKind::OneQ;
            for (std::size_t i = 0; i < 4; ++i)
                op.m[i] = slot->m[i];
        }
        stats_.fusedGates += slot->absorbed;
        ops_.push_back(std::move(op));
        slot.reset();
    }

    const CompileOptions &opts_;
    std::vector<std::optional<Pending>> pending_;
    std::vector<KernelOp> ops_;
    PlanStats stats_;
};

} // namespace

Plan
compile(const circuit::Circuit &c, const CompileOptions &opts)
{
    OBS_SPAN("sim.compile");
    Compiler compiler(c.numQubits(), opts);
    for (const circuit::Gate &g : c.gates())
        compiler.addGate(g);
    Plan plan = compiler.finish(c.numQubits());
    OBS_COUNT("sim.fused_1q", plan.stats().fusedGates);
    OBS_COUNT("sim.fused_2q", plan.stats().fusedInto2q);
    return plan;
}

void
executeOp(const KernelOp &op, Complex *amps, std::size_t n_qubits)
{
    switch (op.kind) {
      case KernelKind::OneQ:
        apply1q(amps, n_qubits, op.q0, op.m.data());
        return;
      case KernelKind::OneQDiag:
        apply1qDiag(amps, n_qubits, op.q0, op.m[0], op.m[1]);
        return;
      case KernelKind::TwoQ:
        apply2q(amps, n_qubits, op.q0, op.q1, op.m.data());
        return;
      case KernelKind::TwoQDiag:
        apply2qDiag(amps, n_qubits, op.q0, op.q1, op.m.data());
        return;
      case KernelKind::Dense:
        applyDense(amps, n_qubits, op.dense, op.qubits);
        return;
    }
    throw std::logic_error("executeOp: unknown kernel kind");
}

std::size_t
opGroupCount(const KernelOp &op, std::size_t n_qubits)
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    switch (op.kind) {
      case KernelKind::OneQ:
      case KernelKind::OneQDiag:
        return dim >> 1;
      case KernelKind::TwoQ:
      case KernelKind::TwoQDiag:
        return dim >> 2;
      case KernelKind::Dense:
        return dim >> op.qubits.size();
    }
    throw std::logic_error("opGroupCount: unknown kernel kind");
}

void
executeOpRange(const KernelOp &op, Complex *amps, std::size_t n_qubits,
               std::size_t group_begin, std::size_t group_end)
{
    switch (op.kind) {
      case KernelKind::OneQ:
        apply1qRange(amps, n_qubits, op.q0, op.m.data(), group_begin,
                     group_end);
        return;
      case KernelKind::OneQDiag:
        apply1qDiagRange(amps, n_qubits, op.q0, op.m[0], op.m[1],
                         group_begin, group_end);
        return;
      case KernelKind::TwoQ:
        apply2qRange(amps, n_qubits, op.q0, op.q1, op.m.data(),
                     group_begin, group_end);
        return;
      case KernelKind::TwoQDiag:
        apply2qDiagRange(amps, n_qubits, op.q0, op.q1, op.m.data(),
                         group_begin, group_end);
        return;
      case KernelKind::Dense:
        applyDenseRange(amps, n_qubits, op.dense, op.qubits, group_begin,
                        group_end);
        return;
    }
    throw std::logic_error("executeOpRange: unknown kernel kind");
}

namespace {

/**
 * Chunk-boundary granule, in groups. 64 groups keep every chunk
 * boundary cache-line-aligned in amplitude space (a pair/quad group's
 * contiguous sub-runs start at multiples of the granule times the run
 * stride, and 64 x 16 B covers a 64 B line at every stride) and a
 * whole SIMD vector wide.
 */
constexpr std::size_t kChunkGranule = 64;

/** Below this many groups a sweep stays serial: fork/join overhead
 *  (~µs) would rival the sweep itself. */
constexpr std::size_t kMinParallelGroups = 1024;

/** Tasks per worker the auto chunk size aims for (load balance vs.
 *  scheduling overhead). */
constexpr std::size_t kTasksPerThread = 4;

std::size_t
chunkFor(std::size_t groups, std::size_t workers, std::size_t requested)
{
    std::size_t chunk = requested;
    if (chunk == 0)
        chunk = groups / (workers * kTasksPerThread);
    if (chunk < kChunkGranule)
        chunk = kChunkGranule;
    return (chunk + kChunkGranule - 1) / kChunkGranule * kChunkGranule;
}

} // namespace

void
executeOp(const KernelOp &op, Complex *amps, std::size_t n_qubits,
          const ExecOptions &opts)
{
    OBS_SPAN("sim.sweep");
    ThreadPool *pool = opts.pool;
    const std::size_t groups = opGroupCount(op, n_qubits);
    if (pool == nullptr || pool->size() <= 1 ||
        groups < kMinParallelGroups) {
        executeOp(op, amps, n_qubits);
        return;
    }
    const std::size_t chunk = chunkFor(groups, pool->size(), opts.chunk);
    const std::size_t tasks = (groups + chunk - 1) / chunk;
    OBS_COUNT("sim.chunks", tasks);
    pool->parallelFor(tasks, [&](std::size_t t) {
        const std::size_t g0 = t * chunk;
        const std::size_t g1 = g0 + chunk < groups ? g0 + chunk : groups;
        executeOpRange(op, amps, n_qubits, g0, g1);
    });
}

void
executeOpBatched(const KernelOp &op, BatchState &batch)
{
    double *re = batch.re();
    double *im = batch.im();
    const std::size_t n = batch.numQubits();
    const std::size_t b = batch.batch();
    switch (op.kind) {
      case KernelKind::OneQ:
        apply1qBatch(re, im, n, b, op.q0, op.m.data());
        return;
      case KernelKind::OneQDiag:
        apply1qDiagBatch(re, im, n, b, op.q0, op.m[0], op.m[1]);
        return;
      case KernelKind::TwoQ:
        apply2qBatch(re, im, n, b, op.q0, op.q1, op.m.data());
        return;
      case KernelKind::TwoQDiag:
        apply2qDiagBatch(re, im, n, b, op.q0, op.q1, op.m.data());
        return;
      case KernelKind::Dense:
        applyDenseBatch(re, im, n, b, op.dense, op.qubits);
        return;
    }
    throw std::logic_error("executeOpBatched: unknown kernel kind");
}

void
executeOpBatchedRange(const KernelOp &op, BatchState &batch,
                      std::size_t group_begin, std::size_t group_end)
{
    double *re = batch.re();
    double *im = batch.im();
    const std::size_t n = batch.numQubits();
    const std::size_t b = batch.batch();
    switch (op.kind) {
      case KernelKind::OneQ:
        apply1qBatchRange(re, im, n, b, op.q0, op.m.data(), group_begin,
                          group_end);
        return;
      case KernelKind::OneQDiag:
        apply1qDiagBatchRange(re, im, n, b, op.q0, op.m[0], op.m[1],
                              group_begin, group_end);
        return;
      case KernelKind::TwoQ:
        apply2qBatchRange(re, im, n, b, op.q0, op.q1, op.m.data(),
                          group_begin, group_end);
        return;
      case KernelKind::TwoQDiag:
        apply2qDiagBatchRange(re, im, n, b, op.q0, op.q1, op.m.data(),
                              group_begin, group_end);
        return;
      case KernelKind::Dense:
        applyDenseBatchRange(re, im, n, b, op.dense, op.qubits,
                             group_begin, group_end);
        return;
    }
    throw std::logic_error("executeOpBatchedRange: unknown kernel kind");
}

void
executeOpBatched(const KernelOp &op, BatchState &batch,
                 const ExecOptions &opts)
{
    OBS_SPAN("sim.sweep_batched");
    ThreadPool *pool = opts.pool;
    const std::size_t groups = opGroupCount(op, batch.numQubits());
    // Each group carries batch() lanes of work, so the serial cutoff
    // scales down with the batch width (but never below one granule).
    const std::size_t scaled = kMinParallelGroups / batch.batch();
    const std::size_t minGroups =
        scaled > kChunkGranule ? scaled : kChunkGranule;
    if (pool == nullptr || pool->size() <= 1 || groups < minGroups) {
        executeOpBatched(op, batch);
        return;
    }
    const std::size_t chunk = chunkFor(groups, pool->size(), opts.chunk);
    const std::size_t tasks = (groups + chunk - 1) / chunk;
    OBS_COUNT("sim.chunks", tasks);
    pool->parallelFor(tasks, [&](std::size_t t) {
        const std::size_t g0 = t * chunk;
        const std::size_t g1 = g0 + chunk < groups ? g0 + chunk : groups;
        executeOpBatchedRange(op, batch, g0, g1);
    });
}

void
executeBatched(const Plan &plan, BatchState &batch, const ExecOptions &opts)
{
    if (batch.numQubits() != plan.numQubits())
        throw std::invalid_argument(
            "executeBatched: batch width does not match plan width");
    OBS_SPAN("sim.plan_batched");
    if (opts.pool == nullptr && opts.threads == 1) {
        for (const KernelOp &op : plan.ops())
            executeOpBatched(op, batch);
        return;
    }
    std::optional<ThreadPool> transient;
    ExecOptions resolved = opts;
    if (resolved.pool == nullptr) {
        transient.emplace(opts.threads);
        resolved.pool = &*transient;
    }
    for (const KernelOp &op : plan.ops())
        executeOpBatched(op, batch, resolved);
}

void
execute(const Plan &plan, Complex *amps)
{
    OBS_SPAN("sim.plan");
    for (const KernelOp &op : plan.ops())
        executeOp(op, amps, plan.numQubits());
}

void
execute(const Plan &plan, Complex *amps, const ExecOptions &opts)
{
    if (opts.pool == nullptr && opts.threads == 1) {
        execute(plan, amps);
        return;
    }
    OBS_SPAN("sim.plan");
    // One transient pool serves every sweep of this execution when the
    // caller did not provide one (opts.threads == 0 = hardware).
    std::optional<ThreadPool> transient;
    ExecOptions resolved = opts;
    if (resolved.pool == nullptr) {
        transient.emplace(opts.threads);
        resolved.pool = &*transient;
    }
    for (const KernelOp &op : plan.ops())
        executeOp(op, amps, plan.numQubits(), resolved);
}

void
Plan::execute(Complex *amps, const ExecOptions &opts) const
{
    sim::execute(*this, amps, opts);
}

linalg::CVector
run(const Plan &plan)
{
    linalg::CVector amps(plan.dim(), Complex{0.0, 0.0});
    amps[0] = 1.0;
    execute(plan, amps.data());
    return amps;
}

linalg::CVector
run(const Plan &plan, const ExecOptions &opts)
{
    linalg::CVector amps(plan.dim(), Complex{0.0, 0.0});
    amps[0] = 1.0;
    execute(plan, amps.data(), opts);
    return amps;
}

} // namespace sim
} // namespace crisc

/**
 * @file
 * Sharded statevector execution: one register of width n split into
 * S = 2^s shards keyed by the top s amplitude bits — under the
 * library's qubit-0-is-MSB convention those are qubits 0..s-1 — with
 * each shard owning the contiguous slice of 2^(n-s) amplitudes whose
 * global indices share that shard's top bits. A shard's slice, read as
 * a register of width n-s, addresses exactly the same index bits the
 * full register does for qubits >= s (qubit q becomes local qubit
 * q - s), so every op whose targets all lie at or above s runs on the
 * existing *Range kernels completely unchanged — blocked nests, SoA
 * batching, and runtime ISA dispatch included.
 *
 * compileSharded is the shard-scheduling pass: it walks a compiled
 * Plan once, batches maximal runs of shard-local ops into width-(n-s)
 * sub-plans, and lowers every shard-crossing op into one of three
 * step kinds:
 *
 *   - Diag: a diagonal op with shard-bit targets needs no amplitude
 *     motion at all — a shard-bit target selects diagonal entries per
 *     shard (every amplitude of a shard agrees on that bit), so the op
 *     degenerates to a per-shard local diagonal or a whole-slice
 *     scale. Zero transport bytes.
 *   - Exchange: a non-diagonal op with exactly one shard-bit target
 *     pairs shards along that bit; each pair swaps full slices through
 *     the Transport and every shard then computes its own output rows
 *     from its slice plus the received one, replaying the serial
 *     kernel's per-amplitude IEEE expression exactly. Costs
 *     2 * 2^(n-s) * 16 bytes per shard pair per op.
 *   - Remap: swap a shard bit with a cold local bit — a pure bit
 *     permutation of the index space, so each shard ships only the
 *     half-slice whose local bit disagrees with its shard bit (half
 *     the bytes of an Exchange) and no arithmetic happens at all. The
 *     pass tracks the resulting logical-to-physical layout exactly
 *     like the Route pass tracks its qubit map, rewrites later ops
 *     into the current frame, and emits closing remaps so the final
 *     layout is canonical again.
 *
 * Lowering policy (ShardOptions::lowering): Auto remaps a crossing
 * qubit out of the shard bits when it has at least one more
 * non-diagonal use later in the plan — the remap's half-slice cost is
 * amortized across every later op that thereby became local — and
 * exchanges one-shot crossings; NaiveExchange exchanges every crossing
 * (the baseline the benchmark compares against). Ops that cannot
 * exchange (Dense, or a 4x4 with both targets on shard bits) always
 * remap out. PlanStats::exchangeOps / remapOps count the lowered
 * steps.
 *
 * The contract is the library-wide one: executeSharded produces
 * bit-identical amplitudes to serial execution of the same plan for
 * every shard count, thread count, SoA lane count, block exponent,
 * and forced ISA backend. Exchange updates replicate the serial
 * kernels' per-amplitude expression order, remaps and diag selections
 * perform no reordering arithmetic at all, and local steps *are* the
 * ordinary kernels.
 */

#ifndef CRISC_SIM_SHARD_HH
#define CRISC_SIM_SHARD_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/engine.hh"
#include "sim/transport.hh"

namespace crisc {
namespace sim {

/** How compileSharded lowers shard-crossing ops. */
enum class ShardLowering
{
    /** Remap multi-use crossing qubits to local bits, exchange
     *  one-shot crossings: minimizes transported bytes. */
    Auto,
    /** Exchange every crossing that can exchange; remap only when
     *  forced (Dense, both-shard-bit 4x4). The benchmark baseline. */
    NaiveExchange,
};

/** Options for compileSharded. */
struct ShardOptions
{
    ShardLowering lowering = ShardLowering::Auto;
};

/** Step kinds of a sharded schedule. */
enum class ShardStepKind
{
    Local,    ///< run of shard-local ops as a width-(n-s) sub-plan.
    Diag,     ///< diagonal op with shard-bit targets; no transport.
    Exchange, ///< pairwise full-slice exchange + local update.
    Remap,    ///< shard-bit/local-bit swap; half-slice permutation.
};

/**
 * One step of a sharded schedule. Gate-target fields hold *physical
 * positions* in [0, n): position j addresses global index bit n-1-j,
 * positions below s are shard bits, and the compile-time layout
 * tracking has already folded every remap into them.
 */
struct ShardStep
{
    ShardStepKind kind = ShardStepKind::Local;

    /** Local: the sub-plan (width n-s) every shard executes. */
    std::shared_ptr<const Plan> local;

    /** Diag / Exchange: the lowered op's kind and matrix (diagonal
     *  entries in m[0..1] / m[0..3] for diag kinds, the dense 2x2 /
     *  4x4 otherwise). */
    KernelKind opKind = KernelKind::OneQ;
    std::array<Complex, 16> m{};
    /** Diag / Exchange: physical position of the op's most significant
     *  gate qubit (q0), and of q1 for two-qubit kinds. */
    std::size_t posHi = 0;
    std::size_t posLo = 0;

    /** Exchange: the crossing target's shard position (< s). */
    std::size_t shardPos = 0;
    /** Exchange (TwoQ): the other target's local position (>= s). */
    std::size_t localPos = 0;
    /** Exchange (TwoQ): true when q0 (the most significant gate qubit)
     *  is the shard-side target. */
    bool hiIsShard = false;

    /** Remap: the swapped shard position (< s) and local position
     *  (>= s). */
    std::size_t remapShardPos = 0;
    std::size_t remapLocalPos = 0;
};

/** A compiled sharded schedule for a fixed (width, shard count). */
class ShardPlan
{
  public:
    ShardPlan(std::size_t num_qubits, std::size_t shard_bits,
              std::vector<ShardStep> steps, PlanStats stats);

    std::size_t numQubits() const { return nQubits_; }
    std::size_t shardBits() const { return shardBits_; }
    /** S = 2^s shards. */
    std::size_t shardCount() const { return std::size_t{1} << shardBits_; }
    /** Amplitudes per shard slice, 2^(n-s). */
    std::size_t sliceDim() const
    {
        return std::size_t{1} << (nQubits_ - shardBits_);
    }
    const std::vector<ShardStep> &steps() const { return steps_; }
    /** Base-plan stats plus exchangeOps / remapOps from the pass. */
    const PlanStats &stats() const { return stats_; }

    /**
     * Payload bytes one execution moves through the Transport for a
     * per-state (interleaved Complex) register: full slices per shard
     * per Exchange, half slices per Remap. SoA-batched execution moves
     * this times the lane count.
     */
    std::uint64_t plannedTransportBytes() const;

  private:
    std::size_t nQubits_;
    std::size_t shardBits_;
    std::vector<ShardStep> steps_;
    PlanStats stats_;
};

/**
 * Resolves the ExecOptions::shardBits knob for an n-qubit plan: 0 =
 * auto (the CRISC_SHARDS environment variable when set — see
 * sim/env.hh — otherwise unsharded), s >= 1 forces 2^s shards. Any
 * resolved value is clamped to n - 1 so every shard keeps at least
 * two amplitudes of local index space. A return of 0 means "execute
 * unsharded".
 */
std::size_t resolveShardBits(std::size_t requested, std::size_t n_qubits);

/**
 * The shard-scheduling pass: lowers @p plan into a ShardPlan for
 * 2^shard_bits shards. shard_bits == 0 yields a single Local step
 * (the schedule degenerates to the plan itself).
 * @throws std::invalid_argument when shard_bits >= the plan width.
 * @throws std::runtime_error when an op cannot be lowered (a Dense op
 *         too wide to remap fully local — it needs as many free local
 *         positions as it has shard-bit targets).
 */
ShardPlan compileSharded(const Plan &plan, std::size_t shard_bits,
                         const ShardOptions &opts = {});

/**
 * Executes a sharded schedule in place on a full 2^n statevector laid
 * out as S contiguous slices (this process holds every shard; an
 * out-of-process deployment would hold one slice per rank and an MPI
 * Transport). Shards execute local steps as pool tasks per @p opts
 * (ExecOptions::threads / pool — the same knobs as unsharded
 * execution; ExecOptions::blockQubits applies within each shard's
 * sub-plans); crossing steps move amplitudes through @p transport,
 * or a call-local InProcessTransport when none is given. Bit-identical
 * to plan.execute(amps) for every configuration.
 */
void executeSharded(const ShardPlan &plan, Complex *amps,
                    const ExecOptions &opts = {},
                    Transport *transport = nullptr);

/**
 * executeSharded on every lane of an SoA batch (batch_state.hh): lane
 * t ends bit-identical to serial execution on statevector t. Local
 * steps run the batched kernels per shard (unblocked full sweeps —
 * slices of batched registers at sharding widths exceed cache-block
 * footprints anyway); crossing steps move the re/im planes as separate
 * transport messages.
 * @throws std::invalid_argument when the batch width does not match
 *         the schedule width.
 */
void executeShardedBatched(const ShardPlan &plan, BatchState &batch,
                           const ExecOptions &opts = {},
                           Transport *transport = nullptr);

/** Compiles and executes @p plan sharded on |0...0>; convenience for
 *  tests and benchmarks. */
linalg::CVector runSharded(const Plan &plan, std::size_t shard_bits,
                           const ExecOptions &opts = {},
                           const ShardOptions &shard_opts = {},
                           Transport *transport = nullptr);

} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_SHARD_HH

#include "transport.hh"

#include <cstring>

#include "batch.hh"
#include "obs/obs.hh"

namespace crisc {
namespace sim {

void
InProcessTransport::exchange(const std::vector<TransportMessage> &batch)
{
    OBS_SPAN("sim.transport.exchange");
    // Worth a parallel fan-out only when each copy is large enough to
    // amortize the fork/join — one LLC's worth across the batch.
    constexpr std::uint64_t kParallelBytes = std::uint64_t{32} * 1024 * 1024;
    std::uint64_t total = 0;
    for (const TransportMessage &m : batch)
        total += std::uint64_t{m.count} * sizeof(double);

    if (pool_ != nullptr && pool_->size() > 1 && batch.size() > 1 &&
        total >= kParallelBytes) {
        pool_->parallelFor(batch.size(), [&](std::size_t i) {
            const TransportMessage &m = batch[i];
            if (m.count != 0)
                std::memcpy(m.dst, m.src, m.count * sizeof(double));
        });
    } else {
        for (const TransportMessage &m : batch)
            if (m.count != 0)
                std::memcpy(m.dst, m.src, m.count * sizeof(double));
    }
    bytes_ += total;
    OBS_COUNT("sim.exchange_bytes", total);
}

} // namespace sim
} // namespace crisc

#include "dispatch.hh"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>

#include "obs/obs.hh"
#include "sim/env.hh"
#include "sim/kernels.hh"

// Runtime backend resolution (see dispatch.hh) and the public sim::
// kernel wrappers, which are the only call sites most of the library
// uses: circuit/noise/tests call the wrappers (one table fetch per
// kernel call), while the engine's sweep drivers fetch activeKernels()
// once per sweep and invoke table entries directly.

namespace crisc {
namespace sim {

namespace {

// Compiled-in table getters, in probe preference order (best first).
// CMake defines CRISC_HAVE_KERNELS_* for exactly the stamp TUs it adds
// to the build; referencing a getter without its TU would not link.
struct BackendSlot
{
    Backend backend;
    const KernelTable &(*table)();
};

constexpr BackendSlot kSlots[] = {
#if defined(CRISC_HAVE_KERNELS_AVX512)
    {Backend::Avx512, &detail::avx512KernelTable},
#endif
#if defined(CRISC_HAVE_KERNELS_AVX2)
    {Backend::Avx2, &detail::avx2KernelTable},
#endif
#if defined(CRISC_HAVE_KERNELS_NEON)
    {Backend::Neon, &detail::neonKernelTable},
#endif
    {Backend::Scalar, &detail::scalarKernelTable},
};

/** The resolved table; null until first use. One atomic acquire-load
 *  per activeKernels() call — the sweep-level cost of dispatch. */
std::atomic<const KernelTable *> g_active{nullptr};

/** Serializes resolution and override changes (the load fast path stays
 *  lock-free). */
std::mutex g_resolveMutex;

const KernelTable *
slotFor(Backend b)
{
    for (const BackendSlot &s : kSlots)
        if (s.backend == b)
            return &s.table();
    return nullptr;
}

/** Best compiled-in backend this CPU supports; scalar worst case. */
const KernelTable &
probe()
{
    for (const BackendSlot &s : kSlots)
        if (hostSupports(s.backend))
            return s.table();
    return detail::scalarKernelTable();
}

/** Resolves an override string with CRISC_SIMD_DISPATCH semantics:
 *  probe on "auto"/empty, reject-loud otherwise (dispatch.hh). */
const KernelTable &
resolve(const std::string &value)
{
    const std::optional<Backend> forced = parseDispatchOverride(value);
    if (!forced)
        return probe();
    const KernelTable *t = slotFor(*forced);
    if (t == nullptr)
        throw std::runtime_error(
            "CRISC_SIMD_DISPATCH: backend '" +
            std::string(backendName(*forced)) +
            "' is not compiled into this binary");
    if (!hostSupports(*forced))
        throw std::runtime_error(
            "CRISC_SIMD_DISPATCH: backend '" +
            std::string(backendName(*forced)) +
            "' is not supported by this CPU");
    return *t;
}

const KernelTable &
resolveFromEnvironment()
{
    return resolve(env::simdDispatch());
}

} // namespace

const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Scalar: return "scalar";
      case Backend::Avx2: return "avx2";
      case Backend::Avx512: return "avx512";
      case Backend::Neon: return "neon";
    }
    return "unknown";
}

std::vector<Backend>
compiledBackends()
{
    std::vector<Backend> out;
    for (const BackendSlot &s : kSlots)
        out.push_back(s.backend);
    return out;
}

bool
backendCompiled(Backend b)
{
    return slotFor(b) != nullptr;
}

bool
hostSupports(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return true;
      case Backend::Avx2:
#if defined(__x86_64__) || defined(_M_X64)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case Backend::Avx512:
#if defined(__x86_64__) || defined(_M_X64)
        return __builtin_cpu_supports("avx512f") != 0;
#else
        return false;
#endif
      case Backend::Neon:
#if defined(__aarch64__)
        return true; // NEON is architectural on aarch64.
#else
        return false;
#endif
    }
    return false;
}

const KernelTable &
kernelTable(Backend b)
{
    const KernelTable *t = slotFor(b);
    if (t == nullptr)
        throw std::runtime_error(
            std::string("kernelTable: backend '") + backendName(b) +
            "' is not compiled into this binary");
    return *t;
}

std::optional<Backend>
parseDispatchOverride(const std::string &value)
{
    if (value.empty() || value == "auto")
        return std::nullopt;
    if (value == "scalar")
        return Backend::Scalar;
    if (value == "avx2")
        return Backend::Avx2;
    if (value == "avx512")
        return Backend::Avx512;
    if (value == "neon")
        return Backend::Neon;
    throw std::invalid_argument(
        "CRISC_SIMD_DISPATCH: unknown backend '" + value +
        "' (expected scalar, avx2, avx512, neon, or auto)");
}

const KernelTable &
activeKernels()
{
    const KernelTable *t = g_active.load(std::memory_order_acquire);
    if (t == nullptr) {
        std::lock_guard<std::mutex> lock(g_resolveMutex);
        t = g_active.load(std::memory_order_acquire);
        if (t == nullptr) {
            t = &resolveFromEnvironment();
            g_active.store(t, std::memory_order_release);
        }
        recordDispatchGauges();
    }
    return *t;
}

Backend
activeBackend()
{
    return activeKernels().backend;
}

const char *
backendName()
{
    return activeKernels().name;
}

void
setDispatchOverride(const std::string &value)
{
    // Resolve (and possibly throw) before publishing anything.
    const KernelTable &t = resolve(value);
    {
        std::lock_guard<std::mutex> lock(g_resolveMutex);
        g_active.store(&t, std::memory_order_release);
    }
    recordDispatchGauges();
}

void
recordDispatchGauges()
{
    const KernelTable &t = activeKernels();
    OBS_GAUGE("sim.dispatch.backend",
              static_cast<std::int64_t>(t.backend));
    OBS_GAUGE("sim.dispatch.lanes", static_cast<std::int64_t>(t.lanes));
}

// ---------------------------------------------------------------------
// Public kernel wrappers: the stable sim:: API from kernels.hh, routed
// through the resolved table. Full-sweep batched forms span the table's
// range kernels over the whole group space.
// ---------------------------------------------------------------------

const char *
simdBackendName()
{
    return backendName();
}

std::size_t
simdLanes()
{
    return activeKernels().lanes;
}

void
apply1q(Complex *amps, std::size_t n_qubits, std::size_t qubit,
        const Complex m[4])
{
    activeKernels().apply1q(amps, n_qubits, qubit, m);
}

void
apply1qDiag(Complex *amps, std::size_t n_qubits, std::size_t qubit,
            Complex d0, Complex d1)
{
    activeKernels().apply1qDiag(amps, n_qubits, qubit, d0, d1);
}

void
applyPauli(Complex *amps, std::size_t n_qubits, std::size_t qubit,
           std::size_t pauli_index)
{
    activeKernels().applyPauli(amps, n_qubits, qubit, pauli_index);
}

void
apply2q(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
        std::size_t q_lo, const Complex m[16])
{
    activeKernels().apply2q(amps, n_qubits, q_hi, q_lo, m);
}

void
apply2qDiag(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
            std::size_t q_lo, const Complex d[4])
{
    activeKernels().apply2qDiag(amps, n_qubits, q_hi, q_lo, d);
}

void
applyDense(Complex *amps, std::size_t n_qubits, const Matrix &op,
           const std::vector<std::size_t> &qubits)
{
    detail::applyDenseShared(amps, n_qubits, op, qubits);
}

void
applyDenseRange(Complex *amps, std::size_t n_qubits, const Matrix &op,
                const std::vector<std::size_t> &qubits,
                std::size_t group_begin, std::size_t group_end)
{
    detail::applyDenseRangeShared(amps, n_qubits, op, qubits, group_begin,
                                  group_end);
}

void
applyGate(Complex *amps, std::size_t n_qubits, const Matrix &op,
          const std::vector<std::size_t> &qubits)
{
    const KernelTable &k = activeKernels();
    switch (qubits.size()) {
      case 1:
        if (op(0, 1) == Complex{0.0, 0.0} && op(1, 0) == Complex{0.0, 0.0}) {
            k.apply1qDiag(amps, n_qubits, qubits[0], op(0, 0), op(1, 1));
        } else {
            const Complex m[4] = {op(0, 0), op(0, 1), op(1, 0), op(1, 1)};
            k.apply1q(amps, n_qubits, qubits[0], m);
        }
        return;
      case 2:
        if (exactlyDiagonal(op)) {
            const Complex d[4] = {op(0, 0), op(1, 1), op(2, 2), op(3, 3)};
            k.apply2qDiag(amps, n_qubits, qubits[0], qubits[1], d);
        } else {
            k.apply2q(amps, n_qubits, qubits[0], qubits[1], op.data());
        }
        return;
      default:
        k.applyDense(amps, n_qubits, op, qubits);
        return;
    }
}

void
apply1qRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
             const Complex m[4], std::size_t pair_begin,
             std::size_t pair_end)
{
    activeKernels().apply1qRange(amps, n_qubits, qubit, m, pair_begin,
                                 pair_end);
}

void
apply1qDiagRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                 Complex d0, Complex d1, std::size_t pair_begin,
                 std::size_t pair_end)
{
    activeKernels().apply1qDiagRange(amps, n_qubits, qubit, d0, d1,
                                     pair_begin, pair_end);
}

void
apply2qRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
             std::size_t q_lo, const Complex m[16],
             std::size_t quad_begin, std::size_t quad_end)
{
    activeKernels().apply2qRange(amps, n_qubits, q_hi, q_lo, m, quad_begin,
                                 quad_end);
}

void
apply2qDiagRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
                 std::size_t q_lo, const Complex d[4],
                 std::size_t quad_begin, std::size_t quad_end)
{
    activeKernels().apply2qDiagRange(amps, n_qubits, q_hi, q_lo, d,
                                     quad_begin, quad_end);
}

void
apply1qBatchRange(double *re, double *im, std::size_t n_qubits,
                  std::size_t batch, std::size_t qubit, const Complex m[4],
                  std::size_t pair_begin, std::size_t pair_end)
{
    activeKernels().apply1qBatchRange(re, im, n_qubits, batch, qubit, m,
                                      pair_begin, pair_end);
}

void
apply1qBatch(double *re, double *im, std::size_t n_qubits,
             std::size_t batch, std::size_t qubit, const Complex m[4])
{
    activeKernels().apply1qBatchRange(re, im, n_qubits, batch, qubit, m, 0,
                                      (std::size_t{1} << n_qubits) >> 1);
}

void
apply1qDiagBatchRange(double *re, double *im, std::size_t n_qubits,
                      std::size_t batch, std::size_t qubit, Complex d0,
                      Complex d1, std::size_t pair_begin,
                      std::size_t pair_end)
{
    activeKernels().apply1qDiagBatchRange(re, im, n_qubits, batch, qubit,
                                          d0, d1, pair_begin, pair_end);
}

void
apply1qDiagBatch(double *re, double *im, std::size_t n_qubits,
                 std::size_t batch, std::size_t qubit, Complex d0,
                 Complex d1)
{
    activeKernels().apply1qDiagBatchRange(
        re, im, n_qubits, batch, qubit, d0, d1, 0,
        (std::size_t{1} << n_qubits) >> 1);
}

void
applyPauliBatchRange(double *re, double *im, std::size_t n_qubits,
                     std::size_t batch, std::size_t qubit,
                     std::size_t pauli_index, std::size_t pair_begin,
                     std::size_t pair_end)
{
    activeKernels().applyPauliBatchRange(re, im, n_qubits, batch, qubit,
                                         pauli_index, pair_begin, pair_end);
}

void
applyPauliBatch(double *re, double *im, std::size_t n_qubits,
                std::size_t batch, std::size_t qubit,
                std::size_t pauli_index)
{
    activeKernels().applyPauliBatchRange(
        re, im, n_qubits, batch, qubit, pauli_index, 0,
        (std::size_t{1} << n_qubits) >> 1);
}

void
applyPauliLane(double *re, double *im, std::size_t n_qubits,
               std::size_t batch, std::size_t lane, std::size_t qubit,
               std::size_t pauli_index)
{
    activeKernels().applyPauliLane(re, im, n_qubits, batch, lane, qubit,
                                   pauli_index);
}

void
apply2qBatchRange(double *re, double *im, std::size_t n_qubits,
                  std::size_t batch, std::size_t q_hi, std::size_t q_lo,
                  const Complex m[16], std::size_t quad_begin,
                  std::size_t quad_end)
{
    activeKernels().apply2qBatchRange(re, im, n_qubits, batch, q_hi, q_lo,
                                      m, quad_begin, quad_end);
}

void
apply2qBatch(double *re, double *im, std::size_t n_qubits,
             std::size_t batch, std::size_t q_hi, std::size_t q_lo,
             const Complex m[16])
{
    activeKernels().apply2qBatchRange(re, im, n_qubits, batch, q_hi, q_lo,
                                      m, 0,
                                      (std::size_t{1} << n_qubits) >> 2);
}

void
apply2qDiagBatchRange(double *re, double *im, std::size_t n_qubits,
                      std::size_t batch, std::size_t q_hi,
                      std::size_t q_lo, const Complex d[4],
                      std::size_t quad_begin, std::size_t quad_end)
{
    activeKernels().apply2qDiagBatchRange(re, im, n_qubits, batch, q_hi,
                                          q_lo, d, quad_begin, quad_end);
}

void
apply2qDiagBatch(double *re, double *im, std::size_t n_qubits,
                 std::size_t batch, std::size_t q_hi, std::size_t q_lo,
                 const Complex d[4])
{
    activeKernels().apply2qDiagBatchRange(
        re, im, n_qubits, batch, q_hi, q_lo, d, 0,
        (std::size_t{1} << n_qubits) >> 2);
}

void
applyDenseBatchRange(double *re, double *im, std::size_t n_qubits,
                     std::size_t batch, const Matrix &op,
                     const std::vector<std::size_t> &qubits,
                     std::size_t group_begin, std::size_t group_end)
{
    activeKernels().applyDenseBatchRange(re, im, n_qubits, batch, op,
                                         qubits, group_begin, group_end);
}

void
applyDenseBatch(double *re, double *im, std::size_t n_qubits,
                std::size_t batch, const Matrix &op,
                const std::vector<std::size_t> &qubits)
{
    activeKernels().applyDenseBatchRange(
        re, im, n_qubits, batch, op, qubits, 0,
        (std::size_t{1} << n_qubits) >> qubits.size());
}

} // namespace sim
} // namespace crisc

#include "cache.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "env.hh"
#include "linalg/matrix.hh"

namespace crisc {
namespace sim {

namespace {

std::size_t
clampBlockBytes(unsigned long long bytes)
{
    if (bytes < kMinBlockBytes)
        return kMinBlockBytes;
    if (bytes > kMaxBlockBytes)
        return kMaxBlockBytes;
    return static_cast<std::size_t>(bytes);
}

/** Detected per-core L2 data cache size in bytes, or 0. */
std::size_t
detectedL2Bytes()
{
#if defined(_SC_LEVEL2_CACHE_SIZE)
    const long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
    if (l2 > 0)
        return static_cast<std::size_t>(l2);
#endif
    return 0;
}

} // namespace

std::size_t
cacheBlockBytes()
{
    if (const std::size_t override = env::blockBytes())
        return clampBlockBytes(override);
    if (const std::size_t l2 = detectedL2Bytes())
        return clampBlockBytes(l2 / 2);
    return kFallbackBlockBytes;
}

std::size_t
autoBlockQubits(std::size_t n_qubits)
{
    const std::size_t budget = cacheBlockBytes() / sizeof(linalg::Complex);
    std::size_t b = 0;
    while ((std::size_t{2} << b) <= budget)
        ++b; // largest b with 2^b amplitudes within budget.
    if (b < 1)
        b = 1;
    return b < n_qubits ? b : n_qubits;
}

std::size_t
resolveBlockQubits(std::size_t requested, std::size_t n_qubits)
{
    if (n_qubits == 0)
        return 0;
    if (requested == 0)
        return n_qubits >= kAutoBlockFromWidth ? autoBlockQubits(n_qubits)
                                               : 0;
    return requested < n_qubits ? requested : n_qubits;
}

} // namespace sim
} // namespace crisc

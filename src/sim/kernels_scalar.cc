/**
 * @file
 * Scalar backend stamp: kernels_impl.hh instantiated over the portable
 * one-lane simd backend. Always compiled; the dispatcher's fallback of
 * last resort and the bit-identity reference every other backend is
 * tested against.
 */

#define CRISC_SIMD_STAMP_SCALAR 1
#define CRISC_KERNEL_TABLE_FN scalarKernelTable
#define CRISC_KERNEL_BACKEND_ID Backend::Scalar

#include "sim/kernels_impl.hh"

/**
 * @file
 * Specialized statevector gate kernels. These are the innermost loops of
 * every simulation workload in the library (quantum volume, synthesis
 * verification, the example applications), so they trade the generic
 * k-qubit scatter/gather of the original simulator for dedicated 1- and
 * 2-qubit routines with bit-twiddled strided indexing: amplitude pairs
 * (1q) and quads (2q) are enumerated in ascending memory order with no
 * per-group index buffers, and diagonal gates touch each amplitude once.
 *
 * The top-level sim::apply* entry points below are thin wrappers over a
 * runtime-dispatched kernel table: every binary carries one compiled
 * kernel set per SIMD backend the compiler could build (scalar always;
 * AVX2/AVX-512 on x86-64; NEON on aarch64), and src/sim/dispatch.hh
 * picks among them once per process — by CPU probe, or forced via the
 * CRISC_SIMD_DISPATCH environment variable. Each backend's kernels run
 * split-complex SIMD inner loops whenever the addressed contiguous run
 * is at least one vector wide and fall back to the scalar reference
 * kernels in sim::scalar otherwise. The SIMD lanes execute exactly the
 * scalar operation sequence, so every backend produces bit-identical
 * results for finite amplitudes; tests and the benchmark runner pin
 * this equivalence per selectable backend, and benchmarks report the
 * speedup against the sim::scalar baseline.
 *
 * Every kernel sweep enumerates an independent *group* per iteration —
 * an amplitude pair (1q), quad (2q), or 2^k-tuple (dense) — and groups
 * never share amplitudes, so a sweep partitions freely along the group
 * axis. The *Range variants below execute one sub-interval [g0, g2) of
 * that group index space with the exact per-amplitude operation
 * sequence of the full kernels: any partition of [0, groups)
 * reassembles the full sweep bit for bit, which is what the state-
 * parallel execution path in engine.hh relies on (a group is never
 * split across chunks, so no two chunks touch the same amplitude).
 * Cache-blocked plan execution (engine.hh executeBlocked) reuses the
 * same contract: when an op's targets all address index bits below a
 * block exponent b, the groups of one 2^b-amplitude block form the
 * contiguous range [block * 2^(b-k), (block + 1) * 2^(b-k)), so the
 * *Range kernels serve as the per-block substrate unchanged.
 *
 * Conventions match the rest of the library: qubit 0 is the most
 * significant bit of a basis index, and a k-qubit operator's basis is
 * |q[0] q[1] ... q[k-1]> with q[0] the most significant gate qubit.
 * All matrices are row-major.
 */

#ifndef CRISC_SIM_KERNELS_HH
#define CRISC_SIM_KERNELS_HH

#include <cstddef>
#include <vector>

#include "linalg/matrix.hh"

namespace crisc {
namespace sim {

using linalg::Complex;
using linalg::Matrix;

/**
 * Name of the runtime-resolved SIMD backend serving this process
 * ("scalar", "avx2", "avx512", or "neon"); recorded by the benchmark
 * runner. Alias for sim::backendName() in dispatch.hh.
 */
const char *simdBackendName();

/** Complex lanes per SIMD vector of the resolved backend (8 for
 *  AVX-512, 4 for AVX2, 2 for NEON, 1 scalar). */
std::size_t simdLanes();

/**
 * Scalar reference kernels. These are the original, non-vectorized
 * loops; the SIMD top-level kernels must match them bit for bit on
 * finite inputs. Exported for equivalence tests and as the benchmark
 * runner's speedup baseline.
 */
namespace scalar {

void apply1q(Complex *amps, std::size_t n_qubits, std::size_t qubit,
             const Complex m[4]);
void apply1qDiag(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                 Complex d0, Complex d1);
void applyPauli(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                std::size_t pauli_index);
void apply2q(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
             std::size_t q_lo, const Complex m[16]);
void apply2qDiag(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
                 std::size_t q_lo, const Complex d[4]);

// Batched (trajectory-major SoA) references: @p batch lanes of each
// amplitude stored contiguously in split re/im arrays (lane t of
// amplitude i at re[i * batch + t]; see batch_state.hh). Same
// per-amplitude operation sequence as the interleaved kernels above,
// applied to every lane.

/** Batched apply1q over all pairs and lanes. */
void apply1qBatch(double *re, double *im, std::size_t n_qubits,
                  std::size_t batch, std::size_t qubit, const Complex m[4]);
/** Batched apply1qDiag. */
void apply1qDiagBatch(double *re, double *im, std::size_t n_qubits,
                      std::size_t batch, std::size_t qubit, Complex d0,
                      Complex d1);
/** Batched applyPauli (the same Pauli on every lane). */
void applyPauliBatch(double *re, double *im, std::size_t n_qubits,
                     std::size_t batch, std::size_t qubit,
                     std::size_t pauli_index);
/** Batched apply2q. */
void apply2qBatch(double *re, double *im, std::size_t n_qubits,
                  std::size_t batch, std::size_t q_hi, std::size_t q_lo,
                  const Complex m[16]);
/** Batched apply2qDiag. */
void apply2qDiagBatch(double *re, double *im, std::size_t n_qubits,
                      std::size_t batch, std::size_t q_hi,
                      std::size_t q_lo, const Complex d[4]);
/** Batched applyDense. */
void applyDenseBatch(double *re, double *im, std::size_t n_qubits,
                     std::size_t batch, const Matrix &op,
                     const std::vector<std::size_t> &qubits);

/** Pair-range form of apply1q: pairs [pair_begin, pair_end). */
void apply1qRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                  const Complex m[4], std::size_t pair_begin,
                  std::size_t pair_end);
/** Pair-range form of apply1qDiag. */
void apply1qDiagRange(Complex *amps, std::size_t n_qubits,
                      std::size_t qubit, Complex d0, Complex d1,
                      std::size_t pair_begin, std::size_t pair_end);
/** Quad-range form of apply2q: quads [quad_begin, quad_end). */
void apply2qRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
                  std::size_t q_lo, const Complex m[16],
                  std::size_t quad_begin, std::size_t quad_end);
/** Quad-range form of apply2qDiag. */
void apply2qDiagRange(Complex *amps, std::size_t n_qubits,
                      std::size_t q_hi, std::size_t q_lo,
                      const Complex d[4], std::size_t quad_begin,
                      std::size_t quad_end);

} // namespace scalar

/** Applies a 2x2 gate m (row-major m[0..3]) to one qubit in place. */
void apply1q(Complex *amps, std::size_t n_qubits, std::size_t qubit,
             const Complex m[4]);

/** Diagonal 1-qubit fast path: multiplies by diag(d0, d1). */
void apply1qDiag(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                 Complex d0, Complex d1);

/**
 * Applies the Pauli with index 1..3 = X, Y, Z to one qubit. Pure
 * swap/phase traffic — no complex multiplies — which makes stochastic
 * Pauli noise nearly free next to gate application.
 */
void applyPauli(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                std::size_t pauli_index);

/**
 * Applies a 4x4 gate m (row-major m[0..15]) to the ordered qubit pair
 * (q_hi, q_lo), where q_hi is the most significant gate qubit.
 */
void apply2q(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
             std::size_t q_lo, const Complex m[16]);

/** Diagonal 2-qubit fast path: multiplies by diag(d[0..3]). */
void apply2qDiag(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
                 std::size_t q_lo, const Complex d[4]);

/**
 * Generic dense k-qubit apply (the original simulator algorithm), kept
 * as the fallback for k >= 3 gates, which only tests and the exact-
 * evolution examples use.
 */
void applyDense(Complex *amps, std::size_t n_qubits, const Matrix &op,
                const std::vector<std::size_t> &qubits);

// ---------------------------------------------------------------------
// Group-range kernels: the state-parallel execution substrate. Each
// runs the sub-interval [g0, g1) of the sweep's group index space —
// pairs for 1q, quads for 2q, 2^k-tuples for dense — with the same
// per-amplitude operation sequence as the full kernel, so the full
// sweep over any partition of [0, groups) is bit-identical to the
// serial kernel. Group g addresses the g-th pair/quad/tuple in
// ascending base-index order; a group is never split, so disjoint
// ranges touch disjoint amplitudes.
// ---------------------------------------------------------------------

/** apply1q restricted to amplitude pairs [pair_begin, pair_end). */
void apply1qRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                  const Complex m[4], std::size_t pair_begin,
                  std::size_t pair_end);

/** apply1qDiag restricted to amplitude pairs [pair_begin, pair_end). */
void apply1qDiagRange(Complex *amps, std::size_t n_qubits,
                      std::size_t qubit, Complex d0, Complex d1,
                      std::size_t pair_begin, std::size_t pair_end);

/** apply2q restricted to amplitude quads [quad_begin, quad_end). */
void apply2qRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
                  std::size_t q_lo, const Complex m[16],
                  std::size_t quad_begin, std::size_t quad_end);

/** apply2qDiag restricted to amplitude quads [quad_begin, quad_end). */
void apply2qDiagRange(Complex *amps, std::size_t n_qubits,
                      std::size_t q_hi, std::size_t q_lo,
                      const Complex d[4], std::size_t quad_begin,
                      std::size_t quad_end);

/**
 * applyDense restricted to groups [group_begin, group_end) of the
 * dim >> k amplitude groups, in the same ascending-base order the full
 * kernel visits them.
 */
void applyDenseRange(Complex *amps, std::size_t n_qubits, const Matrix &op,
                     const std::vector<std::size_t> &qubits,
                     std::size_t group_begin, std::size_t group_end);

// ---------------------------------------------------------------------
// Batched (trajectory-major SoA) kernels: @p batch lanes of every
// amplitude stored contiguously in split re/im arrays (batch_state.hh),
// so the SIMD vectors below run across trajectories — whole vectors at
// a time, plus a scalar tail covering batch % lanes — instead of across
// amplitudes. Every lane replays the per-amplitude IEEE operation
// sequence of the serial kernels above (including their stride-
// dependent negation flavour for Pauli Y/Z), so lane t of a batched
// sweep is bit-identical to running the serial kernel on statevector t
// alone. The *BatchRange forms partition the same group axis as the
// interleaved *Range kernels — a group (all its lanes) is never split.
// ---------------------------------------------------------------------

/** apply1qBatch restricted to amplitude pairs [pair_begin, pair_end). */
void apply1qBatchRange(double *re, double *im, std::size_t n_qubits,
                       std::size_t batch, std::size_t qubit,
                       const Complex m[4], std::size_t pair_begin,
                       std::size_t pair_end);

/** apply1qDiagBatch restricted to pairs [pair_begin, pair_end). */
void apply1qDiagBatchRange(double *re, double *im, std::size_t n_qubits,
                           std::size_t batch, std::size_t qubit,
                           Complex d0, Complex d1, std::size_t pair_begin,
                           std::size_t pair_end);

/** applyPauliBatch restricted to pairs [pair_begin, pair_end). */
void applyPauliBatchRange(double *re, double *im, std::size_t n_qubits,
                          std::size_t batch, std::size_t qubit,
                          std::size_t pauli_index, std::size_t pair_begin,
                          std::size_t pair_end);

/** apply2qBatch restricted to amplitude quads [quad_begin, quad_end). */
void apply2qBatchRange(double *re, double *im, std::size_t n_qubits,
                       std::size_t batch, std::size_t q_hi,
                       std::size_t q_lo, const Complex m[16],
                       std::size_t quad_begin, std::size_t quad_end);

/** apply2qDiagBatch restricted to quads [quad_begin, quad_end). */
void apply2qDiagBatchRange(double *re, double *im, std::size_t n_qubits,
                           std::size_t batch, std::size_t q_hi,
                           std::size_t q_lo, const Complex d[4],
                           std::size_t quad_begin, std::size_t quad_end);

/** applyDenseBatch restricted to groups [group_begin, group_end). */
void applyDenseBatchRange(double *re, double *im, std::size_t n_qubits,
                          std::size_t batch, const Matrix &op,
                          const std::vector<std::size_t> &qubits,
                          std::size_t group_begin, std::size_t group_end);

/** Full-sweep forms of the *BatchRange kernels above. */
void apply1qBatch(double *re, double *im, std::size_t n_qubits,
                  std::size_t batch, std::size_t qubit, const Complex m[4]);
void apply1qDiagBatch(double *re, double *im, std::size_t n_qubits,
                      std::size_t batch, std::size_t qubit, Complex d0,
                      Complex d1);
void applyPauliBatch(double *re, double *im, std::size_t n_qubits,
                     std::size_t batch, std::size_t qubit,
                     std::size_t pauli_index);
void apply2qBatch(double *re, double *im, std::size_t n_qubits,
                  std::size_t batch, std::size_t q_hi, std::size_t q_lo,
                  const Complex m[16]);
void apply2qDiagBatch(double *re, double *im, std::size_t n_qubits,
                      std::size_t batch, std::size_t q_hi, std::size_t q_lo,
                      const Complex d[4]);
void applyDenseBatch(double *re, double *im, std::size_t n_qubits,
                     std::size_t batch, const Matrix &op,
                     const std::vector<std::size_t> &qubits);

/**
 * Applies a Pauli to a single lane of a batch — the divergence point of
 * batched trajectory execution (each lane samples its own noise).
 * Bit-identical to sim::applyPauli on that lane's statevector.
 */
void applyPauliLane(double *re, double *im, std::size_t n_qubits,
                    std::size_t batch, std::size_t lane, std::size_t qubit,
                    std::size_t pauli_index);

/**
 * True when every off-diagonal entry of the square matrix is exactly
 * zero — the criterion under which applyGate and the plan compiler
 * lower a gate to a diagonal kernel.
 */
bool exactlyDiagonal(const Matrix &op);

/**
 * Dispatching entry point: routes k = 1 and k = 2 gates to the
 * specialized kernels (detecting exactly-diagonal operators) and larger
 * gates to applyDense. Callers must have validated sizes and indices.
 */
void applyGate(Complex *amps, std::size_t n_qubits, const Matrix &op,
               const std::vector<std::size_t> &qubits);

} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_KERNELS_HH

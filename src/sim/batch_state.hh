/**
 * @file
 * Trajectory-major structure-of-arrays statevector batch: B independent
 * statevectors of the same register width stored so that, for every
 * amplitude index i, the B real parts are contiguous (and likewise the
 * B imaginary parts). Lane t of amplitude i lives at
 *
 *     re()[i * batch + t]  /  im()[i * batch + t]
 *
 * which makes SIMD lanes run *across trajectories* when a batched
 * kernel (kernels.hh apply*Batch) walks the amplitude axis — control
 * flow is perfectly uniform because every lane executes the same
 * compiled plan, and divergence (noise sampling, measurement) is
 * expressed per lane through applyPauliLane / amp().
 *
 * Conversions to and from the library's interleaved
 * std::complex<double> statevectors (pack / unpack) copy values
 * bitwise; a pack -> unpack round trip is the identity.
 */

#ifndef CRISC_SIM_BATCH_STATE_HH
#define CRISC_SIM_BATCH_STATE_HH

#include <cstddef>
#include <vector>

#include "linalg/matrix.hh"

namespace crisc {
namespace sim {

/** A batch of statevectors in trajectory-major SoA layout. */
class BatchState
{
  public:
    /**
     * Creates @p batch lanes of a 2^n statevector, every lane
     * initialized to |0...0>.
     * @throws std::invalid_argument when batch == 0.
     */
    BatchState(std::size_t n_qubits, std::size_t batch);

    /**
     * Packs @p states (all the same power-of-two length) into a batch
     * with one lane per input vector, bitwise.
     * @throws std::invalid_argument on an empty list or mismatched /
     *         non-power-of-two lengths.
     */
    static BatchState pack(const std::vector<linalg::CVector> &states);

    /** Overwrites one lane from an interleaved statevector, bitwise.
     *  @throws std::invalid_argument on lane or size mismatch. */
    void packLane(std::size_t lane, const linalg::CVector &amps);

    /** Extracts one lane as an interleaved statevector, bitwise.
     *  @throws std::invalid_argument when lane >= batch(). */
    linalg::CVector unpackLane(std::size_t lane) const;

    /** unpackLane for every lane, in lane order. */
    std::vector<linalg::CVector> unpack() const;

    /** Amplitude @p index of lane @p lane (unchecked hot-path read). */
    linalg::Complex amp(std::size_t index, std::size_t lane) const
    {
        const std::size_t at = index * batch_ + lane;
        return {re_[at], im_[at]};
    }

    std::size_t numQubits() const { return nQubits_; }
    std::size_t dim() const { return std::size_t{1} << nQubits_; }
    std::size_t batch() const { return batch_; }

    double *re() { return re_.data(); }
    double *im() { return im_.data(); }
    const double *re() const { return re_.data(); }
    const double *im() const { return im_.data(); }

  private:
    std::size_t nQubits_;
    std::size_t batch_;
    std::vector<double> re_; ///< dim * batch, lane-major per amplitude.
    std::vector<double> im_;
};

} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_BATCH_STATE_HH

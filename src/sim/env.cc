#include "env.hh"

#include <cstdlib>
#include <mutex>
#include <optional>
#include <stdexcept>

namespace crisc {
namespace sim {
namespace env {

namespace {

std::mutex g_mutex;
std::optional<std::size_t> g_blockBytes;
std::optional<std::size_t> g_shardBits;
std::optional<std::string> g_simdDispatch;

/** Strict decimal parse of @p text; throws naming @p var on anything
 *  that is not a plain non-negative decimal integer. */
unsigned long long
parseDecimal(const char *var, const char *text)
{
    if (*text < '0' || *text > '9') // rejects "-4", " 8", "+2"...
        throw std::invalid_argument(std::string(var) + ": expected a "
                                    "decimal integer, got \"" + text + "\"");
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        throw std::invalid_argument(std::string(var) + ": expected a "
                                    "decimal integer, got \"" + text + "\"");
    return parsed;
}

std::size_t
parseBlockBytes()
{
    const char *raw = std::getenv("CRISC_BLOCK_BYTES");
    if (raw == nullptr || *raw == '\0')
        return 0;
    return static_cast<std::size_t>(parseDecimal("CRISC_BLOCK_BYTES", raw));
}

std::size_t
parseShardBits()
{
    const char *raw = std::getenv("CRISC_SHARDS");
    if (raw == nullptr || *raw == '\0')
        return 0;
    const unsigned long long shards = parseDecimal("CRISC_SHARDS", raw);
    if (shards == 0 || (shards & (shards - 1)) != 0)
        throw std::invalid_argument(std::string("CRISC_SHARDS: shard count "
                                                "must be a power of two, "
                                                "got \"") + raw + "\"");
    std::size_t bits = 0;
    while ((shards >> bits) > 1)
        ++bits;
    return bits;
}

} // namespace

std::size_t
blockBytes()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_blockBytes)
        g_blockBytes = parseBlockBytes();
    return *g_blockBytes;
}

std::size_t
shardBits()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_shardBits)
        g_shardBits = parseShardBits();
    return *g_shardBits;
}

const std::string &
simdDispatch()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_simdDispatch) {
        const char *raw = std::getenv("CRISC_SIMD_DISPATCH");
        g_simdDispatch = raw == nullptr ? std::string() : std::string(raw);
    }
    return *g_simdDispatch;
}

void
resetForTesting()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_blockBytes.reset();
    g_shardBits.reset();
    g_simdDispatch.reset();
}

} // namespace env
} // namespace sim
} // namespace crisc

/**
 * @file
 * Portable SIMD abstraction for the statevector kernels: a split
 * (structure-of-arrays) complex vector type `CVec` holding kLanes
 * real parts and kLanes imaginary parts in separate hardware vectors,
 * with deinterleaving loads / interleaving stores from the library's
 * interleaved std::complex<double> statevectors, plus plain contiguous
 * loads / stores (loads / stores) for data that is already split into
 * separate re/im double arrays — the batched trajectory layout of
 * sim::BatchState.
 *
 * Backend selection is per translation unit: every kernels_<backend>.cc
 * stamp TU defines exactly one of
 *
 *   CRISC_SIMD_STAMP_SCALAR   portable scalar (kLanes == 1)
 *   CRISC_SIMD_STAMP_AVX2     AVX2, 4 lanes   (requires -mavx2)
 *   CRISC_SIMD_STAMP_AVX512   AVX-512F, 8 lanes (requires -mavx512f)
 *   CRISC_SIMD_STAMP_NEON     NEON, 2 lanes   (aarch64)
 *
 * before including this header (via kernels_impl.hh). All stamped
 * backends are compiled into the same binary and selected at runtime by
 * src/sim/dispatch.cc (CPU probe + CRISC_SIMD_DISPATCH override). A
 * stamp whose ISA the compiler has not enabled is a hard #error — never
 * a silent downgrade; CMake removes uncompilable stamp TUs from the
 * build (and rejects explicitly requested ones with FATAL_ERROR), so
 * hitting the #error means the build system and this header disagree.
 *
 * Numerical contract: every lane of every operation performs exactly
 * the same IEEE-754 double operations, in the same order, as the
 * scalar reference kernels (two multiplies and a subtract for the real
 * part of a complex product, two multiplies and an add for the
 * imaginary part; no fused multiply-add). Vectorized kernels are
 * therefore bit-identical to the scalar path for finite inputs — the
 * pinned Figure-7 regressions hold on every backend. Keep it that way:
 * do not introduce FMA or reassociation here without revisiting the
 * pinned tests, and compile every stamp TU with -ffp-contract=off.
 *
 * Besides kLanes / kBackendName / CVec and the arithmetic ops, each
 * backend exposes two traits the kernels branch on at compile time:
 *
 *   kNegIsSubFromZero  how neg() treats signed zero: the AVX2 and
 *                      AVX-512 backends compute 0 - x (mapping +0 to
 *                      +0), scalar and NEON flip the sign bit (+0 to
 *                      -0). The batched Pauli kernels replay the serial
 *                      kernel's flavour per backend (see negLikeSerial
 *                      in kernels_impl.hh).
 *   kMaskedTails       whether loadsTail / storesTail use mask
 *                      registers (AVX-512) so batched kernels can run
 *                      their batch % kLanes lane tails through the
 *                      vector body instead of a scalar remainder loop.
 *                      The generic fallback below is correct everywhere
 *                      but only profitable with real mask support.
 *
 * AVX2/AVX-512 lane order note: the deinterleaving load permutes lanes
 * (unpacklo/unpackhi yield element order 0,2,1,3 per 256-bit vector,
 * and the analogous per-128-bit-lane interleave on 512-bit vectors),
 * which is harmless — all CVec operations are elementwise, every CVec
 * in flight uses the same permutation, and the store applies the exact
 * inverse.
 */

#ifndef CRISC_SIM_SIMD_HH
#define CRISC_SIM_SIMD_HH

#include <complex>
#include <cstddef>

#if defined(CRISC_SIMD_STAMP_SCALAR) + defined(CRISC_SIMD_STAMP_AVX2) +     \
        defined(CRISC_SIMD_STAMP_AVX512) + defined(CRISC_SIMD_STAMP_NEON) !=\
    1
#error "simd.hh: define exactly one CRISC_SIMD_STAMP_* before including"
#endif

#if defined(CRISC_SIMD_STAMP_AVX2) && !defined(__AVX2__)
#error "simd.hh: CRISC_SIMD_STAMP_AVX2 requires -mavx2 (build system bug)"
#endif
#if defined(CRISC_SIMD_STAMP_AVX512) && !defined(__AVX512F__)
#error "simd.hh: CRISC_SIMD_STAMP_AVX512 requires -mavx512f (build system bug)"
#endif
#if defined(CRISC_SIMD_STAMP_NEON) &&                                       \
    !(defined(__ARM_NEON) || defined(__aarch64__))
#error "simd.hh: CRISC_SIMD_STAMP_NEON requires an ARM NEON target"
#endif

#if defined(CRISC_SIMD_STAMP_AVX2) || defined(CRISC_SIMD_STAMP_AVX512)
#include <immintrin.h>
#elif defined(CRISC_SIMD_STAMP_NEON)
#include <arm_neon.h>
#endif

namespace crisc {
namespace sim {
namespace simd {

#if defined(CRISC_SIMD_STAMP_AVX2)

inline constexpr std::size_t kLanes = 4;
inline constexpr const char *kBackendName = "avx2";
inline constexpr bool kNegIsSubFromZero = true;
inline constexpr bool kMaskedTails = false;

/** kLanes complex doubles in split (SoA) form. */
struct CVec
{
    __m256d re;
    __m256d im;
};

/** Deinterleaving load of kLanes consecutive complex amplitudes. */
inline CVec
loadc(const std::complex<double> *p)
{
    const double *d = reinterpret_cast<const double *>(p);
    const __m256d lo = _mm256_loadu_pd(d);     // r0 i0 r1 i1
    const __m256d hi = _mm256_loadu_pd(d + 4); // r2 i2 r3 i3
    return {_mm256_unpacklo_pd(lo, hi),        // r0 r2 r1 r3
            _mm256_unpackhi_pd(lo, hi)};       // i0 i2 i1 i3
}

/** Interleaving store; exact inverse of loadc's permutation. */
inline void
storec(std::complex<double> *p, CVec a)
{
    double *d = reinterpret_cast<double *>(p);
    _mm256_storeu_pd(d, _mm256_unpacklo_pd(a.re, a.im));
    _mm256_storeu_pd(d + 4, _mm256_unpackhi_pd(a.re, a.im));
}

/** Load of kLanes already-split amplitudes (no permutation). */
inline CVec
loads(const double *re, const double *im)
{
    return {_mm256_loadu_pd(re), _mm256_loadu_pd(im)};
}

/** Store of kLanes already-split amplitudes; inverse of loads. */
inline void
stores(double *re, double *im, CVec a)
{
    _mm256_storeu_pd(re, a.re);
    _mm256_storeu_pd(im, a.im);
}

inline CVec
broadcast(std::complex<double> c)
{
    return {_mm256_set1_pd(c.real()), _mm256_set1_pd(c.imag())};
}

inline CVec
add(CVec a, CVec b)
{
    return {_mm256_add_pd(a.re, b.re), _mm256_add_pd(a.im, b.im)};
}

inline CVec
neg(CVec a)
{
    const __m256d zero = _mm256_setzero_pd();
    return {_mm256_sub_pd(zero, a.re), _mm256_sub_pd(zero, a.im)};
}

/** Complex product, scalar operation order: (ar*br - ai*bi, ar*bi + ai*br). */
inline CVec
mul(CVec a, CVec b)
{
    return {_mm256_sub_pd(_mm256_mul_pd(a.re, b.re),
                          _mm256_mul_pd(a.im, b.im)),
            _mm256_add_pd(_mm256_mul_pd(a.re, b.im),
                          _mm256_mul_pd(a.im, b.re))};
}

/** Multiplication by -i: (re, im) -> (im, -re). */
inline CVec
mulNegI(CVec a)
{
    return {a.im, _mm256_sub_pd(_mm256_setzero_pd(), a.re)};
}

/** Multiplication by +i: (re, im) -> (-im, re). */
inline CVec
mulPosI(CVec a)
{
    return {_mm256_sub_pd(_mm256_setzero_pd(), a.im), a.re};
}

#elif defined(CRISC_SIMD_STAMP_AVX512)

inline constexpr std::size_t kLanes = 8;
inline constexpr const char *kBackendName = "avx512";
inline constexpr bool kNegIsSubFromZero = true;
inline constexpr bool kMaskedTails = true;

struct CVec
{
    __m512d re;
    __m512d im;
};

/** Deinterleaving load: unpacklo/unpackhi interleave per 128-bit lane,
 *  yielding element order 0,4,1,5,2,6,3,7 — the same trick as AVX2,
 *  inverted exactly by storec. */
inline CVec
loadc(const std::complex<double> *p)
{
    const double *d = reinterpret_cast<const double *>(p);
    const __m512d lo = _mm512_loadu_pd(d);     // r0 i0 .. r3 i3
    const __m512d hi = _mm512_loadu_pd(d + 8); // r4 i4 .. r7 i7
    return {_mm512_unpacklo_pd(lo, hi),        // r0 r4 r1 r5 r2 r6 r3 r7
            _mm512_unpackhi_pd(lo, hi)};       // i0 i4 i1 i5 i2 i6 i3 i7
}

inline void
storec(std::complex<double> *p, CVec a)
{
    double *d = reinterpret_cast<double *>(p);
    _mm512_storeu_pd(d, _mm512_unpacklo_pd(a.re, a.im));
    _mm512_storeu_pd(d + 8, _mm512_unpackhi_pd(a.re, a.im));
}

inline CVec
loads(const double *re, const double *im)
{
    return {_mm512_loadu_pd(re), _mm512_loadu_pd(im)};
}

inline void
stores(double *re, double *im, CVec a)
{
    _mm512_storeu_pd(re, a.re);
    _mm512_storeu_pd(im, a.im);
}

/** Mask-register tail load of @p count < kLanes split amplitudes;
 *  masked-off lanes read as zero and are never stored back. */
inline CVec
loadsTail(const double *re, const double *im, std::size_t count)
{
    const __mmask8 k = static_cast<__mmask8>((1u << count) - 1u);
    return {_mm512_maskz_loadu_pd(k, re), _mm512_maskz_loadu_pd(k, im)};
}

inline void
storesTail(double *re, double *im, CVec a, std::size_t count)
{
    const __mmask8 k = static_cast<__mmask8>((1u << count) - 1u);
    _mm512_mask_storeu_pd(re, k, a.re);
    _mm512_mask_storeu_pd(im, k, a.im);
}

inline CVec
broadcast(std::complex<double> c)
{
    return {_mm512_set1_pd(c.real()), _mm512_set1_pd(c.imag())};
}

inline CVec
add(CVec a, CVec b)
{
    return {_mm512_add_pd(a.re, b.re), _mm512_add_pd(a.im, b.im)};
}

/** 0 - x like the AVX2 backend (maps +0 to +0); see kNegIsSubFromZero. */
inline CVec
neg(CVec a)
{
    const __m512d zero = _mm512_setzero_pd();
    return {_mm512_sub_pd(zero, a.re), _mm512_sub_pd(zero, a.im)};
}

inline CVec
mul(CVec a, CVec b)
{
    return {_mm512_sub_pd(_mm512_mul_pd(a.re, b.re),
                          _mm512_mul_pd(a.im, b.im)),
            _mm512_add_pd(_mm512_mul_pd(a.re, b.im),
                          _mm512_mul_pd(a.im, b.re))};
}

inline CVec
mulNegI(CVec a)
{
    return {a.im, _mm512_sub_pd(_mm512_setzero_pd(), a.re)};
}

inline CVec
mulPosI(CVec a)
{
    return {_mm512_sub_pd(_mm512_setzero_pd(), a.im), a.re};
}

#elif defined(CRISC_SIMD_STAMP_NEON)

inline constexpr std::size_t kLanes = 2;
inline constexpr const char *kBackendName = "neon";
inline constexpr bool kNegIsSubFromZero = false;
inline constexpr bool kMaskedTails = false;

struct CVec
{
    float64x2_t re;
    float64x2_t im;
};

inline CVec
loadc(const std::complex<double> *p)
{
    const float64x2x2_t v =
        vld2q_f64(reinterpret_cast<const double *>(p));
    return {v.val[0], v.val[1]};
}

inline void
storec(std::complex<double> *p, CVec a)
{
    float64x2x2_t v;
    v.val[0] = a.re;
    v.val[1] = a.im;
    vst2q_f64(reinterpret_cast<double *>(p), v);
}

inline CVec
loads(const double *re, const double *im)
{
    return {vld1q_f64(re), vld1q_f64(im)};
}

inline void
stores(double *re, double *im, CVec a)
{
    vst1q_f64(re, a.re);
    vst1q_f64(im, a.im);
}

inline CVec
broadcast(std::complex<double> c)
{
    return {vdupq_n_f64(c.real()), vdupq_n_f64(c.imag())};
}

inline CVec
add(CVec a, CVec b)
{
    return {vaddq_f64(a.re, b.re), vaddq_f64(a.im, b.im)};
}

inline CVec
neg(CVec a)
{
    return {vnegq_f64(a.re), vnegq_f64(a.im)};
}

inline CVec
mul(CVec a, CVec b)
{
    return {vsubq_f64(vmulq_f64(a.re, b.re), vmulq_f64(a.im, b.im)),
            vaddq_f64(vmulq_f64(a.re, b.im), vmulq_f64(a.im, b.re))};
}

inline CVec
mulNegI(CVec a)
{
    return {a.im, vnegq_f64(a.re)};
}

inline CVec
mulPosI(CVec a)
{
    return {vnegq_f64(a.im), a.re};
}

#else // CRISC_SIMD_STAMP_SCALAR

inline constexpr std::size_t kLanes = 1;
inline constexpr const char *kBackendName = "scalar";
inline constexpr bool kNegIsSubFromZero = false;
inline constexpr bool kMaskedTails = false;

struct CVec
{
    double re;
    double im;
};

inline CVec
loadc(const std::complex<double> *p)
{
    return {p->real(), p->imag()};
}

inline void
storec(std::complex<double> *p, CVec a)
{
    *p = {a.re, a.im};
}

inline CVec
loads(const double *re, const double *im)
{
    return {*re, *im};
}

inline void
stores(double *re, double *im, CVec a)
{
    *re = a.re;
    *im = a.im;
}

inline CVec
broadcast(std::complex<double> c)
{
    return {c.real(), c.imag()};
}

inline CVec
add(CVec a, CVec b)
{
    return {a.re + b.re, a.im + b.im};
}

inline CVec
neg(CVec a)
{
    return {-a.re, -a.im};
}

inline CVec
mul(CVec a, CVec b)
{
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}

inline CVec
mulNegI(CVec a)
{
    return {a.im, -a.re};
}

inline CVec
mulPosI(CVec a)
{
    return {-a.im, a.re};
}

#endif

#if !defined(CRISC_SIMD_STAMP_AVX512)

/**
 * Generic tail load/store for backends without mask registers: buffer
 * through a stack array so the vector ops see zeros in the unused
 * lanes. Correct everywhere (active lanes run the exact vector-body
 * operation sequence) but only called when a kernel chooses the masked
 * tail path, which is gated on kMaskedTails — these exist so that
 * branch compiles on every backend.
 */
inline CVec
loadsTail(const double *re, const double *im, std::size_t count)
{
    double bufRe[kLanes] = {};
    double bufIm[kLanes] = {};
    for (std::size_t i = 0; i < count; ++i) {
        bufRe[i] = re[i];
        bufIm[i] = im[i];
    }
    return loads(bufRe, bufIm);
}

inline void
storesTail(double *re, double *im, CVec a, std::size_t count)
{
    double bufRe[kLanes];
    double bufIm[kLanes];
    stores(bufRe, bufIm, a);
    for (std::size_t i = 0; i < count; ++i) {
        re[i] = bufRe[i];
        im[i] = bufIm[i];
    }
}

#endif

} // namespace simd
} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_SIMD_HH

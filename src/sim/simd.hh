/**
 * @file
 * Portable SIMD abstraction for the statevector kernels: a split
 * (structure-of-arrays) complex vector type `CVec` holding kLanes
 * real parts and kLanes imaginary parts in separate hardware vectors,
 * with deinterleaving loads / interleaving stores from the library's
 * interleaved std::complex<double> statevectors, plus plain contiguous
 * loads / stores (loads / stores) for data that is already split into
 * separate re/im double arrays — the batched trajectory layout of
 * sim::BatchState.
 *
 * Exactly one backend is compiled in, selected at configure time by the
 * CRISC_SIMD CMake option (auto / avx2 / neon / scalar), which defines
 * CRISC_SIMD_AVX2 or CRISC_SIMD_NEON for this translation unit; with
 * neither defined the scalar fallback (kLanes == 1) is used. A guard
 * below downgrades to scalar when the requested ISA is unavailable to
 * the compiler, so a stale cache entry can never break the build.
 *
 * Numerical contract: every lane of every operation performs exactly
 * the same IEEE-754 double operations, in the same order, as the
 * scalar reference kernels (two multiplies and a subtract for the real
 * part of a complex product, two multiplies and an add for the
 * imaginary part; no fused multiply-add). Vectorized kernels are
 * therefore bit-identical to the scalar path for finite inputs — the
 * pinned Figure-7 regressions hold on every backend. Keep it that way:
 * do not introduce FMA or reassociation here without revisiting the
 * pinned tests, and compile this TU with -ffp-contract=off.
 *
 * AVX2 lane order note: the deinterleaving load permutes lanes
 * (unpacklo/unpackhi yield element order 0,2,1,3), which is harmless —
 * all CVec operations are elementwise, every CVec in flight uses the
 * same permutation, and the store applies the exact inverse.
 */

#ifndef CRISC_SIM_SIMD_HH
#define CRISC_SIM_SIMD_HH

#include <complex>
#include <cstddef>

#if defined(CRISC_SIMD_AVX2) && !defined(__AVX2__)
#undef CRISC_SIMD_AVX2
#endif
#if defined(CRISC_SIMD_NEON) && !(defined(__ARM_NEON) || defined(__aarch64__))
#undef CRISC_SIMD_NEON
#endif

#if defined(CRISC_SIMD_AVX2)
#include <immintrin.h>
#elif defined(CRISC_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace crisc {
namespace sim {
namespace simd {

#if defined(CRISC_SIMD_AVX2)

inline constexpr std::size_t kLanes = 4;
inline constexpr const char *kBackendName = "avx2";

/** kLanes complex doubles in split (SoA) form. */
struct CVec
{
    __m256d re;
    __m256d im;
};

/** Deinterleaving load of kLanes consecutive complex amplitudes. */
inline CVec
loadc(const std::complex<double> *p)
{
    const double *d = reinterpret_cast<const double *>(p);
    const __m256d lo = _mm256_loadu_pd(d);     // r0 i0 r1 i1
    const __m256d hi = _mm256_loadu_pd(d + 4); // r2 i2 r3 i3
    return {_mm256_unpacklo_pd(lo, hi),        // r0 r2 r1 r3
            _mm256_unpackhi_pd(lo, hi)};       // i0 i2 i1 i3
}

/** Interleaving store; exact inverse of loadc's permutation. */
inline void
storec(std::complex<double> *p, CVec a)
{
    double *d = reinterpret_cast<double *>(p);
    _mm256_storeu_pd(d, _mm256_unpacklo_pd(a.re, a.im));
    _mm256_storeu_pd(d + 4, _mm256_unpackhi_pd(a.re, a.im));
}

/** Load of kLanes already-split amplitudes (no permutation). */
inline CVec
loads(const double *re, const double *im)
{
    return {_mm256_loadu_pd(re), _mm256_loadu_pd(im)};
}

/** Store of kLanes already-split amplitudes; inverse of loads. */
inline void
stores(double *re, double *im, CVec a)
{
    _mm256_storeu_pd(re, a.re);
    _mm256_storeu_pd(im, a.im);
}

inline CVec
broadcast(std::complex<double> c)
{
    return {_mm256_set1_pd(c.real()), _mm256_set1_pd(c.imag())};
}

inline CVec
add(CVec a, CVec b)
{
    return {_mm256_add_pd(a.re, b.re), _mm256_add_pd(a.im, b.im)};
}

inline CVec
neg(CVec a)
{
    const __m256d zero = _mm256_setzero_pd();
    return {_mm256_sub_pd(zero, a.re), _mm256_sub_pd(zero, a.im)};
}

/** Complex product, scalar operation order: (ar*br - ai*bi, ar*bi + ai*br). */
inline CVec
mul(CVec a, CVec b)
{
    return {_mm256_sub_pd(_mm256_mul_pd(a.re, b.re),
                          _mm256_mul_pd(a.im, b.im)),
            _mm256_add_pd(_mm256_mul_pd(a.re, b.im),
                          _mm256_mul_pd(a.im, b.re))};
}

/** Multiplication by -i: (re, im) -> (im, -re). */
inline CVec
mulNegI(CVec a)
{
    return {a.im, _mm256_sub_pd(_mm256_setzero_pd(), a.re)};
}

/** Multiplication by +i: (re, im) -> (-im, re). */
inline CVec
mulPosI(CVec a)
{
    return {_mm256_sub_pd(_mm256_setzero_pd(), a.im), a.re};
}

#elif defined(CRISC_SIMD_NEON)

inline constexpr std::size_t kLanes = 2;
inline constexpr const char *kBackendName = "neon";

struct CVec
{
    float64x2_t re;
    float64x2_t im;
};

inline CVec
loadc(const std::complex<double> *p)
{
    const float64x2x2_t v =
        vld2q_f64(reinterpret_cast<const double *>(p));
    return {v.val[0], v.val[1]};
}

inline void
storec(std::complex<double> *p, CVec a)
{
    float64x2x2_t v;
    v.val[0] = a.re;
    v.val[1] = a.im;
    vst2q_f64(reinterpret_cast<double *>(p), v);
}

inline CVec
loads(const double *re, const double *im)
{
    return {vld1q_f64(re), vld1q_f64(im)};
}

inline void
stores(double *re, double *im, CVec a)
{
    vst1q_f64(re, a.re);
    vst1q_f64(im, a.im);
}

inline CVec
broadcast(std::complex<double> c)
{
    return {vdupq_n_f64(c.real()), vdupq_n_f64(c.imag())};
}

inline CVec
add(CVec a, CVec b)
{
    return {vaddq_f64(a.re, b.re), vaddq_f64(a.im, b.im)};
}

inline CVec
neg(CVec a)
{
    return {vnegq_f64(a.re), vnegq_f64(a.im)};
}

inline CVec
mul(CVec a, CVec b)
{
    return {vsubq_f64(vmulq_f64(a.re, b.re), vmulq_f64(a.im, b.im)),
            vaddq_f64(vmulq_f64(a.re, b.im), vmulq_f64(a.im, b.re))};
}

inline CVec
mulNegI(CVec a)
{
    return {a.im, vnegq_f64(a.re)};
}

inline CVec
mulPosI(CVec a)
{
    return {vnegq_f64(a.im), a.re};
}

#else // scalar fallback

inline constexpr std::size_t kLanes = 1;
inline constexpr const char *kBackendName = "scalar";

struct CVec
{
    double re;
    double im;
};

inline CVec
loadc(const std::complex<double> *p)
{
    return {p->real(), p->imag()};
}

inline void
storec(std::complex<double> *p, CVec a)
{
    *p = {a.re, a.im};
}

inline CVec
loads(const double *re, const double *im)
{
    return {*re, *im};
}

inline void
stores(double *re, double *im, CVec a)
{
    *re = a.re;
    *im = a.im;
}

inline CVec
broadcast(std::complex<double> c)
{
    return {c.real(), c.imag()};
}

inline CVec
add(CVec a, CVec b)
{
    return {a.re + b.re, a.im + b.im};
}

inline CVec
neg(CVec a)
{
    return {-a.re, -a.im};
}

inline CVec
mul(CVec a, CVec b)
{
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}

inline CVec
mulNegI(CVec a)
{
    return {a.im, -a.re};
}

inline CVec
mulPosI(CVec a)
{
    return {-a.im, a.re};
}

#endif

} // namespace simd
} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_SIMD_HH

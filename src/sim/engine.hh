/**
 * @file
 * Statevector engine: compiles a circuit::Circuit into a plan of
 * specialized gate kernels before execution. Compilation
 *
 *   - fuses runs of adjacent single-qubit gates on the same qubit into
 *     one 2x2 kernel application (a Trotter layer of rz-rx-rz costs one
 *     sweep instead of three),
 *   - folds pending single-qubit products into a following two-qubit
 *     gate on the same qubits as one fused 2q x (1q (x) 1q) 4x4 kernel
 *     operand, so a 1q-dressed entangler costs a single quad sweep,
 *   - detects exactly-diagonal 1q/2q operators and lowers them to the
 *     phase-only kernels, and
 *   - lowers everything of width <= 2 to the strided pair/quad kernels
 *     in kernels.hh, leaving only k >= 3 gates on the generic dense
 *     path.
 *
 * A Plan is immutable after compile() and safe to execute from many
 * threads at once on distinct statevectors, which is what the
 * trajectory batch runner (batch.hh) does.
 *
 * Execution itself offers a second, orthogonal parallel axis: with
 * ExecOptions (batch.hh), each kernel sweep partitions its amplitude-
 * group index space (pairs / quads / dense tuples — a group is never
 * split, so chunks touch disjoint amplitudes) into cache-line-aligned
 * chunks executed on a sim::ThreadPool. Chunked sweeps replay the
 * serial per-amplitude operation sequence exactly, so state-parallel
 * execution is bit-identical to the serial and SIMD-serial backends
 * for any thread count and chunk size.
 */

#ifndef CRISC_SIM_ENGINE_HH
#define CRISC_SIM_ENGINE_HH

#include <array>
#include <cstddef>
#include <vector>

#include "circuit/circuit.hh"
#include "sim/batch.hh"
#include "sim/batch_state.hh"
#include "sim/kernels.hh"

namespace crisc {
namespace sim {

/** Which kernel a compiled operation dispatches to. */
enum class KernelKind
{
    OneQ,     ///< dense 2x2 via apply1q.
    OneQDiag, ///< diagonal 2x2 via apply1qDiag.
    TwoQ,     ///< dense 4x4 via apply2q.
    TwoQDiag, ///< diagonal 4x4 via apply2qDiag.
    Dense,    ///< generic k >= 3 gate via applyDense.
};

/** One lowered operation of a compiled plan. */
struct KernelOp
{
    KernelKind kind = KernelKind::OneQ;
    std::size_t q0 = 0; ///< most significant gate qubit.
    std::size_t q1 = 0; ///< second gate qubit (TwoQ / TwoQDiag only).
    /** 1q kernels use m[0..3]; 2q uses m[0..15]; diag kernels use the
     *  leading 2 or 4 entries as the diagonal. */
    std::array<Complex, 16> m{};
    Matrix dense;                     ///< Dense fallback operator.
    std::vector<std::size_t> qubits;  ///< Dense fallback qubit list.
};

/** Compilation statistics, reported by benchmarks and tests. */
struct PlanStats
{
    std::size_t sourceGates = 0; ///< gates in the input circuit.
    std::size_t kernelOps = 0;   ///< operations after lowering.
    std::size_t fusedGates = 0;  ///< 1q gates absorbed into a neighbour.
    std::size_t fusedInto2q = 0; ///< pending 1q products folded into a 4x4.
    std::size_t diagOps = 0;     ///< ops lowered to a diagonal kernel.
    std::size_t denseOps = 0;    ///< ops left on the generic path.
};

/** Options for compile(). */
struct CompileOptions
{
    bool fuseSingleQubit = true; ///< merge adjacent 1q gates per qubit.
    /**
     * Fold pending 1q products into a following 2q gate on the same
     * qubits: the quad kernel then applies m2q * (u_hi (x) u_lo) in one
     * sweep. Only has effect while fuseSingleQubit keeps 1q products
     * pending.
     */
    bool fuseTwoQubit = true;
};

/** An executable, immutable kernel plan for a fixed register width. */
class Plan
{
  public:
    Plan(std::size_t num_qubits, std::vector<KernelOp> ops, PlanStats stats)
        : nQubits_(num_qubits), ops_(std::move(ops)), stats_(stats)
    {
    }

    std::size_t numQubits() const { return nQubits_; }
    std::size_t dim() const { return std::size_t{1} << nQubits_; }
    const std::vector<KernelOp> &ops() const { return ops_; }
    const PlanStats &stats() const { return stats_; }

    /**
     * Executes the plan in place on a 2^n statevector, state-parallel
     * per @p opts (serial by default; bit-identical either way).
     */
    void execute(Complex *amps, const ExecOptions &opts = {}) const;

  private:
    std::size_t nQubits_;
    std::vector<KernelOp> ops_;
    PlanStats stats_;
};

/** Compiles a circuit into a kernel plan. */
Plan compile(const circuit::Circuit &c, const CompileOptions &opts = {});

/** Executes one lowered operation in place. */
void executeOp(const KernelOp &op, Complex *amps, std::size_t n_qubits);

/**
 * Executes one lowered operation, partitioning its sweep over
 * opts.pool (see ExecOptions). Serial — identical to the two-argument
 * form — when no pool is set, the pool has one thread, or the sweep is
 * too small to be worth forking.
 */
void executeOp(const KernelOp &op, Complex *amps, std::size_t n_qubits,
               const ExecOptions &opts);

/**
 * Executes the sub-range [group_begin, group_end) of one operation's
 * amplitude-group sweep (pairs for 1q, quads for 2q, 2^k-tuples for
 * dense); the parallel substrate, exported for the equivalence tests.
 */
void executeOpRange(const KernelOp &op, Complex *amps,
                    std::size_t n_qubits, std::size_t group_begin,
                    std::size_t group_end);

/** Amplitude groups in @p op's sweep on an n-qubit register. */
std::size_t opGroupCount(const KernelOp &op, std::size_t n_qubits);

/** Executes a plan in place on a 2^n statevector. */
void execute(const Plan &plan, Complex *amps);

/**
 * Executes a plan in place, running each kernel sweep state-parallel
 * per @p opts. When opts.pool is unset and opts.threads > 1, one
 * transient pool serves the whole plan execution.
 */
void execute(const Plan &plan, Complex *amps, const ExecOptions &opts);

// ---------------------------------------------------------------------
// Batched (SoA) execution: the third parallel axis. One plan is applied
// to every lane of a sim::BatchState at once; the batched kernels run
// SIMD lanes across the trajectory axis while replaying each lane's
// serial per-amplitude operation sequence, so lane t after
// executeBatched is bit-identical to executing the plan serially on
// statevector t. Composes with state-parallel chunking: the group axis
// partitions exactly as in executeOp, a group (all its lanes) is never
// split.
// ---------------------------------------------------------------------

/** Executes one lowered operation on every lane of a batch. */
void executeOpBatched(const KernelOp &op, BatchState &batch);

/**
 * Batched executeOp with state-parallel sweeps per @p opts. Serial when
 * no pool is set, the pool has one thread, or the sweep is too small.
 */
void executeOpBatched(const KernelOp &op, BatchState &batch,
                      const ExecOptions &opts);

/**
 * Executes groups [group_begin, group_end) of one operation's sweep on
 * every lane of a batch; the batched parallel substrate.
 */
void executeOpBatchedRange(const KernelOp &op, BatchState &batch,
                           std::size_t group_begin, std::size_t group_end);

/**
 * Executes a plan in place on every lane of a batch, state-parallel per
 * @p opts (serial by default; bit-identical either way).
 * @throws std::invalid_argument when the batch width does not match the
 *         plan width.
 */
void executeBatched(const Plan &plan, BatchState &batch,
                    const ExecOptions &opts = {});

/** Executes a plan on |0...0> and returns the resulting statevector. */
linalg::CVector run(const Plan &plan);

/** run with state-parallel sweeps per @p opts. */
linalg::CVector run(const Plan &plan, const ExecOptions &opts);

} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_ENGINE_HH

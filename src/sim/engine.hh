/**
 * @file
 * Statevector engine: compiles a circuit::Circuit into a plan of
 * specialized gate kernels before execution. Compilation
 *
 *   - fuses runs of adjacent single-qubit gates on the same qubit into
 *     one 2x2 kernel application (a Trotter layer of rz-rx-rz costs one
 *     sweep instead of three),
 *   - folds pending single-qubit products into a following two-qubit
 *     gate on the same qubits as one fused 2q x (1q (x) 1q) 4x4 kernel
 *     operand, so a 1q-dressed entangler costs a single quad sweep,
 *   - detects exactly-diagonal 1q/2q operators and lowers them to the
 *     phase-only kernels, and
 *   - lowers everything of width <= 2 to the strided pair/quad kernels
 *     in kernels.hh, leaving only k >= 3 gates on the generic dense
 *     path.
 *
 * A Plan is immutable after compile() and safe to execute from many
 * threads at once on distinct statevectors, which is what the
 * trajectory batch runner (batch.hh) does.
 */

#ifndef CRISC_SIM_ENGINE_HH
#define CRISC_SIM_ENGINE_HH

#include <array>
#include <cstddef>
#include <vector>

#include "circuit/circuit.hh"
#include "sim/kernels.hh"

namespace crisc {
namespace sim {

/** Which kernel a compiled operation dispatches to. */
enum class KernelKind
{
    OneQ,     ///< dense 2x2 via apply1q.
    OneQDiag, ///< diagonal 2x2 via apply1qDiag.
    TwoQ,     ///< dense 4x4 via apply2q.
    TwoQDiag, ///< diagonal 4x4 via apply2qDiag.
    Dense,    ///< generic k >= 3 gate via applyDense.
};

/** One lowered operation of a compiled plan. */
struct KernelOp
{
    KernelKind kind = KernelKind::OneQ;
    std::size_t q0 = 0; ///< most significant gate qubit.
    std::size_t q1 = 0; ///< second gate qubit (TwoQ / TwoQDiag only).
    /** 1q kernels use m[0..3]; 2q uses m[0..15]; diag kernels use the
     *  leading 2 or 4 entries as the diagonal. */
    std::array<Complex, 16> m{};
    Matrix dense;                     ///< Dense fallback operator.
    std::vector<std::size_t> qubits;  ///< Dense fallback qubit list.
};

/** Compilation statistics, reported by benchmarks and tests. */
struct PlanStats
{
    std::size_t sourceGates = 0; ///< gates in the input circuit.
    std::size_t kernelOps = 0;   ///< operations after lowering.
    std::size_t fusedGates = 0;  ///< 1q gates absorbed into a neighbour.
    std::size_t fusedInto2q = 0; ///< pending 1q products folded into a 4x4.
    std::size_t diagOps = 0;     ///< ops lowered to a diagonal kernel.
    std::size_t denseOps = 0;    ///< ops left on the generic path.
};

/** Options for compile(). */
struct CompileOptions
{
    bool fuseSingleQubit = true; ///< merge adjacent 1q gates per qubit.
    /**
     * Fold pending 1q products into a following 2q gate on the same
     * qubits: the quad kernel then applies m2q * (u_hi (x) u_lo) in one
     * sweep. Only has effect while fuseSingleQubit keeps 1q products
     * pending.
     */
    bool fuseTwoQubit = true;
};

/** An executable, immutable kernel plan for a fixed register width. */
class Plan
{
  public:
    Plan(std::size_t num_qubits, std::vector<KernelOp> ops, PlanStats stats)
        : nQubits_(num_qubits), ops_(std::move(ops)), stats_(stats)
    {
    }

    std::size_t numQubits() const { return nQubits_; }
    std::size_t dim() const { return std::size_t{1} << nQubits_; }
    const std::vector<KernelOp> &ops() const { return ops_; }
    const PlanStats &stats() const { return stats_; }

  private:
    std::size_t nQubits_;
    std::vector<KernelOp> ops_;
    PlanStats stats_;
};

/** Compiles a circuit into a kernel plan. */
Plan compile(const circuit::Circuit &c, const CompileOptions &opts = {});

/** Executes one lowered operation in place. */
void executeOp(const KernelOp &op, Complex *amps, std::size_t n_qubits);

/** Executes a plan in place on a 2^n statevector. */
void execute(const Plan &plan, Complex *amps);

/** Executes a plan on |0...0> and returns the resulting statevector. */
linalg::CVector run(const Plan &plan);

} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_ENGINE_HH

/**
 * @file
 * Statevector engine: compiles a circuit::Circuit into a plan of
 * specialized gate kernels before execution. Compilation
 *
 *   - fuses runs of adjacent single-qubit gates on the same qubit into
 *     one 2x2 kernel application (a Trotter layer of rz-rx-rz costs one
 *     sweep instead of three),
 *   - folds pending single-qubit products into a following two-qubit
 *     gate on the same qubits as one fused 2q x (1q (x) 1q) 4x4 kernel
 *     operand, so a 1q-dressed entangler costs a single quad sweep,
 *   - detects exactly-diagonal 1q/2q operators and lowers them to the
 *     phase-only kernels, and
 *   - lowers everything of width <= 2 to the strided pair/quad kernels
 *     in kernels.hh, leaving only k >= 3 gates on the generic dense
 *     path.
 *
 * A Plan is immutable after compile() and safe to execute from many
 * threads at once on distinct statevectors, which is what the
 * trajectory batch runner (batch.hh) does.
 *
 * Execution itself offers a second, orthogonal parallel axis: with
 * ExecOptions (batch.hh), each kernel sweep partitions its amplitude-
 * group index space (pairs / quads / dense tuples — a group is never
 * split, so chunks touch disjoint amplitudes) into cache-line-aligned
 * chunks executed on a sim::ThreadPool. Chunked sweeps replay the
 * serial per-amplitude operation sequence exactly, so state-parallel
 * execution is bit-identical to the serial and SIMD-serial backends
 * for any thread count and chunk size.
 *
 * Plan-level execution additionally supports a cache-blocked mode
 * (ExecOptions::blockQubits, see sim/cache.hh for the auto policy):
 * the ops are partitioned into maximal *blockable segments* — runs of
 * consecutive ops whose target index bits all lie below a block
 * exponent b (in this library's convention, qubit q addresses index
 * bit n-1-q, so an op is blockable when every target qubit q
 * satisfies n-1-q < b) — and each blockable segment inverts the loop
 * nest: the 2^(n-b) contiguous amplitude blocks of 2^b amplitudes
 * form the outer loop, and *all* of the segment's ops are applied to
 * one block (L2-resident) before the next, instead of one full-
 * register DRAM stream per op. A blockable op never couples
 * amplitudes across a block boundary and every amplitude still sees
 * the segment's ops in plan order with the serial per-amplitude IEEE
 * sequence, so blocked execution is bit-identical to every other
 * backend; blocks are the parallel granule (blocks across pool
 * threads), and the mode composes with SoA-batched lanes
 * (executeBlockedBatched).
 */

#ifndef CRISC_SIM_ENGINE_HH
#define CRISC_SIM_ENGINE_HH

#include <array>
#include <cstddef>
#include <vector>

#include "circuit/circuit.hh"
#include "sim/batch.hh"
#include "sim/batch_state.hh"
#include "sim/kernels.hh"

namespace crisc {
namespace sim {

/** Which kernel a compiled operation dispatches to. */
enum class KernelKind
{
    OneQ,     ///< dense 2x2 via apply1q.
    OneQDiag, ///< diagonal 2x2 via apply1qDiag.
    TwoQ,     ///< dense 4x4 via apply2q.
    TwoQDiag, ///< diagonal 4x4 via apply2qDiag.
    Dense,    ///< generic k >= 3 gate via applyDense.
};

/** One lowered operation of a compiled plan. */
struct KernelOp
{
    KernelKind kind = KernelKind::OneQ;
    std::size_t q0 = 0; ///< most significant gate qubit.
    std::size_t q1 = 0; ///< second gate qubit (TwoQ / TwoQDiag only).
    /** 1q kernels use m[0..3]; 2q uses m[0..15]; diag kernels use the
     *  leading 2 or 4 entries as the diagonal. */
    std::array<Complex, 16> m{};
    Matrix dense;                     ///< Dense fallback operator.
    std::vector<std::size_t> qubits;  ///< Dense fallback qubit list.
};

/** Compilation statistics, reported by benchmarks and tests. */
struct PlanStats
{
    std::size_t sourceGates = 0; ///< gates in the input circuit.
    std::size_t kernelOps = 0;   ///< operations after lowering.
    std::size_t fusedGates = 0;  ///< 1q gates absorbed into a neighbour.
    std::size_t fusedInto2q = 0; ///< pending 1q products folded into a 4x4.
    std::size_t diagOps = 0;     ///< ops lowered to a diagonal kernel.
    std::size_t denseOps = 0;    ///< ops left on the generic path.
    /** Blockable segments at the plan's auto block exponent
     *  (autoBlockQubits(n), cache.hh) — informational; execution
     *  re-partitions for whatever exponent it resolves. */
    std::size_t blockedSegments = 0;
    /** Ops inside those blockable segments. */
    std::size_t blockableOps = 0;
    /** Shard-crossing ops lowered to pairwise amplitude exchanges by
     *  the shard pass (compileSharded, shard.hh); 0 for unsharded
     *  plans. */
    std::size_t exchangeOps = 0;
    /** Qubit-permutation remap steps emitted by the shard pass,
     *  including the closing remaps that restore the canonical
     *  layout; 0 for unsharded plans. */
    std::size_t remapOps = 0;
};

/**
 * One maximal run of consecutive plan ops sharing blockability at a
 * given block exponent (blockSegments). Segments tile the op sequence
 * in order: non-blockable segments execute as full-register sweeps
 * and act as barriers between the blocked loop nests on either side.
 */
struct BlockSegment
{
    std::size_t first = 0;   ///< index of the segment's first op.
    std::size_t count = 0;   ///< ops in the segment.
    bool blockable = false;  ///< all ops confined to 2^b-sized blocks.
};

/** Options for compile(). */
struct CompileOptions
{
    bool fuseSingleQubit = true; ///< merge adjacent 1q gates per qubit.
    /**
     * Fold pending 1q products into a following 2q gate on the same
     * qubits: the quad kernel then applies m2q * (u_hi (x) u_lo) in one
     * sweep. Only has effect while fuseSingleQubit keeps 1q products
     * pending.
     */
    bool fuseTwoQubit = true;
};

/** An executable, immutable kernel plan for a fixed register width. */
class Plan
{
  public:
    Plan(std::size_t num_qubits, std::vector<KernelOp> ops,
         PlanStats stats);

    std::size_t numQubits() const { return nQubits_; }
    std::size_t dim() const { return std::size_t{1} << nQubits_; }
    const std::vector<KernelOp> &ops() const { return ops_; }
    const PlanStats &stats() const { return stats_; }

    /**
     * Per-op blocking metadata: entry i is the smallest block exponent
     * at which op i is blockable — one past its highest target index
     * bit, i.e. n - min(target qubits). Op i is confined to contiguous
     * 2^b-amplitude blocks exactly when minBlockBits()[i] <= b.
     */
    const std::vector<std::size_t> &minBlockBits() const
    {
        return minBlockBits_;
    }

    /**
     * Executes the plan in place on a 2^n statevector, state-parallel
     * and/or cache-blocked per @p opts (serial unblocked by default at
     * narrow widths; bit-identical every way).
     */
    void execute(Complex *amps, const ExecOptions &opts = {}) const;

  private:
    std::size_t nQubits_;
    std::vector<KernelOp> ops_;
    std::vector<std::size_t> minBlockBits_;
    PlanStats stats_;
};

/**
 * Partitions @p plan's op sequence into maximal segments of uniform
 * blockability at block exponent @p block_qubits (in [1, n]); the
 * segments tile [0, ops) in order. An empty plan yields no segments.
 * @throws std::invalid_argument when block_qubits is 0 or exceeds the
 *         plan width.
 */
std::vector<BlockSegment> blockSegments(const Plan &plan,
                                        std::size_t block_qubits);

/** Compiles a circuit into a kernel plan. */
Plan compile(const circuit::Circuit &c, const CompileOptions &opts = {});

/** Executes one lowered operation in place. */
void executeOp(const KernelOp &op, Complex *amps, std::size_t n_qubits);

/**
 * Executes one lowered operation, partitioning its sweep over
 * opts.pool (see ExecOptions). Serial — identical to the two-argument
 * form — when no pool is set, the pool has one thread, or the sweep is
 * too small to be worth forking.
 */
void executeOp(const KernelOp &op, Complex *amps, std::size_t n_qubits,
               const ExecOptions &opts);

/**
 * Executes the sub-range [group_begin, group_end) of one operation's
 * amplitude-group sweep (pairs for 1q, quads for 2q, 2^k-tuples for
 * dense); the parallel substrate, exported for the equivalence tests.
 */
void executeOpRange(const KernelOp &op, Complex *amps,
                    std::size_t n_qubits, std::size_t group_begin,
                    std::size_t group_end);

/** Amplitude groups in @p op's sweep on an n-qubit register. */
std::size_t opGroupCount(const KernelOp &op, std::size_t n_qubits);

/** Executes a plan in place on a 2^n statevector. */
void execute(const Plan &plan, Complex *amps);

/**
 * Executes a plan in place, running each kernel sweep state-parallel
 * per @p opts. When opts.pool is unset and opts.threads > 1, one
 * transient pool serves the whole plan execution. When
 * opts.blockQubits resolves to a block exponent (resolveBlockQubits,
 * cache.hh — auto-on from kAutoBlockFromWidth qubits), dispatches to
 * executeBlocked; results are bit-identical either way.
 */
void execute(const Plan &plan, Complex *amps, const ExecOptions &opts);

/**
 * Cache-blocked plan execution: partitions the ops into blockable
 * segments at block exponent @p block_qubits (blockSegments) and, for
 * each blockable segment, iterates the 2^(n-b) contiguous amplitude
 * blocks in the outer loop, applying all of the segment's ops to one
 * L2-resident block before the next. Non-blockable segments run as
 * ordinary full-register sweeps (chunked per @p opts). Blocks are
 * independent within a segment, so a pool in @p opts partitions the
 * block axis; when opts.pool is unset and opts.threads > 1 a
 * transient pool is created. Bit-identical to serial execution for
 * every block exponent, thread count, and chunk size.
 * @throws std::invalid_argument when block_qubits is 0 or exceeds the
 *         plan width (resolveBlockQubits clamps the user-facing knob
 *         before it reaches here).
 */
void executeBlocked(const Plan &plan, Complex *amps,
                    std::size_t block_qubits,
                    const ExecOptions &opts = {});

/**
 * Executes ops [op_begin, op_end) of @p plan — which must all be
 * blockable at @p block_qubits — over amplitude blocks
 * [block_begin, block_end) of the 2^(n - block_qubits) total, with
 * the block-outer loop nest; the blocked parallel substrate, exported
 * for the equivalence tests.
 * @throws std::invalid_argument on an op that is not blockable at
 *         @p block_qubits or an out-of-range op/block interval.
 */
void executeBlockedRange(const Plan &plan, std::size_t op_begin,
                         std::size_t op_end, Complex *amps,
                         std::size_t block_qubits,
                         std::size_t block_begin, std::size_t block_end);

// ---------------------------------------------------------------------
// Batched (SoA) execution: the third parallel axis. One plan is applied
// to every lane of a sim::BatchState at once; the batched kernels run
// SIMD lanes across the trajectory axis while replaying each lane's
// serial per-amplitude operation sequence, so lane t after
// executeBatched is bit-identical to executing the plan serially on
// statevector t. Composes with state-parallel chunking: the group axis
// partitions exactly as in executeOp, a group (all its lanes) is never
// split.
// ---------------------------------------------------------------------

/** Executes one lowered operation on every lane of a batch. */
void executeOpBatched(const KernelOp &op, BatchState &batch);

/**
 * Batched executeOp with state-parallel sweeps per @p opts. Serial when
 * no pool is set, the pool has one thread, or the sweep is too small.
 */
void executeOpBatched(const KernelOp &op, BatchState &batch,
                      const ExecOptions &opts);

/**
 * Executes groups [group_begin, group_end) of one operation's sweep on
 * every lane of a batch; the batched parallel substrate.
 */
void executeOpBatchedRange(const KernelOp &op, BatchState &batch,
                           std::size_t group_begin, std::size_t group_end);

/**
 * Executes a plan in place on every lane of a batch, state-parallel per
 * @p opts (serial by default; bit-identical either way). When
 * opts.blockQubits resolves to a block exponent, dispatches to
 * executeBlockedBatched.
 * @throws std::invalid_argument when the batch width does not match the
 *         plan width.
 */
void executeBatched(const Plan &plan, BatchState &batch,
                    const ExecOptions &opts = {});

/**
 * executeBlocked on every lane of a batch: the same blockable-segment
 * partition and block-outer loop nest, with each block's lanes
 * advanced together by the batched range kernels. Every lane is
 * bit-identical to executing the plan serially on that lane's
 * statevector, for every block exponent, thread count, and lane
 * count.
 * @throws std::invalid_argument on a width mismatch or an invalid
 *         block exponent (as executeBlocked).
 */
void executeBlockedBatched(const Plan &plan, BatchState &batch,
                           std::size_t block_qubits,
                           const ExecOptions &opts = {});

/** Executes a plan on |0...0> and returns the resulting statevector. */
linalg::CVector run(const Plan &plan);

/** run with state-parallel sweeps per @p opts. */
linalg::CVector run(const Plan &plan, const ExecOptions &opts);

} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_ENGINE_HH

#include "batch_state.hh"

#include <stdexcept>
#include <string>

namespace crisc {
namespace sim {

BatchState::BatchState(std::size_t n_qubits, std::size_t batch)
    : nQubits_(n_qubits), batch_(batch)
{
    if (batch == 0)
        throw std::invalid_argument("BatchState: batch must be at least 1");
    const std::size_t total = dim() * batch_;
    re_.assign(total, 0.0);
    im_.assign(total, 0.0);
    for (std::size_t t = 0; t < batch_; ++t)
        re_[t] = 1.0; // |0...0> in every lane.
}

BatchState
BatchState::pack(const std::vector<linalg::CVector> &states)
{
    if (states.empty())
        throw std::invalid_argument("BatchState::pack: empty batch");
    const std::size_t dim = states[0].size();
    if (dim == 0 || (dim & (dim - 1)) != 0)
        throw std::invalid_argument(
            "BatchState::pack: statevector length must be a power of two, "
            "got " +
            std::to_string(dim));
    std::size_t n = 0;
    while ((std::size_t{1} << n) < dim)
        ++n;
    BatchState out(n, states.size());
    for (std::size_t t = 0; t < states.size(); ++t)
        out.packLane(t, states[t]);
    return out;
}

void
BatchState::packLane(std::size_t lane, const linalg::CVector &amps)
{
    if (lane >= batch_)
        throw std::invalid_argument("BatchState::packLane: lane " +
                                    std::to_string(lane) +
                                    " out of range");
    if (amps.size() != dim())
        throw std::invalid_argument(
            "BatchState::packLane: statevector has " +
            std::to_string(amps.size()) + " amplitudes, batch expects " +
            std::to_string(dim()));
    for (std::size_t i = 0; i < amps.size(); ++i) {
        re_[i * batch_ + lane] = amps[i].real();
        im_[i * batch_ + lane] = amps[i].imag();
    }
}

linalg::CVector
BatchState::unpackLane(std::size_t lane) const
{
    if (lane >= batch_)
        throw std::invalid_argument("BatchState::unpackLane: lane " +
                                    std::to_string(lane) +
                                    " out of range");
    linalg::CVector amps(dim());
    for (std::size_t i = 0; i < amps.size(); ++i)
        amps[i] = {re_[i * batch_ + lane], im_[i * batch_ + lane]};
    return amps;
}

std::vector<linalg::CVector>
BatchState::unpack() const
{
    std::vector<linalg::CVector> out;
    out.reserve(batch_);
    for (std::size_t t = 0; t < batch_; ++t)
        out.push_back(unpackLane(t));
    return out;
}

} // namespace sim
} // namespace crisc

/**
 * @file
 * AVX2 backend stamp: kernels_impl.hh instantiated over the 4-lane
 * __m256d simd backend. Compiled with -mavx2 -ffp-contract=off (see
 * CMakeLists.txt); only dispatch.cc may call into this TU, and only
 * after the CPU probe (or an explicit override) confirmed AVX2.
 */

#define CRISC_SIMD_STAMP_AVX2 1
#define CRISC_KERNEL_TABLE_FN avx2KernelTable
#define CRISC_KERNEL_BACKEND_ID Backend::Avx2

#include "sim/kernels_impl.hh"

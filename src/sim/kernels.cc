#include "kernels.hh"

#include <algorithm>
#include <stdexcept>

#include "sim/simd.hh"

namespace crisc {
namespace sim {

namespace {

/** Inserts a zero bit at position @p pos, shifting higher bits left. */
inline std::size_t
insertZeroBit(std::size_t x, std::size_t pos)
{
    const std::size_t low = x & ((std::size_t{1} << pos) - 1);
    return ((x >> pos) << (pos + 1)) | low;
}

} // namespace

const char *
simdBackendName()
{
    return simd::kBackendName;
}

std::size_t
simdLanes()
{
    return simd::kLanes;
}

bool
exactlyDiagonal(const Matrix &op)
{
    for (std::size_t r = 0; r < op.rows(); ++r)
        for (std::size_t c = 0; c < op.cols(); ++c)
            if (r != c && op(r, c) != Complex{0.0, 0.0})
                return false;
    return true;
}

// ---------------------------------------------------------------------
// Scalar reference kernels. The SIMD kernels below must match these bit
// for bit on finite amplitudes (same per-element operation order, no
// FMA); test_simd pins the equivalence.
// ---------------------------------------------------------------------

namespace scalar {

void
apply1q(Complex *amps, std::size_t n_qubits, std::size_t qubit,
        const Complex m[4])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    const Complex m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
            const Complex a0 = amps[i];
            const Complex a1 = amps[i + stride];
            amps[i] = m00 * a0 + m01 * a1;
            amps[i + stride] = m10 * a0 + m11 * a1;
        }
    }
}

void
apply1qDiag(Complex *amps, std::size_t n_qubits, std::size_t qubit,
            Complex d0, Complex d1)
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
            amps[i] *= d0;
            amps[i + stride] *= d1;
        }
    }
}

void
applyPauli(Complex *amps, std::size_t n_qubits, std::size_t qubit,
           std::size_t pauli_index)
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    switch (pauli_index) {
      case 1: // X: swap the pair.
        for (std::size_t base = 0; base < dim; base += 2 * stride)
            for (std::size_t i = base; i < base + stride; ++i)
                std::swap(amps[i], amps[i + stride]);
        return;
      case 2: // Y = [[0, -i], [i, 0]].
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride; ++i) {
                const Complex a0 = amps[i];
                const Complex a1 = amps[i + stride];
                amps[i] = Complex{a1.imag(), -a1.real()};          // -i a1
                amps[i + stride] = Complex{-a0.imag(), a0.real()}; //  i a0
            }
        }
        return;
      case 3: // Z: negate the |1> half of each pair.
        for (std::size_t base = 0; base < dim; base += 2 * stride)
            for (std::size_t i = base; i < base + stride; ++i)
                amps[i + stride] = -amps[i + stride];
        return;
      default:
        throw std::invalid_argument("applyPauli: index must be 1..3");
    }
}

void
apply2q(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
        std::size_t q_lo, const Complex m[16])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t p_hi = n_qubits - 1 - q_hi; // weight-2 gate bit.
    const std::size_t p_lo = n_qubits - 1 - q_lo; // weight-1 gate bit.
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;

    for (std::size_t g = 0; g < dim >> 2; ++g) {
        // Expand the group counter into the base index with both
        // addressed bits zero; bases come out in ascending order.
        const std::size_t base =
            insertZeroBit(insertZeroBit(g, first), second);
        const std::size_t i1 = base | m_lo;
        const std::size_t i2 = base | m_hi;
        const std::size_t i3 = base | m_hi | m_lo;
        const Complex a0 = amps[base];
        const Complex a1 = amps[i1];
        const Complex a2 = amps[i2];
        const Complex a3 = amps[i3];
        amps[base] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
        amps[i1] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
        amps[i2] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
        amps[i3] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
    }
}

void
apply2qDiag(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
            std::size_t q_lo, const Complex d[4])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;

    for (std::size_t g = 0; g < dim >> 2; ++g) {
        const std::size_t base =
            insertZeroBit(insertZeroBit(g, first), second);
        amps[base] *= d[0];
        amps[base | m_lo] *= d[1];
        amps[base | m_hi] *= d[2];
        amps[base | m_hi | m_lo] *= d[3];
    }
}

// Range forms: identical per-pair/per-quad arithmetic, with the group
// counter mapped to its base index directly (pair p of the qubit's
// sweep is the p-th pair in ascending memory order, ditto quads).

void
apply1qRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
             const Complex m[4], std::size_t pair_begin,
             std::size_t pair_end)
{
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = std::size_t{1} << pos;
    const Complex m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    for (std::size_t p = pair_begin; p < pair_end; ++p) {
        const std::size_t i = insertZeroBit(p, pos);
        const Complex a0 = amps[i];
        const Complex a1 = amps[i + stride];
        amps[i] = m00 * a0 + m01 * a1;
        amps[i + stride] = m10 * a0 + m11 * a1;
    }
}

void
apply1qDiagRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                 Complex d0, Complex d1, std::size_t pair_begin,
                 std::size_t pair_end)
{
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = std::size_t{1} << pos;
    for (std::size_t p = pair_begin; p < pair_end; ++p) {
        const std::size_t i = insertZeroBit(p, pos);
        amps[i] *= d0;
        amps[i + stride] *= d1;
    }
}

void
apply2qRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
             std::size_t q_lo, const Complex m[16],
             std::size_t quad_begin, std::size_t quad_end)
{
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;

    for (std::size_t g = quad_begin; g < quad_end; ++g) {
        const std::size_t base =
            insertZeroBit(insertZeroBit(g, first), second);
        const std::size_t i1 = base | m_lo;
        const std::size_t i2 = base | m_hi;
        const std::size_t i3 = base | m_hi | m_lo;
        const Complex a0 = amps[base];
        const Complex a1 = amps[i1];
        const Complex a2 = amps[i2];
        const Complex a3 = amps[i3];
        amps[base] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
        amps[i1] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
        amps[i2] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
        amps[i3] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
    }
}

void
apply2qDiagRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
                 std::size_t q_lo, const Complex d[4],
                 std::size_t quad_begin, std::size_t quad_end)
{
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;

    for (std::size_t g = quad_begin; g < quad_end; ++g) {
        const std::size_t base =
            insertZeroBit(insertZeroBit(g, first), second);
        amps[base] *= d[0];
        amps[base | m_lo] *= d[1];
        amps[base | m_hi] *= d[2];
        amps[base | m_hi | m_lo] *= d[3];
    }
}

} // namespace scalar

// ---------------------------------------------------------------------
// SIMD kernels. Each addressed contiguous run has power-of-two length,
// so once a run is at least simd::kLanes wide it divides evenly — no
// tail loops. Shorter runs (gate qubits within log2(kLanes) of the
// least significant bit, or whole registers smaller than a vector)
// take the scalar reference path.
// ---------------------------------------------------------------------

void
apply1q(Complex *amps, std::size_t n_qubits, std::size_t qubit,
        const Complex m[4])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    if (stride < simd::kLanes) {
        scalar::apply1q(amps, n_qubits, qubit, m);
        return;
    }
    const simd::CVec m00 = simd::broadcast(m[0]);
    const simd::CVec m01 = simd::broadcast(m[1]);
    const simd::CVec m10 = simd::broadcast(m[2]);
    const simd::CVec m11 = simd::broadcast(m[3]);
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; i += simd::kLanes) {
            const simd::CVec a0 = simd::loadc(amps + i);
            const simd::CVec a1 = simd::loadc(amps + i + stride);
            simd::storec(amps + i,
                         simd::add(simd::mul(m00, a0), simd::mul(m01, a1)));
            simd::storec(amps + i + stride,
                         simd::add(simd::mul(m10, a0), simd::mul(m11, a1)));
        }
    }
}

void
apply1qDiag(Complex *amps, std::size_t n_qubits, std::size_t qubit,
            Complex d0, Complex d1)
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    if (stride < simd::kLanes) {
        scalar::apply1qDiag(amps, n_qubits, qubit, d0, d1);
        return;
    }
    const simd::CVec v0 = simd::broadcast(d0);
    const simd::CVec v1 = simd::broadcast(d1);
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; i += simd::kLanes) {
            simd::storec(amps + i, simd::mul(simd::loadc(amps + i), v0));
            simd::storec(amps + i + stride,
                         simd::mul(simd::loadc(amps + i + stride), v1));
        }
    }
}

void
applyPauli(Complex *amps, std::size_t n_qubits, std::size_t qubit,
           std::size_t pauli_index)
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    if (stride < simd::kLanes) {
        scalar::applyPauli(amps, n_qubits, qubit, pauli_index);
        return;
    }
    switch (pauli_index) {
      case 1: // X: swap the pair.
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride;
                 i += simd::kLanes) {
                const simd::CVec a0 = simd::loadc(amps + i);
                const simd::CVec a1 = simd::loadc(amps + i + stride);
                simd::storec(amps + i, a1);
                simd::storec(amps + i + stride, a0);
            }
        }
        return;
      case 2: // Y = [[0, -i], [i, 0]].
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride;
                 i += simd::kLanes) {
                const simd::CVec a0 = simd::loadc(amps + i);
                const simd::CVec a1 = simd::loadc(amps + i + stride);
                simd::storec(amps + i, simd::mulNegI(a1));
                simd::storec(amps + i + stride, simd::mulPosI(a0));
            }
        }
        return;
      case 3: // Z: negate the |1> half of each pair.
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride;
                 i += simd::kLanes) {
                simd::storec(amps + i + stride,
                             simd::neg(simd::loadc(amps + i + stride)));
            }
        }
        return;
      default:
        throw std::invalid_argument("applyPauli: index must be 1..3");
    }
}

void
apply2q(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
        std::size_t q_lo, const Complex m[16])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t p_hi = n_qubits - 1 - q_hi; // weight-2 gate bit.
    const std::size_t p_lo = n_qubits - 1 - q_lo; // weight-1 gate bit.
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    const std::size_t s1 = std::size_t{1} << first;
    const std::size_t s2 = std::size_t{1} << second;
    if (s1 < simd::kLanes) {
        scalar::apply2q(amps, n_qubits, q_hi, q_lo, m);
        return;
    }
    simd::CVec mv[16];
    for (std::size_t i = 0; i < 16; ++i)
        mv[i] = simd::broadcast(m[i]);
    // Enumerate bases with both addressed bits zero as nested strided
    // blocks; the innermost run of s1 consecutive bases vectorizes.
    for (std::size_t blk = 0; blk < dim; blk += 2 * s2) {
        for (std::size_t sub = blk; sub < blk + s2; sub += 2 * s1) {
            for (std::size_t base = sub; base < sub + s1;
                 base += simd::kLanes) {
                const simd::CVec a0 = simd::loadc(amps + base);
                const simd::CVec a1 = simd::loadc(amps + base + m_lo);
                const simd::CVec a2 = simd::loadc(amps + base + m_hi);
                const simd::CVec a3 =
                    simd::loadc(amps + base + m_hi + m_lo);
                simd::storec(
                    amps + base,
                    simd::add(simd::add(simd::add(simd::mul(mv[0], a0),
                                                  simd::mul(mv[1], a1)),
                                        simd::mul(mv[2], a2)),
                              simd::mul(mv[3], a3)));
                simd::storec(
                    amps + base + m_lo,
                    simd::add(simd::add(simd::add(simd::mul(mv[4], a0),
                                                  simd::mul(mv[5], a1)),
                                        simd::mul(mv[6], a2)),
                              simd::mul(mv[7], a3)));
                simd::storec(
                    amps + base + m_hi,
                    simd::add(simd::add(simd::add(simd::mul(mv[8], a0),
                                                  simd::mul(mv[9], a1)),
                                        simd::mul(mv[10], a2)),
                              simd::mul(mv[11], a3)));
                simd::storec(
                    amps + base + m_hi + m_lo,
                    simd::add(simd::add(simd::add(simd::mul(mv[12], a0),
                                                  simd::mul(mv[13], a1)),
                                        simd::mul(mv[14], a2)),
                              simd::mul(mv[15], a3)));
            }
        }
    }
}

void
apply2qDiag(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
            std::size_t q_lo, const Complex d[4])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    const std::size_t s1 = std::size_t{1} << first;
    const std::size_t s2 = std::size_t{1} << second;
    if (s1 < simd::kLanes) {
        scalar::apply2qDiag(amps, n_qubits, q_hi, q_lo, d);
        return;
    }
    const simd::CVec d0 = simd::broadcast(d[0]);
    const simd::CVec d1 = simd::broadcast(d[1]);
    const simd::CVec d2 = simd::broadcast(d[2]);
    const simd::CVec d3 = simd::broadcast(d[3]);
    for (std::size_t blk = 0; blk < dim; blk += 2 * s2) {
        for (std::size_t sub = blk; sub < blk + s2; sub += 2 * s1) {
            for (std::size_t base = sub; base < sub + s1;
                 base += simd::kLanes) {
                simd::storec(amps + base,
                             simd::mul(simd::loadc(amps + base), d0));
                simd::storec(
                    amps + base + m_lo,
                    simd::mul(simd::loadc(amps + base + m_lo), d1));
                simd::storec(
                    amps + base + m_hi,
                    simd::mul(simd::loadc(amps + base + m_hi), d2));
                simd::storec(
                    amps + base + m_hi + m_lo,
                    simd::mul(simd::loadc(amps + base + m_hi + m_lo), d3));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Group-range kernels (see kernels.hh): the same SIMD dispatch as the
// full kernels, applied to one sub-interval of the group index space.
// A range decomposes into whole contiguous stride runs plus partial
// runs at its ends; within a run the base index advances with the
// group counter, so the vector body applies unchanged and partial-
// vector tails fall back to the scalar per-group body. Both bodies
// perform the identical per-amplitude IEEE operation sequence, so any
// partition reassembles the serial sweep bit for bit.
// ---------------------------------------------------------------------

void
apply1qRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
             const Complex m[4], std::size_t pair_begin,
             std::size_t pair_end)
{
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = std::size_t{1} << pos;
    if (stride < simd::kLanes) {
        scalar::apply1qRange(amps, n_qubits, qubit, m, pair_begin,
                             pair_end);
        return;
    }
    const simd::CVec m00 = simd::broadcast(m[0]);
    const simd::CVec m01 = simd::broadcast(m[1]);
    const simd::CVec m10 = simd::broadcast(m[2]);
    const simd::CVec m11 = simd::broadcast(m[3]);
    std::size_t p = pair_begin;
    while (p < pair_end) {
        // Pairs [p, runEnd) share one contiguous stride run.
        const std::size_t runEnd =
            std::min(pair_end, (p & ~(stride - 1)) + stride);
        std::size_t i = insertZeroBit(p, pos);
        for (; p + simd::kLanes <= runEnd;
             p += simd::kLanes, i += simd::kLanes) {
            const simd::CVec a0 = simd::loadc(amps + i);
            const simd::CVec a1 = simd::loadc(amps + i + stride);
            simd::storec(amps + i,
                         simd::add(simd::mul(m00, a0), simd::mul(m01, a1)));
            simd::storec(amps + i + stride,
                         simd::add(simd::mul(m10, a0), simd::mul(m11, a1)));
        }
        for (; p < runEnd; ++p, ++i) {
            const Complex a0 = amps[i];
            const Complex a1 = amps[i + stride];
            amps[i] = m[0] * a0 + m[1] * a1;
            amps[i + stride] = m[2] * a0 + m[3] * a1;
        }
    }
}

void
apply1qDiagRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                 Complex d0, Complex d1, std::size_t pair_begin,
                 std::size_t pair_end)
{
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = std::size_t{1} << pos;
    if (stride < simd::kLanes) {
        scalar::apply1qDiagRange(amps, n_qubits, qubit, d0, d1, pair_begin,
                                 pair_end);
        return;
    }
    const simd::CVec v0 = simd::broadcast(d0);
    const simd::CVec v1 = simd::broadcast(d1);
    std::size_t p = pair_begin;
    while (p < pair_end) {
        const std::size_t runEnd =
            std::min(pair_end, (p & ~(stride - 1)) + stride);
        std::size_t i = insertZeroBit(p, pos);
        for (; p + simd::kLanes <= runEnd;
             p += simd::kLanes, i += simd::kLanes) {
            simd::storec(amps + i, simd::mul(simd::loadc(amps + i), v0));
            simd::storec(amps + i + stride,
                         simd::mul(simd::loadc(amps + i + stride), v1));
        }
        for (; p < runEnd; ++p, ++i) {
            amps[i] *= d0;
            amps[i + stride] *= d1;
        }
    }
}

void
apply2qRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
             std::size_t q_lo, const Complex m[16],
             std::size_t quad_begin, std::size_t quad_end)
{
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    const std::size_t s1 = std::size_t{1} << first;
    if (s1 < simd::kLanes) {
        scalar::apply2qRange(amps, n_qubits, q_hi, q_lo, m, quad_begin,
                             quad_end);
        return;
    }
    simd::CVec mv[16];
    for (std::size_t i = 0; i < 16; ++i)
        mv[i] = simd::broadcast(m[i]);
    std::size_t g = quad_begin;
    while (g < quad_end) {
        // Quads [g, runEnd) share one contiguous run of s1 bases.
        const std::size_t runEnd =
            std::min(quad_end, (g & ~(s1 - 1)) + s1);
        std::size_t base = insertZeroBit(insertZeroBit(g, first), second);
        for (; g + simd::kLanes <= runEnd;
             g += simd::kLanes, base += simd::kLanes) {
            const simd::CVec a0 = simd::loadc(amps + base);
            const simd::CVec a1 = simd::loadc(amps + base + m_lo);
            const simd::CVec a2 = simd::loadc(amps + base + m_hi);
            const simd::CVec a3 = simd::loadc(amps + base + m_hi + m_lo);
            simd::storec(
                amps + base,
                simd::add(simd::add(simd::add(simd::mul(mv[0], a0),
                                              simd::mul(mv[1], a1)),
                                    simd::mul(mv[2], a2)),
                          simd::mul(mv[3], a3)));
            simd::storec(
                amps + base + m_lo,
                simd::add(simd::add(simd::add(simd::mul(mv[4], a0),
                                              simd::mul(mv[5], a1)),
                                    simd::mul(mv[6], a2)),
                          simd::mul(mv[7], a3)));
            simd::storec(
                amps + base + m_hi,
                simd::add(simd::add(simd::add(simd::mul(mv[8], a0),
                                              simd::mul(mv[9], a1)),
                                    simd::mul(mv[10], a2)),
                          simd::mul(mv[11], a3)));
            simd::storec(
                amps + base + m_hi + m_lo,
                simd::add(simd::add(simd::add(simd::mul(mv[12], a0),
                                              simd::mul(mv[13], a1)),
                                    simd::mul(mv[14], a2)),
                          simd::mul(mv[15], a3)));
        }
        for (; g < runEnd; ++g, ++base) {
            const std::size_t i1 = base | m_lo;
            const std::size_t i2 = base | m_hi;
            const std::size_t i3 = base | m_hi | m_lo;
            const Complex a0 = amps[base];
            const Complex a1 = amps[i1];
            const Complex a2 = amps[i2];
            const Complex a3 = amps[i3];
            amps[base] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
            amps[i1] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
            amps[i2] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
            amps[i3] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
        }
    }
}

void
apply2qDiagRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
                 std::size_t q_lo, const Complex d[4],
                 std::size_t quad_begin, std::size_t quad_end)
{
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    const std::size_t s1 = std::size_t{1} << first;
    if (s1 < simd::kLanes) {
        scalar::apply2qDiagRange(amps, n_qubits, q_hi, q_lo, d, quad_begin,
                                 quad_end);
        return;
    }
    const simd::CVec d0 = simd::broadcast(d[0]);
    const simd::CVec d1 = simd::broadcast(d[1]);
    const simd::CVec d2 = simd::broadcast(d[2]);
    const simd::CVec d3 = simd::broadcast(d[3]);
    std::size_t g = quad_begin;
    while (g < quad_end) {
        const std::size_t runEnd =
            std::min(quad_end, (g & ~(s1 - 1)) + s1);
        std::size_t base = insertZeroBit(insertZeroBit(g, first), second);
        for (; g + simd::kLanes <= runEnd;
             g += simd::kLanes, base += simd::kLanes) {
            simd::storec(amps + base,
                         simd::mul(simd::loadc(amps + base), d0));
            simd::storec(amps + base + m_lo,
                         simd::mul(simd::loadc(amps + base + m_lo), d1));
            simd::storec(amps + base + m_hi,
                         simd::mul(simd::loadc(amps + base + m_hi), d2));
            simd::storec(
                amps + base + m_hi + m_lo,
                simd::mul(simd::loadc(amps + base + m_hi + m_lo), d3));
        }
        for (; g < runEnd; ++g, ++base) {
            amps[base] *= d[0];
            amps[base | m_lo] *= d[1];
            amps[base | m_hi] *= d[2];
            amps[base | m_hi | m_lo] *= d[3];
        }
    }
}

void
applyDenseRange(Complex *amps, std::size_t n_qubits, const Matrix &op,
                const std::vector<std::size_t> &qubits,
                std::size_t group_begin, std::size_t group_end)
{
    const std::size_t k = qubits.size();
    const std::size_t gdim = std::size_t{1} << k;

    std::vector<std::size_t> pos(k);
    for (std::size_t b = 0; b < k; ++b)
        pos[b] = n_qubits - 1 - qubits[b];
    // Expanding the group counter through ascending bit positions
    // yields the group's all-zeros base; bases ascend with the counter.
    std::vector<std::size_t> sorted = pos;
    std::sort(sorted.begin(), sorted.end());

    std::vector<Complex> in(gdim), out(gdim);
    std::vector<std::size_t> idx(gdim);
    for (std::size_t grp = group_begin; grp < group_end; ++grp) {
        std::size_t base = grp;
        for (std::size_t p : sorted)
            base = insertZeroBit(base, p);
        for (std::size_t g = 0; g < gdim; ++g) {
            std::size_t address = base;
            for (std::size_t b = 0; b < k; ++b)
                if ((g >> (k - 1 - b)) & 1)
                    address |= std::size_t{1} << pos[b];
            idx[g] = address;
            in[g] = amps[address];
        }
        for (std::size_t r = 0; r < gdim; ++r) {
            Complex s = 0.0;
            for (std::size_t c = 0; c < gdim; ++c)
                s += op(r, c) * in[c];
            out[r] = s;
        }
        for (std::size_t g = 0; g < gdim; ++g)
            amps[idx[g]] = out[g];
    }
}

void
applyDense(Complex *amps, std::size_t n_qubits, const Matrix &op,
           const std::vector<std::size_t> &qubits)
{
    // Same visit order and per-group arithmetic as the historical
    // skip-scan loop, but enumerating groups directly.
    applyDenseRange(amps, n_qubits, op, qubits, 0,
                    (std::size_t{1} << n_qubits) >> qubits.size());
}

void
applyGate(Complex *amps, std::size_t n_qubits, const Matrix &op,
          const std::vector<std::size_t> &qubits)
{
    switch (qubits.size()) {
      case 1:
        if (op(0, 1) == Complex{0.0, 0.0} && op(1, 0) == Complex{0.0, 0.0}) {
            apply1qDiag(amps, n_qubits, qubits[0], op(0, 0), op(1, 1));
        } else {
            const Complex m[4] = {op(0, 0), op(0, 1), op(1, 0), op(1, 1)};
            apply1q(amps, n_qubits, qubits[0], m);
        }
        return;
      case 2:
        if (exactlyDiagonal(op)) {
            const Complex d[4] = {op(0, 0), op(1, 1), op(2, 2), op(3, 3)};
            apply2qDiag(amps, n_qubits, qubits[0], qubits[1], d);
        } else {
            apply2q(amps, n_qubits, qubits[0], qubits[1], op.data());
        }
        return;
      default:
        applyDense(amps, n_qubits, op, qubits);
        return;
    }
}

} // namespace sim
} // namespace crisc

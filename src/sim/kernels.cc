#include "kernels.hh"

#include <algorithm>
#include <stdexcept>

#include "sim/dispatch.hh"
#include "sim/kernels_util.hh"

// Backend-independent kernel code: the scalar reference kernels every
// SIMD backend is tested against, and the shared dense (k-qubit)
// implementations all dispatch tables point at. The SIMD kernels
// themselves live in kernels_impl.hh, stamped once per backend by the
// kernels_<backend>.cc TUs; the public sim::apply* wrappers live in
// dispatch.cc and route through the resolved KernelTable.

namespace crisc {
namespace sim {

using detail::insertZeroBit;
using detail::laneAmp;
using detail::setLane;

bool
exactlyDiagonal(const Matrix &op)
{
    for (std::size_t r = 0; r < op.rows(); ++r)
        for (std::size_t c = 0; c < op.cols(); ++c)
            if (r != c && op(r, c) != Complex{0.0, 0.0})
                return false;
    return true;
}

// ---------------------------------------------------------------------
// Scalar reference kernels. The SIMD kernels (kernels_impl.hh) must
// match these bit for bit on finite amplitudes (same per-element
// operation order, no FMA); test_simd and test_dispatch pin the
// equivalence per backend.
// ---------------------------------------------------------------------

namespace scalar {

void
apply1q(Complex *amps, std::size_t n_qubits, std::size_t qubit,
        const Complex m[4])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    const Complex m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
            const Complex a0 = amps[i];
            const Complex a1 = amps[i + stride];
            amps[i] = m00 * a0 + m01 * a1;
            amps[i + stride] = m10 * a0 + m11 * a1;
        }
    }
}

void
apply1qDiag(Complex *amps, std::size_t n_qubits, std::size_t qubit,
            Complex d0, Complex d1)
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; ++i) {
            amps[i] *= d0;
            amps[i + stride] *= d1;
        }
    }
}

void
applyPauli(Complex *amps, std::size_t n_qubits, std::size_t qubit,
           std::size_t pauli_index)
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    switch (pauli_index) {
      case 1: // X: swap the pair.
        for (std::size_t base = 0; base < dim; base += 2 * stride)
            for (std::size_t i = base; i < base + stride; ++i)
                std::swap(amps[i], amps[i + stride]);
        return;
      case 2: // Y = [[0, -i], [i, 0]].
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride; ++i) {
                const Complex a0 = amps[i];
                const Complex a1 = amps[i + stride];
                amps[i] = Complex{a1.imag(), -a1.real()};          // -i a1
                amps[i + stride] = Complex{-a0.imag(), a0.real()}; //  i a0
            }
        }
        return;
      case 3: // Z: negate the |1> half of each pair.
        for (std::size_t base = 0; base < dim; base += 2 * stride)
            for (std::size_t i = base; i < base + stride; ++i)
                amps[i + stride] = -amps[i + stride];
        return;
      default:
        throw std::invalid_argument("applyPauli: index must be 1..3");
    }
}

void
apply2q(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
        std::size_t q_lo, const Complex m[16])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t p_hi = n_qubits - 1 - q_hi; // weight-2 gate bit.
    const std::size_t p_lo = n_qubits - 1 - q_lo; // weight-1 gate bit.
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;

    for (std::size_t g = 0; g < dim >> 2; ++g) {
        // Expand the group counter into the base index with both
        // addressed bits zero; bases come out in ascending order.
        const std::size_t base =
            insertZeroBit(insertZeroBit(g, first), second);
        const std::size_t i1 = base | m_lo;
        const std::size_t i2 = base | m_hi;
        const std::size_t i3 = base | m_hi | m_lo;
        const Complex a0 = amps[base];
        const Complex a1 = amps[i1];
        const Complex a2 = amps[i2];
        const Complex a3 = amps[i3];
        amps[base] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
        amps[i1] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
        amps[i2] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
        amps[i3] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
    }
}

void
apply2qDiag(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
            std::size_t q_lo, const Complex d[4])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;

    for (std::size_t g = 0; g < dim >> 2; ++g) {
        const std::size_t base =
            insertZeroBit(insertZeroBit(g, first), second);
        amps[base] *= d[0];
        amps[base | m_lo] *= d[1];
        amps[base | m_hi] *= d[2];
        amps[base | m_hi | m_lo] *= d[3];
    }
}

// Range forms: identical per-pair/per-quad arithmetic, with the group
// counter mapped to its base index directly (pair p of the qubit's
// sweep is the p-th pair in ascending memory order, ditto quads).

void
apply1qRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
             const Complex m[4], std::size_t pair_begin,
             std::size_t pair_end)
{
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = std::size_t{1} << pos;
    const Complex m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    for (std::size_t p = pair_begin; p < pair_end; ++p) {
        const std::size_t i = insertZeroBit(p, pos);
        const Complex a0 = amps[i];
        const Complex a1 = amps[i + stride];
        amps[i] = m00 * a0 + m01 * a1;
        amps[i + stride] = m10 * a0 + m11 * a1;
    }
}

void
apply1qDiagRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                 Complex d0, Complex d1, std::size_t pair_begin,
                 std::size_t pair_end)
{
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = std::size_t{1} << pos;
    for (std::size_t p = pair_begin; p < pair_end; ++p) {
        const std::size_t i = insertZeroBit(p, pos);
        amps[i] *= d0;
        amps[i + stride] *= d1;
    }
}

void
apply2qRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
             std::size_t q_lo, const Complex m[16],
             std::size_t quad_begin, std::size_t quad_end)
{
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;

    for (std::size_t g = quad_begin; g < quad_end; ++g) {
        const std::size_t base =
            insertZeroBit(insertZeroBit(g, first), second);
        const std::size_t i1 = base | m_lo;
        const std::size_t i2 = base | m_hi;
        const std::size_t i3 = base | m_hi | m_lo;
        const Complex a0 = amps[base];
        const Complex a1 = amps[i1];
        const Complex a2 = amps[i2];
        const Complex a3 = amps[i3];
        amps[base] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
        amps[i1] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
        amps[i2] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
        amps[i3] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
    }
}

void
apply2qDiagRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
                 std::size_t q_lo, const Complex d[4],
                 std::size_t quad_begin, std::size_t quad_end)
{
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;

    for (std::size_t g = quad_begin; g < quad_end; ++g) {
        const std::size_t base =
            insertZeroBit(insertZeroBit(g, first), second);
        amps[base] *= d[0];
        amps[base | m_lo] *= d[1];
        amps[base | m_hi] *= d[2];
        amps[base | m_hi | m_lo] *= d[3];
    }
}

// Batched SoA references: the serial scalar kernels above, replayed on
// every lane of the trajectory-major layout (lane t of amplitude i at
// re[i * batch + t]). Lane t is bit-identical to running the serial
// scalar kernel on statevector t alone.

void
apply1qBatch(double *re, double *im, std::size_t n_qubits,
             std::size_t batch, std::size_t qubit, const Complex m[4])
{
    const std::size_t pairs = (std::size_t{1} << n_qubits) >> 1;
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = (std::size_t{1} << pos) * batch;
    for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t o0 = insertZeroBit(p, pos) * batch;
        const std::size_t o1 = o0 + stride;
        for (std::size_t t = 0; t < batch; ++t) {
            const Complex a0 = laneAmp(re, im, o0 + t);
            const Complex a1 = laneAmp(re, im, o1 + t);
            setLane(re, im, o0 + t, m[0] * a0 + m[1] * a1);
            setLane(re, im, o1 + t, m[2] * a0 + m[3] * a1);
        }
    }
}

void
apply1qDiagBatch(double *re, double *im, std::size_t n_qubits,
                 std::size_t batch, std::size_t qubit, Complex d0,
                 Complex d1)
{
    const std::size_t pairs = (std::size_t{1} << n_qubits) >> 1;
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = (std::size_t{1} << pos) * batch;
    for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t o0 = insertZeroBit(p, pos) * batch;
        const std::size_t o1 = o0 + stride;
        for (std::size_t t = 0; t < batch; ++t) {
            setLane(re, im, o0 + t, laneAmp(re, im, o0 + t) * d0);
            setLane(re, im, o1 + t, laneAmp(re, im, o1 + t) * d1);
        }
    }
}

void
applyPauliBatch(double *re, double *im, std::size_t n_qubits,
                std::size_t batch, std::size_t qubit,
                std::size_t pauli_index)
{
    const std::size_t pairs = (std::size_t{1} << n_qubits) >> 1;
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = (std::size_t{1} << pos) * batch;
    for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t o0 = insertZeroBit(p, pos) * batch;
        const std::size_t o1 = o0 + stride;
        switch (pauli_index) {
          case 1: // X: swap the pair.
            for (std::size_t t = 0; t < batch; ++t) {
                std::swap(re[o0 + t], re[o1 + t]);
                std::swap(im[o0 + t], im[o1 + t]);
            }
            break;
          case 2: // Y = [[0, -i], [i, 0]].
            for (std::size_t t = 0; t < batch; ++t) {
                const Complex a0 = laneAmp(re, im, o0 + t);
                const Complex a1 = laneAmp(re, im, o1 + t);
                setLane(re, im, o0 + t,
                        Complex{a1.imag(), -a1.real()}); // -i a1
                setLane(re, im, o1 + t,
                        Complex{-a0.imag(), a0.real()}); //  i a0
            }
            break;
          case 3: // Z: negate the |1> half of each pair.
            for (std::size_t t = 0; t < batch; ++t) {
                re[o1 + t] = -re[o1 + t];
                im[o1 + t] = -im[o1 + t];
            }
            break;
          default:
            throw std::invalid_argument(
                "applyPauliBatch: index must be 1..3");
        }
    }
}

void
apply2qBatch(double *re, double *im, std::size_t n_qubits,
             std::size_t batch, std::size_t q_hi, std::size_t q_lo,
             const Complex m[16])
{
    const std::size_t quads = (std::size_t{1} << n_qubits) >> 2;
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t o_hi = (std::size_t{1} << p_hi) * batch;
    const std::size_t o_lo = (std::size_t{1} << p_lo) * batch;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    for (std::size_t g = 0; g < quads; ++g) {
        const std::size_t b0 =
            insertZeroBit(insertZeroBit(g, first), second) * batch;
        const std::size_t b1 = b0 + o_lo;
        const std::size_t b2 = b0 + o_hi;
        const std::size_t b3 = b0 + o_hi + o_lo;
        for (std::size_t t = 0; t < batch; ++t) {
            const Complex a0 = laneAmp(re, im, b0 + t);
            const Complex a1 = laneAmp(re, im, b1 + t);
            const Complex a2 = laneAmp(re, im, b2 + t);
            const Complex a3 = laneAmp(re, im, b3 + t);
            setLane(re, im, b0 + t,
                    m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3);
            setLane(re, im, b1 + t,
                    m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3);
            setLane(re, im, b2 + t,
                    m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3);
            setLane(re, im, b3 + t,
                    m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3);
        }
    }
}

void
apply2qDiagBatch(double *re, double *im, std::size_t n_qubits,
                 std::size_t batch, std::size_t q_hi, std::size_t q_lo,
                 const Complex d[4])
{
    const std::size_t quads = (std::size_t{1} << n_qubits) >> 2;
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t o_hi = (std::size_t{1} << p_hi) * batch;
    const std::size_t o_lo = (std::size_t{1} << p_lo) * batch;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    for (std::size_t g = 0; g < quads; ++g) {
        const std::size_t b0 =
            insertZeroBit(insertZeroBit(g, first), second) * batch;
        for (std::size_t t = 0; t < batch; ++t) {
            setLane(re, im, b0 + t, laneAmp(re, im, b0 + t) * d[0]);
            setLane(re, im, b0 + o_lo + t,
                    laneAmp(re, im, b0 + o_lo + t) * d[1]);
            setLane(re, im, b0 + o_hi + t,
                    laneAmp(re, im, b0 + o_hi + t) * d[2]);
            setLane(re, im, b0 + o_hi + o_lo + t,
                    laneAmp(re, im, b0 + o_hi + o_lo + t) * d[3]);
        }
    }
}

void
applyDenseBatch(double *re, double *im, std::size_t n_qubits,
                std::size_t batch, const Matrix &op,
                const std::vector<std::size_t> &qubits)
{
    const std::size_t k = qubits.size();
    const std::size_t gdim = std::size_t{1} << k;
    const std::size_t groups = (std::size_t{1} << n_qubits) >> k;

    std::vector<std::size_t> pos(k);
    for (std::size_t b = 0; b < k; ++b)
        pos[b] = n_qubits - 1 - qubits[b];
    std::vector<std::size_t> sorted = pos;
    std::sort(sorted.begin(), sorted.end());

    std::vector<Complex> in(gdim), out(gdim);
    std::vector<std::size_t> idx(gdim);
    for (std::size_t grp = 0; grp < groups; ++grp) {
        std::size_t base = grp;
        for (std::size_t p : sorted)
            base = insertZeroBit(base, p);
        for (std::size_t g = 0; g < gdim; ++g) {
            std::size_t address = base;
            for (std::size_t b = 0; b < k; ++b)
                if ((g >> (k - 1 - b)) & 1)
                    address |= std::size_t{1} << pos[b];
            idx[g] = address * batch;
        }
        for (std::size_t t = 0; t < batch; ++t) {
            for (std::size_t g = 0; g < gdim; ++g)
                in[g] = laneAmp(re, im, idx[g] + t);
            for (std::size_t r = 0; r < gdim; ++r) {
                Complex s = 0.0;
                for (std::size_t c = 0; c < gdim; ++c)
                    s += op(r, c) * in[c];
                out[r] = s;
            }
            for (std::size_t g = 0; g < gdim; ++g)
                setLane(re, im, idx[g] + t, out[g]);
        }
    }
}

} // namespace scalar

// ---------------------------------------------------------------------
// Shared dense (k-qubit) implementations: gather/scatter dominated, no
// SIMD, so every backend's KernelTable points at these — one definition
// serves all tables and the public sim::applyDense* wrappers.
// ---------------------------------------------------------------------

namespace detail {

void
applyDenseRangeShared(Complex *amps, std::size_t n_qubits,
                      const Matrix &op,
                      const std::vector<std::size_t> &qubits,
                      std::size_t group_begin, std::size_t group_end)
{
    const std::size_t k = qubits.size();
    const std::size_t gdim = std::size_t{1} << k;

    std::vector<std::size_t> pos(k);
    for (std::size_t b = 0; b < k; ++b)
        pos[b] = n_qubits - 1 - qubits[b];
    // Expanding the group counter through ascending bit positions
    // yields the group's all-zeros base; bases ascend with the counter.
    std::vector<std::size_t> sorted = pos;
    std::sort(sorted.begin(), sorted.end());

    std::vector<Complex> in(gdim), out(gdim);
    std::vector<std::size_t> idx(gdim);
    for (std::size_t grp = group_begin; grp < group_end; ++grp) {
        std::size_t base = grp;
        for (std::size_t p : sorted)
            base = insertZeroBit(base, p);
        for (std::size_t g = 0; g < gdim; ++g) {
            std::size_t address = base;
            for (std::size_t b = 0; b < k; ++b)
                if ((g >> (k - 1 - b)) & 1)
                    address |= std::size_t{1} << pos[b];
            idx[g] = address;
            in[g] = amps[address];
        }
        for (std::size_t r = 0; r < gdim; ++r) {
            Complex s = 0.0;
            for (std::size_t c = 0; c < gdim; ++c)
                s += op(r, c) * in[c];
            out[r] = s;
        }
        for (std::size_t g = 0; g < gdim; ++g)
            amps[idx[g]] = out[g];
    }
}

void
applyDenseShared(Complex *amps, std::size_t n_qubits, const Matrix &op,
                 const std::vector<std::size_t> &qubits)
{
    // Same visit order and per-group arithmetic as the historical
    // skip-scan loop, but enumerating groups directly.
    applyDenseRangeShared(amps, n_qubits, op, qubits, 0,
                          (std::size_t{1} << n_qubits) >> qubits.size());
}

} // namespace detail

} // namespace sim
} // namespace crisc

/**
 * @file
 * Centralized runtime environment-variable handling for the simulator.
 *
 * Every knob the simulator reads from the process environment goes
 * through this module, so the rules are uniform and stated once:
 *
 *   - each variable is parsed exactly once per process and the result
 *     cached (getenv + strtoull on every kernel-sweep decision is
 *     cheap, but "cheap" times hot paths is how heuristics drift);
 *   - malformed values are rejected loudly with std::invalid_argument
 *     naming the variable and the offending text — a typo in
 *     CRISC_BLOCK_BYTES must not silently fall back to autodetection;
 *   - an unset or empty variable means "no override" everywhere.
 *
 * The variables (see also the README "Runtime environment variables"
 * table):
 *
 *   CRISC_SIMD_DISPATCH  kernel backend override (sim/dispatch.hh)
 *   CRISC_BLOCK_BYTES    cache-block footprint override (sim/cache.hh)
 *   CRISC_SHARDS         shard count for sharded execution
 *                        (sim/shard.hh)
 *
 * Tests that set these variables with setenv must call
 * resetForTesting() afterwards to drop the caches (the scoped helpers
 * in tests/sim_test_util.hh do).
 */

#ifndef CRISC_SIM_ENV_HH
#define CRISC_SIM_ENV_HH

#include <cstddef>
#include <string>

namespace crisc {
namespace sim {
namespace env {

/**
 * The CRISC_BLOCK_BYTES override as a raw byte count, or 0 when the
 * variable is unset, empty, or "0" (an explicit "no override").
 * Clamping to [kMinBlockBytes, kMaxBlockBytes] is the caller's policy
 * (sim/cache.hh), not a parsing concern.
 * @throws std::invalid_argument when the value is not a decimal byte
 *         count (e.g. "banana", "12abc", "-4").
 */
std::size_t blockBytes();

/**
 * The CRISC_SHARDS override as a shard-bit count s (the register is
 * split into 2^s shards), or 0 when the variable is unset, empty, or
 * "1" (one shard — unsharded execution). The variable holds the shard
 * count S, which must be a power of two; "CRISC_SHARDS=4" yields 2.
 * @throws std::invalid_argument when the value is not a positive
 *         power-of-two decimal shard count.
 */
std::size_t shardBits();

/**
 * The raw CRISC_SIMD_DISPATCH value, or "" when unset. Interpretation
 * (backend names, "auto") stays with sim/dispatch.hh, which already
 * rejects unknown names loudly; this accessor only centralizes the
 * lookup and caching.
 */
const std::string &simdDispatch();

/**
 * Drops every cached parse so the next accessor call re-reads the
 * environment. For tests that setenv/unsetenv the variables above;
 * production code never needs it.
 */
void resetForTesting();

} // namespace env
} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_ENV_HH

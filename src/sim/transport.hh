/**
 * @file
 * Amplitude transport between statevector shards (sim/shard.hh).
 *
 * Sharded execution splits one register across S = 2^s address spaces;
 * shard-crossing ops are lowered into bulk amplitude moves between
 * shard pairs. Transport is the seam those moves go through: the shard
 * executor describes a whole crossing step as a batch of flat
 * double-precision copy descriptors, and an implementation carries
 * them however the deployment demands — memcpy inside one process
 * today, sockets or MPI between machines later. The interface is
 * deliberately sized for that future:
 *
 *   - messages are raw double spans, not Complex, so both the
 *     interleaved per-state layout (re,im pairs) and the SoA batch
 *     slabs (separate re/im planes, batch_state.hh) ship through the
 *     same calls without a marshalling layer;
 *   - exchange() takes the whole step's message batch at once and is a
 *     barrier collective: when it returns, every destination span
 *     holds its payload and no source span is read again — exactly the
 *     contract an MPI_Alltoallv or a socket round needs, and exactly
 *     what the executor's read-own-plus-received update phase assumes;
 *   - shards are addressed by index (Message::from / Message::to), so
 *     an out-of-process transport can map them to ranks or endpoints
 *     without the executor knowing.
 *
 * Transports move bytes; they never do arithmetic. Bit-identity of
 * sharded execution therefore never depends on the transport choice.
 */

#ifndef CRISC_SIM_TRANSPORT_HH
#define CRISC_SIM_TRANSPORT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crisc {
namespace sim {

class ThreadPool;

/** One flat copy between two shards' address spaces. Spans must not
 *  overlap; `src` stays valid and unmodified until the enclosing
 *  exchange() returns. */
struct TransportMessage
{
    std::size_t from = 0;       ///< source shard index.
    std::size_t to = 0;         ///< destination shard index.
    const double *src = nullptr;
    double *dst = nullptr;
    std::size_t count = 0;      ///< doubles to move.
};

/**
 * Carrier for shard-crossing amplitude moves. Implementations are
 * driven from one thread (the shard executor serializes crossing
 * steps); bytesMoved() is cumulative over the transport's lifetime so
 * benchmarks can meter a whole plan execution.
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Delivers every message in @p batch, then returns. A barrier
     * collective: on return all destination spans are written and all
     * source spans may be reused.
     */
    virtual void exchange(const std::vector<TransportMessage> &batch) = 0;

    /** Total payload bytes delivered by all exchange() calls so far. */
    virtual std::uint64_t bytesMoved() const = 0;
};

/**
 * The in-process transport: every shard lives in this address space,
 * so delivery is memcpy. Large batches are spread over @p pool when
 * one is given (the same worker pool the shard executor runs local
 * sweeps on); results are byte-identical either way.
 */
class InProcessTransport : public Transport
{
  public:
    explicit InProcessTransport(ThreadPool *pool = nullptr) : pool_(pool) {}

    void exchange(const std::vector<TransportMessage> &batch) override;
    std::uint64_t bytesMoved() const override { return bytes_; }

  private:
    ThreadPool *pool_;
    std::uint64_t bytes_ = 0;
};

} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_TRANSPORT_HH

/**
 * @file
 * Index and lane helpers shared by every kernel translation unit — the
 * backend-stamped TUs (kernels_<backend>.cc via kernels_impl.hh) and
 * the backend-independent reference/dense TU (kernels.cc).
 */

#ifndef CRISC_SIM_KERNELS_UTIL_HH
#define CRISC_SIM_KERNELS_UTIL_HH

#include <cstddef>

#include "linalg/matrix.hh"

namespace crisc {
namespace sim {
namespace detail {

/** Inserts a zero bit at position @p pos, shifting higher bits left. */
inline std::size_t
insertZeroBit(std::size_t x, std::size_t pos)
{
    const std::size_t low = x & ((std::size_t{1} << pos) - 1);
    return ((x >> pos) << (pos + 1)) | low;
}

/** Lane read/write in the split (SoA) batched layout. */
inline linalg::Complex
laneAmp(const double *re, const double *im, std::size_t at)
{
    return {re[at], im[at]};
}

inline void
setLane(double *re, double *im, std::size_t at, linalg::Complex v)
{
    re[at] = v.real();
    im[at] = v.imag();
}

} // namespace detail
} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_KERNELS_UTIL_HH

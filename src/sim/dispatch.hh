/**
 * @file
 * Runtime ISA dispatch for the statevector kernels. Every binary
 * carries one translation unit per SIMD backend the compiler could
 * build (kernels_scalar.cc always; kernels_avx2.cc / kernels_avx512.cc
 * on x86-64; kernels_neon.cc on aarch64 — see CMakeLists.txt), each
 * exporting one KernelTable of function pointers. This header exposes
 * the probe-and-pick layer that chooses among them once per process:
 *
 *   - activeBackend() / backendName(): the resolved backend, decided on
 *     first kernel use from the CRISC_SIMD_DISPATCH environment
 *     variable, or by CPU probe when the variable is unset or "auto"
 *     (probe order avx512 > avx2 > neon > scalar, first backend that is
 *     both compiled in and supported by the host).
 *   - activeKernels(): the resolved KernelTable. The public sim::apply*
 *     wrappers in kernels.hh and the engine's executeOp* sweep drivers
 *     fetch this once per sweep — one atomic load plus one indirect
 *     call per kernel sweep, never per amplitude.
 *   - setDispatchOverride(): in-process re-resolution with the same
 *     semantics as the environment variable, used by tests and the
 *     bench_runner `dispatch` family to force each backend on one
 *     binary.
 *
 * The choice is process-global: one table pointer serves every thread,
 * plan, and trajectory (per-plan backends would break the bit-identity
 * story for batched Pauli noise, whose negation flavour must match the
 * serial kernels of the *same* backend). Unknown override names throw
 * std::invalid_argument; names of backends that are not compiled in or
 * not supported by this CPU throw std::runtime_error — never a silent
 * fallback. Every backend is bit-identical to sim::scalar on finite
 * amplitudes (see simd.hh), so switching backends never changes
 * results, only throughput.
 */

#ifndef CRISC_SIM_DISPATCH_HH
#define CRISC_SIM_DISPATCH_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hh"

namespace crisc {
namespace sim {

using linalg::Complex;
using linalg::Matrix;

/** The kernel backends a binary can carry. Values index probe order
 *  metadata; the set actually compiled in is compiledBackends(). */
enum class Backend
{
    Scalar = 0,
    Avx2,
    Avx512,
    Neon,
};

/**
 * One backend's full kernel surface as function pointers: the serial
 * (full-sweep) kernels, the group-range forms that state-parallel and
 * cache-blocked execution partition, and the batched SoA forms
 * (including the per-lane Pauli divergence point). applyDense and
 * applyDenseRange carry no SIMD (gather/scatter dominated) and point at
 * one shared implementation in every table; they are present so that a
 * table covers every KernelKind. All entries of every registered table
 * are non-null — tests pin this.
 */
struct KernelTable
{
    Backend backend = Backend::Scalar;
    const char *name = "scalar";
    std::size_t lanes = 1;

    // Serial full-sweep kernels (interleaved statevector).
    void (*apply1q)(Complex *, std::size_t, std::size_t,
                    const Complex *) = nullptr;
    void (*apply1qDiag)(Complex *, std::size_t, std::size_t, Complex,
                        Complex) = nullptr;
    void (*applyPauli)(Complex *, std::size_t, std::size_t,
                       std::size_t) = nullptr;
    void (*apply2q)(Complex *, std::size_t, std::size_t, std::size_t,
                    const Complex *) = nullptr;
    void (*apply2qDiag)(Complex *, std::size_t, std::size_t, std::size_t,
                        const Complex *) = nullptr;
    void (*applyDense)(Complex *, std::size_t, const Matrix &,
                       const std::vector<std::size_t> &) = nullptr;

    // Group-range forms (state-parallel / cache-blocked substrate).
    void (*apply1qRange)(Complex *, std::size_t, std::size_t,
                         const Complex *, std::size_t,
                         std::size_t) = nullptr;
    void (*apply1qDiagRange)(Complex *, std::size_t, std::size_t, Complex,
                             Complex, std::size_t, std::size_t) = nullptr;
    void (*apply2qRange)(Complex *, std::size_t, std::size_t, std::size_t,
                         const Complex *, std::size_t,
                         std::size_t) = nullptr;
    void (*apply2qDiagRange)(Complex *, std::size_t, std::size_t,
                             std::size_t, const Complex *, std::size_t,
                             std::size_t) = nullptr;
    void (*applyDenseRange)(Complex *, std::size_t, const Matrix &,
                            const std::vector<std::size_t> &, std::size_t,
                            std::size_t) = nullptr;

    // Batched SoA range forms (SIMD lanes across trajectories); the
    // full-sweep sim::*Batch wrappers call these over [0, groups).
    void (*apply1qBatchRange)(double *, double *, std::size_t, std::size_t,
                              std::size_t, const Complex *, std::size_t,
                              std::size_t) = nullptr;
    void (*apply1qDiagBatchRange)(double *, double *, std::size_t,
                                  std::size_t, std::size_t, Complex,
                                  Complex, std::size_t,
                                  std::size_t) = nullptr;
    void (*applyPauliBatchRange)(double *, double *, std::size_t,
                                 std::size_t, std::size_t, std::size_t,
                                 std::size_t, std::size_t) = nullptr;
    void (*apply2qBatchRange)(double *, double *, std::size_t, std::size_t,
                              std::size_t, std::size_t, const Complex *,
                              std::size_t, std::size_t) = nullptr;
    void (*apply2qDiagBatchRange)(double *, double *, std::size_t,
                                  std::size_t, std::size_t, std::size_t,
                                  const Complex *, std::size_t,
                                  std::size_t) = nullptr;
    void (*applyDenseBatchRange)(double *, double *, std::size_t,
                                 std::size_t, const Matrix &,
                                 const std::vector<std::size_t> &,
                                 std::size_t, std::size_t) = nullptr;

    void (*applyPauliLane)(double *, double *, std::size_t, std::size_t,
                           std::size_t, std::size_t,
                           std::size_t) = nullptr;
};

/** Display name of a backend ("scalar", "avx2", "avx512", "neon"). */
const char *backendName(Backend b);

/** The backends compiled into this binary, in probe order (always
 *  contains Backend::Scalar). */
std::vector<Backend> compiledBackends();

/** Whether @p b was compiled into this binary. */
bool backendCompiled(Backend b);

/** Whether this CPU can execute @p b (cpuid on x86; NEON is
 *  architectural on aarch64). Scalar is always supported. Independent
 *  of whether the backend is compiled in. */
bool hostSupports(Backend b);

/**
 * The kernel table of a specific compiled backend (tests and the bench
 * `dispatch` family iterate these).
 * @throws std::runtime_error if @p b is not compiled into this binary.
 */
const KernelTable &kernelTable(Backend b);

/**
 * Parses a CRISC_SIMD_DISPATCH value: "scalar" / "avx2" / "avx512" /
 * "neon" name a backend; "auto" (or empty) returns nullopt, meaning
 * probe.
 * @throws std::invalid_argument on any other value.
 */
std::optional<Backend> parseDispatchOverride(const std::string &value);

/**
 * The backend serving this process, resolving it on first call: the
 * CRISC_SIMD_DISPATCH environment variable if set (reject-loud
 * semantics as above), else the CPU probe (avx512 > avx2 > neon >
 * scalar among compiled-in backends). Deterministic for a given
 * environment and host.
 */
Backend activeBackend();

/** backendName(activeBackend()). */
const char *backendName();

/** The resolved kernel table (resolves on first call, like
 *  activeBackend()). */
const KernelTable &activeKernels();

/**
 * Re-resolves the process-global backend from @p value with the exact
 * CRISC_SIMD_DISPATCH semantics ("auto" re-probes). Takes effect for
 * every subsequent sweep in the process; in-flight sweeps keep the
 * table they fetched. Intended for tests and the bench_runner
 * `dispatch` family — production binaries use the environment variable.
 * @throws std::invalid_argument on an unknown name.
 * @throws std::runtime_error on a backend that is not compiled in or
 *         not supported by this CPU.
 */
void setDispatchOverride(const std::string &value);

/**
 * Records the resolved backend and lane count as obs gauges
 * ("sim.dispatch.backend", "sim.dispatch.lanes"). Called automatically
 * when the backend resolves; call again after starting a TraceSession
 * to stamp the gauges into that session's trace (gauges set while
 * tracing is off are dropped).
 */
void recordDispatchGauges();

namespace detail {

// Per-backend table builders, defined by the kernels_<backend>.cc stamp
// TUs; dispatch.cc references the ones CMake compiled in (guarded by
// the CRISC_HAVE_KERNELS_* definitions it sets).
const KernelTable &scalarKernelTable();
const KernelTable &avx2KernelTable();
const KernelTable &avx512KernelTable();
const KernelTable &neonKernelTable();

// Shared backend-independent dense implementations (kernels.cc); every
// table's applyDense / applyDenseRange entries point here.
void applyDenseShared(Complex *amps, std::size_t n_qubits,
                      const Matrix &op,
                      const std::vector<std::size_t> &qubits);
void applyDenseRangeShared(Complex *amps, std::size_t n_qubits,
                           const Matrix &op,
                           const std::vector<std::size_t> &qubits,
                           std::size_t group_begin, std::size_t group_end);

} // namespace detail

} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_DISPATCH_HH

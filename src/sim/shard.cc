#include "shard.hh"

#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/obs.hh"
#include "sim/cache.hh"
#include "sim/env.hh"
#include "sim/kernels_util.hh"

namespace crisc {
namespace sim {

using detail::insertZeroBit;
using detail::laneAmp;
using detail::setLane;

namespace {

bool
isDiagKind(KernelKind k)
{
    return k == KernelKind::OneQDiag || k == KernelKind::TwoQDiag;
}

/** Logical gate qubits of @p op, in gate-significance order. */
void
opLogicalTargets(const KernelOp &op, std::vector<std::size_t> &out)
{
    out.clear();
    switch (op.kind) {
      case KernelKind::OneQ:
      case KernelKind::OneQDiag:
        out.push_back(op.q0);
        return;
      case KernelKind::TwoQ:
      case KernelKind::TwoQDiag:
        out.push_back(op.q0);
        out.push_back(op.q1);
        return;
      case KernelKind::Dense:
        out = op.qubits;
        return;
    }
    throw std::logic_error("opLogicalTargets: unknown kernel kind");
}

/**
 * The shard-scheduling pass (see shard.hh): walks the plan once,
 * tracking the logical-to-physical layout the emitted remaps induce,
 * and lowers every op into the step stream.
 */
class ShardCompiler
{
  public:
    ShardCompiler(const Plan &plan, std::size_t shard_bits,
                  const ShardOptions &opts)
        : plan_(plan), n_(plan.numQubits()), s_(shard_bits),
          lowering_(opts.lowering)
    {
        physOf_.resize(n_);
        logicalAt_.resize(n_);
        for (std::size_t j = 0; j < n_; ++j)
            physOf_[j] = logicalAt_[j] = j;
    }

    ShardPlan compile()
    {
        const std::vector<KernelOp> &ops = plan_.ops();
        std::vector<std::size_t> targets;
        std::vector<std::size_t> positions;
        for (std::size_t i = 0; i < ops.size(); ++i) {
            const KernelOp &op = ops[i];
            for (;;) {
                opLogicalTargets(op, targets);
                positions.clear();
                std::size_t shardTargets = 0;
                for (const std::size_t q : targets) {
                    positions.push_back(physOf_[q]);
                    if (physOf_[q] < s_)
                        ++shardTargets;
                }
                if (shardTargets == 0) {
                    pendingLocal_.push_back(rewriteLocal(op));
                    break;
                }
                if (isDiagKind(op.kind)) {
                    emitDiag(op);
                    break;
                }
                if (mustRemap(op, i, shardTargets)) {
                    // Pull the most significant crossing target local
                    // and re-classify; Dense ops loop here once per
                    // shard-bit target.
                    std::size_t p = s_;
                    for (const std::size_t pos : positions)
                        if (pos < s_ && pos < p)
                            p = pos;
                    emitRemap(p, pickColdLocal(i, positions));
                    continue;
                }
                emitExchange(op, positions);
                break;
            }
        }
        flushLocal();
        restoreLayout();

        PlanStats stats = plan_.stats();
        stats.exchangeOps = exchanges_;
        stats.remapOps = remaps_;
        return ShardPlan(n_, s_, std::move(steps_), stats);
    }

  private:
    /** True when the crossing op must (or should, under Auto) leave
     *  the shard bits by remap rather than exchange. */
    bool mustRemap(const KernelOp &op, std::size_t op_index,
                   std::size_t shard_targets)
    {
        if (op.kind == KernelKind::Dense)
            return true;
        if (op.kind == KernelKind::TwoQ && shard_targets == 2)
            return true;
        if (lowering_ != ShardLowering::Auto)
            return false;
        // Auto: remap a crossing qubit with at least one more
        // non-diagonal use later — the half-slice remap then replaces
        // every future exchange of that qubit.
        const std::size_t q = op.kind == KernelKind::TwoQ
                                  ? (physOf_[op.q0] < s_ ? op.q0 : op.q1)
                                  : op.q0;
        return nextNonDiagUse(op_index + 1, q) < plan_.ops().size();
    }

    /** Index of the first non-diagonal op at or after @p from
     *  targeting logical qubit @p q; ops().size() when none. */
    std::size_t nextNonDiagUse(std::size_t from, std::size_t q) const
    {
        const std::vector<KernelOp> &ops = plan_.ops();
        for (std::size_t j = from; j < ops.size(); ++j) {
            const KernelOp &op = ops[j];
            if (isDiagKind(op.kind))
                continue;
            switch (op.kind) {
              case KernelKind::OneQ:
                if (op.q0 == q)
                    return j;
                break;
              case KernelKind::TwoQ:
                if (op.q0 == q || op.q1 == q)
                    return j;
                break;
              case KernelKind::Dense:
                for (const std::size_t t : op.qubits)
                    if (t == q)
                        return j;
                break;
              default:
                break;
            }
        }
        return ops.size();
    }

    /** The local position whose resident qubit is coldest: farthest
     *  next non-diagonal use after op @p op_index, excluding the
     *  current op's target positions. */
    std::size_t pickColdLocal(std::size_t op_index,
                              const std::vector<std::size_t> &busy) const
    {
        std::size_t best = n_;
        std::size_t bestScore = 0;
        for (std::size_t j = s_; j < n_; ++j) {
            bool taken = false;
            for (const std::size_t pos : busy)
                if (pos == j)
                    taken = true;
            if (taken)
                continue;
            const std::size_t score =
                nextNonDiagUse(op_index + 1, logicalAt_[j]);
            if (best == n_ || score > bestScore) {
                best = j;
                bestScore = score;
            }
        }
        if (best == n_)
            throw std::runtime_error(
                "compileSharded: no free local position to remap a "
                "crossing target to — the register is too narrow for "
                "this op at this shard count");
        return best;
    }

    KernelOp rewriteLocal(const KernelOp &op) const
    {
        KernelOp out = op;
        switch (op.kind) {
          case KernelKind::OneQ:
          case KernelKind::OneQDiag:
            out.q0 = physOf_[op.q0] - s_;
            break;
          case KernelKind::TwoQ:
          case KernelKind::TwoQDiag:
            out.q0 = physOf_[op.q0] - s_;
            out.q1 = physOf_[op.q1] - s_;
            break;
          case KernelKind::Dense:
            for (std::size_t &q : out.qubits)
                q = physOf_[q] - s_;
            break;
        }
        return out;
    }

    void flushLocal()
    {
        if (pendingLocal_.empty())
            return;
        PlanStats stats;
        stats.kernelOps = pendingLocal_.size();
        auto sub = std::make_shared<Plan>(n_ - s_, std::move(pendingLocal_),
                                          stats);
        pendingLocal_.clear();
        ShardStep step;
        step.kind = ShardStepKind::Local;
        step.local = std::move(sub);
        steps_.push_back(std::move(step));
    }

    void emitDiag(const KernelOp &op)
    {
        flushLocal();
        ShardStep step;
        step.kind = ShardStepKind::Diag;
        step.opKind = op.kind;
        step.m = op.m;
        step.posHi = physOf_[op.q0];
        if (op.kind == KernelKind::TwoQDiag)
            step.posLo = physOf_[op.q1];
        steps_.push_back(std::move(step));
    }

    void emitExchange(const KernelOp &op,
                      const std::vector<std::size_t> &positions)
    {
        flushLocal();
        ShardStep step;
        step.kind = ShardStepKind::Exchange;
        step.opKind = op.kind;
        step.m = op.m;
        step.posHi = positions[0];
        if (op.kind == KernelKind::TwoQ) {
            step.posLo = positions[1];
            step.hiIsShard = step.posHi < s_;
            step.shardPos = step.hiIsShard ? step.posHi : step.posLo;
            step.localPos = step.hiIsShard ? step.posLo : step.posHi;
        } else {
            step.shardPos = step.posHi;
        }
        steps_.push_back(std::move(step));
        ++exchanges_;
    }

    void emitRemap(std::size_t shard_pos, std::size_t local_pos)
    {
        flushLocal();
        ShardStep step;
        step.kind = ShardStepKind::Remap;
        step.remapShardPos = shard_pos;
        step.remapLocalPos = local_pos;
        steps_.push_back(std::move(step));
        history_.emplace_back(shard_pos, local_pos);
        applySwap(shard_pos, local_pos);
        ++remaps_;
    }

    void applySwap(std::size_t a, std::size_t b)
    {
        const std::size_t qa = logicalAt_[a];
        const std::size_t qb = logicalAt_[b];
        logicalAt_[a] = qb;
        logicalAt_[b] = qa;
        physOf_[qa] = b;
        physOf_[qb] = a;
    }

    bool layoutIsIdentity() const
    {
        for (std::size_t j = 0; j < n_; ++j)
            if (logicalAt_[j] != j)
                return false;
        return true;
    }

    /**
     * Emits closing remaps so executeSharded leaves the register in
     * the canonical layout: the recorded transpositions, replayed in
     * reverse, invert the accumulated permutation; once the layout
     * hits identity the remaining replay composes to a no-op and is
     * skipped.
     */
    void restoreLayout()
    {
        for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
            if (layoutIsIdentity())
                return;
            ShardStep step;
            step.kind = ShardStepKind::Remap;
            step.remapShardPos = it->first;
            step.remapLocalPos = it->second;
            steps_.push_back(std::move(step));
            applySwap(it->first, it->second);
            ++remaps_;
        }
    }

    const Plan &plan_;
    std::size_t n_;
    std::size_t s_;
    ShardLowering lowering_;
    std::vector<std::size_t> physOf_;    ///< logical qubit -> position.
    std::vector<std::size_t> logicalAt_; ///< position -> logical qubit.
    std::vector<KernelOp> pendingLocal_;
    std::vector<ShardStep> steps_;
    std::vector<std::pair<std::size_t, std::size_t>> history_;
    std::size_t exchanges_ = 0;
    std::size_t remaps_ = 0;
};

} // namespace

ShardPlan::ShardPlan(std::size_t num_qubits, std::size_t shard_bits,
                     std::vector<ShardStep> steps, PlanStats stats)
    : nQubits_(num_qubits), shardBits_(shard_bits), steps_(std::move(steps)),
      stats_(stats)
{
}

std::uint64_t
ShardPlan::plannedTransportBytes() const
{
    const std::uint64_t sliceBytes =
        std::uint64_t{sliceDim()} * sizeof(Complex);
    std::uint64_t total = 0;
    for (const ShardStep &step : steps_) {
        if (step.kind == ShardStepKind::Exchange)
            total += std::uint64_t{shardCount()} * sliceBytes;
        else if (step.kind == ShardStepKind::Remap)
            total += std::uint64_t{shardCount()} * (sliceBytes / 2);
    }
    return total;
}

std::size_t
resolveShardBits(std::size_t requested, std::size_t n_qubits)
{
    std::size_t s = requested == 0 ? env::shardBits() : requested;
    if (n_qubits == 0)
        return 0;
    if (s >= n_qubits)
        s = n_qubits - 1; // keep at least one local index bit.
    return s;
}

ShardPlan
compileSharded(const Plan &plan, std::size_t shard_bits,
               const ShardOptions &opts)
{
    if (shard_bits != 0 && shard_bits >= plan.numQubits())
        throw std::invalid_argument(
            "compileSharded: shard_bits must be below the plan width");
    OBS_SPAN("sim.shard_compile");
    return ShardCompiler(plan, shard_bits, opts).compile();
}

namespace {

/** Shard k's value of the global index bit a shard position
 *  addresses. */
std::size_t
shardBit(std::size_t k, std::size_t s, std::size_t pos)
{
    return (k >> (s - 1 - pos)) & 1;
}

/** Runs every task over [0, count) — the shard axis — on the pool
 *  when one is available, inline otherwise. */
void
forEachShard(ThreadPool *pool, std::size_t count,
             const std::function<void(std::size_t)> &fn)
{
    if (pool != nullptr && pool->size() > 1)
        pool->parallelFor(count, fn);
    else
        for (std::size_t k = 0; k < count; ++k)
            fn(k);
}

/**
 * Serial within-shard execution of a local sub-plan: the unsharded
 * Plan-level routing (blocked when opts.blockQubits resolves for the
 * slice width) with the shard task as the parallel granule instead of
 * the sweep.
 */
void
executeLocalSerial(const Plan &plan, Complex *amps, std::size_t block_qubits)
{
    const std::size_t block = resolveBlockQubits(block_qubits,
                                                 plan.numQubits());
    if (block != 0) {
        executeBlocked(plan, amps, block);
        return;
    }
    execute(plan, amps);
}

/** One local op on a shard's SoA slice (full sweep, batched
 *  kernels). */
void
executeOpBatchedRaw(const KernelOp &op, double *re, double *im,
                    std::size_t n_qubits, std::size_t batch)
{
    switch (op.kind) {
      case KernelKind::OneQ:
        apply1qBatch(re, im, n_qubits, batch, op.q0, op.m.data());
        return;
      case KernelKind::OneQDiag:
        apply1qDiagBatch(re, im, n_qubits, batch, op.q0, op.m[0], op.m[1]);
        return;
      case KernelKind::TwoQ:
        apply2qBatch(re, im, n_qubits, batch, op.q0, op.q1, op.m.data());
        return;
      case KernelKind::TwoQDiag:
        apply2qDiagBatch(re, im, n_qubits, batch, op.q0, op.q1,
                         op.m.data());
        return;
      case KernelKind::Dense:
        applyDenseBatch(re, im, n_qubits, batch, op.dense, op.qubits);
        return;
    }
    throw std::logic_error("executeOpBatchedRaw: unknown kernel kind");
}

/** The per-shard diagonal selection of a Diag step: every amplitude
 *  of shard k agrees on the shard-bit targets, so the op degenerates
 *  to a whole-slice scale or a local 1q diagonal. */
struct DiagSelection
{
    bool wholeSlice = false;
    std::size_t localQubit = 0; ///< slice-local qubit when !wholeSlice.
    Complex d0, d1;             ///< d0 == d1 for the whole-slice form.
};

DiagSelection
selectDiag(const ShardStep &step, std::size_t k, std::size_t s)
{
    DiagSelection sel;
    if (step.opKind == KernelKind::OneQDiag) {
        sel.wholeSlice = true;
        sel.d0 = sel.d1 = step.m[shardBit(k, s, step.posHi)];
        return sel;
    }
    const bool hiShard = step.posHi < s;
    const bool loShard = step.posLo < s;
    if (hiShard && loShard) {
        const std::size_t bh = shardBit(k, s, step.posHi);
        const std::size_t bl = shardBit(k, s, step.posLo);
        sel.wholeSlice = true;
        sel.d0 = sel.d1 = step.m[2 * bh + bl];
    } else if (hiShard) {
        const std::size_t bh = shardBit(k, s, step.posHi);
        sel.localQubit = step.posLo - s;
        sel.d0 = step.m[2 * bh];
        sel.d1 = step.m[2 * bh + 1];
    } else {
        const std::size_t bl = shardBit(k, s, step.posLo);
        sel.localQubit = step.posHi - s;
        sel.d0 = step.m[bl];
        sel.d1 = step.m[2 + bl];
    }
    return sel;
}

/**
 * The per-shard update of an Exchange step on interleaved amplitudes:
 * own rows of every crossing group, computed from the shard's slice
 * plus the partner slice received into @p oth, with the serial
 * kernels' per-amplitude IEEE expression order (operands loaded
 * before any store, products summed left to right).
 */
void
exchangeUpdate(const ShardStep &step, std::size_t k, std::size_t s,
               std::size_t local_bits, Complex *own, const Complex *oth)
{
    const std::size_t slice = std::size_t{1} << local_bits;
    const std::size_t bit = shardBit(k, s, step.shardPos);
    const Complex *m = step.m.data();
    if (step.opKind == KernelKind::OneQ) {
        if (bit == 0) {
            for (std::size_t j = 0; j < slice; ++j) {
                const Complex a0 = own[j];
                const Complex a1 = oth[j];
                own[j] = m[0] * a0 + m[1] * a1;
            }
        } else {
            for (std::size_t j = 0; j < slice; ++j) {
                const Complex a0 = oth[j];
                const Complex a1 = own[j];
                own[j] = m[2] * a0 + m[3] * a1;
            }
        }
        return;
    }
    // TwoQ with one local target: gate basis r = 2*b_hi + b_lo; the
    // shard bit pins one gate bit, the local bit lm the other.
    const std::size_t lpos = local_bits - 1 - (step.localPos - s);
    const std::size_t lm = std::size_t{1} << lpos;
    const std::size_t r0 = step.hiIsShard ? 2 * bit : bit;
    const std::size_t r1 = step.hiIsShard ? 2 * bit + 1 : 2 + bit;
    for (std::size_t g = 0; g < (slice >> 1); ++g) {
        const std::size_t j0 = insertZeroBit(g, lpos);
        const std::size_t j1 = j0 | lm;
        Complex a0, a1, a2, a3;
        if (step.hiIsShard) {
            a0 = bit == 0 ? own[j0] : oth[j0];
            a1 = bit == 0 ? own[j1] : oth[j1];
            a2 = bit == 0 ? oth[j0] : own[j0];
            a3 = bit == 0 ? oth[j1] : own[j1];
        } else {
            a0 = bit == 0 ? own[j0] : oth[j0];
            a1 = bit == 0 ? oth[j0] : own[j0];
            a2 = bit == 0 ? own[j1] : oth[j1];
            a3 = bit == 0 ? oth[j1] : own[j1];
        }
        const Complex o0 = m[4 * r0 + 0] * a0 + m[4 * r0 + 1] * a1 +
                           m[4 * r0 + 2] * a2 + m[4 * r0 + 3] * a3;
        const Complex o1 = m[4 * r1 + 0] * a0 + m[4 * r1 + 1] * a1 +
                           m[4 * r1 + 2] * a2 + m[4 * r1 + 3] * a3;
        own[j0] = o0;
        own[j1] = o1;
    }
}

/** exchangeUpdate on one shard's SoA slice: identical expressions per
 *  lane. */
void
exchangeUpdateBatched(const ShardStep &step, std::size_t k, std::size_t s,
                      std::size_t local_bits, std::size_t batch,
                      double *re, double *im, const double *ore,
                      const double *oim)
{
    const std::size_t slice = std::size_t{1} << local_bits;
    const std::size_t bit = shardBit(k, s, step.shardPos);
    const Complex *m = step.m.data();
    if (step.opKind == KernelKind::OneQ) {
        for (std::size_t j = 0; j < slice; ++j) {
            const std::size_t at = j * batch;
            for (std::size_t t = 0; t < batch; ++t) {
                const Complex ownAmp = laneAmp(re, im, at + t);
                const Complex othAmp = laneAmp(ore, oim, at + t);
                if (bit == 0) {
                    const Complex a0 = ownAmp;
                    const Complex a1 = othAmp;
                    setLane(re, im, at + t, m[0] * a0 + m[1] * a1);
                } else {
                    const Complex a0 = othAmp;
                    const Complex a1 = ownAmp;
                    setLane(re, im, at + t, m[2] * a0 + m[3] * a1);
                }
            }
        }
        return;
    }
    const std::size_t lpos = local_bits - 1 - (step.localPos - s);
    const std::size_t lm = std::size_t{1} << lpos;
    const std::size_t r0 = step.hiIsShard ? 2 * bit : bit;
    const std::size_t r1 = step.hiIsShard ? 2 * bit + 1 : 2 + bit;
    for (std::size_t g = 0; g < (slice >> 1); ++g) {
        const std::size_t o0 = insertZeroBit(g, lpos) * batch;
        const std::size_t o1 = o0 + lm * batch;
        for (std::size_t t = 0; t < batch; ++t) {
            const Complex own0 = laneAmp(re, im, o0 + t);
            const Complex own1 = laneAmp(re, im, o1 + t);
            const Complex oth0 = laneAmp(ore, oim, o0 + t);
            const Complex oth1 = laneAmp(ore, oim, o1 + t);
            Complex a0, a1, a2, a3;
            if (step.hiIsShard) {
                a0 = bit == 0 ? own0 : oth0;
                a1 = bit == 0 ? own1 : oth1;
                a2 = bit == 0 ? oth0 : own0;
                a3 = bit == 0 ? oth1 : own1;
            } else {
                a0 = bit == 0 ? own0 : oth0;
                a1 = bit == 0 ? oth0 : own0;
                a2 = bit == 0 ? own1 : oth1;
                a3 = bit == 0 ? oth1 : own1;
            }
            setLane(re, im, o0 + t,
                    m[4 * r0 + 0] * a0 + m[4 * r0 + 1] * a1 +
                        m[4 * r0 + 2] * a2 + m[4 * r0 + 3] * a3);
            setLane(re, im, o1 + t,
                    m[4 * r1 + 0] * a0 + m[4 * r1 + 1] * a1 +
                        m[4 * r1 + 2] * a2 + m[4 * r1 + 3] * a3);
        }
    }
}

/** Slice offset of the g-th element of a remap's moving half: the
 *  local offsets whose remapped bit disagrees with the shard bit. */
std::size_t
remapOffset(std::size_t g, std::size_t lpos, std::size_t moving_bit)
{
    const std::size_t lm = std::size_t{1} << lpos;
    return insertZeroBit(g, lpos) | (moving_bit ? lm : 0);
}

} // namespace

void
executeSharded(const ShardPlan &plan, Complex *amps, const ExecOptions &opts,
               Transport *transport)
{
    const std::size_t s = plan.shardBits();
    const std::size_t L = plan.numQubits() - s;
    const std::size_t S = plan.shardCount();
    const std::size_t slice = plan.sliceDim();
    OBS_SPAN("sim.shard_plan");

    std::optional<ThreadPool> transient;
    ExecOptions resolved = opts;
    if (resolved.pool == nullptr && opts.threads != 1) {
        transient.emplace(opts.threads);
        resolved.pool = &*transient;
    }
    ThreadPool *pool = resolved.pool;

    std::optional<InProcessTransport> inProcess;
    if (transport == nullptr) {
        inProcess.emplace(pool);
        transport = &*inProcess;
    }

    bool anyExchange = false;
    bool anyRemap = false;
    for (const ShardStep &step : plan.steps()) {
        anyExchange = anyExchange || step.kind == ShardStepKind::Exchange;
        anyRemap = anyRemap || step.kind == ShardStepKind::Remap;
    }
    const std::size_t half = slice >> 1;
    std::vector<std::vector<Complex>> recv(S);
    std::vector<std::vector<Complex>> send(S);
    for (std::size_t k = 0; k < S; ++k) {
        if (anyExchange)
            recv[k].resize(slice);
        else if (anyRemap)
            recv[k].resize(half);
        if (anyRemap)
            send[k].resize(half);
    }
    std::vector<TransportMessage> msgs;

    for (const ShardStep &step : plan.steps()) {
        switch (step.kind) {
          case ShardStepKind::Local: {
            OBS_SPAN("sim.shard_local");
            const Plan &sub = *step.local;
            forEachShard(pool, S, [&](std::size_t k) {
                executeLocalSerial(sub, amps + k * slice, opts.blockQubits);
            });
            break;
          }
          case ShardStepKind::Diag: {
            OBS_SPAN("sim.shard_diag");
            forEachShard(pool, S, [&](std::size_t k) {
                const DiagSelection sel = selectDiag(step, k, s);
                apply1qDiag(amps + k * slice, L,
                            sel.wholeSlice ? 0 : sel.localQubit, sel.d0,
                            sel.d1);
            });
            break;
          }
          case ShardStepKind::Exchange: {
            OBS_SPAN("sim.exchange");
            OBS_COUNT("sim.exchanges", 1);
            const std::size_t pm = std::size_t{1}
                                   << (s - 1 - step.shardPos);
            msgs.clear();
            for (std::size_t k = 0; k < S; ++k)
                msgs.push_back(
                    {k, k ^ pm,
                     reinterpret_cast<const double *>(amps + k * slice),
                     reinterpret_cast<double *>(recv[k ^ pm].data()),
                     slice * 2});
            transport->exchange(msgs);
            forEachShard(pool, S, [&](std::size_t k) {
                exchangeUpdate(step, k, s, L, amps + k * slice,
                               recv[k].data());
            });
            break;
          }
          case ShardStepKind::Remap: {
            OBS_SPAN("sim.remap");
            OBS_COUNT("sim.remaps", 1);
            const std::size_t pm = std::size_t{1}
                                   << (s - 1 - step.remapShardPos);
            const std::size_t lpos = L - 1 - (step.remapLocalPos - s);
            forEachShard(pool, S, [&](std::size_t k) {
                const std::size_t moving =
                    1 - shardBit(k, s, step.remapShardPos);
                Complex *own = amps + k * slice;
                Complex *buf = send[k].data();
                for (std::size_t g = 0; g < half; ++g)
                    buf[g] = own[remapOffset(g, lpos, moving)];
            });
            msgs.clear();
            for (std::size_t k = 0; k < S; ++k)
                msgs.push_back(
                    {k, k ^ pm,
                     reinterpret_cast<const double *>(send[k].data()),
                     reinterpret_cast<double *>(recv[k ^ pm].data()),
                     half * 2});
            transport->exchange(msgs);
            forEachShard(pool, S, [&](std::size_t k) {
                const std::size_t moving =
                    1 - shardBit(k, s, step.remapShardPos);
                Complex *own = amps + k * slice;
                const Complex *buf = recv[k].data();
                for (std::size_t g = 0; g < half; ++g)
                    own[remapOffset(g, lpos, moving)] = buf[g];
            });
            break;
          }
        }
    }
}

void
executeShardedBatched(const ShardPlan &plan, BatchState &batch,
                      const ExecOptions &opts, Transport *transport)
{
    if (batch.numQubits() != plan.numQubits())
        throw std::invalid_argument(
            "executeShardedBatched: batch width does not match the "
            "schedule width");
    const std::size_t s = plan.shardBits();
    const std::size_t L = plan.numQubits() - s;
    const std::size_t S = plan.shardCount();
    const std::size_t slice = plan.sliceDim();
    const std::size_t lanes = batch.batch();
    OBS_SPAN("sim.shard_plan_batched");

    std::optional<ThreadPool> transient;
    ExecOptions resolved = opts;
    if (resolved.pool == nullptr && opts.threads != 1) {
        transient.emplace(opts.threads);
        resolved.pool = &*transient;
    }
    ThreadPool *pool = resolved.pool;

    std::optional<InProcessTransport> inProcess;
    if (transport == nullptr) {
        inProcess.emplace(pool);
        transport = &*inProcess;
    }

    bool anyExchange = false;
    bool anyRemap = false;
    for (const ShardStep &step : plan.steps()) {
        anyExchange = anyExchange || step.kind == ShardStepKind::Exchange;
        anyRemap = anyRemap || step.kind == ShardStepKind::Remap;
    }
    const std::size_t half = slice >> 1;
    const std::size_t sliceDoubles = slice * lanes;
    const std::size_t halfDoubles = half * lanes;
    std::vector<std::vector<double>> recvRe(S), recvIm(S);
    std::vector<std::vector<double>> sendRe(S), sendIm(S);
    for (std::size_t k = 0; k < S; ++k) {
        const std::size_t recvLen =
            anyExchange ? sliceDoubles : (anyRemap ? halfDoubles : 0);
        recvRe[k].resize(recvLen);
        recvIm[k].resize(recvLen);
        if (anyRemap) {
            sendRe[k].resize(halfDoubles);
            sendIm[k].resize(halfDoubles);
        }
    }
    double *const re = batch.re();
    double *const im = batch.im();
    std::vector<TransportMessage> msgs;

    for (const ShardStep &step : plan.steps()) {
        switch (step.kind) {
          case ShardStepKind::Local: {
            OBS_SPAN("sim.shard_local");
            const Plan &sub = *step.local;
            forEachShard(pool, S, [&](std::size_t k) {
                const std::size_t at = k * sliceDoubles;
                for (const KernelOp &op : sub.ops())
                    executeOpBatchedRaw(op, re + at, im + at, L, lanes);
            });
            break;
          }
          case ShardStepKind::Diag: {
            OBS_SPAN("sim.shard_diag");
            forEachShard(pool, S, [&](std::size_t k) {
                const DiagSelection sel = selectDiag(step, k, s);
                const std::size_t at = k * sliceDoubles;
                apply1qDiagBatch(re + at, im + at, L, lanes,
                                 sel.wholeSlice ? 0 : sel.localQubit,
                                 sel.d0, sel.d1);
            });
            break;
          }
          case ShardStepKind::Exchange: {
            OBS_SPAN("sim.exchange");
            OBS_COUNT("sim.exchanges", 1);
            const std::size_t pm = std::size_t{1}
                                   << (s - 1 - step.shardPos);
            msgs.clear();
            for (std::size_t k = 0; k < S; ++k) {
                const std::size_t at = k * sliceDoubles;
                msgs.push_back({k, k ^ pm, re + at,
                                recvRe[k ^ pm].data(), sliceDoubles});
                msgs.push_back({k, k ^ pm, im + at,
                                recvIm[k ^ pm].data(), sliceDoubles});
            }
            transport->exchange(msgs);
            forEachShard(pool, S, [&](std::size_t k) {
                const std::size_t at = k * sliceDoubles;
                exchangeUpdateBatched(step, k, s, L, lanes, re + at,
                                      im + at, recvRe[k].data(),
                                      recvIm[k].data());
            });
            break;
          }
          case ShardStepKind::Remap: {
            OBS_SPAN("sim.remap");
            OBS_COUNT("sim.remaps", 1);
            const std::size_t pm = std::size_t{1}
                                   << (s - 1 - step.remapShardPos);
            const std::size_t lpos = L - 1 - (step.remapLocalPos - s);
            forEachShard(pool, S, [&](std::size_t k) {
                const std::size_t moving =
                    1 - shardBit(k, s, step.remapShardPos);
                const std::size_t at = k * sliceDoubles;
                for (std::size_t g = 0; g < half; ++g) {
                    const std::size_t src =
                        at + remapOffset(g, lpos, moving) * lanes;
                    for (std::size_t t = 0; t < lanes; ++t) {
                        sendRe[k][g * lanes + t] = re[src + t];
                        sendIm[k][g * lanes + t] = im[src + t];
                    }
                }
            });
            msgs.clear();
            for (std::size_t k = 0; k < S; ++k) {
                msgs.push_back({k, k ^ pm, sendRe[k].data(),
                                recvRe[k ^ pm].data(), halfDoubles});
                msgs.push_back({k, k ^ pm, sendIm[k].data(),
                                recvIm[k ^ pm].data(), halfDoubles});
            }
            transport->exchange(msgs);
            forEachShard(pool, S, [&](std::size_t k) {
                const std::size_t moving =
                    1 - shardBit(k, s, step.remapShardPos);
                const std::size_t at = k * sliceDoubles;
                for (std::size_t g = 0; g < half; ++g) {
                    const std::size_t dst =
                        at + remapOffset(g, lpos, moving) * lanes;
                    for (std::size_t t = 0; t < lanes; ++t) {
                        re[dst + t] = recvRe[k][g * lanes + t];
                        im[dst + t] = recvIm[k][g * lanes + t];
                    }
                }
            });
            break;
          }
        }
    }
}

linalg::CVector
runSharded(const Plan &plan, std::size_t shard_bits, const ExecOptions &opts,
           const ShardOptions &shard_opts, Transport *transport)
{
    const ShardPlan sharded = compileSharded(plan, shard_bits, shard_opts);
    linalg::CVector amps(plan.dim(), Complex{0.0, 0.0});
    amps[0] = 1.0;
    executeSharded(sharded, amps.data(), opts, transport);
    return amps;
}

} // namespace sim
} // namespace crisc

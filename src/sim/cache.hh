/**
 * @file
 * Cache-geometry heuristics for blocked plan execution (engine.hh).
 *
 * Above ~23 qubits a statevector (2^n * 16 B) falls out of the last-
 * level cache and every kernel sweep streams the whole register from
 * DRAM; the blocked executor instead tiles a run of compatible kernel
 * ops over contiguous amplitude blocks sized to stay resident in L2.
 * This header owns the geometry questions that sizing needs: how many
 * bytes one block should occupy (cacheBlockBytes), the block exponent
 * that footprint implies for a given register (autoBlockQubits), and
 * the resolution of the user-facing ExecOptions::blockQubits knob
 * (resolveBlockQubits).
 */

#ifndef CRISC_SIM_CACHE_HH
#define CRISC_SIM_CACHE_HH

#include <cstddef>

namespace crisc {
namespace sim {

/** Lower clamp of cacheBlockBytes(): one block never shrinks below a
 *  page (256 amplitudes — smaller tiles drown in loop overhead). */
constexpr std::size_t kMinBlockBytes = std::size_t{4} * 1024;

/** Upper clamp of cacheBlockBytes(): no cache is bigger than this, and
 *  a larger override would be indistinguishable from "off". */
constexpr std::size_t kMaxBlockBytes = std::size_t{1} << 30;

/** Documented fallback when no cache size can be detected: half of a
 *  typical 1 MiB per-core L2. */
constexpr std::size_t kFallbackBlockBytes = std::size_t{512} * 1024;

/**
 * Registers at least this wide turn blocking on under the auto policy
 * (ExecOptions::blockQubits == 0): 2^24 amplitudes are 256 MiB —
 * past every L2 and most LLCs — while narrower registers fit some
 * cache level and per-op sweeps stay cheap.
 */
constexpr std::size_t kAutoBlockFromWidth = 24;

/**
 * Target footprint in bytes of one amplitude block for blocked
 * execution. Resolution order:
 *
 *   1. the CRISC_BLOCK_BYTES environment variable (sim/env.hh), when
 *      set to a positive byte count (clamped to [kMinBlockBytes,
 *      kMaxBlockBytes]; "" and "0" mean "no override"; anything
 *      non-numeric throws std::invalid_argument from the parse);
 *   2. half the detected per-core L2 data cache
 *      (sysconf(_SC_LEVEL2_CACHE_SIZE)) — half, so the block shares
 *      the cache with the rest of the working set;
 *   3. kFallbackBlockBytes when detection is unavailable or reports
 *      nothing.
 *
 * The environment is parsed once per process (sim/env.hh); tests that
 * setenv the override call sim::env::resetForTesting() to re-read.
 */
std::size_t cacheBlockBytes();

/**
 * The block exponent the cacheBlockBytes() footprint implies for an
 * n-qubit register: the largest b with 2^b amplitudes (16 B each) not
 * exceeding the footprint, clamped to [1, n_qubits].
 */
std::size_t autoBlockQubits(std::size_t n_qubits);

/**
 * Resolves the ExecOptions::blockQubits knob for an n-qubit plan into
 * an effective block exponent: 0 (auto) enables blocking at
 * autoBlockQubits(n) for registers of at least kAutoBlockFromWidth
 * qubits and disables it (returns 0) below; any other value forces
 * blocking at that exponent, clamped to [1, n_qubits] (b == n_qubits
 * is the degenerate single-block form, equivalent to unblocked
 * execution). A return of 0 means "execute unblocked".
 */
std::size_t resolveBlockQubits(std::size_t requested, std::size_t n_qubits);

} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_CACHE_HH

/**
 * @file
 * AVX-512F backend stamp: kernels_impl.hh instantiated over the 8-lane
 * __m512d simd backend, the first backend with mask-register tails
 * (simd::kMaskedTails) — batched lane tails run through the vector body
 * under a mask instead of a scalar remainder loop. Compiled with
 * -mavx512f -ffp-contract=off (see CMakeLists.txt); only dispatch.cc
 * may call into this TU, and only after the CPU probe (or an explicit
 * override) confirmed AVX-512F.
 */

#define CRISC_SIMD_STAMP_AVX512 1
#define CRISC_KERNEL_TABLE_FN avx512KernelTable
#define CRISC_KERNEL_BACKEND_ID Backend::Avx512

#include "sim/kernels_impl.hh"

/**
 * @file
 * Backend-stamped kernel implementations. This header is the single
 * source of every SIMD-dependent statevector kernel; each per-backend
 * translation unit (kernels_scalar.cc, kernels_avx2.cc,
 * kernels_avx512.cc, kernels_neon.cc) defines
 *
 *   - one CRISC_SIMD_STAMP_* backend selector (consumed by simd.hh),
 *   - CRISC_KERNEL_TABLE_FN: the name of the exported table builder
 *     (e.g. avx2KernelTable, declared in dispatch.hh detail), and
 *   - CRISC_KERNEL_BACKEND_ID: the sim::Backend enumerator,
 *
 * then includes this header exactly once. The kernels land in an
 * anonymous namespace (no cross-TU symbol collisions); the only export
 * is the KernelTable builder the dispatcher links against.
 *
 * The loop bodies are the original src/sim/kernels.cc kernels,
 * unchanged: every simd:: lane replays the scalar reference operation
 * order (see simd.hh), short-stride sweeps fall back to the
 * sim::scalar references (compiled once, without ISA flags, in
 * kernels.cc), and batched Pauli noise replays the serial kernel's
 * stride-dependent negation flavour via the backend's
 * kNegIsSubFromZero trait. Backends with mask registers (kMaskedTails,
 * i.e. AVX-512) run the batch % kLanes lane tails of the batched
 * kernels through the vector body with masked loads/stores instead of
 * a scalar remainder loop — same per-lane operation sequence, so the
 * bitwise contract holds either way. Compile every stamp TU with
 * -ffp-contract=off.
 */

#ifndef CRISC_SIM_KERNELS_IMPL_HH
#define CRISC_SIM_KERNELS_IMPL_HH

#if !defined(CRISC_KERNEL_TABLE_FN) || !defined(CRISC_KERNEL_BACKEND_ID)
#error "kernels_impl.hh: stamp TU must define CRISC_KERNEL_TABLE_FN " \
       "and CRISC_KERNEL_BACKEND_ID before including"
#endif

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/dispatch.hh"
#include "sim/kernels.hh"
#include "sim/kernels_util.hh"
#include "sim/simd.hh"

namespace crisc {
namespace sim {
namespace {
// Named inner namespace so unqualified kernel names never collide with
// the sim::apply* dispatch wrappers visible from kernels.hh.
namespace stamped {

using detail::insertZeroBit;
using detail::laneAmp;
using detail::setLane;

/**
 * Negation as this backend's serial dispatching Pauli kernel performs
 * it for a sweep whose addressed run takes the vector path: AVX2 and
 * AVX-512 neg computes 0 - x (mapping +0 to +0), scalar and NEON flip
 * the sign bit (+0 to -0). Batched lanes replay the serial kernel's
 * stride-dependent choice so they stay bit-identical to the
 * per-trajectory run even on signed zeros.
 */
inline double
negLikeSerial(bool vector_path, double x)
{
    if constexpr (simd::kNegIsSubFromZero) {
        if (vector_path)
            return 0.0 - x;
    } else {
        (void)vector_path;
    }
    return -x;
}

// ---------------------------------------------------------------------
// SIMD kernels. Each addressed contiguous run has power-of-two length,
// so once a run is at least simd::kLanes wide it divides evenly — no
// tail loops. Shorter runs (gate qubits within log2(kLanes) of the
// least significant bit, or whole registers smaller than a vector)
// take the scalar reference path.
// ---------------------------------------------------------------------

void
apply1q(Complex *amps, std::size_t n_qubits, std::size_t qubit,
        const Complex m[4])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    if (stride < simd::kLanes) {
        scalar::apply1q(amps, n_qubits, qubit, m);
        return;
    }
    const simd::CVec m00 = simd::broadcast(m[0]);
    const simd::CVec m01 = simd::broadcast(m[1]);
    const simd::CVec m10 = simd::broadcast(m[2]);
    const simd::CVec m11 = simd::broadcast(m[3]);
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; i += simd::kLanes) {
            const simd::CVec a0 = simd::loadc(amps + i);
            const simd::CVec a1 = simd::loadc(amps + i + stride);
            simd::storec(amps + i,
                         simd::add(simd::mul(m00, a0), simd::mul(m01, a1)));
            simd::storec(amps + i + stride,
                         simd::add(simd::mul(m10, a0), simd::mul(m11, a1)));
        }
    }
}

void
apply1qDiag(Complex *amps, std::size_t n_qubits, std::size_t qubit,
            Complex d0, Complex d1)
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    if (stride < simd::kLanes) {
        scalar::apply1qDiag(amps, n_qubits, qubit, d0, d1);
        return;
    }
    const simd::CVec v0 = simd::broadcast(d0);
    const simd::CVec v1 = simd::broadcast(d1);
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t i = base; i < base + stride; i += simd::kLanes) {
            simd::storec(amps + i, simd::mul(simd::loadc(amps + i), v0));
            simd::storec(amps + i + stride,
                         simd::mul(simd::loadc(amps + i + stride), v1));
        }
    }
}

void
applyPauli(Complex *amps, std::size_t n_qubits, std::size_t qubit,
           std::size_t pauli_index)
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t stride = std::size_t{1} << (n_qubits - 1 - qubit);
    if (stride < simd::kLanes) {
        scalar::applyPauli(amps, n_qubits, qubit, pauli_index);
        return;
    }
    switch (pauli_index) {
      case 1: // X: swap the pair.
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride;
                 i += simd::kLanes) {
                const simd::CVec a0 = simd::loadc(amps + i);
                const simd::CVec a1 = simd::loadc(amps + i + stride);
                simd::storec(amps + i, a1);
                simd::storec(amps + i + stride, a0);
            }
        }
        return;
      case 2: // Y = [[0, -i], [i, 0]].
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride;
                 i += simd::kLanes) {
                const simd::CVec a0 = simd::loadc(amps + i);
                const simd::CVec a1 = simd::loadc(amps + i + stride);
                simd::storec(amps + i, simd::mulNegI(a1));
                simd::storec(amps + i + stride, simd::mulPosI(a0));
            }
        }
        return;
      case 3: // Z: negate the |1> half of each pair.
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t i = base; i < base + stride;
                 i += simd::kLanes) {
                simd::storec(amps + i + stride,
                             simd::neg(simd::loadc(amps + i + stride)));
            }
        }
        return;
      default:
        throw std::invalid_argument("applyPauli: index must be 1..3");
    }
}

void
apply2q(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
        std::size_t q_lo, const Complex m[16])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t p_hi = n_qubits - 1 - q_hi; // weight-2 gate bit.
    const std::size_t p_lo = n_qubits - 1 - q_lo; // weight-1 gate bit.
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    const std::size_t s1 = std::size_t{1} << first;
    const std::size_t s2 = std::size_t{1} << second;
    if (s1 < simd::kLanes) {
        scalar::apply2q(amps, n_qubits, q_hi, q_lo, m);
        return;
    }
    simd::CVec mv[16];
    for (std::size_t i = 0; i < 16; ++i)
        mv[i] = simd::broadcast(m[i]);
    // Enumerate bases with both addressed bits zero as nested strided
    // blocks; the innermost run of s1 consecutive bases vectorizes.
    for (std::size_t blk = 0; blk < dim; blk += 2 * s2) {
        for (std::size_t sub = blk; sub < blk + s2; sub += 2 * s1) {
            for (std::size_t base = sub; base < sub + s1;
                 base += simd::kLanes) {
                const simd::CVec a0 = simd::loadc(amps + base);
                const simd::CVec a1 = simd::loadc(amps + base + m_lo);
                const simd::CVec a2 = simd::loadc(amps + base + m_hi);
                const simd::CVec a3 =
                    simd::loadc(amps + base + m_hi + m_lo);
                simd::storec(
                    amps + base,
                    simd::add(simd::add(simd::add(simd::mul(mv[0], a0),
                                                  simd::mul(mv[1], a1)),
                                        simd::mul(mv[2], a2)),
                              simd::mul(mv[3], a3)));
                simd::storec(
                    amps + base + m_lo,
                    simd::add(simd::add(simd::add(simd::mul(mv[4], a0),
                                                  simd::mul(mv[5], a1)),
                                        simd::mul(mv[6], a2)),
                              simd::mul(mv[7], a3)));
                simd::storec(
                    amps + base + m_hi,
                    simd::add(simd::add(simd::add(simd::mul(mv[8], a0),
                                                  simd::mul(mv[9], a1)),
                                        simd::mul(mv[10], a2)),
                              simd::mul(mv[11], a3)));
                simd::storec(
                    amps + base + m_hi + m_lo,
                    simd::add(simd::add(simd::add(simd::mul(mv[12], a0),
                                                  simd::mul(mv[13], a1)),
                                        simd::mul(mv[14], a2)),
                              simd::mul(mv[15], a3)));
            }
        }
    }
}

void
apply2qDiag(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
            std::size_t q_lo, const Complex d[4])
{
    const std::size_t dim = std::size_t{1} << n_qubits;
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    const std::size_t s1 = std::size_t{1} << first;
    const std::size_t s2 = std::size_t{1} << second;
    if (s1 < simd::kLanes) {
        scalar::apply2qDiag(amps, n_qubits, q_hi, q_lo, d);
        return;
    }
    const simd::CVec d0 = simd::broadcast(d[0]);
    const simd::CVec d1 = simd::broadcast(d[1]);
    const simd::CVec d2 = simd::broadcast(d[2]);
    const simd::CVec d3 = simd::broadcast(d[3]);
    for (std::size_t blk = 0; blk < dim; blk += 2 * s2) {
        for (std::size_t sub = blk; sub < blk + s2; sub += 2 * s1) {
            for (std::size_t base = sub; base < sub + s1;
                 base += simd::kLanes) {
                simd::storec(amps + base,
                             simd::mul(simd::loadc(amps + base), d0));
                simd::storec(
                    amps + base + m_lo,
                    simd::mul(simd::loadc(amps + base + m_lo), d1));
                simd::storec(
                    amps + base + m_hi,
                    simd::mul(simd::loadc(amps + base + m_hi), d2));
                simd::storec(
                    amps + base + m_hi + m_lo,
                    simd::mul(simd::loadc(amps + base + m_hi + m_lo), d3));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Group-range kernels (see kernels.hh): the same SIMD dispatch as the
// full kernels, applied to one sub-interval of the group index space.
// A range decomposes into whole contiguous stride runs plus partial
// runs at its ends; within a run the base index advances with the
// group counter, so the vector body applies unchanged and partial-
// vector tails fall back to the scalar per-group body. Both bodies
// perform the identical per-amplitude IEEE operation sequence, so any
// partition reassembles the serial sweep bit for bit.
// ---------------------------------------------------------------------

void
apply1qRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
             const Complex m[4], std::size_t pair_begin,
             std::size_t pair_end)
{
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = std::size_t{1} << pos;
    if (stride < simd::kLanes) {
        scalar::apply1qRange(amps, n_qubits, qubit, m, pair_begin,
                             pair_end);
        return;
    }
    const simd::CVec m00 = simd::broadcast(m[0]);
    const simd::CVec m01 = simd::broadcast(m[1]);
    const simd::CVec m10 = simd::broadcast(m[2]);
    const simd::CVec m11 = simd::broadcast(m[3]);
    std::size_t p = pair_begin;
    while (p < pair_end) {
        // Pairs [p, runEnd) share one contiguous stride run.
        const std::size_t runEnd =
            std::min(pair_end, (p & ~(stride - 1)) + stride);
        std::size_t i = insertZeroBit(p, pos);
        for (; p + simd::kLanes <= runEnd;
             p += simd::kLanes, i += simd::kLanes) {
            const simd::CVec a0 = simd::loadc(amps + i);
            const simd::CVec a1 = simd::loadc(amps + i + stride);
            simd::storec(amps + i,
                         simd::add(simd::mul(m00, a0), simd::mul(m01, a1)));
            simd::storec(amps + i + stride,
                         simd::add(simd::mul(m10, a0), simd::mul(m11, a1)));
        }
        for (; p < runEnd; ++p, ++i) {
            const Complex a0 = amps[i];
            const Complex a1 = amps[i + stride];
            amps[i] = m[0] * a0 + m[1] * a1;
            amps[i + stride] = m[2] * a0 + m[3] * a1;
        }
    }
}

void
apply1qDiagRange(Complex *amps, std::size_t n_qubits, std::size_t qubit,
                 Complex d0, Complex d1, std::size_t pair_begin,
                 std::size_t pair_end)
{
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = std::size_t{1} << pos;
    if (stride < simd::kLanes) {
        scalar::apply1qDiagRange(amps, n_qubits, qubit, d0, d1, pair_begin,
                                 pair_end);
        return;
    }
    const simd::CVec v0 = simd::broadcast(d0);
    const simd::CVec v1 = simd::broadcast(d1);
    std::size_t p = pair_begin;
    while (p < pair_end) {
        const std::size_t runEnd =
            std::min(pair_end, (p & ~(stride - 1)) + stride);
        std::size_t i = insertZeroBit(p, pos);
        for (; p + simd::kLanes <= runEnd;
             p += simd::kLanes, i += simd::kLanes) {
            simd::storec(amps + i, simd::mul(simd::loadc(amps + i), v0));
            simd::storec(amps + i + stride,
                         simd::mul(simd::loadc(amps + i + stride), v1));
        }
        for (; p < runEnd; ++p, ++i) {
            amps[i] *= d0;
            amps[i + stride] *= d1;
        }
    }
}

void
apply2qRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
             std::size_t q_lo, const Complex m[16],
             std::size_t quad_begin, std::size_t quad_end)
{
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    const std::size_t s1 = std::size_t{1} << first;
    if (s1 < simd::kLanes) {
        scalar::apply2qRange(amps, n_qubits, q_hi, q_lo, m, quad_begin,
                             quad_end);
        return;
    }
    simd::CVec mv[16];
    for (std::size_t i = 0; i < 16; ++i)
        mv[i] = simd::broadcast(m[i]);
    std::size_t g = quad_begin;
    while (g < quad_end) {
        // Quads [g, runEnd) share one contiguous run of s1 bases.
        const std::size_t runEnd =
            std::min(quad_end, (g & ~(s1 - 1)) + s1);
        std::size_t base = insertZeroBit(insertZeroBit(g, first), second);
        for (; g + simd::kLanes <= runEnd;
             g += simd::kLanes, base += simd::kLanes) {
            const simd::CVec a0 = simd::loadc(amps + base);
            const simd::CVec a1 = simd::loadc(amps + base + m_lo);
            const simd::CVec a2 = simd::loadc(amps + base + m_hi);
            const simd::CVec a3 = simd::loadc(amps + base + m_hi + m_lo);
            simd::storec(
                amps + base,
                simd::add(simd::add(simd::add(simd::mul(mv[0], a0),
                                              simd::mul(mv[1], a1)),
                                    simd::mul(mv[2], a2)),
                          simd::mul(mv[3], a3)));
            simd::storec(
                amps + base + m_lo,
                simd::add(simd::add(simd::add(simd::mul(mv[4], a0),
                                              simd::mul(mv[5], a1)),
                                    simd::mul(mv[6], a2)),
                          simd::mul(mv[7], a3)));
            simd::storec(
                amps + base + m_hi,
                simd::add(simd::add(simd::add(simd::mul(mv[8], a0),
                                              simd::mul(mv[9], a1)),
                                    simd::mul(mv[10], a2)),
                          simd::mul(mv[11], a3)));
            simd::storec(
                amps + base + m_hi + m_lo,
                simd::add(simd::add(simd::add(simd::mul(mv[12], a0),
                                              simd::mul(mv[13], a1)),
                                    simd::mul(mv[14], a2)),
                          simd::mul(mv[15], a3)));
        }
        for (; g < runEnd; ++g, ++base) {
            const std::size_t i1 = base | m_lo;
            const std::size_t i2 = base | m_hi;
            const std::size_t i3 = base | m_hi | m_lo;
            const Complex a0 = amps[base];
            const Complex a1 = amps[i1];
            const Complex a2 = amps[i2];
            const Complex a3 = amps[i3];
            amps[base] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
            amps[i1] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
            amps[i2] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
            amps[i3] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
        }
    }
}

void
apply2qDiagRange(Complex *amps, std::size_t n_qubits, std::size_t q_hi,
                 std::size_t q_lo, const Complex d[4],
                 std::size_t quad_begin, std::size_t quad_end)
{
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t m_hi = std::size_t{1} << p_hi;
    const std::size_t m_lo = std::size_t{1} << p_lo;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    const std::size_t s1 = std::size_t{1} << first;
    if (s1 < simd::kLanes) {
        scalar::apply2qDiagRange(amps, n_qubits, q_hi, q_lo, d, quad_begin,
                                 quad_end);
        return;
    }
    const simd::CVec d0 = simd::broadcast(d[0]);
    const simd::CVec d1 = simd::broadcast(d[1]);
    const simd::CVec d2 = simd::broadcast(d[2]);
    const simd::CVec d3 = simd::broadcast(d[3]);
    std::size_t g = quad_begin;
    while (g < quad_end) {
        const std::size_t runEnd =
            std::min(quad_end, (g & ~(s1 - 1)) + s1);
        std::size_t base = insertZeroBit(insertZeroBit(g, first), second);
        for (; g + simd::kLanes <= runEnd;
             g += simd::kLanes, base += simd::kLanes) {
            simd::storec(amps + base,
                         simd::mul(simd::loadc(amps + base), d0));
            simd::storec(amps + base + m_lo,
                         simd::mul(simd::loadc(amps + base + m_lo), d1));
            simd::storec(amps + base + m_hi,
                         simd::mul(simd::loadc(amps + base + m_hi), d2));
            simd::storec(
                amps + base + m_hi + m_lo,
                simd::mul(simd::loadc(amps + base + m_hi + m_lo), d3));
        }
        for (; g < runEnd; ++g, ++base) {
            amps[base] *= d[0];
            amps[base | m_lo] *= d[1];
            amps[base | m_hi] *= d[2];
            amps[base | m_hi | m_lo] *= d[3];
        }
    }
}

// ---------------------------------------------------------------------
// Batched SoA kernels (see kernels.hh): SIMD lanes run across the
// trajectory axis. Per amplitude group the batch lanes are contiguous
// in the split re/im arrays, so the vector body consumes whole vectors
// of lanes (simd::loads / stores, no permutation); the remaining
// batch % kLanes lanes run through the same vector body with mask-
// register loads/stores on backends that have them (kMaskedTails), or
// a scalar per-lane tail otherwise. Either tail replays the serial
// scalar operation sequence per lane, so lane t of any batched sweep —
// over any partition of the group range — is bit-identical to the
// serial kernel applied to statevector t.
// ---------------------------------------------------------------------

void
apply1qBatchRange(double *re, double *im, std::size_t n_qubits,
                  std::size_t batch, std::size_t qubit, const Complex m[4],
                  std::size_t pair_begin, std::size_t pair_end)
{
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = (std::size_t{1} << pos) * batch;
    const simd::CVec m00 = simd::broadcast(m[0]);
    const simd::CVec m01 = simd::broadcast(m[1]);
    const simd::CVec m10 = simd::broadcast(m[2]);
    const simd::CVec m11 = simd::broadcast(m[3]);
    for (std::size_t p = pair_begin; p < pair_end; ++p) {
        const std::size_t o0 = insertZeroBit(p, pos) * batch;
        const std::size_t o1 = o0 + stride;
        std::size_t t = 0;
        for (; t + simd::kLanes <= batch; t += simd::kLanes) {
            const simd::CVec a0 = simd::loads(re + o0 + t, im + o0 + t);
            const simd::CVec a1 = simd::loads(re + o1 + t, im + o1 + t);
            simd::stores(re + o0 + t, im + o0 + t,
                         simd::add(simd::mul(m00, a0), simd::mul(m01, a1)));
            simd::stores(re + o1 + t, im + o1 + t,
                         simd::add(simd::mul(m10, a0), simd::mul(m11, a1)));
        }
        if (t < batch) {
            if constexpr (simd::kMaskedTails) {
                const std::size_t nt = batch - t;
                const simd::CVec a0 =
                    simd::loadsTail(re + o0 + t, im + o0 + t, nt);
                const simd::CVec a1 =
                    simd::loadsTail(re + o1 + t, im + o1 + t, nt);
                simd::storesTail(re + o0 + t, im + o0 + t,
                                 simd::add(simd::mul(m00, a0),
                                           simd::mul(m01, a1)),
                                 nt);
                simd::storesTail(re + o1 + t, im + o1 + t,
                                 simd::add(simd::mul(m10, a0),
                                           simd::mul(m11, a1)),
                                 nt);
            } else {
                for (; t < batch; ++t) {
                    const Complex a0 = laneAmp(re, im, o0 + t);
                    const Complex a1 = laneAmp(re, im, o1 + t);
                    setLane(re, im, o0 + t, m[0] * a0 + m[1] * a1);
                    setLane(re, im, o1 + t, m[2] * a0 + m[3] * a1);
                }
            }
        }
    }
}

void
apply1qDiagBatchRange(double *re, double *im, std::size_t n_qubits,
                      std::size_t batch, std::size_t qubit, Complex d0,
                      Complex d1, std::size_t pair_begin,
                      std::size_t pair_end)
{
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = (std::size_t{1} << pos) * batch;
    const simd::CVec v0 = simd::broadcast(d0);
    const simd::CVec v1 = simd::broadcast(d1);
    for (std::size_t p = pair_begin; p < pair_end; ++p) {
        const std::size_t o0 = insertZeroBit(p, pos) * batch;
        const std::size_t o1 = o0 + stride;
        std::size_t t = 0;
        for (; t + simd::kLanes <= batch; t += simd::kLanes) {
            simd::stores(
                re + o0 + t, im + o0 + t,
                simd::mul(simd::loads(re + o0 + t, im + o0 + t), v0));
            simd::stores(
                re + o1 + t, im + o1 + t,
                simd::mul(simd::loads(re + o1 + t, im + o1 + t), v1));
        }
        if (t < batch) {
            if constexpr (simd::kMaskedTails) {
                const std::size_t nt = batch - t;
                simd::storesTail(
                    re + o0 + t, im + o0 + t,
                    simd::mul(
                        simd::loadsTail(re + o0 + t, im + o0 + t, nt), v0),
                    nt);
                simd::storesTail(
                    re + o1 + t, im + o1 + t,
                    simd::mul(
                        simd::loadsTail(re + o1 + t, im + o1 + t, nt), v1),
                    nt);
            } else {
                for (; t < batch; ++t) {
                    setLane(re, im, o0 + t, laneAmp(re, im, o0 + t) * d0);
                    setLane(re, im, o1 + t, laneAmp(re, im, o1 + t) * d1);
                }
            }
        }
    }
}

void
applyPauliBatchRange(double *re, double *im, std::size_t n_qubits,
                     std::size_t batch, std::size_t qubit,
                     std::size_t pauli_index, std::size_t pair_begin,
                     std::size_t pair_end)
{
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = (std::size_t{1} << pos) * batch;
    // Which negation flavour the serial dispatching kernel used for
    // this sweep (see negLikeSerial): pure moves and sign traffic are
    // memory-bound, so plain per-lane loops suffice here.
    const bool vec = (std::size_t{1} << pos) >= simd::kLanes;
    switch (pauli_index) {
      case 1: // X: swap the pair.
        for (std::size_t p = pair_begin; p < pair_end; ++p) {
            const std::size_t o0 = insertZeroBit(p, pos) * batch;
            const std::size_t o1 = o0 + stride;
            for (std::size_t t = 0; t < batch; ++t) {
                std::swap(re[o0 + t], re[o1 + t]);
                std::swap(im[o0 + t], im[o1 + t]);
            }
        }
        return;
      case 2: // Y = [[0, -i], [i, 0]].
        for (std::size_t p = pair_begin; p < pair_end; ++p) {
            const std::size_t o0 = insertZeroBit(p, pos) * batch;
            const std::size_t o1 = o0 + stride;
            for (std::size_t t = 0; t < batch; ++t) {
                const double a0r = re[o0 + t], a0i = im[o0 + t];
                const double a1r = re[o1 + t], a1i = im[o1 + t];
                re[o0 + t] = a1i;                      // -i a1
                im[o0 + t] = negLikeSerial(vec, a1r);
                re[o1 + t] = negLikeSerial(vec, a0i);  //  i a0
                im[o1 + t] = a0r;
            }
        }
        return;
      case 3: // Z: negate the |1> half of each pair.
        for (std::size_t p = pair_begin; p < pair_end; ++p) {
            const std::size_t o1 = insertZeroBit(p, pos) * batch + stride;
            for (std::size_t t = 0; t < batch; ++t) {
                re[o1 + t] = negLikeSerial(vec, re[o1 + t]);
                im[o1 + t] = negLikeSerial(vec, im[o1 + t]);
            }
        }
        return;
      default:
        throw std::invalid_argument(
            "applyPauliBatch: index must be 1..3");
    }
}

void
applyPauliLane(double *re, double *im, std::size_t n_qubits,
               std::size_t batch, std::size_t lane, std::size_t qubit,
               std::size_t pauli_index)
{
    const std::size_t pairs = (std::size_t{1} << n_qubits) >> 1;
    const std::size_t pos = n_qubits - 1 - qubit;
    const std::size_t stride = (std::size_t{1} << pos) * batch;
    const bool vec = (std::size_t{1} << pos) >= simd::kLanes;
    switch (pauli_index) {
      case 1:
        for (std::size_t p = 0; p < pairs; ++p) {
            const std::size_t o0 = insertZeroBit(p, pos) * batch + lane;
            const std::size_t o1 = o0 + stride;
            std::swap(re[o0], re[o1]);
            std::swap(im[o0], im[o1]);
        }
        return;
      case 2:
        for (std::size_t p = 0; p < pairs; ++p) {
            const std::size_t o0 = insertZeroBit(p, pos) * batch + lane;
            const std::size_t o1 = o0 + stride;
            const double a0r = re[o0], a0i = im[o0];
            const double a1r = re[o1], a1i = im[o1];
            re[o0] = a1i;
            im[o0] = negLikeSerial(vec, a1r);
            re[o1] = negLikeSerial(vec, a0i);
            im[o1] = a0r;
        }
        return;
      case 3:
        for (std::size_t p = 0; p < pairs; ++p) {
            const std::size_t o1 =
                insertZeroBit(p, pos) * batch + lane + stride;
            re[o1] = negLikeSerial(vec, re[o1]);
            im[o1] = negLikeSerial(vec, im[o1]);
        }
        return;
      default:
        throw std::invalid_argument(
            "applyPauliLane: index must be 1..3");
    }
}

void
apply2qBatchRange(double *re, double *im, std::size_t n_qubits,
                  std::size_t batch, std::size_t q_hi, std::size_t q_lo,
                  const Complex m[16], std::size_t quad_begin,
                  std::size_t quad_end)
{
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t o_hi = (std::size_t{1} << p_hi) * batch;
    const std::size_t o_lo = (std::size_t{1} << p_lo) * batch;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    simd::CVec mv[16];
    for (std::size_t i = 0; i < 16; ++i)
        mv[i] = simd::broadcast(m[i]);
    for (std::size_t g = quad_begin; g < quad_end; ++g) {
        const std::size_t b0 =
            insertZeroBit(insertZeroBit(g, first), second) * batch;
        const std::size_t b1 = b0 + o_lo;
        const std::size_t b2 = b0 + o_hi;
        const std::size_t b3 = b0 + o_hi + o_lo;
        std::size_t t = 0;
        for (; t + simd::kLanes <= batch; t += simd::kLanes) {
            const simd::CVec a0 = simd::loads(re + b0 + t, im + b0 + t);
            const simd::CVec a1 = simd::loads(re + b1 + t, im + b1 + t);
            const simd::CVec a2 = simd::loads(re + b2 + t, im + b2 + t);
            const simd::CVec a3 = simd::loads(re + b3 + t, im + b3 + t);
            simd::stores(
                re + b0 + t, im + b0 + t,
                simd::add(simd::add(simd::add(simd::mul(mv[0], a0),
                                              simd::mul(mv[1], a1)),
                                    simd::mul(mv[2], a2)),
                          simd::mul(mv[3], a3)));
            simd::stores(
                re + b1 + t, im + b1 + t,
                simd::add(simd::add(simd::add(simd::mul(mv[4], a0),
                                              simd::mul(mv[5], a1)),
                                    simd::mul(mv[6], a2)),
                          simd::mul(mv[7], a3)));
            simd::stores(
                re + b2 + t, im + b2 + t,
                simd::add(simd::add(simd::add(simd::mul(mv[8], a0),
                                              simd::mul(mv[9], a1)),
                                    simd::mul(mv[10], a2)),
                          simd::mul(mv[11], a3)));
            simd::stores(
                re + b3 + t, im + b3 + t,
                simd::add(simd::add(simd::add(simd::mul(mv[12], a0),
                                              simd::mul(mv[13], a1)),
                                    simd::mul(mv[14], a2)),
                          simd::mul(mv[15], a3)));
        }
        if (t < batch) {
            if constexpr (simd::kMaskedTails) {
                const std::size_t nt = batch - t;
                const simd::CVec a0 =
                    simd::loadsTail(re + b0 + t, im + b0 + t, nt);
                const simd::CVec a1 =
                    simd::loadsTail(re + b1 + t, im + b1 + t, nt);
                const simd::CVec a2 =
                    simd::loadsTail(re + b2 + t, im + b2 + t, nt);
                const simd::CVec a3 =
                    simd::loadsTail(re + b3 + t, im + b3 + t, nt);
                simd::storesTail(
                    re + b0 + t, im + b0 + t,
                    simd::add(simd::add(simd::add(simd::mul(mv[0], a0),
                                                  simd::mul(mv[1], a1)),
                                        simd::mul(mv[2], a2)),
                              simd::mul(mv[3], a3)),
                    nt);
                simd::storesTail(
                    re + b1 + t, im + b1 + t,
                    simd::add(simd::add(simd::add(simd::mul(mv[4], a0),
                                                  simd::mul(mv[5], a1)),
                                        simd::mul(mv[6], a2)),
                              simd::mul(mv[7], a3)),
                    nt);
                simd::storesTail(
                    re + b2 + t, im + b2 + t,
                    simd::add(simd::add(simd::add(simd::mul(mv[8], a0),
                                                  simd::mul(mv[9], a1)),
                                        simd::mul(mv[10], a2)),
                              simd::mul(mv[11], a3)),
                    nt);
                simd::storesTail(
                    re + b3 + t, im + b3 + t,
                    simd::add(simd::add(simd::add(simd::mul(mv[12], a0),
                                                  simd::mul(mv[13], a1)),
                                        simd::mul(mv[14], a2)),
                              simd::mul(mv[15], a3)),
                    nt);
            } else {
                for (; t < batch; ++t) {
                    const Complex a0 = laneAmp(re, im, b0 + t);
                    const Complex a1 = laneAmp(re, im, b1 + t);
                    const Complex a2 = laneAmp(re, im, b2 + t);
                    const Complex a3 = laneAmp(re, im, b3 + t);
                    setLane(re, im, b0 + t,
                            m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3);
                    setLane(re, im, b1 + t,
                            m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3);
                    setLane(re, im, b2 + t,
                            m[8] * a0 + m[9] * a1 + m[10] * a2 +
                                m[11] * a3);
                    setLane(re, im, b3 + t,
                            m[12] * a0 + m[13] * a1 + m[14] * a2 +
                                m[15] * a3);
                }
            }
        }
    }
}

void
apply2qDiagBatchRange(double *re, double *im, std::size_t n_qubits,
                      std::size_t batch, std::size_t q_hi,
                      std::size_t q_lo, const Complex d[4],
                      std::size_t quad_begin, std::size_t quad_end)
{
    const std::size_t p_hi = n_qubits - 1 - q_hi;
    const std::size_t p_lo = n_qubits - 1 - q_lo;
    const std::size_t o_hi = (std::size_t{1} << p_hi) * batch;
    const std::size_t o_lo = (std::size_t{1} << p_lo) * batch;
    const std::size_t first = p_hi < p_lo ? p_hi : p_lo;
    const std::size_t second = p_hi < p_lo ? p_lo : p_hi;
    const simd::CVec d0 = simd::broadcast(d[0]);
    const simd::CVec d1 = simd::broadcast(d[1]);
    const simd::CVec d2 = simd::broadcast(d[2]);
    const simd::CVec d3 = simd::broadcast(d[3]);
    for (std::size_t g = quad_begin; g < quad_end; ++g) {
        const std::size_t b0 =
            insertZeroBit(insertZeroBit(g, first), second) * batch;
        const std::size_t b1 = b0 + o_lo;
        const std::size_t b2 = b0 + o_hi;
        const std::size_t b3 = b0 + o_hi + o_lo;
        std::size_t t = 0;
        for (; t + simd::kLanes <= batch; t += simd::kLanes) {
            simd::stores(
                re + b0 + t, im + b0 + t,
                simd::mul(simd::loads(re + b0 + t, im + b0 + t), d0));
            simd::stores(
                re + b1 + t, im + b1 + t,
                simd::mul(simd::loads(re + b1 + t, im + b1 + t), d1));
            simd::stores(
                re + b2 + t, im + b2 + t,
                simd::mul(simd::loads(re + b2 + t, im + b2 + t), d2));
            simd::stores(
                re + b3 + t, im + b3 + t,
                simd::mul(simd::loads(re + b3 + t, im + b3 + t), d3));
        }
        if (t < batch) {
            if constexpr (simd::kMaskedTails) {
                const std::size_t nt = batch - t;
                simd::storesTail(
                    re + b0 + t, im + b0 + t,
                    simd::mul(
                        simd::loadsTail(re + b0 + t, im + b0 + t, nt), d0),
                    nt);
                simd::storesTail(
                    re + b1 + t, im + b1 + t,
                    simd::mul(
                        simd::loadsTail(re + b1 + t, im + b1 + t, nt), d1),
                    nt);
                simd::storesTail(
                    re + b2 + t, im + b2 + t,
                    simd::mul(
                        simd::loadsTail(re + b2 + t, im + b2 + t, nt), d2),
                    nt);
                simd::storesTail(
                    re + b3 + t, im + b3 + t,
                    simd::mul(
                        simd::loadsTail(re + b3 + t, im + b3 + t, nt), d3),
                    nt);
            } else {
                for (; t < batch; ++t) {
                    setLane(re, im, b0 + t, laneAmp(re, im, b0 + t) * d[0]);
                    setLane(re, im, b1 + t, laneAmp(re, im, b1 + t) * d[1]);
                    setLane(re, im, b2 + t, laneAmp(re, im, b2 + t) * d[2]);
                    setLane(re, im, b3 + t, laneAmp(re, im, b3 + t) * d[3]);
                }
            }
        }
    }
}

void
applyDenseBatchRange(double *re, double *im, std::size_t n_qubits,
                     std::size_t batch, const Matrix &op,
                     const std::vector<std::size_t> &qubits,
                     std::size_t group_begin, std::size_t group_end)
{
    const std::size_t k = qubits.size();
    const std::size_t gdim = std::size_t{1} << k;

    std::vector<std::size_t> pos(k);
    for (std::size_t b = 0; b < k; ++b)
        pos[b] = n_qubits - 1 - qubits[b];
    std::vector<std::size_t> sorted = pos;
    std::sort(sorted.begin(), sorted.end());

    // Per-group scratch in the same SoA layout: gather the 2^k
    // amplitudes of all lanes, multiply rows with lanes in the vector,
    // scatter back. s starts at broadcast(0) so the first accumulation
    // replays the scalar kernel's 0 + term.
    std::vector<double> inRe(gdim * batch), inIm(gdim * batch);
    std::vector<double> outRe(gdim * batch), outIm(gdim * batch);
    std::vector<std::size_t> idx(gdim);
    const simd::CVec zero = simd::broadcast(Complex{0.0, 0.0});
    for (std::size_t grp = group_begin; grp < group_end; ++grp) {
        std::size_t base = grp;
        for (std::size_t p : sorted)
            base = insertZeroBit(base, p);
        for (std::size_t g = 0; g < gdim; ++g) {
            std::size_t address = base;
            for (std::size_t b = 0; b < k; ++b)
                if ((g >> (k - 1 - b)) & 1)
                    address |= std::size_t{1} << pos[b];
            idx[g] = address * batch;
            std::copy(re + idx[g], re + idx[g] + batch,
                      inRe.data() + g * batch);
            std::copy(im + idx[g], im + idx[g] + batch,
                      inIm.data() + g * batch);
        }
        for (std::size_t r = 0; r < gdim; ++r) {
            std::size_t t = 0;
            for (; t + simd::kLanes <= batch; t += simd::kLanes) {
                simd::CVec s = zero;
                for (std::size_t c = 0; c < gdim; ++c)
                    s = simd::add(
                        s, simd::mul(simd::broadcast(op(r, c)),
                                     simd::loads(
                                         inRe.data() + c * batch + t,
                                         inIm.data() + c * batch + t)));
                simd::stores(outRe.data() + r * batch + t,
                             outIm.data() + r * batch + t, s);
            }
            if (t < batch) {
                if constexpr (simd::kMaskedTails) {
                    const std::size_t nt = batch - t;
                    simd::CVec s = zero;
                    for (std::size_t c = 0; c < gdim; ++c)
                        s = simd::add(
                            s, simd::mul(
                                   simd::broadcast(op(r, c)),
                                   simd::loadsTail(
                                       inRe.data() + c * batch + t,
                                       inIm.data() + c * batch + t, nt)));
                    simd::storesTail(outRe.data() + r * batch + t,
                                     outIm.data() + r * batch + t, s, nt);
                } else {
                    for (; t < batch; ++t) {
                        Complex s = 0.0;
                        for (std::size_t c = 0; c < gdim; ++c)
                            s += op(r, c) * Complex{inRe[c * batch + t],
                                                    inIm[c * batch + t]};
                        outRe[r * batch + t] = s.real();
                        outIm[r * batch + t] = s.imag();
                    }
                }
            }
        }
        for (std::size_t g = 0; g < gdim; ++g) {
            std::copy(outRe.data() + g * batch,
                      outRe.data() + (g + 1) * batch, re + idx[g]);
            std::copy(outIm.data() + g * batch,
                      outIm.data() + (g + 1) * batch, im + idx[g]);
        }
    }
}

} // namespace stamped
} // namespace

namespace detail {

const KernelTable &
CRISC_KERNEL_TABLE_FN()
{
    static const KernelTable table = [] {
        KernelTable t;
        t.backend = CRISC_KERNEL_BACKEND_ID;
        t.name = simd::kBackendName;
        t.lanes = simd::kLanes;
        t.apply1q = &stamped::apply1q;
        t.apply1qDiag = &stamped::apply1qDiag;
        t.applyPauli = &stamped::applyPauli;
        t.apply2q = &stamped::apply2q;
        t.apply2qDiag = &stamped::apply2qDiag;
        t.applyDense = &applyDenseShared;
        t.apply1qRange = &stamped::apply1qRange;
        t.apply1qDiagRange = &stamped::apply1qDiagRange;
        t.apply2qRange = &stamped::apply2qRange;
        t.apply2qDiagRange = &stamped::apply2qDiagRange;
        t.applyDenseRange = &applyDenseRangeShared;
        t.apply1qBatchRange = &stamped::apply1qBatchRange;
        t.apply1qDiagBatchRange = &stamped::apply1qDiagBatchRange;
        t.applyPauliBatchRange = &stamped::applyPauliBatchRange;
        t.apply2qBatchRange = &stamped::apply2qBatchRange;
        t.apply2qDiagBatchRange = &stamped::apply2qDiagBatchRange;
        t.applyDenseBatchRange = &stamped::applyDenseBatchRange;
        t.applyPauliLane = &stamped::applyPauliLane;
        return t;
    }();
    return table;
}

} // namespace detail
} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_KERNELS_IMPL_HH

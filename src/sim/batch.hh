/**
 * @file
 * Parallel trajectory batching. The heavy workloads (quantum volume,
 * noise studies) are embarrassingly parallel across noise trajectories
 * and random circuits; this module fans that axis out over a pool of
 * std::thread workers while keeping results bit-for-bit deterministic:
 *
 *   - every trajectory draws from its own RNG stream, derived from the
 *     experiment seed and the trajectory index by a splitmix64 hash, so
 *     the random numbers a trajectory sees never depend on scheduling;
 *   - per-trajectory results land in an indexed slot and are reduced
 *     sequentially afterwards, so floating-point summation order is
 *     fixed regardless of thread count (including 1).
 *
 * Trajectories are one of three orthogonal parallel axes. The second —
 * state-parallel kernel sweeps, where one statevector's amplitude
 * groups are partitioned over a pool (engine.hh) — is configured by
 * ExecOptions. The third packs several trajectories into one SoA batch
 * (batch_state.hh) so SIMD lanes run across trajectories; planBatch
 * combines all three: small registers go trajectory-parallel with
 * SoA-batched lanes per slot, very wide registers state-parallel, and
 * the band in between hybrid (a few concurrent trajectories, each
 * sweeping with its own slice of the thread budget). Every combination
 * is bit-for-bit identical to the serial run.
 */

#ifndef CRISC_SIM_BATCH_HH
#define CRISC_SIM_BATCH_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "linalg/random.hh"

namespace crisc {
namespace sim {

/**
 * Derives an independent RNG stream seed from a base seed and a stream
 * index (splitmix64 of the combined word). Distinct (base, stream)
 * pairs give statistically independent mt19937_64 seeds.
 */
std::uint64_t streamSeed(std::uint64_t base, std::uint64_t stream);

/** Resolves a requested thread count: 0 means hardware concurrency
 *  (at least 1), anything else is returned unchanged. */
std::size_t resolveThreads(std::size_t requested);

/**
 * A pool of persistent worker threads executing indexed task batches.
 * The calling thread participates in the batch, so a pool of size 1
 * runs everything inline with no synchronization surprises.
 */
class ThreadPool
{
  public:
    /** @param num_threads worker count; 0 means hardware concurrency. */
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads that execute a batch (workers + caller). */
    std::size_t size() const { return nThreads_; }

    /**
     * Runs fn(0) .. fn(count - 1), distributing indices over the pool.
     * Blocks until every index has completed. If fn throws, the first
     * exception is captured, indices not yet started are skipped, the
     * batch drains (no worker is left inside fn), and the exception is
     * rethrown here on the calling thread; the pool stays serviceable
     * for subsequent batches.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();
    void runIndex(const std::function<void(std::size_t)> &fn,
                  std::size_t index);

    std::size_t nThreads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;
    bool stopping_ = false;
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t jobCount_ = 0;
    std::atomic<std::size_t> next_{0};
    std::size_t remaining_ = 0;
    std::size_t activeWorkers_ = 0;
    std::atomic<bool> errored_{false};
    std::exception_ptr error_; ///< first task exception; under mutex_.
};

/**
 * Options for state-parallel kernel sweep execution (engine.hh): how
 * one statevector's amplitude-group axis is partitioned over threads.
 * Defaults mean serial sweeps.
 *
 * The SIMD backend the sweeps run on is deliberately NOT an option
 * here: it is process-global, resolved once from the
 * CRISC_SIMD_DISPATCH environment variable or the CPU probe
 * (sim/dispatch.hh), never per plan or per call — a per-plan backend
 * would break the bit-identity story for batched Pauli noise, whose
 * negation flavour must match the serial kernels of the same backend.
 */
struct ExecOptions
{
    /**
     * Sweep worker threads; 1 = serial, 0 = hardware concurrency. Used
     * by Plan execution to size a transient pool when no pool is given;
     * ignored when pool is set (the pool's size wins).
     */
    std::size_t threads = 1;
    /**
     * Amplitude groups (pairs / quads / dense tuples) per parallel
     * task; 0 = auto (targets a few tasks per thread). Rounded up to a
     * cache-line- and SIMD-aligned granule; results are bit-identical
     * for every value.
     */
    std::size_t chunk = 0;
    /**
     * Pool to run sweeps on (not owned). Sweeps are parallel only when
     * this is set with size() > 1 — except in Plan-level execute(),
     * which creates a transient pool from `threads` when unset.
     */
    ThreadPool *pool = nullptr;
    /**
     * Cache-blocked plan execution (engine.hh executeBlocked): 0 =
     * auto (blocking turns on at sim::autoBlockQubits for registers of
     * at least sim::kAutoBlockFromWidth qubits, stays off below);
     * 1..n = force that block exponent (values above the register
     * width clamp to it — b == n is the degenerate single-block form).
     * Only Plan-level execution consults this; results are
     * bit-identical for every value.
     */
    std::size_t blockQubits = 0;
    /**
     * Sharded plan execution (sim/shard.hh): 0 = auto (the
     * CRISC_SHARDS environment variable when set, otherwise
     * unsharded), s >= 1 = split the register into 2^s shards
     * (clamped to the register width minus one). Only Plan-level
     * execution consults this; results are bit-identical for every
     * value.
     */
    std::size_t shardBits = 0;
};

/**
 * How a thread budget is split across the three parallel axes:
 * trajWorkers concurrent trajectory slots, each sweeping its state
 * with stateThreads workers and packing soaLanes trajectories into one
 * SoA batch (batch_state.hh) so SIMD lanes run across trajectories.
 */
struct BatchPlan
{
    std::size_t trajWorkers = 1;
    std::size_t stateThreads = 1;
    std::size_t soaLanes = 1;
    /**
     * Cache-blocked execution choice for Plan-level sweeps (engine.hh):
     * 0 = off (the register fits cache levels where per-op sweeps are
     * cheap), else the block exponent to pass as
     * ExecOptions::blockQubits. On when width >= kAutoBlockFromWidth.
     */
    std::size_t blockQubits = 0;
    /**
     * Shard split to pass as ExecOptions::shardBits. The heuristic
     * always picks 0: every in-process shard shares one memory
     * system, so splitting buys nothing until an out-of-process
     * Transport exists — sharding stays opt-in via CRISC_SHARDS or
     * QvConfig::shardBits.
     */
    std::size_t shardBits = 0;
};

/**
 * Width heuristic choosing trajectory-parallel vs. state-parallel vs.
 * hybrid execution for @p count trajectories of a @p width qubit
 * register, given @p total_threads workers. Narrow registers
 * (< 18 qubits) go trajectory-parallel (sweeps are too short to
 * amortize the fork/join) with soaLanes set to the SIMD lane count —
 * per-state vectors starve at short strides there, so the lanes run
 * across trajectories instead; very wide ones (>= 26 qubits, ~GiB
 * statevectors) go fully state-parallel, and the band in between
 * hybrid: concurrent statevectors are capped by a per-width memory
 * budget of 2^(26 - width), and the split maximizes used threads, so
 * spare budget moves to the sweep axis when trajectories are scarce.
 * Registers of at least kAutoBlockFromWidth (~24) qubits additionally
 * get cache-blocked plan execution (BatchPlan::blockQubits set to the
 * autoBlockQubits exponent, 0 below — see sim/cache.hh), since their
 * statevectors fall out of the LLC and per-op sweeps go
 * bandwidth-bound. The choice never affects results, only scheduling.
 * @throws std::invalid_argument when width == 0 or total_threads == 0
 *         (resolve a hardware default with resolveThreads() first).
 */
BatchPlan planBatch(std::size_t total_threads, std::size_t width,
                    std::size_t count);

/**
 * Trajectory batch driver owning both parallel axes: a trajectory pool
 * of trajWorkers slots and, when stateThreads > 1, one sweep pool per
 * slot, leased to the running trajectory through the ExecOptions its
 * body receives. Results are index-ordered and bit-for-bit identical
 * for every (trajWorkers, stateThreads) combination.
 */
class TrajectoryRunner
{
  public:
    /** Body form receiving sweep-execution options for this slot. */
    using Body =
        std::function<double(std::size_t, linalg::Rng &, const ExecOptions &)>;

    /**
     * @param traj_workers concurrent trajectories (0 = hardware).
     * @param state_threads sweep workers per trajectory (0 or 1 =
     *        serial sweeps).
     */
    explicit TrajectoryRunner(std::size_t traj_workers,
                              std::size_t state_threads = 1);

    std::size_t trajWorkers() const { return trajPool_.size(); }
    std::size_t stateThreads() const { return stateThreads_; }

    /**
     * Body form for SoA-batched tiles: runs trajectories
     * [first, first + lanes), with rngs[l] the stream RNG of
     * trajectory first + l (seeded streamSeed(base_seed, first + l),
     * exactly as the per-trajectory Body sees), and writes each
     * trajectory's result to out[l].
     */
    using BatchBody =
        std::function<void(std::size_t first, std::size_t lanes,
                           linalg::Rng *rngs, const ExecOptions &,
                           double *out)>;

    /** runTrajectories over both axes; same determinism contract. */
    std::vector<double> run(std::size_t count, std::uint64_t base_seed,
                            const Body &body);

    /** run followed by a fixed-order sum. */
    double sum(std::size_t count, std::uint64_t base_seed,
               const Body &body);

    /**
     * Like run, but dispatches trajectories in tiles of up to
     * @p lanes — the SoA batch width the body packs into one
     * BatchState. The final tile carries count % lanes trajectories
     * when count is not a multiple. RNG streams and the result order
     * match run() exactly, so a body that executes each lane's
     * trajectory faithfully is bit-identical to the unbatched path.
     * @throws std::invalid_argument when lanes == 0.
     */
    std::vector<double> runBatched(std::size_t count,
                                   std::uint64_t base_seed,
                                   std::size_t lanes,
                                   const BatchBody &body);

    /** runBatched followed by a fixed-order sum. */
    double sumBatched(std::size_t count, std::uint64_t base_seed,
                      std::size_t lanes, const BatchBody &body);

  private:
    ThreadPool *acquireStatePool();
    void releaseStatePool(ThreadPool *pool);

    ThreadPool trajPool_;
    std::size_t stateThreads_;
    std::vector<std::unique_ptr<ThreadPool>> statePools_;
    std::mutex poolMutex_;
    std::condition_variable poolAvailable_;
    std::vector<ThreadPool *> freePools_;
};

/**
 * Runs @p count trajectories and returns the per-trajectory results in
 * index order. Each trajectory t receives a fresh Rng seeded with
 * streamSeed(base_seed, t). Deterministic for fixed (count, base_seed)
 * regardless of the pool's thread count. count == 0 is a well-defined
 * no-op: it returns an empty vector without dispatching to the pool
 * and never invokes @p body.
 */
std::vector<double>
runTrajectories(ThreadPool &pool, std::size_t count, std::uint64_t base_seed,
                const std::function<double(std::size_t, linalg::Rng &)> &body);

/** runTrajectories followed by a fixed-order sum. */
double
sumTrajectories(ThreadPool &pool, std::size_t count, std::uint64_t base_seed,
                const std::function<double(std::size_t, linalg::Rng &)> &body);

} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_BATCH_HH

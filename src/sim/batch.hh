/**
 * @file
 * Parallel trajectory batching. The heavy workloads (quantum volume,
 * noise studies) are embarrassingly parallel across noise trajectories
 * and random circuits; this module fans that axis out over a pool of
 * std::thread workers while keeping results bit-for-bit deterministic:
 *
 *   - every trajectory draws from its own RNG stream, derived from the
 *     experiment seed and the trajectory index by a splitmix64 hash, so
 *     the random numbers a trajectory sees never depend on scheduling;
 *   - per-trajectory results land in an indexed slot and are reduced
 *     sequentially afterwards, so floating-point summation order is
 *     fixed regardless of thread count (including 1).
 */

#ifndef CRISC_SIM_BATCH_HH
#define CRISC_SIM_BATCH_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "linalg/random.hh"

namespace crisc {
namespace sim {

/**
 * Derives an independent RNG stream seed from a base seed and a stream
 * index (splitmix64 of the combined word). Distinct (base, stream)
 * pairs give statistically independent mt19937_64 seeds.
 */
std::uint64_t streamSeed(std::uint64_t base, std::uint64_t stream);

/**
 * A pool of persistent worker threads executing indexed task batches.
 * The calling thread participates in the batch, so a pool of size 1
 * runs everything inline with no synchronization surprises.
 */
class ThreadPool
{
  public:
    /** @param num_threads worker count; 0 means hardware concurrency. */
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads that execute a batch (workers + caller). */
    std::size_t size() const { return nThreads_; }

    /**
     * Runs fn(0) .. fn(count - 1), distributing indices over the pool.
     * Blocks until every index has completed. fn must not throw.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    std::size_t nThreads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;
    bool stopping_ = false;
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t jobCount_ = 0;
    std::atomic<std::size_t> next_{0};
    std::size_t remaining_ = 0;
    std::size_t activeWorkers_ = 0;
};

/**
 * Runs @p count trajectories and returns the per-trajectory results in
 * index order. Each trajectory t receives a fresh Rng seeded with
 * streamSeed(base_seed, t). Deterministic for fixed (count, base_seed)
 * regardless of the pool's thread count. count == 0 is a well-defined
 * no-op: it returns an empty vector without dispatching to the pool
 * and never invokes @p body.
 */
std::vector<double>
runTrajectories(ThreadPool &pool, std::size_t count, std::uint64_t base_seed,
                const std::function<double(std::size_t, linalg::Rng &)> &body);

/** runTrajectories followed by a fixed-order sum. */
double
sumTrajectories(ThreadPool &pool, std::size_t count, std::uint64_t base_seed,
                const std::function<double(std::size_t, linalg::Rng &)> &body);

} // namespace sim
} // namespace crisc

#endif // CRISC_SIM_BATCH_HH

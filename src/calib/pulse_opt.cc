#include "pulse_opt.hh"

#include <cmath>

#include "model.hh"

namespace crisc {
namespace calib {

using linalg::Matrix;

Matrix
distortedEvolve(const GateParams &params, EnvelopeShape shape, double rise,
                int steps)
{
    const auto h = pulsedHamiltonian(params.h, params.omega1, params.omega2,
                                     params.delta, shape, params.tau, rise);
    return evolveTimeDependent(h, params.tau, steps);
}

PulseOptResult
optimizePulse(const WeylPoint &target, double h, double r,
              EnvelopeShape shape, double rise)
{
    const WeylPoint want = weyl::canonicalizePoint(target);
    const GateParams seed = ashn::synthesize(want, h, r);

    auto coordError = [&](const GateParams &p) {
        const Matrix u = distortedEvolve(p, shape, rise);
        return weyl::pointDistance(weyl::weylCoordinates(u), want);
    };

    PulseOptResult out;
    out.errorBefore = coordError(seed);

    // Optimize (tau, Omega1, Omega2, delta) around the seed. The ramps
    // steal pulse area, so the optimum typically stretches tau slightly
    // and rebalances the drives.
    auto objective = [&](const std::vector<double> &x) {
        if (x[0] < rise * 2.0 || x[0] > seed.tau + M_PI)
            return 10.0; // pulse must at least fit its ramps
        GateParams p = seed;
        p.tau = x[0];
        p.omega1 = x[1];
        p.omega2 = x[2];
        p.delta = x[3];
        return coordError(p);
    };
    int evals = 0;
    const std::vector<double> best = nelderMead(
        objective, {seed.tau, seed.omega1, seed.omega2, seed.delta}, 0.05,
        600, 1e-12, &evals);

    out.params = seed;
    out.params.tau = best[0];
    out.params.omega1 = best[1];
    out.params.omega2 = best[2];
    out.params.delta = best[3];
    out.errorAfter = coordError(out.params);
    out.evaluations = evals;
    out.realized = distortedEvolve(out.params, shape, rise);
    return out;
}

} // namespace calib
} // namespace crisc

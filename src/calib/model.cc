#include "model.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cartan.hh"

namespace crisc {
namespace calib {

Matrix
hardwareRealize(const GateParams &params, const ControlModel &truth)
{
    return ashn::evolve(params.tau, params.h,
                        truth.gainOmega1 * params.omega1,
                        truth.gainOmega2 * params.omega2,
                        truth.gainDelta * params.delta);
}

double
modelObjective(const ControlModel &assumed, const ControlModel &truth,
               const std::vector<WeylPoint> &probes, double h, double r)
{
    double total = 0.0;
    for (const WeylPoint &target : probes) {
        GateParams p = ashn::synthesize(target, h, r);
        // Pre-compensate with the assumed gains.
        p.omega1 /= assumed.gainOmega1;
        p.omega2 /= assumed.gainOmega2;
        p.delta /= assumed.gainDelta;
        const Matrix realized = hardwareRealize(p, truth);
        const WeylPoint measured =
            coordinatesFromCartanDouble(realized, &target);
        total += weyl::pointDistance(measured,
                                     weyl::canonicalizePoint(target));
    }
    return total / static_cast<double>(probes.size());
}

CalibrationResult
calibrateInstructionSet(const ControlModel &truth,
                        const std::vector<WeylPoint> &probes, double h,
                        double r)
{
    CalibrationResult out;
    const ControlModel unit;
    out.objectiveBefore = modelObjective(unit, truth, probes, h, r);

    auto f = [&](const std::vector<double> &x) {
        if (x[0] < 0.05 || x[1] < 0.05 || x[2] < 0.05)
            return 10.0; // keep the simplex away from degenerate gains
        return modelObjective({x[0], x[1], x[2]}, truth, probes, h, r);
    };
    int evals = 0;
    const std::vector<double> best =
        nelderMead(f, {1.0, 1.0, 1.0}, 0.08, 400, 1e-10, &evals);
    out.fitted = {best[0], best[1], best[2]};
    out.objectiveAfter = modelObjective(out.fitted, truth, probes, h, r);
    out.evaluations = evals;
    return out;
}

std::vector<double>
nelderMead(const std::function<double(const std::vector<double> &)> &f,
           std::vector<double> start, double step, int max_evals, double tol,
           int *evals_out)
{
    const std::size_t n = start.size();
    struct Vertex
    {
        std::vector<double> x;
        double v;
    };
    int evals = 0;
    auto eval = [&](const std::vector<double> &x) {
        ++evals;
        return f(x);
    };

    std::vector<Vertex> simplex;
    simplex.push_back({start, eval(start)});
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> x = start;
        x[i] += step;
        simplex.push_back({x, eval(x)});
    }
    auto bySorted = [&] {
        std::sort(simplex.begin(), simplex.end(),
                  [](const Vertex &a, const Vertex &b) { return a.v < b.v; });
    };
    bySorted();

    while (evals < max_evals && simplex.back().v - simplex.front().v > tol) {
        // Centroid of all but the worst vertex.
        std::vector<double> centroid(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t k = 0; k < n; ++k)
                centroid[k] += simplex[i].x[k];
        }
        for (auto &c : centroid)
            c /= static_cast<double>(n);

        auto blend = [&](double coef) {
            std::vector<double> x(n);
            for (std::size_t k = 0; k < n; ++k)
                x[k] = centroid[k] + coef * (simplex.back().x[k] - centroid[k]);
            return x;
        };

        const std::vector<double> xr = blend(-1.0);
        const double vr = eval(xr);
        if (vr < simplex.front().v) {
            const std::vector<double> xe = blend(-2.0);
            const double ve = eval(xe);
            simplex.back() = ve < vr ? Vertex{xe, ve} : Vertex{xr, vr};
        } else if (vr < simplex[n - 1].v) {
            simplex.back() = {xr, vr};
        } else {
            const std::vector<double> xc = blend(0.5);
            const double vc = eval(xc);
            if (vc < simplex.back().v) {
                simplex.back() = {xc, vc};
            } else {
                // Shrink toward the best vertex.
                for (std::size_t i = 1; i <= n; ++i) {
                    for (std::size_t k = 0; k < n; ++k) {
                        simplex[i].x[k] = 0.5 * (simplex[i].x[k] +
                                                 simplex[0].x[k]);
                    }
                    simplex[i].v = eval(simplex[i].x);
                }
            }
        }
        bySorted();
    }
    if (evals_out != nullptr)
        *evals_out = evals;
    return simplex.front().x;
}

} // namespace calib
} // namespace crisc

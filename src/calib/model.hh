/**
 * @file
 * Instruction-set calibration (paper Sec. 5.2): instead of calibrating
 * each of the continuum of AshN gates individually, fit a small control
 * model (here: per-channel transfer gains) that maps ideal gate
 * parameters to control parameters, using a coordinate-error objective
 * measured through the Cartan double — the simulated counterpart of the
 * paper's FRB-driven black-box model fit.
 */

#ifndef CRISC_CALIB_MODEL_HH
#define CRISC_CALIB_MODEL_HH

#include <functional>
#include <vector>

#include "ashn/scheme.hh"
#include "linalg/random.hh"

namespace crisc {
namespace calib {

using ashn::GateParams;
using linalg::Matrix;
using weyl::WeylPoint;

/**
 * Linear transfer model of the control electronics: the hardware
 * applies gain * requested on each drive channel. Ideal hardware has
 * all gains equal to one.
 */
struct ControlModel
{
    double gainOmega1 = 1.0;
    double gainOmega2 = 1.0;
    double gainDelta = 1.0;
};

/**
 * "Hardware" evolution: the pulse requested by @p params passes through
 * the (true, unknown to the user) transfer model before driving the
 * qubits.
 */
Matrix hardwareRealize(const GateParams &params, const ControlModel &truth);

/**
 * Mean chamber-coordinate error over probe targets when compiling with
 * an assumed model @p assumed against hardware @p truth: each probe is
 * synthesized with Algorithm 1, pre-compensated by the assumed gains,
 * executed through the truth model and measured via the Cartan double.
 */
double modelObjective(const ControlModel &assumed, const ControlModel &truth,
                      const std::vector<WeylPoint> &probes, double h,
                      double r);

/** Outcome of the instruction-set calibration loop. */
struct CalibrationResult
{
    ControlModel fitted;
    double objectiveBefore; ///< mean coordinate error with unit gains.
    double objectiveAfter;  ///< after the model fit.
    int evaluations;        ///< objective evaluations spent.
};

/**
 * Fits the control model by Nelder-Mead on the coordinate-error
 * objective. With a faithful model class the fitted gains converge to
 * the hardware's and the whole continuous gate set is calibrated at
 * once.
 */
CalibrationResult calibrateInstructionSet(const ControlModel &truth,
                                          const std::vector<WeylPoint> &probes,
                                          double h, double r);

/**
 * Generic Nelder-Mead minimizer (used by the calibration loop and
 * available to benchmarks).
 *
 * @return the best parameter vector found.
 */
std::vector<double>
nelderMead(const std::function<double(const std::vector<double> &)> &f,
           std::vector<double> start, double step, int max_evals,
           double tol, int *evals_out = nullptr);

} // namespace calib
} // namespace crisc

#endif // CRISC_CALIB_MODEL_HH

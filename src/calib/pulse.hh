/**
 * @file
 * Pulse envelopes and time-dependent Hamiltonian evolution. The AshN
 * analysis assumes perfect square pulses; real AWGs produce ramped
 * envelopes, making the Hamiltonian time dependent (paper Sec. 5). This
 * module provides the distorted-envelope simulator used to study and
 * calibrate that imperfection.
 */

#ifndef CRISC_CALIB_PULSE_HH
#define CRISC_CALIB_PULSE_HH

#include <functional>

#include "linalg/matrix.hh"

namespace crisc {
namespace calib {

using linalg::Matrix;

/** Envelope shapes for the drive amplitude. */
enum class EnvelopeShape
{
    Square,     ///< ideal instantaneous rise/fall.
    Trapezoid,  ///< linear ramps of the given rise time.
    CosineRamp, ///< raised-cosine ramps of the given rise time.
};

/**
 * Scalar envelope at time t in [0, duration]: the plateau value is 1 and
 * the ramps occupy [0, rise] and [duration - rise, duration].
 */
double envelope(EnvelopeShape shape, double t, double duration, double rise);

/**
 * Time-dependent AshN Hamiltonian whose drive terms (Omega1, Omega2,
 * delta) are modulated by a common envelope while the always-on coupling
 * g/2 (XX+YY) + h/2 ZZ stays constant.
 */
std::function<Matrix(double)>
pulsedHamiltonian(double h, double omega1, double omega2, double delta,
                  EnvelopeShape shape, double duration, double rise);

/**
 * Time-ordered propagator Texp(-i int_0^T H(t) dt) via the exponential
 * midpoint rule (second order, exactly unitary).
 */
Matrix evolveTimeDependent(const std::function<Matrix(double)> &h, double T,
                           int steps = 400);

} // namespace calib
} // namespace crisc

#endif // CRISC_CALIB_PULSE_HH

#include "frb.hh"

#include <cmath>
#include <stdexcept>

#include "ashn/scheme.hh"
#include "weyl/measure.hh"

namespace crisc {
namespace calib {

using linalg::Complex;
using linalg::CVector;
using linalg::Matrix;

namespace {

/** Applies a uniformly random non-identity two-qubit Pauli in place. */
void
applyRandomPauli(CVector &psi, linalg::Rng &rng)
{
    const std::size_t pick = 1 + rng.index(15);
    // Pauli string encoded base 4 over two qubits; build the 4x4 and
    // apply directly (the state is only 4-dimensional).
    static const Complex table[4][2][2] = {
        {{1, 0}, {0, 1}},                         // I
        {{0, 1}, {1, 0}},                         // X
        {{0, Complex{0, -1}}, {Complex{0, 1}, 0}}, // Y
        {{1, 0}, {0, -1}},                        // Z
    };
    const std::size_t p0 = pick / 4, p1 = pick % 4;
    CVector out(4, Complex{0.0, 0.0});
    for (std::size_t r0 = 0; r0 < 2; ++r0)
        for (std::size_t r1 = 0; r1 < 2; ++r1)
            for (std::size_t c0 = 0; c0 < 2; ++c0)
                for (std::size_t c1 = 0; c1 < 2; ++c1) {
                    const Complex amp =
                        table[p0][r0][c0] * table[p1][r1][c1];
                    if (amp != Complex{0.0, 0.0})
                        out[2 * r0 + r1] += amp * psi[2 * c0 + c1];
                }
    psi = out;
}

} // namespace

FrbResult
runFrb(const FrbNoise &noise, const std::vector<int> &lengths, int sequences,
       double r, linalg::Rng &rng)
{
    if (lengths.empty() || sequences <= 0)
        throw std::invalid_argument("runFrb: empty experiment");

    FrbResult out;
    for (const int m : lengths) {
        double survival = 0.0;
        for (int seq = 0; seq < sequences; ++seq) {
            CVector psi{1.0, 0.0, 0.0, 0.0};
            Matrix idealTotal = Matrix::identity(4);
            for (int g = 0; g < m; ++g) {
                const weyl::WeylPoint p = weyl::sampleChamber(rng);
                const ashn::GateParams params = ashn::synthesize(p, 0.0, r);
                idealTotal = ashn::realize(params) * idealTotal;
                // Executed pulse passes through the transfer model.
                const Matrix executed =
                    hardwareRealize(params, noise.transfer);
                psi = executed * psi;
                const double pDep =
                    noise.depolarizingPerTime * params.tau;
                if (pDep > 0.0 && rng.uniform() < pDep)
                    applyRandomPauli(psi, rng);
            }
            // Perfect inversion of the ideal sequence.
            psi = idealTotal.dagger() * psi;
            survival += std::norm(psi[0]);
        }
        out.decay.push_back({m, survival / sequences});
    }

    // Fit survival = A p^m + 1/4 by linear regression on
    // log(survival - 1/4).
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    int pts = 0;
    for (const FrbPoint &pt : out.decay) {
        const double excess = pt.survival - 0.25;
        if (excess <= 1e-6)
            continue;
        const double y = std::log(excess);
        sx += pt.length;
        sy += y;
        sxx += static_cast<double>(pt.length) * pt.length;
        sxy += pt.length * y;
        ++pts;
    }
    if (pts >= 2) {
        const double slope =
            (pts * sxy - sx * sy) / (pts * sxx - sx * sx);
        out.fittedDecayRate = std::exp(slope);
    } else {
        out.fittedDecayRate = 1.0;
    }
    // Standard RB relation for dimension d = 4:
    // F_avg = 1 - (1 - p)(d - 1)/d.
    out.averageGateFidelity =
        1.0 - (1.0 - out.fittedDecayRate) * 3.0 / 4.0;
    return out;
}

} // namespace calib
} // namespace crisc

#include "pulse.hh"

#include <cmath>
#include <stdexcept>

#include "ashn/hamiltonian.hh"
#include "linalg/expm.hh"

namespace crisc {
namespace calib {

double
envelope(EnvelopeShape shape, double t, double duration, double rise)
{
    if (t < 0.0 || t > duration)
        return 0.0;
    if (shape == EnvelopeShape::Square || rise <= 0.0)
        return 1.0;
    const double from_end = duration - t;
    if (t >= rise && from_end >= rise)
        return 1.0;
    const double edge = std::min(t, from_end);
    if (shape == EnvelopeShape::Trapezoid)
        return edge / rise;
    // Raised-cosine ramp.
    return 0.5 * (1.0 - std::cos(M_PI * edge / rise));
}

std::function<Matrix(double)>
pulsedHamiltonian(double h, double omega1, double omega2, double delta,
                  EnvelopeShape shape, double duration, double rise)
{
    return [=](double t) {
        const double a = envelope(shape, t, duration, rise);
        return ashn::hamiltonian(h, a * omega1, a * omega2, a * delta);
    };
}

Matrix
evolveTimeDependent(const std::function<Matrix(double)> &h, double T,
                    int steps)
{
    if (steps <= 0)
        throw std::invalid_argument("evolveTimeDependent: steps <= 0");
    const double dt = T / steps;
    Matrix u = Matrix::identity(h(0.0).rows());
    for (int k = 0; k < steps; ++k) {
        const double tm = (k + 0.5) * dt;
        u = linalg::propagator(h(tm), dt) * u;
    }
    return u;
}

} // namespace calib
} // namespace crisc

/**
 * @file
 * Pulse-level recalibration under envelope distortion. The AshN
 * analysis assumes square pulses; footnote 4 of the paper asserts that
 * ramped (trapezoid / raised-cosine) envelopes "can be addressed with
 * proper calibration" without proof. This module demonstrates it: the
 * four control parameters (tau, Omega1, Omega2, delta) are re-optimized
 * against the time-dependent evolution so the distorted pulse hits the
 * target chamber point anyway.
 */

#ifndef CRISC_CALIB_PULSE_OPT_HH
#define CRISC_CALIB_PULSE_OPT_HH

#include "ashn/scheme.hh"
#include "pulse.hh"
#include "weyl/weyl.hh"

namespace crisc {
namespace calib {

using ashn::GateParams;
using weyl::WeylPoint;

/** Outcome of a pulse recalibration. */
struct PulseOptResult
{
    GateParams params;        ///< recalibrated control parameters.
    double errorBefore;       ///< coordinate error of the naive pulse.
    double errorAfter;        ///< after recalibration.
    int evaluations;          ///< objective evaluations spent.

    /** The distorted-envelope unitary realized by @c params. */
    linalg::Matrix realized;
};

/**
 * The unitary produced by playing @p params through a distorted
 * envelope of the given shape and rise time (all drives share the
 * envelope; the coupling stays always-on).
 */
linalg::Matrix distortedEvolve(const GateParams &params, EnvelopeShape shape,
                               double rise, int steps = 400);

/**
 * Recalibrates (tau, Omega1, Omega2, delta) by Nelder-Mead on the
 * chamber-coordinate error of the distorted evolution, seeded at the
 * ideal square-pulse solution from Algorithm 1.
 *
 * @param target chamber point to realize.
 * @param h ZZ coupling ratio.
 * @param r AshN cutoff for the seed solution.
 * @param shape envelope shape the hardware actually produces.
 * @param rise ramp duration (same units as tau, i.e. 1/g).
 */
PulseOptResult optimizePulse(const WeylPoint &target, double h, double r,
                             EnvelopeShape shape, double rise);

} // namespace calib
} // namespace crisc

#endif // CRISC_CALIB_PULSE_OPT_HH

/**
 * @file
 * Fully-randomized-benchmarking-style average-fidelity estimation for
 * the continuous AshN gate set (paper Sec. 5.2 / Sec. 7). Random
 * sequences of Haar-class gates are executed through a noisy channel
 * (depolarizing strength proportional to each pulse's gate time, plus
 * optional coherent control error) and inverted exactly; the survival
 * probability decays exponentially with sequence length and the fitted
 * decay gives the average gate fidelity of the instruction set as a
 * whole — the objective the paper proposes for black-box calibration.
 */

#ifndef CRISC_CALIB_FRB_HH
#define CRISC_CALIB_FRB_HH

#include <functional>

#include "linalg/random.hh"
#include "model.hh"

namespace crisc {
namespace calib {

/** Noise model applied around every executed AshN pulse. */
struct FrbNoise
{
    /** Two-qubit depolarizing probability per unit gate time (1/g). */
    double depolarizingPerTime = 0.0;
    /** Control transfer model (identity gains = no coherent error). */
    ControlModel transfer;
};

/** One decay point of an FRB experiment. */
struct FrbPoint
{
    int length;        ///< number of random gates in the sequence.
    double survival;   ///< mean ground-state return probability.
};

/** Result of an FRB run. */
struct FrbResult
{
    std::vector<FrbPoint> decay;
    double fittedDecayRate;     ///< p in survival ~ A p^m + B.
    double averageGateFidelity; ///< from p: F = p + (1-p) / d^2... see .cc
};

/**
 * Runs the FRB experiment: for each sequence length m, executes
 * @p sequences random Weyl-chamber gates (each realized by the AshN
 * scheme under cutoff r, passed through the noise model), appends the
 * exact inverse of the accumulated ideal unitary, and records the
 * return probability to |00>.
 */
FrbResult runFrb(const FrbNoise &noise, const std::vector<int> &lengths,
                 int sequences, double r, linalg::Rng &rng);

} // namespace calib
} // namespace crisc

#endif // CRISC_CALIB_FRB_HH

#include "cartan.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/decomp.hh"
#include "qop/gates.hh"

namespace crisc {
namespace calib {

namespace {

double
wrapToPi(double a)
{
    while (a > M_PI)
        a -= 2.0 * M_PI;
    while (a <= -M_PI)
        a += 2.0 * M_PI;
    return a;
}

/** Sorted (wrapped) eigenphase multiset of exp(2i eta.Sigma). */
std::array<double, 4>
doubledSpectrum(const WeylPoint &p)
{
    std::array<double, 4> s{wrapToPi(2.0 * (p.x - p.y + p.z)),
                            wrapToPi(2.0 * (p.x + p.y - p.z)),
                            wrapToPi(2.0 * (-p.x - p.y - p.z)),
                            wrapToPi(2.0 * (-p.x + p.y + p.z))};
    std::sort(s.begin(), s.end());
    return s;
}

/** Circular distance between sorted phase multisets. */
double
spectrumDistance(const std::array<double, 4> &a,
                 const std::array<double, 4> &b)
{
    double m = 0.0;
    for (int i = 0; i < 4; ++i)
        m = std::max(m, std::abs(wrapToPi(a[i] - b[i])));
    return m;
}

/**
 * Reconstructs the canonical chamber point from the four measured
 * eigenphases of gamma(U). The eigenvalue-to-branch assignment and the
 * mod-pi ambiguity of each half-phase are resolved by brute force,
 * keeping the candidate whose doubled spectrum best reproduces the
 * measurement.
 */
WeylPoint
coordinatesFromPhases(const std::array<double, 4> &raw_phases,
                      const WeylPoint *hint)
{
    // gamma(e^{i t} U) = e^{2 i t} gamma(U): the measured phases carry
    // an unknown global offset (det(U)^2), removed here by scanning the
    // pi/4 grid of candidate offsets around the mean phase.
    const double base = (raw_phases[0] + raw_phases[1] + raw_phases[2] +
                         raw_phases[3]) /
                        4.0;
    struct Candidate
    {
        double err;
        WeylPoint p;
    };
    std::vector<Candidate> candidates;
    double best = 1e300;
    WeylPoint bestPoint;
    for (int m = 0; m < 8; ++m) {
        const double shift = base + m * M_PI / 4.0;
        std::array<double, 4> phases;
        for (int i = 0; i < 4; ++i)
            phases[i] = wrapToPi(raw_phases[i] - shift);
        std::array<double, 4> target = phases;
        std::sort(target.begin(), target.end());

        std::array<int, 4> perm{0, 1, 2, 3};
        do {
            for (int branch = 0; branch < 16; ++branch) {
                std::array<double, 4> lam;
                for (int i = 0; i < 4; ++i) {
                    lam[i] = phases[perm[i]] / 2.0 +
                             (((branch >> i) & 1) ? M_PI : 0.0);
                }
                const WeylPoint raw{(lam[0] + lam[1]) / 2.0,
                                    (lam[1] + lam[3]) / 2.0,
                                    (lam[0] + lam[3]) / 2.0};
                const WeylPoint p = weyl::canonicalizePoint(raw);
                const double err =
                    spectrumDistance(doubledSpectrum(p), target);
                if (err < best) {
                    best = err;
                    bestPoint = p;
                }
                if (err < 1e-5)
                    candidates.push_back({err, p});
            }
        } while (std::next_permutation(perm.begin(), perm.end()));
    }
    // Among the (possibly several) valid square roots, prefer the one
    // closest to the calibration target.
    if (hint != nullptr && !candidates.empty()) {
        const WeylPoint want = weyl::canonicalizePoint(*hint);
        double bestDist = 1e300;
        for (const Candidate &c : candidates) {
            const double d = weyl::pointDistance(c.p, want);
            if (d < bestDist) {
                bestDist = d;
                bestPoint = c.p;
            }
        }
    }
    return bestPoint;
}

/**
 * Finite-shot estimate of an eigenphase via robust (power-doubling)
 * phase estimation: at each power 2^k the angle of gamma^{2^k} is read
 * out from two quadrature measurements and used to refine the estimate.
 */
double
estimatePhase(double phi, int bits, int shots, linalg::Rng &rng)
{
    auto measureAngle = [&](double power_phase) {
        int n0 = 0, n1 = 0;
        const double p_cos = 0.5 * (1.0 + std::cos(power_phase));
        const double p_sin = 0.5 * (1.0 + std::sin(power_phase));
        for (int s = 0; s < shots; ++s) {
            if (rng.uniform() < p_cos)
                ++n0;
            if (rng.uniform() < p_sin)
                ++n1;
        }
        const double c = 2.0 * n0 / shots - 1.0;
        const double s = 2.0 * n1 / shots - 1.0;
        return std::atan2(s, c);
    };

    double est = measureAngle(phi);
    for (int k = 1; k < bits; ++k) {
        const double power = std::ldexp(1.0, k);
        const double measured = measureAngle(power * phi);
        const double predicted = power * est;
        est += wrapToPi(measured - predicted) / power;
    }
    return wrapToPi(est);
}

} // namespace

Matrix
cartanDouble(const Matrix &u)
{
    return u * thetaInverse(u);
}

Matrix
thetaInverse(const Matrix &u)
{
    return qop::pauliYY() * u.transpose() * qop::pauliYY();
}

WeylPoint
coordinatesFromCartanDouble(const Matrix &u, const WeylPoint *hint)
{
    const linalg::ComplexEigenSystem es = linalg::eigNormal(cartanDouble(u));
    std::array<double, 4> phases;
    for (int i = 0; i < 4; ++i)
        phases[i] = std::arg(es.values[i]);
    return coordinatesFromPhases(phases, hint);
}

WeylPoint
estimateCoordinates(const Matrix &u, int bits, int shots, linalg::Rng &rng,
                    const WeylPoint *hint)
{
    const linalg::ComplexEigenSystem es = linalg::eigNormal(cartanDouble(u));
    std::array<double, 4> phases;
    for (int i = 0; i < 4; ++i)
        phases[i] = estimatePhase(std::arg(es.values[i]), bits, shots, rng);
    return coordinatesFromPhases(phases, hint);
}

} // namespace calib
} // namespace crisc

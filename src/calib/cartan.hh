/**
 * @file
 * Interaction-coefficient calibration via the Cartan double (paper
 * Sec. 5.1): gamma(U) = U . YY . U^T . YY has spectrum exp(2i eta.Sigma)
 * up to local conjugation, so the Weyl chamber point of U reduces to
 * phase estimation on gamma(U) — without ever learning the single-qubit
 * corrections.
 */

#ifndef CRISC_CALIB_CARTAN_HH
#define CRISC_CALIB_CARTAN_HH

#include "linalg/random.hh"
#include "weyl/weyl.hh"

namespace crisc {
namespace calib {

using linalg::Matrix;
using weyl::WeylPoint;

/** The Cartan double gamma(U) = U . YY . U^T . YY. */
Matrix cartanDouble(const Matrix &u);

/** Theta^{-1}(U) = YY U^T YY, so that gamma(U) = U Theta^{-1}(U). */
Matrix thetaInverse(const Matrix &u);

/**
 * Exact interaction coefficients recovered from the Cartan double's
 * eigenphases (divided by two and canonicalized). gamma(U) only
 * determines exp(2i eta.Sigma), whose square root is ambiguous in
 * general; pass the intended chamber point as @p hint (as a real
 * calibration would) to disambiguate. Without a hint, some valid square
 * root is returned.
 */
WeylPoint coordinatesFromCartanDouble(const Matrix &u,
                                      const WeylPoint *hint = nullptr);

/**
 * Simulated phase-estimation readout: estimates the eigenphases of
 * gamma(U) from finite-shot measurement statistics (iterative phase
 * estimation on each eigenvector: at precision bit k the circuit
 * measures the phase of gamma^(2^k)), then reconstructs the chamber
 * point. Statistical noise scales as 1/sqrt(shots).
 *
 * @param u two-qubit unitary under calibration.
 * @param bits phase bits (precision 2^-bits turns).
 * @param shots measurement shots per bit.
 */
WeylPoint estimateCoordinates(const Matrix &u, int bits, int shots,
                              linalg::Rng &rng,
                              const WeylPoint *hint = nullptr);

} // namespace calib
} // namespace crisc

#endif // CRISC_CALIB_CARTAN_HH

/**
 * @file
 * The AshN gate scheme (paper Sec. 4.2, Algorithms 1-5): maps any Weyl
 * chamber point, under any ZZ coupling ratio |h| <= 1, to square-pulse
 * control parameters (tau, Omega1, Omega2, delta) whose Hamiltonian
 * evolution realizes the point up to single-qubit gates — in optimal
 * time when the cutoff r is 0, and with bounded drive strength when
 * r > 0 (AshN-ND-EXT takes over near the identity).
 */

#ifndef CRISC_ASHN_SCHEME_HH
#define CRISC_ASHN_SCHEME_HH

#include <string>

#include "hamiltonian.hh"
#include "weyl/weyl.hh"

namespace crisc {
namespace ashn {

using weyl::WeylPoint;

/** Which of the four sub-schemes produced a parameter set. */
enum class SubScheme
{
    Identity, ///< tau = 0; nothing to do.
    ND,       ///< no detuning (Algorithm 2).
    NDExt,    ///< no detuning, extended time (Algorithm 3).
    EAPlus,   ///< equal amplitude (Algorithm 4).
    EAMinus,  ///< equal amplitude, mirrored (Algorithm 5).
};

/** Human-readable sub-scheme name. */
std::string subSchemeName(SubScheme s);

/** Control parameters for one AshN gate, normalized to g = 1. */
struct GateParams
{
    SubScheme scheme = SubScheme::Identity;
    double tau = 0.0;    ///< gate time, units of 1/g.
    double omega1 = 0.0; ///< symmetric drive, units of g.
    double omega2 = 0.0; ///< antisymmetric drive, units of g.
    double delta = 0.0;  ///< half detuning, units of g.
    double h = 0.0;      ///< ZZ ratio the parameters were derived for.

    /** Drive amplitude A1 (Eq. 4.2), units of g. */
    double a1() const { return driveA1(omega1, omega2); }
    /** Drive amplitude A2 (Eq. 4.2), units of g. */
    double a2() const { return driveA2(omega1, omega2); }
    /** max{|A1|/2, |A2|/2, |delta|}, the quantity bounded by Eq. 4.4. */
    double maxDrive() const;
};

/** The two-qubit unitary realized by evolving with @p p for p.tau. */
Matrix realize(const GateParams &p);

/**
 * Full AshN scheme (Algorithm 1): pick the sub-scheme and parameters for
 * a target chamber point.
 *
 * @param target interaction coefficients (canonicalized internally).
 * @param h ZZ coupling ratio, |h| <= 1.
 * @param r time/amplitude trade-off cutoff in [0, (1-|h|) pi/2]; r = 0
 *        means always optimal time (unbounded drives near the identity).
 * @post weylCoordinates(realize(result)) equals the canonical target.
 */
GateParams synthesize(const WeylPoint &target, double h = 0.0,
                      double r = 0.0);

/**
 * AshN-ND (Algorithm 2): zero detuning, gate time 2x. Accepts raw
 * (non-canonical) targets with x = tau/2 in (0, pi/2].
 */
GateParams synthesizeND(const WeylPoint &target, double h);

/** AshN-ND-EXT (Algorithm 3): ND applied to the mirrored point. */
GateParams synthesizeNDExt(const WeylPoint &target, double h);

/** AshN-EA+ (Algorithm 4): equal amplitudes, tau = 2(x+y+z)/(2+h). */
GateParams synthesizeEAPlus(const WeylPoint &target, double h);

/** AshN-EA- (Algorithm 5): dual of EA+, tau = 2(x+y-z)/(2-h). */
GateParams synthesizeEAMinus(const WeylPoint &target, double h);

/**
 * The gate time the scheme assigns to a canonical target under cutoff
 * r, without solving for drive parameters: tau_opt when the optimal-time
 * branch applies, pi - 2x when AshN-ND-EXT takes over. Used by the
 * quantum-volume cost model.
 */
double gateTime(const WeylPoint &target, double h, double r);

/** The mirrored representative (pi/2 - x, y, -z) of a chamber point. */
WeylPoint mirrorPoint(const WeylPoint &p);

} // namespace ashn
} // namespace crisc

#endif // CRISC_ASHN_SCHEME_HH

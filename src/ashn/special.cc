#include "special.hh"

#include <cmath>
#include <stdexcept>

namespace crisc {
namespace ashn {

namespace {

constexpr double kPi = M_PI;

} // namespace

WeylPoint
cnotPoint()
{
    return {kPi / 4.0, 0.0, 0.0};
}

WeylPoint
swapPoint()
{
    return {kPi / 4.0, kPi / 4.0, kPi / 4.0};
}

WeylPoint
bGatePoint()
{
    return {kPi / 4.0, kPi / 8.0, 0.0};
}

GateParams
cnotClassParams(double h)
{
    if (std::abs(h) > 1.0)
        throw std::invalid_argument("cnotClassParams: |h| must be <= 1");
    const double sm = std::sqrt(16.0 - (1.0 - h) * (1.0 - h));
    const double sp = std::sqrt(16.0 - (1.0 + h) * (1.0 + h));
    // A1 = -(sm + sp)/2, A2 = -(sm - sp)/2; convert through Eq. (4.2).
    const double omega1 = sm / 4.0;
    const double omega2 = sp / 4.0;
    return GateParams{SubScheme::ND, kPi / 2.0, omega1, omega2, 0.0, h};
}

GateParams
swapClassParams(double h)
{
    return synthesize(swapPoint(), h, 0.0);
}

GateParams
bClassParams(double h)
{
    return synthesize(bGatePoint(), h, 0.0);
}

double
driveBound(double r)
{
    if (r <= 0.0)
        throw std::invalid_argument("driveBound: requires r > 0");
    return kPi / r + 0.5;
}

double
averageGateTime(double r)
{
    const double c = std::cos(4.0 * r);
    const double term1 =
        225.0 * (-176.0 * r * r + 96.0 * kPi * r - 105.0) * c;
    const double term2 =
        50.0 * (-576.0 * r * r + 576.0 * kPi * r - 30.0 * std::cos(6.0 * r) +
                252.0 * kPi * kPi + 97.0);
    const double pm2r = kPi - 2.0 * r;
    const double term3 =
        60.0 * (480.0 * pm2r * std::sin(r) - 603.0 * pm2r * std::sin(2.0 * r) -
                128.0 * pm2r * std::sin(3.0 * r) +
                30.0 * (19.0 * kPi - 33.0 * r) * std::sin(4.0 * r) -
                480.0 * pm2r * std::sin(5.0 * r) +
                65.0 * pm2r * std::sin(6.0 * r));
    const double tail = -59049.0 * std::cos(4.0 * r / 3.0) +
                        51708.0 * std::cos(2.0 * r) +
                        9216.0 * std::cos(3.0 * r) +
                        15360.0 * std::cos(5.0 * r);
    return (term1 + term2 + term3 + tail) / (28800.0 * kPi);
}

double
driveBoundGeneral(double h)
{
    const double ah = std::abs(h);
    if (ah >= 1.0)
        throw std::invalid_argument("driveBoundGeneral: requires |h| < 1");
    return 2.0 * (1.0 + ah) / (1.0 - ah) + 0.5;
}

} // namespace ashn
} // namespace crisc

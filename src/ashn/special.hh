/**
 * @file
 * Special gate classes (paper Table 1 and Sec. 6.4): closed-form AshN
 * parameters for the [CNOT], [SWAP] and [B] local-equivalence classes,
 * the ZZ-robust CNOT formula, and the drive-strength bounds of Eq. (4.4)
 * and Theorem 5.
 */

#ifndef CRISC_ASHN_SPECIAL_HH
#define CRISC_ASHN_SPECIAL_HH

#include "scheme.hh"

namespace crisc {
namespace ashn {

/** Chamber point of the CNOT class: (pi/4, 0, 0). */
WeylPoint cnotPoint();
/** Chamber point of the SWAP class: (pi/4, pi/4, pi/4). */
WeylPoint swapPoint();
/** Chamber point of the B-gate class: (pi/4, pi/8, 0). */
WeylPoint bGatePoint();

/**
 * Closed-form parameters for a [CNOT] class gate in the presence of ZZ
 * coupling (Sec. 6.4): tau = pi/2,
 *   A1 = -( sqrt(16-(1-h)^2) + sqrt(16-(1+h)^2) ) / 2,
 *   A2 = -( sqrt(16-(1-h)^2) - sqrt(16-(1+h)^2) ) / 2,  delta = 0.
 * At h = 0 the realized gate is exactly the Molmer-Sorensen XX(pi/2).
 */
GateParams cnotClassParams(double h = 0.0);

/** [SWAP] class parameters (Table 1 row 2, solved via AshN-EA-). */
GateParams swapClassParams(double h = 0.0);

/** [B] class parameters (Table 1 row 3, solved via AshN-ND). */
GateParams bClassParams(double h = 0.0);

/**
 * Drive-strength bound of Eq. (4.4) for h = 0 and cutoff r > 0:
 * max{|A1|/2, |A2|/2, |delta|} <= pi/r + 1/2 (units of g).
 */
double driveBound(double r);

/**
 * Uniform drive bound of Theorem 5 at cutoff r = (1-|h|) pi/2:
 * 2(1+|h|)/(1-|h|) + 1/2.
 */
double driveBoundGeneral(double h);

/**
 * Closed-form Haar-average AshN gate time T_avg(r) at h = 0 (paper
 * App. A.7.1): the chamber average of
 *   T(x,y,z;r) = max{2x, x+y+|z|} if >= r, else pi - 2x
 * under the Haar-induced measure. T_avg(0) = 7 pi/16 - 19/(180 pi).
 */
double averageGateTime(double r);

} // namespace ashn
} // namespace crisc

#endif // CRISC_ASHN_SPECIAL_HH

#include "hamiltonian.hh"

#include <cmath>

#include "linalg/expm.hh"
#include "qop/gates.hh"

namespace crisc {
namespace ashn {

using linalg::kron;
using qop::pauliI;
using qop::pauliX;
using qop::pauliY;
using qop::pauliZ;

Matrix
hamiltonian(double h, double omega1, double omega2, double delta)
{
    const Matrix xi = kron(pauliX(), pauliI());
    const Matrix ix = kron(pauliI(), pauliX());
    const Matrix zi = kron(pauliZ(), pauliI());
    const Matrix iz = kron(pauliI(), pauliZ());
    return 0.5 * (qop::pauliXX() + qop::pauliYY()) +
           (0.5 * h) * qop::pauliZZ() + omega1 * (xi + ix) +
           omega2 * (xi - ix) + delta * (zi + iz);
}

Matrix
hamiltonianWithPhases(double h, double a1, double phi1, double a2,
                      double phi2, double delta)
{
    const Matrix xi = kron(pauliX(), pauliI());
    const Matrix yi = kron(pauliY(), pauliI());
    const Matrix ix = kron(pauliI(), pauliX());
    const Matrix iy = kron(pauliI(), pauliY());
    const Matrix zi = kron(pauliZ(), pauliI());
    const Matrix iz = kron(pauliI(), pauliZ());
    return 0.5 * (qop::pauliXX() + qop::pauliYY()) +
           (0.5 * h) * qop::pauliZZ() -
           (0.5 * a1) * (std::cos(phi1) * xi - std::sin(phi1) * yi) -
           (0.5 * a2) * (std::cos(phi2) * ix - std::sin(phi2) * iy) +
           delta * (zi + iz);
}

Matrix
evolve(double tau, double h, double omega1, double omega2, double delta)
{
    return linalg::propagator(hamiltonian(h, omega1, omega2, delta), tau);
}

double
driveA1(double omega1, double omega2)
{
    return -2.0 * (omega1 + omega2);
}

double
driveA2(double omega1, double omega2)
{
    return -2.0 * (omega1 - omega2);
}

} // namespace ashn
} // namespace crisc

#include "scheme.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "qop/gates.hh"
#include "weyl/optimal_time.hh"

namespace crisc {
namespace ashn {

using linalg::Complex;
using weyl::canonicalizePoint;
using weyl::pointDistance;
using weyl::weylCoordinates;

namespace {

constexpr double kPi = M_PI;
constexpr double kTiny = 1e-12;

/** Inverse of sinc on [0, pi]: the unique w with sin(w)/w = v. */
double
invSinc(double v)
{
    v = std::clamp(v, 0.0, 1.0);
    if (v >= 1.0)
        return 0.0;
    double lo = 0.0, hi = kPi;
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double s = mid == 0.0 ? 1.0 : std::sin(mid) / mid;
        if (s > v)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

/** Whether the realized gate lands on the canonical target point. */
bool
verified(const GateParams &p, const WeylPoint &target, double tol = 1e-5)
{
    const WeylPoint want = canonicalizePoint(target);
    const WeylPoint got = weylCoordinates(realize(p));
    return pointDistance(want, got) <= tol;
}

[[noreturn]] void
failSynthesis(const char *scheme, const WeylPoint &p, double h)
{
    std::ostringstream msg;
    msg << scheme << ": no valid parameters for (" << p.x << ", " << p.y
        << ", " << p.z << "), h=" << h;
    throw std::runtime_error(msg.str());
}

/**
 * Solves the ND sinc equation  t * sinc(w) = v  for w in [t, pi] and
 * returns the drive Omega = sqrt((w/tau)^2 - (t/tau)^2) / 2, or nullopt
 * when v exceeds the reachable range sin(t).
 */
std::optional<double>
solveNDDrive(double v, double t, double tau)
{
    if (t <= kTiny)
        return v <= 1e-9 ? std::optional<double>(0.0) : std::nullopt;
    const double ratio = v / t;
    if (ratio > 1.0 + 1e-9)
        return std::nullopt;
    const double w = invSinc(std::min(ratio, 1.0));
    if (w < t - 1e-7)
        return std::nullopt; // would need imaginary drive
    const double s = std::max(w, t) / tau;
    const double s0 = t / tau;
    const double om2 = s * s - s0 * s0;
    return std::sqrt(std::max(om2, 0.0)) / 2.0;
}

/**
 * Solves the symmetric-slot equal-amplitude problem for the spectrum
 * representative (a, b, c): find (omega, delta) such that
 * U(tau; h; omega, 0, delta) with tau = 2(a+b+c)/(2+h) has the spectrum
 *   { -e^{i(a+b+c)}, e^{i(a-b-c)}, -e^{i(-a+b-c)}, e^{i(-a-b+c)} }
 * when multiplied by YY. The singlet is an exact eigenvector of the
 * symmetric-slot Hamiltonian with energy -(2+h)/2, so the first element
 * is automatic and matching the trace pins down the rest (App. A.5).
 * The realized gate canonicalizes to (a, b, -c) in this library's
 * coordinate convention.
 *
 * @return candidate {tau, omega, delta} triples, best residual first.
 * Near spectral degeneracies the coordinate error grows like the square
 * root of the trace residual, so callers must verify each candidate
 * against the target instead of trusting the first root.
 */
std::vector<std::array<double, 3>>
solveEASymmetricSlot(double a, double b, double c, double h)
{
    const double tau = 2.0 * (a + b + c) / (2.0 + h);
    if (tau <= kTiny)
        return {std::array<double, 3>{0.0, 0.0, 0.0}};

    const Complex tTarget = std::polar(1.0, a - b - c) -
                            std::polar(1.0, -a + b - c) +
                            std::polar(1.0, -a - b + c);
    const Complex constTerm =
        std::polar(1.0, (2.0 + h) * tau / 2.0) - tTarget;
    auto residual = [&](double om, double d) {
        const Matrix u = evolve(tau, h, std::abs(om), 0.0, std::abs(d));
        return (u * qop::pauliYY()).trace() + constTerm;
    };

    // Seed Newton from every local minimum of |residual| on a coarse
    // grid (the landscape has several basins; the global grid minimum
    // alone can sit in a rootless one).
    const double bound = 2.0 * (kPi / tau + 1.0);
    const int grid = 32;
    std::vector<std::vector<double>> err(grid + 1,
                                         std::vector<double>(grid + 1));
    for (int i = 0; i <= grid; ++i)
        for (int j = 0; j <= grid; ++j)
            err[i][j] =
                std::abs(residual(bound * i / grid, bound * j / grid));
    struct Seed
    {
        double om, d, e;
    };
    std::vector<Seed> seeds;
    for (int i = 0; i <= grid; ++i) {
        for (int j = 0; j <= grid; ++j) {
            bool isMin = true;
            for (int di = -1; di <= 1 && isMin; ++di)
                for (int dj = -1; dj <= 1; ++dj) {
                    const int ni = i + di, nj = j + dj;
                    if (ni < 0 || nj < 0 || ni > grid || nj > grid)
                        continue;
                    if (err[ni][nj] < err[i][j]) {
                        isMin = false;
                        break;
                    }
                }
            if (isMin)
                seeds.push_back(
                    {bound * i / grid, bound * j / grid, err[i][j]});
        }
    }
    std::sort(seeds.begin(), seeds.end(),
              [](const Seed &x, const Seed &y) { return x.e < y.e; });
    if (seeds.size() > 24)
        seeds.resize(24);

    struct Root
    {
        double e, om, d;
    };
    std::vector<Root> found;
    for (const Seed &seed : seeds) {
        double om = seed.om, d = seed.d;
        Complex f = residual(om, d);
        for (int iter = 0; iter < 80 && std::abs(f) > 1e-12; ++iter) {
            const double eps = 1e-7;
            const Complex fo = (residual(om + eps, d) - f) / eps;
            const Complex fd = (residual(om, d + eps) - f) / eps;
            const double det =
                fo.real() * fd.imag() - fd.real() * fo.imag();
            if (std::abs(det) < 1e-14)
                break;
            const double step_om =
                (-f.real() * fd.imag() + f.imag() * fd.real()) / det;
            const double step_d =
                (-fo.real() * f.imag() + fo.imag() * f.real()) / det;
            double t = 1.0;
            while (t > 1e-6) {
                const double no = std::abs(om + t * step_om);
                const double nd = std::abs(d + t * step_d);
                if (std::abs(residual(no, nd)) < std::abs(f)) {
                    om = no;
                    d = nd;
                    break;
                }
                t *= 0.5;
            }
            if (t <= 1e-6)
                break;
            f = residual(om, d);
        }
        if (std::abs(f) > 1e-9 && std::abs(f) < 1e-2) {
            // Newton stalls where the Jacobian degenerates (e.g. the
            // triply degenerate SWAP spectrum); finish with a compass
            // pattern search on |residual|.
            double step = 0.05;
            double e = std::abs(f);
            while (step > 1e-12 && e > 1e-10) {
                bool improved = false;
                const double moves[4][2] = {
                    {step, 0.0}, {-step, 0.0}, {0.0, step}, {0.0, -step}};
                for (const auto &mv : moves) {
                    const double no = std::abs(om + mv[0]);
                    const double nd = std::abs(d + mv[1]);
                    const double ne = std::abs(residual(no, nd));
                    if (ne < e) {
                        om = no;
                        d = nd;
                        e = ne;
                        improved = true;
                        break;
                    }
                }
                if (!improved)
                    step *= 0.5;
            }
            f = residual(om, d);
        }
        if (std::abs(f) <= 1e-7)
            found.push_back({std::abs(f), om, d});
    }
    // Several distinct roots can realize the same chamber point; prefer
    // the weakest drives (the bounds of Eq. 4.4 and Table 1 refer to the
    // minimal solution).
    std::sort(found.begin(), found.end(), [](const Root &x, const Root &y) {
        return std::max(x.om, x.d) < std::max(y.om, y.d);
    });
    std::vector<std::array<double, 3>> out;
    out.reserve(found.size());
    for (const Root &r : found)
        out.push_back({tau, r.om, r.d});
    return out;
}

/** The three sub-scheme times of one dispatch branch (Algorithm 1). */
struct BranchTimes
{
    double nd, eaPlus, eaMinus;

    double max() const { return std::max({nd, eaPlus, eaMinus}); }
};

BranchTimes
branchTimes(const WeylPoint &p, double h)
{
    return {2.0 * p.x, 2.0 * (p.x + p.y - p.z) / (2.0 + h),
            2.0 * (p.x + p.y + p.z) / (2.0 - h)};
}

} // namespace

std::string
subSchemeName(SubScheme s)
{
    switch (s) {
      case SubScheme::Identity:
        return "Identity";
      case SubScheme::ND:
        return "AshN-ND";
      case SubScheme::NDExt:
        return "AshN-ND-EXT";
      case SubScheme::EAPlus:
        return "AshN-EA+";
      case SubScheme::EAMinus:
        return "AshN-EA-";
    }
    return "?";
}

double
GateParams::maxDrive() const
{
    return std::max({std::abs(a1()) / 2.0, std::abs(a2()) / 2.0,
                     std::abs(delta)});
}

Matrix
realize(const GateParams &p)
{
    return evolve(p.tau, p.h, p.omega1, p.omega2, p.delta);
}

WeylPoint
mirrorPoint(const WeylPoint &p)
{
    return {kPi / 2.0 - p.x, p.y, -p.z};
}

GateParams
synthesizeND(const WeylPoint &target, double h)
{
    const double tau = 2.0 * target.x;
    if (tau <= kTiny)
        return GateParams{SubScheme::Identity, 0, 0, 0, 0, h};
    const double tMinus = (1.0 - h) * tau / 2.0;
    const double tPlus = (1.0 + h) * tau / 2.0;
    const double sinSum = std::sin(target.y + target.z);
    const double sinDiff = std::sin(target.y - target.z);

    // In this library's z convention Omega1 pairs with sin(y+z) (budget
    // (1-h)x) and Omega2 with sin(y-z) (budget (1+h)x); the opposite
    // assignment realizes the z-mirrored point, so it is kept as a
    // fallback for boundary cases.
    const std::pair<double, double> assignments[] = {{sinSum, sinDiff},
                                                     {sinDiff, sinSum}};
    for (const auto &[v1, v2] : assignments) {
        const auto om1 = solveNDDrive(v1, tMinus, tau);
        const auto om2 = solveNDDrive(v2, tPlus, tau);
        if (!om1 || !om2)
            continue;
        const GateParams p{SubScheme::ND, tau, *om1, *om2, 0.0, h};
        if (verified(p, target))
            return p;
    }
    failSynthesis("AshN-ND", target, h);
}

GateParams
synthesizeNDExt(const WeylPoint &target, double h)
{
    GateParams p = synthesizeND(mirrorPoint(target), h);
    p.scheme = SubScheme::NDExt;
    if (!verified(p, target))
        failSynthesis("AshN-ND-EXT", target, h);
    return p;
}

GateParams
synthesizeEAPlus(const WeylPoint &target, double h)
{
    // The symmetric slot realizes the z-negated spectrum representative,
    // so solve for (x, y, -z); tau = 2(x+y-z)/(2+h).
    for (const auto &sol :
         solveEASymmetricSlot(target.x, target.y, -target.z, h)) {
        if (sol[0] <= kTiny)
            return GateParams{SubScheme::Identity, 0, 0, 0, 0, h};
        const GateParams p{SubScheme::EAPlus, sol[0], sol[1], 0.0, sol[2],
                           h};
        if (verified(p, target))
            return p;
    }
    failSynthesis("AshN-EA+", target, h);
}

GateParams
synthesizeEAMinus(const WeylPoint &target, double h)
{
    // Corollary 9 duality: conjugating by (Z x I) and reversing time
    // maps the antisymmetric slot under h to the symmetric slot under
    // -h with the z-negation undone; tau = 2(x+y+z)/(2-h).
    for (const auto &sol :
         solveEASymmetricSlot(target.x, target.y, target.z, -h)) {
        if (sol[0] <= kTiny)
            return GateParams{SubScheme::Identity, 0, 0, 0, 0, h};
        for (const double dsign : {-1.0, 1.0}) {
            const GateParams p{SubScheme::EAMinus, sol[0], 0.0, sol[1],
                               dsign * sol[2], h};
            if (verified(p, target))
                return p;
        }
    }
    failSynthesis("AshN-EA-", target, h);
}

double
gateTime(const WeylPoint &target, double h, double r)
{
    const WeylPoint p = canonicalizePoint(target);
    const double topt = weyl::optimalTime(p, h);
    if (topt <= r)
        return kPi - 2.0 * p.x;
    return topt;
}

GateParams
synthesize(const WeylPoint &target, double h, double r)
{
    if (std::abs(h) > 1.0)
        throw std::invalid_argument("synthesize: |h| must be <= 1");
    if (r < 0.0 || r > (1.0 - std::abs(h)) * kPi / 2.0 + 1e-12)
        throw std::invalid_argument("synthesize: cutoff r out of range");

    const WeylPoint p = canonicalizePoint(target);
    if (p.x < kTiny && p.y < kTiny && std::abs(p.z) < kTiny)
        return GateParams{SubScheme::Identity, 0, 0, 0, 0, h};

    const BranchTimes b1 = branchTimes(p, h);
    const WeylPoint m = mirrorPoint(p);
    const BranchTimes b2 = branchTimes(m, h);
    const double tau1 = b1.max(), tau2 = b2.max();

    if (std::min(tau1, tau2) <= r)
        return synthesizeNDExt(p, h);

    const WeylPoint work = tau2 < tau1 ? m : p;
    const BranchTimes bt = tau2 < tau1 ? b2 : b1;

    // Preferred sub-scheme per Algorithm 1, with the others as fallback
    // (ties on sector boundaries are realizable by several schemes).
    std::vector<SubScheme> order;
    if (bt.nd >= std::max(bt.eaPlus, bt.eaMinus) - 1e-12)
        order = {SubScheme::ND, SubScheme::EAPlus, SubScheme::EAMinus};
    else if (bt.eaPlus >= bt.eaMinus)
        order = {SubScheme::EAPlus, SubScheme::EAMinus, SubScheme::ND};
    else
        order = {SubScheme::EAMinus, SubScheme::EAPlus, SubScheme::ND};

    std::string errors;
    for (SubScheme s : order) {
        try {
            switch (s) {
              case SubScheme::ND:
                return synthesizeND(work, h);
              case SubScheme::EAPlus:
                return synthesizeEAPlus(work, h);
              case SubScheme::EAMinus:
                return synthesizeEAMinus(work, h);
              default:
                break;
            }
        } catch (const std::runtime_error &e) {
            errors += std::string(e.what()) + "; ";
        }
    }
    throw std::runtime_error("synthesize: all sub-schemes failed: " + errors);
}

} // namespace ashn
} // namespace crisc

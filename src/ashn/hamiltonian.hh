/**
 * @file
 * The AshN rotating-frame Hamiltonian (paper Eq. 4.1/4.3) and its time
 * evolution. All quantities are normalized to the XY coupling g = 1:
 * times are in units of 1/g and drive strengths in units of g. Helpers
 * convert to physical units for a given g.
 */

#ifndef CRISC_ASHN_HAMILTONIAN_HH
#define CRISC_ASHN_HAMILTONIAN_HH

#include "linalg/matrix.hh"

namespace crisc {
namespace ashn {

using linalg::Matrix;

/**
 * H(h; Omega1, Omega2, delta) =
 *   1/2 (XX + YY) + h/2 ZZ + Omega1 (XI + IX) + Omega2 (XI - IX)
 *   + delta (ZI + IZ),
 * the square-envelope AshN Hamiltonian with ZZ coupling ratio h = h/g.
 */
Matrix hamiltonian(double h, double omega1, double omega2, double delta);

/**
 * The general drive-phase Hamiltonian of Eq. (4.1):
 *   1/2 (XX+YY) + h/2 ZZ
 *   - a1/2 (cos phi1 XI - sin phi1 YI) - a2/2 (cos phi2 IX - sin phi2 IY)
 *   + delta (ZI + IZ),
 * used to demonstrate the free virtual-Z property of Sec. 4.4.
 */
Matrix hamiltonianWithPhases(double h, double a1, double phi1, double a2,
                             double phi2, double delta);

/** Time evolution exp(-i H tau) of the AshN Hamiltonian. */
Matrix evolve(double tau, double h, double omega1, double omega2,
              double delta);

/**
 * Drive amplitudes of Eq. (4.2): A1 = -2(Omega1 + Omega2) and
 * A2 = -2(Omega1 - Omega2).
 */
double driveA1(double omega1, double omega2);
double driveA2(double omega1, double omega2);

} // namespace ashn
} // namespace crisc

#endif // CRISC_ASHN_HAMILTONIAN_HH

/**
 * @file
 * Memoized Weyl-decomposition cache: canonical chamber coordinates
 * (plus h, r) map to the synthesized AshN pulse parameters and the
 * realized 4x4 pulse unitary, so repeated gate classes (Trotter bonds,
 * CNOTs, SWAPs) pay for ashn::synthesize + realize once. Thread-safe;
 * shared across a batch via the gate-set instance that owns it.
 *
 * Keys use the exact coordinate bits — only bit-identical chamber
 * points share an entry, so memoization never perturbs results. Two
 * guarded edge cases: -0.0 is normalized to +0.0 in all five key
 * fields (hash and equality would otherwise disagree with ==), and
 * non-finite coordinates are rejected with std::invalid_argument (a
 * NaN key can never equal itself, so each lookup would insert a fresh
 * entry — unbounded growth instead of a loud failure).
 */

#ifndef CRISC_DEVICE_WEYL_CACHE_HH
#define CRISC_DEVICE_WEYL_CACHE_HH

#include <functional>
#include <mutex>
#include <unordered_map>

#include "ashn/scheme.hh"
#include "linalg/matrix.hh"
#include "weyl/weyl.hh"

namespace crisc {
namespace device {
namespace detail {

/** Normalizes -0.0 so cache-key equality and hashing agree. */
inline double
normZero(double v)
{
    return v == 0.0 ? 0.0 : v;
}

/** boost-style hash combine for double-tuple cache keys. */
inline std::size_t
hashCombine(std::size_t seed, double v)
{
    return seed ^ (std::hash<double>{}(v) + 0x9e3779b97f4a7c15ULL +
                   (seed << 6) + (seed >> 2));
}

} // namespace detail

class WeylCache
{
  public:
    struct Entry
    {
        ashn::GateParams params;
        linalg::Matrix pulse;  ///< ashn::realize(params).
    };

    /**
     * Returns the cached entry, synthesizing on miss.
     * @throws std::invalid_argument if any of (x, y, z, h, r) is NaN
     *         or infinite.
     */
    Entry lookup(const weyl::WeylPoint &p, double h, double r);

    std::size_t size() const;
    std::size_t hits() const;
    std::size_t misses() const;

  private:
    struct Key
    {
        double x, y, z, h, r;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const;
    };

    mutable std::mutex mutex_;
    std::unordered_map<Key, Entry, KeyHash> map_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

} // namespace device
} // namespace crisc

#endif // CRISC_DEVICE_WEYL_CACHE_HH

/**
 * @file
 * The device (target) model: one object owning everything compilation
 * and simulation need to know about a machine —
 *
 *   - connectivity: a route::CouplingMap,
 *   - the native two-qubit instruction set: a NativeGateSet,
 *   - the noise model: gate-time-proportional depolarizing rates,
 *   - optionally, a fitted calib::ControlModel (transfer gains).
 *
 * A Device is constructed once and threaded through the stack: the
 * transpiler routes onto its coupling map and lowers through its gate
 * set (transpile::TranspileOptions::device), and the quantum-volume
 * harness derives per-gate noise budgets from its cost and noise
 * models (qv::QvConfig::device). Presets cover the paper's three
 * Figure-7 scenarios; fromEdges / withCoupling build anything else.
 */

#ifndef CRISC_DEVICE_DEVICE_HH
#define CRISC_DEVICE_DEVICE_HH

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "calib/model.hh"
#include "device/native_set.hh"
#include "route/route.hh"

namespace crisc {
namespace device {

/**
 * Gate-time-proportional depolarizing noise (paper Sec. 6.3): every
 * native two-qubit gate suffers two-qubit depolarizing noise at rate
 * twoQubitError * (gate time / referenceTime), plus single-qubit
 * depolarizing noise at singleQubitError on each involved qubit. The
 * reference is the CZ gate time, so twoQubitError reads as "the error
 * rate of a CZ" regardless of the device's native set.
 */
struct NoiseModel
{
    double twoQubitError = 0.01;     ///< rate of a referenceTime-long gate.
    double singleQubitError = 0.001; ///< per qubit, per native gate.
    double referenceTime = kCzTime;  ///< time the 2q rate is quoted at.

    /** Depolarizing rate of one native gate of time @p gate_time. */
    double twoQubitRateFor(double gate_time) const
    {
        return twoQubitError * gate_time / referenceTime;
    }

    /** @throws std::invalid_argument on out-of-range rates/time. */
    void validate() const;
};

/** Preset knobs shared by the Device factory constructors. */
struct DeviceParams
{
    double twoQubitError = 0.01;     ///< CZ-referenced 2q rate.
    double singleQubitError = 0.001; ///< per qubit, per native gate.
    double h = 0.0;                  ///< parasitic ZZ ratio (AshN).
    double r = 0.0;                  ///< AshN drive cutoff.
};

/** A target machine: coupling + native gate set + noise (+ calibration). */
class Device
{
  public:
    using Params = DeviceParams;

    /**
     * General constructor; the factories below are usually simpler.
     * @throws std::invalid_argument on an empty device, a null gate
     *         set, or an invalid noise model.
     */
    Device(std::string name, route::CouplingMap coupling,
           std::shared_ptr<const NativeGateSet> gate_set, NoiseModel noise);

    // --- canned presets (the paper's Figure-7 devices) --------------

    /** Most-square 2D grid of n qubits, AshN-native. */
    static Device grid2dAshN(std::size_t n, const Params &p = {});
    /** Most-square 2D grid of n qubits, CZ-native. */
    static Device grid2dCZ(std::size_t n, const Params &p = {});
    /** Most-square 2D grid of n qubits, SQiSW-native. */
    static Device grid2dSqisw(std::size_t n, const Params &p = {});
    /** Grid preset dispatching on @p kind. */
    static Device grid2d(NativeKind kind, std::size_t n,
                         const Params &p = {});

    /** Custom connectivity from an undirected edge list. */
    static Device
    fromEdges(NativeKind kind, std::size_t n,
              const std::vector<std::pair<std::size_t, std::size_t>> &edges,
              const Params &p = {});

    /** Any prebuilt coupling map (line, ring, heavyHex, ...). */
    static Device withCoupling(NativeKind kind, route::CouplingMap coupling,
                               const Params &p = {});

    // --- accessors ---------------------------------------------------

    const std::string &name() const { return name_; }
    std::size_t numQubits() const { return coupling_.numQubits(); }
    const route::CouplingMap &coupling() const { return coupling_; }
    const NativeGateSet &gateSet() const { return *gateSet_; }
    /** Shared handle, e.g. for a pipeline outliving the Device. */
    std::shared_ptr<const NativeGateSet> gateSetPtr() const
    {
        return gateSet_;
    }
    const NoiseModel &noise() const { return noise_; }

    /** Fitted control-transfer model; nullptr when uncalibrated. */
    const calib::ControlModel *control() const
    {
        return control_ ? &*control_ : nullptr;
    }
    void setControl(const calib::ControlModel &m) { control_ = m; }

  private:
    std::string name_;
    route::CouplingMap coupling_;
    std::shared_ptr<const NativeGateSet> gateSet_;
    NoiseModel noise_;
    std::optional<calib::ControlModel> control_;
};

} // namespace device
} // namespace crisc

#endif // CRISC_DEVICE_DEVICE_HH

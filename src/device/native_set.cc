#include "native_set.hh"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>

#include "calib/model.hh"
#include "qop/gates.hh"
#include "synth/two_qubit.hh"

namespace crisc {
namespace device {

using circuit::Circuit;
using circuit::Gate;
using linalg::Matrix;
using weyl::WeylPoint;

const char *
nativeKindName(NativeKind k)
{
    switch (k) {
      case NativeKind::CZ:
        return "CZ";
      case NativeKind::SQiSW:
        return "SQiSW";
      case NativeKind::AshN:
        return "AshN";
    }
    return "?";
}

// ----------------------------------------------------------------- AshN

AshNGateSet::AshNGateSet(double h, double r) : h_(h), r_(r)
{
    if (std::abs(h) > 1.0)
        throw std::invalid_argument(
            "AshNGateSet: ZZ coupling ratio |h| must be <= 1");
    // Mirror ashn::synthesize's realizability bound so an unusable
    // cutoff fails at Device construction, not mid-transpile.
    if (r < 0.0 || r > (1.0 - std::abs(h)) * M_PI / 2.0 + 1e-12)
        throw std::invalid_argument(
            "AshNGateSet: drive cutoff r must lie in [0, (1-|h|)*pi/2]");
}

GateCost
AshNGateSet::cost(const WeylPoint &p) const
{
    return {1, ashn::gateTime(p, h_, r_)};
}

Lowered2q
AshNGateSet::lower(const Matrix &u) const
{
    const WeylPoint p = weyl::weylCoordinates(u);
    const WeylCache::Entry e = cache_.lookup(p, h_, r_);
    const synth::AshnCompiled ac = synth::compileToAshn(u, e.params, e.pulse);
    Lowered2q out;
    out.ops.add(ac.r1, {0}, "pre");
    out.ops.add(ac.r2, {1}, "pre");
    out.ops.add(std::polar(1.0, ac.phase) * e.pulse, {0, 1}, "pulse");
    out.ops.add(ac.l1, {0}, "post");
    out.ops.add(ac.l2, {1}, "post");
    out.pulse = e.params;
    out.cost = {1, e.params.tau};
    return out;
}

// ------------------------------------------------------------------- CZ

GateCost
CzGateSet::cost(const WeylPoint &) const
{
    return {3, 3.0 * kCzTime};
}

Lowered2q
CzGateSet::lower(const Matrix &u) const
{
    // Minimal-CNOT synthesis, then CNOT = (I x H) CZ (I x H) on the
    // target wire (CZ is symmetric, so both orientations rewrite the
    // same way).
    const Circuit dec = synth::decomposeCNOT(u, 0, 1, 2);
    Lowered2q out;
    int natives = 0;
    for (const Gate &g : dec.gates()) {
        if (g.qubits.size() != 2) {
            out.ops.add(g.op, g.qubits, g.label.empty() ? "local" : g.label);
            continue;
        }
        if (g.label != "CNOT" && g.label != "CNOT21")
            throw std::logic_error(
                "CzGateSet::lower: unexpected two-qubit gate '" + g.label +
                "' in the CNOT decomposition");
        const std::size_t target =
            g.label == "CNOT21" ? g.qubits[0] : g.qubits[1];
        out.ops.add(qop::hadamard(), {target}, "local");
        out.ops.add(qop::cz(), {g.qubits[0], g.qubits[1]}, "cz");
        out.ops.add(qop::hadamard(), {target}, "local");
        ++natives;
    }
    out.cost = {natives, natives * kCzTime};
    return out;
}

// ---------------------------------------------------------------- SQiSW

namespace {

/** The 3-parameter interleaver of the 2-SQiSW family (Huang et al.). */
Matrix
sqiswInterleave(double a, double b, double g)
{
    return linalg::kron(qop::rz(g) * qop::rx(a) * qop::rz(g), qop::rx(b));
}

Matrix
sqiswCore2(const std::vector<double> &x)
{
    return qop::sqisw() * sqiswInterleave(x[0], x[1], x[2]) * qop::sqisw();
}

bool
inTwoSqiswRegion(const WeylPoint &p)
{
    return p.x >= p.y + std::abs(p.z) - 1e-9;
}

/**
 * Solves SQiSW (Rz Rx Rz x Rx) SQiSW == CAN(target) for the three
 * interleaver angles by deterministic multi-start Nelder-Mead on the
 * chamber-coordinate error. The family covers exactly the region
 * x >= y + |z| (boundary included), so the solve reaches ~1e-12 for
 * every in-region target.
 */
double
solveSqiswCore2(const WeylPoint &target, std::vector<double> &out)
{
    auto objective = [&](const std::vector<double> &x) {
        return weyl::pointDistance(weyl::weylCoordinates(sqiswCore2(x)),
                                   target);
    };
    double best = 1e300;
    linalg::Rng rng(42);
    for (int attempt = 0; attempt < 20; ++attempt) {
        const std::vector<double> start =
            attempt == 0 ? std::vector<double>{0.5, 0.5, 0.5}
                         : std::vector<double>{rng.uniform(-M_PI, M_PI),
                                               rng.uniform(-M_PI, M_PI),
                                               rng.uniform(-M_PI, M_PI)};
        const std::vector<double> x =
            calib::nelderMead(objective, start, 0.4, 4000, 1e-16);
        const double v = objective(x);
        if (v < best) {
            best = v;
            out = x;
        }
        if (best < 1e-11)
            break;
    }
    return best;
}

} // namespace

std::size_t
SqiswGateSet::AngleKeyHash::operator()(const AngleKey &k) const
{
    std::size_t seed = std::hash<double>{}(k.x);
    for (const double v : {k.y, k.z})
        seed = detail::hashCombine(seed, v);
    return seed;
}

std::array<double, 3>
SqiswGateSet::interleaverFor(const WeylPoint &p) const
{
    const AngleKey key{detail::normZero(p.x), detail::normZero(p.y),
                       detail::normZero(p.z)};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = angles_.find(key);
        if (it != angles_.end())
            return it->second;
    }
    // Solve outside the lock; a raced duplicate computes the same
    // deterministic angles and emplace keeps whichever landed first.
    std::vector<double> x;
    if (solveSqiswCore2(p, x) > 1e-10)
        throw std::runtime_error(
            "SqiswGateSet::lower: interleaver solve did not converge");
    const std::array<double, 3> angles{x[0], x[1], x[2]};
    std::lock_guard<std::mutex> lock(mutex_);
    return angles_.emplace(key, angles).first->second;
}

/*
 * Appends the exact 2-SQiSW realization of @p u (whose chamber point
 * must lie in the 2-application region) to @p ops: the (memoized)
 * interleaver angles fix the interaction coefficients;
 * weyl::localCorrections supplies the exact outer single-qubit gates.
 */
void
SqiswGateSet::lowerTwoSqisw(const Matrix &u, circuit::Circuit &ops) const
{
    const WeylPoint p = weyl::weylCoordinates(u);
    const std::array<double, 3> x = interleaverFor(p);
    const Matrix core =
        qop::sqisw() * sqiswInterleave(x[0], x[1], x[2]) * qop::sqisw();
    const weyl::LocalCorrection lc = weyl::localCorrections(u, core);
    ops.add(lc.r1, {0}, "local");
    ops.add(lc.r2, {1}, "local");
    ops.add(qop::sqisw(), {0, 1}, "sqisw");
    ops.add(qop::rz(x[2]), {0}, "local");
    ops.add(qop::rx(x[0]), {0}, "local");
    ops.add(qop::rz(x[2]), {0}, "local");
    ops.add(qop::rx(x[1]), {1}, "local");
    ops.add(qop::sqisw(), {0, 1}, "sqisw");
    ops.add(std::polar(1.0, lc.phase) * lc.l1, {0}, "local");
    ops.add(lc.l2, {1}, "local");
}

GateCost
SqiswGateSet::cost(const WeylPoint &p) const
{
    // Huang et al. (ref. [30]): two applications cover the region
    // x >= y + |z|; three are needed otherwise.
    const int k = inTwoSqiswRegion(p) ? 2 : 3;
    return {k, k * kSqiswTime};
}

const SqiswGateSet::PeelEntry &
SqiswGateSet::peelFor(const WeylPoint &p) const
{
    const AngleKey key{detail::normZero(p.x), detail::normZero(p.y),
                       detail::normZero(p.z)};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = peels_.find(key);
        if (it != peels_.end())
            return it->second;
    }
    // Peel one SQiSW plus a local layer so the remainder of the
    // CANONICAL gate lands in the 2-application region — left locals
    // never move a chamber point, so the same layer works for every
    // unitary of the class (grafted through its KAK right locals in
    // lower()). The layer is found by minimizing the region violation
    // y + |z| - x of the remainder's chamber point; SWAP-class targets
    // are tight (the minimum is exactly 0, on the region boundary),
    // which the 2-SQiSW solve still covers.
    const Matrix can = qop::canonicalGate(p.x, p.y, p.z);
    auto euler = [](double a, double b, double g) {
        return qop::rz(a) * qop::ry(b) * qop::rz(g);
    };
    // can = rest * SQiSW * (c x d), i.e. rest = can (c x d)^-1 SQiSW^-1;
    // the local layer sits between can and the peeled SQiSW, which is
    // exactly the freedom that moves the remainder's chamber point.
    auto peel = [&](const std::vector<double> &x) {
        return can *
               linalg::kron(euler(x[0], x[1], x[2]),
                            euler(x[3], x[4], x[5]))
                   .dagger() *
               qop::sqisw().dagger();
    };
    auto violation = [&](const std::vector<double> &x) {
        const WeylPoint q = weyl::weylCoordinates(peel(x));
        // Clamp: any comfortably interior point is equally good.
        return std::max(q.y + std::abs(q.z) - q.x, -1e-3);
    };
    linalg::Rng rng(0x5C155BULL);
    for (int attempt = 0; attempt < 16; ++attempt) {
        std::vector<double> start(6, 0.0);
        if (attempt > 0)
            for (double &s : start)
                s = rng.uniform(-M_PI, M_PI);
        const std::vector<double> x =
            calib::nelderMead(violation, start, 0.5, 3000, 1e-15);
        if (violation(x) > 1e-9)
            continue;
        // Reject layers whose remainder the interleaver solve cannot
        // reach (region boundary pathologies); failures here retry.
        try {
            interleaverFor(weyl::weylCoordinates(peel(x)));
        } catch (const std::runtime_error &) {
            continue;
        }
        PeelEntry e{euler(x[0], x[1], x[2]), euler(x[3], x[4], x[5])};
        std::lock_guard<std::mutex> lock(mutex_);
        return peels_.emplace(key, std::move(e)).first->second;
    }
    throw std::runtime_error(
        "SqiswGateSet::lower: no SQiSW peel reached the "
        "2-application region");
}

Lowered2q
SqiswGateSet::lower(const Matrix &u) const
{
    const WeylPoint p = weyl::weylCoordinates(u);
    const int k = cost(p).nativeGates;
    Lowered2q out;
    if (k == 2) {
        lowerTwoSqisw(u, out.ops);
    } else {
        // u = phase (a1 x a2) CAN(p) (b1 x b2); the cached peel layer
        // (c, d) for CAN(p) grafts through the right locals as
        // (c b1, d b2): rest = u (c b1 x d b2)^-1 SQiSW^-1 has the
        // same chamber point as CAN(p) (c x d)^-1 SQiSW^-1 — inside
        // the 2-application region by construction.
        const weyl::KAKDecomposition kd = weyl::kak(u);
        const PeelEntry &pe = peelFor(kd.point);
        const Matrix l0 = pe.c * kd.b1;
        const Matrix l1 = pe.d * kd.b2;
        const Matrix rest =
            u * linalg::kron(l0, l1).dagger() * qop::sqisw().dagger();
        circuit::Circuit inner(2);
        lowerTwoSqisw(rest, inner);
        // u = rest * SQiSW * (l0 x l1): first apply the peeled locals,
        // then SQiSW, then the 2-SQiSW remainder.
        out.ops.add(l0, {0}, "local");
        out.ops.add(l1, {1}, "local");
        out.ops.add(qop::sqisw(), {0, 1}, "sqisw");
        out.ops.append(inner);
    }
    out.cost = {k, k * kSqiswTime};
    return out;
}

// -------------------------------------------------------------- factory

std::shared_ptr<const NativeGateSet>
makeNativeGateSet(NativeKind kind, double h, double r)
{
    switch (kind) {
      case NativeKind::CZ:
        return std::make_shared<CzGateSet>();
      case NativeKind::SQiSW:
        return std::make_shared<SqiswGateSet>();
      case NativeKind::AshN:
        return std::make_shared<AshNGateSet>(h, r);
    }
    throw std::invalid_argument("makeNativeGateSet: unknown native kind");
}

} // namespace device
} // namespace crisc

#include "device.hh"

#include <cmath>
#include <stdexcept>
#include <string>

namespace crisc {
namespace device {

namespace {

void
checkRate(double v, const char *what)
{
    if (!(v >= 0.0 && v <= 1.0))
        throw std::invalid_argument(std::string("NoiseModel: ") + what +
                                    " must lie in [0, 1], got " +
                                    std::to_string(v));
}

NoiseModel
noiseFor(const Device::Params &p)
{
    NoiseModel n;
    n.twoQubitError = p.twoQubitError;
    n.singleQubitError = p.singleQubitError;
    return n;
}

std::string
presetName(NativeKind kind, const char *topology)
{
    return std::string(topology) + "-" + nativeKindName(kind);
}

} // namespace

void
NoiseModel::validate() const
{
    checkRate(twoQubitError, "twoQubitError");
    checkRate(singleQubitError, "singleQubitError");
    if (!(referenceTime > 0.0))
        throw std::invalid_argument(
            "NoiseModel: referenceTime must be positive");
}

Device::Device(std::string name, route::CouplingMap coupling,
               std::shared_ptr<const NativeGateSet> gate_set,
               NoiseModel noise)
    : name_(std::move(name)), coupling_(std::move(coupling)),
      gateSet_(std::move(gate_set)), noise_(noise)
{
    if (coupling_.numQubits() == 0)
        throw std::invalid_argument(
            "Device: need at least one physical qubit");
    if (gateSet_ == nullptr)
        throw std::invalid_argument("Device: native gate set is null");
    noise_.validate();
}

Device
Device::grid2d(NativeKind kind, std::size_t n, const Params &p)
{
    return {presetName(kind, "grid2d"), route::CouplingMap::gridFor(n),
            makeNativeGateSet(kind, p.h, p.r), noiseFor(p)};
}

Device
Device::grid2dAshN(std::size_t n, const Params &p)
{
    return grid2d(NativeKind::AshN, n, p);
}

Device
Device::grid2dCZ(std::size_t n, const Params &p)
{
    return grid2d(NativeKind::CZ, n, p);
}

Device
Device::grid2dSqisw(std::size_t n, const Params &p)
{
    return grid2d(NativeKind::SQiSW, n, p);
}

Device
Device::fromEdges(
    NativeKind kind, std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>> &edges,
    const Params &p)
{
    return {presetName(kind, "custom"),
            route::CouplingMap::fromEdges(n, edges),
            makeNativeGateSet(kind, p.h, p.r), noiseFor(p)};
}

Device
Device::withCoupling(NativeKind kind, route::CouplingMap coupling,
                     const Params &p)
{
    return {presetName(kind, "device"), std::move(coupling),
            makeNativeGateSet(kind, p.h, p.r), noiseFor(p)};
}

} // namespace device
} // namespace crisc

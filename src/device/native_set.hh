/**
 * @file
 * Pluggable native two-qubit instruction sets. A NativeGateSet answers
 * the two questions a compiler asks of a target device:
 *
 *   cost(p)  — the paper's Figure-7 cost model: how many native gates,
 *              and how much two-qubit interaction time (units of 1/g),
 *              a gate class with canonical Weyl point p consumes;
 *   lower(u) — an exact decomposition of the 4x4 unitary u into native
 *              two-qubit gates plus single-qubit corrections, on the
 *              local qubit pair (0, 1).
 *
 * Three sets ship with the library, mirroring the paper's Sec. 6.3
 * comparison: flux-tuned CZ (3 per SU(4)), SQiSW = sqrt(iSWAP) (2 or 3
 * per SU(4), Huang et al.), and the AshN pulse scheme (1 per SU(4)).
 * New sets subclass NativeGateSet; see README "Adding a native gate
 * set".
 */

#ifndef CRISC_DEVICE_NATIVE_SET_HH
#define CRISC_DEVICE_NATIVE_SET_HH

#include <array>
#include <memory>
#include <mutex>
#include <numbers>
#include <optional>
#include <unordered_map>

#include "ashn/scheme.hh"
#include "circuit/circuit.hh"
#include "device/weyl_cache.hh"
#include "weyl/weyl.hh"

namespace crisc {
namespace device {

/** The built-in native instruction sets. */
enum class NativeKind
{
    CZ,     ///< flux-tuned CZ: 3 per SU(4), gate time pi/sqrt(2).
    SQiSW,  ///< flux-tuned sqrt(iSWAP): 2 or 3 per SU(4), time pi/4 each.
    AshN,   ///< AshN pulse: 1 per SU(4), time from the scheme.
};

/** Human-readable instruction-set name. */
const char *nativeKindName(NativeKind k);

/** Gate time of one CZ (units of 1/g); the noise-model reference. */
inline constexpr double kCzTime = std::numbers::pi / std::numbers::sqrt2;
/** Gate time of one SQiSW (units of 1/g). */
inline constexpr double kSqiswTime = std::numbers::pi / 4.0;

/**
 * Native gate count and total two-qubit interaction time (units of 1/g)
 * to compile one gate class.
 */
struct GateCost
{
    int nativeGates = 0;
    double totalTime = 0.0;
};

/**
 * One two-qubit gate lowered to native form: a replacement circuit on
 * the local pair (qubit 0 = gate msq, qubit 1 = lsq) whose unitary
 * equals the source gate up to global phase, plus bookkeeping.
 */
struct Lowered2q
{
    circuit::Circuit ops{2};  ///< native 2q gates + 1q corrections.
    /** Pulse parameters, for pulse-based sets (AshN) only. */
    std::optional<ashn::GateParams> pulse;
    /** Natives actually emitted and their summed gate time. */
    GateCost cost;
};

/** A native two-qubit instruction set of a device. */
class NativeGateSet
{
  public:
    virtual ~NativeGateSet() = default;

    virtual const char *name() const = 0;
    virtual NativeKind kind() const = 0;

    /**
     * The paper's cost model for the quantum-volume noise budget: the
     * native-gate count and total interaction time charged to a gate
     * class with canonical chamber point @p p. May differ from what
     * lower() emits for special classes (e.g. the CZ model charges a
     * uniform 3 per SU(4) while lower() uses the minimal count).
     */
    virtual GateCost cost(const weyl::WeylPoint &p) const = 0;

    /**
     * Exactly decomposes a two-qubit unitary into native gates plus
     * single-qubit corrections on the local pair (0, 1).
     *
     * @post result.ops.toUnitary() equals @p u up to global phase.
     */
    virtual Lowered2q lower(const linalg::Matrix &u) const = 0;
};

/**
 * The AshN pulse set: every SU(4) is one pulse (plus single-qubit
 * corrections), with gate time given by the scheme under ZZ ratio h and
 * drive cutoff r. Weyl synthesis results are memoized in a thread-safe
 * cache shared by everyone holding this instance.
 */
class AshNGateSet final : public NativeGateSet
{
  public:
    explicit AshNGateSet(double h = 0.0, double r = 0.0);

    const char *name() const override { return "AshN"; }
    NativeKind kind() const override { return NativeKind::AshN; }
    GateCost cost(const weyl::WeylPoint &p) const override;
    Lowered2q lower(const linalg::Matrix &u) const override;

    double h() const { return h_; }
    double r() const { return r_; }
    const WeylCache &cache() const { return cache_; }

  private:
    double h_;
    double r_;
    mutable WeylCache cache_;
};

/**
 * The CZ set: the cost model charges 3 CZ per SU(4) (each of time
 * pi/sqrt(2)); lower() emits the minimal CZ count for the gate class
 * (0/1/2/3) via the CNOT decomposition with CNOT = (I x H) CZ (I x H).
 */
class CzGateSet final : public NativeGateSet
{
  public:
    const char *name() const override { return "CZ"; }
    NativeKind kind() const override { return NativeKind::CZ; }
    GateCost cost(const weyl::WeylPoint &p) const override;
    Lowered2q lower(const linalg::Matrix &u) const override;
};

/**
 * The SQiSW set: 2 applications cover the chamber region x >= y + |z|
 * (Huang et al., ref. [30]), 3 are needed otherwise, each of time pi/4.
 * lower() realizes the interaction with the Huang-style interleaver
 * family SQiSW (Rz Rx Rz x Rx) SQiSW — angles solved by deterministic
 * multi-start Nelder-Mead on the chamber coordinates, outer locals by
 * weyl::localCorrections — peeling one extra SQiSW first for
 * out-of-region targets. Exact to ~1e-12 and fully deterministic.
 * Both solves (the interleaver angles and the out-of-region peel
 * layer) depend only on the chamber point and are memoized per exact
 * coordinate bits (same guarantee as WeylCache: only bit-identical
 * points share an entry), so repeated gate classes pay for the
 * Nelder-Mead searches once; per-unitary work is linear algebra.
 */
class SqiswGateSet final : public NativeGateSet
{
  public:
    const char *name() const override { return "SQiSW"; }
    NativeKind kind() const override { return NativeKind::SQiSW; }
    GateCost cost(const weyl::WeylPoint &p) const override;
    Lowered2q lower(const linalg::Matrix &u) const override;

  private:
    /** Appends the exact 2-SQiSW realization of an in-region @p u. */
    void lowerTwoSqisw(const linalg::Matrix &u,
                       circuit::Circuit &ops) const;
    /**
     * Interleaver angles realizing chamber point @p p, memoized.
     * @throws std::runtime_error when the solve does not converge
     *         (out-of-region target); failures are not cached.
     */
    std::array<double, 3> interleaverFor(const weyl::WeylPoint &p) const;

    /**
     * Local layer (c, d) peeling one SQiSW off the canonical gate of
     * out-of-region chamber point @p p, memoized: the remainder
     * canonicalGate(p) (c x d)^-1 SQiSW^-1 lies in the 2-application
     * region. @throws std::runtime_error when no peel is found.
     */
    struct PeelEntry
    {
        linalg::Matrix c, d;
    };
    const PeelEntry &peelFor(const weyl::WeylPoint &p) const;

    struct AngleKey
    {
        double x, y, z;
        bool operator==(const AngleKey &) const = default;
    };
    struct AngleKeyHash
    {
        std::size_t operator()(const AngleKey &k) const;
    };

    mutable std::mutex mutex_;
    mutable std::unordered_map<AngleKey, std::array<double, 3>,
                               AngleKeyHash>
        angles_;
    mutable std::unordered_map<AngleKey, PeelEntry, AngleKeyHash> peels_;
};

/**
 * Factory for the built-in sets. @p h and @p r parameterize the AshN
 * scheme and are ignored by CZ / SQiSW.
 */
std::shared_ptr<const NativeGateSet>
makeNativeGateSet(NativeKind kind, double h = 0.0, double r = 0.0);

} // namespace device
} // namespace crisc

#endif // CRISC_DEVICE_NATIVE_SET_HH

#include "weyl_cache.hh"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "obs/obs.hh"

namespace crisc {
namespace device {

std::size_t
WeylCache::KeyHash::operator()(const Key &k) const
{
    std::size_t seed = std::hash<double>{}(k.x);
    for (const double v : {k.y, k.z, k.h, k.r})
        seed = detail::hashCombine(seed, v);
    return seed;
}

WeylCache::Entry
WeylCache::lookup(const weyl::WeylPoint &p, double h, double r)
{
    // A NaN coordinate can never match Key::operator== (NaN != NaN),
    // so every lookup of the same poisoned point would miss, synthesize
    // garbage, and insert a fresh entry — unbounded growth. Fail fast
    // instead; infinities are equally unsynthesizable.
    for (const double v : {p.x, p.y, p.z, h, r})
        if (!std::isfinite(v))
            throw std::invalid_argument(
                "WeylCache::lookup: non-finite chamber coordinate");
    const Key key{detail::normZero(p.x), detail::normZero(p.y),
                  detail::normZero(p.z), detail::normZero(h),
                  detail::normZero(r)};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            OBS_COUNT("weyl_cache.hit", 1);
            return it->second;
        }
    }
    // Synthesize outside the lock; a raced duplicate computes the same
    // deterministic entry and emplace keeps whichever landed first.
    Entry e;
    {
        OBS_SPAN("weyl.synthesize");
        e.params = ashn::synthesize(p, h, r);
        e.pulse = ashn::realize(e.params);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    OBS_COUNT("weyl_cache.miss", 1);
    return map_.emplace(key, std::move(e)).first->second;
}

std::size_t
WeylCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::size_t
WeylCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
WeylCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

} // namespace device
} // namespace crisc

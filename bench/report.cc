#include "report.hh"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace crisc {
namespace bench {

namespace {

/** Escapes the JSON string special characters (names are ASCII). */
std::string
escaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Finite doubles round-trip at 17 significant digits; else null. */
std::string
number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
appendMetric(std::string &out, const Metric &m)
{
    out += "{\"name\": \"" + escaped(m.name) +
           "\", \"value\": " + number(m.value) + ", \"unit\": \"" +
           escaped(m.unit) + "\"}";
}

void
appendScenario(std::string &out, const Scenario &s)
{
    out += "    {\"name\": \"";
    out += escaped(s.name);
    out += "\"";
    if (!s.params.empty()) {
        out += ", \"params\": {";
        for (std::size_t i = 0; i < s.params.size(); ++i) {
            if (i)
                out += ", ";
            out += "\"" + escaped(s.params[i].name) +
                   "\": " + number(s.params[i].value);
        }
        out += "}";
    }
    out += ", \"metrics\": [";
    for (std::size_t i = 0; i < s.metrics.size(); ++i) {
        if (i)
            out += ", ";
        appendMetric(out, s.metrics[i]);
    }
    out += "]}";
}

} // namespace

std::string
reportGitSha()
{
#ifdef CRISC_GIT_SHA
    return CRISC_GIT_SHA;
#else
    return "unknown";
#endif
}

bool
reportGitDirty()
{
#if defined(CRISC_GIT_DIRTY) && CRISC_GIT_DIRTY
    return true;
#else
    return false;
#endif
}

std::string
toJson(const Report &report)
{
    std::string out = "{\n";
    out += "  \"schema_version\": " + std::to_string(report.schemaVersion) +
           ",\n";
    out += "  \"name\": \"" + escaped(report.name) + "\",\n";
    out += "  \"git_sha\": \"" + escaped(report.gitSha) + "\",\n";
    out += std::string("  \"git_dirty\": ") +
           (report.gitDirty ? "true" : "false") + ",\n";
    out += "  \"simd_backend\": \"" + escaped(report.simdBackend) + "\",\n";
    out += "  \"simd_compiled\": [";
    for (std::size_t i = 0; i < report.simdCompiled.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"" + escaped(report.simdCompiled[i]) + "\"";
    }
    out += "],\n";
    out += "  \"simd_lanes\": " + std::to_string(report.simdLanes) + ",\n";
    out += "  \"threads\": " + std::to_string(report.threads) + ",\n";
    out += std::string("  \"smoke\": ") + (report.smoke ? "true" : "false") +
           ",\n";
    out += "  \"obs\": {\"backend\": \"" + escaped(report.obsBackend) +
           "\", \"enabled\": " + (report.obsEnabled ? "true" : "false");
    if (!report.obsSpans.empty()) {
        out += ", \"spans\": [\n";
        for (std::size_t i = 0; i < report.obsSpans.size(); ++i) {
            const ObsSpanRow &s = report.obsSpans[i];
            out += "    {\"name\": \"" + escaped(s.name) +
                   "\", \"count\": " + std::to_string(s.count) +
                   ", \"total_ns\": " + std::to_string(s.totalNs) +
                   ", \"mean_ns\": " + number(s.meanNs) +
                   ", \"p95_ns\": " + std::to_string(s.p95Ns) + "}";
            if (i + 1 < report.obsSpans.size())
                out += ",";
            out += "\n";
        }
        out += "  ]";
    }
    out += "},\n";
    out += "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < report.scenarios.size(); ++i) {
        appendScenario(out, report.scenarios[i]);
        if (i + 1 < report.scenarios.size())
            out += ",";
        out += "\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
writeReport(const Report &report, const std::string &dir)
{
    const std::string base = dir.empty() ? std::string(".") : dir;
    std::filesystem::create_directories(base);
    const std::string path = base + "/BENCH_" + report.name + ".json";
    std::ofstream file(path);
    if (!file)
        throw std::runtime_error("writeReport: cannot open " + path);
    file << toJson(report);
    if (!file.flush())
        throw std::runtime_error("writeReport: write failed for " + path);
    return path;
}

} // namespace bench
} // namespace crisc

/**
 * @file
 * Machine-readable benchmark reports. The unified runner
 * (bench_runner.cc) fills one Report per benchmark family and writes it
 * as BENCH_<name>.json, the schema-versioned perf-trajectory format CI
 * uploads as an artifact:
 *
 *   {
 *     "schema_version": 3,
 *     "name": "micro",
 *     "git_sha": "abc1234",           // configure-time snapshot
 *     "git_dirty": false,             // working tree dirty at configure
 *     "simd_backend": "avx2",         // runtime-resolved: sim::backendName()
 *     "simd_compiled": ["scalar", "avx2", "avx512"],
 *                                     // every backend in the binary
 *     "simd_lanes": 4,
 *     "threads": 8,                   // hardware concurrency
 *     "smoke": false,
 *     "obs": {                        // tracing subsystem (src/obs/)
 *       "backend": "ring",            // obs::backendName(); "off" when
 *                                     // compiled with -DCRISC_OBS=OFF
 *       "enabled": true,              // a TraceSession covered this run
 *       "spans": [                    // per-span-name aggregates, only
 *                                     // when enabled
 *         { "name": "sim.sweep", "count": 1184,
 *           "total_ns": 812345678, "mean_ns": 686102.1,
 *           "p95_ns": 912345 }
 *       ]
 *     },
 *     "scenarios": [
 *       { "name": "apply1q/n=20",
 *         "params": { "qubits": 20 },
 *         "metrics": [
 *           { "name": "scalar_ns_per_op", "value": 1.1e6, "unit": "ns" },
 *           { "name": "simd_ns_per_op",   "value": 3.2e5, "unit": "ns" },
 *           { "name": "speedup_vs_scalar","value": 3.4,   "unit": "x" }
 *         ] }
 *     ]
 *   }
 *
 * Schema history: v2 added git_dirty (a bare sha from a dirty tree
 * misattributes perf results) and the "obs" block. v3 made
 * simd_backend the runtime-resolved dispatch choice (it was the
 * compile-time backend through v2) and added simd_compiled, the list
 * of kernel backends carried by the binary — one artifact now covers
 * every ISA, and the `dispatch` family forces each in turn.
 *
 * Only a tiny, dependency-free subset of JSON is produced: objects,
 * arrays, strings (ASCII, escaped), booleans, unsigned integers, and
 * finite doubles printed with 17 significant digits (NaN/inf serialize
 * as null). Scenario and metric names are free-form; the metric names
 * contract consumers rely on for regression tracking are
 * "speedup_vs_scalar" (micro family, SIMD kernels; dispatch family,
 * per forced backend), "speedup_vs_unblocked" (blocked family,
 * BENCH_blocked_sweep.json: cache-blocked plan execution at n >= 26,
 * expected >= 1.3x once the statevector exceeds the LLC),
 * "dispatch_overhead_pct" (dispatch family: the per-sweep table fetch
 * vs a hoisted table pointer, contract < 1%), and
 * "exchange_bytes_per_crossing" with "speedup_vs_unsharded" (shard
 * family, BENCH_shard_scaling.json: sharded statevector execution;
 * the per-crossing payload per shard pair is bounded by
 * 2 * 2^(n-s) * 16 bytes — a full-slice exchange hits the bound,
 * the remap lowering halves it — while speedup_vs_unsharded
 * documents the in-process cost of the shard seam).
 */

#ifndef CRISC_BENCH_REPORT_HH
#define CRISC_BENCH_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace crisc {
namespace bench {

/** One measured value. */
struct Metric
{
    std::string name;
    double value = 0.0;
    std::string unit; ///< "ns", "x", "ops/s", "s", ... free-form.
};

/** A named parameter of a scenario (serialized as a number). */
struct Param
{
    std::string name;
    double value = 0.0;
};

/** One benchmark case within a report. */
struct Scenario
{
    std::string name;
    std::vector<Param> params;
    std::vector<Metric> metrics;
};

/** One per-span-name trace aggregate (mirrors obs::SpanSummary;
 *  duplicated here so the report schema has no obs dependency). */
struct ObsSpanRow
{
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    double meanNs = 0.0;
    std::uint64_t p95Ns = 0;
};

/** A whole BENCH_<name>.json document. */
struct Report
{
    int schemaVersion = 3;
    std::string name;        ///< report family: "micro", "fig7", ...
    std::string gitSha;      ///< from reportGitSha().
    bool gitDirty = false;   ///< from reportGitDirty().
    std::string simdBackend; ///< runtime-resolved: sim::backendName().
    std::vector<std::string> simdCompiled; ///< sim::compiledBackends().
    std::size_t simdLanes = 1;
    unsigned threads = 1;    ///< hardware concurrency at run time.
    bool smoke = false;      ///< reduced CI sizes.
    std::string obsBackend = "off"; ///< obs::backendName().
    bool obsEnabled = false; ///< a TraceSession covered this run.
    std::vector<ObsSpanRow> obsSpans; ///< per-span aggregates (traced).
    std::vector<Scenario> scenarios;
};

/** The git revision compiled into the runner ("unknown" if absent). */
std::string reportGitSha();

/** Whether the working tree was dirty when the build was configured —
 *  a bare sha from a dirty tree misattributes perf results. */
bool reportGitDirty();

/** Serializes a report to a JSON string (trailing newline included). */
std::string toJson(const Report &report);

/**
 * Writes the report to <dir>/BENCH_<name>.json.
 * @return the path written.
 * @throws std::runtime_error if the file cannot be opened.
 */
std::string writeReport(const Report &report, const std::string &dir);

} // namespace bench
} // namespace crisc

#endif // CRISC_BENCH_REPORT_HH

/**
 * @file
 * Unified benchmark runner: wraps the library's nine benchmark
 * families — kernel microbenchmarks (micro), state-parallel sweep
 * scaling (sweep), SoA trajectory batching (batch), cache-blocked plan
 * execution (blocked), sharded statevector execution (shard),
 * transpiler batch throughput (transpile), the Figure-7 quantum-volume
 * harness (fig7), the tracing-overhead A/B (obs), and the runtime ISA
 * dispatch sweep (dispatch) — behind one dependency-free CLI and emits
 * schema-versioned BENCH_<name>.json reports (see report.hh for the
 * schema). CI runs `bench_runner --smoke` on every Release build and
 * uploads the JSON as an artifact, so the performance trajectory is
 * machine-readable per commit.
 *
 *   bench_runner [micro|sweep|batch|blocked|shard|transpile|fig7|obs
 *                 |dispatch|all ...]
 *                [--scenario FAMILY] [--smoke] [--out-dir DIR]
 *                [--trace PATH] [--list]
 *
 * The micro family times every SIMD kernel against the sim::scalar
 * reference baseline and records speedup_vs_scalar; the sweep family
 * times chunked pool execution of single kernel sweeps against one
 * thread and records speedup_vs_1thread; the batch family times
 * SoA-batched plan execution (SIMD lanes across trajectories) against
 * per-trajectory execution and records speedup_vs_trajparallel; the
 * obs family pins the disabled-tracing overhead of the instrumented
 * kernel paths (serial and batched) against the raw kernel call; the
 * dispatch family forces every compiled+host-supported kernel backend
 * in turn (sim::setDispatchOverride — the same binary carries them
 * all) and records per-backend ns/op plus the <1% dispatch-indirection
 * contract; the runtime-resolved SIMD backend, its lane width, and the
 * full compiled-backend list are stamped into every report.
 *
 * --trace PATH records every selected family under an obs
 * TraceSession, merges the per-span aggregates into each family's
 * BENCH json ("obs" block), and writes one combined Chrome trace-event
 * JSON to PATH (open in chrome://tracing or https://ui.perfetto.dev).
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "../tests/sim_test_util.hh" // shared randomState fixture
#include "circuit/circuit.hh"
#include "device/device.hh"
#include "linalg/random.hh"
#include "obs/obs.hh"
#include "qop/gates.hh"
#include "qv/qv.hh"
#include "report.hh"
#include "sim/batch.hh"
#include "sim/cache.hh"
#include "sim/dispatch.hh"
#include "sim/engine.hh"
#include "sim/kernels.hh"
#include "sim/shard.hh"
#include "sim/transport.hh"
#include "transpile/transpile.hh"

using namespace crisc;
using linalg::Complex;
using linalg::CVector;
using linalg::Matrix;
using testutil::randomState;

namespace {

struct Options
{
    bool micro = true;
    bool sweep = true;
    bool batch = true;
    bool blocked = true;
    bool shard = true;
    bool transpile = true;
    bool fig7 = true;
    bool obs = true;
    bool dispatch = true;
    bool smoke = false;
    std::string outDir = ".";
    std::string trace; ///< Chrome-trace output path; empty = no tracing.
};

/** Wall-clock seconds of fn(), best of @p rounds runs. */
template <typename Fn>
double
bestSeconds(int rounds, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < rounds; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

bench::Report
reportSkeleton(const std::string &name, bool smoke)
{
    bench::Report rep;
    rep.name = name;
    rep.gitSha = bench::reportGitSha();
    rep.gitDirty = bench::reportGitDirty();
    rep.simdBackend = sim::simdBackendName();
    for (const sim::Backend b : sim::compiledBackends())
        rep.simdCompiled.push_back(sim::backendName(b));
    rep.simdLanes = sim::simdLanes();
    rep.threads = std::max(1u, std::thread::hardware_concurrency());
    rep.smoke = smoke;
    rep.obsBackend = obs::backendName();
    rep.obsEnabled = obs::enabled();
    return rep;
}

/**
 * Times one kernel pair (scalar baseline vs. dispatching kernel) over
 * a whole-register qubit rotation and appends a scenario with ns/op
 * and speedup_vs_scalar. @p ops is the number of kernel applications
 * per timed round.
 */
template <typename ScalarFn, typename SimdFn>
void
addKernelScenario(bench::Report &rep, const std::string &name,
                  std::size_t n, std::size_t ops, ScalarFn &&scalarFn,
                  SimdFn &&simdFn)
{
    const double tScalar = bestSeconds(3, scalarFn);
    const double tSimd = bestSeconds(3, simdFn);
    const double nsScalar = 1e9 * tScalar / static_cast<double>(ops);
    const double nsSimd = 1e9 * tSimd / static_cast<double>(ops);
    const double speedup = nsSimd > 0.0 ? nsScalar / nsSimd : 0.0;
    bench::Scenario sc;
    sc.name = name + "/n=" + std::to_string(n);
    sc.params = {{"qubits", static_cast<double>(n)}};
    sc.metrics = {{"scalar_ns_per_op", nsScalar, "ns"},
                  {"simd_ns_per_op", nsSimd, "ns"},
                  {"speedup_vs_scalar", speedup, "x"}};
    std::printf("  %-22s scalar %10.1f ns/op   simd %10.1f ns/op   "
                "speedup %.2fx\n",
                sc.name.c_str(), nsScalar, nsSimd, speedup);
    rep.scenarios.push_back(std::move(sc));
}

bench::Report
runMicro(const Options &opt)
{
    std::printf("== micro (kernel SIMD backend: %s, %zu lanes) ==\n",
                sim::simdBackendName(), sim::simdLanes());
    bench::Report rep = reportSkeleton("micro", opt.smoke);

    const std::vector<std::size_t> widths =
        opt.smoke ? std::vector<std::size_t>{12, 20}
                  : std::vector<std::size_t>{12, 16, 20};
    linalg::Rng rng(7);
    const Matrix u2 = linalg::haarUnitary(rng, 2);
    const Complex m2[4] = {u2(0, 0), u2(0, 1), u2(1, 0), u2(1, 1)};
    const Matrix u4 = linalg::haarUnitary(rng, 4);
    const Matrix rz = qop::rz(0.5371);

    for (const std::size_t n : widths) {
        CVector amps = randomState(rng, n);
        // Each timed round sweeps every qubit (or qubit pair) once, so
        // the ns/op figure averages all strides, including the scalar
        // fallback's short-stride tail.
        addKernelScenario(
            rep, "apply1q", n, n,
            [&] {
                for (std::size_t q = 0; q < n; ++q)
                    sim::scalar::apply1q(amps.data(), n, q, m2);
            },
            [&] {
                for (std::size_t q = 0; q < n; ++q)
                    sim::apply1q(amps.data(), n, q, m2);
            });
        addKernelScenario(
            rep, "apply1qDiag", n, n,
            [&] {
                for (std::size_t q = 0; q < n; ++q)
                    sim::scalar::apply1qDiag(amps.data(), n, q, rz(0, 0),
                                             rz(1, 1));
            },
            [&] {
                for (std::size_t q = 0; q < n; ++q)
                    sim::apply1qDiag(amps.data(), n, q, rz(0, 0), rz(1, 1));
            });
        addKernelScenario(
            rep, "applyPauliY", n, n,
            [&] {
                for (std::size_t q = 0; q < n; ++q)
                    sim::scalar::applyPauli(amps.data(), n, q, 2);
            },
            [&] {
                for (std::size_t q = 0; q < n; ++q)
                    sim::applyPauli(amps.data(), n, q, 2);
            });
        addKernelScenario(
            rep, "apply2q", n, n - 1,
            [&] {
                for (std::size_t q = 0; q + 1 < n; ++q)
                    sim::scalar::apply2q(amps.data(), n, q, q + 1,
                                         u4.data());
            },
            [&] {
                for (std::size_t q = 0; q + 1 < n; ++q)
                    sim::apply2q(amps.data(), n, q, q + 1, u4.data());
            });
    }

    // Plan-compiler quad fusion: a 1q-dressed entangler layer circuit,
    // fused (2q x (1q (x) 1q) kernels) vs. unfused plans.
    {
        const std::size_t n = opt.smoke ? 12 : 16;
        const std::size_t layers = 6;
        circuit::Circuit c(n);
        linalg::Rng crng(11);
        for (std::size_t l = 0; l < layers; ++l) {
            for (std::size_t q = 0; q < n; ++q)
                c.add(linalg::haarUnitary(crng, 2), {q});
            for (std::size_t q = 1 - (l % 2); q + 1 < n; q += 2)
                c.add(linalg::haarUnitary(crng, 4), {q, q + 1});
        }
        const sim::Plan fused = sim::compile(
            c, {.fuseSingleQubit = true, .fuseTwoQubit = true});
        const sim::Plan unfused = sim::compile(
            c, {.fuseSingleQubit = true, .fuseTwoQubit = false});
        CVector amps(std::size_t{1} << n);
        const auto runPlan = [&](const sim::Plan &p) {
            std::fill(amps.begin(), amps.end(), Complex{0.0, 0.0});
            amps[0] = 1.0;
            sim::execute(p, amps.data());
        };
        const double tF = bestSeconds(3, [&] { runPlan(fused); });
        const double tU = bestSeconds(3, [&] { runPlan(unfused); });
        const double perGateF = 1e9 * tF / static_cast<double>(c.size());
        const double perGateU = 1e9 * tU / static_cast<double>(c.size());
        bench::Scenario sc;
        sc.name = "engine_fuse2q/n=" + std::to_string(n);
        sc.params = {{"qubits", static_cast<double>(n)},
                     {"source_gates", static_cast<double>(c.size())},
                     {"fused_ops", static_cast<double>(fused.ops().size())},
                     {"unfused_ops",
                      static_cast<double>(unfused.ops().size())}};
        sc.metrics = {
            {"fused_ns_per_gate", perGateF, "ns"},
            {"unfused_ns_per_gate", perGateU, "ns"},
            {"speedup_vs_unfused", perGateF > 0.0 ? perGateU / perGateF
                                                  : 0.0,
             "x"}};
        std::printf("  %-22s unfused %8.1f ns/gate   fused %8.1f ns/gate "
                    "  speedup %.2fx (%zu -> %zu ops)\n",
                    sc.name.c_str(), perGateU, perGateF,
                    perGateF > 0.0 ? perGateU / perGateF : 0.0,
                    unfused.ops().size(), fused.ops().size());
        rep.scenarios.push_back(std::move(sc));
    }

    return rep;
}

/**
 * State-parallel sweep scaling (BENCH_sweep_scaling.json): chunked
 * pool execution of one kernel sweep (engine.hh ExecOptions) against
 * the same sweep on one thread. Smoke shrinks the register; the
 * speedup_vs_1thread metric at apply2q/threads=4 is the contract
 * consumers track (>= 2x expected on >= 4-core hardware; results are
 * bit-identical at every point, pinned by test_simd).
 */
bench::Report
runSweep(const Options &opt)
{
    std::printf("== sweep_scaling (state-parallel kernel sweeps, "
                "backend %s) ==\n",
                sim::simdBackendName());
    bench::Report rep = reportSkeleton("sweep_scaling", opt.smoke);

    const std::size_t n = opt.smoke ? 18 : 22;
    const std::vector<std::size_t> threadCounts{1, 2, 4};
    const int sweepsPerRound = opt.smoke ? 8 : 2;

    linalg::Rng rng(17);
    CVector amps = randomState(rng, n);

    sim::KernelOp op1q;
    op1q.kind = sim::KernelKind::OneQ;
    op1q.q0 = n / 2;
    {
        const Matrix u = linalg::haarUnitary(rng, 2);
        for (std::size_t i = 0; i < 4; ++i)
            op1q.m[i] = u(i / 2, i % 2);
    }
    sim::KernelOp op2q;
    op2q.kind = sim::KernelKind::TwoQ;
    op2q.q0 = n / 3;
    op2q.q1 = (2 * n) / 3;
    {
        const Matrix u = linalg::haarUnitary(rng, 4);
        for (std::size_t i = 0; i < 16; ++i)
            op2q.m[i] = u(i / 4, i % 4);
    }

    struct Case
    {
        const char *name;
        const sim::KernelOp *op;
    };
    for (const Case &c : {Case{"apply1q", &op1q}, Case{"apply2q", &op2q}}) {
        double ns1 = 0.0;
        for (const std::size_t threads : threadCounts) {
            sim::ThreadPool pool(threads);
            sim::ExecOptions exec;
            exec.pool = &pool;
            exec.threads = threads;
            const double t = bestSeconds(3, [&] {
                for (int s = 0; s < sweepsPerRound; ++s)
                    sim::executeOp(*c.op, amps.data(), n, exec);
            });
            const double ns =
                1e9 * t / static_cast<double>(sweepsPerRound);
            if (threads == 1)
                ns1 = ns;
            const double speedup = ns > 0.0 ? ns1 / ns : 0.0;
            bench::Scenario sc;
            sc.name = std::string(c.name) + "/n=" + std::to_string(n) +
                      "/threads=" + std::to_string(threads);
            sc.params = {{"qubits", static_cast<double>(n)},
                         {"threads", static_cast<double>(threads)}};
            sc.metrics = {{"ns_per_sweep", ns, "ns"},
                          {"speedup_vs_1thread", speedup, "x"}};
            std::printf("  %-26s %12.1f ns/sweep   speedup %.2fx\n",
                        sc.name.c_str(), ns, speedup);
            rep.scenarios.push_back(std::move(sc));
        }
    }

    return rep;
}

/**
 * SoA-batched trajectory execution (BENCH_batch_soa.json): one compiled
 * plan applied to T statevectors either one at a time (the per-slot
 * work of the trajectory-parallel arm, with per-state SIMD) or in SoA
 * batches of B lanes via sim::executeBatched (SIMD lanes across
 * trajectories). speedup_vs_trajparallel at width <= 14 with
 * B = simdLanes() is the contract consumers track (>= 1.5x expected on
 * AVX2: short-stride sweeps starve per-state vectors, the lane-major
 * SoA layout never does). Results are bit-identical on every path,
 * pinned by test_batch.
 */
bench::Report
runBatch(const Options &opt)
{
    std::printf("== batch_soa (SoA trajectory batching, backend %s, "
                "%zu lanes) ==\n",
                sim::simdBackendName(), sim::simdLanes());
    bench::Report rep = reportSkeleton("batch_soa", opt.smoke);

    const std::vector<std::size_t> widths =
        opt.smoke ? std::vector<std::size_t>{10, 14}
                  : std::vector<std::size_t>{8, 10, 12, 14, 18, 22};
    const std::vector<std::size_t> batches =
        opt.smoke ? std::vector<std::size_t>{1, 4, 8}
                  : std::vector<std::size_t>{1, 4, 8, 16};
    const int rounds = opt.smoke ? 2 : 3;
    // Skip configs whose SoA arrays would exceed 2^25 amplitude-lanes
    // (0.5 GiB of split doubles) — the wide end only needs small B to
    // make its point anyway.
    const std::size_t maxAmpLanes = std::size_t{1} << 25;

    linalg::Rng rng(29);
    for (const std::size_t n : widths) {
        // QV-like plan: two layers of Haar SU(4) blocks on adjacent
        // pairs, covering every stride down to the shortest (where the
        // per-state path falls back to scalar kernels).
        circuit::Circuit c(n);
        for (std::size_t layer = 0; layer < 2; ++layer)
            for (std::size_t q = layer % 2; q + 1 < n; q += 2)
                c.add(linalg::haarSU(rng, 4), {q, q + 1});
        const sim::Plan plan = sim::compile(c);
        const std::size_t dim = std::size_t{1} << n;
        const std::size_t T = n <= 14 ? 16 : 8;

        volatile double sink = 0.0;
        const double tSerial = bestSeconds(rounds, [&] {
            for (std::size_t t = 0; t < T; ++t) {
                CVector amps(dim, Complex{0.0, 0.0});
                amps[0] = 1.0;
                sim::execute(plan, amps.data());
                sink = sink + amps[dim - 1].real();
            }
        });
        const double nsSerial = 1e9 * tSerial / static_cast<double>(T);

        for (const std::size_t B : batches) {
            if (dim * B > maxAmpLanes)
                continue;
            const double tBatch = bestSeconds(rounds, [&] {
                for (std::size_t first = 0; first < T; first += B) {
                    const std::size_t lanes = std::min(B, T - first);
                    sim::BatchState batch(n, lanes);
                    sim::executeBatched(plan, batch);
                    sink = sink + batch.amp(dim - 1, 0).real();
                }
            });
            const double nsBatch =
                1e9 * tBatch / static_cast<double>(T);
            const double speedup =
                nsBatch > 0.0 ? nsSerial / nsBatch : 0.0;
            bench::Scenario sc;
            sc.name = "batch/n=" + std::to_string(n) +
                      "/B=" + std::to_string(B);
            sc.params = {{"qubits", static_cast<double>(n)},
                         {"batch", static_cast<double>(B)},
                         {"trajectories", static_cast<double>(T)}};
            sc.metrics = {
                {"ns_per_trajectory", nsBatch, "ns"},
                {"baseline_ns_per_trajectory", nsSerial, "ns"},
                {"speedup_vs_trajparallel", speedup, "x"}};
            std::printf("  %-18s %12.1f ns/traj   per-state %12.1f "
                        "ns/traj   speedup %.2fx\n",
                        sc.name.c_str(), nsBatch, nsSerial, speedup);
            rep.scenarios.push_back(std::move(sc));
        }
    }

    return rep;
}

/**
 * Cache-blocked plan execution (BENCH_blocked_sweep.json): a plan of
 * two brick layers of Haar SU(4) quads on the highest-index (shortest-
 * stride) qubits — every op blockable at the auto exponent — executed
 * unblocked (one full-register DRAM stream per op) vs. blocked
 * (sim::executeBlocked: all ops applied to one L2-resident 2^b block
 * before the next). speedup_vs_unblocked at n >= 26 is the contract
 * consumers track (>= 1.3x expected once the statevector falls out of
 * the LLC); results are bitwise-pinned by test_blocked. Smoke runs one
 * in-cache width (n=20) to exercise the path cheaply; the full run
 * sweeps n = 24, 26, 28 (0.25, 1, 4 GiB statevectors).
 */
bench::Report
runBlocked(const Options &opt)
{
    std::printf("== blocked_sweep (cache-blocked plan execution, "
                "block bytes %zu) ==\n",
                sim::cacheBlockBytes());
    bench::Report rep = reportSkeleton("blocked_sweep", opt.smoke);

    const std::vector<std::size_t> widths =
        opt.smoke ? std::vector<std::size_t>{20}
                  : std::vector<std::size_t>{24, 26, 28};
    const int rounds = opt.smoke ? 3 : 2;

    linalg::Rng rng(41);
    for (const std::size_t n : widths) {
        // Two alternating brick layers of SU(4) quads on the eight
        // highest-index qubits: min target qubit n - 8, so every op is
        // blockable at any exponent >= 8, and each sweep streams the
        // whole register (the blocking win is pure memory locality).
        circuit::Circuit c(n);
        for (std::size_t layer = 0; layer < 2; ++layer)
            for (std::size_t q = n - 8 + layer; q + 1 < n; q += 2)
                c.add(linalg::haarSU(rng, 4), {q, q + 1});
        const sim::Plan plan = sim::compile(c);
        const std::size_t b = sim::autoBlockQubits(n);
        const std::size_t blocks = plan.dim() >> b;
        const double ops = static_cast<double>(plan.ops().size());

        CVector amps(plan.dim(), Complex{0.0, 0.0});
        amps[0] = 1.0;
        volatile double sink = 0.0;

        const double tUnblocked = bestSeconds(rounds, [&] {
            sim::execute(plan, amps.data());
            sink = sink + amps[0].real();
        });
        const double tBlocked = bestSeconds(rounds, [&] {
            sim::executeBlocked(plan, amps.data(), b, {});
            sink = sink + amps[0].real();
        });

        const double nsUnblocked = 1e9 * tUnblocked / ops;
        const double nsBlocked = 1e9 * tBlocked / ops;
        const double speedup =
            nsBlocked > 0.0 ? nsUnblocked / nsBlocked : 0.0;
        bench::Scenario sc;
        sc.name = "brick8/n=" + std::to_string(n) +
                  "/b=" + std::to_string(b);
        sc.params = {{"qubits", static_cast<double>(n)},
                     {"block_qubits", static_cast<double>(b)},
                     {"blocks", static_cast<double>(blocks)},
                     {"ops", ops}};
        sc.metrics = {{"ns_per_sweep", nsBlocked, "ns"},
                      {"unblocked_ns_per_sweep", nsUnblocked, "ns"},
                      {"speedup_vs_unblocked", speedup, "x"}};
        std::printf("  %-20s unblocked %12.1f ns/sweep   blocked "
                    "%12.1f ns/sweep   speedup %.2fx\n",
                    sc.name.c_str(), nsUnblocked, nsBlocked, speedup);
        rep.scenarios.push_back(std::move(sc));
    }

    return rep;
}

/**
 * Sharded statevector execution (BENCH_shard_scaling.json): a plan of
 * six brick layers of Haar SU(4) quads on the eight lowest-index
 * (longest-stride) qubits, executed sharded at S = 1, 2, 4 shards
 * (sim/shard.hh) against unsharded serial execution. Every layer
 * targets the shard bits, so the schedule is crossing-dominated — the
 * worst case for sharding and the sharpest light on the lowering
 * policy: the Auto lowering remaps the reused shard qubits local once
 * (half-slice permutations) where NaiveExchange pays a full-slice
 * exchange per crossing gate, so crossings and transported bytes both
 * drop (pinned exactly by test_shard). exchange_bytes_per_crossing is
 * the contract consumers track: <= 2 * 2^(n-s) * 16 bytes per shard
 * pair per crossing two-qubit gate (the exchange bound; remaps land at
 * half of it). speedup_vs_unsharded documents the in-process cost of
 * the shard seam — the point of sharding is address-space scaling, not
 * single-box speed. Results are bitwise-pinned by test_shard.
 */
bench::Report
runShard(const Options &opt)
{
    std::printf("== shard_scaling (sharded statevector execution, "
                "backend %s) ==\n",
                sim::simdBackendName());
    bench::Report rep = reportSkeleton("shard_scaling", opt.smoke);

    const std::vector<std::size_t> widths =
        opt.smoke ? std::vector<std::size_t>{20}
                  : std::vector<std::size_t>{24, 26, 28};
    const int rounds = opt.smoke ? 3 : 2;

    linalg::Rng rng(59);
    for (const std::size_t n : widths) {
        circuit::Circuit c(n);
        for (std::size_t layer = 0; layer < 6; ++layer)
            for (std::size_t q = layer % 2; q + 1 < 8; q += 2)
                c.add(linalg::haarSU(rng, 4), {q, q + 1});
        const sim::Plan plan = sim::compile(c);
        const double ops = static_cast<double>(plan.ops().size());

        CVector amps(plan.dim(), Complex{0.0, 0.0});
        amps[0] = 1.0;
        volatile double sink = 0.0;

        const double tUnsharded = bestSeconds(rounds, [&] {
            sim::execute(plan, amps.data());
            sink = sink + amps[0].real();
        });
        const double nsUnsharded = 1e9 * tUnsharded / ops;

        for (const std::size_t s : {0, 1, 2}) {
            const sim::ShardPlan sharded = sim::compileSharded(plan, s);
            const sim::ShardPlan naive = sim::compileSharded(
                plan, s, {.lowering = sim::ShardLowering::NaiveExchange});
            const double S = static_cast<double>(sharded.shardCount());
            const double crossings =
                static_cast<double>(sharded.stats().exchangeOps +
                                    sharded.stats().remapOps);
            const double naiveCrossings =
                static_cast<double>(naive.stats().exchangeOps +
                                    naive.stats().remapOps);

            const double t = bestSeconds(rounds, [&] {
                sim::executeSharded(sharded, amps.data());
                sink = sink + amps[0].real();
            });
            const double ns = 1e9 * t / ops;
            const double speedup = ns > 0.0 ? nsUnsharded / ns : 0.0;

            // One metered run pins the payload actually moved (equal
            // to plannedTransportBytes — asserted by test_shard).
            sim::InProcessTransport transport;
            sim::executeSharded(sharded, amps.data(), {}, &transport);
            const double bytes =
                static_cast<double>(transport.bytesMoved());
            // Per crossing gate per shard pair: a full exchange moves
            // S * slice * 16 bytes, i.e. 2 * 2^(n-s) * 16 per pair.
            const double bytesPerCrossing =
                crossings > 0.0 ? 2.0 * bytes / (S * crossings) : 0.0;
            const double naiveBytes =
                static_cast<double>(naive.plannedTransportBytes());

            bench::Scenario sc;
            sc.name = "brick8/n=" + std::to_string(n) +
                      "/S=" + std::to_string(sharded.shardCount());
            sc.params = {{"qubits", static_cast<double>(n)},
                         {"shards", S},
                         {"shard_bits", static_cast<double>(s)},
                         {"ops", ops},
                         {"remaps",
                          static_cast<double>(sharded.stats().remapOps)},
                         {"exchanges",
                          static_cast<double>(
                              sharded.stats().exchangeOps)},
                         {"naive_crossings", naiveCrossings}};
            sc.metrics = {
                {"ns_per_sweep", ns, "ns"},
                {"unsharded_ns_per_sweep", nsUnsharded, "ns"},
                {"speedup_vs_unsharded", speedup, "x"},
                {"exchange_bytes", bytes, "B"},
                {"exchange_bytes_per_crossing", bytesPerCrossing, "B"},
                {"naive_exchange_bytes", naiveBytes, "B"}};
            std::printf("  %-18s %12.1f ns/sweep   speedup %.2fx   "
                        "%10.0f B moved (naive %10.0f B, crossings "
                        "%.0f vs %.0f)\n",
                        sc.name.c_str(), ns, speedup, bytes, naiveBytes,
                        crossings, naiveCrossings);
            rep.scenarios.push_back(std::move(sc));
        }
    }

    return rep;
}

bench::Report
runTranspile(const Options &opt)
{
    std::printf("== transpile ==\n");
    bench::Report rep = reportSkeleton("transpile", opt.smoke);

    linalg::Rng rng(3);
    const std::size_t batch = opt.smoke ? 12 : 32;
    std::vector<circuit::Circuit> circuits;
    for (std::size_t i = 0; i < batch; ++i) {
        circuit::Circuit c(4);
        for (int g = 0; g < 12; ++g) {
            const std::size_t a = rng.index(4);
            std::size_t b = rng.index(3);
            if (b >= a)
                ++b;
            c.add(linalg::haarUnitary(rng, 4), {a, b});
        }
        circuits.push_back(std::move(c));
    }
    transpile::TranspileOptions topts;
    topts.h = 0.1;

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<int> threadCounts{1, 2};
    if (!opt.smoke && hw > 2)
        threadCounts.push_back(static_cast<int>(hw));
    for (const int threads : threadCounts) {
        const double t = bestSeconds(opt.smoke ? 2 : 3, [&] {
            transpile::transpileBatch(circuits, topts, threads);
        });
        const double cps = static_cast<double>(batch) / t;
        bench::Scenario sc;
        sc.name = "transpileBatch/threads=" + std::to_string(threads);
        sc.params = {{"threads", static_cast<double>(threads)},
                     {"circuits", static_cast<double>(batch)}};
        sc.metrics = {{"circuits_per_second", cps, "ops/s"},
                      {"wall_seconds", t, "s"}};
        std::printf("  %-28s %10.1f circuits/s\n", sc.name.c_str(), cps);
        rep.scenarios.push_back(std::move(sc));
    }

    return rep;
}

bench::Report
runFig7(const Options &opt)
{
    std::printf("== fig7 (quantum volume heavy output) ==\n");
    bench::Report rep = reportSkeleton("fig7", opt.smoke);

    struct Variant
    {
        const char *name;
        device::NativeKind native;
        double cutoff;
    };
    const std::vector<Variant> variants =
        opt.smoke ? std::vector<Variant>{{"AshN r=0",
                                          device::NativeKind::AshN, 0.0}}
                  : std::vector<Variant>{
                        {"AshN r=0", device::NativeKind::AshN, 0.0},
                        {"SQiSW", device::NativeKind::SQiSW, 0.0},
                        {"CZ", device::NativeKind::CZ, 0.0}};
    const std::vector<std::size_t> widths =
        opt.smoke ? std::vector<std::size_t>{3, 5}
                  : std::vector<std::size_t>{3, 4, 5, 6};
    const int circuits = opt.smoke ? 4 : 24;
    const int trajectories = opt.smoke ? 4 : 12;

    for (const Variant &v : variants) {
        for (const std::size_t d : widths) {
            const device::Device dev = device::Device::grid2d(
                v.native, d,
                {.twoQubitError = 0.012, .singleQubitError = 0.001,
                 .h = 0.0, .r = v.cutoff});
            qv::QvConfig cfg;
            cfg.width = d;
            cfg.device = &dev;
            cfg.circuits = circuits;
            cfg.trajectories = trajectories;
            cfg.seed = 1000 + d;
            const qv::QvResult r = qv::heavyOutputExperiment(cfg);
            const double totalTraj =
                static_cast<double>(circuits) * trajectories;
            bench::Scenario sc;
            sc.name = std::string(v.name) + "/d=" + std::to_string(d);
            sc.params = {{"width", static_cast<double>(d)},
                         {"circuits", static_cast<double>(circuits)},
                         {"trajectories", static_cast<double>(trajectories)}};
            sc.metrics = {
                {"heavy_output_proportion", r.heavyOutputProportion, ""},
                {"avg_native_gates", r.avgNativeGatesPerCircuit, "gates"},
                {"wall_seconds", r.wallSeconds, "s"},
                {"trajectories_per_second",
                 r.wallSeconds > 0.0 ? totalTraj / r.wallSeconds : 0.0,
                 "ops/s"}};
            std::printf("  %-18s hop %.3f   %8.1f traj/s\n",
                        sc.name.c_str(), r.heavyOutputProportion,
                        r.wallSeconds > 0.0 ? totalTraj / r.wallSeconds
                                            : 0.0);
            rep.scenarios.push_back(std::move(sc));
        }
    }

    return rep;
}

/**
 * Tracing-overhead A/B (BENCH_obs_overhead.json): one full-register
 * apply2q sweep timed three ways — the raw kernel call (baseline), the
 * instrumented sim::executeOp path with tracing disabled, and the same
 * path with tracing enabled. The disabled_overhead_pct metric is the
 * zero-cost-when-off contract: the instrumented path must stay within
 * 1% of the raw kernel when the flag is off (span + counter sites cost
 * one relaxed load and a branch per sweep, amortized over 2^n
 * amplitudes). enabled_overhead_pct documents the cost of actually
 * recording.
 */
bench::Report
runObsOverhead(const Options &opt)
{
    std::printf("== obs_overhead (tracing A/B, obs backend: %s) ==\n",
                obs::backendName());
    bench::Report rep = reportSkeleton("obs_overhead", opt.smoke);

    const std::size_t n = opt.smoke ? 16 : 20;
    const int sweepsPerRound = opt.smoke ? 8 : 4;
    const int rounds = 5;

    linalg::Rng rng(23);
    CVector amps = randomState(rng, n);
    sim::KernelOp op;
    op.kind = sim::KernelKind::TwoQ;
    op.q0 = n / 3;
    op.q1 = (2 * n) / 3;
    const Matrix u = linalg::haarUnitary(rng, 4);
    for (std::size_t i = 0; i < 16; ++i)
        op.m[i] = u(i / 4, i % 4);

    // Serial ExecOptions so the A/B isolates instrumentation overhead,
    // not pool dispatch.
    const sim::ExecOptions exec;

    const double tBase = bestSeconds(rounds, [&] {
        for (int s = 0; s < sweepsPerRound; ++s)
            sim::apply2q(amps.data(), n, op.q0, op.q1, op.m.data());
    });

    // The runner may be inside a --trace session; restore its flag after
    // forcing each leg's state.
    const bool outerEnabled = obs::enabled();
    obs::setEnabled(false);
    const double tDisabled = bestSeconds(rounds, [&] {
        for (int s = 0; s < sweepsPerRound; ++s)
            sim::executeOp(op, amps.data(), n, exec);
    });

    double tEnabled = 0.0;
    if (obs::compiledIn()) {
        // Record for real: reuse the active --trace session if there is
        // one, else run a throwaway local session.
        obs::TraceSession local;
        if (outerEnabled)
            obs::setEnabled(true);
        else
            local.start();
        tEnabled = bestSeconds(rounds, [&] {
            for (int s = 0; s < sweepsPerRound; ++s)
                sim::executeOp(op, amps.data(), n, exec);
        });
        if (!outerEnabled)
            local.stop();
    }
    obs::setEnabled(outerEnabled);

    const double perSweep = 1.0 / static_cast<double>(sweepsPerRound);
    const double nsBase = 1e9 * tBase * perSweep;
    const double nsDisabled = 1e9 * tDisabled * perSweep;
    const double nsEnabled = 1e9 * tEnabled * perSweep;
    const double disabledPct =
        nsBase > 0.0 ? 100.0 * (nsDisabled - nsBase) / nsBase : 0.0;
    const double enabledPct =
        nsBase > 0.0 && obs::compiledIn()
            ? 100.0 * (nsEnabled - nsBase) / nsBase
            : 0.0;

    bench::Scenario sc;
    sc.name = "apply2q_sweep/n=" + std::to_string(n);
    sc.params = {{"qubits", static_cast<double>(n)},
                 {"sweeps_per_round", static_cast<double>(sweepsPerRound)}};
    sc.metrics = {{"baseline_ns_per_sweep", nsBase, "ns"},
                  {"disabled_ns_per_sweep", nsDisabled, "ns"},
                  {"enabled_ns_per_sweep", nsEnabled, "ns"},
                  {"disabled_overhead_pct", disabledPct, "%"},
                  {"enabled_overhead_pct", enabledPct, "%"}};
    std::printf("  %-22s base %10.1f ns   off %10.1f ns (%+.2f%%)   "
                "on %10.1f ns (%+.2f%%)\n",
                sc.name.c_str(), nsBase, nsDisabled, disabledPct, nsEnabled,
                enabledPct);
    rep.scenarios.push_back(std::move(sc));

    // Batched-sweep leg: the same zero-cost-when-off contract for the
    // SoA execution path (sim::executeOpBatched vs. the raw batched
    // kernel), at a smaller width times the batch so the work per
    // sweep is comparable.
    {
        const std::size_t nb = opt.smoke ? 12 : 16;
        const std::size_t B = 8;
        sim::BatchState batch(nb, B);
        sim::KernelOp opb;
        opb.kind = sim::KernelKind::TwoQ;
        opb.q0 = nb / 3;
        opb.q1 = (2 * nb) / 3;
        const Matrix ub = linalg::haarUnitary(rng, 4);
        for (std::size_t i = 0; i < 16; ++i)
            opb.m[i] = ub(i / 4, i % 4);

        const double tBaseB = bestSeconds(rounds, [&] {
            for (int s = 0; s < sweepsPerRound; ++s)
                sim::apply2qBatch(batch.re(), batch.im(), nb, B, opb.q0,
                                  opb.q1, opb.m.data());
        });
        obs::setEnabled(false);
        const double tDisabledB = bestSeconds(rounds, [&] {
            for (int s = 0; s < sweepsPerRound; ++s)
                sim::executeOpBatched(opb, batch, exec);
        });
        double tEnabledB = 0.0;
        if (obs::compiledIn()) {
            obs::TraceSession local;
            if (outerEnabled)
                obs::setEnabled(true);
            else
                local.start();
            tEnabledB = bestSeconds(rounds, [&] {
                for (int s = 0; s < sweepsPerRound; ++s)
                    sim::executeOpBatched(opb, batch, exec);
            });
            if (!outerEnabled)
                local.stop();
        }
        obs::setEnabled(outerEnabled);

        const double nsBaseB = 1e9 * tBaseB * perSweep;
        const double nsDisabledB = 1e9 * tDisabledB * perSweep;
        const double nsEnabledB = 1e9 * tEnabledB * perSweep;
        const double disabledPctB =
            nsBaseB > 0.0 ? 100.0 * (nsDisabledB - nsBaseB) / nsBaseB
                          : 0.0;
        const double enabledPctB =
            nsBaseB > 0.0 && obs::compiledIn()
                ? 100.0 * (nsEnabledB - nsBaseB) / nsBaseB
                : 0.0;

        bench::Scenario scb;
        scb.name = "apply2qBatch_sweep/n=" + std::to_string(nb) +
                   "/B=" + std::to_string(B);
        scb.params = {
            {"qubits", static_cast<double>(nb)},
            {"batch", static_cast<double>(B)},
            {"sweeps_per_round", static_cast<double>(sweepsPerRound)}};
        scb.metrics = {{"baseline_ns_per_sweep", nsBaseB, "ns"},
                       {"disabled_ns_per_sweep", nsDisabledB, "ns"},
                       {"enabled_ns_per_sweep", nsEnabledB, "ns"},
                       {"disabled_overhead_pct", disabledPctB, "%"},
                       {"enabled_overhead_pct", enabledPctB, "%"}};
        std::printf("  %-22s base %10.1f ns   off %10.1f ns (%+.2f%%)   "
                    "on %10.1f ns (%+.2f%%)\n",
                    scb.name.c_str(), nsBaseB, nsDisabledB, disabledPctB,
                    nsEnabledB, enabledPctB);
        rep.scenarios.push_back(std::move(scb));
    }

    return rep;
}

/**
 * Runtime ISA dispatch sweep (BENCH_dispatch_backends.json): one binary
 * carries every kernel backend the compiler could build, so this family
 * forces each compiled+host-supported backend in turn
 * (sim::setDispatchOverride — the in-process twin of
 * CRISC_SIMD_DISPATCH) and times the same full-register apply1q /
 * apply2q sweeps the micro family uses, recording per-backend ns/op and
 * speedup_vs_scalar. The closing scenario pins the cost of runtime
 * dispatch itself: an apply2q sweep through the public wrapper (one
 * activeKernels() fetch + indirect call per sweep) vs. the same sweep
 * through a hoisted table pointer. dispatch_overhead_pct is the
 * contract consumers track — < 1%, like the obs family's
 * zero-cost-when-off bound (the fetch amortizes over 2^n amplitudes).
 */
bench::Report
runDispatch(const Options &opt)
{
    std::printf("== dispatch_backends (runtime ISA dispatch, resolved "
                "%s) ==\n",
                sim::backendName());
    bench::Report rep = reportSkeleton("dispatch_backends", opt.smoke);

    // Scalar leads so every later backend has its baseline; the rest
    // follow in probe order.
    std::vector<sim::Backend> selectable{sim::Backend::Scalar};
    for (const sim::Backend b : sim::compiledBackends())
        if (b != sim::Backend::Scalar && sim::hostSupports(b))
            selectable.push_back(b);

    const std::vector<std::size_t> widths =
        opt.smoke ? std::vector<std::size_t>{12, 20}
                  : std::vector<std::size_t>{12, 16, 20};
    linalg::Rng rng(53);
    const Matrix u2 = linalg::haarUnitary(rng, 2);
    const Complex m2[4] = {u2(0, 0), u2(0, 1), u2(1, 0), u2(1, 1)};
    const Matrix u4 = linalg::haarUnitary(rng, 4);

    for (const std::size_t n : widths) {
        CVector amps = randomState(rng, n);
        struct Sweep
        {
            const char *name;
            std::size_t ops;
        };
        for (const Sweep &sw : {Sweep{"apply1q", n}, Sweep{"apply2q",
                                                           n - 1}}) {
            const bool oneQ = std::strcmp(sw.name, "apply1q") == 0;
            double nsScalar = 0.0;
            for (const sim::Backend b : selectable) {
                sim::setDispatchOverride(sim::backendName(b));
                const double t = bestSeconds(3, [&] {
                    if (oneQ)
                        for (std::size_t q = 0; q < n; ++q)
                            sim::apply1q(amps.data(), n, q, m2);
                    else
                        for (std::size_t q = 0; q + 1 < n; ++q)
                            sim::apply2q(amps.data(), n, q, q + 1,
                                         u4.data());
                });
                const double ns = 1e9 * t / static_cast<double>(sw.ops);
                if (b == sim::Backend::Scalar)
                    nsScalar = ns;
                const double speedup = ns > 0.0 ? nsScalar / ns : 0.0;
                bench::Scenario sc;
                sc.name = std::string(sw.name) + "/n=" +
                          std::to_string(n) + "/backend=" +
                          sim::backendName(b);
                sc.params = {{"qubits", static_cast<double>(n)},
                             {"lanes", static_cast<double>(
                                           sim::kernelTable(b).lanes)}};
                sc.metrics = {{"ns_per_op", ns, "ns"},
                              {"speedup_vs_scalar", speedup, "x"}};
                std::printf("  %-30s %10.1f ns/op   speedup %.2fx\n",
                            sc.name.c_str(), ns, speedup);
                rep.scenarios.push_back(std::move(sc));
            }
        }
    }
    sim::setDispatchOverride("auto");

    // Dispatch-indirection contract: wrapper (table fetch per sweep)
    // vs. hoisted table pointer, on the probe-resolved backend.
    {
        const std::size_t n = opt.smoke ? 16 : 20;
        const int sweepsPerRound = opt.smoke ? 8 : 4;
        const int rounds = 5;
        CVector amps = randomState(rng, n);
        const std::size_t q0 = n / 3;
        const std::size_t q1 = (2 * n) / 3;
        const Matrix u = linalg::haarUnitary(rng, 4);

        const sim::KernelTable &table = sim::activeKernels();
        const double tHoisted = bestSeconds(rounds, [&] {
            for (int s = 0; s < sweepsPerRound; ++s)
                table.apply2q(amps.data(), n, q0, q1, u.data());
        });
        const double tDispatched = bestSeconds(rounds, [&] {
            for (int s = 0; s < sweepsPerRound; ++s)
                sim::apply2q(amps.data(), n, q0, q1, u.data());
        });
        const double perSweep = 1.0 / static_cast<double>(sweepsPerRound);
        const double nsHoisted = 1e9 * tHoisted * perSweep;
        const double nsDispatched = 1e9 * tDispatched * perSweep;
        const double overheadPct =
            nsHoisted > 0.0
                ? 100.0 * (nsDispatched - nsHoisted) / nsHoisted
                : 0.0;
        bench::Scenario sc;
        sc.name = "apply2q_indirection/n=" + std::to_string(n);
        sc.params = {{"qubits", static_cast<double>(n)},
                     {"sweeps_per_round",
                      static_cast<double>(sweepsPerRound)}};
        sc.metrics = {{"hoisted_ns_per_sweep", nsHoisted, "ns"},
                      {"dispatched_ns_per_sweep", nsDispatched, "ns"},
                      {"dispatch_overhead_pct", overheadPct, "%"}};
        std::printf("  %-30s hoisted %10.1f ns   dispatched %10.1f ns "
                    "(%+.2f%%)\n",
                    sc.name.c_str(), nsHoisted, nsDispatched, overheadPct);
        rep.scenarios.push_back(std::move(sc));
    }

    return rep;
}

/** One row of the --list table; kept in sync with selectFamily. */
struct FamilyInfo
{
    const char *name;
    const char *report;
    const char *what;
};

constexpr FamilyInfo kFamilies[] = {
    {"micro", "BENCH_micro.json",
     "SIMD kernels vs. the scalar baseline, plus 2q plan fusion"},
    {"sweep", "BENCH_sweep_scaling.json",
     "state-parallel chunked kernel sweeps vs. one thread"},
    {"batch", "BENCH_batch_soa.json",
     "SoA trajectory batching vs. per-trajectory execution"},
    {"blocked", "BENCH_blocked_sweep.json",
     "cache-blocked plan execution vs. unblocked per-op sweeps"},
    {"shard", "BENCH_shard_scaling.json",
     "sharded statevector execution and amplitude-exchange accounting"},
    {"transpile", "BENCH_transpile.json",
     "transpiler batch throughput across thread counts"},
    {"fig7", "BENCH_fig7.json",
     "quantum-volume heavy-output harness (paper Figure 7)"},
    {"obs", "BENCH_obs_overhead.json",
     "tracing-overhead A/B of the instrumented kernel paths"},
    {"dispatch", "BENCH_dispatch_backends.json",
     "every compiled kernel backend forced in turn on one binary"},
};

int
listFamilies()
{
    std::printf("bench_runner families (run with no arguments for all):\n");
    for (const FamilyInfo &f : kFamilies)
        std::printf("  %-10s %-26s %s\n", f.name, f.report, f.what);
    std::printf("  %-10s %-26s %s\n", "all", "(every report above)",
                "explicit alias for the full suite");
    return 0;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [micro|sweep|batch|blocked|shard|transpile|fig7|\n"
        "           obs|dispatch|all ...]\n"
        "          [--smoke] [--scenario FAMILY] [--out-dir DIR]\n"
        "          [--trace PATH] [--list]\n"
        "\n"
        "Runs the unified benchmark suite and writes BENCH_<name>.json\n"
        "per family into --out-dir (default: current directory).\n"
        "Families may be given positionally or via --scenario; with\n"
        "none, every family runs. --list prints the family table and\n"
        "exits. --smoke shrinks problem sizes for CI;\n"
        "the n=20 apply1q scalar-vs-SIMD point is always included.\n"
        "--trace PATH additionally records every selected family and\n"
        "writes one combined Chrome trace-event JSON to PATH (open in\n"
        "chrome://tracing or https://ui.perfetto.dev); per-span\n"
        "aggregates land in each family's BENCH json under \"obs\".\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool scenarioChosen = false;
    const auto selectFamily = [&](const std::string &s) {
        if (!scenarioChosen) {
            opt.micro = opt.sweep = opt.batch = opt.blocked = opt.shard =
                opt.transpile = opt.fig7 = opt.obs = opt.dispatch = false;
            scenarioChosen = true;
        }
        if (s == "micro")
            opt.micro = true;
        else if (s == "sweep")
            opt.sweep = true;
        else if (s == "batch")
            opt.batch = true;
        else if (s == "blocked")
            opt.blocked = true;
        else if (s == "shard")
            opt.shard = true;
        else if (s == "transpile")
            opt.transpile = true;
        else if (s == "fig7")
            opt.fig7 = true;
        else if (s == "obs")
            opt.obs = true;
        else if (s == "dispatch")
            opt.dispatch = true;
        else if (s == "all")
            opt.micro = opt.sweep = opt.batch = opt.blocked = opt.shard =
                opt.transpile = opt.fig7 = opt.obs = opt.dispatch = true;
        else
            return false;
        return true;
    };
    const auto unknownFamily = [&](const std::string &s) {
        std::fprintf(stderr,
                     "bench_runner: unknown benchmark family '%s' "
                     "(--list shows the available families)\n",
                     s.c_str());
        return usage(argv[0]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--list") {
            return listFamilies();
        } else if (arg == "--out-dir" && i + 1 < argc) {
            opt.outDir = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            opt.trace = argv[++i];
        } else if (arg == "--scenario" && i + 1 < argc) {
            if (!selectFamily(argv[++i]))
                return unknownFamily(argv[i]);
        } else if (!arg.empty() && arg[0] != '-') {
            if (!selectFamily(arg))
                return unknownFamily(arg);
        } else {
            return usage(argv[0]);
        }
    }

    // Validate the trace destination up front: a typo'd or unwritable
    // path must fail loudly now, not lose the trace silently after the
    // whole suite has run. Checked even when tracing is compiled out —
    // a bad path is a bad invocation either way.
    if (!opt.trace.empty()) {
        std::FILE *probe = std::fopen(opt.trace.c_str(), "a");
        if (probe == nullptr) {
            std::fprintf(stderr,
                         "bench_runner: cannot open trace output '%s': "
                         "%s\n",
                         opt.trace.c_str(), std::strerror(errno));
            return 2;
        }
        std::fclose(probe);
    }
    const bool tracing = !opt.trace.empty() && obs::compiledIn();
    if (!opt.trace.empty() && !obs::compiledIn())
        std::fprintf(stderr,
                     "bench_runner: warning: --trace ignored (built with "
                     "-DCRISC_OBS=OFF)\n");

    std::printf("bench_runner: sha %s%s, backend %s, %u hw threads%s%s\n",
                bench::reportGitSha().c_str(),
                bench::reportGitDirty() ? "-dirty" : "",
                sim::simdBackendName(),
                std::max(1u, std::thread::hardware_concurrency()),
                opt.smoke ? " (smoke)" : "", tracing ? " (tracing)" : "");

    // Each family runs under its own TraceSession (fresh buffers and
    // counters), its aggregates land in its own BENCH json, and the raw
    // events merge into one combined Chrome trace.
    obs::Trace combined;
    const auto runFamily = [&](bench::Report (*fn)(const Options &)) {
        obs::TraceSession session;
        if (tracing) {
            session.start();
            // Stamp the resolved backend/lanes gauges into this
            // session's trace (gauges set pre-start were dropped).
            sim::recordDispatchGauges();
        }
        bench::Report rep = fn(opt);
        if (tracing) {
            session.stop();
            const obs::Trace t = session.collect();
            rep.obsEnabled = true;
            for (const obs::SpanSummary &s : obs::summarize(t))
                rep.obsSpans.push_back(
                    {s.name, s.count, s.totalNs, s.meanNs, s.p95Ns});
            obs::mergeInto(combined, t);
        }
        std::printf("wrote %s\n",
                    bench::writeReport(rep, opt.outDir).c_str());
    };

    if (opt.micro)
        runFamily(runMicro);
    if (opt.sweep)
        runFamily(runSweep);
    if (opt.batch)
        runFamily(runBatch);
    if (opt.blocked)
        runFamily(runBlocked);
    if (opt.shard)
        runFamily(runShard);
    if (opt.transpile)
        runFamily(runTranspile);
    if (opt.fig7)
        runFamily(runFig7);
    if (opt.obs)
        runFamily(runObsOverhead);
    if (opt.dispatch)
        runFamily(runDispatch);

    if (tracing) {
        obs::writeChromeTrace(combined, opt.trace);
        std::printf("wrote %s (%zu span events, %llu dropped)\n",
                    opt.trace.c_str(), combined.events.size(),
                    static_cast<unsigned long long>(combined.dropped));
    }
    return 0;
}

/**
 * @file
 * Reproduces Figure 6(a)/(b): average decomposition error versus
 * two-qubit gate count when numerically instantiating circuits against
 * Haar-random targets — generic SU(4) gates versus CNOTs — at n = 3 and
 * n = 4. The paper uses 1000 targets per point with QFactor; here a
 * CI-sized sample (documented in EXPERIMENTS.md) shows the same cliff:
 * the error plummets once the count crosses the dimension-counting
 * lower bound (6 generic / 14 CNOT at n = 3; 27 / 61 at n = 4).
 */

#include <cmath>
#include <cstdio>

#include "linalg/random.hh"
#include "synth/instantiate.hh"
#include "synth/qsd.hh"

using namespace crisc;

namespace {

void
sweep(std::size_t n, bool generic, const std::vector<std::size_t> &counts,
      int targets, int sweeps, int restarts)
{
    linalg::Rng rng(1234 + n + generic);
    std::printf("  %-7s", generic ? "AshN" : "CNOT");
    for (std::size_t gates : counts) {
        double sumLog = 0.0;
        for (int t = 0; t < targets; ++t) {
            const linalg::Matrix target =
                linalg::haarUnitary(rng, std::size_t{1} << n);
            const synth::Template tmpl =
                generic ? synth::genericTemplate(n, gates)
                        : synth::cnotTemplate(n, gates);
            const synth::InstantiationResult r = synth::instantiate(
                target, tmpl, rng, sweeps, 1e-11, restarts);
            sumLog += std::log10(std::max(r.distance, 1e-14));
        }
        std::printf(" %7.2f", sumLog / targets);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Figure 6(a): n = 3, mean log10 decomposition error vs "
                "gate count ===\n");
    std::printf("  lower bounds: %zu generic / %zu CNOT\n",
                synth::su4LowerBound(3), synth::cnotLowerBound(3));
    {
        const std::vector<std::size_t> counts{3, 4, 5, 6, 7};
        std::printf("  gates  ");
        for (auto c : counts)
            std::printf(" %7zu", c);
        std::printf("\n");
        sweep(3, true, counts, 12, 400, 3);
    }
    {
        const std::vector<std::size_t> counts{8, 10, 12, 14, 16};
        std::printf("  gates  ");
        for (auto c : counts)
            std::printf(" %7zu", c);
        std::printf("\n");
        sweep(3, false, counts, 12, 400, 3);
    }

    std::printf("\n=== Figure 6(b): n = 4 (reduced sample count) ===\n");
    std::printf("  lower bounds: %zu generic / %zu CNOT\n",
                synth::su4LowerBound(4), synth::cnotLowerBound(4));
    {
        const std::vector<std::size_t> counts{24, 26, 27, 28, 30};
        std::printf("  gates  ");
        for (auto c : counts)
            std::printf(" %7zu", c);
        std::printf("\n");
        sweep(4, true, counts, 3, 400, 2);
    }
    {
        const std::vector<std::size_t> counts{55, 59, 61, 63, 67};
        std::printf("  gates  ");
        for (auto c : counts)
            std::printf(" %7zu", c);
        std::printf("\n");
        sweep(4, false, counts, 3, 400, 2);
    }

    std::printf("\n  Expected shape (paper): error stays O(1e-2..1e-4) below "
                "the lower bound and collapses to the numerical threshold "
                "just above it;\n  the generic (AshN) set needs less than "
                "half the CNOT count at equal error.\n");
    return 0;
}

/**
 * @file
 * Ablation: interpolating calibrated pulse parameters (paper Sec. 7:
 * "interpolation of calibrated parameters is a possible but unproven
 * method"). We test it in simulation: take two chamber points, solve
 * the AshN controls at each, linearly interpolate the control vector
 * (tau, Omega1, Omega2, delta), evolve, and measure how far the
 * realized chamber point is from the interpolated target.
 *
 * Outcome: interpolation is accurate *within* a sub-scheme sector
 * (error falls quadratically with segment length) but breaks across
 * sector boundaries, where the control map is discontinuous — the
 * caveat any interpolating calibration must respect.
 *
 * Also ablates the dispatcher itself: cost of forcing AshN-ND-EXT
 * everywhere (always-bounded drives) versus optimal-time dispatch.
 */

#include <cmath>
#include <cstdio>

#include "ashn/scheme.hh"
#include "ashn/special.hh"
#include "linalg/random.hh"
#include "weyl/measure.hh"
#include "weyl/weyl.hh"

using namespace crisc;
using weyl::WeylPoint;

namespace {

/** Midpoint control-interpolation error between two targets. */
double
interpError(const WeylPoint &a, const WeylPoint &b, double h, double r)
{
    const ashn::GateParams pa = ashn::synthesize(a, h, r);
    const ashn::GateParams pb = ashn::synthesize(b, h, r);
    ashn::GateParams mid = pa;
    mid.tau = 0.5 * (pa.tau + pb.tau);
    mid.omega1 = 0.5 * (pa.omega1 + pb.omega1);
    mid.omega2 = 0.5 * (pa.omega2 + pb.omega2);
    mid.delta = 0.5 * (pa.delta + pb.delta);
    const WeylPoint want = weyl::canonicalizePoint(
        {0.5 * (a.x + b.x), 0.5 * (a.y + b.y), 0.5 * (a.z + b.z)});
    const WeylPoint got = weyl::weylCoordinates(ashn::realize(mid));
    return weyl::pointDistance(got, want);
}

} // namespace

int
main()
{
    std::printf("=== Ablation A: interpolating calibrated controls "
                "(Sec. 7 open question) ===\n\n");
    std::printf("within the ND sector, segment length vs midpoint error "
                "(mean of 40 pairs):\n");
    linalg::Rng rng(3);
    for (double len : {0.2, 0.1, 0.05, 0.025}) {
        double sum = 0.0;
        int count = 0;
        while (count < 40) {
            // Base point safely inside the ND sector.
            const double x = rng.uniform(0.3, 0.7);
            const double y = rng.uniform(0.0, 0.5 * x);
            const double z = rng.uniform(-0.5 * y, 0.5 * y);
            const WeylPoint a{x, y, z};
            const WeylPoint b{x + len * 0.5, y + len * 0.3, z};
            if (b.y > b.x || std::abs(b.z) > b.y || b.x > M_PI / 4.0)
                continue;
            sum += interpError(a, b, 0.0, 0.0);
            ++count;
        }
        std::printf("  segment %.3f : mean midpoint error %.2e\n", len,
                    sum / count);
    }

    std::printf("\nacross the ND / EA- sector boundary (fixed segment "
                "0.1):\n");
    {
        // Walk a segment across the boundary near the SWAP edge.
        const WeylPoint inNd{0.55, 0.30, 0.10};
        const WeylPoint inEa{0.60, 0.55, 0.45};
        const auto sa = ashn::synthesize(inNd, 0.0, 0.0).scheme;
        const auto sb = ashn::synthesize(inEa, 0.0, 0.0).scheme;
        std::printf("  endpoints use %s and %s -> midpoint error %.2e "
                    "(boundary-crossing interpolation fails)\n",
                    ashn::subSchemeName(sa).c_str(),
                    ashn::subSchemeName(sb).c_str(),
                    interpError(inNd, inEa, 0.0, 0.0));
    }

    std::printf("\n=== Ablation B: dispatcher policy ===\n\n");
    std::printf("%-28s %-16s %-16s\n", "policy", "avg gate time",
                "max drive (sampled)");
    linalg::Rng rng2(5);
    double tOpt = 0.0, tMax = 0.0, dOpt = 0.0, dMax = 0.0;
    const int n = 150;
    for (int i = 0; i < n; ++i) {
        const WeylPoint p = weyl::sampleChamber(rng2);
        const ashn::GateParams opt = ashn::synthesize(p, 0.0, 0.0);
        const ashn::GateParams ext =
            ashn::synthesize(p, 0.0, M_PI / 2.0);
        tOpt += opt.tau;
        tMax += ext.tau;
        dOpt = std::max(dOpt, opt.maxDrive());
        dMax = std::max(dMax, ext.maxDrive());
    }
    std::printf("%-28s %-16.4f %-16.3f\n", "optimal-time dispatch (r=0)",
                tOpt / n, dOpt);
    std::printf("%-28s %-16.4f %-16.3f\n", "maximal cutoff (r=pi/2)",
                tMax / n, dMax);
    std::printf("\nmaximal cutoff pushes every coverable gate through "
                "ND-EXT (%.0f%% more time on average) in exchange for the "
                "uniform drive bound %.2fg; r in between trades smoothly "
                "(Fig. 5).\n",
                100.0 * (tMax - tOpt) / tOpt, ashn::driveBound(M_PI / 2.0));
    return 0;
}

/**
 * @file
 * Reproduces Figure 6(c): the table of numerical and analytical
 * two-qubit gate counts for n-qubit synthesis, CNOT instruction set
 * versus arbitrary-SU(4) (AshN) instruction set, alongside this
 * library's constructively achieved counts.
 */

#include <cstdio>

#include "circuit/circuit.hh"
#include "linalg/random.hh"
#include "qop/metrics.hh"
#include "synth/qsd.hh"
#include "synth/three_qubit.hh"

using namespace crisc;

int
main()
{
    std::printf("=== Figure 6(c): gate counts for n-qubit synthesis ===\n\n");
    std::printf("  %-26s %-10s %-10s %-14s\n", "", "3-qubit", "4-qubit",
                "n-qubit");
    std::printf("  %-26s %-10zu %-10zu %-14s\n", "CNOT lower bound (N)",
                synth::cnotLowerBound(3), synth::cnotLowerBound(4), "-");
    std::printf("  %-26s %-10zu %-10zu %-14s\n", "AshN lower bound (N)",
                synth::su4LowerBound(3), synth::su4LowerBound(4), "-");
    std::printf("  %-26s %-10zu %-10zu %-14s\n", "CNOT analytic (QSD, [35])",
                synth::optimizedQsdCnotCount(3),
                synth::optimizedQsdCnotCount(4), "23/48*4^n");
    std::printf("  %-26s %-10zu %-10zu %-14s\n", "AshN analytic (Thm 13)",
                synth::theorem13Count(3), synth::theorem13Count(4),
                "23/64*4^n");
    std::printf("  %-26s %-10zu %-10zu %-14s\n", "our QSD (unoptimized)",
                synth::qsdCnotCount(3), synth::qsdCnotCount(4),
                "9/16*4^n");

    // Constructively achieved counts.
    linalg::Rng rng(3);
    const linalg::Matrix u3 = linalg::haarUnitary(rng, 8);
    const circuit::Circuit c3 = synth::threeQubitGeneric(u3);
    const bool ok3 = qop::equalUpToGlobalPhase(c3.toUnitary(), u3, 1e-5);
    std::printf("  %-26s %-10zu %-10s %-14s\n",
                "our 3q generic (exact)", c3.twoQubitCount(),
                "-", ok3 ? "verified" : "FAILED");

    const linalg::Matrix u4 = linalg::haarUnitary(rng, 16);
    const circuit::Circuit c4 = synth::qsd(u4);
    const bool ok4 = qop::equalUpToGlobalPhase(c4.toUnitary(), u4, 1e-5);
    std::printf("  %-26s %-10s %-10zu %-14s\n", "our QSD CNOT (exact)", "-",
                c4.twoQubitCount(), ok4 ? "verified" : "FAILED");

    const circuit::Circuit g4 = synth::genericQsd(u4);
    const bool okg4 = qop::equalUpToGlobalPhase(g4.toUnitary(), u4, 1e-5);
    std::printf("  %-26s %-10s %-10zu %-14s\n", "our generic QSD (exact)",
                "-", g4.twoQubitCount(), okg4 ? "verified" : "FAILED");

    std::printf("\n  Paper Fig. 6(c) reference: CNOT (N) 14 / 61, "
                "AshN (N) 6 / 27, CNOT (A) 20 / 100, AshN (A) 11 / 68.\n");
    std::printf("  Note: the analytic 3-qubit construction here reaches %zu "
                "generic gates; the paper's final regrouping step reaches "
                "11 (see DESIGN.md).\n",
                c3.twoQubitCount());
    std::printf("  The numerical counts (6 and 27) are demonstrated in "
                "bench_fig6_numeric.\n");
    return 0;
}

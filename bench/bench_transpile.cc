/**
 * @file
 * Transpiler benchmarks: single-circuit pipeline latency (with and
 * without routing), Weyl-cache leverage on repeated gate classes, and
 * batch transpilation throughput as a function of worker threads
 * (items_per_second = circuits/sec). Run with
 * --benchmark_format=json to seed the perf trajectory; CI uploads the
 * result as an artifact.
 */

#include <cstdint>

#include <benchmark/benchmark.h>

#include "circuit/circuit.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "route/route.hh"
#include "transpile/transpile.hh"

using namespace crisc;

namespace {

circuit::Circuit
randomCircuit(linalg::Rng &rng, std::size_t n, std::size_t gates)
{
    circuit::Circuit c(n);
    for (std::size_t i = 0; i < gates; ++i) {
        const std::size_t a = rng.index(n);
        std::size_t b = rng.index(n);
        while (b == a)
            b = rng.index(n);
        c.add(linalg::haarUnitary(rng, 4), {a, b});
    }
    return c;
}

void
BM_TranspileSingle(benchmark::State &state)
{
    linalg::Rng rng(1);
    const circuit::Circuit c = randomCircuit(rng, 4, 16);
    transpile::TranspileOptions opts;
    opts.h = 0.1;
    for (auto _ : state)
        benchmark::DoNotOptimize(transpile::transpile(c, opts));
    state.SetItemsProcessed(static_cast<std::int64_t>(c.size()) *
                            state.iterations());
}
BENCHMARK(BM_TranspileSingle);

void
BM_TranspileRouted(benchmark::State &state)
{
    linalg::Rng rng(2);
    const circuit::Circuit c = randomCircuit(rng, 9, 16);
    const route::CouplingMap grid = route::CouplingMap::grid(3, 3);
    transpile::TranspileOptions opts;
    opts.coupling = &grid;
    for (auto _ : state)
        benchmark::DoNotOptimize(transpile::transpile(c, opts));
    state.SetItemsProcessed(static_cast<std::int64_t>(c.size()) *
                            state.iterations());
}
BENCHMARK(BM_TranspileRouted);

void
BM_WeylCacheTrotter(benchmark::State &state)
{
    // Sixty identical bond gates: one synthesis, fifty-nine cache hits
    // per pipeline run (each iteration builds a cold pipeline).
    const linalg::Matrix bond = qop::canonicalGate(0.3, 0.2, 0.1);
    circuit::Circuit c(6);
    for (int s = 0; s < 12; ++s)
        for (std::size_t q = 0; q + 1 < 6; ++q)
            c.add(bond, {q, q + 1}, "bond");
    transpile::TranspileOptions opts;
    opts.fuseSingleQubit = false; // keep every bond a separate pulse
    for (auto _ : state)
        benchmark::DoNotOptimize(transpile::transpile(c, opts));
    state.SetItemsProcessed(static_cast<std::int64_t>(c.size()) *
                            state.iterations());
}
BENCHMARK(BM_WeylCacheTrotter);

void
BM_TranspileBatch(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    linalg::Rng rng(3);
    std::vector<circuit::Circuit> circuits;
    for (int i = 0; i < 32; ++i)
        circuits.push_back(randomCircuit(rng, 4, 12));
    transpile::TranspileOptions opts;
    opts.h = 0.1;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            transpile::transpileBatch(circuits, opts, threads));
    state.SetItemsProcessed(static_cast<std::int64_t>(circuits.size()) *
                            state.iterations());
}
BENCHMARK(BM_TranspileBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

BENCHMARK_MAIN();

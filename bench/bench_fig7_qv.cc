/**
 * @file
 * Reproduces Figure 7: heavy output proportion versus circuit size d
 * for CZ, SQiSW, AshN(r=0) and AshN(r=1.1) instruction sets under
 * depolarizing noise with per-native-gate rate proportional to gate
 * time, on a 2D grid with SWAP routing. Sample counts are comparable
 * to the paper's 1350 circuit samples (documented in EXPERIMENTS.md).
 */

#include <cstdio>
#include <vector>

#include "qv/qv.hh"

using namespace crisc;

int
main()
{
    const std::vector<std::size_t> widths{2, 3, 4, 5, 6, 7, 8};
    const int circuits = 120;
    const int trajectories = 24;

    for (double eCz : {0.007, 0.012, 0.017}) {
        std::printf("=== Figure 7: heavy output proportion, e_CZ = %.3f "
                    "(1q error 0.1%%) ===\n",
                    eCz);
        std::printf("  %-14s", "scheme \\ d");
        for (std::size_t d : widths)
            std::printf(" %8zu", d);
        std::printf("\n");

        struct Variant
        {
            const char *name;
            qv::NativeSet native;
            double cutoff;
        };
        const Variant variants[] = {
            {"AshN r=0", qv::NativeSet::AshN, 0.0},
            {"AshN r=1.1", qv::NativeSet::AshN, 1.1},
            {"SQiSW", qv::NativeSet::SQiSW, 0.0},
            {"CZ", qv::NativeSet::CZ, 0.0},
        };
        for (const Variant &v : variants) {
            std::printf("  %-14s", v.name);
            for (std::size_t d : widths) {
                qv::QvConfig cfg;
                cfg.width = d;
                cfg.native = v.native;
                cfg.ashnCutoff = v.cutoff;
                cfg.czError = eCz;
                cfg.circuits = circuits;
                cfg.trajectories = trajectories;
                cfg.seed = 1000 + d; // same circuits across schemes
                const qv::QvResult r = qv::heavyOutputExperiment(cfg);
                std::printf(" %8.3f", r.heavyOutputProportion);
            }
            std::printf("\n");
        }
        std::printf("  (pass threshold 2/3; paper: AshN > SQiSW > CZ, with "
                    "r=1.1 nearly matching r=0)\n\n");
    }

    // Cost-model summary at one size.
    std::printf("=== Compilation cost per circuit (d = 5, e_CZ = 0.012) "
                "===\n");
    std::printf("  %-14s %-14s %-18s %-10s\n", "scheme", "native gates",
                "2q time (1/g)", "swaps");
    struct CostVariant
    {
        const char *name;
        qv::NativeSet native;
        double cutoff;
    };
    const CostVariant costVariants[] = {
        {"AshN r=0", qv::NativeSet::AshN, 0.0},
        {"AshN r=1.1", qv::NativeSet::AshN, 1.1},
        {"SQiSW", qv::NativeSet::SQiSW, 0.0},
        {"CZ", qv::NativeSet::CZ, 0.0},
    };
    for (const auto &[name, native, cutoff] : costVariants) {
        qv::QvConfig cfg;
        cfg.width = 5;
        cfg.native = native;
        cfg.ashnCutoff = cutoff;
        cfg.czError = 0.012;
        cfg.circuits = 10;
        cfg.trajectories = 1;
        cfg.seed = 77;
        const qv::QvResult r = qv::heavyOutputExperiment(cfg);
        std::printf("  %-14s %-14.1f %-18.2f %-10.1f\n", name,
                    r.avgNativeGatesPerCircuit, r.avgTwoQubitTimePerCircuit,
                    r.avgSwapsPerCircuit);
    }
    return 0;
}

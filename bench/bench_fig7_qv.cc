/**
 * @file
 * Reproduces Figure 7: heavy output proportion versus circuit size d
 * for CZ, SQiSW, AshN(r=0) and AshN(r=1.1) instruction sets under
 * depolarizing noise with per-native-gate rate proportional to gate
 * time, on a 2D grid with SWAP routing. Each variant constructs its
 * device::Device once per width and hands it to the harness — the
 * coupling map, native gate set, and noise model all come from the
 * device. Sample counts are comparable to the paper's 1350 circuit
 * samples (documented in EXPERIMENTS.md).
 */

#include <cstdio>
#include <vector>

#include "device/device.hh"
#include "qv/qv.hh"

using namespace crisc;

namespace {

struct Variant
{
    const char *name;
    device::NativeKind native;
    double cutoff;
};

constexpr Variant kVariants[] = {
    {"AshN r=0", device::NativeKind::AshN, 0.0},
    {"AshN r=1.1", device::NativeKind::AshN, 1.1},
    {"SQiSW", device::NativeKind::SQiSW, 0.0},
    {"CZ", device::NativeKind::CZ, 0.0},
};

} // namespace

int
main()
{
    const std::vector<std::size_t> widths{2, 3, 4, 5, 6, 7, 8};
    const int circuits = 120;
    const int trajectories = 24;

    for (double eCz : {0.007, 0.012, 0.017}) {
        std::printf("=== Figure 7: heavy output proportion, e_CZ = %.3f "
                    "(1q error 0.1%%) ===\n",
                    eCz);
        std::printf("  %-14s", "scheme \\ d");
        for (std::size_t d : widths)
            std::printf(" %8zu", d);
        std::printf("\n");

        for (const Variant &v : kVariants) {
            std::printf("  %-14s", v.name);
            for (std::size_t d : widths) {
                const device::Device dev = device::Device::grid2d(
                    v.native, d,
                    {.twoQubitError = eCz, .singleQubitError = 0.001,
                     .h = 0.0, .r = v.cutoff});
                qv::QvConfig cfg;
                cfg.width = d;
                cfg.device = &dev;
                cfg.circuits = circuits;
                cfg.trajectories = trajectories;
                cfg.seed = 1000 + d; // same circuits across schemes
                const qv::QvResult r = qv::heavyOutputExperiment(cfg);
                std::printf(" %8.3f", r.heavyOutputProportion);
            }
            std::printf("\n");
        }
        std::printf("  (pass threshold 2/3; paper: AshN > SQiSW > CZ, with "
                    "r=1.1 nearly matching r=0)\n\n");
    }

    // Cost-model summary at one size.
    std::printf("=== Compilation cost per circuit (d = 5, e_CZ = 0.012) "
                "===\n");
    std::printf("  %-14s %-14s %-18s %-10s\n", "scheme", "native gates",
                "2q time (1/g)", "swaps");
    for (const Variant &v : kVariants) {
        const device::Device dev = device::Device::grid2d(
            v.native, 5,
            {.twoQubitError = 0.012, .singleQubitError = 0.001,
             .h = 0.0, .r = v.cutoff});
        qv::QvConfig cfg;
        cfg.width = 5;
        cfg.device = &dev;
        cfg.circuits = 10;
        cfg.trajectories = 1;
        cfg.seed = 77;
        const qv::QvResult r = qv::heavyOutputExperiment(cfg);
        std::printf("  %-14s %-14.1f %-18.2f %-10.1f\n", v.name,
                    r.avgNativeGatesPerCircuit, r.avgTwoQubitTimePerCircuit,
                    r.avgSwapsPerCircuit);
    }
    return 0;
}

/**
 * @file
 * Reproduces Table 1 (gate parameters for the [CNOT], [SWAP] and [B]
 * classes at h = 0) plus the Sec. 6.4 ZZ-coupling results: the
 * closed-form ZZ-robust CNOT, the exact Molmer-Sorensen identification,
 * the exact ZZ*SWAP identification, and the SWAP speed-up under ZZ.
 */

#include <cmath>
#include <cstdio>

#include "ashn/scheme.hh"
#include "ashn/special.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"
#include "weyl/optimal_time.hh"
#include "weyl/weyl.hh"

using namespace crisc;

namespace {

void
printRow(const char *name, const ashn::GateParams &p)
{
    std::printf("  %-8s %-12s tau=%8.4f  A1=%8.4f  A2=%8.4f  2d=%8.4f\n",
                name, ashn::subSchemeName(p.scheme).c_str(), p.tau, p.a1(),
                p.a2(), 2.0 * p.delta);
}

} // namespace

int
main()
{
    std::printf("=== Table 1: special gate classes at h = 0 "
                "(units of g; time in 1/g) ===\n");
    std::printf("  paper:  [CNOT] tau=pi/2  A1=-sqrt(15)=-3.873  A2=0  "
                "2d=0\n");
    std::printf("  paper:  [SWAP] tau=3pi/4 |A1|=|A2|=2.108  |2d|=1.528\n");
    std::printf("  paper:  [B]    tau=pi/2  A1=-2.238  A2=0  2d=0\n");
    printRow("[CNOT]", ashn::synthesize(ashn::cnotPoint(), 0.0, 0.0));
    printRow("[SWAP]", ashn::synthesize(ashn::swapPoint(), 0.0, 0.0));
    printRow("[B]", ashn::synthesize(ashn::bGatePoint(), 0.0, 0.0));

    std::printf("\n=== Sec. 6.4: exact realized gates at h = 0 ===\n");
    {
        const linalg::Matrix u = ashn::realize(ashn::cnotClassParams(0.0));
        std::printf("  [CNOT] params realize Molmer-Sorensen XX(pi/2): "
                    "%s (dist %.2e)\n",
                    qop::equalUpToGlobalPhase(u, qop::msGate(), 1e-5)
                        ? "yes"
                        : "NO",
                    linalg::maxAbsDiff(qop::alignGlobalPhase(u, qop::msGate()),
                                       qop::msGate()));
        const linalg::Matrix s =
            ashn::realize(ashn::synthesize(ashn::swapPoint(), 0.0, 0.0));
        const linalg::Matrix zzswap = qop::pauliZZ() * qop::swapGate();
        std::printf("  [SWAP] params realize ZZ*SWAP exactly:        "
                    "%s (dist %.2e)\n",
                    qop::equalUpToGlobalPhase(s, zzswap, 1e-4) ? "yes" : "NO",
                    linalg::maxAbsDiff(qop::alignGlobalPhase(s, zzswap),
                                       zzswap));
    }

    std::printf("\n=== Sec. 6.4: ZZ-robust CNOT class (closed form) ===\n");
    std::printf("  %-6s %-10s %-10s %-10s %-12s\n", "h/g", "tau", "A1", "A2",
                "coord err");
    for (double h : {0.0, 0.2, 0.4, 0.6, 0.8, -0.4, -0.8}) {
        const ashn::GateParams p = ashn::cnotClassParams(h);
        const weyl::WeylPoint got =
            weyl::weylCoordinates(ashn::realize(p));
        std::printf("  %-6.2f %-10.4f %-10.4f %-10.4f %-12.2e\n", h, p.tau,
                    p.a1(), p.a2(),
                    weyl::pointDistance(got, ashn::cnotPoint()));
    }

    std::printf("\n=== Sec. 6.4: SWAP under ZZ coupling "
                "(tau_opt = 3pi/(4(1+|h|/2))) ===\n");
    std::printf("  %-6s %-12s %-12s %-10s\n", "h/g", "predicted", "scheme tau",
                "coord err");
    for (double h : {0.0, 0.2, 0.4, 0.6, 0.8}) {
        const double predicted = 3.0 * M_PI / (4.0 * (1.0 + h / 2.0));
        const ashn::GateParams p = ashn::synthesize(ashn::swapPoint(), h, 0.0);
        const weyl::WeylPoint got = weyl::weylCoordinates(ashn::realize(p));
        std::printf("  %-6.2f %-12.6f %-12.6f %-10.2e\n", h, predicted, p.tau,
                    weyl::pointDistance(got, ashn::swapPoint()));
    }
    std::printf("\n  ZZ coupling *shortens* the SWAP gate, as the paper "
                "observes.\n");
    return 0;
}

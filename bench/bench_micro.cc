/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths: KAK
 * decomposition, AshN synthesis (closed-form ND and root-finding EA),
 * CSD, Hamiltonian propagators, and the statevector engine's gate
 * kernels (1q/2q strided kernels, fusion, threaded trajectory batches).
 * Kernel benchmarks report gates/sec as items_per_second.
 */

#include <benchmark/benchmark.h>

#include "ashn/scheme.hh"
#include "circuit/circuit.hh"
#include "linalg/expm.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "qv/qv.hh"
#include "sim/batch.hh"
#include "sim/engine.hh"
#include "sim/kernels.hh"
#include "synth/csd.hh"
#include "synth/two_qubit.hh"
#include "weyl/weyl.hh"

using namespace crisc;

namespace {

void
BM_KakDecomposition(benchmark::State &state)
{
    linalg::Rng rng(1);
    const linalg::Matrix u = linalg::haarUnitary(rng, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(weyl::kak(u));
}
BENCHMARK(BM_KakDecomposition);

void
BM_AshnSynthesizeND(benchmark::State &state)
{
    const weyl::WeylPoint p{0.6, 0.2, 0.1}; // ND sector
    for (auto _ : state)
        benchmark::DoNotOptimize(ashn::synthesize(p, 0.0, 0.0));
}
BENCHMARK(BM_AshnSynthesizeND);

void
BM_AshnSynthesizeEA(benchmark::State &state)
{
    const weyl::WeylPoint p{0.6, 0.55, 0.4}; // EA sector (root finding)
    for (auto _ : state)
        benchmark::DoNotOptimize(ashn::synthesize(p, 0.0, 0.0));
}
BENCHMARK(BM_AshnSynthesizeEA);

void
BM_AshnRealize(benchmark::State &state)
{
    const ashn::GateParams p = ashn::synthesize({0.6, 0.2, 0.1}, 0.0, 0.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(ashn::realize(p));
}
BENCHMARK(BM_AshnRealize);

void
BM_Propagator4x4(benchmark::State &state)
{
    const linalg::Matrix h = ashn::hamiltonian(0.2, 0.5, 0.3, 0.4);
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::propagator(h, 1.0));
}
BENCHMARK(BM_Propagator4x4);

void
BM_CompileToAshn(benchmark::State &state)
{
    linalg::Rng rng(2);
    const linalg::Matrix u = linalg::haarUnitary(rng, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(synth::compileToAshn(u, 0.0, 1.1));
}
BENCHMARK(BM_CompileToAshn);

void
BM_Csd(benchmark::State &state)
{
    linalg::Rng rng(3);
    const linalg::Matrix u =
        linalg::haarUnitary(rng, std::size_t{1} << state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(synth::csd(u));
}
BENCHMARK(BM_Csd)->Arg(3)->Arg(4);

void
BM_StatevectorTwoQubitGate(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    linalg::Rng rng(4);
    const linalg::Matrix u = linalg::haarUnitary(rng, 4);
    circuit::State s(n);
    for (auto _ : state)
        s.apply(u, {0, n - 1});
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatevectorTwoQubitGate)->Arg(6)->Arg(10)->Arg(14);

// ---------------------------------------------------------------------
// sim/ kernel microbenchmarks. items_per_second == gates/sec.
// ---------------------------------------------------------------------

void
BM_Sim1qKernel(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    linalg::Rng rng(5);
    const linalg::Matrix u = linalg::haarUnitary(rng, 2);
    const linalg::Complex m[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
    linalg::CVector amps(std::size_t{1} << n, {0.0, 0.0});
    amps[0] = 1.0;
    std::size_t q = 0;
    for (auto _ : state) {
        sim::apply1q(amps.data(), n, q, m);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sim1qKernel)->Arg(6)->Arg(10)->Arg(14);

void
BM_Sim1qDiagKernel(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    const linalg::Matrix u = qop::rz(0.5);
    linalg::CVector amps(std::size_t{1} << n, {0.0, 0.0});
    amps[0] = 1.0;
    std::size_t q = 0;
    for (auto _ : state) {
        sim::apply1qDiag(amps.data(), n, q, u(0, 0), u(1, 1));
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sim1qDiagKernel)->Arg(10)->Arg(14);

void
BM_Sim2qKernel(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    linalg::Rng rng(6);
    const linalg::Matrix u = linalg::haarUnitary(rng, 4);
    linalg::CVector amps(std::size_t{1} << n, {0.0, 0.0});
    amps[0] = 1.0;
    std::size_t q = 0;
    for (auto _ : state) {
        sim::apply2q(amps.data(), n, q, (q + 1) % n, u.data());
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sim2qKernel)->Arg(6)->Arg(10)->Arg(14);

/** A Trotter-ish layer circuit: per qubit rz-rx-rz, then a CZ ladder. */
circuit::Circuit
fusionWorkload(std::size_t n, std::size_t layers)
{
    circuit::Circuit c(n);
    for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t q = 0; q < n; ++q) {
            c.add(qop::rz(0.1 + 0.01 * l), {q});
            c.add(qop::rx(0.2), {q});
            c.add(qop::rz(0.3), {q});
        }
        for (std::size_t q = 0; q + 1 < n; q += 2)
            c.add(qop::cz(), {q, q + 1});
    }
    return c;
}

void
BM_EngineFused(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    const circuit::Circuit c = fusionWorkload(n, 8);
    const sim::Plan plan = sim::compile(c, {.fuseSingleQubit = true});
    linalg::CVector amps(std::size_t{1} << n);
    for (auto _ : state) {
        std::fill(amps.begin(), amps.end(), linalg::Complex{0.0, 0.0});
        amps[0] = 1.0;
        sim::execute(plan, amps.data());
    }
    state.SetItemsProcessed(state.iterations() * c.size());
}
BENCHMARK(BM_EngineFused)->Arg(8)->Arg(12);

void
BM_EngineUnfused(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    const circuit::Circuit c = fusionWorkload(n, 8);
    const sim::Plan plan = sim::compile(c, {.fuseSingleQubit = false});
    linalg::CVector amps(std::size_t{1} << n);
    for (auto _ : state) {
        std::fill(amps.begin(), amps.end(), linalg::Complex{0.0, 0.0});
        amps[0] = 1.0;
        sim::execute(plan, amps.data());
    }
    state.SetItemsProcessed(state.iterations() * c.size());
}
BENCHMARK(BM_EngineUnfused)->Arg(8)->Arg(12);

/** Noisy QV-style trajectory batch; Arg = worker threads. */
void
BM_TrajectoryBatch(benchmark::State &state)
{
    qv::QvConfig cfg;
    cfg.width = 5;
    cfg.czError = 0.012;
    cfg.circuits = 2;
    cfg.trajectories = 32;
    cfg.seed = 3;
    cfg.threads = state.range(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(qv::heavyOutputExperiment(cfg));
    state.SetItemsProcessed(state.iterations() * cfg.circuits *
                            cfg.trajectories);
}
BENCHMARK(BM_TrajectoryBatch)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths: KAK
 * decomposition, AshN synthesis (closed-form ND and root-finding EA),
 * CSD, Hamiltonian propagators, and statevector gate application.
 */

#include <benchmark/benchmark.h>

#include "ashn/scheme.hh"
#include "circuit/circuit.hh"
#include "linalg/expm.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "synth/csd.hh"
#include "synth/two_qubit.hh"
#include "weyl/weyl.hh"

using namespace crisc;

namespace {

void
BM_KakDecomposition(benchmark::State &state)
{
    linalg::Rng rng(1);
    const linalg::Matrix u = linalg::haarUnitary(rng, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(weyl::kak(u));
}
BENCHMARK(BM_KakDecomposition);

void
BM_AshnSynthesizeND(benchmark::State &state)
{
    const weyl::WeylPoint p{0.6, 0.2, 0.1}; // ND sector
    for (auto _ : state)
        benchmark::DoNotOptimize(ashn::synthesize(p, 0.0, 0.0));
}
BENCHMARK(BM_AshnSynthesizeND);

void
BM_AshnSynthesizeEA(benchmark::State &state)
{
    const weyl::WeylPoint p{0.6, 0.55, 0.4}; // EA sector (root finding)
    for (auto _ : state)
        benchmark::DoNotOptimize(ashn::synthesize(p, 0.0, 0.0));
}
BENCHMARK(BM_AshnSynthesizeEA);

void
BM_AshnRealize(benchmark::State &state)
{
    const ashn::GateParams p = ashn::synthesize({0.6, 0.2, 0.1}, 0.0, 0.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(ashn::realize(p));
}
BENCHMARK(BM_AshnRealize);

void
BM_Propagator4x4(benchmark::State &state)
{
    const linalg::Matrix h = ashn::hamiltonian(0.2, 0.5, 0.3, 0.4);
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::propagator(h, 1.0));
}
BENCHMARK(BM_Propagator4x4);

void
BM_CompileToAshn(benchmark::State &state)
{
    linalg::Rng rng(2);
    const linalg::Matrix u = linalg::haarUnitary(rng, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(synth::compileToAshn(u, 0.0, 1.1));
}
BENCHMARK(BM_CompileToAshn);

void
BM_Csd(benchmark::State &state)
{
    linalg::Rng rng(3);
    const linalg::Matrix u =
        linalg::haarUnitary(rng, std::size_t{1} << state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(synth::csd(u));
}
BENCHMARK(BM_Csd)->Arg(3)->Arg(4);

void
BM_StatevectorTwoQubitGate(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    linalg::Rng rng(4);
    const linalg::Matrix u = linalg::haarUnitary(rng, 4);
    circuit::State s(n);
    for (auto _ : state)
        s.apply(u, {0, n - 1});
}
BENCHMARK(BM_StatevectorTwoQubitGate)->Arg(6)->Arg(10)->Arg(14);

} // namespace

BENCHMARK_MAIN();

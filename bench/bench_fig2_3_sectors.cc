/**
 * @file
 * Reproduces Figures 2 and 3: the partition of the Weyl chamber into
 * the AshN-ND / AshN-EA+/- / AshN-ND-EXT sectors, without and with ZZ
 * coupling. Since the terminal cannot draw a tetrahedron, the figures
 * are rendered as Haar-measure sector fractions plus an ASCII slice of
 * the chamber at fixed z.
 */

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "ashn/scheme.hh"
#include "linalg/random.hh"
#include "weyl/measure.hh"

using namespace crisc;
using weyl::WeylPoint;

namespace {

/** Sub-scheme the dispatcher picks, by Haar fraction. */
void
sectorFractions(double h, double r, int samples)
{
    linalg::Rng rng(42);
    std::map<std::string, int> counts;
    int failures = 0;
    for (int i = 0; i < samples; ++i) {
        const WeylPoint p = weyl::sampleChamber(rng);
        try {
            const ashn::GateParams g = ashn::synthesize(p, h, r);
            counts[ashn::subSchemeName(g.scheme)]++;
        } catch (const std::exception &) {
            ++failures;
        }
    }
    std::printf("  h=%.1fg r=%.2f :", h, r);
    for (const auto &[name, c] : counts)
        std::printf("  %s %5.1f%%", name.c_str(), 100.0 * c / samples);
    if (failures > 0)
        std::printf("  FAILURES %d", failures);
    std::printf("\n");
}

/** ASCII slice of the chamber at fixed z: which scheme covers (x, y). */
void
asciiSlice(double h, double r, double z)
{
    std::printf("\n  chamber slice at z=%.2f (h=%.1fg, r=%.2f):  "
                "N=ND  X=ND-EXT  +=EA+  -=EA-  .=outside\n",
                z, h, r);
    const int rows = 12, cols = 36;
    for (int j = rows; j >= 0; --j) {
        const double y = M_PI / 4.0 * j / rows;
        std::printf("  y=%4.2f |", y);
        for (int i = 0; i <= cols; ++i) {
            const double x = M_PI / 4.0 * i / cols;
            char ch = '.';
            if (y <= x + 1e-12 && std::abs(z) <= y + 1e-12 &&
                !(std::abs(x - M_PI / 4.0) < 1e-12 && z < 0)) {
                try {
                    switch (ashn::synthesize({x, y, z}, h, r).scheme) {
                      case ashn::SubScheme::ND:
                        ch = 'N';
                        break;
                      case ashn::SubScheme::NDExt:
                        ch = 'X';
                        break;
                      case ashn::SubScheme::EAPlus:
                        ch = '+';
                        break;
                      case ashn::SubScheme::EAMinus:
                        ch = '-';
                        break;
                      default:
                        ch = 'I';
                    }
                } catch (const std::exception &) {
                    ch = '!';
                }
            }
            std::putchar(ch);
        }
        std::printf("|\n");
    }
    std::printf("          x: 0 ................................. pi/4\n");
}

} // namespace

int
main()
{
    std::printf("=== Figure 2: sector fractions (Haar measure), h = 0 ===\n");
    for (double r : {0.0, 0.5, 1.1})
        sectorFractions(0.0, r, 800);

    std::printf("\n=== Figure 3: sector fractions with ZZ coupling "
                "(r = 0.4) ===\n");
    for (double h : {0.2, 0.4, 0.8})
        sectorFractions(h, 0.4 * (1.0 - h), 800);

    asciiSlice(0.0, 0.6, 0.10);
    asciiSlice(0.4, 0.3, 0.10);
    return 0;
}

/**
 * @file
 * Reproduces Figure 5: average Haar two-qubit gate time versus the
 * maximum required drive strength, as the cutoff r sweeps. Also checks
 * the Eq. (4.4) drive bound, the closed-form T_avg(r) of App. A.7.1
 * against Monte Carlo, and the comparison lines quoted in Sec. 6.1
 * (SQiSW 1.736/g, iSWAP 4.712/g, CZ 6.664/g).
 */

#include <cmath>
#include <cstdio>

#include "ashn/scheme.hh"
#include "ashn/special.hh"
#include "linalg/random.hh"
#include "weyl/measure.hh"
#include "weyl/optimal_time.hh"

using namespace crisc;
using weyl::WeylPoint;

int
main()
{
    std::printf("=== Figure 5: gate time vs drive strength trade-off "
                "(h = 0) ===\n");
    std::printf("  optimal-time average (paper 1.3412/g): closed form "
                "%.4f/g\n\n",
                ashn::averageGateTime(0.0));
    std::printf("  %-6s %-14s %-14s %-14s %-14s\n", "r", "bound pi/r+1/2",
                "max drive", "Tavg closed", "Tavg sampled");

    linalg::Rng rng(7);
    const int samples = 250;
    for (double r :
         {0.30, 0.40, 0.55, 0.70, 0.90, 1.10, 1.30, M_PI / 2.0}) {
        double maxDrive = 0.0;
        double tSum = 0.0;
        for (int i = 0; i < samples; ++i) {
            const WeylPoint p = weyl::sampleChamber(rng);
            const ashn::GateParams g = ashn::synthesize(p, 0.0, r);
            maxDrive = std::max(maxDrive, g.maxDrive());
            tSum += g.tau;
        }
        std::printf("  %-6.2f %-14.3f %-14.3f %-14.4f %-14.4f\n", r,
                    ashn::driveBound(r), maxDrive, ashn::averageGateTime(r),
                    tSum / samples);
    }

    std::printf("\n  comparison lines (Sec. 6.1):\n");
    // SQiSW average: pi/4 per application; 2 apps in the region
    // x >= y + |z| (Huang et al.), 3 outside.
    const double p2 = weyl::chamberQuadrature(
        [](const WeylPoint &p) {
            return p.x >= p.y + std::abs(p.z) ? 1.0 : 0.0;
        },
        90);
    const double sqiswAvg = M_PI / 4.0 * (2.0 * p2 + 3.0 * (1.0 - p2));
    std::printf("    SQiSW : avg %.4f/g   (paper ~1.736/g; "
                "2-application region covers %.1f%% of the chamber)\n",
                sqiswAvg, 100.0 * p2);
    std::printf("    iSWAP : avg %.4f/g   (paper 4.712/g)\n",
                3.0 * M_PI / 2.0);
    std::printf("    CZ    : avg %.4f/g   (paper 6.664/g)\n",
                3.0 * M_PI / std::sqrt(2.0));

    std::printf("\n  within 10%% of the optimum (1.341/g): the paper picks "
                "r = 1.1 -> Tavg %.4f/g, bound %.3fg\n",
                ashn::averageGateTime(1.1), ashn::driveBound(1.1));
    return 0;
}

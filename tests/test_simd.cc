/**
 * @file
 * Scalar-vs-SIMD kernel equivalence suite (fast; runs under the CI
 * sanitizer matrix). Every dispatching kernel in sim/kernels.hh must
 * reproduce its sim::scalar reference on random states — the SIMD
 * lanes replay the scalar IEEE operation order exactly, so the paths
 * agree bit for bit on finite amplitudes; the acceptance bound asserted
 * here is 1e-12, with an additional exact check guarding the
 * bit-identical contract the pinned Figure-7 regressions rely on.
 * Register widths sweep past the vector length so both the vectorized
 * inner loops and the short-stride scalar fallback are exercised.
 *
 * The same pinning extends to the state-parallel backend: group-range
 * kernels over arbitrary partitions, the generic dense (k >= 3)
 * fallback, and chunked pool execution (engine.hh ExecOptions) must
 * all be bit-identical to the serial sweeps.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "sim/batch.hh"
#include "sim/engine.hh"
#include "sim/kernels.hh"
#include "sim_test_util.hh"

namespace {

using namespace crisc;
using linalg::Complex;
using linalg::CVector;
using linalg::Matrix;
using testutil::maxDiff;
using testutil::randomState;

bool
bitIdentical(const CVector &a, const CVector &b)
{
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].real() != b[i].real() || a[i].imag() != b[i].imag())
            return false;
    return true;
}

TEST(Simd, BackendIsWellFormed)
{
    const std::string backend = sim::simdBackendName();
    EXPECT_TRUE(backend == "avx2" || backend == "avx512" ||
                backend == "neon" || backend == "scalar")
        << backend;
    const std::size_t lanes = sim::simdLanes();
    EXPECT_GE(lanes, 1u);
    EXPECT_EQ(lanes & (lanes - 1), 0u) << "lane count must be 2^k";
}

TEST(Simd, Apply1qMatchesScalarOnAllStrides)
{
    linalg::Rng rng(101);
    for (std::size_t n = 1; n <= 9; ++n) {
        const Matrix u = linalg::haarUnitary(rng, 2);
        const Complex m[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
        for (std::size_t q = 0; q < n; ++q) {
            const CVector in = randomState(rng, n);
            CVector viaScalar = in, viaSimd = in;
            sim::scalar::apply1q(viaScalar.data(), n, q, m);
            sim::apply1q(viaSimd.data(), n, q, m);
            EXPECT_LT(maxDiff(viaSimd, viaScalar), 1e-12);
            EXPECT_TRUE(bitIdentical(viaSimd, viaScalar))
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(Simd, Apply1qDiagMatchesScalarOnAllStrides)
{
    linalg::Rng rng(102);
    const Matrix u = qop::rz(1.2345);
    for (std::size_t n = 1; n <= 9; ++n) {
        for (std::size_t q = 0; q < n; ++q) {
            const CVector in = randomState(rng, n);
            CVector viaScalar = in, viaSimd = in;
            sim::scalar::apply1qDiag(viaScalar.data(), n, q, u(0, 0),
                                     u(1, 1));
            sim::apply1qDiag(viaSimd.data(), n, q, u(0, 0), u(1, 1));
            EXPECT_LT(maxDiff(viaSimd, viaScalar), 1e-12);
            EXPECT_TRUE(bitIdentical(viaSimd, viaScalar))
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(Simd, ApplyPauliMatchesScalarOnAllStrides)
{
    linalg::Rng rng(103);
    for (std::size_t n = 1; n <= 9; ++n) {
        for (std::size_t q = 0; q < n; ++q) {
            for (std::size_t p = 1; p <= 3; ++p) {
                const CVector in = randomState(rng, n);
                CVector viaScalar = in, viaSimd = in;
                sim::scalar::applyPauli(viaScalar.data(), n, q, p);
                sim::applyPauli(viaSimd.data(), n, q, p);
                EXPECT_TRUE(bitIdentical(viaSimd, viaScalar))
                    << "n=" << n << " q=" << q << " pauli=" << p;
            }
        }
    }
    CVector buf(2, Complex{1.0, 0.0});
    EXPECT_THROW(sim::applyPauli(buf.data(), 1, 0, 4),
                 std::invalid_argument);
    EXPECT_THROW(sim::applyPauli(buf.data(), 1, 0, 0),
                 std::invalid_argument);
}

TEST(Simd, Apply2qMatchesScalarOnAllPairs)
{
    linalg::Rng rng(104);
    for (std::size_t n = 2; n <= 8; ++n) {
        const Matrix u = linalg::haarUnitary(rng, 4);
        for (std::size_t a = 0; a < n; ++a) {
            for (std::size_t b = 0; b < n; ++b) {
                if (a == b)
                    continue;
                const CVector in = randomState(rng, n);
                CVector viaScalar = in, viaSimd = in;
                sim::scalar::apply2q(viaScalar.data(), n, a, b, u.data());
                sim::apply2q(viaSimd.data(), n, a, b, u.data());
                EXPECT_LT(maxDiff(viaSimd, viaScalar), 1e-12);
                EXPECT_TRUE(bitIdentical(viaSimd, viaScalar))
                    << "n=" << n << " pair (" << a << ", " << b << ")";
            }
        }
    }
}

TEST(Simd, Apply2qDiagMatchesScalarOnAllPairs)
{
    linalg::Rng rng(105);
    const Complex d[4] = {Complex{1.0, 0.0},
                          std::polar(1.0, 0.3),
                          std::polar(1.0, -0.7),
                          std::polar(1.0, 2.1)};
    for (std::size_t n = 2; n <= 8; ++n) {
        for (std::size_t a = 0; a < n; ++a) {
            for (std::size_t b = 0; b < n; ++b) {
                if (a == b)
                    continue;
                const CVector in = randomState(rng, n);
                CVector viaScalar = in, viaSimd = in;
                sim::scalar::apply2qDiag(viaScalar.data(), n, a, b, d);
                sim::apply2qDiag(viaSimd.data(), n, a, b, d);
                EXPECT_TRUE(bitIdentical(viaSimd, viaScalar))
                    << "n=" << n << " pair (" << a << ", " << b << ")";
            }
        }
    }
}

TEST(Simd, RangeKernelsMatchFullKernelsOnArbitraryPartitions)
{
    // Any partition of the group index space — including boundaries
    // that are not SIMD- or cache-aligned — must reassemble the full
    // sweep bit for bit, for both the dispatching and the scalar
    // reference range kernels.
    linalg::Rng rng(107);
    const Matrix u2 = linalg::haarUnitary(rng, 2);
    const Complex m2[4] = {u2(0, 0), u2(0, 1), u2(1, 0), u2(1, 1)};
    const Matrix u4 = linalg::haarUnitary(rng, 4);
    const Complex d4[4] = {Complex{1.0, 0.0}, std::polar(1.0, 0.4),
                           std::polar(1.0, -1.1), std::polar(1.0, 2.6)};
    const Matrix rz = qop::rz(0.9173);

    const auto partitionPoints = [](std::size_t groups) {
        std::vector<std::size_t> cuts{0, 1, 3, groups / 3,
                                      groups / 2 + 5, groups - 1, groups};
        std::sort(cuts.begin(), cuts.end());
        cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
        while (!cuts.empty() && cuts.back() > groups)
            cuts.pop_back();
        return cuts;
    };

    for (std::size_t n = 4; n <= 9; ++n) {
        const std::size_t pairs = (std::size_t{1} << n) / 2;
        const std::size_t quads = (std::size_t{1} << n) / 4;
        for (std::size_t q = 0; q < n; ++q) {
            const CVector in = randomState(rng, n);
            CVector full = in, ranged = in, scalarRanged = in;
            sim::apply1q(full.data(), n, q, m2);
            const auto cuts = partitionPoints(pairs);
            for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
                sim::apply1qRange(ranged.data(), n, q, m2, cuts[c],
                                  cuts[c + 1]);
                sim::scalar::apply1qRange(scalarRanged.data(), n, q, m2,
                                          cuts[c], cuts[c + 1]);
            }
            EXPECT_TRUE(bitIdentical(ranged, full)) << "n=" << n
                                                    << " q=" << q;
            EXPECT_TRUE(bitIdentical(scalarRanged, full))
                << "n=" << n << " q=" << q;

            CVector diagFull = in, diagRanged = in;
            sim::apply1qDiag(diagFull.data(), n, q, rz(0, 0), rz(1, 1));
            for (std::size_t c = 0; c + 1 < cuts.size(); ++c)
                sim::apply1qDiagRange(diagRanged.data(), n, q, rz(0, 0),
                                      rz(1, 1), cuts[c], cuts[c + 1]);
            EXPECT_TRUE(bitIdentical(diagRanged, diagFull))
                << "n=" << n << " q=" << q;
        }
        for (std::size_t a = 0; a < n; ++a) {
            for (std::size_t b = 0; b < n; ++b) {
                if (a == b)
                    continue;
                const CVector in = randomState(rng, n);
                CVector full = in, ranged = in, scalarRanged = in;
                sim::apply2q(full.data(), n, a, b, u4.data());
                const auto cuts = partitionPoints(quads);
                for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
                    sim::apply2qRange(ranged.data(), n, a, b, u4.data(),
                                      cuts[c], cuts[c + 1]);
                    sim::scalar::apply2qRange(scalarRanged.data(), n, a, b,
                                              u4.data(), cuts[c],
                                              cuts[c + 1]);
                }
                EXPECT_TRUE(bitIdentical(ranged, full))
                    << "n=" << n << " pair (" << a << ", " << b << ")";
                EXPECT_TRUE(bitIdentical(scalarRanged, full))
                    << "n=" << n << " pair (" << a << ", " << b << ")";

                CVector diagFull = in, diagRanged = in;
                sim::apply2qDiag(diagFull.data(), n, a, b, d4);
                for (std::size_t c = 0; c + 1 < cuts.size(); ++c)
                    sim::apply2qDiagRange(diagRanged.data(), n, a, b, d4,
                                          cuts[c], cuts[c + 1]);
                EXPECT_TRUE(bitIdentical(diagRanged, diagFull))
                    << "n=" << n << " pair (" << a << ", " << b << ")";
            }
        }
    }
}

TEST(Simd, DenseKernelMatchesEmbeddingAndRangePartition)
{
    // The k >= 3 generic fallback previously had no equivalence pin of
    // its own: check it against the dense embedding (1e-12) and check
    // that an arbitrary partition of its group sweep is bit-identical
    // to the full kernel.
    linalg::Rng rng(108);
    for (std::size_t n = 4; n <= 6; ++n) {
        for (const std::size_t k : {std::size_t{3}, std::size_t{4}}) {
            if (k > n)
                continue;
            // A scattered, non-ascending qubit list stresses the
            // bit-expansion path.
            std::vector<std::size_t> qubits;
            for (std::size_t q = 0; q < n; ++q)
                qubits.push_back(q);
            std::shuffle(qubits.begin(), qubits.end(), rng.engine());
            qubits.resize(k);
            const Matrix u =
                linalg::haarUnitary(rng, std::size_t{1} << k);
            const CVector in = randomState(rng, n);

            CVector viaKernel = in;
            sim::applyDense(viaKernel.data(), n, u, qubits);
            const CVector viaEmbed = qop::embed(u, qubits, n) * in;
            EXPECT_LT(maxDiff(viaKernel, viaEmbed), 1e-12)
                << "n=" << n << " k=" << k;

            const std::size_t groups = (std::size_t{1} << n) >> k;
            CVector viaRange = in;
            std::size_t g = 0;
            std::size_t step = 1;
            while (g < groups) {
                const std::size_t end = std::min(groups, g + step);
                sim::applyDenseRange(viaRange.data(), n, u, qubits, g,
                                     end);
                g = end;
                step = step * 2 + 1; // uneven, unaligned chunks
            }
            EXPECT_TRUE(bitIdentical(viaRange, viaKernel))
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(Simd, ParallelExecuteOpMatchesSerialForEveryKernelKind)
{
    // Chunked pool execution of a single sweep must be bit-identical
    // to the serial kernel for every KernelKind, including the dense
    // fallback. n = 14 clears the engine's minimum parallel group
    // count for all kinds.
    linalg::Rng rng(109);
    const std::size_t n = 14;
    sim::ThreadPool pool(3);

    std::vector<sim::KernelOp> ops;
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::OneQ;
        op.q0 = 5;
        const Matrix u = linalg::haarUnitary(rng, 2);
        for (std::size_t i = 0; i < 4; ++i)
            op.m[i] = u(i / 2, i % 2);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::OneQDiag;
        op.q0 = 12;
        const Matrix rz = qop::rz(0.377);
        op.m[0] = rz(0, 0);
        op.m[1] = rz(1, 1);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::TwoQ;
        op.q0 = 3;
        op.q1 = 11;
        const Matrix u = linalg::haarUnitary(rng, 4);
        for (std::size_t i = 0; i < 16; ++i)
            op.m[i] = u(i / 4, i % 4);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::TwoQDiag;
        op.q0 = 13;
        op.q1 = 2;
        op.m[0] = Complex{1.0, 0.0};
        op.m[1] = std::polar(1.0, 0.7);
        op.m[2] = std::polar(1.0, -0.2);
        op.m[3] = std::polar(1.0, 1.9);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::Dense;
        op.dense = linalg::haarUnitary(rng, 8);
        op.qubits = {9, 1, 6};
        ops.push_back(op);
    }

    for (const sim::KernelOp &op : ops) {
        ASSERT_GE(sim::opGroupCount(op, n), 1024u);
        const CVector in = randomState(rng, n);
        CVector serial = in;
        sim::executeOp(op, serial.data(), n);
        for (const std::size_t chunk : {std::size_t{0}, std::size_t{100},
                                        std::size_t{1024}}) {
            CVector parallel = in;
            sim::ExecOptions exec;
            exec.pool = &pool;
            exec.chunk = chunk;
            sim::executeOp(op, parallel.data(), n, exec);
            EXPECT_TRUE(bitIdentical(parallel, serial))
                << "kind=" << static_cast<int>(op.kind)
                << " chunk=" << chunk;
        }
    }
}

TEST(Simd, ParallelPlanExecutionMatchesSerial)
{
    // Whole-plan state-parallel execution (transient pool from
    // ExecOptions::threads) against the serial backend on a mixed
    // circuit: 1q, diagonal, 2q, and a 3-qubit dense gate.
    linalg::Rng rng(110);
    const std::size_t n = 14;
    circuit::Circuit c(n);
    for (int layer = 0; layer < 3; ++layer) {
        for (std::size_t q = 0; q < n; q += 2)
            c.add(linalg::haarUnitary(rng, 2), {q});
        for (std::size_t q = 0; q + 1 < n; q += 3)
            c.add(linalg::haarUnitary(rng, 4), {q, q + 1});
        c.add(qop::rz(0.31 * (layer + 1)), {std::size_t(layer)});
        c.add(qop::cz(), {std::size_t(layer), std::size_t(layer + 4)});
    }
    c.add(linalg::haarUnitary(rng, 8), {1, 7, 12});

    const sim::Plan plan = sim::compile(c);
    const CVector serial = sim::run(plan);

    sim::ExecOptions exec;
    exec.threads = 4;
    const CVector viaTransient = sim::run(plan, exec);
    EXPECT_TRUE(bitIdentical(viaTransient, serial));
    EXPECT_LT(maxDiff(viaTransient, serial), 1e-12);

    sim::ThreadPool pool(4);
    exec.pool = &pool;
    exec.chunk = 100; // not a granule multiple: pins the round-up path
    CVector viaPool(serial.size(), Complex{0.0, 0.0});
    viaPool[0] = 1.0;
    plan.execute(viaPool.data(), exec);
    EXPECT_TRUE(bitIdentical(viaPool, serial));
}

TEST(Simd, LargeRegisterSpotCheck)
{
    // One 16-qubit sweep (65k amplitudes, fully vectorized strides) so
    // the equivalence evidence is not limited to toy sizes.
    linalg::Rng rng(106);
    const std::size_t n = 16;
    const Matrix u2 = linalg::haarUnitary(rng, 2);
    const Complex m[4] = {u2(0, 0), u2(0, 1), u2(1, 0), u2(1, 1)};
    const Matrix u4 = linalg::haarUnitary(rng, 4);
    const CVector in = randomState(rng, n);
    CVector viaScalar = in, viaSimd = in;
    for (std::size_t q = 0; q < n; ++q) {
        sim::scalar::apply1q(viaScalar.data(), n, q, m);
        sim::apply1q(viaSimd.data(), n, q, m);
    }
    for (std::size_t q = 0; q + 1 < n; q += 2) {
        sim::scalar::apply2q(viaScalar.data(), n, q, q + 1, u4.data());
        sim::apply2q(viaSimd.data(), n, q, q + 1, u4.data());
    }
    EXPECT_LT(maxDiff(viaSimd, viaScalar), 1e-12);
    EXPECT_TRUE(bitIdentical(viaSimd, viaScalar));
}

} // namespace

/**
 * @file
 * Scalar-vs-SIMD kernel equivalence suite (fast; runs under the CI
 * sanitizer matrix). Every dispatching kernel in sim/kernels.hh must
 * reproduce its sim::scalar reference on random states — the SIMD
 * lanes replay the scalar IEEE operation order exactly, so the paths
 * agree bit for bit on finite amplitudes; the acceptance bound asserted
 * here is 1e-12, with an additional exact check guarding the
 * bit-identical contract the pinned Figure-7 regressions rely on.
 * Register widths sweep past the vector length so both the vectorized
 * inner loops and the short-stride scalar fallback are exercised.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/random.hh"
#include "qop/gates.hh"
#include "sim/kernels.hh"
#include "sim_test_util.hh"

namespace {

using namespace crisc;
using linalg::Complex;
using linalg::CVector;
using linalg::Matrix;
using testutil::maxDiff;
using testutil::randomState;

bool
bitIdentical(const CVector &a, const CVector &b)
{
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].real() != b[i].real() || a[i].imag() != b[i].imag())
            return false;
    return true;
}

TEST(Simd, BackendIsWellFormed)
{
    const std::string backend = sim::simdBackendName();
    EXPECT_TRUE(backend == "avx2" || backend == "neon" ||
                backend == "scalar")
        << backend;
    const std::size_t lanes = sim::simdLanes();
    EXPECT_GE(lanes, 1u);
    EXPECT_EQ(lanes & (lanes - 1), 0u) << "lane count must be 2^k";
}

TEST(Simd, Apply1qMatchesScalarOnAllStrides)
{
    linalg::Rng rng(101);
    for (std::size_t n = 1; n <= 9; ++n) {
        const Matrix u = linalg::haarUnitary(rng, 2);
        const Complex m[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
        for (std::size_t q = 0; q < n; ++q) {
            const CVector in = randomState(rng, n);
            CVector viaScalar = in, viaSimd = in;
            sim::scalar::apply1q(viaScalar.data(), n, q, m);
            sim::apply1q(viaSimd.data(), n, q, m);
            EXPECT_LT(maxDiff(viaSimd, viaScalar), 1e-12);
            EXPECT_TRUE(bitIdentical(viaSimd, viaScalar))
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(Simd, Apply1qDiagMatchesScalarOnAllStrides)
{
    linalg::Rng rng(102);
    const Matrix u = qop::rz(1.2345);
    for (std::size_t n = 1; n <= 9; ++n) {
        for (std::size_t q = 0; q < n; ++q) {
            const CVector in = randomState(rng, n);
            CVector viaScalar = in, viaSimd = in;
            sim::scalar::apply1qDiag(viaScalar.data(), n, q, u(0, 0),
                                     u(1, 1));
            sim::apply1qDiag(viaSimd.data(), n, q, u(0, 0), u(1, 1));
            EXPECT_LT(maxDiff(viaSimd, viaScalar), 1e-12);
            EXPECT_TRUE(bitIdentical(viaSimd, viaScalar))
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(Simd, ApplyPauliMatchesScalarOnAllStrides)
{
    linalg::Rng rng(103);
    for (std::size_t n = 1; n <= 9; ++n) {
        for (std::size_t q = 0; q < n; ++q) {
            for (std::size_t p = 1; p <= 3; ++p) {
                const CVector in = randomState(rng, n);
                CVector viaScalar = in, viaSimd = in;
                sim::scalar::applyPauli(viaScalar.data(), n, q, p);
                sim::applyPauli(viaSimd.data(), n, q, p);
                EXPECT_TRUE(bitIdentical(viaSimd, viaScalar))
                    << "n=" << n << " q=" << q << " pauli=" << p;
            }
        }
    }
    CVector buf(2, Complex{1.0, 0.0});
    EXPECT_THROW(sim::applyPauli(buf.data(), 1, 0, 4),
                 std::invalid_argument);
    EXPECT_THROW(sim::applyPauli(buf.data(), 1, 0, 0),
                 std::invalid_argument);
}

TEST(Simd, Apply2qMatchesScalarOnAllPairs)
{
    linalg::Rng rng(104);
    for (std::size_t n = 2; n <= 8; ++n) {
        const Matrix u = linalg::haarUnitary(rng, 4);
        for (std::size_t a = 0; a < n; ++a) {
            for (std::size_t b = 0; b < n; ++b) {
                if (a == b)
                    continue;
                const CVector in = randomState(rng, n);
                CVector viaScalar = in, viaSimd = in;
                sim::scalar::apply2q(viaScalar.data(), n, a, b, u.data());
                sim::apply2q(viaSimd.data(), n, a, b, u.data());
                EXPECT_LT(maxDiff(viaSimd, viaScalar), 1e-12);
                EXPECT_TRUE(bitIdentical(viaSimd, viaScalar))
                    << "n=" << n << " pair (" << a << ", " << b << ")";
            }
        }
    }
}

TEST(Simd, Apply2qDiagMatchesScalarOnAllPairs)
{
    linalg::Rng rng(105);
    const Complex d[4] = {Complex{1.0, 0.0},
                          std::polar(1.0, 0.3),
                          std::polar(1.0, -0.7),
                          std::polar(1.0, 2.1)};
    for (std::size_t n = 2; n <= 8; ++n) {
        for (std::size_t a = 0; a < n; ++a) {
            for (std::size_t b = 0; b < n; ++b) {
                if (a == b)
                    continue;
                const CVector in = randomState(rng, n);
                CVector viaScalar = in, viaSimd = in;
                sim::scalar::apply2qDiag(viaScalar.data(), n, a, b, d);
                sim::apply2qDiag(viaSimd.data(), n, a, b, d);
                EXPECT_TRUE(bitIdentical(viaSimd, viaScalar))
                    << "n=" << n << " pair (" << a << ", " << b << ")";
            }
        }
    }
}

TEST(Simd, LargeRegisterSpotCheck)
{
    // One 16-qubit sweep (65k amplitudes, fully vectorized strides) so
    // the equivalence evidence is not limited to toy sizes.
    linalg::Rng rng(106);
    const std::size_t n = 16;
    const Matrix u2 = linalg::haarUnitary(rng, 2);
    const Complex m[4] = {u2(0, 0), u2(0, 1), u2(1, 0), u2(1, 1)};
    const Matrix u4 = linalg::haarUnitary(rng, 4);
    const CVector in = randomState(rng, n);
    CVector viaScalar = in, viaSimd = in;
    for (std::size_t q = 0; q < n; ++q) {
        sim::scalar::apply1q(viaScalar.data(), n, q, m);
        sim::apply1q(viaSimd.data(), n, q, m);
    }
    for (std::size_t q = 0; q + 1 < n; q += 2) {
        sim::scalar::apply2q(viaScalar.data(), n, q, q + 1, u4.data());
        sim::apply2q(viaSimd.data(), n, q, q + 1, u4.data());
    }
    EXPECT_LT(maxDiff(viaSimd, viaScalar), 1e-12);
    EXPECT_TRUE(bitIdentical(viaSimd, viaScalar));
}

} // namespace

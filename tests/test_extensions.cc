/**
 * @file
 * Tests for the extension features: the constructive generic-gate QSD
 * (Theorem 13) and the FRB average-fidelity estimator.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ashn/special.hh"
#include "calib/frb.hh"
#include "calib/pulse_opt.hh"
#include "linalg/random.hh"
#include "qop/metrics.hh"
#include "synth/compiler.hh"
#include "synth/qsd.hh"

namespace {

using namespace crisc;
using linalg::Matrix;

TEST(GenericQsd, CountFormula)
{
    EXPECT_EQ(synth::genericQsdCount(3), 12u);
    EXPECT_EQ(synth::genericQsdCount(4), 4u * 12 + 24); // 72
    EXPECT_EQ(synth::genericQsdCount(5), 4u * 72 + 48); // 336
    // One base-case gate above the paper's Theorem 13 at every n.
    EXPECT_EQ(synth::theorem13Count(4), 68u);
}

TEST(GenericQsd, TwoAndThreeQubitBases)
{
    linalg::Rng rng(5);
    const Matrix u2 = linalg::haarUnitary(rng, 4);
    const circuit::Circuit c2 = synth::genericQsd(u2);
    EXPECT_EQ(c2.twoQubitCount(), 1u);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(c2.toUnitary(), u2, 1e-9));

    const Matrix u3 = linalg::haarUnitary(rng, 8);
    const circuit::Circuit c3 = synth::genericQsd(u3);
    EXPECT_LE(c3.twoQubitCount(), 12u);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(c3.toUnitary(), u3, 1e-5));
}

TEST(GenericQsd, FourQubitHaarUnitary)
{
    linalg::Rng rng(7);
    const Matrix u = linalg::haarUnitary(rng, 16);
    const circuit::Circuit c = synth::genericQsd(u);
    EXPECT_LE(c.twoQubitCount(), synth::genericQsdCount(4));
    // Substantially below the CNOT-set construction.
    EXPECT_LT(c.twoQubitCount(), synth::qsdCnotCount(4));
    EXPECT_TRUE(qop::equalUpToGlobalPhase(c.toUnitary(), u, 1e-5));
}

TEST(Frb, NoiselessSurvivalStaysAtOne)
{
    linalg::Rng rng(11);
    calib::FrbNoise noise; // no depolarizing, identity transfer
    const calib::FrbResult r =
        calib::runFrb(noise, {1, 4, 8}, 10, 1.1, rng);
    for (const auto &pt : r.decay)
        EXPECT_NEAR(pt.survival, 1.0, 1e-9) << "m=" << pt.length;
    EXPECT_NEAR(r.averageGateFidelity, 1.0, 1e-6);
}

TEST(Frb, DecayTracksDepolarizingStrength)
{
    linalg::Rng rng(13);
    calib::FrbNoise weak;
    weak.depolarizingPerTime = 0.005;
    calib::FrbNoise strong;
    strong.depolarizingPerTime = 0.03;
    const std::vector<int> lengths{1, 3, 6, 10, 15};
    const calib::FrbResult rw = calib::runFrb(weak, lengths, 60, 1.1, rng);
    const calib::FrbResult rs = calib::runFrb(strong, lengths, 60, 1.1, rng);
    EXPECT_GT(rw.fittedDecayRate, rs.fittedDecayRate);
    EXPECT_GT(rw.averageGateFidelity, rs.averageGateFidelity);
    // Rough magnitude: per-gate error ~ rate * mean gate time (~1.5/g).
    EXPECT_NEAR(1.0 - rw.fittedDecayRate, 0.005 * 1.5, 0.006);
    EXPECT_LT(rs.averageGateFidelity, 0.99);
    EXPECT_GT(rs.averageGateFidelity, 0.90);
}

TEST(Frb, CoherentControlErrorLowersFidelity)
{
    linalg::Rng rng(17);
    calib::FrbNoise miscal;
    miscal.transfer = {1.05, 0.95, 1.05}; // 5% transfer error, no decoherence
    const calib::FrbResult r =
        calib::runFrb(miscal, {1, 3, 6, 10}, 40, 1.1, rng);
    EXPECT_LT(r.averageGateFidelity, 0.999);
    EXPECT_GT(r.averageGateFidelity, 0.5);
}

class PulseOptShapes
    : public ::testing::TestWithParam<calib::EnvelopeShape>
{
};

TEST_P(PulseOptShapes, RecalibrationCancelsEnvelopeDistortion)
{
    // Paper footnote 4: ramped envelopes "can be addressed with proper
    // calibration". Demonstrate it on the CNOT class with a ramp of 12%
    // of the gate time.
    const weyl::WeylPoint target{M_PI / 4.0, 0.0, 0.0};
    const calib::PulseOptResult r = calib::optimizePulse(
        target, 0.0, 0.0, GetParam(), 0.12 * M_PI / 2.0);
    EXPECT_GT(r.errorBefore, 1e-3);
    EXPECT_LT(r.errorAfter, 1e-7);
    EXPECT_LT(r.errorAfter, r.errorBefore / 100.0);
    // The recalibrated pulse stretches to recover the lost area.
    EXPECT_GT(r.params.tau, M_PI / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PulseOptShapes,
                         ::testing::Values(calib::EnvelopeShape::Trapezoid,
                                           calib::EnvelopeShape::CosineRamp));

TEST(PulseOpt, GenericChamberPointWithZZ)
{
    const weyl::WeylPoint target{0.6, 0.45, 0.2};
    const calib::PulseOptResult r = calib::optimizePulse(
        target, 0.2, 0.0, calib::EnvelopeShape::Trapezoid, 0.1);
    EXPECT_LT(r.errorAfter, 1e-6);
    EXPECT_LT(r.errorAfter, r.errorBefore);
    EXPECT_TRUE(linalg::isUnitary(r.realized, 1e-9));
}

TEST(PulseOpt, SquareEnvelopeNeedsNoCorrection)
{
    const weyl::WeylPoint target{0.5, 0.3, -0.1};
    const calib::PulseOptResult r = calib::optimizePulse(
        target, 0.0, 0.0, calib::EnvelopeShape::Square, 0.0);
    EXPECT_LT(r.errorBefore, 1e-6);
}

TEST(Compiler, PreservesCircuitUnitary)
{
    linalg::Rng rng(21);
    circuit::Circuit c(3);
    c.add(linalg::haarUnitary(rng, 2), {0}, "u0");
    c.add(linalg::haarUnitary(rng, 4), {0, 1}, "u01");
    c.add(linalg::haarUnitary(rng, 2), {2}, "u2");
    c.add(linalg::haarUnitary(rng, 4), {1, 2}, "u12");
    c.add(linalg::haarUnitary(rng, 4), {2, 0}, "u20");
    const synth::CompiledProgram prog = synth::compileCircuit(c, 0.1, 1.1);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(prog.circuit.toUnitary(),
                                          c.toUnitary(), 1e-5));
    // One pulse per two-qubit gate, nothing more.
    EXPECT_EQ(prog.pulses.size(), 3u);
    EXPECT_EQ(prog.circuit.twoQubitCount(), 3u);
    EXPECT_GT(prog.totalTwoQubitTime, 0.0);
    for (const auto &p : prog.pulses)
        EXPECT_LE(p.params.maxDrive(), ashn::driveBound(1.1) + 1e-6);
}

TEST(Compiler, ExpandsWideGatesThroughGenericQsd)
{
    linalg::Rng rng(23);
    circuit::Circuit c(3);
    c.add(linalg::haarUnitary(rng, 8), {0, 1, 2}, "u012");
    const synth::CompiledProgram prog = synth::compileCircuit(c, 0.0, 1.1);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(prog.circuit.toUnitary(),
                                          c.toUnitary(), 1e-4));
    EXPECT_LE(prog.pulses.size(), 12u);
}

TEST(Compiler, SingleQubitOnlyCircuitHasNoPulses)
{
    linalg::Rng rng(29);
    circuit::Circuit c(2);
    c.add(linalg::haarUnitary(rng, 2), {0});
    c.add(linalg::haarUnitary(rng, 2), {1});
    const synth::CompiledProgram prog = synth::compileCircuit(c, 0.0, 0.5);
    EXPECT_TRUE(prog.pulses.empty());
    EXPECT_EQ(prog.totalTwoQubitTime, 0.0);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(prog.circuit.toUnitary(),
                                          c.toUnitary(), 1e-9));
}

TEST(Frb, RejectsEmptyExperiment)
{
    linalg::Rng rng(1);
    EXPECT_THROW(calib::runFrb({}, {}, 5, 0.0, rng), std::invalid_argument);
}

} // namespace

/**
 * @file
 * Tracing & metrics subsystem (src/obs/): span recording across
 * threads, Chrome trace-event export, counter determinism, and the
 * instrumentation-never-changes-results contract. Every test that
 * needs the OBS_* macros compiled in skips itself under
 * -DCRISC_OBS=OFF; the determinism tests run in both configurations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "circuit/circuit.hh"
#include "device/weyl_cache.hh"
#include "linalg/random.hh"
#include "obs/obs.hh"
#include "qv/qv.hh"
#include "sim/batch.hh"
#include "sim/engine.hh"
#include "sim_test_util.hh"

using namespace crisc;
using linalg::CVector;
using testutil::randomState;

namespace {

// --------------------------------------------------------- mini JSON
// A dependency-free recursive-descent JSON reader, just enough to
// validate the exported Chrome trace: objects, arrays, strings,
// numbers, booleans, null. Throws std::runtime_error on malformed
// input, so a parse failure fails the test loudly.

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue &at(const std::string &key) const
    {
        const auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }
    bool has(const std::string &key) const
    {
        return object.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    JsonValue parse()
    {
        const JsonValue v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::runtime_error("json error at " + std::to_string(pos_) +
                                 ": " + what);
    }
    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }
    char peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }
    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }
    JsonValue value()
    {
        const char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            literal("null");
            return JsonValue{};
        }
        return number();
    }
    void literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                fail(std::string("expected ") + word);
            ++pos_;
        }
    }
    JsonValue boolean()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (peek() == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
        }
        return v;
    }
    JsonValue number()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::stod(s_.substr(start, pos_ - start));
        return v;
    }
    JsonValue string()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    fail("bad escape");
                switch (s_[pos_]) {
                  case '"': v.string += '"'; break;
                  case '\\': v.string += '\\'; break;
                  case '/': v.string += '/'; break;
                  case 'n': v.string += '\n'; break;
                  case 't': v.string += '\t'; break;
                  case 'u':
                    // Names are ASCII; keep the raw sequence.
                    v.string += "\\u";
                    break;
                  default: fail("bad escape");
                }
                ++pos_;
            } else {
                v.string += s_[pos_++];
            }
        }
        expect('"');
        return v;
    }
    JsonValue array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            const char c = peek();
            if (c == ']') {
                ++pos_;
                return v;
            }
            expect(',');
        }
    }
    JsonValue object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            const JsonValue key = string();
            expect(':');
            v.object[key.string] = value();
            const char c = peek();
            if (c == '}') {
                ++pos_;
                return v;
            }
            expect(',');
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** Events of @p trace with the given span name. */
std::vector<obs::SpanEvent>
eventsNamed(const obs::Trace &t, const std::string &name)
{
    std::vector<obs::SpanEvent> out;
    for (const obs::SpanEvent &e : t.events)
        if (name == e.name)
            out.push_back(e);
    return out;
}

/** Value of the named counter, or 0 if absent. */
std::uint64_t
counterValue(const obs::Trace &t, const std::string &name)
{
    for (const obs::CounterSample &c : t.counters)
        if (c.name == name)
            return c.value;
    return 0;
}

} // namespace

TEST(Obs, DisabledByDefaultAndTogglable)
{
    EXPECT_FALSE(obs::enabled());
    obs::setEnabled(true);
    EXPECT_TRUE(obs::enabled());
    obs::setEnabled(false);
    EXPECT_FALSE(obs::enabled());
    EXPECT_STREQ(obs::backendName(), obs::compiledIn() ? "ring" : "off");
}

TEST(Obs, NothingRecordedWhileDisabled)
{
    if (!obs::compiledIn())
        GTEST_SKIP() << "built with -DCRISC_OBS=OFF";
    // No session: the macros must not record or register counters.
    {
        OBS_SPAN("off.span");
        OBS_COUNT("off.count", 3);
    }
    obs::TraceSession session;
    session.start();
    session.stop();
    const obs::Trace t = session.collect();
    EXPECT_TRUE(eventsNamed(t, "off.span").empty());
    EXPECT_EQ(counterValue(t, "off.count"), 0u);
}

TEST(Obs, SpansNestAcrossThreads)
{
    if (!obs::compiledIn())
        GTEST_SKIP() << "built with -DCRISC_OBS=OFF";
    obs::TraceSession session;
    session.start();

    constexpr int kThreads = 3;
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([] {
            OBS_SPAN("nest.outer");
            {
                OBS_SPAN("nest.inner");
                volatile int sink = 0;
                for (int k = 0; k < 1000; ++k)
                    sink = sink + k;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    session.stop();
    const obs::Trace trace = session.collect();

    const auto outer = eventsNamed(trace, "nest.outer");
    const auto inner = eventsNamed(trace, "nest.inner");
    ASSERT_EQ(outer.size(), static_cast<std::size_t>(kThreads));
    ASSERT_EQ(inner.size(), static_cast<std::size_t>(kThreads));

    // Each thread gets its own tid, and on every thread the inner span
    // is contained within the outer one.
    std::set<std::uint32_t> tids;
    for (const obs::SpanEvent &o : outer) {
        tids.insert(o.tid);
        const auto it = std::find_if(
            inner.begin(), inner.end(),
            [&](const obs::SpanEvent &e) { return e.tid == o.tid; });
        ASSERT_NE(it, inner.end());
        EXPECT_LE(o.t0Ns, it->t0Ns);
        EXPECT_GE(o.t0Ns + o.durNs, it->t0Ns + it->durNs);
    }
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(Obs, ParallelForRecordsSpansAndCounters)
{
    if (!obs::compiledIn())
        GTEST_SKIP() << "built with -DCRISC_OBS=OFF";
    obs::TraceSession session;
    session.start();
    sim::ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](std::size_t) { ran.fetch_add(1); });
    session.stop();
    EXPECT_EQ(ran.load(), 8);

    const obs::Trace t = session.collect();
    EXPECT_EQ(eventsNamed(t, "pool.parallelFor").size(), 1u);
    EXPECT_EQ(eventsNamed(t, "pool.task").size(), 8u);
    EXPECT_EQ(counterValue(t, "pool.tasks"), 8u);
    EXPECT_EQ(counterValue(t, "pool.queue_depth"), 8u);

    // Every task span is contained in the parallelFor span.
    const obs::SpanEvent outer = eventsNamed(t, "pool.parallelFor")[0];
    for (const obs::SpanEvent &task : eventsNamed(t, "pool.task")) {
        EXPECT_GE(task.t0Ns, outer.t0Ns);
        EXPECT_LE(task.t0Ns + task.durNs, outer.t0Ns + outer.durNs);
    }
}

TEST(Obs, CountersSumDeterministicallyAcrossThreadCounts)
{
    if (!obs::compiledIn())
        GTEST_SKIP() << "built with -DCRISC_OBS=OFF";
    constexpr std::size_t kTrajectories = 12;
    for (const std::size_t threads : {1u, 2u, 4u}) {
        obs::TraceSession session;
        session.start();
        sim::ThreadPool pool(threads);
        sim::runTrajectories(pool, kTrajectories, 99,
                             [](std::size_t, linalg::Rng &rng) {
                                 OBS_COUNT("test.custom", 2);
                                 return rng.uniform();
                             });
        session.stop();
        const obs::Trace t = session.collect();
        EXPECT_EQ(counterValue(t, "traj.count"), kTrajectories)
            << "threads=" << threads;
        EXPECT_EQ(counterValue(t, "test.custom"), 2 * kTrajectories)
            << "threads=" << threads;
        EXPECT_EQ(eventsNamed(t, "traj.trajectory").size(), kTrajectories)
            << "threads=" << threads;
    }
}

TEST(Obs, WeylCacheHitMissCounters)
{
    if (!obs::compiledIn())
        GTEST_SKIP() << "built with -DCRISC_OBS=OFF";
    obs::TraceSession session;
    session.start();
    device::WeylCache cache;
    cache.lookup({0.3, 0.1, 0.05}, 0.0, 0.0);
    cache.lookup({0.3, 0.1, 0.05}, 0.0, 0.0);
    session.stop();
    const obs::Trace t = session.collect();
    EXPECT_EQ(counterValue(t, "weyl_cache.miss"), 1u);
    EXPECT_EQ(counterValue(t, "weyl_cache.hit"), 1u);
    EXPECT_EQ(eventsNamed(t, "weyl.synthesize").size(), 1u);
}

TEST(Obs, TimedSpanMatchesRecordedDuration)
{
    if (!obs::compiledIn())
        GTEST_SKIP() << "built with -DCRISC_OBS=OFF";
    obs::TraceSession session;
    session.start();
    obs::TimedSpan span("test.timed");
    volatile double sink = 0.0;
    for (int i = 0; i < 50000; ++i)
        sink = sink + 1e-9;
    const double secs = span.finishSeconds();
    session.stop();
    EXPECT_GT(secs, 0.0);
    const obs::Trace t = session.collect();
    const auto events = eventsNamed(t, "test.timed");
    ASSERT_EQ(events.size(), 1u);
    // The report field and the trace event come from the same two
    // clock samples.
    EXPECT_NEAR(secs, static_cast<double>(events[0].durNs) * 1e-9,
                1e-12);
}

TEST(Obs, InternedNamesAreStableAndDeduplicated)
{
    const char *a = obs::internName("pass.Example");
    const char *b = obs::internName(std::string("pass.") + "Example");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "pass.Example");
}

TEST(Obs, SummarizeAggregatesByName)
{
    obs::Trace t;
    t.events = {{"a", 0, 0, 10},  {"a", 0, 20, 30}, {"a", 1, 5, 20},
                {"b", 0, 50, 40}, {"a", 1, 90, 40}};
    const std::vector<obs::SpanSummary> sums = obs::summarize(t);
    ASSERT_EQ(sums.size(), 2u);
    EXPECT_EQ(sums[0].name, "a");
    EXPECT_EQ(sums[0].count, 4u);
    EXPECT_EQ(sums[0].totalNs, 100u);
    EXPECT_DOUBLE_EQ(sums[0].meanNs, 25.0);
    // Nearest-rank p95 of {10, 20, 30, 40} is the 4th value.
    EXPECT_EQ(sums[0].p95Ns, 40u);
    EXPECT_EQ(sums[1].name, "b");
    EXPECT_EQ(sums[1].count, 1u);
    EXPECT_EQ(sums[1].p95Ns, 40u);
}

TEST(Obs, MergeIntoSumsCountersAndConcatenatesEvents)
{
    obs::Trace a;
    a.events = {{"x", 0, 10, 5}};
    a.counters = {{"c1", 3}, {"c2", 1}};
    a.dropped = 2;
    obs::Trace b;
    b.events = {{"y", 1, 0, 5}};
    b.counters = {{"c1", 4}, {"c3", 7}};
    b.dropped = 1;
    obs::mergeInto(a, b);
    EXPECT_EQ(a.events.size(), 2u);
    EXPECT_EQ(counterValue(a, "c1"), 7u);
    EXPECT_EQ(counterValue(a, "c2"), 1u);
    EXPECT_EQ(counterValue(a, "c3"), 7u);
    EXPECT_EQ(a.dropped, 3u);
}

TEST(Obs, ChromeTraceJsonParsesAndRoundTrips)
{
    // Hand-built trace: valid in every build configuration.
    obs::Trace trace;
    trace.events = {{"alpha", 0, 1000, 500},
                    {"beta", 0, 1200, 100},
                    {"alpha", 1, 900, 2000}};
    trace.counters = {{"hits", 3}};
    const std::string json = obs::chromeTraceJson(trace);

    const JsonValue root = JsonParser(json).parse();
    ASSERT_EQ(root.kind, JsonValue::Kind::Object);
    const JsonValue &events = root.at("traceEvents");
    ASSERT_EQ(events.kind, JsonValue::Kind::Array);

    std::size_t xCount = 0;
    std::map<double, double> lastTsPerTid;
    std::set<double> metaTids;
    std::size_t counterEvents = 0;
    for (const JsonValue &e : events.array) {
        const std::string ph = e.at("ph").string;
        EXPECT_EQ(e.at("pid").number, 1.0);
        if (ph == "X") {
            ++xCount;
            const double tid = e.at("tid").number;
            const double ts = e.at("ts").number;
            EXPECT_GE(ts, 0.0);
            EXPECT_GE(e.at("dur").number, 0.0);
            // Events are sorted by (tid, t0): per-tid timestamps are
            // monotone non-decreasing.
            if (lastTsPerTid.count(tid))
                EXPECT_GE(ts, lastTsPerTid[tid]);
            lastTsPerTid[tid] = ts;
            EXPECT_FALSE(e.at("name").string.empty());
        } else if (ph == "M") {
            if (e.at("name").string == "thread_name")
                metaTids.insert(e.at("tid").number);
        } else if (ph == "C") {
            ++counterEvents;
            EXPECT_TRUE(e.at("args").has("value"));
        }
    }
    EXPECT_EQ(xCount, trace.events.size());
    EXPECT_EQ(metaTids.size(), 2u); // tids 0 and 1
    EXPECT_EQ(counterEvents, trace.counters.size());

    // Timestamps are rebased to the earliest event.
    double minTs = 1e300;
    for (const JsonValue &e : events.array)
        if (e.at("ph").string == "X")
            minTs = std::min(minTs, e.at("ts").number);
    EXPECT_EQ(minTs, 0.0);

    const JsonValue &other = root.at("otherData");
    EXPECT_EQ(other.at("backend").string, obs::backendName());
    EXPECT_EQ(other.at("dropped_events").number, 0.0);
}

TEST(Obs, ChromeTraceOfLiveSessionIsValid)
{
    if (!obs::compiledIn())
        GTEST_SKIP() << "built with -DCRISC_OBS=OFF";
    obs::TraceSession session;
    session.start();
    sim::ThreadPool pool(2);
    pool.parallelFor(4, [](std::size_t) {
        OBS_SPAN("live.work");
    });
    session.stop();
    const obs::Trace trace = session.collect();
    ASSERT_FALSE(trace.events.empty());

    const JsonValue root = JsonParser(obs::chromeTraceJson(trace)).parse();
    std::size_t xCount = 0;
    for (const JsonValue &e : root.at("traceEvents").array)
        if (e.at("ph").string == "X")
            ++xCount;
    EXPECT_EQ(xCount, trace.events.size());
}

TEST(Obs, EnabledVsDisabledSimulationBitIdentical)
{
    // Build a statevector run and compare amplitudes with tracing off
    // and on: instrumentation must not change a single bit. Runs in
    // both build configurations (trivially under -DCRISC_OBS=OFF).
    linalg::Rng rng(5);
    const std::size_t n = 6;
    circuit::Circuit c(n);
    for (int g = 0; g < 24; ++g) {
        const std::size_t a = rng.index(n);
        std::size_t b = rng.index(n - 1);
        if (b >= a)
            ++b;
        c.add(linalg::haarUnitary(rng, 4), {a, b});
    }
    const sim::Plan plan = sim::compile(c);

    sim::ExecOptions exec;
    exec.threads = 2;
    const CVector off = sim::run(plan, exec);

    obs::TraceSession session;
    session.start();
    const CVector on = sim::run(plan, exec);
    session.stop();

    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        EXPECT_EQ(off[i].real(), on[i].real()) << "amp " << i;
        EXPECT_EQ(off[i].imag(), on[i].imag()) << "amp " << i;
    }
}

TEST(Obs, EnabledVsDisabledQvBitIdentical)
{
    qv::QvConfig cfg;
    cfg.width = 3;
    cfg.circuits = 2;
    cfg.trajectories = 3;
    cfg.seed = 77;
    cfg.threads = 2;
    const qv::QvResult off = qv::heavyOutputExperiment(cfg);

    obs::TraceSession session;
    session.start();
    const qv::QvResult on = qv::heavyOutputExperiment(cfg);
    session.stop();

    EXPECT_EQ(off.heavyOutputProportion, on.heavyOutputProportion);
    EXPECT_EQ(off.avgNativeGatesPerCircuit, on.avgNativeGatesPerCircuit);
}

/**
 * @file
 * Tests for the device layer: coupling-map factories (line, ring,
 * heavy-hex), Device/NoiseModel/QvConfig validation, the per-set cost
 * models, and — the core guarantee — per-gate-set lowering
 * equivalence: the native program NativeLower emits for AshN, CZ, and
 * SQiSW targets reproduces the logical unitary, both gate-by-gate and
 * through the full routed pipeline on grid, line, and ring devices.
 */

#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "ashn/special.hh"
#include "circuit/circuit.hh"
#include "device/device.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"
#include "qv/qv.hh"
#include "route/route.hh"
#include "sim/engine.hh"
#include "synth/two_qubit.hh"
#include "transpile/transpile.hh"
#include "weyl/weyl.hh"

namespace {

using namespace crisc;
using circuit::Circuit;
using circuit::Gate;
using device::Device;
using device::NativeKind;
using linalg::Matrix;
using route::CouplingMap;

// ------------------------------------------------- coupling factories

TEST(CouplingFactories, LineIsAChain)
{
    const CouplingMap m = CouplingMap::line(5);
    ASSERT_EQ(m.numQubits(), 5u);
    for (std::size_t q = 0; q + 1 < 5; ++q)
        EXPECT_TRUE(m.adjacent(q, q + 1));
    EXPECT_FALSE(m.adjacent(0, 4));
    EXPECT_FALSE(m.adjacent(0, 2));
    EXPECT_EQ(m.shortestPath(0, 4).size(), 5u);
    EXPECT_THROW(CouplingMap::line(0), std::invalid_argument);
}

TEST(CouplingFactories, RingClosesTheChain)
{
    const CouplingMap m = CouplingMap::ring(6);
    ASSERT_EQ(m.numQubits(), 6u);
    for (std::size_t q = 0; q < 6; ++q) {
        EXPECT_TRUE(m.adjacent(q, (q + 1) % 6));
        EXPECT_EQ(m.neighbours(q).size(), 2u);
    }
    // Opposite side is 3 hops, not 5: the ring edge is used.
    EXPECT_EQ(m.shortestPath(0, 3).size(), 4u);
    EXPECT_EQ(m.shortestPath(0, 5).size(), 2u);
    // Degenerate sizes stay valid graphs.
    EXPECT_EQ(CouplingMap::ring(1).neighbours(0).size(), 0u);
    EXPECT_TRUE(CouplingMap::ring(2).adjacent(0, 1));
    EXPECT_THROW(CouplingMap::ring(0), std::invalid_argument);
}

TEST(CouplingFactories, HeavyHexShape)
{
    for (std::size_t d : {1u, 3u, 5u, 7u}) {
        const CouplingMap m = CouplingMap::heavyHex(d);
        ASSERT_EQ(m.numQubits(), (5 * d * d - 2 * d - 1) / 2) << "d=" << d;
        // Connected, and every vertex has degree <= 3 (the "heavy"
        // lattice property).
        for (std::size_t q = 0; q < m.numQubits(); ++q) {
            EXPECT_LE(m.neighbours(q).size(), 3u);
            EXPECT_FALSE(m.shortestPath(0, q).empty());
        }
    }
    // Data qubits of the d=3 lattice sit on a 3x3 grid subdivided by
    // flags: horizontal data neighbours are exactly 2 hops apart.
    const CouplingMap m3 = CouplingMap::heavyHex(3);
    EXPECT_EQ(m3.shortestPath(0, 1).size(), 3u);
    EXPECT_THROW(CouplingMap::heavyHex(0), std::invalid_argument);
    EXPECT_THROW(CouplingMap::heavyHex(2), std::invalid_argument);
    EXPECT_THROW(CouplingMap::heavyHex(4), std::invalid_argument);
}

// --------------------------------------------------------- validation

TEST(DeviceValidation, RejectsBadParameters)
{
    EXPECT_THROW(Device::grid2dAshN(0), std::invalid_argument);
    EXPECT_THROW(Device::grid2dCZ(4, {.twoQubitError = 1.5}),
                 std::invalid_argument);
    EXPECT_THROW(Device::grid2dCZ(4, {.twoQubitError = -0.1}),
                 std::invalid_argument);
    EXPECT_THROW(Device::grid2dSqisw(4, {.singleQubitError = 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(Device::grid2dAshN(4, {.h = 1.5}), std::invalid_argument);
    EXPECT_THROW(Device::grid2dAshN(4, {.r = -0.5}), std::invalid_argument);
    // Cutoff beyond ashn::synthesize's realizability bound
    // (1-|h|)*pi/2 fails at construction, not mid-transpile.
    EXPECT_THROW(Device::grid2dAshN(4, {.r = 2.0}), std::invalid_argument);
    EXPECT_THROW(Device::grid2dAshN(4, {.h = 0.5, .r = 1.0}),
                 std::invalid_argument);
    EXPECT_THROW(Device("x", CouplingMap::line(2), nullptr, {}),
                 std::invalid_argument);

    device::NoiseModel nan;
    nan.twoQubitError = std::nan("");
    EXPECT_THROW(nan.validate(), std::invalid_argument);
    device::NoiseModel zeroRef;
    zeroRef.referenceTime = 0.0;
    EXPECT_THROW(zeroRef.validate(), std::invalid_argument);
}

TEST(DeviceValidation, PresetsAreWellFormed)
{
    const Device dev = Device::grid2dAshN(7, {.r = 1.1});
    EXPECT_EQ(dev.numQubits(), 7u);
    EXPECT_EQ(dev.gateSet().kind(), NativeKind::AshN);
    EXPECT_STREQ(dev.gateSet().name(), "AshN");
    EXPECT_EQ(dev.control(), nullptr);
    calib::ControlModel fitted{1.05, 0.95, 1.02};
    Device calibrated = dev;
    calibrated.setControl(fitted);
    ASSERT_NE(calibrated.control(), nullptr);
    EXPECT_EQ(calibrated.control()->gainOmega1, 1.05);
    // The copy shares the gate set (and its Weyl cache).
    EXPECT_EQ(&calibrated.gateSet(), &dev.gateSet());
}

TEST(DeviceValidation, QvConfigRejectsGarbage)
{
    qv::QvConfig bad;
    bad.width = 0;
    EXPECT_THROW(qv::heavyOutputExperiment(bad), std::invalid_argument);
    bad = {};
    bad.width = 31;  // beyond the statevector simulation limit.
    EXPECT_THROW(qv::heavyOutputExperiment(bad), std::invalid_argument);
    bad = {};
    bad.circuits = 0;
    EXPECT_THROW(qv::heavyOutputExperiment(bad), std::invalid_argument);
    bad = {};
    bad.trajectories = -3;
    EXPECT_THROW(qv::heavyOutputExperiment(bad), std::invalid_argument);
    bad = {};
    bad.czError = 1.2;
    EXPECT_THROW(qv::heavyOutputExperiment(bad), std::invalid_argument);
    bad = {};
    bad.singleQubitError = -1e-3;
    EXPECT_THROW(qv::heavyOutputExperiment(bad), std::invalid_argument);
    // A device smaller than the requested width is rejected up front.
    const Device small = Device::grid2dAshN(2);
    bad = {};
    bad.width = 4;
    bad.device = &small;
    EXPECT_THROW(qv::heavyOutputExperiment(bad), std::invalid_argument);
}

// -------------------------------------------------------- cost models

TEST(NoiseModel, RatesScaleWithGateTime)
{
    device::NoiseModel n;
    n.twoQubitError = 0.012;
    EXPECT_DOUBLE_EQ(n.twoQubitRateFor(device::kCzTime), 0.012);
    EXPECT_DOUBLE_EQ(n.twoQubitRateFor(0.5 * device::kCzTime), 0.006);
    EXPECT_DOUBLE_EQ(n.twoQubitRateFor(0.0), 0.0);
}

TEST(GateSetCost, MatchesPaperModel)
{
    const weyl::WeylPoint swap = ashn::swapPoint();
    const weyl::WeylPoint cnot = ashn::cnotPoint();

    const auto cz = device::makeNativeGateSet(NativeKind::CZ)->cost(swap);
    EXPECT_EQ(cz.nativeGates, 3);
    EXPECT_NEAR(cz.totalTime, 3.0 * M_PI / std::sqrt(2.0), 1e-12);

    // CNOT class sits on the 2-SQiSW boundary x = y + |z|.
    const auto sqiswSet = device::makeNativeGateSet(NativeKind::SQiSW);
    EXPECT_EQ(sqiswSet->cost(cnot).nativeGates, 2);
    EXPECT_EQ(sqiswSet->cost(swap).nativeGates, 3);

    const auto an = device::makeNativeGateSet(NativeKind::AshN)->cost(swap);
    EXPECT_EQ(an.nativeGates, 1);
    EXPECT_NEAR(an.totalTime, 3.0 * M_PI / 4.0, 1e-12);
    // Near-identity gates under a cutoff pay the ND-EXT time.
    const auto tiny = device::makeNativeGateSet(NativeKind::AshN, 0.0, 1.1)
                          ->cost({0.01, 0.0, 0.0});
    EXPECT_NEAR(tiny.totalTime, M_PI - 0.02, 1e-9);

    // The qv::compileCost shim dispatches to the same gate sets.
    const auto shim = qv::compileCost(qv::NativeSet::SQiSW, swap, 0.0);
    EXPECT_EQ(shim.nativeGates, 3);
    EXPECT_DOUBLE_EQ(shim.totalTime, sqiswSet->cost(swap).totalTime);
}

// ------------------------------------------------ lowering equivalence

/** Gates worth lowering: specials plus Haar randoms. */
std::vector<Matrix>
lowerTargets(linalg::Rng &rng, int randoms)
{
    std::vector<Matrix> gates = {
        qop::cnot(), qop::swapGate(), qop::cz(), qop::iswap(),
        qop::sqisw(), qop::canonicalGate(0.3, 0.2, 0.1),
        linalg::kron(linalg::haarUnitary(rng, 2),
                     linalg::haarUnitary(rng, 2)),
        Matrix::identity(4),
    };
    for (int i = 0; i < randoms; ++i)
        gates.push_back(linalg::haarUnitary(rng, 4));
    return gates;
}

TEST(NativeLowering, EveryGateSetReproducesTheUnitary)
{
    linalg::Rng rng(21);
    const std::vector<Matrix> targets = lowerTargets(rng, 6);
    for (const NativeKind kind :
         {NativeKind::AshN, NativeKind::CZ, NativeKind::SQiSW}) {
        const auto set = device::makeNativeGateSet(kind, 0.0, 0.0);
        for (std::size_t i = 0; i < targets.size(); ++i) {
            const device::Lowered2q low = set->lower(targets[i]);
            EXPECT_TRUE(qop::equalUpToGlobalPhase(
                low.ops.toUnitary(), targets[i], 1e-5))
                << set->name() << " target " << i;
            // Native count bookkeeping matches the emitted circuit.
            std::size_t natives = 0;
            for (const Gate &g : low.ops.gates())
                natives += g.qubits.size() == 2;
            EXPECT_EQ(natives,
                      static_cast<std::size_t>(low.cost.nativeGates))
                << set->name() << " target " << i;
        }
    }
}

TEST(NativeLowering, CzUsesMinimalCountAndSqiswMatchesRegion)
{
    linalg::Rng rng(22);
    const std::vector<Matrix> targets = lowerTargets(rng, 4);
    const auto cz = device::makeNativeGateSet(NativeKind::CZ);
    const auto sq = device::makeNativeGateSet(NativeKind::SQiSW);
    for (const Matrix &u : targets) {
        EXPECT_EQ(static_cast<std::size_t>(cz->lower(u).cost.nativeGates),
                  synth::cnotCost(u));
        const weyl::WeylPoint p = weyl::weylCoordinates(u);
        EXPECT_EQ(sq->lower(u).cost.nativeGates, sq->cost(p).nativeGates);
    }
    // AshN is the headline: always exactly one native pulse.
    const auto an = device::makeNativeGateSet(NativeKind::AshN);
    for (const Matrix &u : targets) {
        const device::Lowered2q low = an->lower(u);
        EXPECT_EQ(low.cost.nativeGates, 1);
        ASSERT_TRUE(low.pulse.has_value());
        EXPECT_DOUBLE_EQ(low.cost.totalTime, low.pulse->tau);
    }
}

/** Undoes the routing permutation of @p routed given the final layout. */
Matrix
unpermute(const Matrix &routed, const route::Layout &layout, std::size_t n)
{
    const std::size_t dim = std::size_t{1} << n;
    Matrix out(dim, dim);
    for (std::size_t phys = 0; phys < dim; ++phys) {
        const std::size_t perm = layout.logicalBasisIndex(phys, n);
        for (std::size_t col = 0; col < dim; ++col)
            out(perm, col) = routed(phys, col);
    }
    return out;
}

TEST(NativeLowering, RoutedPipelineEquivalentOnGridLineAndRing)
{
    const std::size_t n = 4;
    linalg::Rng rng(23);

    struct Topology
    {
        const char *name;
        CouplingMap map;
    };
    const Topology topologies[] = {
        {"grid", CouplingMap::gridFor(n)},
        {"line", CouplingMap::line(n)},
        {"ring", CouplingMap::ring(n)},
    };
    for (const NativeKind kind :
         {NativeKind::AshN, NativeKind::CZ, NativeKind::SQiSW}) {
        for (const Topology &topo : topologies) {
            const Device dev =
                Device::withCoupling(kind, topo.map, {.r = 0.0});
            Circuit logical(n);
            for (int i = 0; i < 5; ++i) {
                const std::size_t a = rng.index(n);
                std::size_t b = rng.index(n);
                while (b == a)
                    b = rng.index(n);
                logical.add(linalg::haarUnitary(rng, 4), {a, b});
            }

            transpile::TranspileOptions opts;
            opts.device = &dev;
            const transpile::TranspileResult res =
                transpile::transpile(logical, opts);
            ASSERT_TRUE(res.context.layout.has_value());
            EXPECT_GT(res.context.nativeGates, 0u);
            if (kind == NativeKind::AshN)
                EXPECT_EQ(res.context.pulses.size(),
                          res.circuit.twoQubitCount());
            else
                EXPECT_TRUE(res.context.pulses.empty());

            const Matrix ur = unpermute(res.circuit.toUnitary(),
                                        *res.context.layout, n);
            EXPECT_TRUE(qop::equalUpToGlobalPhase(ur, logical.toUnitary(),
                                                  1e-5))
                << device::nativeKindName(kind) << " on " << topo.name;
        }
    }
}

TEST(NativeLowering, HeavyHexDeviceRoutesAndLowers)
{
    // A non-grid device is one line to construct and drops straight
    // into the same pipeline. 19 physical qubits is too wide for a
    // dense unitary, so compare statevectors: run both programs from
    // |0...0> and undo the routing permutation on basis indices.
    const Device dev = Device::withCoupling(
        NativeKind::AshN, CouplingMap::heavyHex(3), {.r = 1.1});
    const std::size_t n = dev.numQubits();
    linalg::Rng rng(24);
    Circuit logical(4);
    for (int i = 0; i < 4; ++i) {
        const std::size_t a = rng.index(4);
        std::size_t b = rng.index(4);
        while (b == a)
            b = rng.index(4);
        logical.add(linalg::haarUnitary(rng, 4), {a, b});
    }
    transpile::TranspileOptions opts;
    opts.device = &dev;
    const transpile::TranspileResult res =
        transpile::transpile(logical, opts);
    ASSERT_TRUE(res.context.layout.has_value());
    const route::Layout &layout = *res.context.layout;

    Circuit wide(n);
    for (const Gate &g : logical.gates())
        wide.add(g.op, g.qubits, g.label);
    const linalg::CVector ideal = sim::run(sim::compile(wide));
    const linalg::CVector lowered = sim::run(sim::compile(res.circuit));
    ASSERT_EQ(lowered.size(), ideal.size());
    linalg::Complex overlap{0.0, 0.0};
    for (std::size_t phys = 0; phys < lowered.size(); ++phys) {
        const std::size_t perm = layout.logicalBasisIndex(phys, n);
        overlap += std::conj(ideal[perm]) * lowered[phys];
    }
    EXPECT_NEAR(std::abs(overlap), 1.0, 1e-7);
}

TEST(QvOnDevice, DeviceLargerThanWidthRoutesThroughSpareQubits)
{
    // Width-3 circuits on a 4-qubit device whose topology forces
    // routing through physical qubit 3 (0-3, 3-1, 1-2): trajectories
    // must simulate the whole device, not just `width` qubits.
    const Device dev = Device::fromEdges(NativeKind::AshN, 4,
                                         {{0, 3}, {3, 1}, {1, 2}});
    qv::QvConfig cfg;
    cfg.width = 3;
    cfg.circuits = 3;
    cfg.trajectories = 2;
    cfg.seed = 7;
    cfg.threads = 1;
    cfg.device = &dev;
    const qv::QvResult r = qv::heavyOutputExperiment(cfg);
    EXPECT_GE(r.heavyOutputProportion, 0.0);
    EXPECT_LE(r.heavyOutputProportion, 1.0);
    EXPECT_TRUE(std::isfinite(r.heavyOutputProportion));
}

// ---------------------------------------------------- Weyl cache edges

TEST(WeylCache, RejectsNonFiniteCoordinates)
{
    // A NaN key can never equal itself, so without the guard every
    // lookup of a poisoned point would insert a fresh entry; the cache
    // must fail fast and stay empty instead.
    device::WeylCache cache;
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(cache.lookup({nan, 0.1, 0.0}, 0.0, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(cache.lookup({0.3, nan, 0.0}, 0.0, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(cache.lookup({0.3, 0.1, nan}, 0.0, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(cache.lookup({0.3, 0.1, 0.0}, nan, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(cache.lookup({0.3, 0.1, 0.0}, 0.0, nan),
                 std::invalid_argument);
    EXPECT_THROW(cache.lookup({inf, 0.1, 0.0}, 0.0, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(cache.lookup({0.3, 0.1, 0.0}, -inf, 0.0),
                 std::invalid_argument);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    // Repeating the poisoned lookup never grows the map.
    for (int i = 0; i < 4; ++i)
        EXPECT_THROW(cache.lookup({nan, 0.1, 0.0}, 0.0, 0.0),
                     std::invalid_argument);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(WeylCache, NegativeZeroNormalizedInEveryKeyField)
{
    // -0.0 == 0.0 but hashes differently; all five key fields must
    // normalize so signed zeros share one entry.
    device::WeylCache cache;
    cache.lookup({0.3, 0.1, 0.0}, 0.0, 0.0);
    EXPECT_EQ(cache.misses(), 1u);
    cache.lookup({0.3, 0.1, -0.0}, -0.0, -0.0);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(WeylCache, ConcurrentBatchAccountsEveryLoweringAndStaysBounded)
{
    // One gate class repeated across a batch transpiled on several
    // threads, lowered through the device's shared AshN cache: every
    // 2q lowering must register as exactly one hit or miss, and the
    // cache must hold exactly the distinct chamber points (one), not
    // grow with the lookup count.
    const Matrix bond = qop::canonicalGate(0.3, 0.2, 0.1);
    const std::size_t gatesPerCircuit = 10;
    std::vector<Circuit> batch;
    for (int i = 0; i < 16; ++i) {
        Circuit c(2);
        for (std::size_t g = 0; g < gatesPerCircuit; ++g)
            c.add(bond, {0, 1}, "bond");
        batch.push_back(std::move(c));
    }

    const Device dev = Device::withCoupling(
        NativeKind::AshN, CouplingMap::line(2),
        {.twoQubitError = 0.012, .singleQubitError = 0.001, .h = 0.0,
         .r = 0.0});
    transpile::TranspileOptions opts;
    opts.device = &dev;
    opts.fuseSingleQubit = false; // keep every bond a separate lowering
    opts.peephole = false;
    const auto results = transpile::transpileBatch(batch, opts, 4);

    std::size_t lowered = 0;
    for (const auto &res : results)
        lowered += res.context.nativeGates;
    EXPECT_EQ(lowered, batch.size() * gatesPerCircuit);

    const auto &ashn =
        dynamic_cast<const device::AshNGateSet &>(dev.gateSet());
    EXPECT_EQ(ashn.cache().hits() + ashn.cache().misses(), lowered);
    EXPECT_EQ(ashn.cache().size(), 1u); // one gate class, one entry
    EXPECT_GE(ashn.cache().misses(), 1u);
}

TEST(QvOnDevice, WideDeviceCompactsToTouchedQubits)
{
    // Width-3 circuits on the 19-qubit heavy-hex device: trajectory
    // cost must scale with the routed circuit (a handful of touched
    // qubits), not with 2^19, so this completes in well under a
    // second.
    const Device dev = Device::withCoupling(NativeKind::CZ,
                                            CouplingMap::heavyHex(3));
    qv::QvConfig cfg;
    cfg.width = 3;
    cfg.circuits = 2;
    cfg.trajectories = 2;
    cfg.seed = 11;
    cfg.threads = 1;
    cfg.device = &dev;
    const qv::QvResult r = qv::heavyOutputExperiment(cfg);
    EXPECT_GE(r.heavyOutputProportion, 0.0);
    EXPECT_LE(r.heavyOutputProportion, 1.0);
}

} // namespace

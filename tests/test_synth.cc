/**
 * @file
 * Tests for the synthesis substrate: two-qubit CNOT/AshN compilation,
 * CSD, multiplexors (incl. the paper's Lemma 14), QSD, the three-qubit
 * generic construction (Theorem 12), and numerical instantiation.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"
#include "synth/csd.hh"
#include "synth/instantiate.hh"
#include "synth/multiplexor.hh"
#include "synth/qsd.hh"
#include "synth/three_qubit.hh"
#include "synth/two_qubit.hh"

namespace {

using namespace crisc;
using circuit::Circuit;
using linalg::Complex;
using linalg::Matrix;

TEST(TwoQubit, ThreeCnotDecompositionOfHaarGates)
{
    linalg::Rng rng(1);
    for (int t = 0; t < 10; ++t) {
        const Matrix u = linalg::haarUnitary(rng, 4);
        const Circuit c = synth::decomposeCNOT(u);
        EXPECT_LE(c.twoQubitCount(), 3u);
        EXPECT_TRUE(qop::equalUpToGlobalPhase(c.toUnitary(), u, 1e-6));
    }
}

TEST(TwoQubit, CnotCostMatchesGateClass)
{
    linalg::Rng rng(2);
    EXPECT_EQ(synth::cnotCost(Matrix::identity(4)), 0u);
    EXPECT_EQ(synth::cnotCost(linalg::kron(qop::hadamard(), qop::sGate())),
              0u);
    EXPECT_EQ(synth::cnotCost(qop::cnot()), 1u);
    EXPECT_EQ(synth::cnotCost(qop::cz()), 1u);
    EXPECT_EQ(synth::cnotCost(qop::iswap()), 2u);
    EXPECT_EQ(synth::cnotCost(qop::sqisw()), 2u);
    EXPECT_EQ(synth::cnotCost(qop::swapGate()), 3u);
    EXPECT_EQ(synth::cnotCost(linalg::haarUnitary(rng, 4)), 3u);
}

TEST(TwoQubit, MinimalCountsAreExact)
{
    // 1-CNOT case (a CZ) and 2-CNOT case (iSWAP) reconstruct exactly.
    for (const Matrix &u : {qop::cz(), qop::iswap(), qop::sqisw()}) {
        const Circuit c = synth::decomposeCNOT(u);
        EXPECT_TRUE(qop::equalUpToGlobalPhase(c.toUnitary(), u, 1e-7));
    }
}

TEST(TwoQubit, LocalGateNeedsNoCnot)
{
    linalg::Rng rng(3);
    const Matrix u =
        linalg::kron(linalg::haarUnitary(rng, 2), linalg::haarUnitary(rng, 2));
    const Circuit c = synth::decomposeCNOT(u);
    EXPECT_EQ(c.twoQubitCount(), 0u);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(c.toUnitary(), u, 1e-8));
}

TEST(TwoQubit, DecomposesOntoArbitraryRegisterQubits)
{
    linalg::Rng rng(4);
    const Matrix u = linalg::haarUnitary(rng, 4);
    const Circuit c = synth::decomposeCNOT(u, 2, 0, 3);
    const Matrix expected = qop::embed(u, {2, 0}, 3);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(c.toUnitary(), expected, 1e-6));
}

TEST(TwoQubit, AshnCompilationIsExact)
{
    linalg::Rng rng(5);
    for (double h : {0.0, 0.35}) {
        const Matrix u = linalg::haarUnitary(rng, 4);
        const synth::AshnCompiled ac = synth::compileToAshn(u, h, 0.5);
        EXPECT_LT(linalg::maxAbsDiff(ac.compose(), u), 1e-5);
    }
}

class CsdSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(CsdSizes, ReconstructsHaarUnitaries)
{
    const int dim = GetParam();
    linalg::Rng rng(100 + dim);
    for (int t = 0; t < 5; ++t) {
        const Matrix u = linalg::haarUnitary(rng, dim);
        const synth::CSDResult f = synth::csd(u);
        EXPECT_LT(linalg::maxAbsDiff(f.compose(), u), 1e-7);
        for (double th : f.theta) {
            EXPECT_GE(th, -1e-12);
            EXPECT_LE(th, M_PI / 2.0 + 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Dims, CsdSizes, ::testing::Values(2, 4, 8, 16));

TEST(Csd, HandlesBlockDiagonalInput)
{
    // U00 unitary (all cosines 1) exercises the degenerate S = 0 path.
    linalg::Rng rng(7);
    const Matrix a = linalg::haarUnitary(rng, 4);
    const Matrix b = linalg::haarUnitary(rng, 4);
    const Matrix u = synth::multiplexorMatrix(a, b);
    const synth::CSDResult f = synth::csd(u);
    EXPECT_LT(linalg::maxAbsDiff(f.compose(), u), 1e-7);
}

TEST(Csd, HandlesOffDiagonalInput)
{
    // U00 = 0 (all sines 1): the opposite degenerate branch.
    linalg::Rng rng(8);
    const Matrix a = linalg::haarUnitary(rng, 2);
    const Matrix b = linalg::haarUnitary(rng, 2);
    Matrix u(4, 4);
    u.setBlock(0, 2, Complex{-1.0, 0.0} * a);
    u.setBlock(2, 0, b);
    const synth::CSDResult f = synth::csd(u);
    EXPECT_LT(linalg::maxAbsDiff(f.compose(), u), 1e-7);
}

TEST(Multiplexor, DemultiplexReconstructs)
{
    linalg::Rng rng(9);
    const Matrix u0 = linalg::haarUnitary(rng, 4);
    const Matrix u1 = linalg::haarUnitary(rng, 4);
    const synth::Demultiplexed d = synth::demultiplex(u0, u1);
    Matrix diag(4, 4);
    for (int i = 0; i < 4; ++i)
        diag(i, i) = std::polar(1.0, d.phases[i]);
    EXPECT_LT(linalg::maxAbsDiff(d.v * diag * d.w, u0), 1e-8);
    EXPECT_LT(linalg::maxAbsDiff(d.v * diag.dagger() * d.w, u1), 1e-8);
}

class MuxRotation : public ::testing::TestWithParam<char>
{
};

TEST_P(MuxRotation, GrayCircuitMatchesBlockMatrix)
{
    const char axis = GetParam();
    linalg::Rng rng(11);
    // 1- and 2-select multiplexed rotations on several layouts.
    struct Layout
    {
        std::vector<std::size_t> selects;
        std::size_t target;
        std::size_t n;
    };
    const Layout layouts[] = {
        {{0}, 1, 2}, {{1}, 0, 2}, {{1, 2}, 0, 3}, {{0, 2}, 1, 3}};
    for (const auto &lay : layouts) {
        std::vector<double> angles(std::size_t{1} << lay.selects.size());
        for (auto &a : angles)
            a = rng.uniform(-3.0, 3.0);
        const Circuit c = axis == 'z'
                              ? synth::multiplexedRz(angles, lay.selects,
                                                     lay.target, lay.n)
                              : synth::multiplexedRy(angles, lay.selects,
                                                     lay.target, lay.n);
        const Matrix expected = synth::multiplexedRotationMatrix(
            axis, angles, lay.selects, lay.target, lay.n);
        EXPECT_TRUE(qop::equalUpToGlobalPhase(c.toUnitary(), expected, 1e-9))
            << "axis=" << axis << " n=" << lay.n;
    }
}

INSTANTIATE_TEST_SUITE_P(Axes, MuxRotation, ::testing::Values('z', 'y'));

class Lemma14Param : public ::testing::TestWithParam<bool>
{
};

TEST_P(Lemma14Param, FiveGatesThreeDiagonal)
{
    const bool diagFirst = GetParam();
    linalg::Rng rng(13 + diagFirst);
    for (int t = 0; t < 8; ++t) {
        const Matrix u0 = linalg::haarUnitary(rng, 4);
        const Matrix u1 = linalg::haarUnitary(rng, 4);
        const Circuit c = synth::multiplexorLemma14(u0, u1, diagFirst);
        EXPECT_EQ(c.twoQubitCount(), 5u);
        // Three of the five two-qubit gates are diagonal.
        int diagonal = 0;
        for (const auto &g : c.gates()) {
            if (g.qubits.size() != 2)
                continue;
            double off = 0.0;
            for (int r = 0; r < 4; ++r)
                for (int col = 0; col < 4; ++col)
                    if (r != col)
                        off = std::max(off, std::abs(g.op(r, col)));
            if (off < 1e-12)
                ++diagonal;
        }
        EXPECT_EQ(diagonal, 3);
        EXPECT_TRUE(qop::equalUpToGlobalPhase(
            c.toUnitary(), synth::multiplexorMatrix(u0, u1), 1e-6));
    }
}

INSTANTIATE_TEST_SUITE_P(DiagSide, Lemma14Param, ::testing::Bool());

TEST(Lemma14, HandlesEqualBlocks)
{
    // u0 = u1 degenerates W to the identity.
    linalg::Rng rng(17);
    const Matrix u = linalg::haarUnitary(rng, 4);
    const Circuit c = synth::multiplexorLemma14(u, u);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(
        c.toUnitary(), synth::multiplexorMatrix(u, u), 1e-6));
}

class QsdSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(QsdSizes, ReconstructsAndMatchesCount)
{
    const int n = GetParam();
    linalg::Rng rng(200 + n);
    const Matrix u = linalg::haarUnitary(rng, std::size_t{1} << n);
    const Circuit c = synth::qsd(u);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(c.toUnitary(), u, 1e-5));
    EXPECT_LE(c.twoQubitCount(), synth::qsdCnotCount(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, QsdSizes, ::testing::Values(1, 2, 3, 4));

TEST(Qsd, CountFormulas)
{
    // Recursion c_n = 4 c_{n-1} + 3 * 2^{n-1}, c_2 = 3.
    EXPECT_EQ(synth::qsdCnotCount(2), 3u);
    EXPECT_EQ(synth::qsdCnotCount(3), 24u);
    EXPECT_EQ(synth::qsdCnotCount(4), 120u);
    // Paper-quoted optimized counts: 20 at n=3, 100 at n=4.
    EXPECT_EQ(synth::optimizedQsdCnotCount(3), 20u);
    EXPECT_EQ(synth::optimizedQsdCnotCount(4), 100u);
    // Lower bounds: 14 CNOT / 6 generic gates at n=3 (Fig. 6c).
    EXPECT_EQ(synth::cnotLowerBound(3), 14u);
    EXPECT_EQ(synth::su4LowerBound(3), 6u);
    EXPECT_EQ(synth::cnotLowerBound(4), 61u);
    EXPECT_EQ(synth::su4LowerBound(4), 27u);
    // Theorem 13: 11 at n=3, 68 at n=4.
    EXPECT_EQ(synth::theorem13Count(3), 11u);
    EXPECT_EQ(synth::theorem13Count(4), 68u);
}

TEST(ThreeQubit, GenericConstructionNearPaperCount)
{
    linalg::Rng rng(23);
    for (int t = 0; t < 5; ++t) {
        const Matrix u = linalg::haarUnitary(rng, 8);
        const Circuit c = synth::threeQubitGeneric(u);
        EXPECT_TRUE(qop::equalUpToGlobalPhase(c.toUnitary(), u, 1e-5));
        // Paper's Theorem 12 reaches 11; our mechanical merge reaches 12.
        EXPECT_LE(c.twoQubitCount(), 12u);
    }
}

TEST(ThreeQubit, MergePassPreservesUnitary)
{
    linalg::Rng rng(29);
    Circuit c(3);
    c.add(linalg::haarUnitary(rng, 2), {1}, "a");
    c.add(linalg::haarUnitary(rng, 4), {0, 1}, "b");
    c.add(linalg::haarUnitary(rng, 4), {1, 0}, "c"); // same pair, swapped
    c.add(linalg::haarUnitary(rng, 2), {2}, "d");
    c.add(linalg::haarUnitary(rng, 4), {1, 2}, "e");
    const Matrix before = c.toUnitary();
    const Circuit m = synth::mergeTwoQubitGates(c);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(m.toUnitary(), before, 1e-9));
    EXPECT_EQ(m.twoQubitCount(), 2u);
    EXPECT_EQ(m.size(), 2u);
}

TEST(Instantiate, ExactTemplateConvergesToZero)
{
    // A 3-gate generic template can express a 3-CNOT-depth target built
    // from the same structure.
    linalg::Rng rng(31);
    synth::Template tmpl = synth::genericTemplate(3, 4);
    // Build a target from a random instance of the same template.
    Matrix target = Matrix::identity(8);
    for (const auto &slot : tmpl.slots)
        target = qop::embed(linalg::haarUnitary(rng, 4), slot.qubits, 3) *
                 target;
    const synth::InstantiationResult r =
        synth::instantiate(target, tmpl, rng, 200, 1e-11, 2);
    EXPECT_LT(r.distance, 1e-9);
}

TEST(Instantiate, ElevenGenericGatesReachHaarTargets)
{
    // Theorem 12 numerically: 11 generic gates suffice for SU(8).
    linalg::Rng rng(37);
    const Matrix target = linalg::haarUnitary(rng, 8);
    const synth::InstantiationResult r = synth::instantiate(
        target, synth::genericTemplate(3, 11), rng, 300, 1e-10, 2);
    EXPECT_LT(r.distance, 1e-8);
}

TEST(Instantiate, TooFewGatesCannotReachHaarTargets)
{
    // 3 generic gates are far below the 6-gate lower bound: the residual
    // distance must stay large.
    linalg::Rng rng(41);
    const Matrix target = linalg::haarUnitary(rng, 8);
    const synth::InstantiationResult r = synth::instantiate(
        target, synth::genericTemplate(3, 3), rng, 150, 1e-11, 1);
    EXPECT_GT(r.distance, 1e-3);
}

TEST(Instantiate, CnotTemplateMatchesCnotExpressibleTarget)
{
    linalg::Rng rng(43);
    // Target: 2 CNOTs with random locals, expressible by cnotTemplate(2).
    Circuit c(3);
    c.add(linalg::haarUnitary(rng, 2), {0});
    c.add(linalg::haarUnitary(rng, 2), {1});
    c.add(linalg::haarUnitary(rng, 2), {2});
    c.add(qop::cnot(), {0, 1});
    c.add(linalg::haarUnitary(rng, 2), {0});
    c.add(linalg::haarUnitary(rng, 2), {1});
    c.add(qop::cnot(), {0, 2});
    c.add(linalg::haarUnitary(rng, 2), {0});
    c.add(linalg::haarUnitary(rng, 2), {2});
    const synth::InstantiationResult r = synth::instantiate(
        c.toUnitary(), synth::cnotTemplate(3, 2), rng, 300, 1e-11, 3);
    EXPECT_LT(r.distance, 1e-8);
}

} // namespace

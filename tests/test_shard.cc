/**
 * @file
 * Sharded-execution suite (fast; runs under the CI sanitizer matrix).
 * compileSharded splits a register into S = 2^s shards keyed by the
 * top s amplitude bits and lowers shard-crossing ops into Diag /
 * Exchange / Remap steps (sim/shard.hh); executeSharded must stay
 * bit-identical to serial plan execution for every shard count, thread
 * count, SoA lane count, block exponent, and forced ISA backend, over
 * random circuits covering all five KernelKinds. The suite also pins
 * the lowering policy (PlanStats::exchangeOps / remapOps on a
 * brick-layer plan, Auto vs NaiveExchange), the transported-byte
 * accounting against the 2 * 2^(n-s) * 16 bound per crossing pair,
 * the CRISC_SHARDS resolution rules, and the InProcessTransport.
 */

#include <cstdint>
#include <stdexcept>

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "sim/batch.hh"
#include "sim/batch_state.hh"
#include "sim/dispatch.hh"
#include "sim/engine.hh"
#include "sim/shard.hh"
#include "sim/transport.hh"
#include "sim_test_util.hh"

namespace {

using namespace crisc;
using linalg::Complex;
using linalg::CVector;
using testutil::bitIdentical;
using testutil::randomCircuit;
using testutil::randomState;
using testutil::ScopedEnv;

sim::Plan
compileUnfused(const circuit::Circuit &c)
{
    return sim::compile(c,
                        {.fuseSingleQubit = false, .fuseTwoQubit = false});
}

/** Restores the auto-probed kernel backend on scope exit. */
class DispatchRestore
{
  public:
    ~DispatchRestore() { sim::setDispatchOverride("auto"); }
};

// ---------------------------------------------------------------------
// Shard-bit resolution (ExecOptions::shardBits / CRISC_SHARDS).
// ---------------------------------------------------------------------

TEST(ShardResolve, ExplicitRequestClampsToWidthMinusOne)
{
    ScopedEnv unset("CRISC_SHARDS", nullptr);
    EXPECT_EQ(sim::resolveShardBits(0, 10), 0u);
    EXPECT_EQ(sim::resolveShardBits(3, 10), 3u);
    EXPECT_EQ(sim::resolveShardBits(9, 10), 9u);
    EXPECT_EQ(sim::resolveShardBits(10, 10), 9u);
    EXPECT_EQ(sim::resolveShardBits(40, 10), 9u);
    EXPECT_EQ(sim::resolveShardBits(3, 0), 0u);
}

TEST(ShardResolve, EnvShardCountTranslatesToBits)
{
    {
        ScopedEnv env("CRISC_SHARDS", "4");
        EXPECT_EQ(sim::resolveShardBits(0, 10), 2u);
        // An explicit request wins over the environment.
        EXPECT_EQ(sim::resolveShardBits(1, 10), 1u);
        // The env value clamps to the width like any other request.
        EXPECT_EQ(sim::resolveShardBits(0, 3), 2u);
    }
    {
        ScopedEnv env("CRISC_SHARDS", "1"); // one shard = unsharded
        EXPECT_EQ(sim::resolveShardBits(0, 10), 0u);
    }
    {
        ScopedEnv env("CRISC_SHARDS", "16");
        EXPECT_EQ(sim::resolveShardBits(0, 10), 4u);
    }
}

TEST(ShardResolve, EnvRejectsGarbageLoudly)
{
    for (const char *bad : {"banana", "12abc", "-2", "0", "6", "12"}) {
        ScopedEnv env("CRISC_SHARDS", bad);
        EXPECT_THROW(sim::resolveShardBits(0, 10), std::invalid_argument)
            << "'" << bad << "'";
    }
}

TEST(ShardCompile, ValidatesShardBitsAgainstWidth)
{
    linalg::Rng rng(7);
    const sim::Plan plan = compileUnfused(randomCircuit(rng, 6, 10));
    EXPECT_THROW(sim::compileSharded(plan, 6), std::invalid_argument);
    EXPECT_THROW(sim::compileSharded(plan, 9), std::invalid_argument);

    // s = 0 degenerates to the plan itself: one Local step.
    const sim::ShardPlan flat = sim::compileSharded(plan, 0);
    ASSERT_EQ(flat.steps().size(), 1u);
    EXPECT_EQ(flat.steps()[0].kind, sim::ShardStepKind::Local);
    EXPECT_EQ(flat.shardCount(), 1u);
    EXPECT_EQ(flat.stats().exchangeOps, 0u);
    EXPECT_EQ(flat.stats().remapOps, 0u);
    EXPECT_EQ(flat.plannedTransportBytes(), 0u);
}

// ---------------------------------------------------------------------
// Lowering policy pins.
// ---------------------------------------------------------------------

TEST(ShardCompile, OneShotCrossingExchangesUnderAuto)
{
    linalg::Rng rng(11);
    circuit::Circuit c(6);
    c.add(linalg::haarSU(rng, 4), {0, 3}, "u2"); // qubit 0 never reused
    const sim::ShardPlan sp = sim::compileSharded(compileUnfused(c), 1);
    ASSERT_EQ(sp.steps().size(), 1u);
    EXPECT_EQ(sp.steps()[0].kind, sim::ShardStepKind::Exchange);
    EXPECT_EQ(sp.stats().exchangeOps, 1u);
    EXPECT_EQ(sp.stats().remapOps, 0u);
    // One exchange moves every shard's full slice: S * 2^(n-s) * 16
    // bytes, i.e. exactly 2 * 2^(n-s) * 16 per shard pair — the
    // acceptance bound with equality.
    const std::uint64_t sliceBytes = sp.sliceDim() * sizeof(Complex);
    EXPECT_EQ(sp.plannedTransportBytes(), sp.shardCount() * sliceBytes);
}

TEST(ShardCompile, ReusedCrossingRemapsUnderAutoButNotNaive)
{
    // Brick-style reuse of qubit 0 across three two-qubit gates: Auto
    // pulls it local once (plus the closing restore), NaiveExchange
    // pays a full-slice exchange per gate.
    linalg::Rng rng(13);
    circuit::Circuit c(6);
    c.add(linalg::haarSU(rng, 4), {0, 3}, "a");
    c.add(linalg::haarUnitary(rng, 2), {1}, "b");
    c.add(linalg::haarSU(rng, 4), {0, 2}, "c");
    c.add(linalg::haarSU(rng, 4), {0, 3}, "d");
    const sim::Plan plan = compileUnfused(c);

    const sim::ShardPlan autoPlan = sim::compileSharded(plan, 1);
    EXPECT_EQ(autoPlan.stats().exchangeOps, 0u);
    EXPECT_EQ(autoPlan.stats().remapOps, 2u);

    const sim::ShardPlan naive = sim::compileSharded(
        plan, 1, {.lowering = sim::ShardLowering::NaiveExchange});
    EXPECT_EQ(naive.stats().exchangeOps, 3u);
    EXPECT_EQ(naive.stats().remapOps, 0u);

    // The remap lowering halves the per-step payload and amortizes it:
    // strictly fewer transported bytes than the naive lowering.
    EXPECT_LT(autoPlan.plannedTransportBytes(),
              naive.plannedTransportBytes());

    // Both lowerings stay bit-identical to serial execution.
    linalg::Rng srng(14);
    const CVector init = randomState(srng, 6);
    CVector ref = init;
    sim::execute(plan, ref.data());
    for (const sim::ShardPlan *sp : {&autoPlan, &naive}) {
        CVector amps = init;
        sim::executeSharded(*sp, amps.data());
        EXPECT_TRUE(bitIdentical(amps, ref));
    }
}

TEST(ShardCompile, DiagonalCrossingsMoveNoBytes)
{
    circuit::Circuit c(6);
    c.add(qop::rz(0.7), {0}, "rz");     // shard-bit 1q diagonal
    c.add(qop::cz(), {0, 1}, "cz01");   // both targets shard bits at s=2
    c.add(qop::cz(), {0, 4}, "cz04");   // shard + local target
    const sim::Plan plan = compileUnfused(c);
    const sim::ShardPlan sp = sim::compileSharded(plan, 2);
    EXPECT_EQ(sp.stats().exchangeOps, 0u);
    EXPECT_EQ(sp.stats().remapOps, 0u);
    EXPECT_EQ(sp.plannedTransportBytes(), 0u);
    for (const sim::ShardStep &step : sp.steps())
        EXPECT_EQ(step.kind, sim::ShardStepKind::Diag);

    linalg::Rng rng(15);
    const CVector init = randomState(rng, 6);
    CVector ref = init;
    sim::execute(plan, ref.data());
    CVector amps = init;
    sim::InProcessTransport transport;
    sim::executeSharded(sp, amps.data(), {}, &transport);
    EXPECT_TRUE(bitIdentical(amps, ref));
    EXPECT_EQ(transport.bytesMoved(), 0u);
}

TEST(ShardCompile, DenseCrossingRemapsFullyLocalOrThrows)
{
    linalg::Rng rng(17);
    {
        circuit::Circuit c(6);
        c.add(linalg::haarUnitary(rng, 8), {0, 1, 2}, "u3");
        const sim::Plan plan = compileUnfused(c);
        const sim::ShardPlan sp = sim::compileSharded(plan, 2);
        // Two shard-bit targets pulled local, then restored.
        EXPECT_EQ(sp.stats().remapOps, 4u);
        EXPECT_EQ(sp.stats().exchangeOps, 0u);

        const CVector init = randomState(rng, 6);
        CVector ref = init;
        sim::execute(plan, ref.data());
        CVector amps = init;
        sim::executeSharded(sp, amps.data());
        EXPECT_TRUE(bitIdentical(amps, ref));
    }
    {
        // n = 4, s = 3 leaves one local position for a 3-qubit dense
        // op's two remaining shard-bit targets: impossible, loud.
        circuit::Circuit c(4);
        c.add(linalg::haarUnitary(rng, 8), {0, 1, 2}, "u3");
        EXPECT_THROW(sim::compileSharded(compileUnfused(c), 3),
                     std::runtime_error);
    }
}

// ---------------------------------------------------------------------
// Bitwise equivalence: sharded vs. serial, every configuration.
// ---------------------------------------------------------------------

TEST(ShardedExecution, BitIdenticalForEveryShardThreadAndBlockCombination)
{
    linalg::Rng rng(23);
    const std::size_t n = 10;
    bool sawKind[5] = {false, false, false, false, false};
    for (int rep = 0; rep < 2; ++rep) {
        const sim::Plan plan = compileUnfused(randomCircuit(rng, n, 40));
        for (const sim::KernelOp &op : plan.ops())
            sawKind[static_cast<int>(op.kind)] = true;

        const CVector init = randomState(rng, n);
        CVector ref = init;
        sim::execute(plan, ref.data()); // serial unsharded reference

        for (const std::size_t s : {0, 1, 2}) {
            for (const auto lowering : {sim::ShardLowering::Auto,
                                        sim::ShardLowering::NaiveExchange}) {
                const sim::ShardPlan sp =
                    sim::compileSharded(plan, s, {.lowering = lowering});
                for (const std::size_t threads : {1, 2, 4}) {
                    for (const std::size_t block : {0, 4}) {
                        CVector amps = init;
                        sim::ExecOptions opts;
                        opts.threads = threads;
                        opts.blockQubits = block;
                        sim::executeSharded(sp, amps.data(), opts);
                        EXPECT_TRUE(bitIdentical(amps, ref))
                            << "s=" << s << " threads=" << threads
                            << " block=" << block << " naive="
                            << (lowering ==
                                sim::ShardLowering::NaiveExchange)
                            << " rep=" << rep;
                    }
                }
            }
        }
    }
    for (int k = 0; k < 5; ++k)
        EXPECT_TRUE(sawKind[k]) << "kernel kind " << k << " never hit";
}

TEST(ShardedExecution, BatchedLanesMatchSerialPerLane)
{
    linalg::Rng rng(29);
    const std::size_t n = 9;
    const sim::Plan plan = compileUnfused(randomCircuit(rng, n, 30));
    for (const std::size_t s : {1, 2}) {
        const sim::ShardPlan sp = sim::compileSharded(plan, s);
        for (const std::size_t lanes : {1, 4}) {
            std::vector<CVector> states;
            for (std::size_t l = 0; l < lanes; ++l)
                states.push_back(randomState(rng, n));
            sim::BatchState batch = sim::BatchState::pack(states);
            sim::ExecOptions opts;
            opts.threads = 2;
            sim::executeShardedBatched(sp, batch, opts);
            for (std::size_t l = 0; l < lanes; ++l) {
                CVector lref = states[l];
                sim::execute(plan, lref.data());
                EXPECT_TRUE(bitIdentical(batch.unpackLane(l), lref))
                    << "s=" << s << " lane=" << l << "/" << lanes;
            }
        }
    }

    sim::BatchState mismatch(n - 1, 2);
    EXPECT_THROW(
        sim::executeShardedBatched(sim::compileSharded(plan, 1), mismatch),
        std::invalid_argument);
}

TEST(ShardedExecution, ForcedScalarBackendStaysBitIdentical)
{
    DispatchRestore restore;
    sim::setDispatchOverride("scalar");
    linalg::Rng rng(31);
    const std::size_t n = 9;
    const sim::Plan plan = compileUnfused(randomCircuit(rng, n, 30));
    const CVector init = randomState(rng, n);
    CVector ref = init;
    sim::execute(plan, ref.data());
    for (const std::size_t s : {1, 2}) {
        CVector amps = init;
        sim::ExecOptions opts;
        opts.threads = 2;
        sim::executeSharded(sim::compileSharded(plan, s), amps.data(),
                            opts);
        EXPECT_TRUE(bitIdentical(amps, ref)) << "s=" << s;
    }
}

TEST(ShardedExecution, TransportMetersExactlyThePlannedBytes)
{
    linalg::Rng rng(37);
    const std::size_t n = 8;
    const sim::Plan plan = compileUnfused(randomCircuit(rng, n, 24));
    for (const std::size_t s : {1, 2}) {
        const sim::ShardPlan sp = sim::compileSharded(plan, s);
        CVector amps = randomState(rng, n);
        sim::InProcessTransport transport;
        sim::executeSharded(sp, amps.data(), {}, &transport);
        EXPECT_EQ(transport.bytesMoved(), sp.plannedTransportBytes())
            << "s=" << s;
        // Acceptance bound: a crossing step never moves more than
        // 2 * 2^(n-s) * 16 bytes per shard pair.
        const std::size_t crossings =
            sp.stats().exchangeOps + sp.stats().remapOps;
        if (crossings != 0) {
            const std::uint64_t pairs =
                std::uint64_t{sp.shardCount() / 2} * crossings;
            EXPECT_LE(transport.bytesMoved(),
                      pairs * 2 * sp.sliceDim() * sizeof(Complex));
        }
        // SoA execution moves the per-state payload per lane.
        const std::size_t lanes = 3;
        std::vector<CVector> states;
        for (std::size_t l = 0; l < lanes; ++l)
            states.push_back(randomState(rng, n));
        sim::BatchState batch = sim::BatchState::pack(states);
        sim::InProcessTransport batched;
        sim::executeShardedBatched(sp, batch, {}, &batched);
        EXPECT_EQ(batched.bytesMoved(),
                  lanes * sp.plannedTransportBytes());
    }
}

// ---------------------------------------------------------------------
// Engine routing: ExecOptions::shardBits and CRISC_SHARDS.
// ---------------------------------------------------------------------

TEST(ShardedExecution, ExecOptionsRouteThroughEngineExecute)
{
    ScopedEnv unset("CRISC_SHARDS", nullptr);
    linalg::Rng rng(41);
    const std::size_t n = 9;
    const sim::Plan plan = compileUnfused(randomCircuit(rng, n, 30));
    const CVector init = randomState(rng, n);
    CVector ref = init;
    sim::execute(plan, ref.data());

    for (const std::size_t req : {1, 2, 3}) {
        CVector amps = init;
        sim::ExecOptions opts;
        opts.shardBits = req;
        opts.threads = 2;
        sim::execute(plan, amps.data(), opts);
        EXPECT_TRUE(bitIdentical(amps, ref)) << "req=" << req;
    }
    {
        sim::BatchState batch = sim::BatchState::pack({init, init});
        sim::ExecOptions opts;
        opts.shardBits = 2;
        sim::executeBatched(plan, batch, opts);
        EXPECT_TRUE(bitIdentical(batch.unpackLane(0), ref));
        EXPECT_TRUE(bitIdentical(batch.unpackLane(1), ref));
    }
}

TEST(ShardedExecution, EnvShardsEngagesShardingInTheEngine)
{
    linalg::Rng rng(43);
    const std::size_t n = 9;
    const sim::Plan plan = compileUnfused(randomCircuit(rng, n, 30));
    const CVector init = randomState(rng, n);
    CVector ref = init;
    sim::execute(plan, ref.data()); // 2-arg serial: never consults env

    {
        ScopedEnv env("CRISC_SHARDS", "4");
        CVector amps = init;
        sim::execute(plan, amps.data(), sim::ExecOptions{});
        EXPECT_TRUE(bitIdentical(amps, ref));

        sim::BatchState batch = sim::BatchState::pack({init});
        sim::executeBatched(plan, batch, {});
        EXPECT_TRUE(bitIdentical(batch.unpackLane(0), ref));
    }
    {
        ScopedEnv env("CRISC_SHARDS", "6");
        CVector amps = init;
        EXPECT_THROW(sim::execute(plan, amps.data(), sim::ExecOptions{}),
                     std::invalid_argument);
    }
}

TEST(ShardedExecution, RunShardedMatchesSerialFromGroundState)
{
    ScopedEnv unset("CRISC_SHARDS", nullptr);
    linalg::Rng rng(47);
    const std::size_t n = 8;
    const sim::Plan plan = compileUnfused(randomCircuit(rng, n, 20));
    CVector ref(plan.dim(), Complex{0.0, 0.0});
    ref[0] = 1.0;
    sim::execute(plan, ref.data());
    for (const std::size_t s : {0, 1, 2})
        EXPECT_TRUE(bitIdentical(sim::runSharded(plan, s), ref))
            << "s=" << s;
}

// ---------------------------------------------------------------------
// InProcessTransport.
// ---------------------------------------------------------------------

TEST(Transport, InProcessDeliversAndMeters)
{
    std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
    std::vector<double> b = {5.0, 6.0, 7.0, 8.0};
    std::vector<double> ra(4, 0.0), rb(4, 0.0);
    sim::InProcessTransport transport;
    transport.exchange({
        {0, 1, a.data(), rb.data(), 4},
        {1, 0, b.data(), ra.data(), 4},
    });
    EXPECT_EQ(ra, b);
    EXPECT_EQ(rb, a);
    EXPECT_EQ(transport.bytesMoved(), 2u * 4u * sizeof(double));

    // Pooled delivery is byte-identical and cumulative.
    sim::ThreadPool pool(2);
    sim::InProcessTransport pooled(&pool);
    pooled.exchange({{0, 1, a.data(), rb.data(), 4}});
    pooled.exchange({{1, 0, b.data(), ra.data(), 4}});
    EXPECT_EQ(ra, b);
    EXPECT_EQ(rb, a);
    EXPECT_EQ(pooled.bytesMoved(), 2u * 4u * sizeof(double));
}

} // namespace

/**
 * @file
 * Unit and property tests for the dense linear-algebra substrate.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/decomp.hh"
#include "linalg/expm.hh"
#include "linalg/matrix.hh"
#include "linalg/random.hh"

namespace {

using namespace crisc::linalg;

TEST(Matrix, BasicArithmetic)
{
    const Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{0, 1}, {1, 0}};
    const Matrix sum = a + b;
    EXPECT_EQ(sum(0, 1), Complex(3.0, 0.0));
    const Matrix prod = a * b;
    EXPECT_EQ(prod(0, 0), Complex(2.0, 0.0));
    EXPECT_EQ(prod(1, 0), Complex(4.0, 0.0));
}

TEST(Matrix, DaggerConjugatesAndTransposes)
{
    const Matrix a{{Complex{1, 2}, Complex{3, 4}},
                   {Complex{5, 6}, Complex{7, 8}}};
    const Matrix d = a.dagger();
    EXPECT_EQ(d(0, 1), Complex(5.0, -6.0));
    EXPECT_TRUE(approxEqual(a.dagger().dagger(), a));
}

TEST(Matrix, TraceAndDeterminant)
{
    const Matrix a{{2, 0}, {0, 3}};
    EXPECT_NEAR(std::abs(a.trace() - Complex{5.0, 0.0}), 0.0, 1e-14);
    EXPECT_NEAR(std::abs(a.det() - Complex{6.0, 0.0}), 0.0, 1e-14);

    Rng rng(7);
    const Matrix u = haarUnitary(rng, 5);
    EXPECT_NEAR(std::abs(u.det()), 1.0, 1e-10);
}

TEST(Matrix, KroneckerProductShapeAndContent)
{
    const Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{0, 5}, {6, 7}};
    const Matrix k = kron(a, b);
    ASSERT_EQ(k.rows(), 4u);
    EXPECT_EQ(k(0, 1), Complex(5.0, 0.0));
    EXPECT_EQ(k(3, 0), Complex(18.0, 0.0));
    EXPECT_EQ(k(3, 3), Complex(28.0, 0.0));
}

TEST(Matrix, BlockRoundTrip)
{
    Rng rng(11);
    const Matrix g = ginibre(rng, 6);
    const Matrix b = g.block(1, 4, 2, 6);
    ASSERT_EQ(b.rows(), 3u);
    ASSERT_EQ(b.cols(), 4u);
    Matrix h(6, 6);
    h.setBlock(1, 2, b);
    EXPECT_EQ(h(1, 2), g(1, 2));
    EXPECT_EQ(h(3, 5), g(3, 5));
}

TEST(Matrix, InverseMatchesIdentity)
{
    Rng rng(3);
    const Matrix g = ginibre(rng, 5) + 5.0 * Matrix::identity(5);
    EXPECT_TRUE(approxEqual(g * inverse(g), Matrix::identity(5), 1e-9));
}

class EighSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(EighSizes, ReconstructsHermitianMatrix)
{
    const int n = GetParam();
    Rng rng(100 + n);
    const Matrix h = randomHermitian(rng, n);
    const EigenSystem es = eighHermitian(h);
    ASSERT_EQ(es.values.size(), static_cast<std::size_t>(n));
    EXPECT_TRUE(isUnitary(es.vectors, 1e-10));
    CVector d(n);
    for (int i = 0; i < n; ++i) {
        d[i] = es.values[i];
        if (i > 0) {
            EXPECT_LE(es.values[i - 1], es.values[i] + 1e-12);
        }
    }
    const Matrix rec = es.vectors * Matrix::diag(d) * es.vectors.dagger();
    EXPECT_LT(maxAbsDiff(rec, h), 1e-9 * std::max(1.0, h.maxAbs()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EighSizes, ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Eigh, DegenerateSpectrum)
{
    // diag(1,1,2) conjugated by a random unitary.
    Rng rng(5);
    const Matrix u = haarUnitary(rng, 3);
    const Matrix h = u * Matrix::diag({1.0, 1.0, 2.0}) * u.dagger();
    const EigenSystem es = eighHermitian(h);
    EXPECT_NEAR(es.values[0], 1.0, 1e-10);
    EXPECT_NEAR(es.values[1], 1.0, 1e-10);
    EXPECT_NEAR(es.values[2], 2.0, 1e-10);
}

class QRSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(QRSizes, FactorsArbitraryMatrices)
{
    const int n = GetParam();
    Rng rng(200 + n);
    const Matrix a = ginibre(rng, n);
    const QRResult f = qr(a);
    EXPECT_TRUE(isUnitary(f.q, 1e-10));
    EXPECT_TRUE(approxEqual(f.q * f.r, a, 1e-9));
    // R is upper triangular.
    for (int r = 1; r < n; ++r)
        for (int c = 0; c < r; ++c)
            EXPECT_LT(std::abs(f.r(r, c)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QRSizes, ::testing::Values(1, 2, 4, 8, 16));

class SvdSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(SvdSizes, ReconstructsInput)
{
    const int n = GetParam();
    Rng rng(300 + n);
    const Matrix a = ginibre(rng, n);
    const SVDResult f = svd(a);
    EXPECT_TRUE(isUnitary(f.u, 1e-9));
    EXPECT_TRUE(isUnitary(f.v, 1e-9));
    Matrix sig(n, n);
    for (int i = 0; i < n; ++i) {
        sig(i, i) = f.singular[i];
        EXPECT_GE(f.singular[i], -1e-12);
        if (i > 0) {
            EXPECT_GE(f.singular[i - 1], f.singular[i] - 1e-12);
        }
    }
    EXPECT_TRUE(approxEqual(f.u * sig * f.v.dagger(), a, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SvdSizes, ::testing::Values(1, 2, 4, 8));

TEST(Svd, RankDeficientInput)
{
    // Outer product has rank 1; SVD must still return full unitaries.
    Matrix a(4, 4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            a(i, j) = Complex(i + 1.0, 0.0) * Complex(j - 1.5, 0.5);
    const SVDResult f = svd(a);
    EXPECT_TRUE(isUnitary(f.u, 1e-9));
    EXPECT_TRUE(isUnitary(f.v, 1e-9));
    EXPECT_GT(f.singular[0], 1.0);
    EXPECT_LT(f.singular[1], 1e-9);
    Matrix sig(4, 4);
    for (int i = 0; i < 4; ++i)
        sig(i, i) = f.singular[i];
    EXPECT_TRUE(approxEqual(f.u * sig * f.v.dagger(), a, 1e-8));
}

TEST(Svd, UnitaryInputHasUnitSingularValues)
{
    Rng rng(17);
    const Matrix u = haarUnitary(rng, 4);
    const SVDResult f = svd(u);
    for (double s : f.singular)
        EXPECT_NEAR(s, 1.0, 1e-10);
}

TEST(EigNormal, DiagonalizesUnitaries)
{
    Rng rng(23);
    for (int trial = 0; trial < 10; ++trial) {
        const Matrix u = haarUnitary(rng, 4);
        const ComplexEigenSystem es = eigNormal(u);
        Matrix d(4, 4);
        for (int i = 0; i < 4; ++i) {
            d(i, i) = es.values[i];
            EXPECT_NEAR(std::abs(es.values[i]), 1.0, 1e-9);
        }
        EXPECT_TRUE(
            approxEqual(es.vectors * d * es.vectors.dagger(), u, 1e-8));
    }
}

TEST(EigNormal, HandlesDegenerateUnitary)
{
    // diag(i, i, -i, 1) conjugated by a Haar unitary.
    Rng rng(29);
    const Matrix u = haarUnitary(rng, 4);
    const Matrix d = Matrix::diag({kI, kI, -kI, Complex{1.0, 0.0}});
    const Matrix a = u * d * u.dagger();
    const ComplexEigenSystem es = eigNormal(a);
    Matrix dd(4, 4);
    for (int i = 0; i < 4; ++i)
        dd(i, i) = es.values[i];
    EXPECT_TRUE(approxEqual(es.vectors * dd * es.vectors.dagger(), a, 1e-8));
}

TEST(Expm, MatchesPropagatorForHermitian)
{
    Rng rng(31);
    const Matrix h = randomHermitian(rng, 4);
    const Matrix viaEig = propagator(h, 0.7);
    const Matrix viaSeries = expm(Complex{0.0, -0.7} * h);
    EXPECT_TRUE(approxEqual(viaEig, viaSeries, 1e-9));
    EXPECT_TRUE(isUnitary(viaEig, 1e-10));
}

TEST(Expm, KnownPauliRotation)
{
    // exp(-i (pi/2) X) = -i X.
    const Matrix x{{0, 1}, {1, 0}};
    const Matrix e = propagator(x, M_PI / 2.0);
    const Matrix expected = Complex{0.0, -1.0} * x;
    EXPECT_TRUE(approxEqual(e, expected, 1e-12));
}

TEST(LogUnitary, RoundTripsThroughExp)
{
    Rng rng(37);
    const Matrix u = haarUnitary(rng, 4);
    const Matrix h = logUnitary(u);
    EXPECT_TRUE(isHermitian(h, 1e-8));
    EXPECT_TRUE(approxEqual(expm(kI * h), u, 1e-8));
}

TEST(Random, HaarSUHasUnitDeterminant)
{
    Rng rng(41);
    for (int n : {2, 4, 8}) {
        const Matrix u = haarSU(rng, n);
        EXPECT_TRUE(isUnitary(u, 1e-10));
        EXPECT_NEAR(std::abs(u.det() - Complex{1.0, 0.0}), 0.0, 1e-9);
    }
}

TEST(Random, HaarUnitaryFirstMomentVanishes)
{
    // E[U] = 0 for Haar; check the empirical mean shrinks.
    Rng rng(43);
    Matrix mean(2, 2);
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        mean += haarUnitary(rng, 2);
    mean *= Complex{1.0 / n, 0.0};
    EXPECT_LT(mean.maxAbs(), 0.06);
}

TEST(SimultaneousDiagonalize, CommutingSymmetricPair)
{
    // Build commuting real symmetric matrices from a common eigenbasis.
    Rng rng(47);
    Matrix g(4, 4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            g(i, j) = rng.gaussian();
    const QRResult f = qr(g);
    Matrix q(4, 4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            q(i, j) = f.q(i, j).real();
    // Re-orthogonalize the real part (QR of a real matrix stays real).
    const Matrix a = q * Matrix::diag({1.0, 2.0, 3.0, 4.0}) * q.transpose();
    const Matrix b = q * Matrix::diag({-1.0, 0.5, 0.5, 2.0}) * q.transpose();
    const Matrix o = simultaneousDiagonalize(a, b);
    EXPECT_NEAR(std::abs(o.det() - Complex{1.0, 0.0}), 0.0, 1e-9);
    const Matrix da = o.transpose() * a * o;
    const Matrix db = o.transpose() * b * o;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            if (r != c) {
                EXPECT_LT(std::abs(da(r, c)), 1e-8);
                EXPECT_LT(std::abs(db(r, c)), 1e-8);
            }
}

} // namespace

/**
 * @file
 * Tests for Weyl chamber coordinates, the KAK decomposition, the chamber
 * measure, and the optimal interaction time.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/random.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"
#include "weyl/measure.hh"
#include "weyl/optimal_time.hh"
#include "weyl/weyl.hh"

namespace {

using namespace crisc;
using linalg::Matrix;
using linalg::kron;
using weyl::WeylPoint;

TEST(MagicBasis, IsUnitary)
{
    EXPECT_TRUE(linalg::isUnitary(weyl::magicBasis(), 1e-12));
}

TEST(MagicBasis, DiagonalizesCanonicalGates)
{
    const Matrix &m = weyl::magicBasis();
    const Matrix can = qop::canonicalGate(0.3, 0.2, 0.1);
    const Matrix d = m.dagger() * can * m;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            if (r != c) {
                EXPECT_LT(std::abs(d(r, c)), 1e-10);
            }
    // Eigenphases follow the (x-y+z, x+y-z, -x-y-z, -x+y+z) pattern.
    EXPECT_NEAR(std::arg(d(0, 0)), 0.3 - 0.2 + 0.1, 1e-10);
    EXPECT_NEAR(std::arg(d(1, 1)), 0.3 + 0.2 - 0.1, 1e-10);
    EXPECT_NEAR(std::arg(d(2, 2)), -0.3 - 0.2 - 0.1, 1e-10);
    EXPECT_NEAR(std::arg(d(3, 3)), -0.3 + 0.2 + 0.1, 1e-10);
}

TEST(MagicBasis, LocalGatesBecomeRealOrthogonal)
{
    linalg::Rng rng(5);
    const Matrix a = linalg::haarSU(rng, 2);
    const Matrix b = linalg::haarSU(rng, 2);
    const Matrix &m = weyl::magicBasis();
    const Matrix o = m.dagger() * kron(a, b) * m;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_LT(std::abs(o(r, c).imag()), 1e-10);
    EXPECT_TRUE(linalg::isUnitary(o, 1e-10));
}

struct NamedGateCase
{
    const char *name;
    const Matrix &(*gate)();
    WeylPoint expected;
};

class KnownCoordinates : public ::testing::TestWithParam<NamedGateCase>
{
};

TEST_P(KnownCoordinates, MatchTheLiterature)
{
    const auto &c = GetParam();
    const WeylPoint p = weyl::weylCoordinates(c.gate());
    EXPECT_NEAR(p.x, c.expected.x, 1e-9) << c.name;
    EXPECT_NEAR(p.y, c.expected.y, 1e-9) << c.name;
    EXPECT_NEAR(p.z, c.expected.z, 1e-9) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Gates, KnownCoordinates,
    ::testing::Values(
        NamedGateCase{"CNOT", &qop::cnot, {M_PI / 4.0, 0.0, 0.0}},
        NamedGateCase{"CZ", &qop::cz, {M_PI / 4.0, 0.0, 0.0}},
        NamedGateCase{"MS", &qop::msGate, {M_PI / 4.0, 0.0, 0.0}},
        NamedGateCase{"iSWAP", &qop::iswap, {M_PI / 4.0, M_PI / 4.0, 0.0}},
        NamedGateCase{"SQiSW", &qop::sqisw, {M_PI / 8.0, M_PI / 8.0, 0.0}},
        NamedGateCase{
            "SWAP", &qop::swapGate, {M_PI / 4.0, M_PI / 4.0, M_PI / 4.0}},
        NamedGateCase{"B", &qop::bGate, {M_PI / 4.0, M_PI / 8.0, 0.0}}),
    [](const ::testing::TestParamInfo<NamedGateCase> &info) {
        return info.param.name;
    });

TEST(Kak, IdentityHasZeroCoordinates)
{
    const WeylPoint p = weyl::weylCoordinates(Matrix::identity(4));
    EXPECT_NEAR(p.x, 0.0, 1e-10);
    EXPECT_NEAR(p.y, 0.0, 1e-10);
    EXPECT_NEAR(p.z, 0.0, 1e-10);
}

TEST(Kak, RecomposesHaarUnitaries)
{
    linalg::Rng rng(11);
    for (int trial = 0; trial < 40; ++trial) {
        const Matrix u = linalg::haarUnitary(rng, 4);
        const weyl::KAKDecomposition d = weyl::kak(u);
        EXPECT_TRUE(weyl::isCanonical(d.point));
        EXPECT_LT(linalg::maxAbsDiff(d.compose(), u), 1e-8);
        EXPECT_TRUE(linalg::isUnitary(d.a1, 1e-8));
        EXPECT_TRUE(linalg::isUnitary(d.a2, 1e-8));
        EXPECT_TRUE(linalg::isUnitary(d.b1, 1e-8));
        EXPECT_TRUE(linalg::isUnitary(d.b2, 1e-8));
    }
}

TEST(Kak, CoordinatesInvariantUnderLocalGates)
{
    linalg::Rng rng(13);
    for (int trial = 0; trial < 15; ++trial) {
        const Matrix u = linalg::haarUnitary(rng, 4);
        const Matrix l = kron(linalg::haarSU(rng, 2), linalg::haarSU(rng, 2));
        const Matrix r = kron(linalg::haarSU(rng, 2), linalg::haarSU(rng, 2));
        const WeylPoint p = weyl::weylCoordinates(u);
        const WeylPoint q = weyl::weylCoordinates(l * u * r);
        EXPECT_LT(weyl::pointDistance(p, q), 1e-7);
    }
}

TEST(Kak, CanonicalGateRoundTrip)
{
    linalg::Rng rng(17);
    for (int trial = 0; trial < 25; ++trial) {
        // Sample a canonical point and verify coordinates round-trip.
        const WeylPoint p = weyl::sampleChamber(rng);
        const Matrix can = qop::canonicalGate(p.x, p.y, p.z);
        const WeylPoint q = weyl::weylCoordinates(can);
        EXPECT_LT(weyl::pointDistance(p, q), 1e-7);
    }
}

TEST(Kak, MatchesLocalInvariants)
{
    linalg::Rng rng(19);
    for (int trial = 0; trial < 15; ++trial) {
        const Matrix u = linalg::haarUnitary(rng, 4);
        const WeylPoint p = weyl::weylCoordinates(u);
        const Matrix can = qop::canonicalGate(p.x, p.y, p.z);
        const auto gu = weyl::localInvariants(u);
        const auto gc = weyl::localInvariants(can);
        for (int i = 0; i < 3; ++i)
            EXPECT_NEAR(gu[i], gc[i], 1e-7);
    }
}

TEST(CanonicalizePoint, AgreesWithDirectCoordinates)
{
    linalg::Rng rng(23);
    for (int trial = 0; trial < 30; ++trial) {
        // A random (possibly wildly non-canonical) raw point.
        const WeylPoint raw{rng.uniform(-4.0, 4.0), rng.uniform(-4.0, 4.0),
                            rng.uniform(-4.0, 4.0)};
        const WeylPoint c = weyl::canonicalizePoint(raw);
        EXPECT_TRUE(weyl::isCanonical(c));
        const WeylPoint viaGate =
            weyl::weylCoordinates(qop::canonicalGate(raw.x, raw.y, raw.z));
        EXPECT_LT(weyl::pointDistance(c, viaGate), 1e-7);
    }
}

TEST(CanonicalizePoint, BoundaryFuzzRegression)
{
    // Points within roundoff of the chamber edges and corners must
    // canonicalize without cycling (regression: mismatched decision
    // margins stranded points like (pi/4, -8e-10, 1.6e-9)).
    const double q = M_PI / 4.0;
    const double fuzzes[] = {0.0,     1e-12,  7.6e-10, -7.6e-10,
                             1.57e-9, -1.57e-9, 2e-9,   -2e-9};
    for (double f1 : fuzzes) {
        for (double f2 : fuzzes) {
            const WeylPoint probes[] = {
                {q + f1, f2, -f2},        {q + f1, q + f2, f2},
                {q + f1, q + f2, q + f2}, {f1, f2, f2},
                {q / 2 + f1, q / 2 + f2, -q / 2 + f1},
            };
            for (const WeylPoint &p : probes) {
                const WeylPoint c = weyl::canonicalizePoint(p);
                EXPECT_TRUE(weyl::isCanonical(c))
                    << "(" << p.x << "," << p.y << "," << p.z << ")";
                // And the tracked (KAK) path agrees.
                const WeylPoint viaGate = weyl::weylCoordinates(
                    qop::canonicalGate(p.x, p.y, p.z));
                EXPECT_LT(weyl::pointDistance(c, viaGate), 1e-7);
            }
        }
    }
}

TEST(LocallyEquivalent, DetectsEquivalenceAndDifference)
{
    linalg::Rng rng(29);
    const Matrix u = linalg::haarUnitary(rng, 4);
    const Matrix l = kron(linalg::haarSU(rng, 2), linalg::haarSU(rng, 2));
    EXPECT_TRUE(weyl::locallyEquivalent(u, l * u));
    EXPECT_FALSE(weyl::locallyEquivalent(qop::cnot(), qop::swapGate()));
    EXPECT_TRUE(weyl::locallyEquivalent(qop::cnot(), qop::cz()));
}

TEST(LocalCorrections, TurnRealizedGateIntoTarget)
{
    linalg::Rng rng(31);
    for (int trial = 0; trial < 10; ++trial) {
        const Matrix target = linalg::haarUnitary(rng, 4);
        const Matrix l =
            kron(linalg::haarSU(rng, 2), linalg::haarSU(rng, 2));
        const Matrix r =
            kron(linalg::haarSU(rng, 2), linalg::haarSU(rng, 2));
        const Matrix realized = l * target * r;
        const weyl::LocalCorrection c =
            weyl::localCorrections(target, realized);
        const Matrix rebuilt = std::polar(1.0, c.phase) *
                               (kron(c.l1, c.l2) * realized *
                                kron(c.r1, c.r2));
        EXPECT_LT(linalg::maxAbsDiff(rebuilt, target), 1e-7);
    }
}

TEST(OptimalTime, KnownGateTimes)
{
    // Paper Sec. 6.4: [CNOT] takes pi/2, [SWAP] 3pi/4, [B] pi/2 at h=0.
    EXPECT_NEAR(weyl::optimalTime({M_PI / 4, 0, 0}), M_PI / 2, 1e-12);
    EXPECT_NEAR(weyl::optimalTime({M_PI / 4, M_PI / 4, M_PI / 4}),
                3 * M_PI / 4, 1e-12);
    EXPECT_NEAR(weyl::optimalTime({M_PI / 4, M_PI / 8, 0}), M_PI / 2, 1e-12);
    // iSWAP = (pi/4, pi/4, 0) takes pi/2.
    EXPECT_NEAR(weyl::optimalTime({M_PI / 4, M_PI / 4, 0}), M_PI / 2, 1e-12);
}

TEST(OptimalTime, ZeroZZReducesToSimpleForm)
{
    linalg::Rng rng(37);
    for (int trial = 0; trial < 200; ++trial) {
        const WeylPoint p = weyl::sampleChamber(rng);
        const double expected =
            std::max(2.0 * p.x, p.x + p.y + std::abs(p.z));
        EXPECT_NEAR(weyl::optimalTime(p, 0.0), expected, 1e-10);
    }
}

TEST(OptimalTime, SwapImprovesWithZZ)
{
    // Paper Sec. 6.4: tau_opt([SWAP], h) = 3 pi / (4 (1 + |h|/2)).
    const WeylPoint swap{M_PI / 4, M_PI / 4, M_PI / 4};
    for (double h : {0.0, 0.2, 0.5, 0.9}) {
        EXPECT_NEAR(weyl::optimalTime(swap, h),
                    3.0 * M_PI / (4.0 * (1.0 + h / 2.0)), 1e-10)
            << "h=" << h;
    }
}

TEST(OptimalTime, MonotoneInBounds)
{
    // tau_opt is bounded by pi for any point and any |h| <= 1.
    linalg::Rng rng(41);
    for (int trial = 0; trial < 100; ++trial) {
        const WeylPoint p = weyl::sampleChamber(rng);
        const double h = rng.uniform(-1.0, 1.0);
        const double t = weyl::optimalTime(p, h);
        EXPECT_GT(t, -1e-12);
        EXPECT_LE(t, M_PI + 1e-12);
    }
}

TEST(Measure, DensityNormalizesToAnalyticConstant)
{
    // The unnormalized KAK Jacobian integrates to pi/384 over W.
    EXPECT_NEAR(weyl::chamberDensityNorm(), M_PI / 384.0, 2e-5);
}

TEST(Measure, SampleMatchesHaarCoordinates)
{
    // Compare the mean of x under rejection sampling against the mean of
    // the KAK x-coordinate of Haar random SU(4) gates.
    linalg::Rng rng(43);
    double meanSampled = 0.0;
    const int n = 600;
    for (int i = 0; i < n; ++i)
        meanSampled += weyl::sampleChamber(rng).x;
    meanSampled /= n;

    double meanHaar = 0.0;
    for (int i = 0; i < n; ++i)
        meanHaar += weyl::weylCoordinates(linalg::haarSU(rng, 4)).x;
    meanHaar /= n;

    EXPECT_NEAR(meanSampled, meanHaar, 0.02);
}

TEST(Measure, HaarAverageOptimalTimeMatchesPaper)
{
    // Sec. 6.1: average optimal time is 7pi/16 - 19/(180 pi) ~ 1.3412.
    const double viaQuadrature = weyl::chamberQuadrature(
        [](const WeylPoint &p) { return weyl::optimalTime(p); }, 80);
    EXPECT_NEAR(viaQuadrature, weyl::haarAverageOptimalTime(), 2e-3);
    EXPECT_NEAR(weyl::haarAverageOptimalTime(), 1.3412, 1e-3);
}

} // namespace

/**
 * @file
 * Cross-module property tests: randomized invariants that tie the
 * substrates together (synthesis against KAK, chamber geometry against
 * gate algebra, simulator against dense matrices, cost model against
 * interaction-time theory).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ashn/scheme.hh"
#include "ashn/special.hh"
#include "calib/cartan.hh"
#include "circuit/circuit.hh"
#include "linalg/expm.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"
#include "qv/qv.hh"
#include "synth/two_qubit.hh"
#include "weyl/measure.hh"
#include "weyl/optimal_time.hh"
#include "weyl/weyl.hh"

namespace {

using namespace crisc;
using linalg::Matrix;
using weyl::WeylPoint;

class SeededProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SeededProperty, DaggerMirrorsZCoordinate)
{
    // U and U^dagger have z-mirrored chamber points.
    linalg::Rng rng(GetParam());
    const Matrix u = linalg::haarUnitary(rng, 4);
    const WeylPoint p = weyl::weylCoordinates(u);
    const WeylPoint q = weyl::weylCoordinates(u.dagger());
    const WeylPoint mirrored = weyl::canonicalizePoint({p.x, p.y, -p.z});
    EXPECT_LT(weyl::pointDistance(q, mirrored), 1e-7);
}

TEST_P(SeededProperty, SwapConjugationPreservesCoordinates)
{
    // SWAP . U . SWAP has the same chamber point as U.
    linalg::Rng rng(100 + GetParam());
    const Matrix u = linalg::haarUnitary(rng, 4);
    const Matrix v = qop::swapGate() * u * qop::swapGate();
    EXPECT_TRUE(weyl::locallyEquivalent(u, v));
}

TEST_P(SeededProperty, ProductTimeIsSubadditive)
{
    // Interaction cost is subadditive: t_opt(UV) <= t_opt(U) + t_opt(V).
    linalg::Rng rng(200 + GetParam());
    const Matrix u = linalg::haarUnitary(rng, 4);
    const Matrix v = linalg::haarUnitary(rng, 4);
    const double tu = weyl::optimalTime(weyl::weylCoordinates(u));
    const double tv = weyl::optimalTime(weyl::weylCoordinates(v));
    const double tuv = weyl::optimalTime(weyl::weylCoordinates(u * v));
    EXPECT_LE(tuv, tu + tv + 1e-9);
}

TEST_P(SeededProperty, AshnBeatsOrMatchesEveryNativeSetInTime)
{
    // At r=0 the AshN single-pulse time is the interaction-cost optimum,
    // so no multi-application scheme can be faster.
    linalg::Rng rng(300 + GetParam());
    const WeylPoint p = weyl::sampleChamber(rng);
    const auto ashn = qv::compileCost(qv::NativeSet::AshN, p, 0.0);
    const auto sq = qv::compileCost(qv::NativeSet::SQiSW, p, 0.0);
    const auto cz = qv::compileCost(qv::NativeSet::CZ, p, 0.0);
    EXPECT_LE(ashn.totalTime, sq.totalTime + 1e-9);
    EXPECT_LE(ashn.totalTime, cz.totalTime + 1e-9);
}

TEST_P(SeededProperty, SynthesisRoundTripThroughCartanReadout)
{
    // synthesize -> evolve -> Cartan-double readout -> the same point.
    linalg::Rng rng(400 + GetParam());
    const WeylPoint p = weyl::sampleChamber(rng);
    const Matrix u = ashn::realize(ashn::synthesize(p, 0.0, 1.1));
    const WeylPoint read = calib::coordinatesFromCartanDouble(u, &p);
    EXPECT_LT(weyl::pointDistance(read, p), 1e-5);
}

TEST_P(SeededProperty, CnotDecompositionAgreesWithSimulator)
{
    // Dense circuit unitary == statevector columns, through the full
    // decomposition pipeline on 3 qubits.
    linalg::Rng rng(500 + GetParam());
    const Matrix u = linalg::haarUnitary(rng, 4);
    const circuit::Circuit c = synth::decomposeCNOT(u, 2, 0, 3);
    circuit::State s(3);
    s.apply(qop::hadamard(), {1}); // touch the bystander qubit
    s.run(c);
    circuit::State ref(3);
    ref.apply(qop::hadamard(), {1});
    const Matrix full = c.toUnitary();
    // Column 2 of full (H|0> has support on |010>): compare against
    // running the circuit.
    linalg::CVector expect(8, {0.0, 0.0});
    for (int i = 0; i < 8; ++i)
        expect[i] = (full(i, 0) + full(i, 2)) / std::sqrt(2.0);
    for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(std::abs(s.amplitudes()[i] - expect[i]), 0.0, 1e-8);
}

TEST_P(SeededProperty, VirtualZPhaseKeepsWeylPoint)
{
    // Sec. 4.4: shifting the common drive phase phibar conjugates the
    // Hamiltonian by Z rotations, so the realized chamber point is
    // untouched (the free virtual-Z gate).
    linalg::Rng rng(600 + GetParam());
    const double a1 = rng.uniform(0.5, 2.0), a2 = rng.uniform(0.5, 2.0);
    const double d = rng.uniform(0.0, 1.0), tau = rng.uniform(0.5, 2.5);
    const double phibar = rng.uniform(0.0, 2.0 * M_PI);
    const Matrix h0 = ashn::hamiltonianWithPhases(0.1, a1, 0.0, a2, 0.0, d);
    const Matrix h1 =
        ashn::hamiltonianWithPhases(0.1, a1, phibar, a2, phibar, d);
    const Matrix u0 = linalg::propagator(h0, tau);
    const Matrix u1 = linalg::propagator(h1, tau);
    EXPECT_TRUE(weyl::locallyEquivalent(u0, u1, 1e-6));
}

TEST_P(SeededProperty, GateTimeMonotoneInCutoff)
{
    // Larger cutoff never shortens a gate.
    linalg::Rng rng(700 + GetParam());
    const WeylPoint p = weyl::sampleChamber(rng);
    double prev = 0.0;
    for (double r : {0.0, 0.4, 0.8, 1.2, M_PI / 2.0}) {
        const double t = ashn::gateTime(p, 0.0, r);
        EXPECT_GE(t, prev - 1e-12);
        prev = t;
    }
}

TEST_P(SeededProperty, OptimalTimeRespectsChamberOrdering)
{
    // t_opt is invariant under the z-mirror at the x = pi/4 boundary
    // and bounded by the SWAP time 3pi/4 at h = 0.
    linalg::Rng rng(800 + GetParam());
    const WeylPoint p = weyl::sampleChamber(rng);
    EXPECT_LE(weyl::optimalTime(p), 3.0 * M_PI / 4.0 + 1e-12);
    EXPECT_GE(weyl::optimalTime(p), 2.0 * p.x - 1e-12);
}

TEST_P(SeededProperty, LocalEquivalenceIsTransitiveUnderSynthesis)
{
    // compileToAshn produces a gate equal to the target, and therefore
    // locally equivalent to any local dressing of it.
    linalg::Rng rng(900 + GetParam());
    const Matrix u = linalg::haarUnitary(rng, 4);
    const synth::AshnCompiled c = synth::compileToAshn(u, 0.2, 0.9);
    const Matrix dressed =
        linalg::kron(linalg::haarSU(rng, 2), linalg::haarSU(rng, 2)) * u;
    EXPECT_TRUE(weyl::locallyEquivalent(c.compose(), dressed, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range(1, 13));

TEST(ChamberGeometry, EdgeGatesSynthesizeEverywhere)
{
    // Deterministic sweep over chamber edges and faces, including the
    // boundary cases that stress canonicalization.
    std::vector<WeylPoint> edges;
    for (int i = 0; i <= 8; ++i) {
        const double t = i / 8.0;
        const double q = M_PI / 4.0;
        edges.push_back({q * t, 0, 0});          // I -> CNOT edge
        edges.push_back({q, q * t, 0});          // CNOT -> iSWAP edge
        edges.push_back({q, q, q * t});          // iSWAP -> SWAP edge
        edges.push_back({q * t, q * t, 0});      // I -> iSWAP edge
        edges.push_back({q * t, q * t, q * t});  // I -> SWAP edge
        edges.push_back({q, q * t, q * t});      // CNOT -> SWAP-ish face
    }
    for (const WeylPoint &p : edges) {
        for (double h : {0.0, 0.35}) {
            const ashn::GateParams g = ashn::synthesize(p, h, 0.0);
            const WeylPoint got = weyl::weylCoordinates(ashn::realize(g));
            EXPECT_LT(weyl::pointDistance(got, weyl::canonicalizePoint(p)),
                      1e-5)
                << "(" << p.x << "," << p.y << "," << p.z << ") h=" << h;
            EXPECT_NEAR(g.tau, weyl::optimalTime(p, h), 1e-6);
        }
    }
}

TEST(ChamberGeometry, MirrorPointIsEquivalent)
{
    linalg::Rng rng(3);
    for (int t = 0; t < 20; ++t) {
        const WeylPoint p = weyl::sampleChamber(rng);
        const WeylPoint m = ashn::mirrorPoint(p);
        EXPECT_LT(weyl::pointDistance(weyl::canonicalizePoint(m), p), 1e-9);
    }
}

TEST(CostModel, HaarAverageTimesMatchFigureFive)
{
    // The per-scheme Haar-average interaction times used by the QV cost
    // model agree with the Sec. 6.1 numbers.
    linalg::Rng rng(5);
    double ashn = 0.0, sqisw = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const WeylPoint p = weyl::sampleChamber(rng);
        ashn += qv::compileCost(qv::NativeSet::AshN, p, 0.0).totalTime;
        sqisw += qv::compileCost(qv::NativeSet::SQiSW, p, 0.0).totalTime;
    }
    EXPECT_NEAR(ashn / n, 1.341, 0.02);
    EXPECT_NEAR(sqisw / n, 1.736, 0.02);
}

} // namespace

/**
 * @file
 * Tests for the pass-based transpiler and its routing substrate:
 * coupling-map edge cases, layout bijection invariants, routePair
 * postconditions, routed-unitary-vs-permutation equivalence, pipeline
 * unitary preservation on random circuits, the compileCircuit façade,
 * peephole cancellation, the Weyl cache, and thread-count-invariant
 * batch transpilation.
 */

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "device/native_set.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"
#include "route/route.hh"
#include "synth/compiler.hh"
#include "transpile/transpile.hh"

namespace {

using namespace crisc;
using circuit::Circuit;
using circuit::Gate;
using linalg::Matrix;

/** Random circuit of 1q/2q Haar gates (plus a 3q gate when wide). */
Circuit
randomCircuit(linalg::Rng &rng, std::size_t n, std::size_t gates,
              bool wide = false)
{
    Circuit c(n);
    if (wide && n >= 3)
        c.add(linalg::haarUnitary(rng, 8), {0, 1, 2}, "wide");
    for (std::size_t i = 0; i < gates; ++i) {
        if (n >= 2 && rng.index(3) != 0) {
            const std::size_t a = rng.index(n);
            std::size_t b = rng.index(n);
            while (b == a)
                b = rng.index(n);
            c.add(linalg::haarUnitary(rng, 4), {a, b});
        } else {
            c.add(linalg::haarUnitary(rng, 2), {rng.index(n)});
        }
    }
    return c;
}

TEST(CircuitDepth, CountsLongestQubitChain)
{
    Circuit c(3);
    EXPECT_EQ(c.depth(), 0u);
    c.add(qop::hadamard(), {0});
    c.add(qop::hadamard(), {1});
    EXPECT_EQ(c.depth(), 1u); // parallel 1q layer
    c.add(qop::cnot(), {0, 1});
    EXPECT_EQ(c.depth(), 2u);
    c.add(qop::cnot(), {1, 2});
    EXPECT_EQ(c.depth(), 3u);
    c.add(qop::hadamard(), {2});
    EXPECT_EQ(c.depth(), 4u);
}

TEST(CouplingMap, GridForEdgeCases)
{
    EXPECT_THROW(route::CouplingMap::gridFor(0), std::invalid_argument);
    const route::CouplingMap one = route::CouplingMap::gridFor(1);
    EXPECT_EQ(one.numQubits(), 1u);
    EXPECT_TRUE(one.neighbours(0).empty());
    const std::vector<std::size_t> self = one.shortestPath(0, 0);
    EXPECT_EQ(self, std::vector<std::size_t>{0});
}

TEST(CouplingMap, OutOfRangeIndicesThrow)
{
    const route::CouplingMap grid = route::CouplingMap::grid(2, 2);
    EXPECT_THROW(grid.adjacent(0, 4), std::out_of_range);
    EXPECT_THROW(grid.adjacent(4, 0), std::out_of_range);
    EXPECT_THROW(grid.shortestPath(0, 4), std::out_of_range);
    EXPECT_THROW(grid.neighbours(4), std::out_of_range);
}

TEST(CouplingMap, DisconnectedShortestPathThrows)
{
    const route::CouplingMap m =
        route::CouplingMap::fromEdges(4, {{0, 1}, {2, 3}});
    EXPECT_EQ(m.shortestPath(0, 1).size(), 2u);
    EXPECT_THROW(m.shortestPath(0, 3), std::runtime_error);
    EXPECT_THROW(route::CouplingMap::fromEdges(2, {{0, 0}}),
                 std::invalid_argument);
    EXPECT_THROW(route::CouplingMap::fromEdges(2, {{0, 2}}),
                 std::invalid_argument);
}

TEST(Routing, RoutePairRejectsIdenticalEndpoints)
{
    const route::CouplingMap grid = route::CouplingMap::grid(2, 2);
    route::Layout layout(4);
    EXPECT_THROW(route::routePair(grid, layout, 1, 1),
                 std::invalid_argument);
}

TEST(Routing, LayoutStaysBijectiveUnderRandomSwaps)
{
    const std::size_t n = 9;
    linalg::Rng rng(5);
    route::Layout layout(n);
    for (int step = 0; step < 200; ++step) {
        const std::size_t a = rng.index(n);
        std::size_t b = rng.index(n);
        while (b == a)
            b = rng.index(n);
        layout.swapPhysical(a, b);
        std::vector<bool> physSeen(n, false), logSeen(n, false);
        for (std::size_t l = 0; l < n; ++l) {
            const std::size_t p = layout.physicalOf(l);
            ASSERT_LT(p, n);
            ASSERT_FALSE(physSeen[p]) << "two logicals share a physical";
            physSeen[p] = true;
            ASSERT_EQ(layout.logicalOf(p), l);
        }
        for (std::size_t p = 0; p < n; ++p) {
            const std::size_t l = layout.logicalOf(p);
            ASSERT_LT(l, n);
            ASSERT_FALSE(logSeen[l]);
            logSeen[l] = true;
        }
    }
}

TEST(Routing, RoutePairLeavesPairAdjacent)
{
    const route::CouplingMap grid = route::CouplingMap::grid(3, 3);
    linalg::Rng rng(6);
    route::Layout layout(9);
    for (int step = 0; step < 60; ++step) {
        const std::size_t a = rng.index(9);
        std::size_t b = rng.index(9);
        while (b == a)
            b = rng.index(9);
        route::routePair(grid, layout, a, b);
        EXPECT_TRUE(grid.adjacent(layout.physicalOf(a),
                                  layout.physicalOf(b)));
    }
}

/**
 * Routed circuit unitary equals the logical one composed with the final
 * layout permutation: (U_routed)_{p, c} = (U_logical)_{perm(p), c} with
 * perm reading each logical bit l from physical position layout(l).
 */
TEST(Routing, RoutedUnitaryMatchesLogicalUpToPermutation)
{
    const std::size_t n = 4;
    const std::size_t dim = std::size_t{1} << n;
    const route::CouplingMap grid = route::CouplingMap::grid(2, 2);
    linalg::Rng rng(7);

    for (int trial = 0; trial < 3; ++trial) {
        Circuit logical(n);
        for (int i = 0; i < 6; ++i) {
            const std::size_t a = rng.index(n);
            std::size_t b = rng.index(n);
            while (b == a)
                b = rng.index(n);
            logical.add(linalg::haarUnitary(rng, 4), {a, b});
        }

        transpile::TranspileOptions opts;
        opts.coupling = &grid;
        opts.decomposeWide = false;
        opts.fuseSingleQubit = false;
        opts.lowerToPulses = false;
        const transpile::TranspileResult res =
            transpile::transpile(logical, opts);
        ASSERT_TRUE(res.context.layout.has_value());
        const route::Layout &layout = *res.context.layout;

        const Matrix ul = logical.toUnitary();
        const Matrix ur = res.circuit.toUnitary();
        for (std::size_t phys = 0; phys < dim; ++phys) {
            std::size_t perm = 0;
            for (std::size_t l = 0; l < n; ++l) {
                const std::size_t pq = layout.physicalOf(l);
                const std::size_t bit = (phys >> (n - 1 - pq)) & 1;
                perm |= bit << (n - 1 - l);
            }
            for (std::size_t col = 0; col < dim; ++col)
                EXPECT_NEAR(std::abs(ur(phys, col) - ul(perm, col)), 0.0,
                            1e-9);
        }
    }
}

TEST(Pipeline, UnitaryEquivalentForRandomCircuits)
{
    linalg::Rng rng(8);
    for (std::size_t n = 2; n <= 5; ++n) {
        const Circuit logical = randomCircuit(rng, n, 6, n == 3);
        transpile::TranspileOptions opts;
        opts.h = 0.1;
        opts.r = 0.5;
        const transpile::TranspileResult res =
            transpile::transpile(logical, opts);
        EXPECT_TRUE(qop::equalUpToGlobalPhase(res.circuit.toUnitary(),
                                              logical.toUnitary(), 1e-6))
            << "n = " << n;
        EXPECT_EQ(res.context.pulses.size(),
                  res.circuit.twoQubitCount());
        double tau = 0.0;
        for (const transpile::PulseOp &p : res.context.pulses)
            tau += p.params.tau;
        EXPECT_NEAR(res.context.totalPulseTime, tau, 1e-12);
    }
}

TEST(Pipeline, RoutedAndLoweredStillUnitaryEquivalent)
{
    // Full pipeline with routing: lowered unitary must equal the
    // logical one re-read through the final layout permutation.
    const std::size_t n = 4;
    const std::size_t dim = std::size_t{1} << n;
    const route::CouplingMap grid = route::CouplingMap::grid(2, 2);
    linalg::Rng rng(9);
    const Circuit logical = randomCircuit(rng, n, 5);

    transpile::TranspileOptions opts;
    opts.coupling = &grid;
    const transpile::TranspileResult res =
        transpile::transpile(logical, opts);
    ASSERT_TRUE(res.context.layout.has_value());
    const route::Layout &layout = *res.context.layout;

    const Matrix ul = logical.toUnitary();
    const Matrix ur = res.circuit.toUnitary();
    // Undo the permutation, then compare up to global phase.
    Matrix unpermuted(dim, dim);
    for (std::size_t phys = 0; phys < dim; ++phys) {
        std::size_t perm = 0;
        for (std::size_t l = 0; l < n; ++l) {
            const std::size_t pq = layout.physicalOf(l);
            const std::size_t bit = (phys >> (n - 1 - pq)) & 1;
            perm |= bit << (n - 1 - l);
        }
        for (std::size_t col = 0; col < dim; ++col)
            unpermuted(perm, col) = ur(phys, col);
    }
    EXPECT_TRUE(qop::equalUpToGlobalPhase(unpermuted, ul, 1e-6));
}

TEST(Pipeline, MetricsReportCoversEveryPass)
{
    linalg::Rng rng(10);
    const Circuit logical = randomCircuit(rng, 3, 5, true);
    const transpile::TranspileResult res = transpile::transpile(logical);
    ASSERT_EQ(res.report.passes.size(), 4u);
    EXPECT_EQ(res.report.passes[0].pass, "wide-gate-decompose");
    EXPECT_EQ(res.report.passes[1].pass, "single-qubit-fuse");
    EXPECT_EQ(res.report.passes[2].pass, "peephole-cancel");
    EXPECT_EQ(res.report.passes[3].pass, "native-lower");
    EXPECT_EQ(res.report.passes[0].gatesBefore, logical.size());
    EXPECT_EQ(res.report.passes[3].gatesAfter, res.circuit.size());
    EXPECT_GT(res.report.passes[3].pulseTimeAfter, 0.0);
    EXPECT_NE(res.report.summary().find("native-lower"), std::string::npos);
}

TEST(Pipeline, MetricsRecordGatesPeak)
{
    linalg::Rng rng(10);
    const Circuit logical = randomCircuit(rng, 3, 5, true);
    const transpile::TranspileResult res = transpile::transpile(logical);
    // Every current pass only grows or shrinks monotonically, so the
    // peak is exactly the larger endpoint.
    for (const transpile::PassMetrics &m : res.report.passes)
        EXPECT_EQ(m.gatesPeak, std::max(m.gatesBefore, m.gatesAfter))
            << m.pass;
}

/** A pass whose transient working set exceeds both endpoints; it
 *  reports the excursion through ctx.peakGates. */
class InflatingPass final : public transpile::Pass
{
  public:
    const char *name() const override { return "inflating"; }
    Circuit run(const Circuit &in,
                transpile::PassContext &ctx) const override
    {
        ctx.peakGates = in.size() + 100;
        return in;
    }
};

TEST(Pipeline, PassRaisedPeakGatesIsRecorded)
{
    transpile::PassManager pm;
    pm.emplace<InflatingPass>();
    Circuit c(2);
    c.add(qop::cnot(), {0, 1});
    const transpile::TranspileResult res = pm.run(c);
    ASSERT_EQ(res.report.passes.size(), 1u);
    EXPECT_EQ(res.report.passes[0].gatesPeak, c.size() + 100);
    // The scratch field resets per pass: a second (standard) pipeline
    // run is unaffected by the previous excursion.
    const transpile::TranspileResult clean = transpile::transpile(c);
    for (const transpile::PassMetrics &m : clean.report.passes)
        EXPECT_LE(m.gatesPeak, std::max(m.gatesBefore, m.gatesAfter) + 0u)
            << m.pass;
}

TEST(Pipeline, RouteErrors)
{
    const transpile::Route pass;
    transpile::PassContext ctx;
    Circuit c(2);
    c.add(qop::cnot(), {0, 1});
    EXPECT_THROW(pass.run(c, ctx), std::invalid_argument); // no coupling

    const route::CouplingMap one = route::CouplingMap::gridFor(1);
    ctx.coupling = &one;
    EXPECT_THROW(pass.run(c, ctx), std::invalid_argument); // too small

    const route::CouplingMap grid = route::CouplingMap::grid(2, 2);
    ctx.coupling = &grid;
    Circuit wide(4);
    wide.add(Matrix::identity(8), {0, 1, 2});
    EXPECT_THROW(pass.run(wide, ctx), std::invalid_argument); // 3q gate
}

TEST(Peephole, CancelsInversePairsAndIdentities)
{
    Circuit c(2);
    c.add(qop::hadamard(), {0});
    c.add(qop::cnot(), {0, 1});
    c.add(qop::cnot(), {0, 1});
    c.add(qop::hadamard(), {0});
    c.add(qop::cz(), {1, 0}); // symmetric gate, reversed qubit order
    c.add(qop::cz(), {0, 1});
    c.add(qop::rz(0.0), {1}); // identity up to phase
    const transpile::PeepholeCancel pass;
    transpile::PassContext ctx;
    const Circuit out = pass.run(c, ctx);
    EXPECT_EQ(out.size(), 0u);
}

TEST(Peephole, PreservesUnitaryWhileShrinking)
{
    linalg::Rng rng(12);
    const Circuit base = randomCircuit(rng, 3, 4);
    // Interleave cancelling pairs into a copy.
    Circuit padded(3);
    const Matrix u = linalg::haarUnitary(rng, 4);
    for (const Gate &g : base.gates()) {
        padded.add(u, {0, 1});
        padded.add(u.dagger(), {0, 1});
        padded.add(g.op, g.qubits, g.label);
    }
    const transpile::PeepholeCancel pass;
    transpile::PassContext ctx;
    const Circuit out = pass.run(padded, ctx);
    EXPECT_EQ(out.size(), base.size());
    EXPECT_TRUE(qop::equalUpToGlobalPhase(out.toUnitary(),
                                          base.toUnitary(), 1e-7));
}

TEST(WeylCache, MemoizesRepeatedGateClasses)
{
    // Ten identical bond gates on alternating pairs: one synthesis
    // miss, nine hits, and the lowered circuit still reproduces the
    // logical unitary.
    const Matrix bond = qop::canonicalGate(0.3, 0.2, 0.1);
    Circuit c(3);
    for (int i = 0; i < 10; ++i)
        c.add(bond, {std::size_t(i % 2), std::size_t(i % 2 + 1)}, "bond");

    transpile::PassManager pm;
    pm.emplace<transpile::NativeLower>();
    const auto &lower =
        dynamic_cast<const transpile::NativeLower &>(pm.pass(0));
    const auto &ashn =
        dynamic_cast<const device::AshNGateSet &>(lower.gateSet());
    const transpile::TranspileResult res = pm.run(c);
    EXPECT_EQ(ashn.cache().misses(), 1u);
    EXPECT_EQ(ashn.cache().hits(), 9u);
    EXPECT_EQ(ashn.cache().size(), 1u);
    EXPECT_EQ(res.context.nativeGates, 10u);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(res.circuit.toUnitary(),
                                          c.toUnitary(), 1e-6));
}

TEST(Peephole, DefaultPipelineMatchesPeepholeOff)
{
    // PeepholeCancel is on by default in makePipeline; the lowered
    // unitary must be unchanged relative to a peephole-free pipeline
    // (the guard for enabling it by default). SingleQubitFuse merges a
    // cancelling same-pair 2q sequence into ONE identity-class gate —
    // only the peephole then deletes it, saving a whole native gate.
    linalg::Rng rng(15);
    for (int trial = 0; trial < 3; ++trial) {
        const Matrix u = linalg::haarUnitary(rng, 4);
        Circuit logical(4);
        logical.add(u, {0, 1});
        logical.add(linalg::haarUnitary(rng, 4), {2, 3});
        logical.add(u.dagger(), {0, 1});
        logical.add(linalg::haarUnitary(rng, 4), {1, 2});

        transpile::TranspileOptions off;
        off.peephole = false;
        const transpile::TranspileResult without =
            transpile::transpile(logical, off);
        const transpile::TranspileResult with =
            transpile::transpile(logical);
        EXPECT_LT(with.circuit.size(), without.circuit.size());
        EXPECT_LT(with.context.pulses.size(),
                  without.context.pulses.size());
        EXPECT_TRUE(qop::equalUpToGlobalPhase(with.circuit.toUnitary(),
                                              without.circuit.toUnitary(),
                                              1e-6))
            << "trial " << trial;
    }
}

TEST(Batch, DeterministicAcrossThreadCounts)
{
    linalg::Rng rng(13);
    std::vector<Circuit> circuits;
    for (int i = 0; i < 6; ++i)
        circuits.push_back(randomCircuit(rng, 3, 4));

    transpile::TranspileOptions opts;
    opts.h = 0.05;
    const auto one = transpile::transpileBatch(circuits, opts, 1);
    const auto four = transpile::transpileBatch(circuits, opts, 4);
    ASSERT_EQ(one.size(), circuits.size());
    ASSERT_EQ(four.size(), circuits.size());
    for (std::size_t i = 0; i < circuits.size(); ++i) {
        // Bit-for-bit identical gate streams regardless of threads.
        ASSERT_EQ(one[i].circuit.size(), four[i].circuit.size());
        for (std::size_t g = 0; g < one[i].circuit.size(); ++g) {
            const Gate &ga = one[i].circuit.gates()[g];
            const Gate &gb = four[i].circuit.gates()[g];
            ASSERT_EQ(ga.qubits, gb.qubits);
            for (std::size_t r = 0; r < ga.op.rows(); ++r)
                for (std::size_t col = 0; col < ga.op.cols(); ++col)
                    ASSERT_EQ(ga.op(r, col), gb.op(r, col));
        }
        ASSERT_EQ(one[i].context.pulses.size(),
                  four[i].context.pulses.size());
        for (std::size_t p = 0; p < one[i].context.pulses.size(); ++p)
            ASSERT_EQ(one[i].context.pulses[p].params.tau,
                      four[i].context.pulses[p].params.tau);
        // And identical to a standalone transpile() of the same input.
        const transpile::TranspileResult solo =
            transpile::transpile(circuits[i], opts);
        ASSERT_EQ(solo.circuit.size(), one[i].circuit.size());
        ASSERT_EQ(solo.context.totalPulseTime,
                  one[i].context.totalPulseTime);
    }
}

TEST(Facade, CompileCircuitMatchesPipeline)
{
    linalg::Rng rng(14);
    const Circuit logical = randomCircuit(rng, 3, 5, true);
    const synth::CompiledProgram prog =
        synth::compileCircuit(logical, 0.2, 0.8);
    EXPECT_TRUE(qop::equalUpToGlobalPhase(prog.circuit.toUnitary(),
                                          logical.toUnitary(), 1e-6));
    EXPECT_EQ(prog.pulses.size(), prog.circuit.twoQubitCount());
    double tau = 0.0;
    for (const synth::ScheduledPulse &p : prog.pulses)
        tau += p.params.tau;
    EXPECT_NEAR(prog.totalTwoQubitTime, tau, 1e-12);

    transpile::TranspileOptions opts;
    opts.h = 0.2;
    opts.r = 0.8;
    const transpile::TranspileResult res =
        transpile::transpile(logical, opts);
    ASSERT_EQ(res.circuit.size(), prog.circuit.size());
    EXPECT_EQ(res.context.singleQubitGates, prog.singleQubitGates);
    EXPECT_EQ(res.context.totalPulseTime, prog.totalTwoQubitTime);
}

} // namespace

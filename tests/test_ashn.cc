/**
 * @file
 * Tests for the AshN gate scheme: chamber coverage of every sub-scheme,
 * time optimality, drive-strength bounds, ZZ robustness, special gate
 * classes, and the free virtual-Z property.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ashn/hamiltonian.hh"
#include "ashn/scheme.hh"
#include "ashn/special.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"
#include "weyl/measure.hh"
#include "weyl/optimal_time.hh"
#include "weyl/weyl.hh"

namespace {

using namespace crisc;
using ashn::GateParams;
using ashn::SubScheme;
using linalg::Matrix;
using weyl::WeylPoint;

void
expectRealizes(const GateParams &p, const WeylPoint &target,
               double tol = 1e-5)
{
    const WeylPoint got = weyl::weylCoordinates(ashn::realize(p));
    const WeylPoint want = weyl::canonicalizePoint(target);
    EXPECT_LT(weyl::pointDistance(got, want), tol)
        << ashn::subSchemeName(p.scheme) << " tau=" << p.tau
        << " om1=" << p.omega1 << " om2=" << p.omega2 << " d=" << p.delta
        << " target=(" << target.x << "," << target.y << "," << target.z
        << ") h=" << p.h;
}

TEST(Hamiltonian, MatchesPauliExpansion)
{
    const Matrix h = ashn::hamiltonian(0.3, 0.5, 0.2, 0.7);
    // <00|H|00> = h/2 + 2 delta; <01|H|01> = -h/2.
    EXPECT_NEAR(h(0, 0).real(), 0.15 + 1.4, 1e-12);
    EXPECT_NEAR(h(1, 1).real(), -0.15, 1e-12);
    // XX+YY couples |01> and |10> with coefficient 1.
    EXPECT_NEAR(h(1, 2).real(), 1.0, 1e-12);
    EXPECT_TRUE(linalg::isHermitian(h, 1e-12));
}

TEST(Hamiltonian, PhasedDriveIsVirtualZConjugation)
{
    // Sec. 4.4: H(phi1, phi2) = (Z_-phibar x Z_-phibar) H(phi', -phi')
    //           (Z_phibar x Z_phibar).
    const double phi1 = 0.8, phi2 = 0.3;
    const double phibar = (phi1 + phi2) / 2.0, phip = (phi1 - phi2) / 2.0;
    const Matrix lhs =
        ashn::hamiltonianWithPhases(0.2, 1.1, phi1, 0.6, phi2, 0.4);
    // Z_theta in the paper's notation is exp(-i theta Z / 2) = rz(theta).
    const Matrix zp = qop::rz(phibar);
    const Matrix zm = qop::rz(-phibar);
    const Matrix inner =
        ashn::hamiltonianWithPhases(0.2, 1.1, phip, 0.6, -phip, 0.4);
    const Matrix rhs = linalg::kron(zm, zm) * inner * linalg::kron(zp, zp);
    EXPECT_LT(linalg::maxAbsDiff(lhs, rhs), 1e-10);
}

TEST(Hamiltonian, ZeroPhaseReducesToStandardForm)
{
    const double om1 = 0.4, om2 = 0.25, d = 0.3, h = 0.1;
    const Matrix a = ashn::hamiltonian(h, om1, om2, d);
    const Matrix b = ashn::hamiltonianWithPhases(
        h, ashn::driveA1(om1, om2), 0.0, ashn::driveA2(om1, om2), 0.0, d);
    EXPECT_LT(linalg::maxAbsDiff(a, b), 1e-12);
}

TEST(SchemeND, RealizesCnotClassAtOptimalTime)
{
    const GateParams p = ashn::synthesizeND(ashn::cnotPoint(), 0.0);
    EXPECT_NEAR(p.tau, M_PI / 2.0, 1e-12);
    // Table 1: A1 = -sqrt(15), A2 = 0.
    EXPECT_NEAR(p.a1(), -std::sqrt(15.0), 1e-6);
    EXPECT_NEAR(p.a2(), 0.0, 1e-6);
    expectRealizes(p, ashn::cnotPoint());
}

TEST(SchemeND, RealizesBGateClass)
{
    const GateParams p = ashn::synthesizeND(ashn::bGatePoint(), 0.0);
    EXPECT_NEAR(p.tau, M_PI / 2.0, 1e-12);
    // Table 1: A1 = -2.238 g (4 significant figures), A2 = 0.
    EXPECT_NEAR(p.a1(), -2.238, 5e-4);
    EXPECT_NEAR(p.a2(), 0.0, 1e-6);
    expectRealizes(p, ashn::bGatePoint());
}

class NDChamberSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(NDChamberSweep, CoversItsSector)
{
    // Points with tau_ND = 2x dominating; y, z scaled inside the sector.
    const auto [h, scale] = GetParam();
    for (double x : {0.15, 0.4, 0.6, M_PI / 4.0}) {
        for (double frac : {0.0, 0.3, 0.9}) {
            // Sector budgets in this library's convention: y+z is fed by
            // the (1-h) drive, y-z by the (1+h) drive.
            const double budgetSum = std::min((1 - h) * x, M_PI - (1 - h) * x);
            const double budgetDiff = std::min((1 + h) * x, M_PI - (1 + h) * x);
            const double ypz = scale * budgetSum;
            const double ymz = frac * scale * budgetDiff;
            const WeylPoint target{x, (ypz + ymz) / 2.0, (ypz - ymz) / 2.0};
            const GateParams p = ashn::synthesizeND(target, h);
            EXPECT_NEAR(p.tau, 2.0 * x, 1e-12);
            expectRealizes(p, target);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NDChamberSweep,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5, -0.4),
                       ::testing::Values(0.2, 0.7, 0.95)));

TEST(SchemeEA, RealizesSwapClass)
{
    const GateParams p = ashn::synthesize(ashn::swapPoint(), 0.0, 0.0);
    EXPECT_NEAR(p.tau, 3.0 * M_PI / 4.0, 1e-9);
    expectRealizes(p, ashn::swapPoint());
    // Table 1: A1 = -2.108, A2 = 2.108, 2 delta = -1.528 (up to the
    // symmetry Omega -> -Omega, delta -> -delta of the realized class).
    EXPECT_NEAR(std::abs(p.a1()), 2.108, 5e-4);
    EXPECT_NEAR(std::abs(p.a2()), 2.108, 5e-4);
    EXPECT_NEAR(std::abs(2.0 * p.delta), 1.528, 5e-4);
}

TEST(SchemeEA, SwapRealizesZZTimesSwapExactly)
{
    // Sec. 6.4: the realized [SWAP] gate is ZZ * SWAP on the nose.
    const GateParams p = ashn::synthesize(ashn::swapPoint(), 0.0, 0.0);
    const Matrix expected = qop::pauliZZ() * qop::swapGate();
    EXPECT_TRUE(qop::equalUpToGlobalPhase(ashn::realize(p), expected, 1e-5));
}

class FullSchemeSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(FullSchemeSweep, SpansChamberAtOptimalTime)
{
    const double h = GetParam();
    linalg::Rng rng(1234 + static_cast<int>(h * 100));
    for (int trial = 0; trial < 30; ++trial) {
        const WeylPoint target = weyl::sampleChamber(rng);
        const GateParams p = ashn::synthesize(target, h, 0.0);
        expectRealizes(p, target);
        EXPECT_NEAR(p.tau, weyl::optimalTime(target, h), 1e-7)
            << "scheme=" << ashn::subSchemeName(p.scheme);
    }
}

INSTANTIATE_TEST_SUITE_P(ZZRatios, FullSchemeSweep,
                         ::testing::Values(0.0, 0.2, 0.4, 0.8, -0.3, -0.8));

class CutoffSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CutoffSweep, BoundedDrivesAndCorrectGates)
{
    const double r = GetParam();
    linalg::Rng rng(77);
    const double bound = ashn::driveBound(r);
    for (int trial = 0; trial < 25; ++trial) {
        const WeylPoint target = weyl::sampleChamber(rng);
        const GateParams p = ashn::synthesize(target, 0.0, r);
        expectRealizes(p, target);
        // Eq. (4.4): max{|A1|/2,|A2|/2,|delta|} <= pi/r + 1/2.
        EXPECT_LE(p.maxDrive(), bound + 1e-6);
        EXPECT_NEAR(p.tau, ashn::gateTime(target, 0.0, r), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, CutoffSweep,
                         ::testing::Values(0.3, 0.7, 1.1, M_PI / 2.0));

TEST(Scheme, NearIdentityGatesUseNDExt)
{
    const WeylPoint tiny{0.02, 0.01, -0.005};
    const GateParams p = ashn::synthesize(tiny, 0.0, 1.1);
    EXPECT_EQ(p.scheme, SubScheme::NDExt);
    EXPECT_NEAR(p.tau, M_PI - 0.04, 1e-9);
    expectRealizes(p, tiny);
}

TEST(Scheme, IdentityTargetIsFree)
{
    const GateParams p = ashn::synthesize({0, 0, 0}, 0.3, 0.0);
    EXPECT_EQ(p.scheme, SubScheme::Identity);
    EXPECT_EQ(p.tau, 0.0);
}

TEST(Scheme, GateTimeMatchesPaperTimeFunction)
{
    // App. A.7.1: T(x,y,z;r) = max{2x, x+y+|z|} when >= r, else pi-2x.
    linalg::Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        const WeylPoint p = weyl::sampleChamber(rng);
        for (double r : {0.0, 0.5, 1.1}) {
            const double topt = std::max(2 * p.x, p.x + p.y + std::abs(p.z));
            const double expected = topt >= r ? topt : M_PI - 2 * p.x;
            EXPECT_NEAR(ashn::gateTime(p, 0.0, r), expected, 1e-10);
        }
    }
}

class CnotZZSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CnotZZSweep, ClosedFormHandlesZZCoupling)
{
    const double h = GetParam();
    const GateParams p = ashn::cnotClassParams(h);
    EXPECT_NEAR(p.tau, M_PI / 2.0, 1e-12);
    EXPECT_NEAR(p.delta, 0.0, 1e-12);
    expectRealizes(p, ashn::cnotPoint());
}

INSTANTIATE_TEST_SUITE_P(ZZ, CnotZZSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.6, 0.9, -0.5,
                                           -0.9));

TEST(CnotZZ, RealizesMolmerSorensenAtZeroZZ)
{
    const Matrix u = ashn::realize(ashn::cnotClassParams(0.0));
    EXPECT_TRUE(qop::equalUpToGlobalPhase(u, qop::msGate(), 1e-9));
}

TEST(SwapZZ, ZZCouplingShortensSwap)
{
    // Sec. 6.4: tau_opt([SWAP]) = 3 pi / (4 (1 + |h|/2)); realized by the
    // scheme for either sign of h.
    for (double h : {0.3, -0.3, 0.7}) {
        const GateParams p = ashn::synthesize(ashn::swapPoint(), h, 0.0);
        EXPECT_NEAR(p.tau, 3.0 * M_PI / (4.0 * (1.0 + std::abs(h) / 2.0)),
                    1e-7)
            << "h=" << h;
        expectRealizes(p, ashn::swapPoint());
    }
}

TEST(Bounds, GeneralBoundHoldsAtMaximalCutoff)
{
    linalg::Rng rng(3);
    for (double h : {0.0, 0.4, -0.6}) {
        const double r = (1.0 - std::abs(h)) * M_PI / 2.0;
        const double bound = ashn::driveBoundGeneral(h);
        for (int trial = 0; trial < 10; ++trial) {
            const WeylPoint target = weyl::sampleChamber(rng);
            const GateParams p = ashn::synthesize(target, h, r);
            expectRealizes(p, target);
            EXPECT_LE(p.maxDrive(), bound + 1e-6);
        }
    }
}

TEST(Scheme, RejectsInvalidArguments)
{
    EXPECT_THROW(ashn::synthesize({0.1, 0, 0}, 1.5, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(ashn::synthesize({0.1, 0, 0}, 0.0, -0.1),
                 std::invalid_argument);
    EXPECT_THROW(ashn::synthesize({0.1, 0, 0}, 0.5, M_PI / 2.0),
                 std::invalid_argument);
    EXPECT_THROW(ashn::driveBound(0.0), std::invalid_argument);
}

TEST(AverageGateTime, ClosedFormMatchesQuadrature)
{
    // App. A.7.1's closed form against direct chamber quadrature of the
    // time function, for several cutoffs.
    for (double r : {0.0, 0.3, 0.7, 1.1}) {
        const double viaQuad = weyl::chamberQuadrature(
            [r](const WeylPoint &p) { return ashn::gateTime(p, 0.0, r); },
            70);
        EXPECT_NEAR(ashn::averageGateTime(r), viaQuad, 3e-3) << "r=" << r;
    }
    // r = 0 reproduces the optimal-time average 1.3408.
    EXPECT_NEAR(ashn::averageGateTime(0.0), weyl::haarAverageOptimalTime(),
                1e-12);
}

TEST(Scheme, SubSchemeNamesAreStable)
{
    EXPECT_EQ(ashn::subSchemeName(SubScheme::ND), "AshN-ND");
    EXPECT_EQ(ashn::subSchemeName(SubScheme::EAPlus), "AshN-EA+");
}

} // namespace

/**
 * @file
 * Cache-blocked execution suite (fast; runs under the CI sanitizer
 * matrix). executeBlocked inverts the sweep loop nest — amplitude
 * blocks outer, the ops of a blockable segment inner — and must stay
 * bit-identical to serial plan execution for every block exponent,
 * thread count, and SoA lane count, over random circuits covering all
 * five KernelKinds. The suite also pins the blockable-segment
 * partition (blockSegments and the PlanStats counters), the
 * cache-geometry helpers in sim/cache.hh (CRISC_BLOCK_BYTES override,
 * clamping, the reject-loud sim/env.hh parse, the auto/forced
 * resolution bands), and the planBatch blocking heuristic.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "sim/batch.hh"
#include "sim/batch_state.hh"
#include "sim/cache.hh"
#include "sim/engine.hh"
#include "sim/kernels.hh"
#include "sim_test_util.hh"

namespace {

using namespace crisc;
using linalg::Complex;
using linalg::CVector;
using linalg::Matrix;
using testutil::bitIdentical;
using testutil::randomCircuit;
using testutil::randomState;

/** Pins CRISC_BLOCK_BYTES for one scope and restores the old value. */
class ScopedBlockBytes : public testutil::ScopedEnv
{
  public:
    explicit ScopedBlockBytes(const char *value)
        : ScopedEnv("CRISC_BLOCK_BYTES", value)
    {
    }
};

sim::Plan
compileUnfused(const circuit::Circuit &c)
{
    return sim::compile(c,
                        {.fuseSingleQubit = false, .fuseTwoQubit = false});
}

// ---------------------------------------------------------------------
// sim/cache.hh helpers.
// ---------------------------------------------------------------------

TEST(Cache, EnvOverrideWinsAndClamps)
{
    {
        ScopedBlockBytes env("262144");
        EXPECT_EQ(sim::cacheBlockBytes(), 262144u);
    }
    {
        // Below the floor: clamped up, never a degenerate tiny block.
        ScopedBlockBytes env("16");
        EXPECT_EQ(sim::cacheBlockBytes(), sim::kMinBlockBytes);
    }
    {
        // Above the ceiling: clamped down.
        ScopedBlockBytes env("9999999999999");
        EXPECT_EQ(sim::cacheBlockBytes(), sim::kMaxBlockBytes);
    }
}

TEST(Cache, EmptyOrZeroOverrideFallsThroughGarbageThrows)
{
    ScopedBlockBytes unset(nullptr);
    const std::size_t detected = sim::cacheBlockBytes();
    EXPECT_GE(detected, sim::kMinBlockBytes);
    EXPECT_LE(detected, sim::kMaxBlockBytes);
    // Unset / empty / "0" mean "no override" (sim/env.hh).
    for (const char *off : {"", "0"}) {
        ScopedBlockBytes env(off);
        EXPECT_EQ(sim::cacheBlockBytes(), detected) << "'" << off << "'";
    }
    // Anything unparsable is rejected loudly, never silently ignored.
    for (const char *bad : {"banana", "12abc", "-4", " 8"}) {
        ScopedBlockBytes env(bad);
        EXPECT_THROW(sim::cacheBlockBytes(), std::invalid_argument)
            << "'" << bad << "'";
    }
}

TEST(Cache, AutoBlockQubitsMatchesBudgetAndClampsToWidth)
{
    // 1 MiB = 2^16 amplitudes of 16 bytes.
    ScopedBlockBytes env("1048576");
    EXPECT_EQ(sim::autoBlockQubits(26), 16u);
    EXPECT_EQ(sim::autoBlockQubits(17), 16u);
    EXPECT_EQ(sim::autoBlockQubits(16), 16u);
    EXPECT_EQ(sim::autoBlockQubits(10), 10u); // never exceeds the width
    EXPECT_EQ(sim::autoBlockQubits(0), 0u);
}

TEST(Cache, ResolveBlockQubitsBands)
{
    ScopedBlockBytes env("1048576");
    // Auto: off below the width threshold, autoBlockQubits at or above.
    EXPECT_EQ(sim::resolveBlockQubits(0, sim::kAutoBlockFromWidth - 1),
              0u);
    EXPECT_EQ(sim::resolveBlockQubits(0, sim::kAutoBlockFromWidth), 16u);
    EXPECT_EQ(sim::resolveBlockQubits(0, 28), 16u);
    // Forced: honored and clamped to the width (b = n is the
    // degenerate single-block form, the explicit "off").
    EXPECT_EQ(sim::resolveBlockQubits(5, 12), 5u);
    EXPECT_EQ(sim::resolveBlockQubits(40, 12), 12u);
    EXPECT_EQ(sim::resolveBlockQubits(7, 0), 0u);
}

TEST(Cache, PlanBatchTurnsBlockingOnAtWideWidths)
{
    ScopedBlockBytes env("1048576");
    EXPECT_EQ(sim::planBatch(4, 12, 8).blockQubits, 0u);
    EXPECT_EQ(sim::planBatch(4, sim::kAutoBlockFromWidth - 1, 8).blockQubits,
              0u);
    EXPECT_EQ(sim::planBatch(4, sim::kAutoBlockFromWidth, 8).blockQubits,
              16u);
    EXPECT_EQ(sim::planBatch(4, 28, 8).blockQubits, 16u);
}

// ---------------------------------------------------------------------
// Segment partition.
// ---------------------------------------------------------------------

TEST(BlockSegments, PartitionBoundariesAndMinBlockBits)
{
    // n = 8; qubit q addresses index bit 7 - q, so minBlockBits of an
    // op is 8 - min(target qubits).
    linalg::Rng rng(3);
    circuit::Circuit c(8);
    c.add(linalg::haarUnitary(rng, 2), {7}, "low");  // bits 1
    c.add(qop::cz(), {6, 7}, "low2");                // bits 2
    c.add(linalg::haarUnitary(rng, 2), {0}, "high"); // bits 8
    c.add(qop::cnot(), {4, 6}, "mid");               // bits 4
    const sim::Plan plan = compileUnfused(c);
    ASSERT_EQ(plan.ops().size(), 4u);
    const std::vector<std::size_t> &bits = plan.minBlockBits();
    EXPECT_EQ(bits[0], 1u);
    EXPECT_EQ(bits[1], 2u);
    EXPECT_EQ(bits[2], 8u);
    EXPECT_EQ(bits[3], 4u);

    // b = 4: [blockable x2][non-blockable][blockable].
    const std::vector<sim::BlockSegment> at4 = sim::blockSegments(plan, 4);
    ASSERT_EQ(at4.size(), 3u);
    EXPECT_TRUE(at4[0].blockable);
    EXPECT_EQ(at4[0].first, 0u);
    EXPECT_EQ(at4[0].count, 2u);
    EXPECT_FALSE(at4[1].blockable);
    EXPECT_EQ(at4[1].first, 2u);
    EXPECT_EQ(at4[1].count, 1u);
    EXPECT_TRUE(at4[2].blockable);
    EXPECT_EQ(at4[2].first, 3u);
    EXPECT_EQ(at4[2].count, 1u);

    // b = 1: only the first op qualifies.
    const std::vector<sim::BlockSegment> at1 = sim::blockSegments(plan, 1);
    ASSERT_EQ(at1.size(), 2u);
    EXPECT_TRUE(at1[0].blockable);
    EXPECT_EQ(at1[0].count, 1u);
    EXPECT_FALSE(at1[1].blockable);
    EXPECT_EQ(at1[1].count, 3u);

    // b = n: everything is blockable, one segment.
    const std::vector<sim::BlockSegment> at8 = sim::blockSegments(plan, 8);
    ASSERT_EQ(at8.size(), 1u);
    EXPECT_TRUE(at8[0].blockable);
    EXPECT_EQ(at8[0].count, 4u);

    EXPECT_THROW(sim::blockSegments(plan, 0), std::invalid_argument);
    EXPECT_THROW(sim::blockSegments(plan, 9), std::invalid_argument);
}

TEST(BlockSegments, PlanStatsCountSegmentsAtAutoExponent)
{
    // Pin the auto exponent: 4096 B = 256 amplitudes -> b = 8, clamped
    // to the width 10 only if larger (it is not).
    ScopedBlockBytes env("4096");
    ASSERT_EQ(sim::autoBlockQubits(10), 8u);
    linalg::Rng rng(5);
    circuit::Circuit c(10);
    c.add(qop::cz(), {8, 9}, "low");                 // bits 2
    c.add(linalg::haarUnitary(rng, 2), {0}, "high"); // bits 10
    c.add(linalg::haarUnitary(rng, 2), {5}, "mid");  // bits 5
    c.add(qop::cnot(), {6, 7}, "mid2");              // bits 4
    const sim::Plan plan = compileUnfused(c);
    // Blockable at b = 8: ops 0, 2, 3 -> two maximal runs around op 1.
    EXPECT_EQ(plan.stats().blockedSegments, 2u);
    EXPECT_EQ(plan.stats().blockableOps, 3u);

    const sim::Plan empty = compileUnfused(circuit::Circuit(10));
    EXPECT_EQ(empty.stats().blockedSegments, 0u);
    EXPECT_EQ(empty.stats().blockableOps, 0u);
    EXPECT_TRUE(sim::blockSegments(empty, 8).empty());
}

// ---------------------------------------------------------------------
// Bitwise equivalence: blocked vs. serial, every backend combination.
// ---------------------------------------------------------------------

TEST(BlockedExecution, BitIdenticalForEveryExponentThreadAndLaneCount)
{
    ScopedBlockBytes env("4096"); // auto exponent 8 at these widths
    linalg::Rng rng(77);
    const std::size_t n = 12;
    bool sawKind[5] = {false, false, false, false, false};
    for (int rep = 0; rep < 3; ++rep) {
        const circuit::Circuit c = randomCircuit(rng, n, 40);
        const sim::Plan plan = compileUnfused(c);
        for (const sim::KernelOp &op : plan.ops())
            sawKind[static_cast<int>(op.kind)] = true;

        const CVector init = randomState(rng, n);
        CVector ref = init;
        sim::execute(plan, ref.data()); // serial unblocked reference

        const std::size_t exps[] = {sim::autoBlockQubits(n), 3, n};
        for (const std::size_t b : exps) {
            for (const std::size_t threads : {1, 2, 4}) {
                CVector amps = init;
                sim::ExecOptions opts;
                opts.threads = threads;
                sim::executeBlocked(plan, amps.data(), b, opts);
                EXPECT_TRUE(bitIdentical(amps, ref))
                    << "b=" << b << " threads=" << threads
                    << " rep=" << rep;
            }
            // SoA lanes {1, 4}: every lane must match the serial run
            // on that lane's statevector.
            for (const std::size_t lanes : {1, 4}) {
                std::vector<CVector> states;
                for (std::size_t l = 0; l < lanes; ++l)
                    states.push_back(randomState(rng, n));
                sim::BatchState batch = sim::BatchState::pack(states);
                sim::ExecOptions opts;
                opts.threads = 2;
                sim::executeBlockedBatched(plan, batch, b, opts);
                for (std::size_t l = 0; l < lanes; ++l) {
                    CVector lref = states[l];
                    sim::execute(plan, lref.data());
                    EXPECT_TRUE(bitIdentical(batch.unpackLane(l), lref))
                        << "b=" << b << " lane=" << l << "/" << lanes
                        << " rep=" << rep;
                }
            }
        }
    }
    for (int k = 0; k < 5; ++k)
        EXPECT_TRUE(sawKind[k]) << "kernel kind " << k << " never hit";
}

TEST(BlockedExecution, ExecOptionsDispatchMatchesExplicitCall)
{
    ScopedBlockBytes env("4096");
    linalg::Rng rng(91);
    const std::size_t n = 11;
    const sim::Plan plan = compileUnfused(randomCircuit(rng, n, 30));
    const CVector init = randomState(rng, n);
    CVector ref = init;
    sim::execute(plan, ref.data());

    // Forced through the user-facing knob (values above n clamp).
    for (const std::size_t req : {std::size_t{5}, std::size_t{40}}) {
        CVector amps = init;
        sim::ExecOptions opts;
        opts.blockQubits = req;
        opts.threads = 2;
        sim::execute(plan, amps.data(), opts);
        EXPECT_TRUE(bitIdentical(amps, ref)) << "req=" << req;
    }
    // Batched dispatch path.
    {
        sim::BatchState batch = sim::BatchState::pack({init, init});
        sim::ExecOptions opts;
        opts.blockQubits = 6;
        sim::executeBatched(plan, batch, opts);
        EXPECT_TRUE(bitIdentical(batch.unpackLane(0), ref));
        EXPECT_TRUE(bitIdentical(batch.unpackLane(1), ref));
    }
    // Auto below kAutoBlockFromWidth stays on the unblocked path and
    // still matches, of course.
    {
        CVector amps = init;
        sim::ExecOptions opts;
        sim::execute(plan, amps.data(), opts);
        EXPECT_TRUE(bitIdentical(amps, ref));
    }
}

TEST(BlockedExecution, RangeFormPartitionsReassembleTheSweep)
{
    ScopedBlockBytes env("4096");
    linalg::Rng rng(13);
    const std::size_t n = 10;
    // All-blockable plan at b = 4: gates confined to qubits >= 6.
    circuit::Circuit c(n);
    for (int layer = 0; layer < 2; ++layer)
        for (std::size_t q = 6 + (layer % 2); q + 1 < n; q += 2)
            c.add(linalg::haarSU(rng, 4), {q, q + 1}, "u2");
    const sim::Plan plan = compileUnfused(c);
    const std::size_t b = 4;
    const std::size_t blocks = plan.dim() >> b; // 64

    const CVector init = randomState(rng, n);
    CVector ref = init;
    sim::execute(plan, ref.data());

    // Any partition of the block axis reassembles the full run.
    for (const std::size_t step : {std::size_t{1}, std::size_t{7},
                                   std::size_t{64}}) {
        CVector amps = init;
        for (std::size_t b0 = 0; b0 < blocks; b0 += step)
            sim::executeBlockedRange(plan, 0, plan.ops().size(),
                                     amps.data(), b,
                                     b0, std::min(b0 + step, blocks));
        EXPECT_TRUE(bitIdentical(amps, ref)) << "step=" << step;
    }
}

TEST(BlockedExecution, ValidatesArguments)
{
    linalg::Rng rng(19);
    const std::size_t n = 8;
    circuit::Circuit c(n);
    c.add(linalg::haarUnitary(rng, 2), {0}, "high"); // blockable only at n
    c.add(qop::cz(), {6, 7}, "low");
    const sim::Plan plan = compileUnfused(c);
    CVector amps = randomState(rng, n);

    EXPECT_THROW(sim::executeBlocked(plan, amps.data(), 0, {}),
                 std::invalid_argument);
    EXPECT_THROW(sim::executeBlocked(plan, amps.data(), n + 1, {}),
                 std::invalid_argument);
    // The range form rejects ops that are not blockable at b, and
    // out-of-range op/block intervals.
    EXPECT_THROW(sim::executeBlockedRange(plan, 0, 2, amps.data(), 4, 0, 1),
                 std::invalid_argument);
    EXPECT_THROW(sim::executeBlockedRange(plan, 1, 2, amps.data(), 4, 0,
                                          (plan.dim() >> 4) + 1),
                 std::invalid_argument);
    EXPECT_THROW(sim::executeBlockedRange(plan, 1, 3, amps.data(), 4, 0, 1),
                 std::invalid_argument);

    sim::BatchState batch(n - 1, 2); // width mismatch
    EXPECT_THROW(sim::executeBlockedBatched(plan, batch, 4, {}),
                 std::invalid_argument);
}

} // namespace

/**
 * @file
 * Figure-level regression tests (ctest label: slow). The heavy-output
 * values below were captured on pre-refactor main (the hand-rolled
 * per-native-set qv harness) and are asserted bit-identical: the
 * Device-driven rewrite must not perturb a single ulp of the Figure-7
 * numbers for the three canned presets.
 */

#include <gtest/gtest.h>

#include "device/device.hh"
#include "qv/qv.hh"

namespace {

using namespace crisc;
using device::Device;

struct Pinned
{
    qv::NativeSet native;
    double cutoff;
    std::size_t width;
    double hop;
    double gates;
    double time;
    double swaps;
};

// Captured with: czError 0.012, singleQubitError 0.001, circuits 8,
// trajectories 6, seed 1000 + width, threads 1, on pre-refactor main.
const Pinned kPinned[] = {
    {qv::NativeSet::AshN, 0.0, 3, 0.81123800856606321, 4.0,
     6.1811523084202431, 1.0},
    {qv::NativeSet::AshN, 0.0, 5, 0.85543867285074482, 16.375,
     28.424845434468065, 6.375},
    {qv::NativeSet::AshN, 1.1, 3, 0.81123800856606321, 4.0,
     6.7157690114982493, 1.0},
    {qv::NativeSet::AshN, 1.1, 5, 0.85543867285074482, 16.375,
     29.97654032414048, 6.375},
    {qv::NativeSet::SQiSW, 0.0, 3, 0.83266479816834116, 9.375,
     7.3631077818510802, 1.0},
    {qv::NativeSet::SQiSW, 0.0, 5, 0.82663608635447539, 40.625,
     31.906800388021281, 6.375},
    {qv::NativeSet::CZ, 0.0, 3, 0.78259508096983532, 12.0,
     26.657297628950204, 1.0},
    {qv::NativeSet::CZ, 0.0, 5, 0.74872018163893939, 49.125,
     109.12831216851504, 6.375},
};

qv::QvConfig
configFor(const Pinned &p)
{
    qv::QvConfig cfg;
    cfg.width = p.width;
    cfg.native = p.native;
    cfg.ashnCutoff = p.cutoff;
    cfg.czError = 0.012;
    cfg.singleQubitError = 0.001;
    cfg.circuits = 8;
    cfg.trajectories = 6;
    cfg.seed = 1000 + p.width;
    cfg.threads = 1;
    return cfg;
}

TEST(Figure7, HeavyOutputBitIdenticalToPreRefactorMain)
{
    for (const Pinned &p : kPinned) {
        const qv::QvResult r = qv::heavyOutputExperiment(configFor(p));
        // EXPECT_EQ on doubles: exact, bit-identical comparison.
        EXPECT_EQ(r.heavyOutputProportion, p.hop)
            << qv::nativeSetName(p.native) << " r=" << p.cutoff
            << " d=" << p.width;
        EXPECT_EQ(r.avgNativeGatesPerCircuit, p.gates);
        EXPECT_EQ(r.avgTwoQubitTimePerCircuit, p.time);
        EXPECT_EQ(r.avgSwapsPerCircuit, p.swaps);
    }
}

TEST(Figure7, ExplicitDeviceMatchesPresetKnobs)
{
    // Passing the preset device explicitly is the same experiment.
    for (const Pinned &p : kPinned) {
        qv::QvConfig cfg = configFor(p);
        const Device dev = qv::presetDevice(cfg);
        cfg.device = &dev;
        const qv::QvResult r = qv::heavyOutputExperiment(cfg);
        EXPECT_EQ(r.heavyOutputProportion, p.hop);
        EXPECT_EQ(r.avgTwoQubitTimePerCircuit, p.time);
    }
}

TEST(Figure7, ThreadCountInvariant)
{
    // The trajectory fan-out must not perturb the reduction: 4 worker
    // threads reproduce the single-thread numbers bit for bit.
    qv::QvConfig cfg = configFor(kPinned[1]);
    cfg.threads = 4;
    const qv::QvResult r = qv::heavyOutputExperiment(cfg);
    EXPECT_EQ(r.heavyOutputProportion, kPinned[1].hop);
}

} // namespace

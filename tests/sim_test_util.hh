/**
 * @file
 * Shared statevector test fixtures: a seeded random normalized state
 * and an element-wise max-difference metric, used by the simulation
 * (test_sim.cc) and SIMD-equivalence (test_simd.cc) suites so both
 * exercise identical state generation.
 */

#ifndef CRISC_TESTS_SIM_TEST_UTIL_HH
#define CRISC_TESTS_SIM_TEST_UTIL_HH

#include <algorithm>
#include <cmath>

#include "linalg/matrix.hh"
#include "linalg/random.hh"

namespace crisc {
namespace testutil {

/** A Haar-ish random normalized n-qubit statevector. */
inline linalg::CVector
randomState(linalg::Rng &rng, std::size_t n)
{
    linalg::CVector v(std::size_t{1} << n);
    double norm2 = 0.0;
    for (linalg::Complex &a : v) {
        a = linalg::Complex{rng.gaussian(), rng.gaussian()};
        norm2 += std::norm(a);
    }
    const double scale = 1.0 / std::sqrt(norm2);
    for (linalg::Complex &a : v)
        a *= scale;
    return v;
}

/** max_i |a[i] - b[i]| over two equal-length vectors. */
inline double
maxDiff(const linalg::CVector &a, const linalg::CVector &b)
{
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

} // namespace testutil
} // namespace crisc

#endif // CRISC_TESTS_SIM_TEST_UTIL_HH

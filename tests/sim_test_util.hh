/**
 * @file
 * Shared statevector test fixtures: a seeded random normalized state,
 * an element-wise max-difference metric, a bitwise-equality predicate,
 * a random circuit covering all five KernelKinds, and a scoped
 * environment-variable override that drops the sim/env.hh parse caches.
 * Used by the simulation (test_sim.cc), SIMD-equivalence
 * (test_simd.cc), blocked-execution (test_blocked.cc), and sharded
 * (test_shard.cc) suites so they all exercise identical state and
 * circuit generation.
 */

#ifndef CRISC_TESTS_SIM_TEST_UTIL_HH
#define CRISC_TESTS_SIM_TEST_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "circuit/circuit.hh"
#include "linalg/matrix.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "sim/env.hh"

namespace crisc {
namespace testutil {

/** A Haar-ish random normalized n-qubit statevector. */
inline linalg::CVector
randomState(linalg::Rng &rng, std::size_t n)
{
    linalg::CVector v(std::size_t{1} << n);
    double norm2 = 0.0;
    for (linalg::Complex &a : v) {
        a = linalg::Complex{rng.gaussian(), rng.gaussian()};
        norm2 += std::norm(a);
    }
    const double scale = 1.0 / std::sqrt(norm2);
    for (linalg::Complex &a : v)
        a *= scale;
    return v;
}

/** max_i |a[i] - b[i]| over two equal-length vectors. */
inline double
maxDiff(const linalg::CVector &a, const linalg::CVector &b)
{
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

/** Exact bitwise equality of two equal-length statevectors. */
inline bool
bitIdentical(const linalg::CVector &a, const linalg::CVector &b)
{
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].real() != b[i].real() || a[i].imag() != b[i].imag())
            return false;
    return true;
}

/**
 * Random circuit whose compiled plan (with fusion off) covers all five
 * KernelKinds: dense and diagonal 1q, dense and diagonal 2q, and the
 * k = 3 dense fallback.
 */
inline circuit::Circuit
randomCircuit(linalg::Rng &rng, std::size_t n, std::size_t gates)
{
    circuit::Circuit c(n);
    for (std::size_t g = 0; g < gates; ++g) {
        const std::size_t kind = rng.index(6);
        const std::size_t a = rng.index(n);
        std::size_t b = rng.index(n - 1);
        if (b >= a)
            ++b;
        switch (kind) {
          case 0:
            c.add(linalg::haarUnitary(rng, 2), {a}, "u1");
            break;
          case 1:
            c.add(qop::rz(rng.uniform(0.0, 6.28)), {a}, "rz");
            break;
          case 2:
            c.add(linalg::haarSU(rng, 4), {a, b}, "u2");
            break;
          case 3:
            c.add(qop::cz(), {a, b}, "cz");
            break;
          case 4:
            c.add(qop::cnot(), {a, b}, "cx");
            break;
          default: {
            std::size_t d = rng.index(n - 2);
            for (std::size_t q : {std::min(a, b), std::max(a, b)})
                if (d >= q)
                    ++d;
            c.add(linalg::haarUnitary(rng, 8), {a, b, d}, "u3");
            break;
          }
        }
    }
    return c;
}

/**
 * Pins one environment variable for a scope and restores the old value
 * on exit, dropping the sim/env.hh parse caches on both transitions so
 * the next accessor call re-reads the environment. Pass nullptr to
 * unset the variable for the scope.
 */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value == nullptr)
            unsetenv(name);
        else
            setenv(name, value, 1);
        sim::env::resetForTesting();
    }
    ~ScopedEnv()
    {
        if (hadOld_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
        sim::env::resetForTesting();
    }

    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    std::string name_;
    bool hadOld_ = false;
    std::string old_;
};

} // namespace testutil
} // namespace crisc

#endif // CRISC_TESTS_SIM_TEST_UTIL_HH

/**
 * @file
 * Tests for the kernelized statevector engine (src/sim/): kernel
 * correctness against dense embeddings, randomized engine-vs-toUnitary
 * equivalence, gate fusion, the thread pool, and bit-for-bit
 * determinism of parallel trajectory batches.
 */

#include <atomic>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "circuit/noise.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "qv/qv.hh"
#include "sim/batch.hh"
#include "sim/engine.hh"
#include "sim/kernels.hh"

namespace {

using namespace crisc;
using circuit::Circuit;
using linalg::Complex;
using linalg::CVector;
using linalg::Matrix;

CVector
randomState(linalg::Rng &rng, std::size_t n)
{
    CVector v(std::size_t{1} << n);
    double norm2 = 0.0;
    for (Complex &a : v) {
        a = Complex{rng.gaussian(), rng.gaussian()};
        norm2 += std::norm(a);
    }
    const double scale = 1.0 / std::sqrt(norm2);
    for (Complex &a : v)
        a *= scale;
    return v;
}

double
maxDiff(const CVector &a, const CVector &b)
{
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

TEST(Kernels, OneQubitMatchesEmbedding)
{
    linalg::Rng rng(11);
    const std::size_t n = 4;
    for (std::size_t q = 0; q < n; ++q) {
        const Matrix u = linalg::haarUnitary(rng, 2);
        const CVector in = randomState(rng, n);
        CVector viaKernel = in;
        const Complex m[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
        sim::apply1q(viaKernel.data(), n, q, m);
        const CVector viaEmbed = qop::embed(u, {q}, n) * in;
        EXPECT_LT(maxDiff(viaKernel, viaEmbed), 1e-12);
    }
}

TEST(Kernels, OneQubitDiagonalMatchesDense)
{
    linalg::Rng rng(12);
    const std::size_t n = 5;
    const Matrix u = qop::rz(0.7317);
    for (std::size_t q = 0; q < n; ++q) {
        const CVector in = randomState(rng, n);
        CVector viaDiag = in;
        sim::apply1qDiag(viaDiag.data(), n, q, u(0, 0), u(1, 1));
        const CVector viaEmbed = qop::embed(u, {q}, n) * in;
        EXPECT_LT(maxDiff(viaDiag, viaEmbed), 1e-12);
    }
}

TEST(Kernels, PauliKernelMatchesDense)
{
    linalg::Rng rng(13);
    const std::size_t n = 4;
    for (std::size_t q = 0; q < n; ++q) {
        for (std::size_t p = 1; p <= 3; ++p) {
            const CVector in = randomState(rng, n);
            CVector viaKernel = in;
            sim::applyPauli(viaKernel.data(), n, q, p);
            const CVector viaEmbed =
                qop::embed(circuit::pauliByIndex(p), {q}, n) * in;
            EXPECT_LT(maxDiff(viaKernel, viaEmbed), 1e-15);
        }
    }
}

TEST(Kernels, TwoQubitMatchesEmbeddingAllPairs)
{
    linalg::Rng rng(14);
    const std::size_t n = 4;
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
            if (a == b)
                continue;
            const Matrix u = linalg::haarUnitary(rng, 4);
            const CVector in = randomState(rng, n);
            CVector viaKernel = in;
            sim::apply2q(viaKernel.data(), n, a, b, u.data());
            const CVector viaEmbed = qop::embed(u, {a, b}, n) * in;
            EXPECT_LT(maxDiff(viaKernel, viaEmbed), 1e-12)
                << "pair (" << a << ", " << b << ")";
        }
    }
}

TEST(Kernels, TwoQubitDiagonalMatchesDense)
{
    linalg::Rng rng(15);
    const std::size_t n = 4;
    const Matrix &u = qop::cz();
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
            if (a == b)
                continue;
            const CVector in = randomState(rng, n);
            CVector viaDiag = in;
            const Complex d[4] = {u(0, 0), u(1, 1), u(2, 2), u(3, 3)};
            sim::apply2qDiag(viaDiag.data(), n, a, b, d);
            const CVector viaEmbed = qop::embed(u, {a, b}, n) * in;
            EXPECT_LT(maxDiff(viaDiag, viaEmbed), 1e-15);
        }
    }
}

/** Random circuit mixing 1q, 2q, diagonal, and (optionally) 3q gates. */
Circuit
randomCircuit(linalg::Rng &rng, std::size_t n, std::size_t gates,
              bool with_dense)
{
    Circuit c(n);
    for (std::size_t g = 0; g < gates; ++g) {
        const std::size_t kind = rng.index(with_dense && n >= 3 ? 6 : 5);
        const std::size_t a = rng.index(n);
        std::size_t b = rng.index(n - 1);
        if (b >= a)
            ++b;
        switch (kind) {
          case 0:
            c.add(linalg::haarUnitary(rng, 2), {a}, "u1");
            break;
          case 1:
            c.add(qop::rz(rng.uniform(0.0, 6.28)), {a}, "rz");
            break;
          case 2:
            c.add(linalg::haarSU(rng, 4), {a, b}, "u2");
            break;
          case 3:
            c.add(qop::cz(), {a, b}, "cz");
            break;
          case 4:
            c.add(qop::cnot(), {a, b}, "cx");
            break;
          default: {
            std::size_t d = rng.index(n - 2);
            for (std::size_t q : {std::min(a, b), std::max(a, b)})
                if (d >= q)
                    ++d;
            c.add(linalg::haarUnitary(rng, 8), {a, b, d}, "u3");
            break;
          }
        }
    }
    return c;
}

TEST(Engine, RandomCircuitsMatchToUnitary)
{
    linalg::Rng rng(21);
    for (std::size_t n = 2; n <= 5; ++n) {
        for (int rep = 0; rep < 8; ++rep) {
            const Circuit c = randomCircuit(rng, n, 4 * n, true);
            const Matrix u = c.toUnitary();
            const CVector amps = sim::run(sim::compile(c));
            CVector expected(u.rows());
            for (std::size_t i = 0; i < u.rows(); ++i)
                expected[i] = u(i, 0);
            EXPECT_LT(maxDiff(amps, expected), 1e-9)
                << "n = " << n << ", rep = " << rep;
        }
    }
}

TEST(Engine, FusedAndUnfusedPlansAgree)
{
    linalg::Rng rng(22);
    const std::size_t n = 4;
    const Circuit c = randomCircuit(rng, n, 32, false);
    const sim::Plan fused = sim::compile(c, {.fuseSingleQubit = true});
    const sim::Plan unfused = sim::compile(c, {.fuseSingleQubit = false});
    EXPECT_LT(maxDiff(sim::run(fused), sim::run(unfused)), 1e-12);
    EXPECT_LE(fused.ops().size(), unfused.ops().size());
}

TEST(Engine, FusionMergesAdjacentSingleQubitRuns)
{
    Circuit c(2);
    c.add(qop::hadamard(), {0}, "H");
    c.add(qop::rz(0.3), {0}, "rz");
    c.add(qop::hadamard(), {0}, "H");
    c.add(qop::rz(0.5), {1}, "rz");
    c.add(qop::sGate(), {1}, "S");
    c.add(qop::cnot(), {0, 1}, "CX");
    const sim::Plan plan = sim::compile(c);
    // Three 1q gates on q0 -> one op; two diagonal 1q on q1 -> one
    // diagonal op; plus the CNOT.
    EXPECT_EQ(plan.ops().size(), 3u);
    EXPECT_EQ(plan.stats().fusedGates, 3u);
    EXPECT_EQ(plan.stats().sourceGates, 6u);
    bool sawDiag = false;
    for (const sim::KernelOp &op : plan.ops())
        sawDiag = sawDiag || op.kind == sim::KernelKind::OneQDiag;
    EXPECT_TRUE(sawDiag);
}

TEST(Engine, DiagonalTwoQubitGateLowersToDiagKernel)
{
    Circuit c(3);
    c.add(qop::cz(), {0, 2}, "CZ");
    const sim::Plan plan = sim::compile(c);
    ASSERT_EQ(plan.ops().size(), 1u);
    EXPECT_EQ(plan.ops()[0].kind, sim::KernelKind::TwoQDiag);
    EXPECT_EQ(plan.stats().diagOps, 1u);
}

TEST(Engine, StateApplyStillMatchesToUnitary)
{
    // State::apply now routes through the kernels; re-check the original
    // contract on a mixed circuit.
    linalg::Rng rng(23);
    const Circuit c = randomCircuit(rng, 3, 12, true);
    const Matrix u = c.toUnitary();
    circuit::State s(3);
    s.run(c);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_NEAR(std::abs(s.amplitudes()[i] - u(i, 0)), 0.0, 1e-9);
}

TEST(Batch, StreamSeedsAreDistinct)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {1ULL, 2ULL, 999ULL})
        for (std::uint64_t stream = 0; stream < 100; ++stream)
            seen.insert(sim::streamSeed(base, stream));
    EXPECT_EQ(seen.size(), 300u);
}

TEST(Batch, ParallelForCoversEveryIndexOnce)
{
    sim::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1);
    // Reuse across batches (exercises the generation handshake).
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 2);
}

TEST(Batch, TrajectoriesAreThreadCountInvariant)
{
    const auto body = [](std::size_t, linalg::Rng &rng) {
        double acc = 0.0;
        for (int i = 0; i < 100; ++i)
            acc += rng.uniform();
        return acc;
    };
    sim::ThreadPool serial(1), parallel(4);
    const std::vector<double> a =
        sim::runTrajectories(serial, 64, 42, body);
    const std::vector<double> b =
        sim::runTrajectories(parallel, 64, 42, body);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]); // bit-for-bit
}

TEST(Batch, QvExperimentIsThreadCountInvariant)
{
    qv::QvConfig cfg;
    cfg.width = 4;
    cfg.czError = 0.02;
    cfg.circuits = 6;
    cfg.trajectories = 8;
    cfg.seed = 31;
    cfg.threads = 1;
    const qv::QvResult serial = qv::heavyOutputExperiment(cfg);
    for (int threads : {2, 4, 7}) {
        cfg.threads = threads;
        const qv::QvResult parallel = qv::heavyOutputExperiment(cfg);
        EXPECT_EQ(serial.heavyOutputProportion,
                  parallel.heavyOutputProportion);
        EXPECT_EQ(serial.avgNativeGatesPerCircuit,
                  parallel.avgNativeGatesPerCircuit);
        EXPECT_EQ(serial.avgTwoQubitTimePerCircuit,
                  parallel.avgTwoQubitTimePerCircuit);
        EXPECT_EQ(serial.avgSwapsPerCircuit, parallel.avgSwapsPerCircuit);
    }
}

TEST(Noise, FastPathsMatchVectorOverloads)
{
    linalg::Rng rng(91);
    const std::size_t n = 3;
    CVector a = randomState(rng, n);
    CVector b = a;
    linalg::Rng rngA(5), rngB(5);
    for (int i = 0; i < 300; ++i) {
        circuit::applyDepolarizing(a.data(), n, {1}, 0.4, rngA);
        circuit::applyDepolarizing(b.data(), n, std::size_t{1}, 0.4, rngB);
        circuit::applyDepolarizing(a.data(), n, {0, 2}, 0.4, rngA);
        circuit::applyDepolarizing(b.data(), n, std::size_t{0},
                                   std::size_t{2}, 0.4, rngB);
    }
    EXPECT_EQ(maxDiff(a, b), 0.0);
}

TEST(Noise, RawOverloadMatchesStateOverload)
{
    // Same rng stream => same Pauli choices => identical states.
    linalg::Rng rngA(77), rngB(77);
    circuit::State viaState(3);
    viaState.apply(qop::hadamard(), {0});
    CVector raw = viaState.amplitudes();
    for (int i = 0; i < 200; ++i) {
        circuit::applyDepolarizing(viaState, {0, 2}, 0.5, rngA);
        circuit::applyDepolarizing(raw.data(), 3, {0, 2}, 0.5, rngB);
    }
    EXPECT_EQ(maxDiff(raw, viaState.amplitudes()), 0.0);
}

} // namespace

/**
 * @file
 * Tests for the kernelized statevector engine (src/sim/): kernel
 * correctness against dense embeddings, randomized engine-vs-toUnitary
 * equivalence, gate fusion, the thread pool, and bit-for-bit
 * determinism of parallel trajectory batches.
 */

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "circuit/noise.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "qv/qv.hh"
#include "sim/batch.hh"
#include "sim/engine.hh"
#include "sim/kernels.hh"
#include "sim_test_util.hh"

namespace {

using namespace crisc;
using circuit::Circuit;
using linalg::Complex;
using linalg::CVector;
using linalg::Matrix;
using testutil::maxDiff;
using testutil::randomState;

TEST(Kernels, OneQubitMatchesEmbedding)
{
    linalg::Rng rng(11);
    const std::size_t n = 4;
    for (std::size_t q = 0; q < n; ++q) {
        const Matrix u = linalg::haarUnitary(rng, 2);
        const CVector in = randomState(rng, n);
        CVector viaKernel = in;
        const Complex m[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
        sim::apply1q(viaKernel.data(), n, q, m);
        const CVector viaEmbed = qop::embed(u, {q}, n) * in;
        EXPECT_LT(maxDiff(viaKernel, viaEmbed), 1e-12);
    }
}

TEST(Kernels, OneQubitDiagonalMatchesDense)
{
    linalg::Rng rng(12);
    const std::size_t n = 5;
    const Matrix u = qop::rz(0.7317);
    for (std::size_t q = 0; q < n; ++q) {
        const CVector in = randomState(rng, n);
        CVector viaDiag = in;
        sim::apply1qDiag(viaDiag.data(), n, q, u(0, 0), u(1, 1));
        const CVector viaEmbed = qop::embed(u, {q}, n) * in;
        EXPECT_LT(maxDiff(viaDiag, viaEmbed), 1e-12);
    }
}

TEST(Kernels, PauliKernelMatchesDense)
{
    linalg::Rng rng(13);
    const std::size_t n = 4;
    for (std::size_t q = 0; q < n; ++q) {
        for (std::size_t p = 1; p <= 3; ++p) {
            const CVector in = randomState(rng, n);
            CVector viaKernel = in;
            sim::applyPauli(viaKernel.data(), n, q, p);
            const CVector viaEmbed =
                qop::embed(circuit::pauliByIndex(p), {q}, n) * in;
            EXPECT_LT(maxDiff(viaKernel, viaEmbed), 1e-15);
        }
    }
}

TEST(Kernels, TwoQubitMatchesEmbeddingAllPairs)
{
    linalg::Rng rng(14);
    const std::size_t n = 4;
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
            if (a == b)
                continue;
            const Matrix u = linalg::haarUnitary(rng, 4);
            const CVector in = randomState(rng, n);
            CVector viaKernel = in;
            sim::apply2q(viaKernel.data(), n, a, b, u.data());
            const CVector viaEmbed = qop::embed(u, {a, b}, n) * in;
            EXPECT_LT(maxDiff(viaKernel, viaEmbed), 1e-12)
                << "pair (" << a << ", " << b << ")";
        }
    }
}

TEST(Kernels, TwoQubitDiagonalMatchesDense)
{
    linalg::Rng rng(15);
    const std::size_t n = 4;
    const Matrix &u = qop::cz();
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
            if (a == b)
                continue;
            const CVector in = randomState(rng, n);
            CVector viaDiag = in;
            const Complex d[4] = {u(0, 0), u(1, 1), u(2, 2), u(3, 3)};
            sim::apply2qDiag(viaDiag.data(), n, a, b, d);
            const CVector viaEmbed = qop::embed(u, {a, b}, n) * in;
            EXPECT_LT(maxDiff(viaDiag, viaEmbed), 1e-15);
        }
    }
}

/** Random circuit mixing 1q, 2q, diagonal, and (optionally) 3q gates. */
Circuit
randomCircuit(linalg::Rng &rng, std::size_t n, std::size_t gates,
              bool with_dense)
{
    Circuit c(n);
    for (std::size_t g = 0; g < gates; ++g) {
        const std::size_t kind = rng.index(with_dense && n >= 3 ? 6 : 5);
        const std::size_t a = rng.index(n);
        std::size_t b = rng.index(n - 1);
        if (b >= a)
            ++b;
        switch (kind) {
          case 0:
            c.add(linalg::haarUnitary(rng, 2), {a}, "u1");
            break;
          case 1:
            c.add(qop::rz(rng.uniform(0.0, 6.28)), {a}, "rz");
            break;
          case 2:
            c.add(linalg::haarSU(rng, 4), {a, b}, "u2");
            break;
          case 3:
            c.add(qop::cz(), {a, b}, "cz");
            break;
          case 4:
            c.add(qop::cnot(), {a, b}, "cx");
            break;
          default: {
            std::size_t d = rng.index(n - 2);
            for (std::size_t q : {std::min(a, b), std::max(a, b)})
                if (d >= q)
                    ++d;
            c.add(linalg::haarUnitary(rng, 8), {a, b, d}, "u3");
            break;
          }
        }
    }
    return c;
}

TEST(Engine, RandomCircuitsMatchToUnitary)
{
    linalg::Rng rng(21);
    for (std::size_t n = 2; n <= 5; ++n) {
        for (int rep = 0; rep < 8; ++rep) {
            const Circuit c = randomCircuit(rng, n, 4 * n, true);
            const Matrix u = c.toUnitary();
            const CVector amps = sim::run(sim::compile(c));
            CVector expected(u.rows());
            for (std::size_t i = 0; i < u.rows(); ++i)
                expected[i] = u(i, 0);
            EXPECT_LT(maxDiff(amps, expected), 1e-9)
                << "n = " << n << ", rep = " << rep;
        }
    }
}

TEST(Engine, FusedAndUnfusedPlansAgree)
{
    linalg::Rng rng(22);
    const std::size_t n = 4;
    const Circuit c = randomCircuit(rng, n, 32, false);
    const sim::Plan fused = sim::compile(c, {.fuseSingleQubit = true});
    const sim::Plan unfused = sim::compile(c, {.fuseSingleQubit = false});
    EXPECT_LT(maxDiff(sim::run(fused), sim::run(unfused)), 1e-12);
    EXPECT_LE(fused.ops().size(), unfused.ops().size());
}

/** H-rz-H on q0 and rz-S on q1, then CX: the quad-fusion testbed. */
Circuit
dressedCnotCircuit()
{
    Circuit c(2);
    c.add(qop::hadamard(), {0}, "H");
    c.add(qop::rz(0.3), {0}, "rz");
    c.add(qop::hadamard(), {0}, "H");
    c.add(qop::rz(0.5), {1}, "rz");
    c.add(qop::sGate(), {1}, "S");
    c.add(qop::cnot(), {0, 1}, "CX");
    return c;
}

TEST(Engine, FusionMergesAdjacentSingleQubitRuns)
{
    const Circuit c = dressedCnotCircuit();
    const sim::Plan plan = sim::compile(c, {.fuseTwoQubit = false});
    // Three 1q gates on q0 -> one op; two diagonal 1q on q1 -> one
    // diagonal op; plus the CNOT.
    EXPECT_EQ(plan.ops().size(), 3u);
    EXPECT_EQ(plan.stats().fusedGates, 3u);
    EXPECT_EQ(plan.stats().sourceGates, 6u);
    EXPECT_EQ(plan.stats().fusedInto2q, 0u);
    bool sawDiag = false;
    for (const sim::KernelOp &op : plan.ops())
        sawDiag = sawDiag || op.kind == sim::KernelKind::OneQDiag;
    EXPECT_TRUE(sawDiag);
}

TEST(Engine, TwoQubitFusionFoldsDressedEntanglerIntoOneQuad)
{
    const Circuit c = dressedCnotCircuit();
    const sim::Plan plan = sim::compile(c); // both fusions default-on
    // Both pending 1q products fold into the CX: one 4x4 kernel total.
    ASSERT_EQ(plan.ops().size(), 1u);
    EXPECT_EQ(plan.ops()[0].kind, sim::KernelKind::TwoQ);
    EXPECT_EQ(plan.stats().sourceGates, 6u);
    EXPECT_EQ(plan.stats().fusedGates, 5u); // every 1q gate absorbed
    EXPECT_EQ(plan.stats().fusedInto2q, 2u);

    // And it is the same unitary: executing the one-op plan equals the
    // unfused reference to near machine precision.
    const sim::Plan reference = sim::compile(
        c, {.fuseSingleQubit = false, .fuseTwoQubit = false});
    EXPECT_LT(maxDiff(sim::run(plan), sim::run(reference)), 1e-12);
}

TEST(Engine, TwoQubitFusionOfDiagonalDressingStaysDiagonal)
{
    // Diagonal 1q pendings folded into a diagonal entangler keep the
    // quad on the phase-only kernel path.
    Circuit c(2);
    c.add(qop::rz(0.4), {0}, "rz");
    c.add(qop::rz(0.9), {1}, "rz");
    c.add(qop::cz(), {0, 1}, "CZ");
    const sim::Plan plan = sim::compile(c);
    ASSERT_EQ(plan.ops().size(), 1u);
    EXPECT_EQ(plan.ops()[0].kind, sim::KernelKind::TwoQDiag);
    EXPECT_EQ(plan.stats().fusedInto2q, 2u);
}

TEST(Engine, TwoQubitFusionLeavesUnrelatedPendingsAlone)
{
    // A pending 1q product on a qubit the 2q gate does not touch must
    // flush as its own kernel op, after the quad.
    Circuit c(3);
    c.add(qop::hadamard(), {2}, "H");
    c.add(qop::cnot(), {0, 1}, "CX");
    const sim::Plan plan = sim::compile(c);
    ASSERT_EQ(plan.ops().size(), 2u);
    EXPECT_EQ(plan.stats().fusedInto2q, 0u);
    const sim::Plan reference = sim::compile(
        c, {.fuseSingleQubit = false, .fuseTwoQubit = false});
    EXPECT_LT(maxDiff(sim::run(plan), sim::run(reference)), 1e-12);
}

TEST(Engine, DiagonalTwoQubitGateLowersToDiagKernel)
{
    Circuit c(3);
    c.add(qop::cz(), {0, 2}, "CZ");
    const sim::Plan plan = sim::compile(c);
    ASSERT_EQ(plan.ops().size(), 1u);
    EXPECT_EQ(plan.ops()[0].kind, sim::KernelKind::TwoQDiag);
    EXPECT_EQ(plan.stats().diagOps, 1u);
}

TEST(Engine, StateApplyStillMatchesToUnitary)
{
    // State::apply now routes through the kernels; re-check the original
    // contract on a mixed circuit.
    linalg::Rng rng(23);
    const Circuit c = randomCircuit(rng, 3, 12, true);
    const Matrix u = c.toUnitary();
    circuit::State s(3);
    s.run(c);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_NEAR(std::abs(s.amplitudes()[i] - u(i, 0)), 0.0, 1e-9);
}

TEST(Batch, StreamSeedsAreDistinct)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {1ULL, 2ULL, 999ULL})
        for (std::uint64_t stream = 0; stream < 100; ++stream)
            seen.insert(sim::streamSeed(base, stream));
    EXPECT_EQ(seen.size(), 300u);
}

TEST(Batch, StreamSeedAdjacentBasesAndIndicesDoNotOverlap)
{
    // Regression for the stream-derivation contract: nearby base seeds
    // (the values callers actually pick: 42, 43, ...) combined with the
    // first few hundred trajectory indices must all map to distinct
    // RNG seeds — a collision would hand two trajectories (or two
    // experiments) the same random stream.
    std::set<std::uint64_t> seen;
    std::size_t inserted = 0;
    for (std::uint64_t base = 1000; base < 1008; ++base) {
        for (std::uint64_t stream = 0; stream < 256; ++stream) {
            seen.insert(sim::streamSeed(base, stream));
            ++inserted;
        }
    }
    EXPECT_EQ(seen.size(), inserted);
    // Zero-valued inputs are ordinary members of the family.
    EXPECT_NE(sim::streamSeed(0, 0), sim::streamSeed(0, 1));
    EXPECT_NE(sim::streamSeed(0, 0), sim::streamSeed(1, 0));
}

TEST(Batch, ZeroTrajectoriesIsAWellDefinedNoOp)
{
    sim::ThreadPool pool(4);
    std::atomic<int> calls{0};
    const auto body = [&](std::size_t, linalg::Rng &) {
        ++calls;
        return 1.0;
    };
    const std::vector<double> results =
        sim::runTrajectories(pool, 0, 7, body);
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(sim::sumTrajectories(pool, 0, 7, body), 0.0);
    EXPECT_EQ(calls.load(), 0);
    // The pool is still fully serviceable afterwards.
    EXPECT_EQ(sim::sumTrajectories(pool, 8, 7, body), 8.0);
    EXPECT_EQ(calls.load(), 8);
}

TEST(Batch, ParallelForCoversEveryIndexOnce)
{
    sim::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1);
    // Reuse across batches (exercises the generation handshake).
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 2);
}

TEST(Batch, ParallelForPropagatesTaskExceptionAndStaysServiceable)
{
    // A throwing task must not deadlock or terminate the pool: the
    // first exception is rethrown on the calling thread once the batch
    // drains, and the pool keeps working afterwards.
    sim::ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallelFor(200,
                         [&](std::size_t i) {
                             if (i == 37)
                                 throw std::runtime_error("task 37");
                             ++ran;
                         }),
        std::runtime_error);
    EXPECT_LT(ran.load(), 200); // indices after the throw were skipped

    // Every task throwing still surfaces exactly one exception.
    EXPECT_THROW(pool.parallelFor(
                     50, [](std::size_t) { throw std::logic_error("all"); }),
                 std::logic_error);

    // The pool is fully serviceable after both failed batches.
    std::vector<std::atomic<int>> hits(100);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1);

    // The inline (single-thread / single-item) paths propagate too.
    sim::ThreadPool inlinePool(1);
    EXPECT_THROW(inlinePool.parallelFor(
                     3, [](std::size_t) { throw std::runtime_error("x"); }),
                 std::runtime_error);
    EXPECT_THROW(
        pool.parallelFor(1,
                         [](std::size_t) { throw std::runtime_error("y"); }),
        std::runtime_error);
}

TEST(Batch, PlanBatchWidthHeuristic)
{
    // Narrow registers: all threads to the trajectory axis, with SoA
    // lanes across trajectories (the third axis).
    sim::BatchPlan p = sim::planBatch(8, 10, 100);
    EXPECT_EQ(p.trajWorkers, 8u);
    EXPECT_EQ(p.stateThreads, 1u);
    EXPECT_EQ(p.soaLanes, sim::simdLanes());

    // Very wide registers: all threads to the sweep axis, no SoA
    // batching (one statevector is already memory-bound).
    p = sim::planBatch(8, 27, 100);
    EXPECT_EQ(p.trajWorkers, 1u);
    EXPECT_EQ(p.stateThreads, 8u);
    EXPECT_EQ(p.soaLanes, 1u);

    // Band boundaries: 17 is still trajectory-only (with lanes), 18 is
    // the first hybrid-band width; 25 is the last hybrid width, 26 the
    // first state-only one.
    p = sim::planBatch(8, 17, 100);
    EXPECT_EQ(p.trajWorkers, 8u);
    EXPECT_EQ(p.stateThreads, 1u);
    EXPECT_EQ(p.soaLanes, sim::simdLanes());
    p = sim::planBatch(8, 18, 100);
    EXPECT_EQ(p.trajWorkers, 8u); // memCap 256; 8 x 1 uses all 8.
    EXPECT_EQ(p.stateThreads, 1u);
    EXPECT_EQ(p.soaLanes, 1u);
    p = sim::planBatch(8, 25, 100);
    EXPECT_EQ(p.trajWorkers, 2u); // memCap 2.
    EXPECT_EQ(p.stateThreads, 4u);
    EXPECT_EQ(p.soaLanes, 1u);
    p = sim::planBatch(8, 26, 100);
    EXPECT_EQ(p.trajWorkers, 1u);
    EXPECT_EQ(p.stateThreads, 8u);
    EXPECT_EQ(p.soaLanes, 1u);

    // Hybrid band: concurrent statevectors capped by the per-width
    // memory budget (2^(26 - width)), spare threads to the sweeps.
    p = sim::planBatch(8, 24, 100);
    EXPECT_EQ(p.trajWorkers, 4u);
    EXPECT_EQ(p.stateThreads, 2u);
    EXPECT_EQ(p.soaLanes, 1u);

    // Scarce trajectories hand their threads to the sweep axis.
    p = sim::planBatch(8, 20, 2);
    EXPECT_EQ(p.trajWorkers, 2u);
    EXPECT_EQ(p.stateThreads, 4u);

    // A split that would idle threads to truncation (3 x 2 of 8) backs
    // off to one that uses the whole budget (2 x 4).
    p = sim::planBatch(8, 20, 3);
    EXPECT_EQ(p.trajWorkers, 2u);
    EXPECT_EQ(p.stateThreads, 4u);

    // One thread or an empty batch degenerates to fully serial — but a
    // single narrow-register thread still batches SoA lanes.
    p = sim::planBatch(1, 24, 100);
    EXPECT_EQ(p.trajWorkers, 1u);
    EXPECT_EQ(p.stateThreads, 1u);
    EXPECT_EQ(p.soaLanes, 1u);
    p = sim::planBatch(1, 10, 5);
    EXPECT_EQ(p.trajWorkers, 1u);
    EXPECT_EQ(p.stateThreads, 1u);
    EXPECT_EQ(p.soaLanes, sim::simdLanes());
    p = sim::planBatch(8, 24, 0);
    EXPECT_EQ(p.trajWorkers, 1u);
    EXPECT_EQ(p.stateThreads, 1u);
    EXPECT_EQ(p.soaLanes, 1u);
}

TEST(Batch, PlanBatchValidatesArguments)
{
    // 0 threads no longer means hardware here — callers resolve that
    // with sim::resolveThreads first; a zero width has no band.
    EXPECT_THROW(sim::planBatch(0, 14, 10), std::invalid_argument);
    EXPECT_THROW(sim::planBatch(8, 0, 10), std::invalid_argument);
    EXPECT_GE(sim::resolveThreads(0), 1u);
    EXPECT_EQ(sim::resolveThreads(5), 5u);
}

TEST(Batch, TrajectoryRunnerIsScheduleInvariant)
{
    // The same trajectories through every axis split — trajectory-only,
    // state-only, hybrid — must be bit-for-bit identical, including
    // when the body really uses its leased sweep pool.
    linalg::Rng crng(55);
    const std::size_t n = 14;
    circuit::Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.add(linalg::haarUnitary(crng, 2), {q});
    for (std::size_t q = 0; q + 1 < n; q += 2)
        c.add(linalg::haarUnitary(crng, 4), {q, q + 1});
    const sim::Plan plan = sim::compile(c);

    const sim::TrajectoryRunner::Body body =
        [&](std::size_t, linalg::Rng &rng, const sim::ExecOptions &exec) {
            CVector amps = sim::run(plan, exec);
            // A random amplitude's probability, so the result depends
            // on both the sweep outcome and the RNG stream.
            return std::norm(amps[rng.index(amps.size())]);
        };

    sim::TrajectoryRunner serial(1, 1);
    const std::vector<double> reference = serial.run(12, 77, body);
    ASSERT_EQ(reference.size(), 12u);

    for (const auto &[traj, state] :
         {std::pair<std::size_t, std::size_t>{4, 1}, {2, 2}, {1, 4}}) {
        sim::TrajectoryRunner runner(traj, state);
        EXPECT_EQ(runner.trajWorkers(), traj);
        EXPECT_EQ(runner.stateThreads(), state == 0 ? 1 : state);
        const std::vector<double> got = runner.run(12, 77, body);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], reference[i])
                << "traj=" << traj << " state=" << state << " i=" << i;
    }
}

TEST(Batch, TrajectoriesAreThreadCountInvariant)
{
    const auto body = [](std::size_t, linalg::Rng &rng) {
        double acc = 0.0;
        for (int i = 0; i < 100; ++i)
            acc += rng.uniform();
        return acc;
    };
    sim::ThreadPool serial(1), parallel(4);
    const std::vector<double> a =
        sim::runTrajectories(serial, 64, 42, body);
    const std::vector<double> b =
        sim::runTrajectories(parallel, 64, 42, body);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]); // bit-for-bit
}

TEST(Batch, QvExperimentIsThreadCountInvariant)
{
    qv::QvConfig cfg;
    cfg.width = 4;
    cfg.czError = 0.02;
    cfg.circuits = 6;
    cfg.trajectories = 8;
    cfg.seed = 31;
    cfg.threads = 1;
    const qv::QvResult serial = qv::heavyOutputExperiment(cfg);
    for (int threads : {2, 4, 7}) {
        cfg.threads = threads;
        const qv::QvResult parallel = qv::heavyOutputExperiment(cfg);
        EXPECT_EQ(serial.heavyOutputProportion,
                  parallel.heavyOutputProportion);
        EXPECT_EQ(serial.avgNativeGatesPerCircuit,
                  parallel.avgNativeGatesPerCircuit);
        EXPECT_EQ(serial.avgTwoQubitTimePerCircuit,
                  parallel.avgTwoQubitTimePerCircuit);
        EXPECT_EQ(serial.avgSwapsPerCircuit, parallel.avgSwapsPerCircuit);
    }
}

TEST(Noise, FastPathsMatchVectorOverloads)
{
    linalg::Rng rng(91);
    const std::size_t n = 3;
    CVector a = randomState(rng, n);
    CVector b = a;
    linalg::Rng rngA(5), rngB(5);
    for (int i = 0; i < 300; ++i) {
        circuit::applyDepolarizing(a.data(), n, {1}, 0.4, rngA);
        circuit::applyDepolarizing(b.data(), n, std::size_t{1}, 0.4, rngB);
        circuit::applyDepolarizing(a.data(), n, {0, 2}, 0.4, rngA);
        circuit::applyDepolarizing(b.data(), n, std::size_t{0},
                                   std::size_t{2}, 0.4, rngB);
    }
    EXPECT_EQ(maxDiff(a, b), 0.0);
}

TEST(Noise, RawOverloadMatchesStateOverload)
{
    // Same rng stream => same Pauli choices => identical states.
    linalg::Rng rngA(77), rngB(77);
    circuit::State viaState(3);
    viaState.apply(qop::hadamard(), {0});
    CVector raw = viaState.amplitudes();
    for (int i = 0; i < 200; ++i) {
        circuit::applyDepolarizing(viaState, {0, 2}, 0.5, rngA);
        circuit::applyDepolarizing(raw.data(), 3, {0, 2}, 0.5, rngB);
    }
    EXPECT_EQ(maxDiff(raw, viaState.amplitudes()), 0.0);
}

} // namespace
